# Empty compiler generated dependencies file for bmg_host.
# This may be replaced when dependencies are built.
