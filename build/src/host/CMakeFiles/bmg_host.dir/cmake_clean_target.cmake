file(REMOVE_RECURSE
  "libbmg_host.a"
)
