file(REMOVE_RECURSE
  "CMakeFiles/bmg_host.dir/chain.cpp.o"
  "CMakeFiles/bmg_host.dir/chain.cpp.o.d"
  "libbmg_host.a"
  "libbmg_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
