
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/block.cpp" "src/guest/CMakeFiles/bmg_guest.dir/block.cpp.o" "gcc" "src/guest/CMakeFiles/bmg_guest.dir/block.cpp.o.d"
  "/root/repo/src/guest/contract.cpp" "src/guest/CMakeFiles/bmg_guest.dir/contract.cpp.o" "gcc" "src/guest/CMakeFiles/bmg_guest.dir/contract.cpp.o.d"
  "/root/repo/src/guest/instructions.cpp" "src/guest/CMakeFiles/bmg_guest.dir/instructions.cpp.o" "gcc" "src/guest/CMakeFiles/bmg_guest.dir/instructions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/bmg_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/ibc/CMakeFiles/bmg_ibc.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/bmg_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bmg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
