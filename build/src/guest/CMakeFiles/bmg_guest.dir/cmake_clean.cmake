file(REMOVE_RECURSE
  "CMakeFiles/bmg_guest.dir/block.cpp.o"
  "CMakeFiles/bmg_guest.dir/block.cpp.o.d"
  "CMakeFiles/bmg_guest.dir/contract.cpp.o"
  "CMakeFiles/bmg_guest.dir/contract.cpp.o.d"
  "CMakeFiles/bmg_guest.dir/instructions.cpp.o"
  "CMakeFiles/bmg_guest.dir/instructions.cpp.o.d"
  "libbmg_guest.a"
  "libbmg_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
