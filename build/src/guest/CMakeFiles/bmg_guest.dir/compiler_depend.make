# Empty compiler generated dependencies file for bmg_guest.
# This may be replaced when dependencies are built.
