file(REMOVE_RECURSE
  "libbmg_guest.a"
)
