file(REMOVE_RECURSE
  "CMakeFiles/bmg_relayer.dir/deployment.cpp.o"
  "CMakeFiles/bmg_relayer.dir/deployment.cpp.o.d"
  "CMakeFiles/bmg_relayer.dir/relayer_agent.cpp.o"
  "CMakeFiles/bmg_relayer.dir/relayer_agent.cpp.o.d"
  "CMakeFiles/bmg_relayer.dir/validator_agent.cpp.o"
  "CMakeFiles/bmg_relayer.dir/validator_agent.cpp.o.d"
  "libbmg_relayer.a"
  "libbmg_relayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_relayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
