file(REMOVE_RECURSE
  "libbmg_relayer.a"
)
