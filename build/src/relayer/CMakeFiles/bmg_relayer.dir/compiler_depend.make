# Empty compiler generated dependencies file for bmg_relayer.
# This may be replaced when dependencies are built.
