
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ibc/bank.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/bank.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/bank.cpp.o.d"
  "/root/repo/src/ibc/commitment.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/commitment.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/commitment.cpp.o.d"
  "/root/repo/src/ibc/handshake.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/handshake.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/handshake.cpp.o.d"
  "/root/repo/src/ibc/module.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/module.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/module.cpp.o.d"
  "/root/repo/src/ibc/packet.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/packet.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/packet.cpp.o.d"
  "/root/repo/src/ibc/quorum.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/quorum.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/quorum.cpp.o.d"
  "/root/repo/src/ibc/seq_tracker.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/seq_tracker.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/seq_tracker.cpp.o.d"
  "/root/repo/src/ibc/transfer.cpp" "src/ibc/CMakeFiles/bmg_ibc.dir/transfer.cpp.o" "gcc" "src/ibc/CMakeFiles/bmg_ibc.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bmg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/bmg_trie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
