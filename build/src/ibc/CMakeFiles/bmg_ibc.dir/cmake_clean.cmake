file(REMOVE_RECURSE
  "CMakeFiles/bmg_ibc.dir/bank.cpp.o"
  "CMakeFiles/bmg_ibc.dir/bank.cpp.o.d"
  "CMakeFiles/bmg_ibc.dir/commitment.cpp.o"
  "CMakeFiles/bmg_ibc.dir/commitment.cpp.o.d"
  "CMakeFiles/bmg_ibc.dir/handshake.cpp.o"
  "CMakeFiles/bmg_ibc.dir/handshake.cpp.o.d"
  "CMakeFiles/bmg_ibc.dir/module.cpp.o"
  "CMakeFiles/bmg_ibc.dir/module.cpp.o.d"
  "CMakeFiles/bmg_ibc.dir/packet.cpp.o"
  "CMakeFiles/bmg_ibc.dir/packet.cpp.o.d"
  "CMakeFiles/bmg_ibc.dir/quorum.cpp.o"
  "CMakeFiles/bmg_ibc.dir/quorum.cpp.o.d"
  "CMakeFiles/bmg_ibc.dir/seq_tracker.cpp.o"
  "CMakeFiles/bmg_ibc.dir/seq_tracker.cpp.o.d"
  "CMakeFiles/bmg_ibc.dir/transfer.cpp.o"
  "CMakeFiles/bmg_ibc.dir/transfer.cpp.o.d"
  "libbmg_ibc.a"
  "libbmg_ibc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_ibc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
