# Empty dependencies file for bmg_ibc.
# This may be replaced when dependencies are built.
