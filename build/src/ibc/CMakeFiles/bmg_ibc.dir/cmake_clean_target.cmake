file(REMOVE_RECURSE
  "libbmg_ibc.a"
)
