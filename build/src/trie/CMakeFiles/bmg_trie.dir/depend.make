# Empty dependencies file for bmg_trie.
# This may be replaced when dependencies are built.
