file(REMOVE_RECURSE
  "CMakeFiles/bmg_trie.dir/nibbles.cpp.o"
  "CMakeFiles/bmg_trie.dir/nibbles.cpp.o.d"
  "CMakeFiles/bmg_trie.dir/node.cpp.o"
  "CMakeFiles/bmg_trie.dir/node.cpp.o.d"
  "CMakeFiles/bmg_trie.dir/trie.cpp.o"
  "CMakeFiles/bmg_trie.dir/trie.cpp.o.d"
  "libbmg_trie.a"
  "libbmg_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
