file(REMOVE_RECURSE
  "libbmg_trie.a"
)
