file(REMOVE_RECURSE
  "CMakeFiles/bmg_counterparty.dir/chain.cpp.o"
  "CMakeFiles/bmg_counterparty.dir/chain.cpp.o.d"
  "libbmg_counterparty.a"
  "libbmg_counterparty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_counterparty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
