# Empty dependencies file for bmg_counterparty.
# This may be replaced when dependencies are built.
