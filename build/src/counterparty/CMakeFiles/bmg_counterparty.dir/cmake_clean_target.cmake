file(REMOVE_RECURSE
  "libbmg_counterparty.a"
)
