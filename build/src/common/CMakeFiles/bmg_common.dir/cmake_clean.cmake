file(REMOVE_RECURSE
  "CMakeFiles/bmg_common.dir/base58.cpp.o"
  "CMakeFiles/bmg_common.dir/base58.cpp.o.d"
  "CMakeFiles/bmg_common.dir/bytes.cpp.o"
  "CMakeFiles/bmg_common.dir/bytes.cpp.o.d"
  "CMakeFiles/bmg_common.dir/codec.cpp.o"
  "CMakeFiles/bmg_common.dir/codec.cpp.o.d"
  "CMakeFiles/bmg_common.dir/rng.cpp.o"
  "CMakeFiles/bmg_common.dir/rng.cpp.o.d"
  "CMakeFiles/bmg_common.dir/stats.cpp.o"
  "CMakeFiles/bmg_common.dir/stats.cpp.o.d"
  "libbmg_common.a"
  "libbmg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
