# Empty compiler generated dependencies file for bmg_common.
# This may be replaced when dependencies are built.
