file(REMOVE_RECURSE
  "libbmg_common.a"
)
