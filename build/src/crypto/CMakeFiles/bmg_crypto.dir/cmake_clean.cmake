file(REMOVE_RECURSE
  "CMakeFiles/bmg_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/bmg_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/bmg_crypto.dir/keys.cpp.o"
  "CMakeFiles/bmg_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/bmg_crypto.dir/sha256.cpp.o"
  "CMakeFiles/bmg_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/bmg_crypto.dir/sha512.cpp.o"
  "CMakeFiles/bmg_crypto.dir/sha512.cpp.o.d"
  "libbmg_crypto.a"
  "libbmg_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
