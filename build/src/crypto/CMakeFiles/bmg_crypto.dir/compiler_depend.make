# Empty compiler generated dependencies file for bmg_crypto.
# This may be replaced when dependencies are built.
