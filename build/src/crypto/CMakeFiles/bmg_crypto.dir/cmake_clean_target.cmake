file(REMOVE_RECURSE
  "libbmg_crypto.a"
)
