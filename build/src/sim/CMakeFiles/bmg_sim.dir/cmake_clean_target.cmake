file(REMOVE_RECURSE
  "libbmg_sim.a"
)
