# Empty compiler generated dependencies file for bmg_sim.
# This may be replaced when dependencies are built.
