file(REMOVE_RECURSE
  "CMakeFiles/bmg_sim.dir/scheduler.cpp.o"
  "CMakeFiles/bmg_sim.dir/scheduler.cpp.o.d"
  "libbmg_sim.a"
  "libbmg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
