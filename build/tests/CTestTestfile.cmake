# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/crypto_tests[1]_include.cmake")
include("/root/repo/build/tests/trie_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/host_tests[1]_include.cmake")
include("/root/repo/build/tests/counterparty_tests[1]_include.cmake")
include("/root/repo/build/tests/ibc_tests[1]_include.cmake")
include("/root/repo/build/tests/guest_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/relayer_tests[1]_include.cmake")
include("/root/repo/build/tests/fuzz_tests[1]_include.cmake")
