file(REMOVE_RECURSE
  "CMakeFiles/guest_tests.dir/guest/block_test.cpp.o"
  "CMakeFiles/guest_tests.dir/guest/block_test.cpp.o.d"
  "CMakeFiles/guest_tests.dir/guest/contract_test.cpp.o"
  "CMakeFiles/guest_tests.dir/guest/contract_test.cpp.o.d"
  "CMakeFiles/guest_tests.dir/guest/futurework_test.cpp.o"
  "CMakeFiles/guest_tests.dir/guest/futurework_test.cpp.o.d"
  "CMakeFiles/guest_tests.dir/guest/instructions_test.cpp.o"
  "CMakeFiles/guest_tests.dir/guest/instructions_test.cpp.o.d"
  "guest_tests"
  "guest_tests.pdb"
  "guest_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
