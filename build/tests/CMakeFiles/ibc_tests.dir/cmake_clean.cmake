file(REMOVE_RECURSE
  "CMakeFiles/ibc_tests.dir/ibc/bank_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/bank_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/module_negative_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/module_negative_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/module_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/module_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/ordered_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/ordered_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/packet_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/packet_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/quorum_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/quorum_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/self_client_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/self_client_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/seq_tracker_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/seq_tracker_test.cpp.o.d"
  "CMakeFiles/ibc_tests.dir/ibc/transfer_test.cpp.o"
  "CMakeFiles/ibc_tests.dir/ibc/transfer_test.cpp.o.d"
  "ibc_tests"
  "ibc_tests.pdb"
  "ibc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
