# Empty dependencies file for ibc_tests.
# This may be replaced when dependencies are built.
