
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ibc/bank_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/bank_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/bank_test.cpp.o.d"
  "/root/repo/tests/ibc/module_negative_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/module_negative_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/module_negative_test.cpp.o.d"
  "/root/repo/tests/ibc/module_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/module_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/module_test.cpp.o.d"
  "/root/repo/tests/ibc/ordered_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/ordered_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/ordered_test.cpp.o.d"
  "/root/repo/tests/ibc/packet_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/packet_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/packet_test.cpp.o.d"
  "/root/repo/tests/ibc/quorum_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/quorum_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/quorum_test.cpp.o.d"
  "/root/repo/tests/ibc/self_client_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/self_client_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/self_client_test.cpp.o.d"
  "/root/repo/tests/ibc/seq_tracker_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/seq_tracker_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/seq_tracker_test.cpp.o.d"
  "/root/repo/tests/ibc/transfer_test.cpp" "tests/CMakeFiles/ibc_tests.dir/ibc/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/ibc_tests.dir/ibc/transfer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ibc/CMakeFiles/bmg_ibc.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/bmg_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bmg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
