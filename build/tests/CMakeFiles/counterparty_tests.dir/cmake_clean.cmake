file(REMOVE_RECURSE
  "CMakeFiles/counterparty_tests.dir/counterparty/chain_test.cpp.o"
  "CMakeFiles/counterparty_tests.dir/counterparty/chain_test.cpp.o.d"
  "counterparty_tests"
  "counterparty_tests.pdb"
  "counterparty_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterparty_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
