# Empty dependencies file for counterparty_tests.
# This may be replaced when dependencies are built.
