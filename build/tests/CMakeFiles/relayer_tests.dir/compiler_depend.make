# Empty compiler generated dependencies file for relayer_tests.
# This may be replaced when dependencies are built.
