file(REMOVE_RECURSE
  "CMakeFiles/relayer_tests.dir/relayer/relayer_unit_test.cpp.o"
  "CMakeFiles/relayer_tests.dir/relayer/relayer_unit_test.cpp.o.d"
  "relayer_tests"
  "relayer_tests.pdb"
  "relayer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relayer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
