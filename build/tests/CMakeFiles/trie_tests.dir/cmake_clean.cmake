file(REMOVE_RECURSE
  "CMakeFiles/trie_tests.dir/trie/nibbles_test.cpp.o"
  "CMakeFiles/trie_tests.dir/trie/nibbles_test.cpp.o.d"
  "CMakeFiles/trie_tests.dir/trie/trie_model_test.cpp.o"
  "CMakeFiles/trie_tests.dir/trie/trie_model_test.cpp.o.d"
  "CMakeFiles/trie_tests.dir/trie/trie_test.cpp.o"
  "CMakeFiles/trie_tests.dir/trie/trie_test.cpp.o.d"
  "trie_tests"
  "trie_tests.pdb"
  "trie_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
