# Empty compiler generated dependencies file for trie_tests.
# This may be replaced when dependencies are built.
