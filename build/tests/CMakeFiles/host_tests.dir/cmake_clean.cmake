file(REMOVE_RECURSE
  "CMakeFiles/host_tests.dir/host/chain_test.cpp.o"
  "CMakeFiles/host_tests.dir/host/chain_test.cpp.o.d"
  "host_tests"
  "host_tests.pdb"
  "host_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
