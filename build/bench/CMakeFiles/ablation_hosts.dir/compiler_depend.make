# Empty compiler generated dependencies file for ablation_hosts.
# This may be replaced when dependencies are built.
