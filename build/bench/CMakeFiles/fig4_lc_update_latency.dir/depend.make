# Empty dependencies file for fig4_lc_update_latency.
# This may be replaced when dependencies are built.
