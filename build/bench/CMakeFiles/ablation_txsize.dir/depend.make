# Empty dependencies file for ablation_txsize.
# This may be replaced when dependencies are built.
