file(REMOVE_RECURSE
  "CMakeFiles/ablation_txsize.dir/ablation_txsize.cpp.o"
  "CMakeFiles/ablation_txsize.dir/ablation_txsize.cpp.o.d"
  "ablation_txsize"
  "ablation_txsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_txsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
