# Empty compiler generated dependencies file for table1_validator_stats.
# This may be replaced when dependencies are built.
