file(REMOVE_RECURSE
  "CMakeFiles/ablation_fees.dir/ablation_fees.cpp.o"
  "CMakeFiles/ablation_fees.dir/ablation_fees.cpp.o.d"
  "ablation_fees"
  "ablation_fees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
