# Empty dependencies file for ablation_fees.
# This may be replaced when dependencies are built.
