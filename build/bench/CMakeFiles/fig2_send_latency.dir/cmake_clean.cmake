file(REMOVE_RECURSE
  "CMakeFiles/fig2_send_latency.dir/fig2_send_latency.cpp.o"
  "CMakeFiles/fig2_send_latency.dir/fig2_send_latency.cpp.o.d"
  "fig2_send_latency"
  "fig2_send_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_send_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
