# Empty compiler generated dependencies file for storage_costs.
# This may be replaced when dependencies are built.
