file(REMOVE_RECURSE
  "CMakeFiles/storage_costs.dir/storage_costs.cpp.o"
  "CMakeFiles/storage_costs.dir/storage_costs.cpp.o.d"
  "storage_costs"
  "storage_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
