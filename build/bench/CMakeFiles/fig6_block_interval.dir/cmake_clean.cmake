file(REMOVE_RECURSE
  "CMakeFiles/fig6_block_interval.dir/fig6_block_interval.cpp.o"
  "CMakeFiles/fig6_block_interval.dir/fig6_block_interval.cpp.o.d"
  "fig6_block_interval"
  "fig6_block_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_block_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
