# Empty compiler generated dependencies file for fig6_block_interval.
# This may be replaced when dependencies are built.
