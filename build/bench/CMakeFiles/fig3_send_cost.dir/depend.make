# Empty dependencies file for fig3_send_cost.
# This may be replaced when dependencies are built.
