file(REMOVE_RECURSE
  "CMakeFiles/fig3_send_cost.dir/fig3_send_cost.cpp.o"
  "CMakeFiles/fig3_send_cost.dir/fig3_send_cost.cpp.o.d"
  "fig3_send_cost"
  "fig3_send_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_send_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
