file(REMOVE_RECURSE
  "CMakeFiles/validator_lifecycle.dir/validator_lifecycle.cpp.o"
  "CMakeFiles/validator_lifecycle.dir/validator_lifecycle.cpp.o.d"
  "validator_lifecycle"
  "validator_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
