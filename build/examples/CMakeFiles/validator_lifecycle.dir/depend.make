# Empty dependencies file for validator_lifecycle.
# This may be replaced when dependencies are built.
