file(REMOVE_RECURSE
  "CMakeFiles/token_transfer.dir/token_transfer.cpp.o"
  "CMakeFiles/token_transfer.dir/token_transfer.cpp.o.d"
  "token_transfer"
  "token_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/token_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
