
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/relayer_daemon.cpp" "examples/CMakeFiles/relayer_daemon.dir/relayer_daemon.cpp.o" "gcc" "examples/CMakeFiles/relayer_daemon.dir/relayer_daemon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relayer/CMakeFiles/bmg_relayer.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/bmg_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/counterparty/CMakeFiles/bmg_counterparty.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/bmg_host.dir/DependInfo.cmake"
  "/root/repo/build/src/ibc/CMakeFiles/bmg_ibc.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/bmg_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/bmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bmg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
