file(REMOVE_RECURSE
  "CMakeFiles/relayer_daemon.dir/relayer_daemon.cpp.o"
  "CMakeFiles/relayer_daemon.dir/relayer_daemon.cpp.o.d"
  "relayer_daemon"
  "relayer_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relayer_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
