# Empty dependencies file for relayer_daemon.
# This may be replaced when dependencies are built.
