# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_token_transfer]=] "/root/repo/build/examples/token_transfer")
set_tests_properties([=[example_token_transfer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_validator_lifecycle]=] "/root/repo/build/examples/validator_lifecycle")
set_tests_properties([=[example_validator_lifecycle]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_custom_app]=] "/root/repo/build/examples/custom_app")
set_tests_properties([=[example_custom_app]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_relayer_daemon]=] "/root/repo/build/examples/relayer_daemon" "1")
set_tests_properties([=[example_relayer_daemon]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
