// Validator lifecycle: staking in, epoch rotation, double-signing
// caught by a fisherman, slashing, and the week-long stake hold on
// exit (paper §III-B, §III-C, §VI-A).
//
//   $ ./examples/validator_lifecycle
#include <cstdio>

#include "relayer/deployment.hpp"

using namespace bmg;

namespace {

host::TxResult submit_and_wait(relayer::Deployment& d, host::Transaction tx) {
  host::TxResult out;
  bool got = false;
  d.host().submit(std::move(tx), [&](const host::TxResult& r) {
    out = r;
    got = true;
  });
  (void)d.run_until([&] { return got; }, 120.0);
  return out;
}

}  // namespace

int main() {
  std::printf("== Guest blockchain validator lifecycle ==\n\n");

  relayer::DeploymentConfig cfg;
  cfg.seed = 11;
  cfg.guest.delta_seconds = 30.0;
  cfg.guest.epoch_length_host_slots = 500;  // ~3 min epochs for the demo
  cfg.guest.unstake_hold_seconds = 600.0;   // 10 min hold for the demo
  cfg.guest.max_validators = 6;
  for (int i = 0; i < 4; ++i) {
    relayer::ValidatorProfile p;
    p.name = "genesis-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 8;
  relayer::Deployment d(std::move(cfg));
  d.start();
  d.run_for(2.0);

  std::printf("genesis epoch: %zu validators, total stake %llu, quorum %llu\n\n",
              d.guest().epoch_validators().size(),
              (unsigned long long)d.guest().epoch_validators().total_stake(),
              (unsigned long long)d.guest().epoch_validators().quorum_stake());

  // --- a new validator stakes in ---------------------------------------
  const crypto::PrivateKey newcomer = crypto::PrivateKey::from_label("newcomer");
  d.host().airdrop(newcomer.public_key(), 100 * host::kLamportsPerSol);
  {
    host::Transaction tx;
    tx.payer = newcomer.public_key();
    tx.instructions.push_back(guest::ix::stake(250));
    const auto res = submit_and_wait(d, std::move(tx));
    std::printf("[%7.1fs] newcomer stakes 250: %s\n", d.sim().now(),
                res.success ? "ok" : res.error.c_str());
  }

  // Wait for the epoch to rotate (blocks keep coming via Δ).
  (void)d.run_until(
      [&] { return d.guest().epoch_validators().contains(newcomer.public_key()); },
      1800.0);
  std::printf("[%7.1fs] epoch rotated: newcomer is now in the validator set"
              " (%zu validators)\n\n",
              d.sim().now(), d.guest().epoch_validators().size());

  // --- misbehaviour: genesis-0 double-signs -----------------------------
  const crypto::PrivateKey& offender = d.validators()[0]->key();
  guest::GuestBlock fork_a = guest::GuestBlock::make(
      "guest-1", 99, d.sim().now(), Hash32{}, Hash32{}, 1, d.guest().epoch_validators());
  guest::GuestBlock fork_b = guest::GuestBlock::make(
      "guest-1", 99, d.sim().now() + 1, Hash32{}, Hash32{}, 1,
      d.guest().epoch_validators());
  std::printf("[%7.1fs] genesis-0 signs two different blocks at height 99"
              " (equivocation)\n",
              d.sim().now());

  // A fisherman notices and submits evidence.
  const crypto::PrivateKey fisherman = crypto::PrivateKey::from_label("fisherman");
  d.host().airdrop(fisherman.public_key(), 100 * host::kLamportsPerSol);
  Encoder ev;
  ev.raw(offender.public_key().view());
  ev.u8(2);
  ev.bytes(fork_a.header.encode());
  ev.bytes(fork_b.header.encode());
  // Chunk-upload the evidence, then submit with the offender's two
  // pre-compile-verified signatures attached.
  std::uint32_t offset = 0;
  for (const Bytes& chunk : guest::ix::chunk_payload(ev.out())) {
    host::Transaction tx;
    tx.payer = fisherman.public_key();
    tx.instructions.push_back(guest::ix::chunk_upload(1, offset, chunk));
    offset += static_cast<std::uint32_t>(chunk.size());
    (void)submit_and_wait(d, std::move(tx));
  }
  const Hash32 da = fork_a.hash(), db = fork_b.hash();
  host::Transaction evtx;
  evtx.payer = fisherman.public_key();
  evtx.instructions.push_back(guest::ix::submit_evidence(1));
  evtx.sig_verifies.push_back(
      host::SigVerify{offender.public_key(), da, offender.sign(da.view())});
  evtx.sig_verifies.push_back(
      host::SigVerify{offender.public_key(), db, offender.sign(db.view())});
  const std::uint64_t fisherman_before = d.host().balance(fisherman.public_key());
  const auto res = submit_and_wait(d, std::move(evtx));
  std::printf("[%7.1fs] fisherman submits evidence: %s\n", d.sim().now(),
              res.success ? "validator SLASHED" : res.error.c_str());
  std::printf("           offender banned: %s, stake now %llu\n",
              d.guest().is_banned(offender.public_key()) ? "yes" : "no",
              (unsigned long long)d.guest().stake_of(offender.public_key()));
  std::printf("           fisherman reward: %lld lamports (half the slashed stake)\n\n",
              (long long)(d.host().balance(fisherman.public_key()) + res.fee.total() -
                          fisherman_before));

  // --- voluntary exit ----------------------------------------------------
  {
    host::Transaction tx;
    tx.payer = newcomer.public_key();
    tx.instructions.push_back(guest::ix::unstake(250));
    (void)submit_and_wait(d, std::move(tx));
    std::printf("[%7.1fs] newcomer unstakes 250 (held for %.0f s before withdrawal)\n",
                d.sim().now(), 600.0);

    host::Transaction early;
    early.payer = newcomer.public_key();
    early.instructions.push_back(guest::ix::withdraw_stake());
    const auto early_res = submit_and_wait(d, std::move(early));
    std::printf("[%7.1fs] early withdrawal attempt: %s\n", d.sim().now(),
                early_res.success ? "ok (?)" : early_res.error.c_str());

    d.run_for(700.0);
    host::Transaction late;
    late.payer = newcomer.public_key();
    late.instructions.push_back(guest::ix::withdraw_stake());
    const auto late_res = submit_and_wait(d, std::move(late));
    std::printf("[%7.1fs] withdrawal after hold: %s\n", d.sim().now(),
                late_res.success ? "funds returned" : late_res.error.c_str());
  }

  std::printf("\nfinal epoch size: %zu, guest blocks: %zu\n",
              d.guest().epoch_validators().size(), d.guest().block_count());
  return 0;
}
