// Writing a custom IBC application against the public API: a
// cross-chain governance module (one of the use cases motivating the
// paper's introduction).  A DAO on the counterparty chain sends
// parameter-change packets; a registry app bound to the "gov" port on
// the guest chain applies them, acknowledging success or failure.
//
//   $ ./examples/custom_app
#include <cstdio>
#include <map>

#include "relayer/deployment.hpp"

using namespace bmg;

namespace {

/// Packet payload: set `key` to `value`.
struct GovAction {
  std::string key;
  std::uint64_t value = 0;

  [[nodiscard]] Bytes encode() const {
    Encoder e;
    e.str(key).u64(value);
    return e.take();
  }
  [[nodiscard]] static GovAction decode(ByteView wire) {
    Decoder d(wire);
    GovAction a;
    a.key = d.str();
    a.value = d.u64();
    d.expect_done();
    return a;
  }
};

/// The guest-side app: a governed parameter registry.
class ParameterRegistry final : public ibc::IbcApp {
 public:
  explicit ParameterRegistry(ibc::IbcModule& module) { module.bind_port("gov", this); }

  ibc::Acknowledgement on_recv_packet(const ibc::Packet& packet) override {
    const GovAction action = GovAction::decode(packet.data);
    if (action.key.empty()) return ibc::Acknowledgement::fail("empty key");
    if (action.key == "frozen") return ibc::Acknowledgement::fail("parameter is immutable");
    params_[action.key] = action.value;
    std::printf("    [guest gov] set %-16s = %llu  (packet #%llu)\n",
                action.key.c_str(), (unsigned long long)action.value,
                (unsigned long long)packet.sequence);
    return ibc::Acknowledgement::ok();
  }
  void on_acknowledge(const ibc::Packet&, const ibc::Acknowledgement&) override {}
  void on_timeout(const ibc::Packet&) override {}

  [[nodiscard]] std::uint64_t get(const std::string& key) const {
    const auto it = params_.find(key);
    return it == params_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, std::uint64_t> params_;
};

/// The counterparty-side app: the DAO that issues proposals.
class Dao final : public ibc::IbcApp {
 public:
  Dao(ibc::IbcModule& module) : module_(module) { module.bind_port("gov", this); }

  void propose(const ibc::ChannelId& channel, const std::string& key,
               std::uint64_t value, double now) {
    const GovAction action{key, value};
    (void)module_.send_packet("gov", channel, action.encode(), 0, now + 3600.0);
    std::printf("    [dao] proposed %s = %llu\n", key.c_str(),
                (unsigned long long)value);
  }

  ibc::Acknowledgement on_recv_packet(const ibc::Packet&) override {
    return ibc::Acknowledgement::fail("dao receives nothing");
  }
  void on_acknowledge(const ibc::Packet& packet, const ibc::Acknowledgement& ack) override {
    const GovAction action = GovAction::decode(packet.data);
    std::printf("    [dao] proposal '%s' %s%s%s\n", action.key.c_str(),
                ack.success ? "ENACTED" : "REJECTED (",
                ack.success ? "" : ack.error.c_str(), ack.success ? "" : ")");
  }
  void on_timeout(const ibc::Packet& packet) override {
    std::printf("    [dao] proposal timed out (#%llu)\n",
                (unsigned long long)packet.sequence);
  }

 private:
  ibc::IbcModule& module_;
};

}  // namespace

int main() {
  std::printf("== custom IBC app: cross-chain governance over the guest chain ==\n\n");

  relayer::DeploymentConfig cfg;
  cfg.seed = 77;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    relayer::ValidatorProfile p;
    p.name = "gov-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 12;
  relayer::Deployment d(std::move(cfg));
  d.open_ibc();  // opens the "transfer" channel; we add a "gov" channel

  // Bind the custom apps on both chains.
  ParameterRegistry registry(d.guest().ibc());
  Dao dao(d.cp().ibc());

  // Open a second channel (port "gov") over the existing connection —
  // counterparty-initiated this time, exercising the mirror handshake.
  const auto& guest_conn = d.guest().ibc().connection(
      d.guest().ibc().channel("transfer", d.guest_channel()).connection);
  (void)guest_conn;
  std::printf("opening a dedicated 'gov' channel...\n");

  // Counterparty initiates.
  const ibc::ConnectionId cp_conn =
      d.cp().ibc().channel("transfer", d.cp_channel()).connection;
  const ibc::ChannelId gov_cp = d.cp().ibc().chan_open_init("gov", cp_conn, "gov");

  // Relay INIT to the guest: push a cp header, then ChanOpenTry on the
  // guest via chunked handshake transactions.
  bool updated = false;
  ibc::Height cp_h = 0;
  d.run_for(7.0);  // let a cp block commit the channel
  cp_h = d.cp().height();
  d.relayer().update_guest_client(cp_h, [&] { updated = true; });
  if (!d.run_until([&] { return updated; }, 600.0)) return 1;

  // Guest-side TRY (direct module call through the contract is what a
  // relayer's handshake txs do; for brevity use the deployment helper
  // pattern from open_ibc via raw module access on the guest).
  const ibc::ConnectionId guest_conn_id =
      d.guest().ibc().channel("transfer", d.guest_channel()).connection;
  const ibc::ChannelId gov_guest = d.guest().ibc().chan_open_try(
      "gov", guest_conn_id, "gov", gov_cp, d.cp().ibc().channel("gov", gov_cp), cp_h,
      d.cp().prove_at(cp_h, ibc::channel_key("gov", gov_cp)));

  // Finish the handshake on the counterparty (ACK) and guest (CONFIRM).
  bool pushed = false;
  // The guest channel end must be committed in a finalised guest block.
  if (!d.run_until(
          [&] {
            const auto& head = d.guest().head();
            return head.finalised &&
                   head.header.state_root == d.guest().store().root_hash();
          },
          600.0))
    return 1;
  const ibc::Height gh = d.guest().head().header.height;
  d.relayer().push_guest_header_to_cp(gh, [&] { pushed = true; });
  if (!d.run_until([&] { return pushed; }, 60.0)) return 1;
  d.cp().ibc().chan_open_ack("gov", gov_cp, gov_guest,
                             d.guest().ibc().channel("gov", gov_guest), gh,
                             d.guest().prove_at(gh, ibc::channel_key("gov", gov_guest)));
  d.run_for(7.0);
  const ibc::Height cp_h2 = d.cp().height();
  updated = false;
  d.relayer().update_guest_client(cp_h2, [&] { updated = true; });
  if (!d.run_until([&] { return updated; }, 600.0)) return 1;
  d.guest().ibc().chan_open_confirm(
      "gov", gov_guest, d.cp().ibc().channel("gov", gov_cp), cp_h2,
      d.cp().prove_at(cp_h2, ibc::channel_key("gov", gov_cp)));
  std::printf("gov channel open: cp %s <-> guest %s\n\n", gov_cp.c_str(),
              gov_guest.c_str());

  // --- governance in action --------------------------------------------
  dao.propose(gov_cp, "max_packet_bytes", 4096, d.sim().now());
  dao.propose(gov_cp, "fee_bps", 25, d.sim().now());
  dao.propose(gov_cp, "frozen", 1, d.sim().now());  // will be rejected

  if (!d.run_until([&] { return registry.get("fee_bps") == 25; }, 1800.0)) {
    std::printf("proposals did not land\n");
    return 1;
  }
  d.run_for(120.0);

  std::printf("\nfinal registry state on the guest chain:\n");
  std::printf("  max_packet_bytes = %llu\n",
              (unsigned long long)registry.get("max_packet_bytes"));
  std::printf("  fee_bps          = %llu\n", (unsigned long long)registry.get("fee_bps"));
  std::printf("  frozen           = %llu (proposal rejected by the app)\n",
              (unsigned long long)registry.get("frozen"));
  return 0;
}
