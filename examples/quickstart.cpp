// Quickstart: boot the full stack — Solana-like host, Guest Contract,
// validators, relayer, Tendermint-like counterparty — open an IBC
// connection + channel, and send one packet in each direction.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "relayer/deployment.hpp"

using namespace bmg;

int main() {
  std::printf("== Be My Guest: quickstart ==\n\n");

  // A compact deployment: 4 guest validators, 12 counterparty
  // validators, Δ = 60 s so empty blocks appear quickly.
  relayer::DeploymentConfig cfg;
  cfg.seed = 2024;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    relayer::ValidatorProfile p;
    p.name = "validator-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.5, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 12;

  relayer::Deployment d(std::move(cfg));

  std::printf("[%7.1fs] opening IBC connection + channel (full 8-step handshake,\n"
              "           guest steps as chunked host transactions)...\n",
              d.sim().now());
  d.open_ibc();
  std::printf("[%7.1fs] channel open: guest %s <-> counterparty %s\n\n", d.sim().now(),
              d.guest_channel().c_str(), d.cp_channel().c_str());

  // --- guest -> counterparty ------------------------------------------
  std::printf("[%7.1fs] alice (guest) sends 1000 SOL-tokens to bob (counterparty)\n",
              d.sim().now());
  const auto record =
      d.send_transfer_from_guest(1000, host::FeePolicy::priority(5'000'000));
  const std::string voucher = "transfer/" + d.cp_channel() + "/SOL";
  if (!d.run_until([&] { return d.cp().bank().balance("bob", voucher) == 1000; },
                   600.0)) {
    std::printf("transfer did not complete!\n");
    return 1;
  }
  std::printf("[%7.1fs]   SendPacket executed on host       (fee %.3f USD)\n",
              record->executed_at, record->fee_usd);
  std::printf("[%7.1fs]   packet in finalised guest block   (+%.1f s)\n",
              record->finalised_at, record->finalised_at - record->executed_at);
  std::printf("[%7.1fs]   voucher '%s' minted for bob\n\n", d.sim().now(),
              voucher.c_str());

  // --- counterparty -> guest ------------------------------------------
  std::printf("[%7.1fs] bob (counterparty) sends 500 PICA to alice (guest)\n",
              d.sim().now());
  (void)d.send_transfer_from_cp(500);
  const std::string pica_voucher = "transfer/" + d.guest_channel() + "/PICA";
  if (!d.run_until(
          [&] { return d.guest().bank().balance("alice", pica_voucher) == 500; },
          1200.0)) {
    std::printf("transfer did not complete!\n");
    return 1;
  }
  std::printf("[%7.1fs]   delivered into the guest after a light client update of"
              " %.0f host txs\n",
              d.sim().now(), d.relayer().update_tx_counts().samples().back());
  std::printf("[%7.1fs]   alice now holds 500 '%s'\n\n", d.sim().now(),
              pica_voucher.c_str());

  std::printf("final balances:\n");
  std::printf("  alice: %llu SOL, %llu %s\n",
              (unsigned long long)d.guest().bank().balance("alice", "SOL"),
              (unsigned long long)d.guest().bank().balance("alice", pica_voucher),
              pica_voucher.c_str());
  std::printf("  bob  : %llu PICA, %llu %s\n",
              (unsigned long long)d.cp().bank().balance("bob", "PICA"),
              (unsigned long long)d.cp().bank().balance("bob", voucher),
              voucher.c_str());
  std::printf("  guest escrow: %llu SOL backing the vouchers\n",
              (unsigned long long)d.guest().bank().balance(
                  ibc::TokenTransferApp::escrow_account(d.guest_channel()), "SOL"));
  std::printf("\nguest blocks: %zu, trie live nodes: %zu (sealed refs: %zu)\n",
              d.guest().block_count(), d.guest().store().stats().node_count(),
              d.guest().store().stats().sealed_refs);
  return 0;
}
