// A miniature of the paper's month-long deployment: run the full
// stack for several simulated hours with Poisson traffic in both
// directions and print a live status line per simulated half hour,
// ending with a cost/latency summary in the style of §V.
//
//   $ ./examples/relayer_daemon            (6 simulated hours)
//   $ ./examples/relayer_daemon 24         (24 simulated hours)
#include <cstdio>
#include <cstdlib>

#include "relayer/deployment.hpp"

using namespace bmg;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 6.0;
  std::printf("== relayer daemon: %.0f simulated hours of cross-chain traffic ==\n\n",
              hours);

  relayer::DeploymentConfig cfg;
  cfg.seed = 99;
  cfg.guest.delta_seconds = 1800.0;
  cfg.validators = relayer::paper_validators();
  cfg.counterparty.num_validators = 60;
  relayer::Deployment d(std::move(cfg));
  d.open_ibc();

  // Poisson traffic both ways.
  Rng traffic = d.rng().fork();
  std::function<void()> guest_send = [&] {
    (void)d.send_transfer_from_guest(
        50, host::FeePolicy::bundle(host::usd_to_lamports(3.019)));
    d.sim().after(traffic.exponential(900.0), guest_send);
  };
  std::function<void()> cp_send = [&] {
    (void)d.send_transfer_from_cp(20);
    d.sim().after(traffic.exponential(1500.0), cp_send);
  };
  d.sim().after(traffic.exponential(900.0), guest_send);
  d.sim().after(traffic.exponential(1500.0), cp_send);

  const double start = d.sim().now();
  std::printf("%8s %8s %10s %10s %10s %12s %14s\n", "time", "blocks", "pkts->cp",
              "pkts->gst", "lc-upds", "relayer $", "trie nodes");
  for (double t = 1800.0; t <= hours * 3600.0; t += 1800.0) {
    d.sim().run_until(start + t);
    const auto& st = d.host().payer_stats(d.relayer().payer());
    std::printf("%7.1fh %8zu %10llu %10llu %10zu %11.2f$ %14zu\n", t / 3600.0,
                d.guest().block_count(),
                (unsigned long long)d.relayer().packets_relayed_to_cp(),
                (unsigned long long)d.relayer().packets_relayed_to_guest(),
                d.relayer().update_tx_counts().count(),
                host::lamports_to_usd(st.fees_lamports),
                d.guest().store().stats().node_count());
  }

  std::printf("\n== summary (cf. paper §V) ==\n");
  const Series& upd_txs = d.relayer().update_tx_counts();
  const Series& upd_dur = d.relayer().update_durations();
  const Series& upd_cost = d.relayer().update_costs_usd();
  if (!upd_txs.empty()) {
    std::printf("light client updates: %zu   txs/update %.1f±%.1f   median %.0f s"
                "   median %.3f $\n",
                upd_txs.count(), upd_txs.mean(), upd_txs.stddev(),
                upd_dur.quantile(0.5), upd_cost.quantile(0.5));
  }
  const Series& rtx = d.relayer().recv_tx_counts();
  const Series& rcost = d.relayer().recv_costs_usd();
  if (!rtx.empty()) {
    std::printf("packet deliveries   : %zu   txs/delivery %.1f   median %.4f $\n",
                rtx.count(), rtx.mean(), rcost.quantile(0.5));
  }
  std::uint64_t total_sigs = 0;
  for (const auto& v : d.validators()) total_sigs += v->signatures_submitted();
  std::printf("validator signatures: %llu across %zu validators\n",
              (unsigned long long)total_sigs, d.validators().size());
  std::printf("guest account usage : %zu bytes of the 10 MiB cap\n",
              d.guest().account_bytes());
  std::printf("failed tx sequences : %llu\n",
              (unsigned long long)d.relayer().failed_sequences());
  return 0;
}
