// Cross-chain token transfer walkthrough (ICS-20 over the guest
// blockchain): escrow on the source, voucher minting on the
// destination, a return leg that burns the voucher and releases the
// escrow, and a timed-out transfer that refunds the sender.
//
//   $ ./examples/token_transfer
#include <cstdio>

#include "relayer/deployment.hpp"

using namespace bmg;

namespace {

void print_balances(relayer::Deployment& d, const std::string& voucher) {
  std::printf("    alice(guest): %6llu SOL | escrow: %5llu | bob(cp): %5llu %s"
              " | voucher supply: %llu\n",
              (unsigned long long)d.guest().bank().balance("alice", "SOL"),
              (unsigned long long)d.guest().bank().balance(
                  ibc::TokenTransferApp::escrow_account(d.guest_channel()), "SOL"),
              (unsigned long long)d.cp().bank().balance("bob", voucher),
              voucher.c_str(),
              (unsigned long long)d.cp().bank().total_supply(voucher));
}

}  // namespace

int main() {
  std::printf("== ICS-20 fungible token transfer over the guest blockchain ==\n\n");

  relayer::DeploymentConfig cfg;
  cfg.seed = 7;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 5; ++i) {
    relayer::ValidatorProfile p;
    p.name = "v" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 16;
  relayer::Deployment d(std::move(cfg));
  d.open_ibc();

  const std::string voucher = "transfer/" + d.cp_channel() + "/SOL";
  std::printf("channel open. starting state:\n");
  print_balances(d, voucher);

  // Leg 1: 3000 SOL-tokens guest -> counterparty.
  std::printf("\n[1] alice sends 3000 to bob (escrow + mint)\n");
  (void)d.send_transfer_from_guest(3000, host::FeePolicy::bundle(
                                             host::usd_to_lamports(3.019)));
  if (!d.run_until([&] { return d.cp().bank().balance("bob", voucher) == 3000; },
                   900.0))
    return 1;
  print_balances(d, voucher);

  // Leg 2: bob returns 1200 (burn + unescrow).
  std::printf("\n[2] bob returns 1200 (voucher burned, escrow released)\n");
  d.cp().transfer().send_transfer(d.cp_channel(), voucher, 1200, "bob", "alice", 0,
                                  d.sim().now() + 3600.0);
  if (!d.run_until(
          [&] { return d.guest().bank().balance("alice", "SOL") == 1'000'000 - 1800; },
          1800.0))
    return 1;
  print_balances(d, voucher);

  // Invariant: escrow always equals outstanding voucher supply.
  const bool invariant =
      d.guest().bank().balance(
          ibc::TokenTransferApp::escrow_account(d.guest_channel()), "SOL") ==
      d.cp().bank().total_supply(voucher);
  std::printf("\ninvariant escrow == outstanding vouchers: %s\n",
              invariant ? "HOLDS" : "VIOLATED");

  // Leg 3: a transfer that times out and refunds.
  std::printf("\n[3] alice sends 500 with a 1-second timeout (will expire)\n");
  const double timeout_at = d.sim().now() + 1.0;
  host::Transaction tx;
  tx.payer = d.client_payer();
  tx.fee = host::FeePolicy::priority(5'000'000);
  tx.instructions.push_back(guest::ix::send_transfer(d.guest_channel(), "SOL", 500,
                                                     "alice", "bob", 0, timeout_at));
  const std::uint64_t seq =
      d.guest().ibc().next_send_sequence("transfer", d.guest_channel());
  bool sent = false;
  d.host().submit(std::move(tx), [&](const host::TxResult& r) { sent = r.success; });
  (void)d.run_until([&] { return sent; }, 120.0);
  std::printf("    after send:   alice %llu SOL (500 in escrow)\n",
              (unsigned long long)d.guest().bank().balance("alice", "SOL"));

  // Let the counterparty clock pass the deadline, then relay the
  // timeout with a receipt-absence proof.
  d.run_for(30.0);
  const ibc::Height cp_h = d.cp().height();
  bool updated = false;
  d.relayer().update_guest_client(cp_h, [&] { updated = true; });
  (void)d.run_until([&] { return updated; }, 900.0);

  ibc::Packet packet;
  for (ibc::Height h = d.guest().head().header.height; h > 0; --h) {
    for (const auto& p : d.guest().block_at(h).packets)
      if (p.sequence == seq) packet = p;
  }
  bool refunded = false;
  d.relayer().deliver_timeout_to_guest(
      packet, cp_h,
      [&](const relayer::RelayerAgent::SequenceOutcome& out) { refunded = out.ok; });
  (void)d.run_until([&] { return refunded; }, 900.0);
  std::printf("    after timeout refund: alice %llu SOL\n",
              (unsigned long long)d.guest().bank().balance("alice", "SOL"));

  std::printf("\nrelayer totals: %llu packets to counterparty, %llu into guest, "
              "%zu light client updates (mean %.1f txs)\n",
              (unsigned long long)d.relayer().packets_relayed_to_cp(),
              (unsigned long long)d.relayer().packets_relayed_to_guest(),
              d.relayer().update_tx_counts().count(),
              d.relayer().update_tx_counts().empty()
                  ? 0.0
                  : d.relayer().update_tx_counts().mean());
  return 0;
}
