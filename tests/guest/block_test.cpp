#include "guest/block.hpp"

#include <gtest/gtest.h>

#include "common/codec.hpp"

namespace bmg::guest {
namespace {

ibc::ValidatorSet make_set(int n) {
  ibc::ValidatorSet set;
  for (int i = 0; i < n; ++i)
    set.add(crypto::PrivateKey::from_label("bv-" + std::to_string(i)).public_key(), 50);
  return set;
}

TEST(GuestBlock, MakeFillsHeaderAndExtra) {
  const ibc::ValidatorSet set = make_set(3);
  Hash32 root, prev;
  root.bytes[0] = 1;
  prev.bytes[0] = 2;
  const GuestBlock b = GuestBlock::make("guest-1", 5, 123.5, root, prev, 999, set);
  EXPECT_EQ(b.header.chain_id, "guest-1");
  EXPECT_EQ(b.header.height, 5u);
  EXPECT_EQ(b.header.state_root, root);
  EXPECT_EQ(b.header.validator_set_hash, set.hash());
  EXPECT_EQ(b.prev_hash, prev);
  EXPECT_EQ(b.host_height, 999u);

  // Extra binds prev hash and host height into the signing digest.
  Decoder d(b.header.extra);
  EXPECT_EQ(d.hash(), prev);
  EXPECT_EQ(d.u64(), 999u);
  d.expect_done();
}

TEST(GuestBlock, HashBindsAllFields) {
  const ibc::ValidatorSet set = make_set(3);
  const GuestBlock base = GuestBlock::make("guest-1", 5, 1.0, Hash32{}, Hash32{}, 9, set);
  GuestBlock other = GuestBlock::make("guest-1", 5, 1.0, Hash32{}, Hash32{}, 10, set);
  EXPECT_NE(base.hash(), other.hash());  // host height differs
  Hash32 prev;
  prev.bytes[3] = 7;
  other = GuestBlock::make("guest-1", 5, 1.0, Hash32{}, prev, 9, set);
  EXPECT_NE(base.hash(), other.hash());  // prev hash differs
}

TEST(GuestBlock, SignedStakeCountsOnlySetMembers) {
  const ibc::ValidatorSet set = make_set(3);
  GuestBlock b = GuestBlock::make("guest-1", 1, 1.0, Hash32{}, Hash32{}, 1, set);
  const auto outsider = crypto::PrivateKey::from_label("outsider");
  b.signers[set.entries()[0].key] = crypto::Signature{};
  b.signers[outsider.public_key()] = crypto::Signature{};
  EXPECT_EQ(b.signed_stake(), 50u);  // outsider contributes nothing
}

TEST(GuestBlock, ToSignedHeaderCarriesSignaturesAndRotation) {
  const ibc::ValidatorSet set = make_set(3);
  GuestBlock b = GuestBlock::make("guest-1", 1, 1.0, Hash32{}, Hash32{}, 1, set);
  const auto k = crypto::PrivateKey::from_label("bv-0");
  b.signers[k.public_key()] = k.sign(b.hash().view());
  b.next_validators = make_set(4);
  EXPECT_TRUE(b.last_in_epoch());

  const ibc::SignedQuorumHeader sh = b.to_signed_header();
  EXPECT_EQ(sh.signatures.size(), 1u);
  ASSERT_TRUE(sh.next_validators.has_value());
  EXPECT_EQ(sh.next_validators->size(), 4u);
  // Round-trips on the wire.
  const auto back = ibc::SignedQuorumHeader::decode(sh.encode());
  EXPECT_EQ(back.header, sh.header);
}

TEST(GuestBlock, ByteSizeGrowsWithContent) {
  const ibc::ValidatorSet set = make_set(3);
  GuestBlock b = GuestBlock::make("guest-1", 1, 1.0, Hash32{}, Hash32{}, 1, set);
  const std::size_t empty = b.byte_size();
  ibc::Packet p;
  p.data = Bytes(100, 0xAA);
  b.packets.push_back(p);
  EXPECT_GT(b.byte_size(), empty + 100);
}

}  // namespace
}  // namespace bmg::guest
