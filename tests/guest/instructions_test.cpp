#include "guest/instructions.hpp"

#include <gtest/gtest.h>

#include "host/constants.hpp"

namespace bmg::guest {
namespace {

TEST(Instructions, AllTargetGuestProgram) {
  EXPECT_EQ(ix::generate_block().program, kProgramName);
  EXPECT_EQ(ix::stake(1).program, kProgramName);
  EXPECT_EQ(ix::handshake(1).program, kProgramName);
  EXPECT_EQ(ix::self_destruct().program, kProgramName);
}

TEST(Instructions, OpTagLeadsPayload) {
  const host::Instruction ix = ix::sign_block(7, crypto::PublicKey{});
  Decoder d(ix.data);
  EXPECT_EQ(static_cast<Op>(d.u8()), Op::kSign);
  EXPECT_EQ(d.u64(), 7u);
  EXPECT_EQ(d.raw(32).size(), 32u);
  d.expect_done();
}

TEST(Instructions, SendPacketRoundTrip) {
  const host::Instruction ix =
      ix::send_packet("transfer", "channel-3", bytes_of("payload"), 100, 25.5);
  Decoder d(ix.data);
  EXPECT_EQ(static_cast<Op>(d.u8()), Op::kSendPacket);
  EXPECT_EQ(d.str(), "transfer");
  EXPECT_EQ(d.str(), "channel-3");
  EXPECT_EQ(d.bytes(), bytes_of("payload"));
  EXPECT_EQ(d.u64(), 100u);
  EXPECT_EQ(d.u64(), 25'500'000u);  // microseconds
}

TEST(Instructions, ChunkPayloadCoversWholeBlobInOrder) {
  Bytes blob(5000);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::uint8_t>(i * 7);
  const auto chunks = ix::chunk_payload(blob);
  EXPECT_GT(chunks.size(), 1u);
  Bytes reassembled;
  for (const auto& c : chunks) {
    EXPECT_LE(c.size(), ix::max_chunk_bytes());
    reassembled.insert(reassembled.end(), c.begin(), c.end());
  }
  EXPECT_EQ(reassembled, blob);
}

TEST(Instructions, EmptyPayloadYieldsOneEmptyChunk) {
  const auto chunks = ix::chunk_payload({});
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].empty());
}

TEST(Instructions, ChunkUploadTransactionFitsSizeLimit) {
  const Bytes blob(ix::max_chunk_bytes(), 0xEE);
  host::Transaction tx;
  tx.payer = crypto::PrivateKey::from_label("x").public_key();
  tx.instructions.push_back(ix::chunk_upload(1, 0, blob));
  EXPECT_LE(tx.wire_size(), host::kMaxTransactionSize);
}

TEST(Instructions, BufferOpsEncodeBufferId) {
  for (const auto& ix : {ix::receive_packet(42), ix::acknowledge_packet(42),
                         ix::timeout_packet(42), ix::begin_client_update(42),
                         ix::submit_evidence(42), ix::handshake(42),
                         ix::freeze_client(42)}) {
    Decoder d(ix.data);
    (void)d.u8();
    EXPECT_EQ(d.u64(), 42u);
    d.expect_done();
  }
}

}  // namespace
}  // namespace bmg::guest
