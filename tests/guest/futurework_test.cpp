// Tests of the paper's §VI future-work features implemented here:
// light client misbehaviour freezing + rate limiting (§VI-C) and the
// self-destruct wind-down that mitigates the last-validator bank run
// (§VI-A).
#include <gtest/gtest.h>

#include "guest/contract.hpp"
#include "guest/instructions.hpp"
#include "host/chain.hpp"

namespace bmg::guest {
namespace {

using crypto::PrivateKey;
using crypto::PublicKey;

class FutureWorkTest : public ::testing::Test {
 protected:
  FutureWorkTest() : chain_(sim_, Rng(3), fast()) {
    for (int i = 0; i < 4; ++i) {
      validator_keys_.push_back(PrivateKey::from_label("fw-val-" + std::to_string(i)));
      genesis_.push_back({validator_keys_.back().public_key(), 100});
    }
    for (int i = 0; i < 4; ++i) {
      cp_keys_.push_back(PrivateKey::from_label("fw-cp-" + std::to_string(i)));
      cp_set_.add(cp_keys_.back().public_key(), 10);
    }
    payer_ = PrivateKey::from_label("fw-payer").public_key();
    chain_.airdrop(payer_, 1000 * host::kLamportsPerSol);
    chain_.start();
  }

  static host::ChainConfig fast() {
    host::ChainConfig cfg;
    cfg.p_include_base = 1.0;
    return cfg;
  }

  GuestContract* install(GuestConfig cfg, const std::string& name = "guest") {
    auto contract = std::make_unique<GuestContract>(cfg, genesis_, cp_set_);
    GuestContract* ptr = contract.get();
    chain_.register_program(name, std::move(contract));
    chain_.airdrop(ptr->stake_vault(), 400);
    return ptr;
  }

  host::TxResult submit(host::Instruction ix, std::vector<host::SigVerify> sigs = {},
                        const std::string& program = "guest") {
    ix.program = program;
    host::Transaction tx;
    tx.payer = payer_;
    tx.instructions.push_back(std::move(ix));
    tx.sig_verifies = std::move(sigs);
    host::TxResult out;
    bool got = false;
    chain_.submit(std::move(tx), [&](const host::TxResult& r) {
      out = r;
      got = true;
    });
    sim_.run_until(sim_.now() + 30.0);
    EXPECT_TRUE(got);
    return out;
  }

  void upload(std::uint64_t id, ByteView blob, const std::string& program = "guest") {
    std::uint32_t offset = 0;
    for (const Bytes& chunk : ix::chunk_payload(blob)) {
      ASSERT_TRUE(submit(ix::chunk_upload(id, offset, chunk), {}, program).success);
      offset += static_cast<std::uint32_t>(chunk.size());
    }
  }

  ibc::SignedQuorumHeader cp_header(ibc::Height h, std::uint8_t tag,
                                    int signers = 4) const {
    ibc::QuorumHeader header;
    header.chain_id = "picasso-1";
    header.height = h;
    header.timestamp = static_cast<double>(h);
    header.state_root.bytes[0] = tag;
    header.validator_set_hash = cp_set_.hash();
    ibc::SignedQuorumHeader sh;
    sh.header = header;
    const Hash32 digest = header.signing_digest();
    for (int i = 0; i < signers; ++i)
      sh.signatures.emplace_back(cp_keys_[static_cast<std::size_t>(i)].public_key(),
                                 cp_keys_[static_cast<std::size_t>(i)].sign(digest.view()));
    return sh;
  }

  /// Runs the full chunked client-update flow for one header.
  host::TxResult apply_update(GuestContract* contract, const ibc::SignedQuorumHeader& sh,
                              std::uint64_t buffer_id) {
    Encoder payload;
    payload.bytes(sh.header.encode());
    payload.boolean(false);
    upload(buffer_id, payload.out());
    EXPECT_TRUE(submit(ix::begin_client_update(buffer_id)).success);
    const Hash32 digest = sh.header.signing_digest();
    std::vector<host::SigVerify> sigs;
    for (const auto& [k, s] : sh.signatures)
      sigs.push_back(host::SigVerify{k, digest, s});
    EXPECT_TRUE(submit(ix::verify_update_signatures(), sigs).success);
    (void)contract;
    return submit(ix::finish_client_update());
  }

  sim::Simulation sim_;
  host::Chain chain_;
  std::vector<PrivateKey> validator_keys_;
  std::vector<ibc::ValidatorInfo> genesis_;
  std::vector<PrivateKey> cp_keys_;
  ibc::ValidatorSet cp_set_;
  PublicKey payer_;
};

// --- §VI-C: light client misbehaviour freezing -------------------------

TEST_F(FutureWorkTest, ForkEvidenceFreezesClient) {
  GuestConfig cfg;
  GuestContract* contract = install(cfg);

  const auto ha = cp_header(10, 0xAA);
  const auto hb = cp_header(10, 0xBB);
  Encoder blob;
  blob.bytes(ha.encode());
  blob.bytes(hb.encode());
  upload(1, blob.out());
  const auto res = submit(ix::freeze_client(1));
  ASSERT_TRUE(res.success) << res.error;
  EXPECT_TRUE(contract->counterparty_client().frozen());

  // Frozen client: no more updates accepted.
  const auto upd = apply_update(contract, cp_header(11, 0x01), 2);
  EXPECT_FALSE(upd.success);
  // And no proofs verify (consensus states are withheld).
  EXPECT_FALSE(contract->counterparty_client().consensus_at(10).has_value());
}

TEST_F(FutureWorkTest, FreezeRejectsNonQuorumForks) {
  GuestConfig cfg;
  GuestContract* contract = install(cfg);
  const auto ha = cp_header(10, 0xAA, /*signers=*/1);  // below quorum
  const auto hb = cp_header(10, 0xBB, /*signers=*/1);
  Encoder blob;
  blob.bytes(ha.encode());
  blob.bytes(hb.encode());
  upload(1, blob.out());
  EXPECT_FALSE(submit(ix::freeze_client(1)).success);
  EXPECT_FALSE(contract->counterparty_client().frozen());
}

TEST_F(FutureWorkTest, FreezeRejectsIdenticalHeaders) {
  GuestConfig cfg;
  GuestContract* contract = install(cfg);
  const auto ha = cp_header(10, 0xAA);
  Encoder blob;
  blob.bytes(ha.encode());
  blob.bytes(ha.encode());
  upload(1, blob.out());
  EXPECT_FALSE(submit(ix::freeze_client(1)).success);
  EXPECT_FALSE(contract->counterparty_client().frozen());
}

// --- §VI-C: rate limiting ------------------------------------------------

TEST_F(FutureWorkTest, ClientUpdatesAreRateLimited) {
  GuestConfig cfg;
  cfg.client_update_min_interval_s = 10'000.0;
  GuestContract* contract = install(cfg);

  ASSERT_TRUE(apply_update(contract, cp_header(10, 0x01), 1).success);
  EXPECT_EQ(contract->counterparty_client().latest_height(), 10u);

  // A second update immediately after is rejected...
  const auto res = apply_update(contract, cp_header(11, 0x02), 2);
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("rate limited"), std::string::npos);

  // ... but passes once the interval elapsed (same pending update —
  // the begin/verify state survived the rejected finish).
  sim_.run_until(sim_.now() + 12'000.0);
  EXPECT_TRUE(submit(ix::finish_client_update()).success);
  EXPECT_EQ(contract->counterparty_client().latest_height(), 11u);
}

TEST_F(FutureWorkTest, RateLimitDisabledByDefault) {
  GuestConfig cfg;
  GuestContract* contract = install(cfg);
  ASSERT_TRUE(apply_update(contract, cp_header(10, 0x01), 1).success);
  ASSERT_TRUE(apply_update(contract, cp_header(11, 0x02), 2).success);
  EXPECT_EQ(contract->counterparty_client().latest_height(), 11u);
}

// --- §V-C: signing rewards --------------------------------------------------

TEST_F(FutureWorkTest, SignersEarnFeeRewards) {
  GuestConfig cfg;
  cfg.delta_seconds = 50.0;
  cfg.signer_reward_fraction = 0.5;
  GuestContract* contract = install(cfg);
  // Fund the treasury as accumulated send fees would.
  chain_.airdrop(contract->treasury(), 1'000'000);

  // Let Δ elapse, generate a block and collect three signatures
  // (quorum for 4 equal stakes).
  sim_.run_until(60.0);
  ASSERT_TRUE(submit(ix::generate_block()).success);
  const ibc::Height h = contract->head().header.height;
  std::vector<std::uint64_t> before;
  for (int i = 0; i < 3; ++i)
    before.push_back(chain_.balance(validator_keys_[static_cast<std::size_t>(i)].public_key()));
  for (int i = 0; i < 3; ++i) {
    const PrivateKey& key = validator_keys_[static_cast<std::size_t>(i)];
    const Hash32 digest = contract->block_at(h).hash();
    ASSERT_TRUE(submit(ix::sign_block(h, key.public_key()),
                       {host::SigVerify{key.public_key(),
                                        digest,
                                        key.sign(digest.view())}})
                    .success);
  }
  ASSERT_TRUE(contract->block_at(h).finalised);

  // Half the treasury split equally across the three quorum signers,
  // net of each signer's two-signature transaction fee.
  EXPECT_GT(contract->rewards_paid(), 0u);
  for (int i = 0; i < 3; ++i) {
    const auto& key = validator_keys_[static_cast<std::size_t>(i)].public_key();
    const std::uint64_t fees = chain_.payer_stats(key).fees_lamports;
    EXPECT_EQ(chain_.balance(key) + fees,
              before[static_cast<std::size_t>(i)] + 500'000 / 3)
        << i;
  }
  // The late fourth signature earns nothing.
  const PrivateKey& late = validator_keys_[3];
  const std::uint64_t late_before = chain_.balance(late.public_key());
  const Hash32 digest = contract->block_at(h).hash();
  ASSERT_TRUE(submit(ix::sign_block(h, late.public_key()),
                     {host::SigVerify{late.public_key(),
                                      digest,
                                      late.sign(digest.view())}})
                  .success);
  EXPECT_LE(chain_.balance(late.public_key()), late_before);  // only fees moved
}

TEST_F(FutureWorkTest, RewardsDisabledByDefault) {
  GuestConfig cfg;
  cfg.delta_seconds = 50.0;
  GuestContract* contract = install(cfg);
  chain_.airdrop(contract->treasury(), 1'000'000);
  sim_.run_until(60.0);
  ASSERT_TRUE(submit(ix::generate_block()).success);
  const ibc::Height h = contract->head().header.height;
  for (int i = 0; i < 3; ++i) {
    const PrivateKey& key = validator_keys_[static_cast<std::size_t>(i)];
    const Hash32 digest = contract->block_at(h).hash();
    ASSERT_TRUE(submit(ix::sign_block(h, key.public_key()),
                       {host::SigVerify{key.public_key(),
                                        digest,
                                        key.sign(digest.view())}})
                    .success);
  }
  EXPECT_EQ(contract->rewards_paid(), 0u);
  EXPECT_EQ(chain_.balance(contract->treasury()), 1'000'000u);
}

// --- §VI-A: self-destruction ----------------------------------------------

TEST_F(FutureWorkTest, SelfDestructReleasesStakesAfterStall) {
  GuestConfig cfg;
  cfg.self_destruct_after_s = 500.0;
  cfg.delta_seconds = 1e9;  // ensure no blocks are generated
  GuestContract* contract = install(cfg);

  // Too early: rejected.
  EXPECT_FALSE(submit(ix::self_destruct()).success);
  EXPECT_FALSE(contract->terminated());

  sim_.run_until(600.0);
  const std::uint64_t v0_before = chain_.balance(validator_keys_[0].public_key());
  const auto res = submit(ix::self_destruct());
  ASSERT_TRUE(res.success) << res.error;
  EXPECT_TRUE(contract->terminated());

  // Each genesis validator got its pro-rata share (equal stakes: 100).
  EXPECT_EQ(chain_.balance(validator_keys_[0].public_key()), v0_before + 100);
  EXPECT_EQ(contract->stake_of(validator_keys_[0].public_key()), 0u);

  // The chain is dead: nothing executes any more.
  const auto dead = submit(ix::generate_block());
  EXPECT_FALSE(dead.success);
  EXPECT_NE(dead.error.find("self-destructed"), std::string::npos);
}

TEST_F(FutureWorkTest, SelfDestructDisabledByDefault) {
  GuestConfig cfg;
  cfg.delta_seconds = 1e9;
  GuestContract* contract = install(cfg);
  sim_.run_until(100000.0);
  EXPECT_FALSE(submit(ix::self_destruct()).success);
  EXPECT_FALSE(contract->terminated());
}

TEST_F(FutureWorkTest, SelfDestructIncludesQueuedWithdrawals) {
  GuestConfig cfg;
  cfg.self_destruct_after_s = 500.0;
  cfg.delta_seconds = 1e9;
  cfg.unstake_hold_seconds = 1e9;  // withdrawal would never unlock normally
  GuestContract* contract = install(cfg);
  (void)contract;

  // A staker exits; funds are stuck in the hold queue.
  const PrivateKey staker = PrivateKey::from_label("fw-staker");
  chain_.airdrop(staker.public_key(), 10 * host::kLamportsPerSol);
  {
    host::Instruction stake_ix = ix::stake(400);
    stake_ix.program = "guest";
    host::Transaction tx;
    tx.payer = staker.public_key();
    tx.instructions.push_back(std::move(stake_ix));
    bool ok = false;
    chain_.submit(std::move(tx), [&](const host::TxResult& r) { ok = r.success; });
    sim_.run_until(sim_.now() + 10.0);
    ASSERT_TRUE(ok);
  }
  {
    host::Instruction unstake_ix = ix::unstake(400);
    unstake_ix.program = "guest";
    host::Transaction tx;
    tx.payer = staker.public_key();
    tx.instructions.push_back(std::move(unstake_ix));
    bool ok = false;
    chain_.submit(std::move(tx), [&](const host::TxResult& r) { ok = r.success; });
    sim_.run_until(sim_.now() + 10.0);
    ASSERT_TRUE(ok);
  }

  sim_.run_until(600.0);
  const std::uint64_t before = chain_.balance(staker.public_key());
  ASSERT_TRUE(submit(ix::self_destruct()).success);
  // The queued withdrawal was released by the wind-down.
  EXPECT_GE(chain_.balance(staker.public_key()), before + 390);
}

}  // namespace
}  // namespace bmg::guest
