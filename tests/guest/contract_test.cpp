// Unit tests of the Guest Contract (Alg. 1) driven through the host
// runtime: block production, quorum finalisation, staking, slashing,
// staging buffers and the chunked light-client-update machinery.
#include "guest/contract.hpp"

#include <gtest/gtest.h>

#include "guest/instructions.hpp"
#include "host/chain.hpp"

namespace bmg::guest {
namespace {

using crypto::PrivateKey;
using crypto::PublicKey;

class GuestContractTest : public ::testing::Test {
 protected:
  static constexpr int kNumValidators = 4;  // quorum = 3 (equal stake)
  static constexpr int kNumCpValidators = 5;

  GuestContractTest() : chain_(sim_, Rng(7), fast_inclusion()) {
    for (int i = 0; i < kNumValidators; ++i) {
      validator_keys_.push_back(PrivateKey::from_label("val-" + std::to_string(i)));
      genesis_.push_back({validator_keys_.back().public_key(), 100});
    }
    for (int i = 0; i < kNumCpValidators; ++i) {
      cp_keys_.push_back(PrivateKey::from_label("cpval-" + std::to_string(i)));
      cp_set_.add(cp_keys_.back().public_key(), 10);
    }
    GuestConfig cfg;
    cfg.delta_seconds = 100.0;
    cfg.epoch_length_host_slots = 1'000'000;  // no rotation unless a test wants it
    cfg.unstake_hold_seconds = 50.0;
    auto contract = std::make_unique<GuestContract>(cfg, genesis_, cp_set_);
    contract_ = contract.get();
    chain_.register_program(kProgramName, std::move(contract));

    payer_ = PrivateKey::from_label("gc-payer").public_key();
    chain_.airdrop(payer_, 1000 * host::kLamportsPerSol);
    // Back the genesis validators' stake with real lamports so that
    // slashing has something to move.
    chain_.airdrop(contract_->stake_vault(), 100 * kNumValidators);
    for (const auto& k : validator_keys_)
      chain_.airdrop(k.public_key(), 1000 * host::kLamportsPerSol);
    chain_.start();
  }

  static host::ChainConfig fast_inclusion() {
    host::ChainConfig cfg;
    cfg.p_include_base = 1.0;  // deterministic unit tests
    return cfg;
  }

  host::TxResult submit(host::Instruction ix, const PublicKey& payer,
                        std::vector<host::SigVerify> sigs = {}) {
    host::Transaction tx;
    tx.payer = payer;
    tx.instructions.push_back(std::move(ix));
    tx.sig_verifies = std::move(sigs);
    host::TxResult out;
    bool got = false;
    chain_.submit(std::move(tx), [&](const host::TxResult& r) {
      out = r;
      got = true;
    });
    sim_.run_until(sim_.now() + 30.0);
    EXPECT_TRUE(got);
    return out;
  }

  host::TxResult submit(host::Instruction ix) { return submit(std::move(ix), payer_); }

  /// Uploads `blob` into a staging buffer owned by `payer`.
  void upload(std::uint64_t buffer_id, ByteView blob, const PublicKey& payer) {
    std::uint32_t offset = 0;
    for (const Bytes& chunk : ix::chunk_payload(blob)) {
      const auto res = submit(ix::chunk_upload(buffer_id, offset, chunk), payer);
      ASSERT_TRUE(res.success) << res.error;
      offset += static_cast<std::uint32_t>(chunk.size());
    }
  }

  /// Touches the trie so GenerateBlock has something to commit.
  void dirty_state() {
    Encoder e;
    e.u8(static_cast<std::uint8_t>(HandshakeOp::kConnOpenInit));
    e.str(contract_->counterparty_client_id()).str("remote-client");
    upload(999, e.out(), payer_);
    const auto res = submit(ix::handshake(999));
    ASSERT_TRUE(res.success) << res.error;
  }

  host::TxResult sign_block(ibc::Height h, int validator) {
    const PrivateKey& key = validator_keys_[static_cast<std::size_t>(validator)];
    const Hash32 digest = contract_->block_at(h).hash();
    return submit(
        ix::sign_block(h, key.public_key()), key.public_key(),
        {host::SigVerify{key.public_key(),
                         digest,
                         key.sign(digest.view())}});
  }

  void finalise_head() {
    const ibc::Height h = contract_->head().header.height;
    for (int i = 0; i < kNumValidators; ++i) {
      if (contract_->block_at(h).finalised) break;
      ASSERT_TRUE(sign_block(h, i).success);
    }
    ASSERT_TRUE(contract_->block_at(h).finalised);
  }

  sim::Simulation sim_;
  host::Chain chain_;
  GuestContract* contract_ = nullptr;
  std::vector<PrivateKey> validator_keys_;
  std::vector<ibc::ValidatorInfo> genesis_;
  std::vector<PrivateKey> cp_keys_;
  ibc::ValidatorSet cp_set_;
  PublicKey payer_;
};

TEST_F(GuestContractTest, GenesisIsFinalised) {
  EXPECT_EQ(contract_->head().header.height, 0u);
  EXPECT_TRUE(contract_->head().finalised);
  EXPECT_EQ(contract_->epoch_validators().size(),
            static_cast<std::size_t>(kNumValidators));
}

TEST_F(GuestContractTest, GenerateBlockNeedsStateChangeOrAge) {
  const auto res = submit(ix::generate_block());
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("nothing to commit"), std::string::npos);
}

TEST_F(GuestContractTest, GenerateBlockAfterStateChange) {
  dirty_state();
  const auto res = submit(ix::generate_block());
  ASSERT_TRUE(res.success) << res.error;
  EXPECT_EQ(contract_->head().header.height, 1u);
  EXPECT_FALSE(contract_->head().finalised);
  EXPECT_EQ(contract_->head().prev_hash, contract_->block_at(0).hash());
}

TEST_F(GuestContractTest, GenerateBlockAfterDelta) {
  sim_.run_until(150.0);  // Δ = 100 s
  const auto res = submit(ix::generate_block());
  ASSERT_TRUE(res.success) << res.error;
  EXPECT_TRUE(contract_->head().packets.empty());  // empty block
}

TEST_F(GuestContractTest, GenerateBlockBlockedWhileHeadUnfinalised) {
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  sim_.run_until(300.0);  // well past Δ
  const auto res = submit(ix::generate_block());
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("not finalised"), std::string::npos);
}

TEST_F(GuestContractTest, QuorumFinalisesBlock) {
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  ASSERT_TRUE(sign_block(1, 0).success);
  EXPECT_FALSE(contract_->block_at(1).finalised);
  ASSERT_TRUE(sign_block(1, 1).success);
  EXPECT_FALSE(contract_->block_at(1).finalised);
  ASSERT_TRUE(sign_block(1, 2).success);  // 300/400 >= 267
  EXPECT_TRUE(contract_->block_at(1).finalised);
}

TEST_F(GuestContractTest, SignRejectsInvalidHeight) {
  const auto res = sign_block(0, 0);  // genesis exists; height 5 doesn't
  (void)res;                          // signing genesis again is fine to attempt
  const PrivateKey& key = validator_keys_[0];
  const Hash32 digest = contract_->block_at(0).hash();
  const auto bad = submit(
      ix::sign_block(5, key.public_key()), key.public_key(),
      {host::SigVerify{key.public_key(), digest,
                       key.sign(digest.view())}});
  EXPECT_FALSE(bad.success);
  EXPECT_NE(bad.error.find("invalid height"), std::string::npos);
}

TEST_F(GuestContractTest, SignRejectsNonValidator) {
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  const PrivateKey outsider = PrivateKey::from_label("outsider");
  chain_.airdrop(outsider.public_key(), host::kLamportsPerSol);
  const Hash32 digest = contract_->block_at(1).hash();
  const auto res = submit(
      ix::sign_block(1, outsider.public_key()), outsider.public_key(),
      {host::SigVerify{outsider.public_key(),
                       digest,
                       outsider.sign(digest.view())}});
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("not an active validator"), std::string::npos);
}

TEST_F(GuestContractTest, SignRejectsDuplicate) {
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  ASSERT_TRUE(sign_block(1, 0).success);
  const auto res = sign_block(1, 0);
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("already signed"), std::string::npos);
}

TEST_F(GuestContractTest, SignRequiresPrecompileSignature) {
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  // No sig_verifies attached.
  const auto res = submit(ix::sign_block(1, validator_keys_[0].public_key()),
                          validator_keys_[0].public_key());
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("no verified signature"), std::string::npos);
}

TEST_F(GuestContractTest, SignRejectsSignatureOverWrongBlock) {
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  const PrivateKey& key = validator_keys_[0];
  const Hash32 wrong = contract_->block_at(0).hash();  // signed genesis, claims block 1
  const auto res = submit(
      ix::sign_block(1, key.public_key()), key.public_key(),
      {host::SigVerify{key.public_key(), wrong,
                       key.sign(wrong.view())}});
  EXPECT_FALSE(res.success);
}

TEST_F(GuestContractTest, StakeUnstakeWithdrawLifecycle) {
  const PrivateKey staker = PrivateKey::from_label("staker");
  chain_.airdrop(staker.public_key(), 10 * host::kLamportsPerSol);
  ASSERT_TRUE(submit(ix::stake(500'000'000), staker.public_key()).success);
  EXPECT_EQ(contract_->stake_of(staker.public_key()), 500'000'000u);

  ASSERT_TRUE(submit(ix::unstake(200'000'000), staker.public_key()).success);
  EXPECT_EQ(contract_->stake_of(staker.public_key()), 300'000'000u);

  // Hold period (50 s) not over yet.
  const auto early = submit(ix::withdraw_stake(), staker.public_key());
  EXPECT_FALSE(early.success);

  sim_.run_until(sim_.now() + 60.0);
  const std::uint64_t before = chain_.balance(staker.public_key());
  ASSERT_TRUE(submit(ix::withdraw_stake(), staker.public_key()).success);
  EXPECT_GT(chain_.balance(staker.public_key()), before);
}

TEST_F(GuestContractTest, UnstakeMoreThanStakedFails) {
  const PrivateKey staker = PrivateKey::from_label("staker2");
  chain_.airdrop(staker.public_key(), 10 * host::kLamportsPerSol);
  ASSERT_TRUE(submit(ix::stake(100), staker.public_key()).success);
  EXPECT_FALSE(submit(ix::unstake(101), staker.public_key()).success);
}

TEST_F(GuestContractTest, EpochRotationSelectsTopStake) {
  // Shrink the epoch so rotation triggers, then out-stake validator 3.
  GuestConfig cfg;
  cfg.delta_seconds = 100.0;
  cfg.epoch_length_host_slots = 10;
  cfg.max_validators = 4;
  auto fresh = std::make_unique<GuestContract>(cfg, genesis_, cp_set_);
  GuestContract* contract = fresh.get();
  chain_.register_program("guest2", std::move(fresh));

  const PrivateKey whale = PrivateKey::from_label("whale");
  chain_.airdrop(whale.public_key(), 10 * host::kLamportsPerSol);
  {
    host::Instruction ix = ix::stake(10'000);
    ix.program = "guest2";
    ASSERT_TRUE(submit(std::move(ix), whale.public_key()).success);
  }
  sim_.run_until(sim_.now() + 10.0);  // > 10 slots

  {
    host::Instruction ix = ix::generate_block();
    ix.program = "guest2";
    ASSERT_TRUE(submit(std::move(ix), payer_).success);
  }
  const GuestBlock& blk = contract->head();
  ASSERT_TRUE(blk.next_validators.has_value());
  EXPECT_TRUE(blk.last_in_epoch());
  EXPECT_TRUE(blk.next_validators->contains(whale.public_key()));

  // Finalise: epoch switches to the new set.
  for (int i = 0; i < kNumValidators && !contract->head().finalised; ++i) {
    const PrivateKey& key = validator_keys_[static_cast<std::size_t>(i)];
    const Hash32 digest = contract->block_at(1).hash();
    host::Instruction ix = ix::sign_block(1, key.public_key());
    ix.program = "guest2";
    ASSERT_TRUE(submit(std::move(ix), key.public_key(),
                       {host::SigVerify{key.public_key(),
                                        digest,
                                        key.sign(digest.view())}})
                    .success);
  }
  EXPECT_TRUE(contract->epoch_validators().contains(whale.public_key()));
}

TEST_F(GuestContractTest, EvidenceForkedBlockSlashes) {
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  finalise_head();

  // Validator 0 signs a forged alternative to block 1.
  const PrivateKey& offender = validator_keys_[0];
  GuestBlock forged = GuestBlock::make("guest-1", 1, 99.0, Hash32{},
                                       contract_->block_at(0).hash(), 3,
                                       contract_->epoch_validators());
  ASSERT_NE(forged.hash(), contract_->block_at(1).hash());
  const Hash32 digest = forged.hash();

  Encoder ev;
  ev.raw(offender.public_key().view());
  ev.u8(1);
  ev.bytes(forged.header.encode());

  const PrivateKey reporter = PrivateKey::from_label("fisherman");
  chain_.airdrop(reporter.public_key(), 10 * host::kLamportsPerSol);
  upload(7, ev.out(), reporter.public_key());

  const std::uint64_t reporter_before = chain_.balance(reporter.public_key());
  const auto res = submit(
      ix::submit_evidence(7), reporter.public_key(),
      {host::SigVerify{offender.public_key(),
                       digest,
                       offender.sign(digest.view())}});
  ASSERT_TRUE(res.success) << res.error;
  EXPECT_TRUE(contract_->is_banned(offender.public_key()));
  EXPECT_EQ(contract_->stake_of(offender.public_key()), 0u);
  // Reporter got a reward (minus the tx fee they paid).
  EXPECT_GT(chain_.balance(reporter.public_key()) + res.fee.total(), reporter_before);

  // A banned validator can no longer sign.
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  const auto sign_res = sign_block(contract_->head().header.height, 0);
  EXPECT_FALSE(sign_res.success);
}

TEST_F(GuestContractTest, EvidenceDoubleSignSlashes) {
  const PrivateKey& offender = validator_keys_[1];
  // Two distinct headers at the same (future) height.
  GuestBlock a = GuestBlock::make("guest-1", 9, 1.0, Hash32{}, Hash32{}, 1,
                                  contract_->epoch_validators());
  GuestBlock b = GuestBlock::make("guest-1", 9, 2.0, Hash32{}, Hash32{}, 1,
                                  contract_->epoch_validators());
  ASSERT_NE(a.hash(), b.hash());

  Encoder ev;
  ev.raw(offender.public_key().view());
  ev.u8(2);
  ev.bytes(a.header.encode());
  ev.bytes(b.header.encode());
  upload(8, ev.out(), payer_);

  const Hash32 da = a.hash();
  const Hash32 db = b.hash();
  const auto res = submit(
      ix::submit_evidence(8), payer_,
      {host::SigVerify{offender.public_key(), da,
                       offender.sign(da.view())},
       host::SigVerify{offender.public_key(), db,
                       offender.sign(db.view())}});
  ASSERT_TRUE(res.success) << res.error;
  EXPECT_TRUE(contract_->is_banned(offender.public_key()));
}

TEST_F(GuestContractTest, EvidenceAgainstCanonicalBlockFails) {
  // Signing the *canonical* block is not misbehaviour.
  const PrivateKey& honest = validator_keys_[2];
  const GuestBlock& genesis = contract_->block_at(0);
  Encoder ev;
  ev.raw(honest.public_key().view());
  ev.u8(1);
  ev.bytes(genesis.header.encode());
  upload(9, ev.out(), payer_);
  const Hash32 digest = genesis.hash();
  const auto res = submit(
      ix::submit_evidence(9), payer_,
      {host::SigVerify{honest.public_key(),
                       digest,
                       honest.sign(digest.view())}});
  EXPECT_FALSE(res.success);
  EXPECT_FALSE(contract_->is_banned(honest.public_key()));
}

TEST_F(GuestContractTest, EvidenceRequiresRealSignature) {
  const PrivateKey& framed = validator_keys_[3];
  GuestBlock forged = GuestBlock::make("guest-1", 42, 1.0, Hash32{}, Hash32{}, 1,
                                       contract_->epoch_validators());
  Encoder ev;
  ev.raw(framed.public_key().view());
  ev.u8(1);
  ev.bytes(forged.header.encode());
  upload(10, ev.out(), payer_);
  // No pre-compile signature by `framed` over the forged digest.
  const auto res = submit(ix::submit_evidence(10), payer_);
  EXPECT_FALSE(res.success);
  EXPECT_FALSE(contract_->is_banned(framed.public_key()));
}

TEST_F(GuestContractTest, ChunkedClientUpdateReachesQuorum) {
  // Build a counterparty header signed by 4 of 5 validators.
  ibc::QuorumHeader header;
  header.chain_id = "picasso-1";
  header.height = 10;
  header.timestamp = 60.0;
  header.state_root.bytes[1] = 0xAA;
  header.validator_set_hash = cp_set_.hash();
  const Hash32 digest = header.signing_digest();

  Encoder payload;
  payload.bytes(header.encode());
  payload.boolean(false);
  upload(1, payload.out(), payer_);
  ASSERT_TRUE(submit(ix::begin_client_update(1)).success);

  // Signatures across two transactions (2 + 2).
  for (int batch = 0; batch < 2; ++batch) {
    std::vector<host::SigVerify> sigs;
    for (int j = batch * 2; j < batch * 2 + 2; ++j) {
      const PrivateKey& k = cp_keys_[static_cast<std::size_t>(j)];
      sigs.push_back(host::SigVerify{k.public_key(),
                                     digest,
                                     k.sign(digest.view())});
    }
    ASSERT_TRUE(submit(ix::verify_update_signatures(), payer_, sigs).success);
  }
  ASSERT_TRUE(submit(ix::finish_client_update()).success);
  EXPECT_EQ(contract_->counterparty_client().latest_height(), 10u);
  const auto cs = contract_->counterparty_client().consensus_at(10);
  ASSERT_TRUE(cs.has_value());
  EXPECT_EQ(cs->state_root.bytes[1], 0xAA);
}

TEST_F(GuestContractTest, FinishUpdateBeforeQuorumFails) {
  ibc::QuorumHeader header;
  header.chain_id = "picasso-1";
  header.height = 10;
  header.validator_set_hash = cp_set_.hash();
  const Hash32 digest = header.signing_digest();

  Encoder payload;
  payload.bytes(header.encode());
  payload.boolean(false);
  upload(2, payload.out(), payer_);
  ASSERT_TRUE(submit(ix::begin_client_update(2)).success);

  // Only 2 of 5 (quorum needs 4: 34 of 50 stake -> 4 validators).
  std::vector<host::SigVerify> sigs;
  for (int j = 0; j < 2; ++j) {
    const PrivateKey& k = cp_keys_[static_cast<std::size_t>(j)];
    sigs.push_back(host::SigVerify{k.public_key(),
                                   digest,
                                   k.sign(digest.view())});
  }
  ASSERT_TRUE(submit(ix::verify_update_signatures(), payer_, sigs).success);
  const auto res = submit(ix::finish_client_update());
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("quorum"), std::string::npos);
  EXPECT_EQ(contract_->counterparty_client().latest_height(), 0u);
}

TEST_F(GuestContractTest, DuplicateUpdateSignaturesNotDoubleCounted) {
  ibc::QuorumHeader header;
  header.chain_id = "picasso-1";
  header.height = 11;
  header.validator_set_hash = cp_set_.hash();
  const Hash32 digest = header.signing_digest();

  Encoder payload;
  payload.bytes(header.encode());
  payload.boolean(false);
  upload(3, payload.out(), payer_);
  ASSERT_TRUE(submit(ix::begin_client_update(3)).success);

  // The same validator's signature four times: only 10 stake counted.
  const PrivateKey& k = cp_keys_[0];
  for (int i = 0; i < 2; ++i) {
    std::vector<host::SigVerify> sigs(2, host::SigVerify{
        k.public_key(), digest,
        k.sign(digest.view())});
    const auto res = submit(ix::verify_update_signatures(), payer_, sigs);
    if (i == 1) {
      EXPECT_FALSE(res.success);  // nothing new to count
    }
  }
  EXPECT_FALSE(submit(ix::finish_client_update()).success);
}

TEST_F(GuestContractTest, BeginUpdateRejectsStaleOrForeignHeaders) {
  ibc::QuorumHeader header;
  header.chain_id = "not-picasso";
  header.height = 10;
  header.validator_set_hash = cp_set_.hash();
  Encoder payload;
  payload.bytes(header.encode());
  payload.boolean(false);
  upload(4, payload.out(), payer_);
  EXPECT_FALSE(submit(ix::begin_client_update(4)).success);

  ibc::QuorumHeader stale;
  stale.chain_id = "picasso-1";
  stale.height = 0;
  stale.validator_set_hash = cp_set_.hash();
  Encoder p2;
  p2.bytes(stale.encode());
  p2.boolean(false);
  upload(5, p2.out(), payer_);
  EXPECT_FALSE(submit(ix::begin_client_update(5)).success);
}

TEST_F(GuestContractTest, MissingBufferFails) {
  const auto res = submit(ix::receive_packet(12345));
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("no such staging buffer"), std::string::npos);
}

TEST_F(GuestContractTest, BuffersArePerPayer) {
  upload(42, bytes_of("data"), payer_);
  // Another payer referencing the same id sees nothing.
  const PrivateKey other = PrivateKey::from_label("other-payer");
  chain_.airdrop(other.public_key(), host::kLamportsPerSol);
  const auto res = submit(ix::receive_packet(42), other.public_key());
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("no such staging buffer"), std::string::npos);
}

TEST_F(GuestContractTest, SendPacketCollectsFee) {
  // No channel open: the send fails, but fee collection is attempted
  // first — verify the error comes from IBC, not fee logic.
  const auto res = submit(ix::send_packet("transfer", "channel-0", bytes_of("x"), 0,
                                          sim_.now() + 100));
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("unknown channel"), std::string::npos);
}

TEST_F(GuestContractTest, AccountBytesGrowWithState) {
  const std::size_t before = contract_->account_bytes();
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  EXPECT_GT(contract_->account_bytes(), before);
}

TEST_F(GuestContractTest, OldBlockRecordsArePruned) {
  GuestConfig cfg;
  cfg.delta_seconds = 100.0;
  cfg.epoch_length_host_slots = 1'000'000;
  cfg.block_history_window = 3;
  auto fresh = std::make_unique<GuestContract>(cfg, genesis_, cp_set_);
  GuestContract* contract = fresh.get();
  chain_.register_program("pruned", std::move(fresh));

  auto generate_and_finalise = [&] {
    sim_.run_until(sim_.now() + 110.0);  // pass Δ
    host::Instruction gen = ix::generate_block();
    gen.program = "pruned";
    ASSERT_TRUE(submit(std::move(gen), payer_).success);
    const ibc::Height h = contract->head().header.height;
    for (int i = 0; i < 3; ++i) {
      const PrivateKey& key = validator_keys_[static_cast<std::size_t>(i)];
      const Hash32 digest = contract->block_at(h).hash();
      host::Instruction s = ix::sign_block(h, key.public_key());
      s.program = "pruned";
      ASSERT_TRUE(submit(std::move(s), key.public_key(),
                         {host::SigVerify{key.public_key(),
                                          digest,
                                          key.sign(digest.view())}})
                      .success);
    }
  };
  for (int i = 0; i < 6; ++i) generate_and_finalise();

  // Early blocks keep headers (hashes/timestamps) but lose signer sets.
  EXPECT_TRUE(contract->block_at(1).signers.empty());
  EXPECT_TRUE(contract->block_at(1).finalised);  // finality flag is kept
  EXPECT_FALSE(contract->head().signers.empty());

  // A late Sign for a pruned height is rejected.
  const PrivateKey& key = validator_keys_[3];
  const Hash32 digest = contract->block_at(1).hash();
  host::Instruction s = ix::sign_block(1, key.public_key());
  s.program = "pruned";
  const auto res = submit(std::move(s), key.public_key(),
                          {host::SigVerify{key.public_key(),
                                           digest,
                                           key.sign(digest.view())}});
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("pruned"), std::string::npos);
}

TEST_F(GuestContractTest, BannedValidatorCannotStake) {
  // Ban validator 0 via fork evidence, then try to re-stake.
  dirty_state();
  ASSERT_TRUE(submit(ix::generate_block()).success);
  finalise_head();
  const PrivateKey& offender = validator_keys_[0];
  GuestBlock forged = GuestBlock::make("guest-1", 1, 77.0, Hash32{},
                                       contract_->block_at(0).hash(), 2,
                                       contract_->epoch_validators());
  Encoder ev;
  ev.raw(offender.public_key().view());
  ev.u8(1);
  ev.bytes(forged.header.encode());
  upload(11, ev.out(), payer_);
  const Hash32 digest = forged.hash();
  ASSERT_TRUE(submit(ix::submit_evidence(11), payer_,
                     {host::SigVerify{offender.public_key(),
                                      digest,
                                      offender.sign(digest.view())}})
                  .success);
  const auto res = submit(ix::stake(100), offender.public_key());
  EXPECT_FALSE(res.success);
}

}  // namespace
}  // namespace bmg::guest
