#include "common/codec.hpp"

#include <gtest/gtest.h>

namespace bmg {
namespace {

TEST(Codec, ScalarRoundTrip) {
  Encoder e;
  e.u8(0xab).u16(0x1234).u32(0xdeadbeef).u64(0x0102030405060708ULL).boolean(true);
  Decoder d(e.out());
  EXPECT_EQ(d.u8(), 0xab);
  EXPECT_EQ(d.u16(), 0x1234);
  EXPECT_EQ(d.u32(), 0xdeadbeefu);
  EXPECT_EQ(d.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(d.boolean());
  EXPECT_TRUE(d.done());
}

TEST(Codec, BigEndianLayout) {
  Encoder e;
  e.u32(0x01020304);
  const ByteView out = e.out();
  EXPECT_EQ(Bytes(out.begin(), out.end()), (Bytes{1, 2, 3, 4}));
}

TEST(Codec, BytesAndStrings) {
  Encoder e;
  e.bytes(Bytes{9, 8, 7}).str("ibc").bytes({});
  Decoder d(e.out());
  EXPECT_EQ(d.bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(d.str(), "ibc");
  EXPECT_TRUE(d.bytes().empty());
  d.expect_done();
}

TEST(Codec, HashRoundTrip) {
  Hash32 h;
  h.bytes[5] = 0x55;
  Encoder e;
  e.hash(h);
  EXPECT_EQ(e.size(), 32u);
  Decoder d(e.out());
  EXPECT_EQ(d.hash(), h);
}

TEST(Codec, TruncatedInputThrows) {
  Encoder e;
  e.u32(7);
  Decoder d(e.out());
  (void)d.u16();
  EXPECT_THROW((void)d.u32(), CodecError);
}

TEST(Codec, TruncatedBytesThrows) {
  Encoder e;
  e.u32(100);  // claims 100 bytes follow, none do
  Decoder d(e.out());
  EXPECT_THROW((void)d.bytes(), CodecError);
}

TEST(Codec, BadBooleanThrows) {
  const Bytes raw = {2};
  Decoder d(raw);
  EXPECT_THROW((void)d.boolean(), CodecError);
}

TEST(Codec, ExpectDoneThrowsOnTrailing) {
  const Bytes raw = {1, 2};
  Decoder d(raw);
  (void)d.u8();
  EXPECT_THROW(d.expect_done(), CodecError);
}

TEST(Codec, RawPassThrough) {
  Encoder e;
  e.raw(Bytes{1, 2, 3});
  Decoder d(e.out());
  EXPECT_EQ(d.raw(3), (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace bmg
