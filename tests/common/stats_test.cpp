#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace bmg {
namespace {

Series make_series(std::initializer_list<double> vals) {
  Series s;
  for (double v : vals) s.add(v);
  return s;
}

TEST(Series, BasicOrderStats) {
  const Series s = make_series({5, 1, 3, 2, 4});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 5);
  EXPECT_DOUBLE_EQ(s.mean(), 3);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3);
}

TEST(Series, QuantileInterpolation) {
  const Series s = make_series({0, 10});
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 7.5);
}

TEST(Series, QuantileClamps) {
  const Series s = make_series({1, 2, 3});
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1);
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 3);
}

TEST(Series, Stddev) {
  const Series s = make_series({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Series, StddevDegenerate) {
  EXPECT_DOUBLE_EQ(make_series({7}).stddev(), 0.0);
}

TEST(Series, CdfAt) {
  const Series s = make_series({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.cdf_at(0), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10), 1.0);
}

TEST(Series, EmptyThrows) {
  const Series s;
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
}

TEST(Series, AddAfterQueryStaysConsistent) {
  Series s;
  s.add(1);
  EXPECT_DOUBLE_EQ(s.max(), 1);
  s.add(10);
  EXPECT_DOUBLE_EQ(s.max(), 10);  // sorted cache must refresh
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {3, 2, 1};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, MismatchedSizesThrow) {
  EXPECT_THROW((void)pearson({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)pearson({1}, {1}), std::invalid_argument);
}

TEST(Render, CdfHasRequestedRows) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  const std::string out = render_cdf(s, 10, "latency");
  EXPECT_NE(out.find("latency"), std::string::npos);
  // 1 header + 10 data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 11);
}

TEST(Render, HistogramMentionsSampleCount) {
  Series s;
  for (int i = 0; i < 50; ++i) s.add(i % 7);
  const std::string out = render_histogram(s, 5, "cost");
  EXPECT_NE(out.find("50 samples"), std::string::npos);
}

TEST(Render, QuantileRowParses) {
  Series s;
  for (int i = 1; i <= 9; ++i) s.add(i);
  const std::string row = render_quantile_row(s);
  EXPECT_NE(row.find("1.0"), std::string::npos);
  EXPECT_NE(row.find("9.0"), std::string::npos);
}

}  // namespace
}  // namespace bmg
