#include "common/base58.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/keys.hpp"

namespace bmg {
namespace {

TEST(Base58, KnownVectors) {
  EXPECT_EQ(base58_encode(bytes_of("hello world")), "StV1DL6CwTryKyV");
  EXPECT_EQ(base58_encode(Bytes{}), "");
  EXPECT_EQ(base58_encode(Bytes{0x00}), "1");
  EXPECT_EQ(base58_encode(Bytes{0x00, 0x00, 0x01}), "112");
  EXPECT_EQ(base58_encode(from_hex("00010966776006953d5567439e5e39f86a0d273bee")),
            "1qb3y62fmEEVTPySXPQ77WXok6H");
}

TEST(Base58, DecodeKnownVectors) {
  EXPECT_EQ(base58_decode("StV1DL6CwTryKyV"), bytes_of("hello world"));
  EXPECT_TRUE(base58_decode("").empty());
  EXPECT_EQ(base58_decode("1"), Bytes{0x00});
}

TEST(Base58, RejectsInvalidCharacters) {
  EXPECT_THROW((void)base58_decode("0OIl"), std::invalid_argument);
  EXPECT_THROW((void)base58_decode("abc!"), std::invalid_argument);
}

TEST(Base58, RandomRoundTrips) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Bytes data(rng.uniform_int(64));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(base58_decode(base58_encode(data)), data);
  }
}

TEST(Base58, SolanaStyleAddressLength) {
  // 32-byte Ed25519 keys encode to 32-44 base58 characters, like
  // Solana addresses.
  const auto key = crypto::PrivateKey::from_label("addr").public_key();
  const std::string addr = base58_encode(key.view());
  EXPECT_GE(addr.size(), 32u);
  EXPECT_LE(addr.size(), 44u);
  EXPECT_EQ(base58_decode(addr), Bytes(key.view().begin(), key.view().end()));
}

}  // namespace
}  // namespace bmg
