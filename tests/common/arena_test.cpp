#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/codec.hpp"

namespace bmg {
namespace {

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena arena(256);
  std::uint8_t* a = arena.alloc_bytes(16);
  std::uint8_t* b = arena.alloc_bytes(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  std::memset(a, 0xaa, 16);
  std::memset(b, 0xbb, 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a[i], 0xaa);
    EXPECT_EQ(b[i], 0xbb);
  }
  EXPECT_GE(arena.bytes_used(), 32u);
}

TEST(Arena, RespectsAlignment) {
  Arena arena(256);
  (void)arena.alloc_bytes(1);  // misalign the bump pointer
  for (std::size_t align : {2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.allocate(8, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
    (void)arena.alloc_bytes(1);
  }
}

TEST(Arena, GrowsBeyondFirstChunk) {
  Arena arena(64);
  // Allocate far more than the first chunk; every pointer must remain
  // valid (chunks are chained, never reallocated).
  std::vector<std::uint8_t*> ptrs;
  for (int i = 0; i < 64; ++i) {
    std::uint8_t* p = arena.alloc_bytes(48);
    std::memset(p, i, 48);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 64; ++i)
    for (int j = 0; j < 48; ++j) EXPECT_EQ(ptrs[i][j], i);
  EXPECT_GE(arena.bytes_used(), 64u * 48u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(Arena, OversizedRequestGetsOwnChunk) {
  Arena arena(64);
  std::uint8_t* p = arena.alloc_bytes(10'000);
  std::memset(p, 0x5c, 10'000);
  EXPECT_EQ(p[9'999], 0x5c);
}

TEST(Arena, ResetReclaimsWithoutReleasingChunks) {
  Arena arena(128);
  for (int i = 0; i < 32; ++i) (void)arena.alloc_bytes(100);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Chunk storage is retained for reuse.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // Steady state: the same allocation pattern fits in what we own.
  for (int i = 0; i < 32; ++i) (void)arena.alloc_bytes(100);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, GrowExtendsLatestAllocationInPlace) {
  Arena arena(1024);
  std::uint8_t* p = arena.alloc_bytes(16);
  std::memset(p, 0x11, 16);
  std::uint8_t* q = arena.grow(p, 16, 64);
  // Latest allocation with room in the chunk: no move, no copy.
  EXPECT_EQ(q, p);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(q[i], 0x11);
}

TEST(Arena, GrowCopiesWhenOutOfRoom) {
  Arena arena(64);
  std::uint8_t* p = arena.alloc_bytes(48);
  std::memset(p, 0x22, 48);
  std::uint8_t* q = arena.grow(p, 48, 4096);
  ASSERT_NE(q, nullptr);
  for (int i = 0; i < 48; ++i) EXPECT_EQ(q[i], 0x22);
}

TEST(Arena, ScopeRewindsNestedAllocations) {
  Arena arena(256);
  (void)arena.alloc_bytes(10);
  const std::size_t outer = arena.bytes_used();
  {
    ArenaScope scope(arena);
    (void)arena.alloc_bytes(100);
    EXPECT_GT(arena.bytes_used(), outer);
  }
  EXPECT_EQ(arena.bytes_used(), outer);
  // Nested scopes rewind strictly inner-first.
  {
    ArenaScope s1(arena);
    (void)arena.alloc_bytes(50);
    const std::size_t mid = arena.bytes_used();
    {
      ArenaScope s2(arena);
      (void)arena.alloc_bytes(500);
    }
    EXPECT_EQ(arena.bytes_used(), mid);
  }
  EXPECT_EQ(arena.bytes_used(), outer);
}

TEST(Arena, ScopeRewindAcrossChunkBoundary) {
  Arena arena(64);
  {
    ArenaScope scope(arena);
    for (int i = 0; i < 16; ++i) (void)arena.alloc_bytes(48);  // spills chunks
  }
  EXPECT_EQ(arena.bytes_used(), 0u);
  // The rewound chunks are reused, not leaked.
  const std::size_t reserved = arena.bytes_reserved();
  for (int i = 0; i < 16; ++i) (void)arena.alloc_bytes(48);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena;
  std::uint8_t* p = arena.alloc_bytes(0);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, ScratchArenaIsUsable) {
  Arena& arena = scratch_arena();
  ArenaScope scope(arena);
  std::uint8_t* p = arena.alloc_bytes(32);
  std::memset(p, 0x7f, 32);
  EXPECT_EQ(p[31], 0x7f);
}

TEST(ArenaEncoder, EncodesIntoArena) {
  Arena arena(256);
  Encoder e(arena);
  e.u32(0x01020304).str("hello").u64(42);
  const ByteView out = e.out();
  Decoder d(out);
  EXPECT_EQ(d.u32(), 0x01020304u);
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.u64(), 42u);
  d.expect_done();
  EXPECT_GE(arena.bytes_used(), out.size());
}

TEST(ArenaEncoder, MatchesOwningEncoderByteForByte) {
  Arena arena;
  Encoder a(arena);
  Encoder b;
  for (Encoder* e : {&a, &b})
    e->u8(7).u16(600).bytes(Bytes{1, 2, 3}).str("chain").boolean(true);
  const ByteView va = a.out();
  const ByteView vb = b.out();
  ASSERT_EQ(va.size(), vb.size());
  EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size()), 0);
}

TEST(ArenaEncoder, GrowsAcrossChunkBoundary) {
  Arena arena(32);  // force the encoder buffer to outgrow its chunk
  Encoder e(arena);
  Bytes big(500);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i);
  e.bytes(big);
  Decoder d(e.out());
  EXPECT_EQ(d.bytes(), big);
  d.expect_done();
}

TEST(ArenaEncoder, TakeCopiesOutOfArena) {
  Arena arena;
  Encoder e(arena);
  e.str("persist-me");
  Bytes owned = e.take();
  arena.reset();  // arena memory gone; the take()n copy must survive
  Decoder d(owned);
  EXPECT_EQ(d.str(), "persist-me");
}

TEST(ScratchEncoder, SpillsToHeapBeyondScratch) {
  std::array<std::uint8_t, 16> scratch;
  Encoder e{std::span<std::uint8_t>(scratch)};
  Bytes big(200, 0xee);
  e.bytes(big);  // exceeds the stack buffer -> transparent heap spill
  Decoder d(e.out());
  EXPECT_EQ(d.bytes(), big);
  d.expect_done();
}

}  // namespace
}  // namespace bmg
