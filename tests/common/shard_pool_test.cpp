#include "common/shard_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/parallel.hpp"

namespace bmg {
namespace {

class ShardPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { shard::set_worker_count(0); }
};

TEST_F(ShardPoolTest, ResultsLandInGridOrderAtEveryWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    shard::set_worker_count(workers);
    std::vector<int> out(37, -1);
    const auto stats = shard::run_cells(
        out.size(), [&](std::size_t c) { out[c] = static_cast<int>(c) * 3; });
    ASSERT_EQ(stats.size(), out.size());
    for (std::size_t c = 0; c < out.size(); ++c) {
      EXPECT_EQ(out[c], static_cast<int>(c) * 3) << "workers=" << workers;
      EXPECT_EQ(stats[c].cell, c);
      EXPECT_LT(stats[c].worker, workers);
    }
  }
}

TEST_F(ShardPoolTest, AdmissionBoundedByWorkerCount) {
  // At most W cells may be live at once — that is the peak-memory
  // bound the shard model promises (W whole simulations, not N).
  constexpr std::size_t kWorkers = 4;
  shard::set_worker_count(kWorkers);
  std::atomic<int> live{0}, peak{0};
  (void)shard::run_cells(64, [&](std::size_t) {
    const int now = ++live;
    int prev = peak.load();
    while (now > prev && !peak.compare_exchange_weak(prev, now)) {
    }
    std::atomic<int> spin{0};
    while (spin.fetch_add(1, std::memory_order_relaxed) < 20000) {
    }
    --live;
  });
  EXPECT_LE(peak.load(), static_cast<int>(kWorkers));
  EXPECT_GE(peak.load(), 1);
}

TEST_F(ShardPoolTest, WorkerCountConfiguration) {
  shard::set_worker_count(3);
  EXPECT_EQ(shard::worker_count(), 3u);
  shard::set_worker_count(1);
  EXPECT_EQ(shard::worker_count(), 1u);
  // 0 re-reads the environment/hardware default; >= 1 always.
  shard::set_worker_count(0);
  EXPECT_GE(shard::worker_count(), 1u);
}

TEST_F(ShardPoolTest, InShardCellFlag) {
  shard::set_worker_count(2);
  EXPECT_FALSE(shard::in_shard_cell());
  bool seen = false;
  (void)shard::run_cells(1, [&](std::size_t) { seen = shard::in_shard_cell(); });
  EXPECT_TRUE(seen);
  EXPECT_FALSE(shard::in_shard_cell());
}

TEST_F(ShardPoolTest, IntraCellParallelForSerializesInline) {
  // Inside a cell the fork-join executor must not fan out: the cell is
  // the unit of parallelism.  parallel_for still computes the right
  // answer, on the calling thread alone.
  shard::set_worker_count(4);
  std::vector<std::vector<std::size_t>> shards_seen(8);
  (void)shard::run_cells(8, [&](std::size_t c) {
    parallel::parallel_for(100, 1, [&](std::size_t b, std::size_t e, std::size_t shard) {
      for (std::size_t i = b; i < e; ++i) shards_seen[c].push_back(shard);
    });
  });
  for (std::size_t c = 0; c < 8; ++c) {
    ASSERT_EQ(shards_seen[c].size(), 100u) << c;
    for (const std::size_t s : shards_seen[c]) EXPECT_EQ(s, 0u);
  }
}

TEST_F(ShardPoolTest, NestedRunCellsSerializesInline) {
  shard::set_worker_count(4);
  std::vector<int> inner(5, 0);
  (void)shard::run_cells(2, [&](std::size_t outer) {
    if (outer != 0) return;
    (void)shard::run_cells(inner.size(),
                           [&](std::size_t i) { inner[i] = static_cast<int>(i) + 1; });
  });
  for (std::size_t i = 0; i < inner.size(); ++i)
    EXPECT_EQ(inner[i], static_cast<int>(i) + 1);
}

TEST_F(ShardPoolTest, LowestCellExceptionWins) {
  for (const std::size_t workers : {1u, 4u}) {
    shard::set_worker_count(workers);
    try {
      (void)shard::run_cells(16, [&](std::size_t c) {
        if (c == 11 || c == 3 || c == 14)
          throw std::runtime_error("cell " + std::to_string(c));
      });
      FAIL() << "expected throw at workers=" << workers;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "cell 3") << "workers=" << workers;
    }
  }
}

TEST_F(ShardPoolTest, RemainingCellsRunAfterAFailure) {
  shard::set_worker_count(2);
  std::vector<int> ran(12, 0);
  try {
    (void)shard::run_cells(ran.size(), [&](std::size_t c) {
      ran[c] = 1;
      if (c == 0) throw std::runtime_error("first");
    });
    FAIL();
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(std::accumulate(ran.begin(), ran.end(), 0), 12);
}

TEST_F(ShardPoolTest, ScratchArenaUsableAndRecycledAcrossCells) {
  // Cells may use the scratch arena freely as long as every scope
  // closes before the cell ends; the pool resets (not frees) between
  // cells so warm workers reuse their slabs.
  shard::set_worker_count(2);
  std::vector<std::size_t> sums(16, 0);
  (void)shard::run_cells(sums.size(), [&](std::size_t c) {
    ArenaScope scope(scratch_arena());
    auto* p = scratch_arena().alloc_bytes(1024);
    for (std::size_t i = 0; i < 1024; ++i) p[i] = static_cast<unsigned char>(c + i);
    std::size_t s = 0;
    for (std::size_t i = 0; i < 1024; ++i) s += p[i];
    sums[c] = s;
  });
  for (std::size_t c = 0; c < sums.size(); ++c) {
    std::size_t expect = 0;
    for (std::size_t i = 0; i < 1024; ++i)
      expect += static_cast<unsigned char>(c + i);
    EXPECT_EQ(sums[c], expect) << c;
  }
}

TEST_F(ShardPoolTest, CellStatsRecordTimings) {
  shard::set_worker_count(1);
  const auto stats = shard::run_cells(3, [&](std::size_t) {
    std::atomic<int> spin{0};
    while (spin.fetch_add(1, std::memory_order_relaxed) < 100000) {
    }
  });
  for (const auto& s : stats) {
    EXPECT_GE(s.wall_s, 0.0);
    EXPECT_GE(s.cpu_s, 0.0);
  }
}

TEST_F(ShardPoolTest, ZeroCellsIsANoop) {
  shard::set_worker_count(4);
  EXPECT_TRUE(shard::run_cells(0, [&](std::size_t) { FAIL(); }).empty());
}

using ShardPoolDeathTest = ShardPoolTest;

TEST_F(ShardPoolDeathTest, LeakedArenaScopeAbortsAtCellBoundary) {
  // An ArenaScope (or bare alloc) that survives past the cell body is
  // a cross-shard bleed: the guard must abort, not carry on.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  shard::set_worker_count(1);
  EXPECT_DEATH(
      {
        (void)shard::run_cells(1, [&](std::size_t) {
          (void)scratch_arena().alloc_bytes(64);  // no scope: leaks
        });
      },
      "leaked across a shard boundary");
}

}  // namespace
}  // namespace bmg
