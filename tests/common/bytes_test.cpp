#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace bmg {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, FromHexRejectsBadDigits) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, BytesOf) {
  EXPECT_EQ(bytes_of("ab"), (Bytes{0x61, 0x62}));
  EXPECT_TRUE(bytes_of("").empty());
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = {};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
  EXPECT_TRUE(concat({}).empty());
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Hash32, FromRejectsWrongSize) {
  EXPECT_THROW((void)Hash32::from(Bytes(31)), std::invalid_argument);
  EXPECT_THROW((void)Hash32::from(Bytes(33)), std::invalid_argument);
  EXPECT_NO_THROW((void)Hash32::from(Bytes(32)));
}

TEST(Hash32, ZeroDetection) {
  Hash32 h;
  EXPECT_TRUE(h.is_zero());
  h.bytes[31] = 1;
  EXPECT_FALSE(h.is_zero());
}

TEST(Hash32, ComparisonAndHashing) {
  Hash32 a, b;
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  EXPECT_LT(a, b);
  EXPECT_NE(Hash32Hasher{}(a), Hash32Hasher{}(b));
}

TEST(Hash32, HexIs64Chars) {
  Hash32 h;
  h.bytes[0] = 0xab;
  EXPECT_EQ(h.hex().size(), 64u);
  EXPECT_EQ(h.hex().substr(0, 2), "ab");
}

}  // namespace
}  // namespace bmg
