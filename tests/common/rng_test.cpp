#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace bmg {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform_int(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng r(5);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) seen[r.uniform_int(7)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NormalMoments) {
  Rng r(13);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  // Median of lognormal(mu, sigma) is exp(mu).
  Rng r(19);
  const int n = 100001;
  std::vector<double> v(n);
  for (auto& x : v) x = r.lognormal(1.0, 0.5);
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  EXPECT_NEAR(v[n / 2], std::exp(1.0), 0.1);
}

TEST(Rng, ParetoLowerBound) {
  Rng r(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream differs from parent's continuation.
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamSeedIsAPureFunction) {
  // Unlike fork(), stream splitting is stateless: the same (seed,
  // stream) pair always derives the same sub-seed, so grid cell i gets
  // the same RNG whether it runs first, last, or on another worker.
  EXPECT_EQ(stream_seed(42, 0), stream_seed(42, 0));
  EXPECT_EQ(stream_seed(42, 7), stream_seed(42, 7));
  EXPECT_NE(stream_seed(42, 0), stream_seed(42, 1));
  EXPECT_NE(stream_seed(42, 0), stream_seed(43, 0));
}

TEST(Rng, StreamSeedsPairwiseDistinct) {
  // No collisions across a realistic grid of (seed, stream) pairs, and
  // stream 0 must not degenerate to the base seed.
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_NE(stream_seed(seed, 0), seed);
    for (std::uint64_t stream = 0; stream < 64; ++stream)
      seen.insert(stream_seed(seed, stream));
  }
  EXPECT_EQ(seen.size(), 4u * 64u);
}

TEST(Rng, SplitMatchesStreamSeedConstruction) {
  Rng a = Rng::split(42, 5);
  Rng b(stream_seed(42, 5));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitStreamsIndependent) {
  Rng a = Rng::split(42, 1);
  Rng b = Rng::split(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace bmg
