// Unit tests for the deterministic fork-join executor: static
// sharding coverage, the serial fast path, exception propagation by
// lowest shard index, and inline serialization of nested regions.
#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace bmg::parallel {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(0); }  // back to env/default
};

TEST_F(ParallelTest, EmptyRangeInvokesNothing) {
  set_thread_count(4);
  std::atomic<int> calls{0};
  parallel_for(0, 1, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelTest, SerialPathIsSingleInlineShard) {
  set_thread_count(1);
  std::vector<std::size_t> begins, ends, shards;
  parallel_for(100, 1, [&](std::size_t b, std::size_t e, std::size_t s) {
    begins.push_back(b);
    ends.push_back(e);
    shards.push_back(s);
  });
  ASSERT_EQ(begins.size(), 1u);
  EXPECT_EQ(begins[0], 0u);
  EXPECT_EQ(ends[0], 100u);
  EXPECT_EQ(shards[0], 0u);
}

TEST_F(ParallelTest, ShardsPartitionTheRangeExactly) {
  set_thread_count(4);
  constexpr std::size_t kN = 1013;  // prime — exercises the ragged tail
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, 16, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST_F(ParallelTest, ShardBoundariesIndependentOfScheduling) {
  // The partition must be a pure function of (n, min_per_shard,
  // thread_count): run twice and compare the recorded shard map.
  set_thread_count(4);
  const auto record = [] {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    parallel_for(777, 10, [&](std::size_t b, std::size_t e, std::size_t) {
      std::lock_guard<std::mutex> lock(mu);
      spans.emplace_back(b, e);
    });
    std::sort(spans.begin(), spans.end());
    return spans;
  };
  EXPECT_EQ(record(), record());
}

TEST_F(ParallelTest, MinPerShardLimitsShardCount) {
  set_thread_count(8);
  std::atomic<int> shards{0};
  parallel_for(100, 60, [&](std::size_t, std::size_t, std::size_t) { ++shards; });
  // 100 items at >=60 per shard -> at most one extra shard.
  EXPECT_LE(shards.load(), 2);
}

TEST_F(ParallelTest, ExceptionPropagatesFromLowestShard) {
  set_thread_count(4);
  try {
    parallel_for(400, 10, [&](std::size_t b, std::size_t, std::size_t s) {
      if (b >= 100) throw std::runtime_error("shard " + std::to_string(s));
      (void)b;
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    // Several shards throw; the one with the lowest shard index wins,
    // deterministically, regardless of completion order.
    const std::string what = e.what();
    const std::string again = [&] {
      try {
        parallel_for(400, 10, [&](std::size_t b, std::size_t, std::size_t s) {
          if (b >= 100) throw std::runtime_error("shard " + std::to_string(s));
        });
      } catch (const std::runtime_error& e2) {
        return std::string(e2.what());
      }
      return std::string();
    }();
    EXPECT_EQ(what, again);
  }
}

TEST_F(ParallelTest, ExceptionOnSerialPathPropagates) {
  set_thread_count(1);
  EXPECT_THROW(
      parallel_for(10, 1,
                   [](std::size_t, std::size_t, std::size_t) {
                     throw std::invalid_argument("boom");
                   }),
      std::invalid_argument);
  EXPECT_FALSE(in_parallel_region());  // flag restored after the throw
}

TEST_F(ParallelTest, NestedForkJoinSerializesInline) {
  set_thread_count(4);
  std::atomic<int> inner_shards{0};
  std::atomic<bool> saw_region_flag{false};
  parallel_for(8, 1, [&](std::size_t, std::size_t, std::size_t) {
    if (in_parallel_region()) saw_region_flag = true;
    // A nested region must not deadlock or re-enter the pool: it runs
    // inline as one shard covering the whole range.
    std::vector<std::size_t> shards;
    parallel_for(64, 1, [&](std::size_t b, std::size_t e, std::size_t s) {
      EXPECT_EQ(b, 0u);
      EXPECT_EQ(e, 64u);
      shards.push_back(s);
    });
    ASSERT_EQ(shards.size(), 1u);
    inner_shards += static_cast<int>(shards.size());
  });
  EXPECT_TRUE(saw_region_flag.load());
  EXPECT_GT(inner_shards.load(), 0);
}

TEST_F(ParallelTest, SetThreadCountClampsAndReports) {
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  set_thread_count(0);  // re-read env/hardware default
  EXPECT_GE(thread_count(), 1u);
}

TEST_F(ParallelTest, ReusableAcrossManyDispatches) {
  set_thread_count(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    parallel_for(257, 8, [&](std::size_t b, std::size_t e, std::size_t) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 257u * 256u / 2u);
  }
}

}  // namespace
}  // namespace bmg::parallel
