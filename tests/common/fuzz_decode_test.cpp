// Decoder robustness: random and mutated byte strings fed to every
// wire decoder must either parse or throw CodecError/IbcError — never
// crash, hang or return corrupted structures that re-encode
// differently.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "guest/block.hpp"
#include "ibc/handshake.hpp"
#include "ibc/packet.hpp"
#include "ibc/quorum.hpp"
#include "trie/node.hpp"

namespace bmg {
namespace {

template <typename Fn>
void expect_parse_or_throw(Fn&& decode, ByteView data) {
  try {
    decode(data);
  } catch (const CodecError&) {
  } catch (const ibc::IbcError&) {
  }
  // Any other exception type (or a crash) fails the test.
}

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.uniform_int(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

class FuzzDecode : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzDecode, RandomInputsNeverCrash) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const Bytes data = random_bytes(rng, 200);
    expect_parse_or_throw([](ByteView d) { (void)ibc::Packet::decode(d); }, data);
    expect_parse_or_throw([](ByteView d) { (void)ibc::Acknowledgement::decode(d); },
                          data);
    expect_parse_or_throw([](ByteView d) { (void)ibc::ConnectionEnd::decode(d); }, data);
    expect_parse_or_throw([](ByteView d) { (void)ibc::ChannelEnd::decode(d); }, data);
    expect_parse_or_throw([](ByteView d) { (void)ibc::QuorumHeader::decode(d); }, data);
    expect_parse_or_throw([](ByteView d) { (void)ibc::SignedQuorumHeader::decode(d); },
                          data);
    expect_parse_or_throw([](ByteView d) { (void)ibc::ValidatorSet::decode(d); }, data);
    expect_parse_or_throw([](ByteView d) { (void)trie::Proof::deserialize(d); }, data);
  }
}

TEST_P(FuzzDecode, MutatedValidWiresNeverCrash) {
  Rng rng(GetParam() ^ 0xF00D);
  ibc::Packet p;
  p.sequence = 3;
  p.source_port = p.dest_port = "transfer";
  p.source_channel = "channel-0";
  p.dest_channel = "channel-1";
  p.data = bytes_of("payload");
  p.timeout_height = 9;
  const Bytes wire = p.encode();

  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = wire;
    const int flips = 1 + static_cast<int>(rng.uniform_int(4));
    for (int f = 0; f < flips; ++f)
      mutated[rng.uniform_int(mutated.size())] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    if (rng.chance(0.3)) mutated.resize(rng.uniform_int(mutated.size() + 1));
    expect_parse_or_throw([](ByteView d) { (void)ibc::Packet::decode(d); }, mutated);
  }
}

TEST_P(FuzzDecode, RoundTripIsStableWhenParseSucceeds) {
  // If a random buffer happens to parse, re-encoding the result and
  // parsing again must be a fixed point (canonical wire form).
  Rng rng(GetParam() ^ 0xBEEF);
  int parsed = 0;
  for (int i = 0; i < 5000; ++i) {
    const Bytes data = random_bytes(rng, 60);
    try {
      const ibc::Acknowledgement a = ibc::Acknowledgement::decode(data);
      const Bytes wire = a.encode();
      const ibc::Acknowledgement b = ibc::Acknowledgement::decode(wire);
      EXPECT_EQ(b.encode(), wire);
      ++parsed;
    } catch (const CodecError&) {
    }
  }
  (void)parsed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecode, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace bmg
