#include "host/fault.hpp"

#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "host/chain.hpp"
#include "host/constants.hpp"

namespace bmg::host {
namespace {

using crypto::PrivateKey;
using crypto::PublicKey;

// --- FaultPlan query semantics (pure, no chain) ------------------------------

TEST(FaultPlan, EmptyPlanIsNeutral) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.congestion_multiplier(1.0, "x"), 1.0);
  EXPECT_FALSE(plan.in_outage(1.0));
  EXPECT_DOUBLE_EQ(plan.blackhole_probability(1.0, "x"), 0.0);
  EXPECT_DOUBLE_EQ(plan.duplicate_probability(1.0, "x"), 0.0);
  EXPECT_DOUBLE_EQ(plan.fee_multiplier(1.0), 1.0);
}

TEST(FaultPlan, WindowsAreHalfOpen) {
  FaultPlan plan;
  plan.outage(2.0, 5.0);
  EXPECT_FALSE(plan.in_outage(1.999));
  EXPECT_TRUE(plan.in_outage(2.0));
  EXPECT_TRUE(plan.in_outage(4.999));
  EXPECT_FALSE(plan.in_outage(5.0));
}

TEST(FaultPlan, CongestionSeveritiesMultiply) {
  FaultPlan plan;
  plan.congestion(0.0, 10.0, 0.5).congestion(5.0, 20.0, 0.4);
  EXPECT_DOUBLE_EQ(plan.congestion_multiplier(1.0, ""), 0.5);
  EXPECT_DOUBLE_EQ(plan.congestion_multiplier(7.0, ""), 0.2);
  EXPECT_DOUBLE_EQ(plan.congestion_multiplier(15.0, ""), 0.4);
  EXPECT_DOUBLE_EQ(plan.congestion_multiplier(25.0, ""), 1.0);
}

TEST(FaultPlan, BlackholeProbabilitiesCombineIndependently) {
  FaultPlan plan;
  plan.blackhole(0.0, 10.0, 0.5).blackhole(0.0, 10.0, 0.5);
  // 1 - (1 - 0.5)(1 - 0.5) = 0.75
  EXPECT_DOUBLE_EQ(plan.blackhole_probability(3.0, ""), 0.75);
}

TEST(FaultPlan, LabelPrefixFilters) {
  FaultPlan plan;
  plan.blackhole(0.0, 10.0, 1.0, "relay");
  EXPECT_DOUBLE_EQ(plan.blackhole_probability(1.0, "relay:update"), 1.0);
  EXPECT_DOUBLE_EQ(plan.blackhole_probability(1.0, "relay"), 1.0);
  EXPECT_DOUBLE_EQ(plan.blackhole_probability(1.0, "fisherman"), 0.0);
  EXPECT_DOUBLE_EQ(plan.blackhole_probability(1.0, ""), 0.0);
}

// --- crash windows (agent-level, never chain-level) --------------------------

TEST(FaultPlan, CrashWindowsAreNotChainFaults) {
  FaultPlan plan;
  plan.crash(10.0, 20.0, "relayer");
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.size(), 1u);
  EXPECT_FALSE(plan.has_chain_faults());
  ASSERT_EQ(plan.crash_windows().size(), 1u);
  EXPECT_EQ(plan.crash_windows()[0].label_prefix, "relayer");
  // Chain-level queries ignore crash windows entirely.
  EXPECT_DOUBLE_EQ(plan.congestion_multiplier(15.0, "relayer"), 1.0);
  EXPECT_FALSE(plan.in_outage(15.0));
  EXPECT_DOUBLE_EQ(plan.blackhole_probability(15.0, "relayer"), 0.0);
  EXPECT_DOUBLE_EQ(plan.duplicate_probability(15.0, "relayer"), 0.0);
  EXPECT_DOUBLE_EQ(plan.fee_multiplier(15.0), 1.0);
}

TEST(FaultPlan, MixedPlanSeparatesCrashFromChainWindows) {
  FaultPlan plan;
  plan.crash(0.0, 5.0).congestion(0.0, 10.0, 0.5).crash(20.0, 30.0, "crank");
  EXPECT_TRUE(plan.has_chain_faults());
  EXPECT_EQ(plan.size(), 3u);
  ASSERT_EQ(plan.crash_windows().size(), 2u);
  EXPECT_EQ(plan.crash_windows()[1].label_prefix, "crank");
  plan.clear();
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_chain_faults());
}

// --- Chain behaviour under faults --------------------------------------------

class CounterProgram : public Program {
 public:
  void execute(TxContext&, ByteView) override { ++count; }
  int count = 0;
};

class FaultChainTest : public ::testing::Test {
 protected:
  void make_chain(FaultPlan plan) {
    ChainConfig cfg;
    cfg.fault = std::move(plan);
    chain_ = std::make_unique<Chain>(sim_, Rng(1234), cfg);
    chain_->register_program("test", std::make_unique<CounterProgram>());
    chain_->airdrop(payer_, 100 * kLamportsPerSol);
    chain_->start();
  }

  Transaction make_tx(std::string label, FeePolicy fee = FeePolicy::base()) {
    Transaction tx;
    tx.payer = payer_;
    tx.label = std::move(label);
    tx.instructions.push_back(Instruction{"test", Bytes{}});
    tx.fee = fee;
    return tx;
  }

  sim::Simulation sim_;
  std::unique_ptr<Chain> chain_;
  PublicKey payer_ = PrivateKey::from_label("payer").public_key();
};

TEST_F(FaultChainTest, BlackholeSwallowsResultHandler) {
  FaultPlan plan;
  plan.blackhole(0.0, 10.0, 1.0);
  make_chain(std::move(plan));
  bool fired = false;
  chain_->submit(make_tx("doomed"), [&](const TxResult&) { fired = true; });
  sim_.run_until(300.0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(chain_->fault_counters().blackholed, 1u);
  EXPECT_EQ(chain_->executed_count(), 0u);
}

TEST_F(FaultChainTest, BlackholeRespectsLabelFilter) {
  FaultPlan plan;
  plan.blackhole(0.0, 10.0, 1.0, "relay");
  make_chain(std::move(plan));
  bool relay_fired = false, other_fired = false;
  chain_->submit(make_tx("relay:update"), [&](const TxResult&) { relay_fired = true; });
  chain_->submit(make_tx("fisherman"), [&](const TxResult& r) {
    other_fired = true;
    EXPECT_TRUE(r.executed);
  });
  sim_.run_until(300.0);
  EXPECT_FALSE(relay_fired);
  EXPECT_TRUE(other_fired);
}

TEST_F(FaultChainTest, OutageDefersInclusionUntilWindowEnds) {
  FaultPlan plan;
  plan.outage(0.0, 20.0);
  make_chain(std::move(plan));
  TxResult res;
  bool fired = false;
  chain_->submit(make_tx("patient", FeePolicy::bundle(10'000)), [&](const TxResult& r) {
    res = r;
    fired = true;
  });
  sim_.run_until(300.0);
  ASSERT_TRUE(fired);
  EXPECT_TRUE(res.executed);
  EXPECT_GE(res.time, 20.0);  // nothing lands inside the outage
  EXPECT_GT(chain_->fault_counters().outage_deferred, 0u);
}

TEST_F(FaultChainTest, OutageLongerThanExpiryDropsTx) {
  FaultPlan plan;
  // kTxExpirySlots * kSlotSeconds ~ 60s; a 90s outage outlives it.
  plan.outage(0.0, 90.0);
  make_chain(std::move(plan));
  TxResult res;
  bool fired = false;
  chain_->submit(make_tx("expired", FeePolicy::bundle(10'000)), [&](const TxResult& r) {
    res = r;
    fired = true;
  });
  sim_.run_until(300.0);
  ASSERT_TRUE(fired);
  EXPECT_FALSE(res.executed);  // dropped, not executed
  EXPECT_GT(chain_->fault_counters().outage_expired, 0u);
}

TEST_F(FaultChainTest, TotalCongestionDropsBaseFeeTx) {
  FaultPlan plan;
  plan.congestion(0.0, 300.0, 0.0);  // severity 0: inclusion impossible
  make_chain(std::move(plan));
  TxResult res;
  bool fired = false;
  chain_->submit(make_tx("squeezed"), [&](const TxResult& r) {
    res = r;
    fired = true;
  });
  sim_.run_until(300.0);
  ASSERT_TRUE(fired);
  EXPECT_FALSE(res.executed);
  EXPECT_GT(chain_->fault_counters().congestion_delayed, 0u);
}

TEST_F(FaultChainTest, DuplicateWindowReplaysExecution) {
  FaultPlan plan;
  plan.duplicate(0.0, 30.0, 1.0);
  make_chain(std::move(plan));
  int results = 0;
  chain_->submit(make_tx("replayed", FeePolicy::bundle(10'000)),
                 [&](const TxResult&) { ++results; });
  sim_.run_until(300.0);
  EXPECT_EQ(results, 1);  // submitter hears exactly one result
  EXPECT_EQ(chain_->fault_counters().duplicated, 1u);
  // ...but the program ran twice (ghost replay).
  EXPECT_EQ(chain_->program_as<CounterProgram>("test").count, 2);
}

TEST_F(FaultChainTest, FeeSpikeInflatesMarketComponents) {
  FaultPlan plan;
  plan.fee_spike(0.0, 300.0, 10.0);
  make_chain(std::move(plan));
  TxResult res;
  bool fired = false;
  chain_->submit(make_tx("gouged", FeePolicy::bundle(10'000)), [&](const TxResult& r) {
    res = r;
    fired = true;
  });
  sim_.run_until(300.0);
  ASSERT_TRUE(fired);
  ASSERT_TRUE(res.executed);
  EXPECT_EQ(res.fee.tip_lamports, 100'000u);  // 10'000 * 10
  EXPECT_EQ(chain_->fault_counters().fee_spiked, 1u);
}

TEST_F(FaultChainTest, SameSeedReproducesIdenticalTrace) {
  const auto run_once = [] {
    sim::Simulation sim;
    ChainConfig cfg;
    cfg.fault.congestion(0.0, 60.0, 0.3).blackhole(10.0, 30.0, 0.5).outage(40.0, 50.0);
    Chain chain(sim, Rng(99), cfg);
    chain.register_program("test", std::make_unique<CounterProgram>());
    const PublicKey payer = PrivateKey::from_label("payer").public_key();
    chain.airdrop(payer, 100 * kLamportsPerSol);
    chain.start();
    std::vector<double> times;
    for (int i = 0; i < 20; ++i) {
      sim.after(i * 3.0, [&, i] {
        Transaction tx;
        tx.payer = payer;
        tx.label = "t" + std::to_string(i);
        tx.instructions.push_back(Instruction{"test", Bytes{}});
        chain.submit(std::move(tx), [&](const TxResult& r) { times.push_back(r.time); });
      });
    }
    sim.run_until(400.0);
    return std::make_pair(times, sim.events_processed());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST_F(FaultChainTest, CrashOnlyPlanLeavesChainByteIdentical) {
  // A plan holding nothing but crash windows must not flip the chain
  // into its fault path (which draws from the fault RNG and would
  // perturb every subsequent timing decision).
  const auto run_once = [](bool with_crash_windows) {
    sim::Simulation sim;
    ChainConfig cfg;
    if (with_crash_windows)
      cfg.fault.crash(5.0, 15.0, "relayer").crash(20.0, 25.0);
    Chain chain(sim, Rng(99), cfg);
    chain.register_program("test", std::make_unique<CounterProgram>());
    const PublicKey payer = PrivateKey::from_label("payer").public_key();
    chain.airdrop(payer, 100 * kLamportsPerSol);
    chain.start();
    std::vector<double> times;
    for (int i = 0; i < 20; ++i) {
      sim.after(i * 3.0, [&, i] {
        Transaction tx;
        tx.payer = payer;
        tx.label = "t" + std::to_string(i);
        tx.instructions.push_back(Instruction{"test", Bytes{}});
        chain.submit(std::move(tx), [&](const TxResult& r) { times.push_back(r.time); });
      });
    }
    sim.run_until(400.0);
    return std::make_pair(times, sim.events_processed());
  };
  const auto with = run_once(true);
  const auto without = run_once(false);
  EXPECT_EQ(with.first, without.first);
  EXPECT_EQ(with.second, without.second);
}

}  // namespace
}  // namespace bmg::host
