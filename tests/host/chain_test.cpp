#include "host/chain.hpp"

#include <gtest/gtest.h>

#include "common/codec.hpp"
#include "crypto/sha256.hpp"
#include "host/constants.hpp"

namespace bmg::host {
namespace {

using crypto::PrivateKey;
using crypto::PublicKey;

/// Minimal program for runtime tests: counts calls, can burn CU, grow
/// its account, emit events, transfer lamports or abort.
class TestProgram : public Program {
 public:
  void execute(TxContext& ctx, ByteView data) override {
    Decoder d(data);
    const std::uint8_t op = d.u8();
    switch (op) {
      case 0:  // bump counter
        ++counter;
        break;
      case 1:  // burn CU
        ctx.consume_cu(d.u64());
        break;
      case 2:  // abort
        throw TxError("requested abort");
      case 3:  // emit event then maybe abort
        ctx.emit_event("ping", bytes_of("pong"));
        if (d.u8() == 1) throw TxError("abort after event");
        break;
      case 4:  // grow account
        bytes_used = d.u64();
        break;
      case 5: {  // transfer then maybe abort
        const std::uint64_t amount = d.u64();
        ctx.transfer_from_payer(sink, amount);
        if (d.u8() == 1) throw TxError("abort after transfer");
        break;
      }
      case 6:  // count verified signatures
        sigs_seen += ctx.verified_signatures().size();
        break;
      default:
        throw TxError("bad op");
    }
  }
  [[nodiscard]] std::size_t account_bytes() const override { return bytes_used; }

  int counter = 0;
  std::size_t bytes_used = 0;
  std::size_t sigs_seen = 0;
  PublicKey sink = PrivateKey::from_label("sink").public_key();
};

class ChainTest : public ::testing::Test {
 protected:
  ChainTest() : chain_(sim_, Rng(1234)) {
    chain_.register_program("test", std::make_unique<TestProgram>());
    chain_.airdrop(payer_, 100 * kLamportsPerSol);
    chain_.start();
  }

  Transaction make_tx(Bytes data, FeePolicy fee = FeePolicy::base()) {
    Transaction tx;
    tx.payer = payer_;
    tx.instructions.push_back(Instruction{"test", std::move(data)});
    tx.fee = fee;
    return tx;
  }

  TxResult run_to_result(Transaction tx) {
    TxResult out;
    bool got = false;
    chain_.submit(std::move(tx), [&](const TxResult& r) {
      out = r;
      got = true;
    });
    sim_.run_until(sim_.now() + 120.0);
    EXPECT_TRUE(got);
    return out;
  }

  TestProgram& prog() { return chain_.program_as<TestProgram>("test"); }

  sim::Simulation sim_;
  Chain chain_;
  PublicKey payer_ = PrivateKey::from_label("payer").public_key();
};

Bytes op_bump() {
  Encoder e;
  e.u8(0);
  return e.take();
}

TEST_F(ChainTest, SlotsAdvanceWithTime) {
  sim_.run_until(4.0);
  EXPECT_EQ(chain_.slot(), 10u);  // 4.0s / 0.4s
}

TEST_F(ChainTest, ExecutesSimpleTransaction) {
  const TxResult res = run_to_result(make_tx(op_bump()));
  EXPECT_TRUE(res.executed);
  EXPECT_TRUE(res.success) << res.error;
  EXPECT_EQ(prog().counter, 1);
  EXPECT_GT(res.slot, 0u);
}

TEST_F(ChainTest, BaseFeeIsOneSignature) {
  const TxResult res = run_to_result(make_tx(op_bump()));
  EXPECT_EQ(res.fee.base_lamports, kLamportsPerSignature);
  EXPECT_EQ(res.fee.priority_lamports, 0u);
  EXPECT_EQ(res.fee.tip_lamports, 0u);
  // 5000 lamports at 200 USD/SOL = 0.1 cents.
  EXPECT_NEAR(res.fee.usd(), 0.001, 1e-9);
}

TEST_F(ChainTest, PriorityFeeScalesWithComputeUnits) {
  Encoder e;
  e.u8(1).u64(1'000'000);  // burn 1M CU
  const TxResult res = run_to_result(make_tx(e.take(), FeePolicy::priority(2'000'000)));
  EXPECT_TRUE(res.success) << res.error;
  EXPECT_GE(res.cu_used, 1'000'000u);
  // 2e6 micro-lamports/CU * ~1e6 CU = ~2e6 lamports.
  EXPECT_NEAR(static_cast<double>(res.fee.priority_lamports), 2.0e6, 0.1e6);
}

TEST_F(ChainTest, BundleTipCharged) {
  const std::uint64_t tip = usd_to_lamports(3.02);
  const TxResult res = run_to_result(make_tx(op_bump(), FeePolicy::bundle(tip)));
  EXPECT_EQ(res.fee.tip_lamports, tip);
  EXPECT_NEAR(res.fee.usd(), 3.02 + 0.001, 1e-6);
}

TEST_F(ChainTest, FeesDeductedFromPayer) {
  const std::uint64_t before = chain_.balance(payer_);
  const TxResult res = run_to_result(make_tx(op_bump()));
  EXPECT_EQ(chain_.balance(payer_), before - res.fee.total());
}

TEST_F(ChainTest, OversizedTransactionRejected) {
  Transaction tx = make_tx(op_bump());
  tx.instructions[0].data.resize(kMaxTransactionSize + 1);
  const TxResult res = run_to_result(std::move(tx));
  EXPECT_FALSE(res.executed);
  EXPECT_NE(res.error.find("too large"), std::string::npos);
}

TEST_F(ChainTest, MaxSizeTransactionAccepted) {
  Transaction tx = make_tx(op_bump());
  // Pad instruction data to exactly the size limit.
  tx.instructions[0].data.resize(kMaxTransactionSize - kTxEnvelopeBytes - 8);
  ASSERT_EQ(tx.wire_size(), kMaxTransactionSize);
  // Padding trailing bytes is ignored by the decoder-based program.
  const TxResult res = run_to_result(std::move(tx));
  EXPECT_TRUE(res.executed);
}

TEST_F(ChainTest, ComputeBudgetEnforced) {
  Encoder e;
  e.u8(1).u64(kMaxComputeUnits + 1);
  const TxResult res = run_to_result(make_tx(e.take()));
  EXPECT_TRUE(res.executed);
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("compute budget"), std::string::npos);
}

TEST_F(ChainTest, FailedTxStillPaysFees) {
  const std::uint64_t before = chain_.balance(payer_);
  Encoder e;
  e.u8(2);  // abort
  const TxResult res = run_to_result(make_tx(e.take()));
  EXPECT_FALSE(res.success);
  EXPECT_LT(chain_.balance(payer_), before);
  EXPECT_EQ(res.fee.base_lamports, kLamportsPerSignature);
}

TEST_F(ChainTest, EventsDeliveredOnSuccess) {
  std::vector<Event> seen;
  chain_.subscribe("test", [&](const Event& ev) { seen.push_back(ev); });
  Encoder e;
  e.u8(3).u8(0);  // emit, no abort
  const TxResult res = run_to_result(make_tx(e.take()));
  ASSERT_TRUE(res.success);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].name, "ping");
  EXPECT_EQ(seen[0].data, bytes_of("pong"));
  EXPECT_EQ(seen[0].program, "test");
}

TEST_F(ChainTest, EventsDiscardedOnFailure) {
  std::vector<Event> seen;
  chain_.subscribe("test", [&](const Event& ev) { seen.push_back(ev); });
  Encoder e;
  e.u8(3).u8(1);  // emit then abort
  const TxResult res = run_to_result(make_tx(e.take()));
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(seen.empty());
}

TEST_F(ChainTest, TransfersAppliedOnSuccess) {
  Encoder e;
  e.u8(5).u64(1000).u8(0);
  const TxResult res = run_to_result(make_tx(e.take()));
  ASSERT_TRUE(res.success) << res.error;
  EXPECT_EQ(chain_.balance(prog().sink), 1000u);
}

TEST_F(ChainTest, TransfersRolledBackOnFailure) {
  Encoder e;
  e.u8(5).u64(1000).u8(1);  // transfer then abort
  const TxResult res = run_to_result(make_tx(e.take()));
  EXPECT_FALSE(res.success);
  EXPECT_EQ(chain_.balance(prog().sink), 0u);
}

TEST_F(ChainTest, AccountSizeCapEnforced) {
  Encoder ok;
  ok.u8(4).u64(kMaxAccountSize);
  EXPECT_TRUE(run_to_result(make_tx(ok.take())).success);
  Encoder big;
  big.u8(4).u64(kMaxAccountSize + 1);
  const TxResult res = run_to_result(make_tx(big.take()));
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.error.find("account size"), std::string::npos);
}

TEST_F(ChainTest, SigVerifyPrecompileAcceptsValid) {
  const PrivateKey signer = PrivateKey::from_label("sig-signer");
  // Pre-compile messages are 32-byte digests (SigVerify::message).
  const Hash32 msg = crypto::Sha256::digest(bytes_of("block 7"));
  Transaction tx = make_tx([] {
    Encoder e;
    e.u8(6);
    return e.take();
  }());
  tx.sig_verifies.push_back(
      SigVerify{signer.public_key(), msg, signer.sign(msg.view())});
  const TxResult res = run_to_result(std::move(tx));
  EXPECT_TRUE(res.success) << res.error;
  EXPECT_EQ(prog().sigs_seen, 1u);
  // Base fee covers the tx signature plus one pre-compile signature.
  EXPECT_EQ(res.fee.base_lamports, 2 * kLamportsPerSignature);
}

TEST_F(ChainTest, SigVerifyPrecompileRejectsInvalid) {
  const PrivateKey signer = PrivateKey::from_label("sig-signer");
  const Hash32 msg = crypto::Sha256::digest(bytes_of("block 7"));
  crypto::Signature bad = signer.sign(msg.view());
  auto raw = bad.raw();
  raw[0] ^= 1;
  Transaction tx = make_tx([] {
    Encoder e;
    e.u8(6);
    return e.take();
  }());
  tx.sig_verifies.push_back(
      SigVerify{signer.public_key(), msg, crypto::Signature(raw)});
  const TxResult res = run_to_result(std::move(tx));
  EXPECT_FALSE(res.success);
  EXPECT_EQ(prog().sigs_seen, 0u);
}

TEST_F(ChainTest, PayerStatsAccumulate) {
  (void)run_to_result(make_tx(op_bump()));
  (void)run_to_result(make_tx(op_bump()));
  const auto& st = chain_.payer_stats(payer_);
  EXPECT_EQ(st.tx_count, 2u);
  EXPECT_EQ(st.sig_count, 2u);
  EXPECT_EQ(st.fees_lamports, 2 * kLamportsPerSignature);
}

TEST_F(ChainTest, RentDepositCharged) {
  const std::uint64_t before = chain_.balance(payer_);
  chain_.charge_rent(payer_, kMaxAccountSize);
  const std::uint64_t deposit = kRentLamportsPerByte * kMaxAccountSize;
  EXPECT_EQ(chain_.balance(payer_), before - deposit);
  EXPECT_EQ(chain_.rent_deposits(payer_), deposit);
  // Paper §V-D: the 10 MiB deposit is about 14.6 k$.
  EXPECT_NEAR(lamports_to_usd(deposit), 14600.0, 200.0);
}

TEST_F(ChainTest, UnknownProgramFailsTx) {
  Transaction tx;
  tx.payer = payer_;
  tx.instructions.push_back(Instruction{"nope", op_bump()});
  const TxResult res = run_to_result(std::move(tx));
  EXPECT_TRUE(res.executed);
  EXPECT_FALSE(res.success);
}

TEST(ChainInclusion, FullBlocksSpillToLaterSlots) {
  // More transactions than a block's compute budget admits must spread
  // across multiple slots instead of being dropped.
  sim::Simulation sim;
  ChainConfig cfg;
  cfg.p_include_base = 1.0;  // all eligible for the same slot
  Chain chain(sim, Rng(5), cfg);
  chain.register_program("test", std::make_unique<TestProgram>());
  const PublicKey payer = PrivateKey::from_label("p").public_key();
  chain.airdrop(payer, 1000 * kLamportsPerSol);
  chain.start();

  const int n = 100;  // > 48M / 1.4M = 34 per block
  std::vector<std::uint64_t> slots;
  for (int i = 0; i < n; ++i) {
    Transaction tx;
    tx.payer = payer;
    Encoder e;
    e.u8(0);
    tx.instructions.push_back(Instruction{"test", e.take()});
    chain.submit(std::move(tx), [&](const TxResult& r) {
      if (r.executed) slots.push_back(r.slot);
    });
  }
  sim.run_until(120.0);
  ASSERT_EQ(slots.size(), static_cast<std::size_t>(n));
  const auto [min_slot, max_slot] = std::minmax_element(slots.begin(), slots.end());
  EXPECT_GT(*max_slot, *min_slot);  // spilled across slots
  // Per-slot counts bounded by the block compute budget.
  std::map<std::uint64_t, int> per_slot;
  for (auto s : slots) ++per_slot[s];
  for (const auto& [slot, count] : per_slot)
    EXPECT_LE(count, static_cast<int>(kBlockComputeUnits / kMaxComputeUnits) + 1);
  EXPECT_EQ(chain.program_as<TestProgram>("test").counter, n);
}

TEST(ChainInclusion, NeverIncludedTxIsDropped) {
  sim::Simulation sim;
  ChainConfig cfg;
  cfg.p_include_base = 0.0;  // base-fee txs never picked up
  Chain chain(sim, Rng(9), cfg);
  chain.register_program("test", std::make_unique<TestProgram>());
  const PublicKey payer = PrivateKey::from_label("p").public_key();
  chain.airdrop(payer, kLamportsPerSol);
  chain.start();

  Transaction tx;
  tx.payer = payer;
  tx.instructions.push_back(Instruction{"test", op_bump()});
  TxResult out;
  bool got = false;
  chain.submit(std::move(tx), [&](const TxResult& r) {
    out = r;
    got = true;
  });
  sim.run_until(200.0);
  ASSERT_TRUE(got);
  EXPECT_FALSE(out.executed);
  EXPECT_NE(out.error.find("expired"), std::string::npos);
}

TEST(ChainInclusion, PriorityLandsFasterThanBaseOnAverage) {
  sim::Simulation sim;
  ChainConfig cfg;
  cfg.p_include_base = 0.25;
  cfg.p_include_priority = 0.95;
  Chain chain(sim, Rng(77), cfg);
  chain.register_program("test", std::make_unique<TestProgram>());
  const PublicKey payer = PrivateKey::from_label("p").public_key();
  chain.airdrop(payer, 100 * kLamportsPerSol);
  chain.start();

  double base_total = 0, prio_total = 0;
  int base_n = 0, prio_n = 0;
  for (int i = 0; i < 200; ++i) {
    const double submit_time = sim.now();
    Transaction tx;
    tx.payer = payer;
    tx.instructions.push_back(Instruction{"test", op_bump()});
    tx.fee = (i % 2 == 0) ? FeePolicy::base() : FeePolicy::priority(1000);
    const bool is_base = (i % 2 == 0);
    chain.submit(std::move(tx), [&, submit_time, is_base](const TxResult& r) {
      if (!r.executed) return;
      if (is_base) {
        base_total += r.time - submit_time;
        ++base_n;
      } else {
        prio_total += r.time - submit_time;
        ++prio_n;
      }
    });
    sim.run_until(sim.now() + 2.0);
  }
  sim.run_until(sim.now() + 120.0);
  ASSERT_GT(base_n, 50);
  ASSERT_GT(prio_n, 90);
  EXPECT_GT(base_total / base_n, prio_total / prio_n);
}

}  // namespace
}  // namespace bmg::host
