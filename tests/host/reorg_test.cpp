// Fork/reorg machinery unit tests: arming rules, journal-verified
// rollback + genesis replay, depth clamping against the rooted slot,
// retraction callbacks, commitment-aware delivery, rooted waits and
// the survival draw.  A depth-0 window or an untouched plan must leave
// the chain byte-identical to the linear seed behaviour.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/codec.hpp"
#include "host/chain.hpp"
#include "host/constants.hpp"

namespace bmg::host {
namespace {

using crypto::PrivateKey;
using crypto::PublicKey;

/// Rollback-capable counter program: op 0 bumps the counter and emits
/// a "bump" event; op 1 burns CU.  The baseline snapshot is the
/// counter value at Chain::start().
class ForkProgram : public Program {
 public:
  void execute(TxContext& ctx, ByteView data) override {
    Decoder d(data);
    switch (d.u8()) {
      case 0:
        ++counter;
        ctx.emit_event("bump", bytes_of("x"));
        break;
      case 1:
        ctx.consume_cu(d.u64());
        break;
      default:
        throw TxError("bad op");
    }
  }
  [[nodiscard]] bool fork_supported() const override { return true; }
  void fork_capture_baseline() override { baseline_ = counter; }
  void fork_reset_to_baseline() override { counter = baseline_; }

  int counter = 0;

 private:
  int baseline_ = 0;
};

/// Linear-only program, for the arming guard test.
class LinearProgram : public Program {
 public:
  void execute(TxContext&, ByteView) override {}
};

Bytes op_bump() {
  Encoder e;
  e.u8(0);
  return e.take();
}

struct Harness {
  explicit Harness(ChainConfig cfg = {}, std::uint64_t rng_seed = 1234)
      : chain(sim, Rng(rng_seed), cfg) {
    chain.register_program("fork", std::make_unique<ForkProgram>());
    chain.airdrop(payer, 100 * kLamportsPerSol);
  }

  void submit_bump(const std::string& label = {}) {
    Transaction tx;
    tx.payer = payer;
    tx.label = label;
    tx.instructions.push_back(Instruction{"fork", op_bump()});
    tx.fee = FeePolicy::bundle(usd_to_lamports(3.0));  // near-certain inclusion
    chain.submit(std::move(tx), [this](const TxResult& r) { results.push_back(r); });
  }

  ForkProgram& prog() { return chain.program_as<ForkProgram>("fork"); }

  sim::Simulation sim;
  Chain chain;
  PublicKey payer = PrivateKey::from_label("fork-payer").public_key();
  std::vector<TxResult> results;
};

ChainConfig armed_config(std::uint64_t rooted_lag = 8) {
  ChainConfig cfg;
  cfg.fork_aware = true;
  cfg.rooted_lag_slots = rooted_lag;
  return cfg;
}

TEST(Reorg, StartThrowsWhenProgramCannotFork) {
  sim::Simulation sim;
  Chain chain(sim, Rng(1), armed_config());
  chain.register_program("linear", std::make_unique<LinearProgram>());
  EXPECT_THROW(chain.start(), std::runtime_error);
}

TEST(Reorg, UnarmedChainDeliversEveryCommitmentInline) {
  Harness h;
  std::vector<Event> processed, rooted;
  h.chain.subscribe("fork", [&](const Event& ev) { processed.push_back(ev); });
  SubscribeOptions opts;
  opts.level = Commitment::kRooted;
  h.chain.subscribe(
      "fork", [&](const Event& ev) { rooted.push_back(ev); }, opts);
  h.chain.start();
  h.submit_bump();
  h.sim.run_until(30.0);

  ASSERT_EQ(h.results.size(), 1u);
  EXPECT_TRUE(h.results[0].success);
  // Linear chains are final at execution: both subscribers saw the
  // event at the same instant and nothing was deferred.
  ASSERT_EQ(processed.size(), 1u);
  ASSERT_EQ(rooted.size(), 1u);
  EXPECT_EQ(processed[0].slot, rooted[0].slot);

  // when_rooted fires inline and reports the sentinel id.
  bool fired = false;
  EXPECT_EQ(h.chain.when_rooted(h.chain.slot(), [&] { fired = true; }), 0u);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(h.chain.fork_mode());
}

TEST(Reorg, DepthZeroWindowIsByteIdenticalToSeed) {
  // A scripted reorg window with max_depth == 0 must not arm the fork
  // machinery, perturb any RNG stream, or change a single observable.
  const auto run_trace = [](bool with_window) {
    ChainConfig cfg;
    if (with_window) cfg.fault.reorg(0.0, 1e9, /*max_depth=*/0, /*probability=*/1.0);
    Harness h(cfg);
    EXPECT_FALSE(h.chain.fork_mode());
    h.chain.start();
    EXPECT_FALSE(h.chain.fork_mode());
    for (int i = 0; i < 5; ++i) {
      h.submit_bump();
      h.sim.run_until(h.sim.now() + 2.0);
    }
    h.sim.run_until(h.sim.now() + 30.0);
    std::vector<std::tuple<std::uint64_t, double, bool>> trace;
    for (const auto& r : h.results) trace.emplace_back(r.slot, r.time, r.success);
    return std::make_tuple(trace, h.chain.balance(h.payer), h.prog().counter,
                           h.sim.events_processed(),
                           h.chain.fault_counters().reorgs_triggered);
  };
  EXPECT_EQ(run_trace(false), run_trace(true));
}

TEST(Reorg, StormRollsBackAndReplaysToConvergence) {
  Harness h(armed_config(/*rooted_lag=*/8));
  std::vector<Event> delivered, retracted;
  SubscribeOptions opts;  // processed, with retraction callbacks
  opts.on_retract = [&](const Event& ev) { retracted.push_back(ev); };
  h.chain.subscribe(
      "fork", [&](const Event& ev) { delivered.push_back(ev); }, opts);
  h.chain.start();
  // Forks every slot for 40 s, full survival: every retracted tx is
  // re-executed on the winning fork.
  h.chain.fault_plan().reorg(2.0, 42.0, /*max_depth=*/4, /*probability=*/1.0);

  const int n = 10;
  for (int i = 0; i < n; ++i) {
    h.submit_bump();
    h.sim.run_until(h.sim.now() + 3.0);
  }
  h.sim.run_until(h.sim.now() + 60.0);

  const FaultCounters& fc = h.chain.fault_counters();
  ASSERT_GT(fc.reorgs_triggered, 0u);
  EXPECT_GT(fc.slots_rolled_back, 0u);
  EXPECT_GT(fc.txs_replayed, 0u);
  EXPECT_EQ(fc.txs_reorged_out, 0u);  // survival defaults to 1.0

  // Every transaction executed (possibly several times across forks),
  // yet the replayed program state holds exactly one logical bump per
  // transaction: rollback + genesis replay converged.
  EXPECT_EQ(h.prog().counter, n);
  // Deliveries minus retractions likewise settles at one visible event
  // per transaction.
  EXPECT_GT(retracted.size(), 0u);
  EXPECT_EQ(delivered.size() - retracted.size(), static_cast<std::size_t>(n));
  // Epoch counter moved in lockstep with the reorgs.
  EXPECT_EQ(h.chain.fork_epoch(), fc.reorgs_triggered);
}

TEST(Reorg, DepthClampedByRootedSlot) {
  // Ask for absurd depths: every reorg must stay within the unrooted
  // suffix [rooted+1, tip-1], i.e. at most rooted_lag - 1 slots.
  const std::uint64_t lag = 6;
  Harness h(armed_config(lag));
  h.chain.start();
  h.chain.fault_plan().reorg(1.0, 60.0, /*max_depth=*/1000, /*probability=*/0.5);
  h.submit_bump();
  h.sim.run_until(90.0);

  const FaultCounters& fc = h.chain.fault_counters();
  ASSERT_GT(fc.reorgs_triggered, 0u);
  EXPECT_LE(fc.slots_rolled_back, fc.reorgs_triggered * (lag - 1));
  EXPECT_EQ(h.prog().counter, 1);
}

TEST(Reorg, RootedSubscriberNeverSeesRetractions) {
  Harness h(armed_config(/*rooted_lag=*/8));
  std::vector<Event> rooted_seen;
  int rooted_retracts = 0;
  SubscribeOptions opts;
  opts.level = Commitment::kRooted;
  opts.on_retract = [&](const Event&) { ++rooted_retracts; };
  h.chain.subscribe(
      "fork", [&](const Event& ev) { rooted_seen.push_back(ev); }, opts);
  h.chain.start();
  h.chain.fault_plan().reorg(2.0, 42.0, /*max_depth=*/4, /*probability=*/1.0);

  const int n = 8;
  for (int i = 0; i < n; ++i) {
    h.submit_bump();
    h.sim.run_until(h.sim.now() + 3.0);
  }
  h.sim.run_until(h.sim.now() + 60.0);

  ASSERT_GT(h.chain.fault_counters().reorgs_triggered, 0u);
  // Rooted delivery trails every possible reorg: exactly one delivery
  // per event, in slot order, and never a retraction.
  EXPECT_EQ(rooted_seen.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(rooted_retracts, 0);
  for (std::size_t i = 1; i < rooted_seen.size(); ++i)
    EXPECT_GE(rooted_seen[i].slot, rooted_seen[i - 1].slot);
}

TEST(Reorg, ConfirmedDeliveryLagsByK) {
  const std::uint64_t k = 5;
  Harness h(armed_config(/*rooted_lag=*/16));
  std::vector<std::uint64_t> delivery_slots;  // chain tip when delivered
  std::vector<std::uint64_t> event_slots;
  SubscribeOptions opts;
  opts.level = Commitment::kConfirmed;
  opts.confirmations = k;
  h.chain.subscribe(
      "fork",
      [&](const Event& ev) {
        delivery_slots.push_back(h.chain.slot());
        event_slots.push_back(ev.slot);
      },
      opts);
  h.chain.start();
  h.submit_bump();
  h.sim.run_until(30.0);

  ASSERT_EQ(delivery_slots.size(), 1u);
  EXPECT_GE(delivery_slots[0], event_slots[0] + k);
  EXPECT_LT(delivery_slots[0], event_slots[0] + 16);  // before rooting
}

TEST(Reorg, WhenRootedFiresAtLagAndCancelHolds) {
  const std::uint64_t lag = 8;
  Harness h(armed_config(lag));
  h.chain.start();
  h.submit_bump();
  h.sim.run_until(2.0);  // tip is now past slot 1

  const std::uint64_t target = h.chain.slot();
  std::uint64_t fired_at_slot = 0;
  const auto id = h.chain.when_rooted(target, [&] { fired_at_slot = h.chain.slot(); });
  EXPECT_NE(id, 0u);

  bool cancelled_fired = false;
  const auto cancel_id = h.chain.when_rooted(target, [&] { cancelled_fired = true; });
  h.chain.cancel_rooted(cancel_id);

  h.sim.run_until(h.sim.now() + 30.0);
  EXPECT_EQ(fired_at_slot, target + lag);  // first boundary that roots it
  EXPECT_FALSE(cancelled_fired);

  // Already-rooted slots fire inline even on an armed chain.
  bool inline_fired = false;
  EXPECT_EQ(h.chain.when_rooted(h.chain.rooted_slot(), [&] { inline_fired = true; }),
            0u);
  EXPECT_TRUE(inline_fired);
}

TEST(Reorg, SurvivalZeroKillsEveryRetractedTx) {
  Harness h(armed_config(/*rooted_lag=*/8));
  h.chain.start();
  h.chain.fault_plan().reorg(2.0, 30.0, /*max_depth=*/4, /*probability=*/1.0,
                             /*survival=*/0.0);
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    h.submit_bump();
    h.sim.run_until(h.sim.now() + 3.0);
  }
  h.sim.run_until(h.sim.now() + 40.0);

  const FaultCounters& fc = h.chain.fault_counters();
  ASSERT_GT(fc.reorgs_triggered, 0u);
  ASSERT_GT(fc.txs_reorged_out, 0u);
  EXPECT_EQ(fc.txs_replayed, 0u);  // nothing survives a 0.0 draw

  // Each death re-notified its submitter exactly once with the flag
  // set, and the killed work is gone from program state.
  std::size_t deaths = 0;
  for (const auto& r : h.results) deaths += r.reorged_out ? 1 : 0;
  EXPECT_EQ(deaths, fc.txs_reorged_out);
  EXPECT_EQ(h.prog().counter,
            static_cast<int>(static_cast<std::uint64_t>(n) - fc.txs_reorged_out));
}

TEST(Reorg, SameSeedReproducesIdenticalStorm) {
  const auto run_once = [] {
    Harness h(armed_config(/*rooted_lag=*/8), /*rng_seed=*/777);
    h.chain.start();
    h.chain.fault_plan().reorg(2.0, 40.0, /*max_depth=*/3, /*probability=*/0.6,
                               /*survival=*/0.8);
    for (int i = 0; i < 8; ++i) {
      h.submit_bump();
      h.sim.run_until(h.sim.now() + 3.0);
    }
    h.sim.run_until(h.sim.now() + 40.0);
    const FaultCounters& fc = h.chain.fault_counters();
    return std::make_tuple(h.sim.events_processed(), h.prog().counter,
                           h.chain.balance(h.payer), fc.reorgs_triggered,
                           fc.slots_rolled_back, fc.txs_replayed, fc.txs_reorged_out,
                           h.chain.fork_epoch());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace bmg::host
