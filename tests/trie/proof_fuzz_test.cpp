// Hardening tests for Proof::deserialize: hostile relayers and
// counterparties hand the contract arbitrary proof bytes, so the
// decoder must reject truncated, oversized, and garbage inputs with a
// clean CodecError — never an out-of-bounds read (the ASan/UBSan CI
// job runs this file under BMG_SANITIZE).
#include <gtest/gtest.h>

#include <vector>

#include "common/codec.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "trie/trie.hpp"

namespace bmg::trie {
namespace {

Bytes key_of(std::uint64_t i) {
  Encoder e;
  e.u64(0xabcd).u64(i);
  return e.take();
}

/// A realistic serialized proof to mutate: membership proof from a
/// populated trie (leaf + branch + extension nodes all present).
Bytes sample_proof_bytes() {
  SealableTrie t;
  for (std::uint64_t i = 0; i < 64; ++i)
    t.set(key_of(i), crypto::Sha256::digest(key_of(i)));
  return t.prove(key_of(17)).serialize();
}

/// deserialize() must either succeed or throw CodecError; any other
/// outcome (crash, OOB, std::bad_alloc from a hostile length) fails.
void expect_clean(ByteView data) {
  try {
    const Proof p = Proof::deserialize(data);
    // If it parsed, verification must run without faulting either —
    // kInvalid outcomes are fine, memory errors are not.
    const Hash32 root{};
    (void)verify_proof(root, key_of(0), p);
  } catch (const CodecError&) {
    // expected rejection path
  }
}

TEST(ProofFuzz, EmptyAndTinyInputs) {
  expect_clean({});
  for (std::uint8_t b = 0; b < 255; ++b) {
    const std::uint8_t one[] = {b};
    expect_clean(ByteView{one, 1});
  }
  EXPECT_THROW((void)Proof::deserialize({}), CodecError);
}

TEST(ProofFuzz, TruncatedAtEveryByte) {
  const Bytes good = sample_proof_bytes();
  ASSERT_NO_THROW((void)Proof::deserialize(good));
  for (std::size_t len = 0; len < good.size(); ++len) {
    SCOPED_TRACE(len);
    EXPECT_THROW((void)Proof::deserialize(ByteView{good.data(), len}), CodecError);
  }
}

TEST(ProofFuzz, TrailingGarbageRejected) {
  Bytes padded = sample_proof_bytes();
  padded.push_back(0x00);
  EXPECT_THROW((void)Proof::deserialize(padded), CodecError);
}

TEST(ProofFuzz, ImplausibleNodeCountRejected) {
  // A count field claiming 2^32-1 nodes must be rejected up front, not
  // drive a giant reserve() or a long parse loop.
  Encoder e;
  e.u32(0xFFFFFFFF);
  EXPECT_THROW((void)Proof::deserialize(e.take()), CodecError);
  Encoder e2;
  e2.u32(4097);
  EXPECT_THROW((void)Proof::deserialize(e2.take()), CodecError);
}

TEST(ProofFuzz, OversizedNibbleCountRejected) {
  // Leaf node whose nibble count claims more data than the buffer holds.
  Encoder e;
  e.u32(1);
  e.u8(0x00);     // leaf tag
  e.u16(0xFFFF);  // nibble count far past end of input
  e.u8(0x01);
  EXPECT_THROW((void)Proof::deserialize(e.take()), CodecError);
}

TEST(ProofFuzz, RandomMutationsNeverFault) {
  const Bytes good = sample_proof_bytes();
  Rng rng(0xf022);
  for (int round = 0; round < 2000; ++round) {
    Bytes mutated = good;
    const int flips = 1 + static_cast<int>(rng.uniform_int(8));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = static_cast<std::size_t>(rng.uniform_int(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    if (rng.chance(0.3))
      mutated.resize(static_cast<std::size_t>(rng.uniform_int(mutated.size() + 1)));
    expect_clean(mutated);
  }
}

TEST(ProofFuzz, RandomGarbageNeverFaults) {
  Rng rng(0x6a2b);
  for (int round = 0; round < 2000; ++round) {
    Bytes junk(static_cast<std::size_t>(rng.uniform_int(600)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    expect_clean(junk);
  }
}

TEST(ProofFuzz, RoundTripSurvivesVerification) {
  // Sanity: an untampered round trip still verifies against the real
  // root, so the hardening above isn't rejecting valid proofs.
  SealableTrie t;
  for (std::uint64_t i = 0; i < 64; ++i)
    t.set(key_of(i), crypto::Sha256::digest(key_of(i)));
  const Hash32 root = t.root_hash();
  const Bytes wire = t.prove(key_of(17)).serialize();
  const Proof decoded = Proof::deserialize(wire);
  const VerifyOutcome out = verify_proof(root, key_of(17), decoded);
  ASSERT_EQ(out.kind, VerifyOutcome::Kind::kFound);
  EXPECT_EQ(out.value, crypto::Sha256::digest(key_of(17)));
}

}  // namespace
}  // namespace bmg::trie
