// Proof fuzzing at page boundaries (PR9 satellite).
//
// The paged node arenas introduce failure modes the original slab
// design could not have: a proof spine that straddles a page split, a
// sealed region whose reclamation emptied (and recycled) a page mid
// proof-path, and snapshot reads racing page copy-on-write.  These
// fuzz sweeps run the trie with deliberately tiny pages so every few
// inserts force a fresh page, and cross-check three invariants:
//
//   1. membership/non-membership proofs verify at every churn step,
//   2. serialized proofs reject truncation and single-byte flips,
//   3. roots and proof bytes are identical across the in-RAM and
//      file-backed stores and across page sizes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "trie/snapshot.hpp"
#include "trie/trie.hpp"

namespace bmg::trie {
namespace {

using crypto::Sha256;

Hash32 val(std::uint64_t x) { return Sha256::digest(bytes_of("v" + std::to_string(x))); }

Bytes key_of(std::uint64_t x) {
  const Hash32 h = Sha256::digest(bytes_of("k" + std::to_string(x)));
  return Bytes(h.bytes.begin(), h.bytes.end());
}

Bytes seq_key(std::uint64_t tag, std::uint64_t seq) {
  Encoder e;
  e.u64(tag).u64(seq);
  return e.take();
}

PageStoreConfig cfg_of(PageStoreConfig::Backend backend, std::size_t page_bytes,
                       std::size_t resident = 16) {
  PageStoreConfig cfg;
  cfg.backend = backend;
  cfg.page_bytes = page_bytes;
  cfg.max_resident_pages = resident;
  return cfg;
}

class PagedProofFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PagedProofFuzz, ProofsVerifyAcrossPageSplits) {
  // 1 KiB pages hold only a handful of records per kind (one branch!), so this
  // churn constantly opens fresh pages and splits spines across them.
  Rng rng(GetParam());
  SealableTrie t{cfg_of(PageStoreConfig::Backend::kMemory, 1024)};
  std::vector<std::uint64_t> live;
  std::uint64_t next = 0;
  for (int step = 0; step < 30; ++step) {
    const int inserts = 1 + static_cast<int>(rng.uniform_int(12));
    for (int i = 0; i < inserts; ++i) {
      t.set(key_of(next), val(next));
      live.push_back(next++);
    }
    const Hash32 root = t.root_hash();
    // Every live key proves membership; a few fresh keys prove absence.
    for (const std::uint64_t k : live) {
      const Bytes kb = key_of(k);
      const VerifyOutcome vo = verify_proof(root, kb, t.prove(kb));
      ASSERT_EQ(vo.kind, VerifyOutcome::Kind::kFound) << "step " << step << " key " << k;
      ASSERT_EQ(vo.value, val(k));
    }
    for (int i = 0; i < 8; ++i) {
      const Bytes kb = key_of(next + 1000 + static_cast<std::uint64_t>(i));
      ASSERT_EQ(verify_proof(root, kb, t.prove(kb)).kind, VerifyOutcome::Kind::kAbsent);
    }
    t.debug_check_stats();
  }
}

TEST_P(PagedProofFuzz, SealedRegionEdgesStayProvable) {
  // Monotonic subspace churn with tiny pages: sealing reclaims whole
  // pages while neighbouring (unsealed) entries keep proving.  This is
  // the sealed-region *edge* case — the proof path touches branches
  // whose sibling refs are sealed stubs on pages that may since have
  // been recycled for new nodes.
  Rng rng(GetParam() * 7 + 1);
  SealableTrie t{cfg_of(PageStoreConfig::Backend::kFile, 1024, 8)};
  constexpr std::uint64_t kWindow = 12;
  std::uint64_t sealed_below = 0, next = 0;
  for (int step = 0; step < 250; ++step) {
    t.set(seq_key(5, next), val(next));
    ++next;
    while (next - sealed_below > kWindow) {
      t.seal(seq_key(5, sealed_below));
      ++sealed_below;
    }
    if (step % 25 != 0) continue;
    const Hash32 root = t.root_hash();
    // Unsealed window entries all prove; sealed ones all refuse.
    for (std::uint64_t k = sealed_below; k < next; ++k) {
      const Bytes kb = seq_key(5, k);
      const VerifyOutcome vo = verify_proof(root, kb, t.prove(kb));
      ASSERT_EQ(vo.kind, VerifyOutcome::Kind::kFound) << k;
    }
    if (sealed_below > 0) {
      const std::uint64_t pick = rng.uniform_int(sealed_below);
      EXPECT_THROW((void)t.prove(seq_key(5, pick)), SealedError);
    }
    t.debug_check_stats();
  }
  // Sealing freed real pages, not just slots.
  EXPECT_GT(t.page_stats().pages_freed, 0u);
}

TEST_P(PagedProofFuzz, SnapshotAndLiveDivergenceKeepsBothProvable) {
  Rng rng(GetParam() * 31 + 5);
  SealableTrie t{cfg_of(PageStoreConfig::Backend::kMemory, 1024)};
  for (std::uint64_t i = 0; i < 80; ++i) t.set(key_of(i), val(i));
  const Hash32 snap_root = t.root_hash();
  const TrieSnapshot snap = t.snapshot();

  // Diverge: overwrite half, add more, seal a third.
  for (std::uint64_t i = 0; i < 80; i += 2) t.set(key_of(i), val(i + 9000));
  for (std::uint64_t i = 80; i < 160; ++i) t.set(key_of(i), val(i));
  for (std::uint64_t i = 1; i < 80; i += 3) t.seal(key_of(i));
  const Hash32 live_root = t.root_hash();
  ASSERT_NE(snap_root, live_root);

  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t k = rng.uniform_int(160);
    const Bytes kb = key_of(k);
    // Snapshot: pre-divergence state, nothing sealed.
    const VerifyOutcome svo = verify_proof(snap_root, kb, snap.prove(kb));
    if (k < 80) {
      ASSERT_EQ(svo.kind, VerifyOutcome::Kind::kFound) << k;
      ASSERT_EQ(svo.value, val(k));
    } else {
      ASSERT_EQ(svo.kind, VerifyOutcome::Kind::kAbsent) << k;
    }
    // Live: post-divergence state, sealed paths refuse.
    if (k < 80 && k % 3 == 1) {
      EXPECT_THROW((void)t.prove(kb), SealedError);
      continue;
    }
    const VerifyOutcome lvo = verify_proof(live_root, kb, t.prove(kb));
    ASSERT_EQ(lvo.kind, VerifyOutcome::Kind::kFound) << k;
    ASSERT_EQ(lvo.value, k < 80 && k % 2 == 0 ? val(k + 9000) : val(k));
    // Cross-verification must fail closed: a live proof never verifies
    // as Found under the snapshot root for diverged keys.
    if (k < 80 && k % 2 == 0) {
      const VerifyOutcome cross = verify_proof(snap_root, kb, t.prove(kb));
      EXPECT_NE(cross.kind, VerifyOutcome::Kind::kFound) << k;
    }
  }
}

TEST_P(PagedProofFuzz, SerializedProofsRejectTruncationAndBitFlips) {
  Rng rng(GetParam() * 131 + 17);
  SealableTrie t{cfg_of(PageStoreConfig::Backend::kMemory, 1024)};
  for (std::uint64_t i = 0; i < 128; ++i) t.set(key_of(i), val(i));
  const Hash32 root = t.root_hash();

  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t k = rng.uniform_int(140);  // some absent
    const Bytes kb = key_of(k);
    const Proof proof = t.prove(kb);
    const Bytes wire = proof.serialize();
    const VerifyOutcome honest = verify_proof(root, kb, Proof::deserialize(wire));
    ASSERT_EQ(honest.kind,
              k < 128 ? VerifyOutcome::Kind::kFound : VerifyOutcome::Kind::kAbsent);

    // Truncation at a random point either fails to decode or decodes
    // to something that no longer verifies as the honest outcome.
    if (wire.size() > 1) {
      const std::size_t cut = 1 + rng.uniform_int(wire.size() - 1);
      const Bytes trunc(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
      try {
        const VerifyOutcome vo = verify_proof(root, kb, Proof::deserialize(trunc));
        EXPECT_NE(vo.kind, honest.kind) << "truncated proof accepted, cut=" << cut;
      } catch (const CodecError&) {
      }
    }

    // A single flipped byte must never verify as Found with the honest
    // value (flips in absence proofs may legally still prove absence —
    // e.g. a bit in an unused sibling hash — but can never conjure
    // membership).
    Bytes flipped = wire;
    const std::size_t at = rng.uniform_int(flipped.size());
    flipped[at] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    try {
      const VerifyOutcome vo = verify_proof(root, kb, Proof::deserialize(flipped));
      if (vo.kind == VerifyOutcome::Kind::kFound) {
        EXPECT_NE(vo.value, honest.value) << "byte flip at " << at << " undetected";
      }
      if (honest.kind == VerifyOutcome::Kind::kFound) {
        EXPECT_NE(vo.kind, VerifyOutcome::Kind::kFound)
            << "byte flip at " << at << " kept membership";
      }
    } catch (const CodecError&) {
    }
  }
}

TEST_P(PagedProofFuzz, BackendsAndPageSizesAgreeByteForByte) {
  // The same workload on four configurations: roots and every
  // serialized proof must be identical — node ids and page layout
  // never leak into commitments.
  Rng rng(GetParam() * 997 + 3);
  std::vector<SealableTrie> tries;
  tries.emplace_back(cfg_of(PageStoreConfig::Backend::kMemory, 1024));
  tries.emplace_back(cfg_of(PageStoreConfig::Backend::kMemory, 8192));
  tries.emplace_back(cfg_of(PageStoreConfig::Backend::kFile, 1024, 8));
  tries.emplace_back(cfg_of(PageStoreConfig::Backend::kFile, 2048, 4));

  std::uint64_t next = 0;
  std::vector<std::uint64_t> live;
  for (int step = 0; step < 120; ++step) {
    const bool insert = live.size() < 4 || rng.chance(0.7);
    if (insert) {
      for (auto& t : tries) t.set(seq_key(2, next), val(next));
      live.push_back(next++);
    } else {
      // Seal a uniformly random non-maximum entry.
      const std::size_t pick = rng.uniform_int(live.size() - 1);
      for (auto& t : tries) t.seal(seq_key(2, live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 20 != 0) continue;
    const Hash32 root = tries[0].root_hash();
    for (std::size_t c = 1; c < tries.size(); ++c)
      ASSERT_EQ(tries[c].root_hash(), root) << "config " << c << " step " << step;
    for (const std::uint64_t k : live) {
      const Bytes kb = seq_key(2, k);
      const Bytes wire = tries[0].prove(kb).serialize();
      for (std::size_t c = 1; c < tries.size(); ++c)
        ASSERT_EQ(tries[c].prove(kb).serialize(), wire)
            << "config " << c << " step " << step << " key " << k;
    }
  }
  for (auto& t : tries) t.debug_check_stats();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagedProofFuzz, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace bmg::trie
