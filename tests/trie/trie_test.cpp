#include "trie/trie.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace bmg::trie {
namespace {

using crypto::Sha256;

Hash32 val(std::string_view s) { return Sha256::digest(bytes_of(s)); }

Bytes key_of(std::string_view s) {
  // Hash keys to guarantee prefix freedom, as the IBC layer does.
  const Hash32 h = Sha256::digest(bytes_of(s));
  return Bytes(h.bytes.begin(), h.bytes.end());
}

TEST(Trie, EmptyTrieHasZeroRoot) {
  const SealableTrie t;
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.root_hash().is_zero());
}

TEST(Trie, SetThenGet) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  Hash32 out;
  EXPECT_EQ(t.get(key_of("a"), &out), SealableTrie::Lookup::kFound);
  EXPECT_EQ(out, val("1"));
  EXPECT_EQ(t.get(key_of("b")), SealableTrie::Lookup::kAbsent);
  EXPECT_FALSE(t.root_hash().is_zero());
}

TEST(Trie, UpdateExistingKey) {
  SealableTrie t;
  t.set(key_of("k"), val("v1"));
  const Hash32 r1 = t.root_hash();
  t.set(key_of("k"), val("v2"));
  EXPECT_NE(t.root_hash(), r1);
  Hash32 out;
  ASSERT_EQ(t.get(key_of("k"), &out), SealableTrie::Lookup::kFound);
  EXPECT_EQ(out, val("v2"));
  // Setting the same value back restores the old root.
  t.set(key_of("k"), val("v1"));
  EXPECT_EQ(t.root_hash(), r1);
}

TEST(Trie, ManyKeysAllRetrievable) {
  SealableTrie t;
  for (int i = 0; i < 500; ++i)
    t.set(key_of("key-" + std::to_string(i)), val("val-" + std::to_string(i)));
  for (int i = 0; i < 500; ++i) {
    Hash32 out;
    ASSERT_EQ(t.get(key_of("key-" + std::to_string(i)), &out),
              SealableTrie::Lookup::kFound)
        << i;
    EXPECT_EQ(out, val("val-" + std::to_string(i)));
  }
  EXPECT_EQ(t.get(key_of("key-500")), SealableTrie::Lookup::kAbsent);
}

TEST(Trie, RootIsInsertOrderIndependent) {
  std::vector<int> order(64);
  for (int i = 0; i < 64; ++i) order[static_cast<std::size_t>(i)] = i;

  SealableTrie forward;
  for (int i : order) forward.set(key_of(std::to_string(i)), val(std::to_string(i)));

  std::reverse(order.begin(), order.end());
  SealableTrie backward;
  for (int i : order) backward.set(key_of(std::to_string(i)), val(std::to_string(i)));

  Rng rng(99);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.uniform_int(i)]);
  SealableTrie shuffled;
  for (int i : order) shuffled.set(key_of(std::to_string(i)), val(std::to_string(i)));

  EXPECT_EQ(forward.root_hash(), backward.root_hash());
  EXPECT_EQ(forward.root_hash(), shuffled.root_hash());
}

TEST(Trie, PrefixViolationThrows) {
  SealableTrie t;
  const Bytes shorter = {0x12, 0x34};
  const Bytes longer = {0x12, 0x34, 0x56};
  t.set(shorter, val("a"));
  EXPECT_THROW(t.set(longer, val("b")), PrefixError);

  SealableTrie t2;
  t2.set(longer, val("b"));
  EXPECT_THROW(t2.set(shorter, val("a")), PrefixError);
}

TEST(Trie, DistinctRootsForDistinctContents) {
  SealableTrie a, b;
  a.set(key_of("x"), val("1"));
  b.set(key_of("x"), val("2"));
  EXPECT_NE(a.root_hash(), b.root_hash());

  SealableTrie c;
  c.set(key_of("y"), val("1"));
  EXPECT_NE(a.root_hash(), c.root_hash());
}

// --- Proofs -----------------------------------------------------------

TEST(TrieProof, MembershipVerifies) {
  SealableTrie t;
  for (int i = 0; i < 50; ++i) t.set(key_of(std::to_string(i)), val(std::to_string(i)));
  for (int i = 0; i < 50; ++i) {
    const Bytes k = key_of(std::to_string(i));
    const Proof p = t.prove(k);
    const VerifyOutcome out = verify_proof(t.root_hash(), k, p);
    ASSERT_EQ(out.kind, VerifyOutcome::Kind::kFound) << i;
    EXPECT_EQ(out.value, val(std::to_string(i)));
  }
}

TEST(TrieProof, NonMembershipVerifies) {
  SealableTrie t;
  for (int i = 0; i < 50; ++i) t.set(key_of(std::to_string(i)), val(std::to_string(i)));
  for (int i = 50; i < 80; ++i) {
    const Bytes k = key_of(std::to_string(i));
    const Proof p = t.prove(k);
    EXPECT_EQ(verify_proof(t.root_hash(), k, p).kind, VerifyOutcome::Kind::kAbsent) << i;
  }
}

TEST(TrieProof, EmptyTrieProvesAbsence) {
  const SealableTrie t;
  const Proof p = t.prove(key_of("anything"));
  EXPECT_TRUE(p.nodes.empty());
  EXPECT_EQ(verify_proof(t.root_hash(), key_of("anything"), p).kind,
            VerifyOutcome::Kind::kAbsent);
}

TEST(TrieProof, WrongRootRejected) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  const Proof p = t.prove(key_of("a"));
  Hash32 wrong = t.root_hash();
  wrong.bytes[0] ^= 1;
  EXPECT_EQ(verify_proof(wrong, key_of("a"), p).kind, VerifyOutcome::Kind::kInvalid);
}

TEST(TrieProof, ProofForOtherKeyRejected) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  t.set(key_of("b"), val("2"));
  const Proof pa = t.prove(key_of("a"));
  // Verifying a's proof against b's key must not report b present.
  const VerifyOutcome out = verify_proof(t.root_hash(), key_of("b"), pa);
  EXPECT_NE(out.kind, VerifyOutcome::Kind::kFound);
}

TEST(TrieProof, TamperedValueRejected) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  Proof p = t.prove(key_of("a"));
  auto& leaf = std::get<ProofLeaf>(p.nodes.back());
  leaf.value = val("2");
  EXPECT_EQ(verify_proof(t.root_hash(), key_of("a"), p).kind,
            VerifyOutcome::Kind::kInvalid);
}

TEST(TrieProof, TruncatedProofRejected) {
  SealableTrie t;
  for (int i = 0; i < 64; ++i) t.set(key_of(std::to_string(i)), val("x"));
  Proof p = t.prove(key_of("5"));
  ASSERT_GT(p.nodes.size(), 1u);
  p.nodes.pop_back();
  EXPECT_EQ(verify_proof(t.root_hash(), key_of("5"), p).kind,
            VerifyOutcome::Kind::kInvalid);
}

TEST(TrieProof, SerializationRoundTrip) {
  SealableTrie t;
  for (int i = 0; i < 64; ++i) t.set(key_of(std::to_string(i)), val(std::to_string(i)));
  const Proof p = t.prove(key_of("7"));
  const Bytes wire = p.serialize();
  EXPECT_EQ(wire.size(), p.byte_size());
  const Proof q = Proof::deserialize(wire);
  EXPECT_EQ(verify_proof(t.root_hash(), key_of("7"), q).kind,
            VerifyOutcome::Kind::kFound);
}

TEST(TrieProof, DeserializeRejectsGarbage) {
  EXPECT_THROW((void)Proof::deserialize(bytes_of("nonsense")), CodecError);
  Encoder e;
  e.u32(1).u8(99);  // unknown tag
  EXPECT_THROW((void)Proof::deserialize(e.out()), CodecError);
}

// --- Sealing ----------------------------------------------------------

TEST(TrieSeal, SealPreservesRoot) {
  SealableTrie t;
  for (int i = 0; i < 20; ++i) t.set(key_of(std::to_string(i)), val(std::to_string(i)));
  const Hash32 root = t.root_hash();
  for (int i = 0; i < 10; ++i) t.seal(key_of(std::to_string(i)));
  EXPECT_EQ(t.root_hash(), root);
}

TEST(TrieSeal, SealedKeyReportsSealed) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  t.set(key_of("b"), val("2"));
  t.seal(key_of("a"));
  EXPECT_EQ(t.get(key_of("a")), SealableTrie::Lookup::kSealed);
  EXPECT_EQ(t.get(key_of("b")), SealableTrie::Lookup::kFound);
}

TEST(TrieSeal, DoubleDeliveryGuard) {
  // The Guest Contract's pattern: record packet, seal it; a second
  // delivery attempt must not see "absent".
  SealableTrie t;
  const Bytes packet_hash = key_of("packet-1");
  ASSERT_EQ(t.get(packet_hash), SealableTrie::Lookup::kAbsent);  // first delivery ok
  t.set(packet_hash, val("receipt"));
  t.seal(packet_hash);
  EXPECT_NE(t.get(packet_hash), SealableTrie::Lookup::kAbsent);  // replay blocked
}

TEST(TrieSeal, SealAbsentKeyThrows) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  EXPECT_THROW(t.seal(key_of("zz")), NotFoundError);
}

TEST(TrieSeal, SealOnEmptyTrieThrows) {
  SealableTrie t;
  EXPECT_THROW(t.seal(key_of("a")), NotFoundError);
}

TEST(TrieSeal, DoubleSealThrows) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  t.set(key_of("b"), val("2"));
  t.seal(key_of("a"));
  EXPECT_THROW(t.seal(key_of("a")), SealedError);
}

TEST(TrieSeal, SetIntoSealedRegionThrows) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  t.seal(key_of("a"));
  EXPECT_THROW(t.set(key_of("a"), val("2")), SealedError);
}

TEST(TrieSeal, ProveThroughSealedRegionThrows) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  t.seal(key_of("a"));
  EXPECT_THROW((void)t.prove(key_of("a")), SealedError);
}

TEST(TrieSeal, SealingAllKeysReclaimsAllNodes) {
  SealableTrie t;
  const int n = 100;
  for (int i = 0; i < n; ++i) t.set(key_of(std::to_string(i)), val("x"));
  const Hash32 root = t.root_hash();
  EXPECT_GT(t.stats().node_count(), 0u);
  for (int i = 0; i < n; ++i) t.seal(key_of(std::to_string(i)));
  EXPECT_EQ(t.stats().node_count(), 0u);  // everything reclaimed
  EXPECT_EQ(t.root_hash(), root);         // commitment intact
}

TEST(TrieSeal, UnsealedSiblingsStillProvable) {
  SealableTrie t;
  for (int i = 0; i < 40; ++i) t.set(key_of(std::to_string(i)), val(std::to_string(i)));
  for (int i = 0; i < 40; i += 2) t.seal(key_of(std::to_string(i)));
  for (int i = 1; i < 40; i += 2) {
    const Bytes k = key_of(std::to_string(i));
    const Proof p = t.prove(k);
    const VerifyOutcome out = verify_proof(t.root_hash(), k, p);
    ASSERT_EQ(out.kind, VerifyOutcome::Kind::kFound) << i;
    EXPECT_EQ(out.value, val(std::to_string(i)));
  }
}

TEST(TrieSeal, StorageShrinksAfterSealing) {
  SealableTrie t;
  const int n = 200;
  for (int i = 0; i < n; ++i) t.set(key_of(std::to_string(i)), val("v"));
  const std::size_t before = t.stats().byte_size;
  for (int i = 0; i < n / 2; ++i) t.seal(key_of(std::to_string(i)));
  const std::size_t after = t.stats().byte_size;
  EXPECT_LT(after, before);
}

Bytes seq_key(std::uint64_t channel_tag, std::uint64_t seq) {
  // Fixed-width monotonic keys, as the guest layer uses for sealable
  // entries: [8-byte subspace tag][8-byte big-endian sequence].
  Encoder e;
  e.u64(channel_tag).u64(seq);
  return e.take();
}

TEST(TrieSeal, BoundedStateUnderChurn) {
  // The paper's headline storage property: with insert+seal churn the
  // live state stays bounded instead of growing with history.  Keys
  // are monotonic and the newest entry is never sealed, so inserts
  // never route into sealed regions (interval property).
  SealableTrie t;
  std::size_t peak = 0;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    t.set(seq_key(7, i), val("r"));
    if (i >= 16) t.seal(seq_key(7, i - 16));
    peak = std::max(peak, t.stats().node_count());
  }
  // Live nodes stay near the in-flight window, far below total inserts.
  EXPECT_LT(peak, 200u);
}

TEST(TrieSeal, MonotonicKeysWithUnsealedMaxNeverBlock) {
  // Interval property: if the maximum key of a subspace is unsealed,
  // inserting any larger key cannot cross a sealed ref — even when
  // every older entry has been sealed.
  SealableTrie t;
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_NO_THROW(t.set(seq_key(3, i), val("x"))) << i;
    if (i >= 1) {
      ASSERT_NO_THROW(t.seal(seq_key(3, i - 1))) << i;
    }
  }
  // All but the newest are sealed, newest is retrievable.
  EXPECT_EQ(t.get(seq_key(3, 299)), SealableTrie::Lookup::kFound);
  EXPECT_EQ(t.get(seq_key(3, 150)), SealableTrie::Lookup::kSealed);
}

TEST(TrieSeal, PerSubspaceSealingDoesNotBlockOtherSubspaces) {
  // Two "channels" interleaved: fully sealing channel A's old entries
  // must never block channel B, as long as each keeps its newest
  // entry unsealed.
  SealableTrie t;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_NO_THROW(t.set(seq_key(1, i), val("a")));
    ASSERT_NO_THROW(t.set(seq_key(2, i), val("b")));
    if (i >= 1) {
      ASSERT_NO_THROW(t.seal(seq_key(1, i - 1)));
      ASSERT_NO_THROW(t.seal(seq_key(2, i - 1)));
    }
  }
  EXPECT_EQ(t.get(seq_key(1, 99)), SealableTrie::Lookup::kFound);
  EXPECT_EQ(t.get(seq_key(2, 99)), SealableTrie::Lookup::kFound);
}

TEST(TrieSeal, SealingEverythingSealsRoot) {
  // Sealing literally every entry seals the root itself; afterwards
  // nothing can be inserted.  This is why the guest layer keeps the
  // newest entry per subspace unsealed.
  SealableTrie t;
  for (std::uint64_t i = 0; i < 8; ++i) t.set(seq_key(1, i), val("x"));
  for (std::uint64_t i = 0; i < 8; ++i) t.seal(seq_key(1, i));
  EXPECT_EQ(t.stats().node_count(), 0u);
  EXPECT_THROW(t.set(seq_key(1, 8), val("y")), SealedError);
}

// --- Stats integrity --------------------------------------------------

TEST(TrieStatsCheck, SealThenReinsertSiblingPrefixesKeepsSealedRefsExact) {
  // Regression: repeated seal-then-reinsert of sibling prefixes.  A
  // sealed sibling collapses branches into extensions (and back) as
  // neighbours are re-inserted; every transition must carry the sealed
  // ref count along exactly, or storage accounting drifts over time.
  SealableTrie t;
  for (int round = 0; round < 12; ++round) {
    // Interleaved subspaces so sealed refs sit next to live siblings.
    for (std::uint64_t i = 0; i < 24; ++i)
      t.set(seq_key(1 + (i % 3), 100 * static_cast<std::uint64_t>(round) + i),
            val("r" + std::to_string(round)));
    t.commit();
    ASSERT_NO_THROW(t.debug_check_stats()) << "round " << round << " post-insert";
    // Seal all but the newest entry of each subspace (interval rule).
    for (std::uint64_t i = 0; i < 21; ++i)
      t.seal(seq_key(1 + (i % 3), 100 * static_cast<std::uint64_t>(round) + i));
    t.commit();
    ASSERT_NO_THROW(t.debug_check_stats()) << "round " << round << " post-seal";
  }
  // Sealed refs from every round are still accounted for (none were
  // double-counted or lost across branch/extension rewrites).
  EXPECT_GT(t.stats().sealed_refs, 0u);
}

TEST(TrieStatsCheck, RandomChurnNeverDriftsCounters) {
  Rng rng(4242);
  SealableTrie t;
  std::vector<std::uint64_t> live;
  std::uint64_t next = 0;
  for (int step = 0; step < 400; ++step) {
    if (live.size() < 2 || rng.chance(0.6)) {
      t.set(seq_key(9, next), val(std::to_string(next)));
      live.push_back(next++);
    } else {
      // Seal any entry except the subspace maximum.
      const std::size_t pick = rng.uniform_int(live.size() - 1);
      t.seal(seq_key(9, live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 37 == 0) {
      t.commit();
      ASSERT_NO_THROW(t.debug_check_stats()) << "step " << step;
    }
  }
  t.commit();
  ASSERT_NO_THROW(t.debug_check_stats());
}

// --- Randomized property sweep ----------------------------------------

class TrieRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieRandomized, ProveVerifyAndSealAgree) {
  Rng rng(GetParam());
  SealableTrie t;
  std::vector<std::string> keys;
  const int n = 150;
  for (int i = 0; i < n; ++i) {
    keys.push_back("k" + std::to_string(rng.next()));
    t.set(key_of(keys.back()), val(keys.back()));
  }
  const Hash32 root = t.root_hash();

  // Seal a random subset.
  std::vector<bool> sealed(keys.size(), false);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (rng.chance(0.4)) {
      t.seal(key_of(keys[i]));
      sealed[i] = true;
    }
  }
  EXPECT_EQ(t.root_hash(), root);

  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Bytes k = key_of(keys[i]);
    if (sealed[i]) {
      EXPECT_EQ(t.get(k), SealableTrie::Lookup::kSealed) << keys[i];
    } else {
      Hash32 out;
      ASSERT_EQ(t.get(k, &out), SealableTrie::Lookup::kFound) << keys[i];
      EXPECT_EQ(out, val(keys[i]));
      const VerifyOutcome res = verify_proof(root, k, t.prove(k));
      ASSERT_EQ(res.kind, VerifyOutcome::Kind::kFound) << keys[i];
    }
  }

  // Absent keys remain provably absent unless blocked by sealing.
  for (int i = 0; i < 30; ++i) {
    const Bytes k = key_of("absent" + std::to_string(rng.next()));
    if (t.get(k) != SealableTrie::Lookup::kAbsent) continue;
    try {
      const Proof p = t.prove(k);
      EXPECT_EQ(verify_proof(root, k, p).kind, VerifyOutcome::Kind::kAbsent);
    } catch (const SealedError&) {
      // Allowed: the absent key's path may enter a sealed region.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace bmg::trie
