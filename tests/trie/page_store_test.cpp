#include "trie/page_store.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace bmg::trie {
namespace {

PageStoreConfig mem_cfg(std::size_t page_bytes = 256) {
  PageStoreConfig cfg;
  cfg.backend = PageStoreConfig::Backend::kMemory;
  cfg.page_bytes = page_bytes;
  return cfg;
}

PageStoreConfig file_cfg(std::size_t page_bytes = 256, std::size_t resident = 4) {
  PageStoreConfig cfg;
  cfg.backend = PageStoreConfig::Backend::kFile;
  cfg.page_bytes = page_bytes;
  cfg.max_resident_pages = resident;
  return cfg;
}

void fill_page(std::uint8_t* p, std::size_t n, std::uint8_t tag) {
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(tag ^ (i & 0xFF));
}

bool check_page(const std::uint8_t* p, std::size_t n, std::uint8_t tag) {
  for (std::size_t i = 0; i < n; ++i)
    if (p[i] != static_cast<std::uint8_t>(tag ^ (i & 0xFF))) return false;
  return true;
}

TEST(PageStore, RejectsTinyPages) {
  PageStoreConfig cfg = mem_cfg(64);
  EXPECT_THROW((void)PageStore::create(cfg), std::invalid_argument);
}

TEST(PageStore, AllocZeroesAndReusesIds) {
  for (const auto& cfg : {mem_cfg(), file_cfg()}) {
    const auto store = PageStore::create(cfg);
    const PageId a = store->alloc();
    {
      PagePin pin(*store, a);
      fill_page(pin.data(), store->page_bytes(), 0x5A);
      pin.mark_dirty();
    }
    store->free_page(a);
    const PageId b = store->alloc();
    // Freed extents are recycled, and recycled pages come back zeroed.
    EXPECT_EQ(b, a);
    PagePin pin(*store, b);
    for (std::size_t i = 0; i < store->page_bytes(); ++i)
      ASSERT_EQ(pin.data()[i], 0) << "byte " << i;
  }
}

TEST(PageStore, StatsTrackLiveAndFreed) {
  const auto store = PageStore::create(mem_cfg());
  const PageId a = store->alloc();
  const PageId b = store->alloc();
  (void)b;
  EXPECT_EQ(store->stats().pages_live, 2u);
  EXPECT_EQ(store->stats().pages_allocated, 2u);
  store->free_page(a);
  EXPECT_EQ(store->stats().pages_live, 1u);
  EXPECT_EQ(store->stats().pages_freed, 1u);
  EXPECT_EQ(store->stats().resident_bytes(), store->page_bytes());
}

TEST(PageStore, FileBackedSurvivesEviction) {
  // More pages than resident frames: every page's contents must
  // round-trip through the spill file intact.
  const auto store = PageStore::create(file_cfg(256, 4));
  constexpr int kPages = 32;
  std::vector<PageId> ids;
  for (int i = 0; i < kPages; ++i) {
    const PageId id = store->alloc();
    PagePin pin(*store, id);
    fill_page(pin.data(), store->page_bytes(), static_cast<std::uint8_t>(i));
    pin.mark_dirty();
    ids.push_back(id);
  }
  const PageStoreStats mid = store->stats();
  EXPECT_LE(mid.resident_pages, 4u);
  EXPECT_GT(mid.evictions, 0u);
  EXPECT_GT(mid.spill_bytes, 0u);
  for (int i = 0; i < kPages; ++i) {
    PagePin pin(*store, ids[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(check_page(pin.data(), store->page_bytes(),
                           static_cast<std::uint8_t>(i)))
        << "page " << i;
  }
  EXPECT_GT(store->stats().faults, 0u);
}

TEST(PageStore, PinnedFramesAreNotEvicted) {
  const auto store = PageStore::create(file_cfg(256, 2));
  const PageId hot = store->alloc();
  PagePin hot_pin(*store, hot);
  fill_page(hot_pin.data(), store->page_bytes(), 0xAB);
  hot_pin.mark_dirty();
  // Blow well past capacity while `hot` stays pinned.
  for (int i = 0; i < 16; ++i) {
    const PageId id = store->alloc();
    PagePin pin(*store, id);
    pin.mark_dirty();
  }
  // The pinned frame's pointer stayed valid throughout.
  EXPECT_TRUE(check_page(hot_pin.data(), store->page_bytes(), 0xAB));
  EXPECT_GE(store->stats().pinned_pages, 1u);
}

TEST(PageStore, FreeWhilePinnedDefersDropUntilUnpin) {
  const auto store = PageStore::create(file_cfg(256, 4));
  const PageId id = store->alloc();
  {
    PagePin pin(*store, id);
    fill_page(pin.data(), store->page_bytes(), 0xCD);
    store->free_page(id);
    // The frame must stay addressable until the pin is released.
    EXPECT_TRUE(check_page(pin.data(), store->page_bytes(), 0xCD));
    EXPECT_EQ(store->stats().pages_freed, 1u);
  }
  // After the last unpin the id is recyclable and comes back zeroed.
  const PageId again = store->alloc();
  EXPECT_EQ(again, id);
  PagePin pin(*store, again);
  for (std::size_t i = 0; i < store->page_bytes(); ++i)
    ASSERT_EQ(pin.data()[i], 0) << "byte " << i;
}

TEST(PageStore, HolePunchCountsFreedSpilledPages) {
  const auto store = PageStore::create(file_cfg(256, 2));
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    const PageId id = store->alloc();
    PagePin pin(*store, id);
    fill_page(pin.data(), store->page_bytes(), static_cast<std::uint8_t>(i));
    pin.mark_dirty();
    ids.push_back(id);
  }
  // The first pages were evicted (written to the file); freeing them
  // returns their extents.
  for (PageId id : ids) store->free_page(id);
  const PageStoreStats s = store->stats();
  EXPECT_EQ(s.pages_live, 0u);
#ifdef FALLOC_FL_PUNCH_HOLE
  EXPECT_GT(s.holes_punched, 0u);
#endif
}

TEST(PageStore, PagePinMoveTransfersOwnership) {
  const auto store = PageStore::create(mem_cfg());
  const PageId id = store->alloc();
  PagePin a(*store, id);
  std::uint8_t* data = a.data();
  PagePin b(std::move(a));
  EXPECT_EQ(b.data(), data);
  b.reset();
  EXPECT_EQ(b.data(), nullptr);
}

}  // namespace
}  // namespace bmg::trie
