#include "trie/nibbles.hpp"

#include <gtest/gtest.h>

namespace bmg::trie {
namespace {

TEST(Nibbles, ExpandsHighNibbleFirst) {
  const Bytes key = {0xAB, 0x01};
  EXPECT_EQ(to_nibbles(key), (Nibbles{0xA, 0xB, 0x0, 0x1}));
}

TEST(Nibbles, EmptyKey) { EXPECT_TRUE(to_nibbles({}).empty()); }

TEST(Nibbles, CommonPrefix) {
  const Nibbles a = {1, 2, 3, 4};
  const Nibbles b = {1, 2, 9, 4};
  EXPECT_EQ(common_prefix(a, 0, b, 0), 2u);
  EXPECT_EQ(common_prefix(a, 2, b, 2), 0u);
  EXPECT_EQ(common_prefix(a, 3, b, 3), 1u);
  EXPECT_EQ(common_prefix(a, 0, a, 0), 4u);
}

TEST(Nibbles, CommonPrefixRespectsOffsets) {
  const Nibbles a = {7, 1, 2};
  const Nibbles b = {1, 2, 5};
  EXPECT_EQ(common_prefix(a, 1, b, 0), 2u);
}

TEST(Nibbles, SliceBasic) {
  const Nibbles n = {1, 2, 3, 4};
  EXPECT_EQ(slice(n, 1, 2), (Nibbles{2, 3}));
  EXPECT_TRUE(slice(n, 4, 0).empty());
  EXPECT_THROW((void)slice(n, 3, 2), std::out_of_range);
}

TEST(Nibbles, EncodeDecodeRoundTrip) {
  const Nibbles n = {0, 15, 7, 3};
  Encoder e;
  encode_nibbles(e, n);
  Decoder d(e.out());
  EXPECT_EQ(decode_nibbles(d), n);
  EXPECT_TRUE(d.done());
}

TEST(Nibbles, DecodeRejectsOutOfRangeNibble) {
  Encoder e;
  e.u16(1).u8(16);
  Decoder d(e.out());
  EXPECT_THROW((void)decode_nibbles(d), CodecError);
}

}  // namespace
}  // namespace bmg::trie
