// Model-based randomized testing: the sealable trie against a simple
// reference model (map + sealed set), over long random operation
// sequences with monotonic per-subspace keys.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/codec.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "trie/trie.hpp"

namespace bmg::trie {
namespace {

Bytes seq_key(std::uint64_t space, std::uint64_t seq) {
  Encoder e;
  e.u64(space).u64(seq);
  return e.take();
}

Hash32 val(std::uint64_t v) {
  Encoder e;
  e.u64(v);
  return crypto::Sha256::digest(e.out());
}

/// Reference model of one subspace: values per sequence, contiguous
/// sealed prefix.
struct SpaceModel {
  std::map<std::uint64_t, std::uint64_t> values;  // seq -> value id
  std::uint64_t next_seq = 1;
  std::uint64_t sealed_upto = 0;  // 1..sealed_upto sealed
  std::set<std::uint64_t> present_contig;  // helper: watermark

  [[nodiscard]] std::uint64_t watermark() const {
    std::uint64_t w = 0;
    while (values.count(w + 1) > 0) ++w;
    return w;
  }
};

class TrieModelTest : public ::testing::TestWithParam<std::uint64_t> {};

void run_long_random_model(std::uint64_t seed, SealableTrie& trie) {
  Rng rng(seed);
  std::map<std::uint64_t, SpaceModel> model;
  const std::uint64_t kSpaces = 3;

  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t space = rng.uniform_int(kSpaces);
    SpaceModel& m = model[space];
    const double action = rng.uniform();

    if (action < 0.55) {
      // Insert the next sequence (dense per subspace, like send_packet)
      // or occasionally a future one (out-of-order receipt).
      std::uint64_t seq = m.next_seq;
      if (rng.chance(0.2)) seq += rng.uniform_int(3);  // skip ahead
      if (m.values.count(seq) > 0) continue;
      const std::uint64_t v = rng.next();
      trie.set(seq_key(space, seq), val(v));
      m.values[seq] = v;
      m.next_seq = std::max(m.next_seq, seq + 1);
    } else if (action < 0.75) {
      // Seal the next sealable sequence.  Safe-sealing rule: seal s
      // only when 1..s and s+1 are all present, i.e. s < watermark.
      const std::uint64_t s = m.sealed_upto + 1;
      if (s >= m.watermark()) continue;  // keep the newest entry live
      trie.seal(seq_key(space, s));
      m.sealed_upto = s;
    } else if (action < 0.9) {
      // Update an unsealed existing key.
      if (m.values.empty()) continue;
      auto it = m.values.upper_bound(m.sealed_upto);
      if (it == m.values.end()) continue;
      const std::uint64_t v = rng.next();
      trie.set(seq_key(space, it->first), val(v));
      it->second = v;
    } else {
      // Random lookups agree with the model.
      const std::uint64_t seq = 1 + rng.uniform_int(m.next_seq + 2);
      Hash32 out;
      const auto res = trie.get(seq_key(space, seq), &out);
      if (seq <= m.sealed_upto && m.values.count(seq)) {
        EXPECT_EQ(res, SealableTrie::Lookup::kSealed);
      } else if (m.values.count(seq)) {
        ASSERT_EQ(res, SealableTrie::Lookup::kFound);
        EXPECT_EQ(out, val(m.values.at(seq)));
      } else {
        // Absent keys may sit behind sealed subtrees only if <= sealed_upto.
        if (res == SealableTrie::Lookup::kSealed) {
          EXPECT_LE(seq, m.sealed_upto + 1);
        } else {
          EXPECT_EQ(res, SealableTrie::Lookup::kAbsent);
        }
      }
    }
  }

  // The incrementally maintained stats must agree with a recount from
  // the live nodes after the full random run.
  ASSERT_NO_THROW(trie.debug_check_stats());

  // Final sweep: every model entry is either retrievable or sealed,
  // and all unsealed entries are provable against the root.
  const Hash32 root = trie.root_hash();
  for (const auto& [space, m] : model) {
    for (const auto& [seq, v] : m.values) {
      const Bytes key = seq_key(space, seq);
      if (seq <= m.sealed_upto) {
        EXPECT_EQ(trie.get(key), SealableTrie::Lookup::kSealed);
      } else {
        const Proof proof = trie.prove(key);
        const VerifyOutcome out = verify_proof(root, key, proof);
        ASSERT_EQ(out.kind, VerifyOutcome::Kind::kFound);
        EXPECT_EQ(out.value, val(v));
      }
    }
  }
}

TEST_P(TrieModelTest, LongRandomRunAgreesWithModel) {
  SealableTrie trie;
  run_long_random_model(GetParam(), trie);
}

TEST_P(TrieModelTest, LongRandomRunAgreesWithModelFileBackedTinyPages) {
  // Same model sweep with 1 KiB pages and an 8-frame resident set:
  // every spine walk churns the LRU, and page splits/evictions happen
  // constantly.  Behaviour (and every root) must be identical to the
  // in-RAM run by construction.
  PageStoreConfig cfg;
  cfg.backend = PageStoreConfig::Backend::kFile;
  cfg.page_bytes = 1024;
  cfg.max_resident_pages = 8;
  SealableTrie trie{cfg};
  run_long_random_model(GetParam(), trie);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieModelTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

/// The deferred-commit trie against an always-eager reference: a
/// mirror trie whose root is recomputed after every single operation.
/// Both see the identical op sequence — sets, updates, seals — with
/// commits injected at random points on the deferred side only.  The
/// roots must be bit-identical at every comparison point.
class DeferredCommitTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeferredCommitTest, RootsMatchEagerReferenceAcrossRandomOps) {
  Rng rng(GetParam());
  SealableTrie deferred;
  SealableTrie eager;
  std::map<std::uint64_t, SpaceModel> model;
  const std::uint64_t kSpaces = 4;

  const auto eager_root = [&eager] {
    // Committing after every op is exactly the seed's eager behaviour.
    const Hash32 r = eager.root_hash();
    EXPECT_FALSE(eager.has_uncommitted());
    return r;
  };

  for (int step = 0; step < 2500; ++step) {
    const std::uint64_t space = rng.uniform_int(kSpaces);
    SpaceModel& m = model[space];
    const double action = rng.uniform();

    if (action < 0.5) {
      std::uint64_t seq = m.next_seq;
      if (rng.chance(0.25)) seq += rng.uniform_int(4);
      if (m.values.count(seq) > 0) continue;
      const std::uint64_t v = rng.next();
      deferred.set(seq_key(space, seq), val(v));
      eager.set(seq_key(space, seq), val(v));
      eager_root();
      m.values[seq] = v;
      m.next_seq = std::max(m.next_seq, seq + 1);
    } else if (action < 0.7) {
      // Interleaved seals: the deferred trie may seal entries whose
      // spine is still dirty from uncommitted sets.
      const std::uint64_t s = m.sealed_upto + 1;
      if (s >= m.watermark()) continue;
      deferred.seal(seq_key(space, s));
      eager.seal(seq_key(space, s));
      eager_root();
      m.sealed_upto = s;
    } else if (action < 0.85) {
      if (m.values.empty()) continue;
      auto it = m.values.upper_bound(m.sealed_upto);
      if (it == m.values.end()) continue;
      const std::uint64_t v = rng.next();
      deferred.set(seq_key(space, it->first), val(v));
      eager.set(seq_key(space, it->first), val(v));
      eager_root();
      it->second = v;
    } else if (action < 0.95) {
      // Commit the deferred trie at a random point mid-sequence.
      deferred.commit();
      EXPECT_FALSE(deferred.has_uncommitted());
      ASSERT_EQ(deferred.root_hash(), eager_root()) << "at step " << step;
    } else {
      // Stats stay consistent on both tries regardless of commits.
      ASSERT_NO_THROW(deferred.debug_check_stats()) << "at step " << step;
      ASSERT_NO_THROW(eager.debug_check_stats()) << "at step " << step;
    }
  }

  // Final comparison: roots bit-identical, proofs interchangeable.
  const Hash32 root = deferred.root_hash();
  ASSERT_EQ(root, eager_root());
  ASSERT_NO_THROW(deferred.debug_check_stats());
  EXPECT_EQ(deferred.stats().byte_size, eager.stats().byte_size);
  EXPECT_EQ(deferred.stats().sealed_refs, eager.stats().sealed_refs);
  for (const auto& [space, m] : model) {
    for (const auto& [seq, v] : m.values) {
      if (seq <= m.sealed_upto) continue;
      const Bytes key = seq_key(space, seq);
      const Proof proof = deferred.prove(key);
      const VerifyOutcome out = verify_proof(eager.root_hash(), key, proof);
      ASSERT_EQ(out.kind, VerifyOutcome::Kind::kFound);
      EXPECT_EQ(out.value, val(v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeferredCommitTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace bmg::trie
