#include "trie/snapshot.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "crypto/sha256.hpp"
#include "trie/trie.hpp"

namespace bmg::trie {
namespace {

using crypto::Sha256;

Hash32 val(std::string_view s) { return Sha256::digest(bytes_of(s)); }

Bytes key_of(std::string_view s) {
  const Hash32 h = Sha256::digest(bytes_of(s));
  return Bytes(h.bytes.begin(), h.bytes.end());
}

PageStoreConfig tiny_file_cfg() {
  PageStoreConfig cfg;
  cfg.backend = PageStoreConfig::Backend::kFile;
  cfg.page_bytes = 1024;
  cfg.max_resident_pages = 8;
  return cfg;
}

TEST(TrieSnapshot, NullSnapshotThrows) {
  const TrieSnapshot snap;
  EXPECT_FALSE(snap.valid());
  EXPECT_THROW((void)snap.root_hash(), TrieError);
  EXPECT_THROW((void)snap.get(key_of("a")), TrieError);
  EXPECT_THROW((void)snap.prove(key_of("a")), TrieError);
}

TEST(TrieSnapshot, EmptyTrieSnapshotHasZeroRoot) {
  SealableTrie t;
  const TrieSnapshot snap = t.snapshot();
  ASSERT_TRUE(snap.valid());
  EXPECT_TRUE(snap.root_hash().is_zero());
  EXPECT_EQ(snap.get(key_of("a")), Lookup::kAbsent);
  EXPECT_TRUE(snap.prove(key_of("a")).nodes.empty());
}

TEST(TrieSnapshot, ReadsAreIsolatedFromLaterWrites) {
  SealableTrie t;
  for (int i = 0; i < 100; ++i)
    t.set(key_of("k" + std::to_string(i)), val("v" + std::to_string(i)));
  const Hash32 root_then = t.root_hash();
  const TrieSnapshot snap = t.snapshot();

  // Mutate heavily after the snapshot: overwrite, insert, seal.
  for (int i = 0; i < 100; ++i)
    t.set(key_of("k" + std::to_string(i)), val("overwritten"));
  for (int i = 100; i < 300; ++i) t.set(key_of("k" + std::to_string(i)), val("new"));
  for (int i = 0; i < 50; ++i) t.seal(key_of("k" + std::to_string(i)));
  t.commit();
  ASSERT_NE(t.root_hash(), root_then);

  // The snapshot still serves the old state, including entries the
  // live trie has since sealed away.
  EXPECT_EQ(snap.root_hash(), root_then);
  for (int i = 0; i < 100; ++i) {
    Hash32 out;
    ASSERT_EQ(snap.get(key_of("k" + std::to_string(i)), &out), Lookup::kFound) << i;
    EXPECT_EQ(out, val("v" + std::to_string(i)));
  }
  EXPECT_EQ(snap.get(key_of("k200")), Lookup::kAbsent);
}

TEST(TrieSnapshot, ProofsByteIdenticalToLiveAtSameRoot) {
  SealableTrie t;
  for (int i = 0; i < 200; ++i)
    t.set(key_of("p" + std::to_string(i)), val(std::to_string(i)));
  t.commit();
  // Proofs from the live trie, captured before any further mutation.
  std::vector<Bytes> live_proofs;
  for (int i = 0; i < 220; ++i)
    live_proofs.push_back(t.prove(key_of("p" + std::to_string(i))).serialize());

  const TrieSnapshot snap = t.snapshot();
  for (int i = 300; i < 500; ++i) t.set(key_of("p" + std::to_string(i)), val("x"));
  t.commit();

  for (int i = 0; i < 220; ++i) {
    const Bytes snap_proof = snap.prove(key_of("p" + std::to_string(i))).serialize();
    ASSERT_EQ(snap_proof, live_proofs[static_cast<std::size_t>(i)]) << "key " << i;
  }
}

TEST(TrieSnapshot, OutlivesTheTrie) {
  std::optional<TrieSnapshot> snap;
  Hash32 root;
  {
    SealableTrie t;
    for (int i = 0; i < 64; ++i) t.set(key_of(std::to_string(i)), val("v"));
    root = t.root_hash();
    snap = t.snapshot();
  }  // trie destroyed; the snapshot keeps the store core alive
  ASSERT_TRUE(snap->valid());
  EXPECT_EQ(snap->root_hash(), root);
  Hash32 out;
  EXPECT_EQ(snap->get(key_of("7"), &out), Lookup::kFound);
  const VerifyOutcome vo = verify_proof(root, key_of("7"), snap->prove(key_of("7")));
  EXPECT_EQ(vo.kind, VerifyOutcome::Kind::kFound);
}

TEST(TrieSnapshot, ReleasingSnapshotsReclaimsParkedPages) {
  SealableTrie t;
  for (int i = 0; i < 400; ++i) t.set(key_of(std::to_string(i)), val("a"));
  t.commit();
  {
    const TrieSnapshot snap = t.snapshot();
    // Overwriting every key forces COW of (almost) every leaf page;
    // the old physical pages are retired but must stay parked while
    // the snapshot can still read them.
    for (int i = 0; i < 400; ++i) t.set(key_of(std::to_string(i)), val("b"));
    t.commit();
    EXPECT_GT(t.pending_free_pages(), 0u);
    Hash32 out;
    ASSERT_EQ(snap.get(key_of("0"), &out), Lookup::kFound);
    EXPECT_EQ(out, val("a"));
  }
  // Snapshot gone: the next retirement sweep frees the parked pages.
  for (int i = 0; i < 400; ++i) t.set(key_of(std::to_string(i)), val("c"));
  t.commit();
  (void)t.snapshot();  // publish+drop advances and sweeps epochs
  EXPECT_EQ(t.pending_free_pages(), 0u);
  t.debug_check_stats();
}

TEST(TrieSnapshot, ManySnapshotsEachServeTheirOwnHeight) {
  SealableTrie t;
  std::vector<TrieSnapshot> snaps;
  std::vector<Hash32> roots;
  for (int h = 0; h < 16; ++h) {
    for (int i = 0; i < 32; ++i)
      t.set(key_of("h" + std::to_string(h) + "-" + std::to_string(i)),
            val(std::to_string(h)));
    snaps.push_back(t.snapshot());
    roots.push_back(t.root_hash());
  }
  for (int h = 0; h < 16; ++h) {
    EXPECT_EQ(snaps[static_cast<std::size_t>(h)].root_hash(),
              roots[static_cast<std::size_t>(h)]);
    // A key from the *next* batch is absent in this snapshot.
    const std::string next =
        "h" + std::to_string(h + 1) + "-" + std::to_string(0);
    EXPECT_EQ(snaps[static_cast<std::size_t>(h)].get(key_of(next)), Lookup::kAbsent)
        << h;
  }
  // Release out of order; the store must sweep whatever becomes free.
  snaps.erase(snaps.begin() + 3, snaps.begin() + 12);
  snaps.clear();
  (void)t.snapshot();
  EXPECT_EQ(t.pending_free_pages(), 0u);
}

TEST(TrieSnapshot, FileBackedSnapshotsSurviveEvictionChurn) {
  SealableTrie t{tiny_file_cfg()};
  for (int i = 0; i < 300; ++i) t.set(key_of("f" + std::to_string(i)), val("1"));
  const Hash32 root = t.root_hash();
  const TrieSnapshot snap = t.snapshot();
  // Push far more state through the tiny resident set.
  for (int i = 300; i < 900; ++i) t.set(key_of("f" + std::to_string(i)), val("2"));
  t.commit();
  EXPECT_EQ(snap.root_hash(), root);
  for (int i = 0; i < 300; i += 17) {
    const Bytes k = key_of("f" + std::to_string(i));
    const VerifyOutcome vo = verify_proof(root, k, snap.prove(k));
    ASSERT_EQ(vo.kind, VerifyOutcome::Kind::kFound) << i;
    EXPECT_EQ(vo.value, val("1"));
  }
}

// --- ProofService ------------------------------------------------------

TEST(ProofService, BatchMatchesSerialProving) {
  SealableTrie t;
  for (int i = 0; i < 256; ++i) t.set(key_of("b" + std::to_string(i)), val("v"));
  const TrieSnapshot snap = t.snapshot();
  std::vector<Bytes> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(key_of("b" + std::to_string(i)));

  const std::vector<Proof> batch = ProofService::prove_batch(snap, keys);
  ASSERT_EQ(batch.size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    ASSERT_EQ(batch[i].serialize(), snap.prove(keys[i]).serialize()) << i;
}

TEST(ProofService, ProvesConcurrentlyWithCommits) {
  SealableTrie t;
  for (int i = 0; i < 512; ++i) t.set(key_of("c" + std::to_string(i)), val("0"));
  t.commit();

  ProofService service;
  std::vector<std::future<std::vector<Proof>>> futures;
  std::vector<Hash32> roots;
  std::vector<std::vector<Bytes>> key_batches;
  // Interleave: publish a snapshot, hand its proof batch to the
  // service, and immediately start mutating/committing the next block
  // while the worker proves against the frozen pages.
  for (int block = 0; block < 8; ++block) {
    const TrieSnapshot snap = t.snapshot();
    roots.push_back(snap.root_hash());
    std::vector<Bytes> keys;
    for (int i = 0; i < 64; ++i)
      keys.push_back(key_of("c" + std::to_string((block * 37 + i) % 512)));
    key_batches.push_back(keys);
    futures.push_back(service.submit(snap, std::move(keys)));
    for (int i = 0; i < 512; i += 3)
      t.set(key_of("c" + std::to_string(i)), val("b" + std::to_string(block)));
    t.commit();
  }
  for (std::size_t b = 0; b < futures.size(); ++b) {
    const std::vector<Proof> proofs = futures[b].get();
    ASSERT_EQ(proofs.size(), key_batches[b].size());
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      const VerifyOutcome vo = verify_proof(roots[b], key_batches[b][i], proofs[i]);
      ASSERT_EQ(vo.kind, VerifyOutcome::Kind::kFound) << "block " << b << " key " << i;
    }
  }
}

TEST(ProofService, SealedKeyFailsTheBatch) {
  SealableTrie t;
  t.set(key_of("a"), val("1"));
  t.set(key_of("b"), val("2"));
  t.seal(key_of("a"));
  const TrieSnapshot snap = t.snapshot();
  ProofService service;
  auto fut = service.submit(snap, {key_of("a"), key_of("b")});
  EXPECT_THROW((void)fut.get(), SealedError);
}

TEST(ProofService, BatchResultsAreThreadCountInvariant) {
  SealableTrie t;
  for (int i = 0; i < 200; ++i) t.set(key_of("t" + std::to_string(i)), val("v"));
  const TrieSnapshot snap = t.snapshot();
  std::vector<Bytes> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(key_of("t" + std::to_string(i)));

  const std::size_t saved = parallel::thread_count();
  parallel::set_thread_count(1);
  const std::vector<Proof> serial = ProofService::prove_batch(snap, keys);
  parallel::set_thread_count(8);
  const std::vector<Proof> wide = ProofService::prove_batch(snap, keys);
  parallel::set_thread_count(saved);

  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i].serialize(), wide[i].serialize()) << i;
}

}  // namespace
}  // namespace bmg::trie
