// Reorg chaos suite (ISSUE 10): the full deployment on a fork-aware
// host.  Scripted and fuzzed reorg storms — alone, composed with the
// classic fault schedule (congestion / blackholes / outages) and with
// Byzantine adversaries — must leave the invariant auditor clean,
// deliver every packet eventually, and converge to the same token
// state as a reorg-free run of the identical workload.  Empty and
// depth-0 reorg plans must stay byte-identical to the seed.
//
// CI runs this suite under several fixed seeds via BMG_CHAOS_SEED.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>

#include "adversary/campaign.hpp"
#include "audit/auditor.hpp"
#include "relayer/deployment.hpp"

namespace bmg::relayer {
namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("BMG_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 1001;
}

DeploymentConfig reorg_config(std::uint64_t seed, bool fork_aware) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  cfg.host.fork_aware = fork_aware;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "reorg-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  cfg.counterparty.block_interval_s = 6.0;
  return cfg;
}

/// The fixed four-transfer workload every convergence test runs: three
/// counterparty->guest sends and one guest->counterparty send whose
/// ack must cross back.  Returns once both directions fully delivered
/// and every packet resolved.
struct WorkloadResult {
  std::shared_ptr<Deployment::SendRecord> guest_send;
  bool delivered = false;
};

WorkloadResult run_fixed_workload(Deployment& d) {
  const ibc::Packet p1 = d.send_transfer_from_cp(10);
  d.run_for(15.0);
  const ibc::Packet p2 = d.send_transfer_from_cp(20);
  d.run_for(15.0);
  const ibc::Packet p3 = d.send_transfer_from_cp(30);
  WorkloadResult w;
  w.guest_send = d.send_transfer_from_guest(500, host::FeePolicy::priority(5'000'000));

  const std::string in_voucher = "transfer/" + d.guest_channel() + "/PICA";
  const std::string out_voucher = "transfer/" + d.cp_channel() + "/SOL";
  w.delivered =
      d.run_until(
          [&] {
            return d.guest().bank().balance("alice", in_voucher) == 60 &&
                   d.cp().bank().balance("bob", out_voucher) == 500;
          },
          3000.0) &&
      d.run_until(
          [&] {
            return !d.cp().ibc().packet_pending("transfer", d.cp_channel(),
                                                p1.sequence) &&
                   !d.cp().ibc().packet_pending("transfer", d.cp_channel(),
                                                p2.sequence) &&
                   !d.cp().ibc().packet_pending("transfer", d.cp_channel(),
                                                p3.sequence) &&
                   !d.guest().ibc().packet_pending("transfer", d.guest_channel(),
                                                   w.guest_send->sequence);
          },
          3000.0);
  return w;
}

std::string banks_digest(Deployment& d) {
  return audit::token_state_digest(d.guest().bank()) + "||" +
         audit::token_state_digest(d.cp().bank());
}

// --- byte-identity of the non-fork path ------------------------------------

TEST(ReorgChaos, EmptyAndDepthZeroPlansByteIdenticalToSeed) {
  // A depth-0 reorg window never arms the fork machinery: the run must
  // be indistinguishable — event count, balances, retries, token state
  // — from a deployment built with the untouched seed configuration.
  const auto run_once = [](bool depth_zero_window) {
    Deployment d(reorg_config(chaos_seed(), /*fork_aware=*/false));
    d.open_ibc();
    if (depth_zero_window)
      d.host().fault_plan().reorg(d.sim().now(), d.sim().now() + 600.0,
                                  /*max_depth=*/0, /*probability=*/1.0);
    EXPECT_FALSE(d.host().fork_mode());
    (void)d.send_transfer_from_cp(42);
    d.run_for(600.0);
    const host::FaultCounters& fc = d.host().fault_counters();
    EXPECT_EQ(fc.reorgs_triggered, 0u);
    EXPECT_EQ(fc.txs_replayed, 0u);
    return std::make_tuple(d.sim().events_processed(),
                           d.guest().bank().balance(
                               "alice", "transfer/" + d.guest_channel() + "/PICA"),
                           d.relayer().pipeline().retries_total(),
                           d.guest().block_count(),
                           audit::token_state_digest(d.guest().bank()));
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// --- convergence -----------------------------------------------------------

TEST(ReorgChaos, StormConvergesToReorgFreeTokenState) {
  // Full-survival storm: every retracted transaction is replayed on
  // the winning fork, so once the workload drains, both banks must be
  // byte-identical to a reorg-free run — the rollback/replay journal
  // loses nothing.
  const auto run_once = [](bool storm) {
    Deployment d(reorg_config(chaos_seed(), /*fork_aware=*/storm));
    audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
    auditor.start();
    d.open_ibc();
    auditor.watch_client(d.guest_client_on_cp());
    auditor.watch_transfer_lane(
        audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});
    if (storm)
      d.host().fault_plan().reorg(d.sim().now() + 5.0, d.sim().now() + 120.0,
                                  /*max_depth=*/4, /*probability=*/0.10);
    const WorkloadResult w = run_fixed_workload(d);
    EXPECT_TRUE(w.delivered);
    if (storm) EXPECT_GT(d.host().fault_counters().reorgs_triggered, 0u);
    auditor.check_now("final");
    EXPECT_TRUE(auditor.clean()) << auditor.report();
    return banks_digest(d);
  };
  EXPECT_EQ(run_once(true), run_once(false));
}

// --- composition -----------------------------------------------------------

TEST(ReorgChaos, FuzzedSchedulesComposedWithCrashFaultsStayClean) {
  // Randomised reorg windows layered over the classic chaos plan
  // (congestion, fee spike, blackholes, a full outage).  Whatever the
  // fuzzer scripts, the bar is absolute: auditor clean, both
  // directions delivered, supply conserved.
  Rng fuzz(Rng::split(chaos_seed(), 0xF0F0));
  for (int iter = 0; iter < 2; ++iter) {
    Deployment d(reorg_config(chaos_seed() + static_cast<std::uint64_t>(iter),
                              /*fork_aware=*/true));
    audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
    auditor.start();
    d.open_ibc();
    auditor.watch_client(d.guest_client_on_cp());
    auditor.watch_transfer_lane(
        audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

    const double t0 = d.sim().now();
    d.host()
        .fault_plan()
        .congestion(t0 + 5, t0 + 60, 0.3)
        .fee_spike(t0 + 5, t0 + 60, 3.0)
        .blackhole(t0 + 10, t0 + 50, 0.5, "recv-packet")
        .outage(t0 + 65, t0 + 75);
    const int windows = 1 + static_cast<int>(fuzz.uniform_int(3));
    for (int wdx = 0; wdx < windows; ++wdx) {
      const double start = t0 + 5.0 + fuzz.uniform() * 60.0;
      const double len = 20.0 + fuzz.uniform() * 60.0;
      const std::uint64_t depth = 1 + fuzz.uniform_int(5);
      const double prob = 0.05 + fuzz.uniform() * 0.15;
      d.host().fault_plan().reorg(start, start + len, depth, prob);
    }

    const WorkloadResult w = run_fixed_workload(d);
    EXPECT_TRUE(w.delivered) << "fuzz iter " << iter;

    const std::string in_voucher = "transfer/" + d.guest_channel() + "/PICA";
    const std::string out_voucher = "transfer/" + d.cp_channel() + "/SOL";
    EXPECT_EQ(d.guest().bank().total_supply(in_voucher), 60u);
    EXPECT_EQ(d.cp().bank().total_supply(out_voucher), 500u);
    EXPECT_EQ(d.guest().bank().total_supply("SOL"), 1'000'000u);
    EXPECT_EQ(d.cp().bank().total_supply("PICA"), 1'000'000u);

    EXPECT_EQ(d.relayer().pipeline().in_flight(), 0u);
    auditor.check_now("final");
    EXPECT_TRUE(auditor.clean()) << "fuzz iter " << iter << ": " << auditor.report();
  }
}

TEST(ReorgChaos, StormComposedWithByzantineAdversaryStaysClean) {
  // Reorgs on the host while a Byzantine validator equivocates on the
  // guest: retractions must not confuse the fisherman or the auditor,
  // and the offender still loses its stake.
  DeploymentConfig cfg = reorg_config(chaos_seed(), /*fork_aware=*/true);
  cfg.guest.delta_seconds = 30.0;
  Deployment d(std::move(cfg));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  d.host().fault_plan().reorg(t0 + 5.0, t0 + 150.0, /*max_depth=*/3,
                              /*probability=*/0.08);
  adversary::AdversaryPlan plan;
  plan.equivocate(t0 + 10.0, t0 + 120.0, /*validators=*/1, /*rate=*/1.0);
  adversary::Campaign campaign(d, std::move(plan));
  campaign.start();
  ASSERT_EQ(campaign.offenders().size(), 1u);
  const crypto::PublicKey offender = campaign.offenders()[0];

  (void)d.send_transfer_from_cp(25);
  const std::string in_voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", in_voucher) == 25; }, 3000.0));
  ASSERT_TRUE(d.run_until([&] { return d.guest().is_banned(offender); }, 3000.0));
  EXPECT_EQ(d.guest().stake_of(offender), 0u);
  EXPECT_GT(campaign.counters().equivocations, 0u);
  EXPECT_GT(d.host().fault_counters().reorgs_triggered, 0u);

  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- commitment levels and lossy forks -------------------------------------

TEST(ReorgChaos, RootedCommitmentPipelineDeliversUnderStorm) {
  DeploymentConfig cfg = reorg_config(chaos_seed(), /*fork_aware=*/true);
  cfg.relayer.pipeline.commitment = host::Commitment::kRooted;
  Deployment d(std::move(cfg));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});
  d.host().fault_plan().reorg(d.sim().now() + 5.0, d.sim().now() + 120.0,
                              /*max_depth=*/4, /*probability=*/0.10);

  const WorkloadResult w = run_fixed_workload(d);
  EXPECT_TRUE(w.delivered);
  EXPECT_GT(d.host().fault_counters().reorgs_triggered, 0u);

  // The client send's finalisation also rooted, and rooting can only
  // trail execution and finalisation.
  ASSERT_TRUE(d.run_until([&] { return w.guest_send->rooted; }, 600.0));
  EXPECT_GE(w.guest_send->rooted_at, w.guest_send->finalised_at);
  EXPECT_GE(w.guest_send->rooted_at, w.guest_send->executed_at);

  EXPECT_EQ(d.relayer().pipeline().in_flight(), 0u);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(ReorgChaos, LossyStormIsRepairedAndStillDelivers) {
  // 15% of retracted transactions die on the winning fork; the
  // pipeline's reorged-out repair path must resubmit whatever the fork
  // killed until delivery completes.
  Deployment d(reorg_config(chaos_seed(), /*fork_aware=*/true));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});
  d.host().fault_plan().reorg(d.sim().now() + 5.0, d.sim().now() + 150.0,
                              /*max_depth=*/4, /*probability=*/0.12,
                              /*survival=*/0.85);

  const WorkloadResult w = run_fixed_workload(d);
  EXPECT_TRUE(w.delivered);
  EXPECT_GT(d.host().fault_counters().reorgs_triggered, 0u);
  EXPECT_EQ(d.relayer().pipeline().in_flight(), 0u);
  // The pipeline only sees deaths among its own transactions; it can
  // never report more than the host killed.
  EXPECT_LE(d.relayer().pipeline().reorged_out_total(),
            d.host().fault_counters().txs_reorged_out);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- determinism -----------------------------------------------------------

TEST(ReorgChaos, SameSeedReproducesIdenticalStormTrace) {
  const auto run_once = [] {
    Deployment d(reorg_config(chaos_seed(), /*fork_aware=*/true));
    d.open_ibc();
    d.host().fault_plan().reorg(d.sim().now() + 5.0, d.sim().now() + 120.0,
                                /*max_depth=*/4, /*probability=*/0.10,
                                /*survival=*/0.9);
    (void)d.send_transfer_from_cp(42);
    d.run_for(600.0);
    const host::FaultCounters& fc = d.host().fault_counters();
    return std::make_tuple(d.sim().events_processed(), fc.reorgs_triggered,
                           fc.slots_rolled_back, fc.txs_replayed, fc.txs_reorged_out,
                           d.host().fork_epoch(),
                           d.relayer().pipeline().retries_total(),
                           audit::token_state_digest(d.guest().bank()));
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace bmg::relayer
