// Crash-restart recovery suite (PR 5).
//
// Kills agents at adversarially-chosen points of the relaying
// protocol and asserts the system converges after restart: every
// transfer still delivers (possibly via pipeline redrive), the
// restarted relayer resyncs from nothing but on-chain state, and the
// invariant auditor — conservation, sequence monotonicity, commit
// roots, client heights — stays clean throughout.  The convergence
// tests additionally require the post-recovery token state to be
// byte-identical to a crash-free run of the same workload.
//
// CI runs this suite under several fixed seeds via BMG_CHAOS_SEED.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "audit/auditor.hpp"
#include "ibc/transfer.hpp"
#include "relayer/deployment.hpp"
#include "relayer/fisherman_agent.hpp"

namespace bmg::relayer {
namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("BMG_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 1001;
}

DeploymentConfig crash_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "crash-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  cfg.counterparty.block_interval_s = 6.0;
  return cfg;
}

/// Everything a converged bridge must agree on regardless of how many
/// times its agents died along the way.
struct TokenState {
  std::uint64_t alice_voucher = 0;  ///< delivered PICA vouchers on the guest
  std::uint64_t voucher_supply = 0;
  std::uint64_t escrow = 0;  ///< PICA escrowed on the counterparty
  std::uint64_t sol_supply = 0;
  std::uint64_t pica_supply = 0;

  bool operator==(const TokenState&) const = default;
};

TokenState token_state(Deployment& d) {
  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  return TokenState{
      d.guest().bank().balance("alice", voucher),
      d.guest().bank().total_supply(voucher),
      d.cp().bank().balance(ibc::TokenTransferApp::escrow_account(d.cp_channel()),
                            "PICA"),
      d.guest().bank().total_supply("SOL"),
      d.cp().bank().total_supply("PICA"),
  };
}

// --- restart convergence: kill the relayer at every update phase ------------

enum class CrashPhase { kNone, kPreStaging, kMidChunkUpload, kPreFinalize };

/// Runs one cp->guest transfer, crashing (and 30 s later restarting)
/// the relayer at `phase` of the light-client-update protocol.
/// Returns the converged token state; fails the test if the transfer
/// never delivers or the auditor records a violation.
TokenState run_with_crash(CrashPhase phase, std::uint64_t seed) {
  Deployment d(crash_config(seed));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const ibc::Packet packet = d.send_transfer_from_cp(77);
  RelayerAgent& r = d.relayer();

  bool phase_hit = true;
  switch (phase) {
    case CrashPhase::kNone:
      break;
    case CrashPhase::kPreStaging:
      // Crash immediately: the relayer has seen the packet (or will on
      // restart) but staged nothing on-chain yet.
      break;
    case CrashPhase::kMidChunkUpload:
      phase_hit = d.run_until(
          [&] { return !d.guest().staging_buffers_of(r.payer()).empty(); }, 600.0);
      break;
    case CrashPhase::kPreFinalize:
      phase_hit = d.run_until(
          [&] { return d.guest().pending_update_info().has_value(); }, 600.0);
      break;
  }
  EXPECT_TRUE(phase_hit);

  if (phase != CrashPhase::kNone) {
    r.crash();
    EXPECT_FALSE(r.running());
    d.run_for(30.0);
    r.restart();
    EXPECT_TRUE(r.running());
    EXPECT_EQ(r.crash_count(), 1u);
  }

  EXPECT_TRUE(d.run_until(
      [&] {
        return d.guest().ibc().packet_received("transfer", d.guest_channel(),
                                               packet.sequence) &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(),
                                            packet.sequence);
      },
      4000.0))
      << "transfer did not converge after crash phase "
      << static_cast<int>(phase);

  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  EXPECT_GT(auditor.checks_run(), 0u);
  EXPECT_EQ(d.relayer().pipeline().in_flight(), 0u);
  return token_state(d);
}

TEST(RestartConvergence, RelayerCrashAtEveryUpdatePhaseConverges) {
  const std::uint64_t seed = chaos_seed();
  const TokenState baseline = run_with_crash(CrashPhase::kNone, seed);
  EXPECT_EQ(baseline.alice_voucher, 77u);
  EXPECT_EQ(baseline.voucher_supply, 77u);
  EXPECT_EQ(baseline.escrow, 77u);

  // Whichever phase the crash lands in — before anything was staged,
  // with a half-uploaded staging buffer abandoned on-chain, or with a
  // pending update mid signature-verification — the restarted relayer
  // must resync to the exact same token state.
  EXPECT_EQ(run_with_crash(CrashPhase::kPreStaging, seed), baseline);
  EXPECT_EQ(run_with_crash(CrashPhase::kMidChunkUpload, seed), baseline);
  EXPECT_EQ(run_with_crash(CrashPhase::kPreFinalize, seed), baseline);
}

TEST(RestartConvergence, DoubleCrashStillConverges) {
  // Crash the fresh incarnation again mid-recovery: at-least-once
  // delivery must hold across arbitrarily many restarts.
  Deployment d(crash_config(chaos_seed() + 3));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const ibc::Packet packet = d.send_transfer_from_cp(31);
  RelayerAgent& r = d.relayer();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(d.run_until(
        [&] { return !d.guest().staging_buffers_of(r.payer()).empty(); }, 600.0));
    r.crash();
    d.run_for(20.0);
    r.restart();
  }
  EXPECT_EQ(r.crash_count(), 2u);

  ASSERT_TRUE(d.run_until(
      [&] {
        return d.guest().ibc().packet_received("transfer", d.guest_channel(),
                                               packet.sequence);
      },
      4000.0));
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  EXPECT_EQ(token_state(d).alice_voucher, 31u);
}

// --- duplicate delivery ------------------------------------------------------

TEST(CrashChaos, DuplicateDeliveryIsIdempotent) {
  Deployment d(crash_config(chaos_seed() + 11));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  // Every packet delivery and every ack-producing execution is ghost-
  // replayed: the host re-runs the transaction a second time, exactly
  // the double-delivery an at-least-once relayer can also produce.
  const double t0 = d.sim().now();
  d.host().fault_plan().duplicate(t0, t0 + 900.0, 1.0, "recv-packet");

  const ibc::Packet p1 = d.send_transfer_from_cp(10);
  d.run_for(30.0);
  const ibc::Packet p2 = d.send_transfer_from_cp(25);
  const auto rec = d.send_transfer_from_guest(400, host::FeePolicy::priority(5'000'000));

  const std::string in_voucher = "transfer/" + d.guest_channel() + "/PICA";
  const std::string out_voucher = "transfer/" + d.cp_channel() + "/SOL";
  ASSERT_TRUE(d.run_until(
      [&] {
        return d.guest().bank().balance("alice", in_voucher) >= 35 &&
               d.cp().bank().balance("bob", out_voucher) >= 400 &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p1.sequence) &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p2.sequence) &&
               !d.guest().ibc().packet_pending("transfer", d.guest_channel(),
                                               rec->sequence);
      },
      4000.0));

  // Replays actually happened, and none of them minted or acked twice.
  EXPECT_GE(d.host().fault_counters().duplicated, 1u);
  EXPECT_EQ(d.guest().bank().balance("alice", in_voucher), 35u);
  EXPECT_EQ(d.guest().bank().total_supply(in_voucher), 35u);
  EXPECT_EQ(d.cp().bank().total_supply(out_voucher), 400u);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- scheduled crash windows over every agent type ---------------------------

TEST(CrashChaos, CrashWindowsOverEveryAgentTypeStillDeliver) {
  Deployment d(crash_config(chaos_seed() + 17));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  // Staggered kill windows touching every agent type: the relayer
  // mid-relay, the crank, and one validator (quorum is 3-of-4, so
  // finalisation survives).  Appended after open_ibc(), so the
  // controller arms them via the cursor-based schedule_crashes().
  const double t0 = d.sim().now();
  d.host()
      .fault_plan()
      .crash(t0 + 5.0, t0 + 45.0, "relayer")
      .crash(t0 + 15.0, t0 + 75.0, "crank")
      .crash(t0 + 10.0, t0 + 120.0, "crash-val-2");
  EXPECT_EQ(d.schedule_crashes(), 3u);
  EXPECT_EQ(d.schedule_crashes(), 0u);  // cursor: nothing re-armed
  EXPECT_FALSE(d.host().fault_plan().has_chain_faults());

  const ibc::Packet p1 = d.send_transfer_from_cp(12);
  d.run_for(20.0);  // lands inside all three windows
  const ibc::Packet p2 = d.send_transfer_from_cp(34);
  const auto rec = d.send_transfer_from_guest(250, host::FeePolicy::priority(5'000'000));

  const std::string in_voucher = "transfer/" + d.guest_channel() + "/PICA";
  const std::string out_voucher = "transfer/" + d.cp_channel() + "/SOL";
  ASSERT_TRUE(d.run_until(
      [&] {
        return d.guest().bank().balance("alice", in_voucher) == 46 &&
               d.cp().bank().balance("bob", out_voucher) == 250 &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p1.sequence) &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p2.sequence) &&
               !d.guest().ibc().packet_pending("transfer", d.guest_channel(),
                                               rec->sequence);
      },
      6000.0));

  // Delivery may outrun the longest window's end; pump past it so the
  // last restart event fires, then check every agent died and revived.
  if (d.sim().now() < t0 + 121.0) d.run_for(t0 + 121.0 - d.sim().now());
  EXPECT_EQ(d.crash_controller().crashes(), 3u);
  EXPECT_EQ(d.crash_controller().restarts(), 3u);
  EXPECT_EQ(d.relayer().crash_count(), 1u);
  EXPECT_EQ(d.crank().crash_count(), 1u);
  EXPECT_EQ(d.validators()[2]->crash_count(), 1u);
  EXPECT_TRUE(d.relayer().running());
  EXPECT_TRUE(d.crank().running());
  EXPECT_TRUE(d.validators()[2]->running());

  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
  EXPECT_EQ(d.relayer().pipeline().in_flight(), 0u);
}

TEST(CrashChaos, ValidatorCrashWithinQuorumSlackKeepsFinalising) {
  Deployment d(crash_config(chaos_seed() + 23));
  d.open_ibc();
  const double t0 = d.sim().now();
  d.host().fault_plan().crash(t0, t0 + 300.0, "crash-val-0");
  ASSERT_EQ(d.schedule_crashes(), 1u);

  const ibc::Height before = d.guest().last_finalised_height();
  const ibc::Packet packet = d.send_transfer_from_cp(9);
  ASSERT_TRUE(d.run_until(
      [&] {
        return d.guest().ibc().packet_received("transfer", d.guest_channel(),
                                               packet.sequence);
      },
      250.0));
  // Finalisation keeps advancing with one of four signers dark: the
  // remaining 300/400 stake still clears the quorum threshold.  Both
  // checks land strictly inside the crash window.
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().last_finalised_height() > before; }, 150.0));
  EXPECT_LT(d.sim().now(), t0 + 300.0);
  EXPECT_FALSE(d.validators()[0]->running());
  EXPECT_EQ(d.validators()[0]->crash_count(), 1u);
}

// --- fisherman crash-restart -------------------------------------------------

TEST(CrashChaos, FishermanRestartDoesNotDoubleProsecute) {
  DeploymentConfig cfg = crash_config(chaos_seed() + 29);
  cfg.guest.delta_seconds = 30.0;
  Deployment d(std::move(cfg));

  GossipBus bus;
  const crypto::PublicKey fisher_payer =
      crypto::PrivateKey::from_label("crash-fisher").public_key();
  d.host().airdrop(fisher_payer, 100 * host::kLamportsPerSol);
  FishermanAgent fisherman(d.sim(), d.host(), d.guest(), bus, fisher_payer);
  fisherman.start();
  ByzantineValidatorAgent byzantine(d.sim(), d.host(), d.guest(),
                                    d.validators()[0]->key(), bus);
  byzantine.start();
  d.crash_controller().add(fisherman);
  d.start();

  const crypto::PublicKey offender = d.validators()[0]->pubkey();
  ASSERT_TRUE(d.run_until([&] { return d.guest().is_banned(offender); }, 1200.0));
  const std::uint64_t submitted = fisherman.evidence_submitted();

  // Kill the fisherman, wiping its in-memory prosecuted set, while the
  // byzantine validator keeps equivocating.  The restarted incarnation
  // must recover "already prosecuted" from the chain's ban set rather
  // than burn fees re-submitting evidence against a dead validator.
  fisherman.crash();
  d.run_for(30.0);
  fisherman.restart();
  EXPECT_EQ(fisherman.crash_count(), 1u);
  d.run_for(300.0);

  EXPECT_TRUE(d.guest().is_banned(offender));
  EXPECT_EQ(d.guest().stake_of(offender), 0u);
  EXPECT_EQ(fisherman.evidence_submitted(), submitted);
  EXPECT_EQ(fisherman.pipeline().in_flight(), 0u);
}

// --- the auditor itself ------------------------------------------------------

TEST(InvariantAuditorTest, DetectsAnOutOfThinAirMint) {
  Deployment d(crash_config(chaos_seed() + 41));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const ibc::Packet packet = d.send_transfer_from_cp(50);
  ASSERT_TRUE(d.run_until(
      [&] {
        return d.guest().ibc().packet_received("transfer", d.guest_channel(),
                                               packet.sequence);
      },
      2000.0));
  auditor.check_now("pre-tamper");
  ASSERT_TRUE(auditor.clean()) << auditor.report();

  // Mint 1 unbacked voucher behind the bridge's back — exactly the
  // double-mint a buggy recv path (or a double-delivered packet whose
  // receipt check was lost in a crash) would produce.
  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  d.guest().bank().mint("mallory", voucher, 1);
  auditor.check_now("tamper");

  EXPECT_FALSE(auditor.clean());
  EXPECT_GE(auditor.violations_total(), 1u);
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_EQ(auditor.violations().front().invariant, "conservation");
  EXPECT_NE(auditor.report().find("conservation"), std::string::npos);
}

}  // namespace
}  // namespace bmg::relayer
