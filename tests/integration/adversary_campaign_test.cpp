// Adversary campaign suite (PR 8): AdversaryPlan-driven Byzantine
// validators, collusion cliques, griefing relayers and fee-market
// attackers running against the full deployment, with the
// detection -> evidence -> prosecution -> slashing pipeline measured
// end to end.
//
// The standing bar for every sub-quorum scenario: the InvariantAuditor
// never trips, every offender is detected and slashed, and packet
// delivery still completes.  The one scenario that provably cannot
// meet that bar — collusion at quorum stake — is here too, asserting
// the documented safety-loss signature loudly instead of pretending
// the light client can survive a quorum of liars.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>

#include "adversary/campaign.hpp"
#include "adversary/scenarios.hpp"
#include "audit/auditor.hpp"
#include "relayer/deployment.hpp"

namespace bmg::adversary {
namespace {

using relayer::Deployment;
using relayer::DeploymentConfig;
using relayer::ValidatorProfile;

/// Small roster: `active` signing validators plus `silent` staked but
/// non-signing ones (the tail the Campaign corrupts first, so
/// sub-quorum attacks cost the chain no finalisation power).
DeploymentConfig adv_config(std::uint64_t seed, int active, int silent,
                            std::uint64_t stake = 1000) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 30.0;
  for (int i = 0; i < active + silent; ++i) {
    ValidatorProfile p;
    p.name = "adv-val-" + std::to_string(i);
    p.stake = stake;
    p.active = i < active;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  cfg.counterparty.block_interval_s = 6.0;
  return cfg;
}

// --- plan mechanics --------------------------------------------------------

TEST(AdversaryPlan, BuildersQueriesAndHostCompilation) {
  AdversaryPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.byzantine_validators(), 0);
  EXPECT_EQ(plan.clique_size(), 0);

  plan.equivocate(10, 50, 2, 0.5)
      .fork_sign(20, 60, 3, 0.25)
      .collude(0, 100, 7, 0.4)
      .update_clobber(5, 15)
      .ack_withhold(30, 90, 120.0)
      .stale_replay(30, 90, 0.1)
      .fee_spam(40, 80, 6.0, 0.6, 12.0);
  EXPECT_EQ(plan.size(), 7u);
  EXPECT_EQ(plan.byzantine_validators(), 3);  // max over equivocate/fork-sign
  EXPECT_EQ(plan.clique_size(), 7);
  EXPECT_TRUE(plan.has_byzantine());
  EXPECT_TRUE(plan.has_collusion());
  EXPECT_TRUE(plan.has_griefing());
  EXPECT_TRUE(plan.has_fee_attack());

  // Windows are [start, end): open at start, closed at end.
  EXPECT_DOUBLE_EQ(plan.equivocation_rate(10.0), 0.5);
  EXPECT_DOUBLE_EQ(plan.equivocation_rate(49.9), 0.5);
  EXPECT_DOUBLE_EQ(plan.equivocation_rate(50.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.fork_sign_rate(19.0), 0.0);
  EXPECT_TRUE(plan.clobber_active(5.0));
  EXPECT_FALSE(plan.clobber_active(15.0));
  ASSERT_TRUE(plan.ack_withhold_delay(30.0).has_value());
  EXPECT_DOUBLE_EQ(*plan.ack_withhold_delay(30.0), 120.0);
  EXPECT_FALSE(plan.ack_withhold_delay(95.0).has_value());
  ASSERT_NE(plan.fee_spam_window(40.0), nullptr);
  EXPECT_DOUBLE_EQ(plan.fee_spam_window(40.0)->fee_multiplier, 6.0);
  EXPECT_EQ(plan.fee_spam_window(81.0), nullptr);
  ASSERT_TRUE(plan.next_window_start(AdversaryKind::kFeeSpam, 0.0).has_value());
  EXPECT_DOUBLE_EQ(*plan.next_window_start(AdversaryKind::kFeeSpam, 0.0), 40.0);
  EXPECT_FALSE(plan.next_window_start(AdversaryKind::kFeeSpam, 41.0).has_value());

  // Fee-spam market pressure compiles into the PR 3 fault machinery.
  host::FaultPlan faults;
  plan.compile_host_faults(faults);
  EXPECT_FALSE(faults.empty());
  bool saw_spike = false, saw_congestion = false;
  for (const auto& w : faults.windows()) {
    if (w.kind == host::FaultKind::kFeeSpike) saw_spike = true;
    if (w.kind == host::FaultKind::kCongestion) saw_congestion = true;
  }
  EXPECT_TRUE(saw_spike);
  EXPECT_TRUE(saw_congestion);

  plan.clear();
  EXPECT_TRUE(plan.empty());
}

TEST(AdversaryPlan, CountersCsvHeaderMatchesRowShape) {
  AdversaryCounters c;
  c.equivocations = 3;
  c.spam_txs = 9;
  const std::string header = AdversaryCounters::csv_header();
  const std::string row = c.csv_row();
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_EQ(c.total(), 12u);
}

// --- determinism -----------------------------------------------------------

// The byte-identity contract: a Campaign with an empty plan must leave
// the deployment's transcript untouched — no agents, no airdrops, no
// extra RNG draws, no subscriptions.
TEST(AdversaryCampaign, EmptyPlanIsByteIdenticalToNoCampaign) {
  const auto run = [](bool with_campaign) {
    Deployment d(adv_config(777, 4, 0));
    std::optional<Campaign> c;
    if (with_campaign) {
      c.emplace(d, AdversaryPlan{});
      c->start();
    }
    d.open_ibc();
    (void)d.send_transfer_from_cp(25);
    d.run_for(400.0);
    return std::make_tuple(
        d.sim().events_processed(), d.guest().head().hash().hex(),
        d.guest().bank().balance("alice", "transfer/" + d.guest_channel() + "/PICA"));
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(AdversaryCampaign, SameSeedSameAttackReproducesIdenticalRun) {
  const auto run = [] {
    Deployment d(adv_config(4242, 5, 2));
    AdversaryPlan plan;
    plan.equivocate(0.0, 200.0, 2, 0.7).fork_sign(0.0, 200.0, 2, 0.3);
    Campaign c(d, plan);
    c.start();
    d.run_for(600.0);
    return std::make_tuple(d.sim().events_processed(), c.counters().equivocations,
                           c.counters().fork_signs, c.economics().slashed_count,
                           d.guest().head().hash().hex());
  };
  EXPECT_EQ(run(), run());
}

// --- Byzantine validators --------------------------------------------------

TEST(AdversaryCampaign, EquivocationIsDetectedProsecutedAndSlashed) {
  Deployment d(adv_config(5001, 5, 2));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();

  AdversaryPlan plan;
  plan.equivocate(0.0, 300.0, 2, 1.0).fork_sign(0.0, 300.0, 2, 0.5);
  Campaign c(d, plan);
  c.start();
  ASSERT_EQ(c.offenders().size(), 2u);

  ASSERT_TRUE(d.run_until([&] { return c.offenders_banned() == 2; }, 2000.0));

  // Actions were counted per kind...
  EXPECT_GE(c.counters().equivocations, 1u);
  EXPECT_GE(c.counters().fork_signs, 1u);
  // ...stake moved for real (genesis stake is vault-backed)...
  for (const auto& pk : c.offenders()) EXPECT_EQ(d.guest().stake_of(pk), 0u);
  EXPECT_EQ(c.economics().slashed_count, 2u);
  EXPECT_GT(c.economics().stake_slashed, 0u);
  EXPECT_GT(c.economics().reporter_reward, 0u);
  EXPECT_GT(c.economics().stake_burned, 0u);
  EXPECT_EQ(c.economics().stake_slashed,
            c.economics().reporter_reward + c.economics().stake_burned);
  // ...time-to-detection was measured...
  EXPECT_GE(c.detection_latency().count(), 1u);
  EXPECT_GE(c.detection_latency().mean(), 0.0);
  // ...the defence paid real fees...
  EXPECT_GT(c.fisherman_fees_usd(), 0.0);
  // ...and no invariant ever broke: lying to the gossip layer is not a
  // safety event.
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- collusion: the quorum boundary ---------------------------------------

// Just below quorum: 3 active + 6 silent validators, 1000 stake each.
// Total 9000, quorum floor(2*9000/3)+1 = 6001.  The clique is all 6
// silent validators — 6000 stake, exactly quorum-1.  Every forged push
// must be rejected, every member slashed, and the auditor stays green.
TEST(AdversaryCampaign, CollusionJustBelowQuorumIsRejectedAndSlashed) {
  Deployment d(adv_config(6001, 3, 6));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();

  AdversaryPlan plan;
  plan.collude(0.0, 400.0, 6, 1.0);
  Campaign c(d, plan);
  c.start();
  ASSERT_EQ(c.offenders().size(), 6u);
  ASSERT_NE(c.clique(), nullptr);
  EXPECT_EQ(c.clique()->clique_stake(), 6000u);  // quorum - 1, exactly

  ASSERT_TRUE(d.run_until(
      [&] {
        return c.counters().fork_pushes_rejected >= 3 && c.offenders_banned() == 6;
      },
      2500.0));

  // The light client held: not one forged header got through, so not
  // one forged packet could be proven.
  EXPECT_EQ(c.counters().fork_pushes_accepted, 0u);
  EXPECT_EQ(c.counters().forged_packet_mints, 0u);
  EXPECT_GE(c.counters().collusion_headers, 3u);
  // Prosecution ran per member (each co-signature is evidence).
  EXPECT_EQ(c.economics().slashed_count, 6u);
  EXPECT_EQ(c.clique()->clique_stake(), 0u);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// At quorum: 6 active validators, clique of 5 (5000 >= quorum 4001).
// This is the regime the paper's trust model explicitly surrenders to —
// the light client accepts the forged header, the clique proves a
// fabricated packet commitment, and an unbacked voucher mints on the
// counterparty.  The test documents that safety-loss signature: the
// InvariantAuditor MUST trip (a run like this must fail loudly, never
// silently), while slashing still claws back the clique's stake.
TEST(AdversaryCampaign, CollusionAtQuorumIsTheDocumentedSafetyLoss) {
  Deployment d(adv_config(6002, 6, 0));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  AdversaryPlan plan;
  plan.collude(t0, t0 + 300.0, 5, 1.0);
  Campaign c(d, plan);
  c.start();
  ASSERT_EQ(c.offenders().size(), 5u);
  ASSERT_NE(c.clique(), nullptr);
  EXPECT_GE(c.clique()->clique_stake(), 4001u);  // at/above quorum

  ASSERT_TRUE(d.run_until(
      [&] {
        return c.counters().fork_pushes_accepted >= 1 &&
               c.counters().forged_packet_mints >= 1;
      },
      1200.0));

  // The unbacked voucher exists: value from nowhere.
  EXPECT_GT(d.cp().bank().balance("mallory", "transfer/" + d.cp_channel() + "/SOL"),
            0u);

  // Detection still works — every clique member is slashed even though
  // the horse has left the barn.
  ASSERT_TRUE(d.run_until([&] { return c.offenders_banned() == 5; }, 2000.0));
  EXPECT_EQ(c.economics().slashed_count, 5u);

  // The loud failure: conservation (and client-height sanity) broke.
  auditor.check_now("final");
  EXPECT_FALSE(auditor.clean());
  EXPECT_GE(auditor.violations_total(), 1u);
}

// --- griefing relayer ------------------------------------------------------

TEST(AdversaryCampaign, AckWithholdDelaysButNeverStopsDelivery) {
  Deployment d(adv_config(8001, 4, 0));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  AdversaryPlan plan;
  plan.ack_withhold(t0, t0 + 400.0, 120.0);
  Campaign c(d, plan);
  c.start();

  const ibc::Packet p1 = d.send_transfer_from_cp(10);
  d.run_for(20.0);
  const ibc::Packet p2 = d.send_transfer_from_cp(20);
  d.run_for(20.0);
  const ibc::Packet p3 = d.send_transfer_from_cp(30);

  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", voucher) == 60; }, 2500.0));

  // All acks eventually resolve — the withheld ones after the delay.
  ASSERT_TRUE(d.run_until(
      [&] {
        return !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p1.sequence) &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p2.sequence) &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p3.sequence);
      },
      2500.0));

  // The griefer actually won at least one delivery race and sat on the
  // ack; everything captured was eventually released.
  EXPECT_GE(c.counters().front_runs, 1u);
  EXPECT_EQ(c.counters().acks_withheld, c.counters().front_runs);
  EXPECT_EQ(c.counters().acks_released, c.counters().acks_withheld);
  // No double mint despite two relayers racing the same packets.
  EXPECT_EQ(d.guest().bank().total_supply(voucher), 60u);
  EXPECT_GT(c.attacker_fees_usd(), 0.0);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(AdversaryCampaign, UpdateClobberIsAbsorbedByThePipeline) {
  Deployment d(adv_config(8002, 4, 0));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  AdversaryPlan plan;
  plan.update_clobber(t0, t0 + 300.0);
  Campaign c(d, plan);
  c.start();

  (void)d.send_transfer_from_cp(40);
  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", voucher) == 40; }, 2500.0));

  // The clobber landed (the honest relayer's half-verified update was
  // reset at least once) yet delivery completed anyway.
  EXPECT_GE(c.counters().updates_clobbered, 1u);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(AdversaryCampaign, StaleReplayIsRejectedWithoutDoubleMint) {
  Deployment d(adv_config(8004, 4, 0));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  AdversaryPlan plan;
  // Short withhold makes the griefer a delivering relayer (replay
  // ammunition); the replay window then re-fires delivered packets.
  plan.ack_withhold(t0, t0 + 400.0, 20.0).stale_replay(t0, t0 + 400.0, 0.5);
  Campaign c(d, plan);
  c.start();

  (void)d.send_transfer_from_cp(15);
  d.run_for(20.0);
  (void)d.send_transfer_from_cp(25);

  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", voucher) == 40; }, 2500.0));
  // Let the replay window keep firing after delivery.
  ASSERT_TRUE(d.run_until([&] { return c.counters().stale_replays >= 1; }, 1500.0));
  d.run_for(120.0);

  // Replay protection held: supply is exactly what was sent, once.
  EXPECT_EQ(d.guest().bank().total_supply(voucher), 40u);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- fee-market attacker ---------------------------------------------------

TEST(AdversaryCampaign, FeeAttackForcesEscalationButDeliveryCompletes) {
  Deployment d(adv_config(8003, 4, 0));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  AdversaryPlan plan;
  plan.fee_spam(t0, t0 + 180.0, 8.0, 0.5, 10.0);
  Campaign c(d, plan);
  c.start();

  (void)d.send_transfer_from_cp(50);
  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", voucher) == 50; }, 3000.0));
  // Let the attack window run its full course before judging cadence.
  d.run_for(220.0);

  // The attacker sustained pressure (spam cadence + compiled fee
  // spike), the market actually moved, and the attack cost real money.
  EXPECT_GE(c.counters().spam_txs, 5u);
  EXPECT_GT(d.host().fault_counters().fee_spiked, 0u);
  EXPECT_GT(c.attacker_fees_usd(), 0.0);
  auditor.check_now("final");
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

// --- satellite 1: evidence survives a fisherman crash ----------------------

// Regression for the silent evidence loss: the fisherman stages its
// evidence in chunks, the finishing submit_evidence tx is blackholed,
// and a crash window kills the fisherman mid-prosecution.  Before PR 8
// restart() only flipped running_ = true — the staged evidence (and
// the offender's guilt) evaporated with process memory, because the
// equivocation window has closed and nothing will ever be re-gossiped.
// Now restart() re-derives pending prosecutions from on-chain staging
// buffers and finishes them.
TEST(AdversaryCampaign, FishermanCrashMidProsecutionRederivesEvidence) {
  DeploymentConfig cfg = adv_config(7001, 5, 2);
  cfg.guest.delta_seconds = 20.0;
  Deployment d(std::move(cfg));

  // The finishing tx vanishes until t=120; the fisherman process dies
  // at t=60 (chunks are staged by then) and restarts at t=120.
  d.host().fault_plan()
      .blackhole(0.0, 120.0, 1.0, "fisherman:evidence")
      .crash(60.0, 120.0, "fisherman");

  // One equivocation burst on the first block only — after the window
  // closes there is no second chance via gossip.
  AdversaryPlan plan;
  plan.equivocate(0.0, 30.0, 1, 1.0);
  Campaign c(d, plan);
  c.start();
  ASSERT_EQ(c.offenders().size(), 1u);
  const crypto::PublicKey offender = c.offenders()[0];

  ASSERT_TRUE(d.run_until([&] { return d.guest().is_banned(offender); }, 1500.0));

  ASSERT_NE(c.fisherman(), nullptr);
  EXPECT_GE(c.fisherman()->crash_count(), 1u);
  // The ban can only have come through the re-derivation path.
  EXPECT_GE(c.fisherman()->evidence_rederived(), 1u);
  EXPECT_EQ(d.guest().stake_of(offender), 0u);
  // First-detection survives the crash (it is measurement state).
  EXPECT_TRUE(c.fisherman()->first_detected(offender).has_value());
  EXPECT_GE(c.detection_latency().count(), 1u);
}

// --- shipped scenario table ------------------------------------------------

TEST(AdversaryScenarios, ShippedTableIsWellFormed) {
  const auto all = campaign_scenarios(100.0, 400.0);
  ASSERT_GE(all.size(), 9u);
  EXPECT_EQ(all[0].name, "none");
  EXPECT_TRUE(all[0].plan.empty());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_FALSE(all[i].plan.empty()) << all[i].name;
  }
  ASSERT_NE(find_scenario(all, "collude-subquorum"), nullptr);
  // The shipped collusion scenario stays below the paper roster's
  // quorum: 7 colluders x 1000 stake vs quorum 16001 of 24000.
  EXPECT_EQ(find_scenario(all, "collude-subquorum")->plan.clique_size(), 7);
  ASSERT_NE(find_scenario(all, "equivocate-fisherman-crash"), nullptr);
  EXPECT_TRUE(find_scenario(all, "equivocate-fisherman-crash")->crash_fisherman);
  EXPECT_EQ(find_scenario(all, "no-such-scenario"), nullptr);
}

}  // namespace
}  // namespace bmg::adversary
