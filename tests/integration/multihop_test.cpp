// Three chains: guest <-> counterparty A <-> counterparty B.
//
// The paper's motivation is connecting the host to the *whole* IBC
// ecosystem, not just one peer: once the guest speaks IBC, its tokens
// can hop onward through ordinary IBC links.  Here a guest-native
// token crosses to chain A (one voucher prefix), hops on to chain B
// (two stacked prefixes), and unwinds one hop back — with real light
// clients and proofs on every link.
#include <gtest/gtest.h>

#include "relayer/deployment.hpp"

namespace bmg::relayer {
namespace {

DeploymentConfig hop_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "mh-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  return cfg;
}

/// Minimal relayer for a direct IBC link between two ordinary chains.
class DirectLink {
 public:
  DirectLink(Deployment& d, counterparty::CounterpartyChain& a,
             counterparty::CounterpartyChain& b)
      : d_(d), a_(a), b_(b) {
    client_on_a_ = a_.ibc().add_client(
        std::make_unique<ibc::QuorumLightClient>(b_.chain_id(), b_.validators()));
    client_on_b_ = b_.ibc().add_client(
        std::make_unique<ibc::QuorumLightClient>(a_.chain_id(), a_.validators()));
  }

  /// Runs the full connection + channel handshake.
  void open() {
    conn_a_ = a_.ibc().conn_open_init(client_on_a_, client_on_b_);
    ibc::Height ha = sync_a_to_b();
    const auto& a_client = a_.ibc().client(client_on_a_);
    conn_b_ = b_.ibc().conn_open_try(
        client_on_b_, client_on_a_, conn_a_, a_.ibc().connection(conn_a_), ha,
        a_.prove_at(ha, ibc::connection_key(conn_a_)),
        ibc::ClientStateCommitment{a_client.tracked_chain_id(),
                                   a_client.tracked_validator_set_hash()},
        a_.prove_at(ha, ibc::client_key(client_on_a_)));
    ibc::Height hb = sync_b_to_a();
    const auto& b_client = b_.ibc().client(client_on_b_);
    a_.ibc().conn_open_ack(
        conn_a_, conn_b_, b_.ibc().connection(conn_b_), hb,
        b_.prove_at(hb, ibc::connection_key(conn_b_)),
        ibc::ClientStateCommitment{b_client.tracked_chain_id(),
                                   b_client.tracked_validator_set_hash()},
        b_.prove_at(hb, ibc::client_key(client_on_b_)));
    ha = sync_a_to_b();
    b_.ibc().conn_open_confirm(conn_b_, a_.ibc().connection(conn_a_), ha,
                               a_.prove_at(ha, ibc::connection_key(conn_a_)));

    chan_a_ = a_.ibc().chan_open_init("transfer", conn_a_, "transfer");
    ha = sync_a_to_b();
    chan_b_ = b_.ibc().chan_open_try("transfer", conn_b_, "transfer", chan_a_,
                                     a_.ibc().channel("transfer", chan_a_), ha,
                                     a_.prove_at(ha, ibc::channel_key("transfer", chan_a_)));
    hb = sync_b_to_a();
    a_.ibc().chan_open_ack("transfer", chan_a_, chan_b_,
                           b_.ibc().channel("transfer", chan_b_), hb,
                           b_.prove_at(hb, ibc::channel_key("transfer", chan_b_)));
    ha = sync_a_to_b();
    b_.ibc().chan_open_confirm("transfer", chan_b_, a_.ibc().channel("transfer", chan_a_),
                               ha, a_.prove_at(ha, ibc::channel_key("transfer", chan_a_)));
  }

  /// Relays a packet from A to B (commitment proof + recv + ack back).
  void relay_a_to_b(const ibc::Packet& p) {
    const ibc::Height ha = sync_a_to_b();
    const auto ack = b_.ibc().recv_packet(
        p, ha,
        a_.prove_at(ha, ibc::packet_key(ibc::KeyKind::kPacketCommitment, p.source_port,
                                        p.source_channel, p.sequence)),
        b_.height(), b_.now());
    const ibc::Height hb = sync_b_to_a();
    a_.ibc().acknowledge_packet(
        p, ack, hb,
        b_.prove_at(hb, ibc::packet_key(ibc::KeyKind::kPacketAck, p.dest_port,
                                        p.dest_channel, p.sequence)));
  }

  void relay_b_to_a(const ibc::Packet& p) {
    const ibc::Height hb = sync_b_to_a();
    const auto ack = a_.ibc().recv_packet(
        p, hb,
        b_.prove_at(hb, ibc::packet_key(ibc::KeyKind::kPacketCommitment, p.source_port,
                                        p.source_channel, p.sequence)),
        a_.height(), a_.now());
    const ibc::Height ha = sync_a_to_b();
    b_.ibc().acknowledge_packet(
        p, ack, ha,
        a_.prove_at(ha, ibc::packet_key(ibc::KeyKind::kPacketAck, p.dest_port,
                                        p.dest_channel, p.sequence)));
  }

  [[nodiscard]] const ibc::ChannelId& chan_a() const { return chan_a_; }
  [[nodiscard]] const ibc::ChannelId& chan_b() const { return chan_b_; }

 private:
  /// Waits for the next A block and updates B's client of A.
  ibc::Height sync_a_to_b() {
    const ibc::Height target = a_.height() + 1;
    (void)d_.run_until([&] { return a_.height() >= target; }, 60.0);
    for (ibc::Height h = b_last_ + 1; h <= a_.height(); ++h)
      b_.ibc().update_client(client_on_b_, a_.header_at(h).encode());
    b_last_ = a_.height();
    return b_last_;
  }

  ibc::Height sync_b_to_a() {
    const ibc::Height target = b_.height() + 1;
    (void)d_.run_until([&] { return b_.height() >= target; }, 60.0);
    for (ibc::Height h = a_last_ + 1; h <= b_.height(); ++h)
      a_.ibc().update_client(client_on_a_, b_.header_at(h).encode());
    a_last_ = b_.height();
    return a_last_;
  }

  Deployment& d_;
  counterparty::CounterpartyChain& a_;
  counterparty::CounterpartyChain& b_;
  ibc::ClientId client_on_a_, client_on_b_;
  ibc::ConnectionId conn_a_, conn_b_;
  ibc::ChannelId chan_a_, chan_b_;
  ibc::Height a_last_ = 0, b_last_ = 0;
};

TEST(MultiHop, GuestTokenReachesThirdChainAndUnwinds) {
  Deployment d(hop_config(61));
  d.open_ibc();  // guest <-> chain A

  // A third chain joins the simulation.
  counterparty::Config cfg_b;
  cfg_b.chain_id = "osmosis-1";
  cfg_b.num_validators = 10;
  counterparty::CounterpartyChain chain_b(d.sim(), Rng(999), cfg_b);
  chain_b.start();

  DirectLink link(d, d.cp(), chain_b);
  link.open();

  // Hop 1: alice (guest) -> bob (chain A).
  (void)d.send_transfer_from_guest(1000, host::FeePolicy::priority(5'000'000));
  const std::string v1 = "transfer/" + d.cp_channel() + "/SOL";
  ASSERT_TRUE(d.run_until([&] { return d.cp().bank().balance("bob", v1) == 1000; },
                          600.0));

  // Hop 2: bob (chain A) -> carol (chain B); the trace stacks.
  const ibc::Packet hop2 = d.cp().transfer().send_transfer(
      link.chan_a(), v1, 600, "bob", "carol", 0, d.sim().now() + 3600.0);
  link.relay_a_to_b(hop2);
  const std::string v2 = "transfer/" + link.chan_b() + "/" + v1;
  EXPECT_EQ(chain_b.bank().balance("carol", v2), 600u);
  // Chain A escrows the hop-1 voucher backing chain B's supply.
  EXPECT_EQ(d.cp().bank().balance(ibc::TokenTransferApp::escrow_account(link.chan_a()),
                                  v1),
            600u);
  EXPECT_EQ(d.cp().bank().balance("bob", v1), 400u);

  // Unwind hop 2: carol sends 600 back to bob; B burns, A unescrows.
  const ibc::Packet back = chain_b.transfer().send_transfer(
      link.chan_b(), v2, 600, "carol", "bob", 0, d.sim().now() + 3600.0);
  link.relay_b_to_a(back);
  EXPECT_EQ(chain_b.bank().balance("carol", v2), 0u);
  EXPECT_EQ(chain_b.bank().total_supply(v2), 0u);
  EXPECT_EQ(d.cp().bank().balance("bob", v1), 1000u);

  // Supply conservation across all three chains: guest escrow backs
  // exactly the outstanding hop-1 vouchers.
  EXPECT_EQ(d.guest().bank().balance(
                ibc::TokenTransferApp::escrow_account(d.guest_channel()), "SOL"),
            d.cp().bank().total_supply(v1));
}

}  // namespace
}  // namespace bmg::relayer
