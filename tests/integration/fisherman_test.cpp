// Fisherman flow end to end (paper §III-C): a Byzantine validator
// equivocates over gossip, the fisherman detects it, submits chunked
// evidence through the host, and the Guest Contract slashes the
// offender and rewards the fisherman.
#include <gtest/gtest.h>

#include "relayer/deployment.hpp"
#include "relayer/fisherman_agent.hpp"

namespace bmg::relayer {
namespace {

DeploymentConfig fisher_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 30.0;
  for (int i = 0; i < 5; ++i) {
    ValidatorProfile p;
    p.name = "fi-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  return cfg;
}

TEST(Fisherman, ByzantineValidatorGetsSlashed) {
  Deployment d(fisher_config(51));

  GossipBus bus;
  const crypto::PublicKey fisher_payer =
      crypto::PrivateKey::from_label("fisher-payer").public_key();
  d.host().airdrop(fisher_payer, 100 * host::kLamportsPerSol);
  FishermanAgent fisherman(d.sim(), d.host(), d.guest(), bus, fisher_payer);
  fisherman.start();

  // Validator 0 turns Byzantine: equivocates on every new block.
  ByzantineValidatorAgent byzantine(d.sim(), d.host(), d.guest(),
                                    d.validators()[0]->key(), bus);
  byzantine.start();

  d.start();
  const crypto::PublicKey offender = d.validators()[0]->pubkey();
  const std::uint64_t fisher_before = d.host().balance(fisher_payer);

  // Blocks appear every Δ = 30 s; the first one triggers the attack.
  ASSERT_TRUE(d.run_until([&] { return d.guest().is_banned(offender); }, 600.0));
  EXPECT_EQ(d.guest().stake_of(offender), 0u);
  EXPECT_GE(fisherman.evidence_submitted(), 1u);

  // The fisherman earned a reward (half of the slashed 100 stake),
  // net of the few base fees it paid.
  d.run_for(10.0);
  const auto& st = d.host().payer_stats(fisher_payer);
  EXPECT_EQ(d.host().balance(fisher_payer) + st.fees_lamports, fisher_before + 50);

  // The chain survives: the banned validator is out, but the remaining
  // four still reach quorum (400 of 500 stake > 334).
  const auto height = d.guest().head().header.height;
  d.run_for(120.0);
  EXPECT_GT(d.guest().head().header.height, height);
}

TEST(Fisherman, HonestGossipTriggersNothing) {
  Deployment d(fisher_config(52));
  GossipBus bus;
  const crypto::PublicKey fisher_payer =
      crypto::PrivateKey::from_label("fisher-payer2").public_key();
  d.host().airdrop(fisher_payer, 100 * host::kLamportsPerSol);
  FishermanAgent fisherman(d.sim(), d.host(), d.guest(), bus, fisher_payer);
  fisherman.start();
  d.start();
  d.run_for(40.0);

  // Honest validators gossip their real signatures.
  ASSERT_GE(d.guest().block_count(), 2u);
  const auto& blk = d.guest().block_at(1);
  for (int i = 0; i < 3; ++i) {
    const auto& key = d.validators()[static_cast<std::size_t>(i)]->key();
    bus.publish(SignatureGossip{key.public_key(), blk.header,
                                key.sign(blk.hash().view())});
  }
  d.run_for(30.0);
  EXPECT_EQ(fisherman.evidence_submitted(), 0u);
  for (const auto& v : d.validators()) EXPECT_FALSE(d.guest().is_banned(v->pubkey()));
}

TEST(Fisherman, FutureHeightSignatureProsecuted) {
  Deployment d(fisher_config(53));
  GossipBus bus;
  const crypto::PublicKey fisher_payer =
      crypto::PrivateKey::from_label("fisher-payer3").public_key();
  d.host().airdrop(fisher_payer, 100 * host::kLamportsPerSol);
  FishermanAgent fisherman(d.sim(), d.host(), d.guest(), bus, fisher_payer);
  fisherman.start();
  d.start();
  d.run_for(5.0);

  // Validator 1 signs a block far beyond the head (§III-C case 2).
  const auto& key = d.validators()[1]->key();
  guest::GuestBlock phantom = guest::GuestBlock::make(
      "guest-1", 999, d.sim().now(), Hash32{}, Hash32{}, 7,
      d.guest().epoch_validators());
  bus.publish(SignatureGossip{key.public_key(), phantom.header,
                              key.sign(phantom.hash().view())});

  ASSERT_TRUE(d.run_until([&] { return d.guest().is_banned(key.public_key()); }, 300.0));
  EXPECT_EQ(fisherman.evidence_accepted(), 1u);
}

}  // namespace
}  // namespace bmg::relayer
