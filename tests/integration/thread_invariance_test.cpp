// PR 4 determinism contract: every public result — trie root hashes,
// quorum verify bitmaps, end-to-end simulation transcripts — must be
// byte-identical for any BMG_THREADS value.  Each test computes its
// artifact at thread counts 1, 2 and 8 and compares.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "ibc/quorum.hpp"
#include "relayer/deployment.hpp"
#include "trie/trie.hpp"

namespace bmg {
namespace {

const std::size_t kThreadCounts[] = {1, 2, 8};

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  void TearDown() override { parallel::set_thread_count(0); }
};

Bytes key_of(const std::string& s) {
  const Hash32 h = crypto::Sha256::digest(bytes_of(s));
  return Bytes(h.bytes.begin(), h.bytes.end());
}

TEST_F(ThreadInvarianceTest, TrieRootsIdenticalAcrossThreadCounts) {
  // Large enough that commit levels cross the parallel threshold.
  std::vector<Hash32> roots;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    trie::SealableTrie t;
    for (int i = 0; i < 3000; ++i)
      t.set(key_of("k" + std::to_string(i)),
            crypto::Sha256::digest(bytes_of("v" + std::to_string(i))));
    t.commit();
    const Hash32 r1 = t.root_hash();
    // A second wave of overwrites exercises the dirty-sibling path.
    for (int i = 0; i < 3000; i += 3)
      t.set(key_of("k" + std::to_string(i)),
            crypto::Sha256::digest(bytes_of("w" + std::to_string(i))));
    t.commit();
    const Hash32 r2 = t.root_hash();
    EXPECT_NE(r1, r2);
    if (roots.empty()) {
      roots = {r1, r2};
    } else {
      EXPECT_EQ(roots[0], r1) << "threads=" << threads;
      EXPECT_EQ(roots[1], r2) << "threads=" << threads;
    }
  }
}

TEST_F(ThreadInvarianceTest, Sha256BatchIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 1000;
  std::vector<Bytes> msgs(kN);
  std::vector<ByteView> views(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    msgs[i] = bytes_of("msg-" + std::to_string(i));
    views[i] = msgs[i];
  }
  std::vector<std::vector<Hash32>> all;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    std::vector<Hash32> out(kN);
    crypto::sha256_batch(views.data(), kN, out.data());
    all.push_back(std::move(out));
  }
  EXPECT_EQ(all[0], all[1]);
  EXPECT_EQ(all[0], all[2]);
}

TEST_F(ThreadInvarianceTest, VerifyBitmapIdenticalAcrossThreadCounts) {
  // A batch with scattered corruptions: the bitmap must be the ground
  // truth regardless of how shards split the batch (each shard falls
  // back from the combined RLC equation to per-item checks on its own).
  constexpr int kN = 200;
  std::vector<crypto::PrivateKey> keys;
  std::vector<Hash32> digests;
  std::vector<crypto::Signature> sigs;
  for (int i = 0; i < kN; ++i) {
    keys.push_back(crypto::PrivateKey::from_label("inv-" + std::to_string(i)));
    digests.push_back(crypto::Sha256::digest(bytes_of("m" + std::to_string(i))));
    sigs.push_back(keys.back().sign(digests.back().view()));
  }
  // Corrupt every 17th signature.
  for (int i = 0; i < kN; i += 17) {
    auto raw = sigs[i].raw();
    raw[5] ^= 0x40;
    sigs[i] = crypto::Signature(raw);
  }
  std::vector<std::vector<bool>> bitmaps;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    std::vector<crypto::ed25519::VerifyItem> items;
    for (int i = 0; i < kN; ++i)
      items.push_back({keys[i].public_key().raw(), digests[i].view(), sigs[i].raw()});
    bitmaps.push_back(crypto::ed25519::verify_batch(items));
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(bitmaps[0][i], i % 17 != 0) << i;  // ground truth at threads=1
  }
  EXPECT_EQ(bitmaps[0], bitmaps[1]);
  EXPECT_EQ(bitmaps[0], bitmaps[2]);
}

TEST_F(ThreadInvarianceTest, QuorumVerifyIdenticalAcrossThreadCounts) {
  ibc::ValidatorSet set;
  std::vector<crypto::PrivateKey> keys;
  for (int i = 0; i < 96; ++i) {
    keys.push_back(crypto::PrivateKey::from_label("qinv-" + std::to_string(i)));
    set.add(keys.back().public_key(), 10 + static_cast<std::uint64_t>(i));
  }
  ibc::QuorumHeader hd;
  hd.chain_id = "inv-chain";
  hd.height = 7;
  hd.timestamp = 70.0;
  hd.validator_set_hash = set.hash();
  ibc::SignedQuorumHeader sh;
  sh.header = hd;
  const Hash32 digest = hd.signing_digest();
  for (const auto& k : keys) sh.signatures.emplace_back(k.public_key(), k.sign(digest.view()));

  std::vector<std::uint64_t> powers;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    powers.push_back(ibc::QuorumLightClient::verify_signatures(sh, set));
  }
  EXPECT_EQ(powers[0], powers[1]);
  EXPECT_EQ(powers[0], powers[2]);
}

relayer::DeploymentConfig sim_config() {
  relayer::DeploymentConfig cfg;
  cfg.seed = 1234;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    relayer::ValidatorProfile p;
    p.name = "inv-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 12;
  cfg.counterparty.block_interval_s = 6.0;
  return cfg;
}

TEST_F(ThreadInvarianceTest, EndToEndSimTranscriptIdentical) {
  // One full-stack sim per thread count; the transcript (every block
  // hash plus the final committed state root) must match exactly.
  std::vector<std::string> transcripts;
  for (const std::size_t threads : kThreadCounts) {
    parallel::set_thread_count(threads);
    relayer::Deployment d(sim_config());
    d.open_ibc();
    for (int i = 0; i < 3; ++i)
      (void)d.send_transfer_from_guest(50, host::FeePolicy::priority(1'000'000));
    d.run_for(400.0);
    std::string tr;
    for (std::size_t h = 0; h < d.guest().block_count(); ++h)
      tr += d.guest().block_at(h).hash().hex() + "\n";
    tr += "root:" + d.guest().store().root_hash().hex() + "\n";
    transcripts.push_back(std::move(tr));
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_EQ(transcripts[0], transcripts[2]);
}

}  // namespace
}  // namespace bmg
