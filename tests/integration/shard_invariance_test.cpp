// PR 7 determinism contract for sharded execution: a grid of complete
// deployment simulations run on the shard pool must produce the same
// bytes — per-cell CSV artifacts, merged auditor verdicts — at every
// --shard-workers value, including under fault injection and
// crash-restart windows.  Worker count only decides which thread runs
// which cell; it must never reach any artifact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "common/shard_pool.hpp"
#include "host/fault.hpp"
#include "relayer/deployment.hpp"

namespace bmg {
namespace {

const std::size_t kWorkerCounts[] = {1, 2, 8};

class ShardInvarianceTest : public ::testing::Test {
 protected:
  void TearDown() override { shard::set_worker_count(0); }
};

relayer::DeploymentConfig mini_config(std::uint64_t stream) {
  relayer::DeploymentConfig cfg;
  cfg.seed = 7001;
  cfg.rng_stream = stream;  // grid cell = deterministic stream split
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    relayer::ValidatorProfile p;
    p.name = "shard-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 12;
  cfg.counterparty.block_interval_s = 6.0;
  return cfg;
}

struct CellResult {
  std::string csv;
  audit::Verdict verdict;
};

/// One grid cell: a full deployment with auditor and a small transfer
/// workload, summarised as a CSV row (blocks, transfers, state root).
CellResult run_plain_cell(std::size_t cell) {
  relayer::Deployment d(mini_config(cell));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  for (int i = 0; i < 3; ++i)
    (void)d.send_transfer_from_guest(50, host::FeePolicy::priority(1'000'000));
  (void)d.send_transfer_from_cp(10);
  d.run_for(400.0);
  auditor.check_now("final");

  CellResult r;
  r.csv = std::to_string(cell) + "," + std::to_string(d.guest().block_count()) + "," +
          d.guest().store().root_hash().hex() + "\n";
  r.verdict = auditor.verdict("cell " + std::to_string(cell));
  return r;
}

/// One chaotic grid cell: the same deployment under a composed fault
/// plan (congestion, fee spikes, blackholes, duplicates, an outage)
/// plus crash-restart windows for the relayer and the crank.
CellResult run_chaos_cell(std::size_t cell) {
  relayer::Deployment d(mini_config(100 + cell));
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  d.host()
      .fault_plan()
      .congestion(t0 + 5, t0 + 60, 0.3)
      .fee_spike(t0 + 5, t0 + 60, 3.0)
      .blackhole(t0 + 10, t0 + 50, 0.5, "recv-packet")
      .duplicate(t0 + 5, t0 + 90, 0.3, "recv-packet")
      .outage(t0 + 65, t0 + 75)
      .crash(t0 + 20.0, t0 + 80.0, "relayer")
      .crash(t0 + 30.0, t0 + 120.0, "crank");
  EXPECT_EQ(d.schedule_crashes(), 2u);

  (void)d.send_transfer_from_cp(12);
  (void)d.send_transfer_from_guest(75, host::FeePolicy::priority(2'000'000));
  d.run_for(600.0);
  auditor.check_now("final");

  CellResult r;
  r.csv = std::to_string(cell) + "," + std::to_string(d.guest().block_count()) + "," +
          std::to_string(d.relayer().crash_count()) + "," +
          std::to_string(d.crank().crash_count()) + "," +
          d.guest().store().root_hash().hex() + "\n";
  r.verdict = auditor.verdict("chaos cell " + std::to_string(cell));
  return r;
}

/// Runs `n` cells on the shard pool and merges CSV + verdicts in grid
/// order — the same contract bench/grid.hpp implements.
template <typename CellFn>
std::pair<std::string, audit::Verdict> run_grid(std::size_t n, CellFn cell_fn) {
  std::vector<CellResult> cells(n);
  (void)shard::run_cells(n, [&](std::size_t c) { cells[c] = cell_fn(c); });
  std::string csv;
  std::vector<audit::Verdict> verdicts;
  for (const CellResult& c : cells) {
    csv += c.csv;
    verdicts.push_back(c.verdict);
  }
  return {csv, audit::merge_verdicts(verdicts)};
}

TEST_F(ShardInvarianceTest, GridCsvAndVerdictsIdenticalAcrossWorkerCounts) {
  std::string first_csv;
  audit::Verdict first;
  for (const std::size_t workers : kWorkerCounts) {
    shard::set_worker_count(workers);
    auto [csv, verdict] = run_grid(4, run_plain_cell);
    EXPECT_TRUE(verdict.clean()) << "workers=" << workers << "\n" << verdict.report;
    if (first_csv.empty()) {
      first_csv = csv;
      first = verdict;
      // Distinct streams must actually produce distinct cells.
      EXPECT_NE(csv.find('\n'), csv.rfind('\n'));
      continue;
    }
    EXPECT_EQ(csv, first_csv) << "workers=" << workers;
    EXPECT_EQ(verdict.checks, first.checks) << "workers=" << workers;
    EXPECT_EQ(verdict.violations, first.violations) << "workers=" << workers;
    EXPECT_EQ(verdict.report, first.report) << "workers=" << workers;
  }
}

TEST_F(ShardInvarianceTest, ChaosCrashGridIdenticalAcrossWorkerCounts) {
  std::string first_csv;
  audit::Verdict first;
  for (const std::size_t workers : {1u, 4u}) {
    shard::set_worker_count(workers);
    auto [csv, verdict] = run_grid(2, run_chaos_cell);
    EXPECT_TRUE(verdict.clean()) << "workers=" << workers << "\n" << verdict.report;
    if (first_csv.empty()) {
      first_csv = csv;
      first = verdict;
      continue;
    }
    EXPECT_EQ(csv, first_csv) << "workers=" << workers;
    EXPECT_EQ(verdict.checks, first.checks) << "workers=" << workers;
    EXPECT_EQ(verdict.report, first.report) << "workers=" << workers;
  }
}

TEST_F(ShardInvarianceTest, SerialRunMatchesShardedRun) {
  // The exact-serial path (workers=1, inline loop) and the pool path
  // must agree cell for cell — not just in aggregate.
  shard::set_worker_count(1);
  const CellResult serial = run_plain_cell(2);
  shard::set_worker_count(4);
  std::vector<CellResult> cells(4);
  (void)shard::run_cells(4, [&](std::size_t c) { cells[c] = run_plain_cell(c); });
  EXPECT_EQ(cells[2].csv, serial.csv);
  EXPECT_EQ(cells[2].verdict.checks, serial.verdict.checks);
  EXPECT_EQ(cells[2].verdict.violations, serial.verdict.violations);
}

}  // namespace
}  // namespace bmg
