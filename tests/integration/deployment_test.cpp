// Full-stack integration: host chain + Guest Contract + validators +
// crank + relayer + counterparty chain, real handshake, real packets,
// real proofs, real Ed25519 everywhere.
#include "relayer/deployment.hpp"

#include <gtest/gtest.h>

namespace bmg::relayer {
namespace {

DeploymentConfig fast_config(std::uint64_t seed = 42) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  // Small validator roster keeps integration tests quick.
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "itest-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 12;
  cfg.counterparty.block_interval_s = 6.0;
  return cfg;
}

TEST(Deployment, IbcHandshakeOpensBothEnds) {
  Deployment d(fast_config());
  d.open_ibc();
  const auto& guest_end = d.guest().ibc().channel("transfer", d.guest_channel());
  const auto& cp_end = d.cp().ibc().channel("transfer", d.cp_channel());
  EXPECT_EQ(guest_end.state, ibc::ChannelState::kOpen);
  EXPECT_EQ(cp_end.state, ibc::ChannelState::kOpen);
  EXPECT_EQ(guest_end.counterparty_channel, d.cp_channel());
  EXPECT_EQ(cp_end.counterparty_channel, d.guest_channel());
}

TEST(Deployment, GuestToCounterpartyTransfer) {
  Deployment d(fast_config(1));
  d.open_ibc();

  const auto record = d.send_transfer_from_guest(2500, host::FeePolicy::priority(5'000'000));
  // Wait until the voucher lands on the counterparty.
  const std::string voucher = "transfer/" + d.cp_channel() + "/SOL";
  ASSERT_TRUE(d.run_until(
      [&] { return d.cp().bank().balance("bob", voucher) == 2500; }, 600.0));

  EXPECT_TRUE(record->executed);
  EXPECT_TRUE(record->finalised);
  EXPECT_GT(record->finalised_at, record->executed_at);
  EXPECT_EQ(d.guest().bank().balance("alice", "SOL"), 1'000'000u - 2500u);
  EXPECT_EQ(d.guest().bank().balance(ibc::TokenTransferApp::escrow_account(
                d.guest_channel()), "SOL"),
            2500u);

  // The ack eventually flows back and resolves the commitment.
  ASSERT_TRUE(d.run_until(
      [&] {
        return !d.guest().ibc().packet_pending("transfer", d.guest_channel(),
                                               record->sequence);
      },
      1200.0));
}

TEST(Deployment, CounterpartyToGuestTransfer) {
  Deployment d(fast_config(2));
  d.open_ibc();

  const ibc::Packet p = d.send_transfer_from_cp(777);
  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", voucher) == 777; }, 1200.0));

  // The relayer needed at least one light client update (~tens of
  // txs) and one multi-tx ReceivePacket delivery.
  EXPECT_GE(d.relayer().update_tx_counts().count(), 1u);
  EXPECT_GE(d.relayer().recv_tx_counts().count(), 1u);
  EXPECT_GE(d.relayer().recv_tx_counts().min(), 2.0);

  // Ack flows back to the counterparty and releases the commitment.
  ASSERT_TRUE(d.run_until(
      [&] {
        return !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p.sequence);
      },
      1200.0));
  EXPECT_EQ(d.cp().bank().balance("bob", "PICA"), 1'000'000u - 777u);
}

TEST(Deployment, RoundTripConservesSupply) {
  Deployment d(fast_config(3));
  d.open_ibc();

  (void)d.send_transfer_from_guest(1000, host::FeePolicy::priority(5'000'000));
  const std::string voucher = "transfer/" + d.cp_channel() + "/SOL";
  ASSERT_TRUE(d.run_until(
      [&] { return d.cp().bank().balance("bob", voucher) == 1000; }, 600.0));

  // Send 400 back home.
  d.cp().transfer().send_transfer(d.cp_channel(), voucher, 400, "bob", "alice", 0,
                                  d.sim().now() + 3600.0);
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", "SOL") == 1'000'000u - 600u; },
      1200.0));

  // Escrow backs exactly the outstanding vouchers.
  EXPECT_EQ(d.cp().bank().total_supply(voucher), 600u);
  EXPECT_EQ(d.guest().bank().balance(
                ibc::TokenTransferApp::escrow_account(d.guest_channel()), "SOL"),
            600u);
  EXPECT_EQ(d.guest().bank().total_supply("SOL"), 1'000'000u);
}

TEST(Deployment, MultiplePacketsAndBoundedStorage) {
  Deployment d(fast_config(4));
  d.open_ibc();

  const std::string voucher = "transfer/" + d.cp_channel() + "/SOL";
  for (int i = 0; i < 10; ++i) {
    (void)d.send_transfer_from_guest(100, host::FeePolicy::priority(5'000'000));
    d.run_for(30.0);
  }
  ASSERT_TRUE(d.run_until(
      [&] { return d.cp().bank().balance("bob", voucher) == 1000; }, 1200.0));

  // Sealable trie: guest live state stays small despite traffic.
  EXPECT_LT(d.guest().store().stats().node_count(), 300u);
}

TEST(Deployment, SilentValidatorsStillReachQuorumWithFullRoster) {
  // Paper roster: 24 validators, 7 silent; quorum needs 17 of 24.
  DeploymentConfig cfg;
  cfg.seed = 5;
  cfg.guest.delta_seconds = 60.0;
  cfg.counterparty.num_validators = 12;
  cfg.validators = paper_validators();
  // Remove validator #1's heavy tail for test speed.
  cfg.validators[0].latency = sim::LatencyProfile::from_quantiles(5.6, 7.6, 0.8);

  Deployment d(std::move(cfg));
  d.start();
  d.run_for(2.0);
  // Force an empty block via Δ and watch it finalise.
  d.run_for(120.0);
  ASSERT_TRUE(d.run_until(
      [&] {
        return d.guest().head().header.height >= 1 && d.guest().head().finalised;
      },
      600.0));
  const auto& blk = d.guest().block_at(1);
  // Exactly the active validators can have signed.
  EXPECT_GE(blk.signers.size(), 17u);
}

TEST(Deployment, TimeoutRefundsOnGuestSide) {
  Deployment d(fast_config(6));
  d.open_ibc();

  // A transfer with a 30 s timeout that the relayer cannot meet: pause
  // relaying by sending while we simply never let the cp deliver...
  // Simplest honest approach: send with a timeout in the past relative
  // to the counterparty's clock so recv is rejected, then relay the
  // timeout proof manually.
  const double timeout_at = d.sim().now() + 1.0;
  host::Transaction tx;
  tx.payer = d.client_payer();
  tx.fee = host::FeePolicy::priority(5'000'000);
  tx.instructions.push_back(guest::ix::send_transfer(
      d.guest_channel(), "SOL", 5000, "alice", "bob", 0, timeout_at));
  bool sent = false;
  std::uint64_t seq = d.guest().ibc().next_send_sequence("transfer", d.guest_channel());
  d.host().submit(std::move(tx), [&](const host::TxResult& r) { sent = r.success; });
  ASSERT_TRUE(d.run_until([&] { return sent; }, 60.0));
  EXPECT_EQ(d.guest().bank().balance("alice", "SOL"), 1'000'000u - 5000u);

  // Let the counterparty advance past the timeout; its recv_packet
  // will reject the packet, so no receipt ever exists.
  d.run_for(30.0);

  // Manually relay the timeout (absence proof at the latest cp height).
  const ibc::Height cp_h = d.cp().height();
  bool updated = false;
  d.relayer().update_guest_client(cp_h, [&] { updated = true; });
  ASSERT_TRUE(d.run_until([&] { return updated; }, 600.0));

  const ibc::Packet packet = [&] {
    // Reconstruct the packet the contract committed.
    for (ibc::Height h = d.guest().head().header.height;; --h) {
      for (const auto& p : d.guest().block_at(h).packets)
        if (p.sequence == seq) return p;
      if (h == 0) break;
    }
    throw std::runtime_error("packet not found in any block");
  }();

  bool timed_out = false;
  d.relayer().deliver_timeout_to_guest(
      packet, cp_h, [&](const RelayerAgent::SequenceOutcome& out) {
        timed_out = out.ok;
      });
  ASSERT_TRUE(d.run_until([&] { return timed_out; }, 600.0));
  // Refund applied.
  EXPECT_EQ(d.guest().bank().balance("alice", "SOL"), 1'000'000u);
}

TEST(Deployment, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Deployment d(fast_config(seed));
    d.open_ibc();
    (void)d.send_transfer_from_guest(123, host::FeePolicy::priority(5'000'000));
    d.run_for(120.0);
    return d.sim().events_processed();
  };
  EXPECT_EQ(run(77), run(77));
}

}  // namespace
}  // namespace bmg::relayer
