// Safety against misbehaving relayers (paper §III-C: "Through the
// state proofs, both blockchains can verify each other's state
// ensuring safety even if Relayers misbehave") and a randomized soak
// run asserting system-wide invariants.
#include <gtest/gtest.h>

#include "relayer/deployment.hpp"

namespace bmg::relayer {
namespace {

DeploymentConfig adv_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "adv-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  return cfg;
}

class MaliciousRelayer : public ::testing::Test {
 protected:
  MaliciousRelayer() : d_(adv_config(71)) {
    d_.open_ibc();
    evil_ = crypto::PrivateKey::from_label("evil-relayer").public_key();
    d_.host().airdrop(evil_, 1000 * host::kLamportsPerSol);
  }

  Deployment d_;
  crypto::PublicKey evil_;
};

TEST_F(MaliciousRelayer, ForgedPacketRejectedByGuest) {
  // The evil relayer invents a packet that the counterparty never sent
  // and "proves" it with a proof for a different key.
  ibc::Packet forged;
  forged.sequence = 1;
  forged.source_port = "transfer";
  forged.source_channel = d_.cp_channel();
  forged.dest_port = "transfer";
  forged.dest_channel = d_.guest_channel();
  ibc::TokenPacketData data{"PICA", 1'000'000, "bob", "alice"};
  forged.data = data.encode();
  forged.timeout_timestamp = d_.sim().now() + 3600.0;

  // Bring the guest's client up to date (headers are genuine).
  d_.run_for(10.0);
  const ibc::Height h = d_.cp().height();
  bool updated = false;
  d_.relayer().update_guest_client(h, [&] { updated = true; });
  ASSERT_TRUE(d_.run_until([&] { return updated; }, 600.0));

  // A proof of some *other* key cannot satisfy the forged commitment.
  const auto wrong_key = ibc::channel_key("transfer", d_.cp_channel());
  const trie::Proof proof = d_.cp().prove_at(h, wrong_key);
  Encoder payload;
  payload.bytes(forged.encode()).u64(h).bytes(proof.serialize());

  std::uint64_t buffer_id = 0;
  auto txs = d_.relayer().chunked_call(payload.out(), guest::ix::receive_packet(0),
                                       &buffer_id, "evil-recv");
  txs.back().instructions[0] = guest::ix::receive_packet(buffer_id);
  for (auto& tx : txs) tx.payer = evil_;

  bool done = false, ok = true;
  std::string error;
  d_.relayer().submit_sequence(std::move(txs),
                               [&](const RelayerAgent::SequenceOutcome& out) {
                                 done = true;
                                 ok = out.ok;
                               });
  ASSERT_TRUE(d_.run_until([&] { return done; }, 600.0));
  EXPECT_FALSE(ok);  // the ReceivePacket transaction failed
  EXPECT_EQ(d_.guest().bank().balance(
                "alice", "transfer/" + d_.guest_channel() + "/PICA"),
            0u);  // nothing minted
}

TEST_F(MaliciousRelayer, ForgedHeaderRejectedByUpdateMachinery) {
  // A forged counterparty header with no quorum behind it cannot pass
  // the chunked update flow: Begin accepts the bytes, but honest
  // signatures over the forged digest do not exist, so Finish fails.
  ibc::QuorumHeader forged;
  forged.chain_id = d_.cp().chain_id();
  forged.height = d_.cp().height() + 100;
  forged.timestamp = d_.sim().now();
  forged.state_root.bytes[0] = 0xEE;  // attacker-chosen state
  forged.validator_set_hash = d_.cp().validators().hash();

  Encoder payload;
  payload.bytes(forged.encode());
  payload.boolean(false);

  std::uint64_t buffer_id = 0;
  auto txs = d_.relayer().chunked_call(payload.out(), guest::ix::begin_client_update(0),
                                       &buffer_id, "evil-update");
  txs.back().instructions[0] = guest::ix::begin_client_update(buffer_id);
  // The attacker signs with its own key — not in the validator set.
  const crypto::PrivateKey evil_key = crypto::PrivateKey::from_label("evil-relayer");
  const Hash32 digest = forged.signing_digest();
  host::Transaction sig_tx;
  sig_tx.payer = evil_;
  sig_tx.instructions.push_back(guest::ix::verify_update_signatures());
  sig_tx.sig_verifies.push_back(host::SigVerify{
      evil_key.public_key(), digest,
      evil_key.sign(digest.view())});
  txs.push_back(std::move(sig_tx));
  host::Transaction fin;
  fin.payer = evil_;
  fin.instructions.push_back(guest::ix::finish_client_update());
  txs.push_back(std::move(fin));
  for (auto& tx : txs) tx.payer = evil_;

  bool done = false, ok = true;
  d_.relayer().submit_sequence(std::move(txs),
                               [&](const RelayerAgent::SequenceOutcome& out) {
                                 done = true;
                                 ok = out.ok;
                               });
  ASSERT_TRUE(d_.run_until([&] { return done; }, 600.0));
  EXPECT_FALSE(ok);
  EXPECT_LT(d_.guest().counterparty_client().latest_height(), forged.height);
}

TEST_F(MaliciousRelayer, ForgedGuestHeaderRejectedByCounterparty) {
  // The counterparty's guest light client verifies quorum signatures
  // itself; an unsigned forged header throws.
  guest::GuestBlock forged = guest::GuestBlock::make(
      "guest-1", d_.guest().head().header.height + 5, d_.sim().now(), Hash32{},
      Hash32{}, 1, d_.guest().epoch_validators());
  EXPECT_THROW(d_.cp().ibc().update_client(d_.guest_client_on_cp(),
                                           forged.to_signed_header().encode()),
               ibc::IbcError);
}

// --- randomized soak ---------------------------------------------------

class SoakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoakTest, InvariantsHoldUnderRandomTraffic) {
  Deployment d(adv_config(GetParam()));
  d.open_ibc();
  Rng rng(GetParam() ^ 0xABCD);

  const std::string voucher_cp = "transfer/" + d.cp_channel() + "/SOL";
  const std::string voucher_guest = "transfer/" + d.guest_channel() + "/PICA";
  int guest_sends = 0, cp_sends = 0;
  for (int i = 0; i < 30; ++i) {
    if (rng.chance(0.5)) {
      (void)d.send_transfer_from_guest(
          1 + rng.uniform_int(500),
          rng.chance(0.3) ? host::FeePolicy::bundle(host::usd_to_lamports(3.019))
                          : host::FeePolicy::priority(5'000'000));
      ++guest_sends;
    }
    if (rng.chance(0.3)) {
      (void)d.send_transfer_from_cp(1 + rng.uniform_int(100));
      ++cp_sends;
    }
    d.run_for(rng.exponential(60.0));
  }
  d.run_for(2400.0);  // drain

  // Invariant 1: escrow on each chain backs the counterpart's voucher
  // supply exactly.
  EXPECT_EQ(d.guest().bank().balance(
                ibc::TokenTransferApp::escrow_account(d.guest_channel()), "SOL"),
            d.cp().bank().total_supply(voucher_cp));
  EXPECT_EQ(d.cp().bank().balance(
                ibc::TokenTransferApp::escrow_account(d.cp_channel()), "PICA"),
            d.guest().bank().total_supply(voucher_guest));

  // Invariant 2: native supplies unchanged.
  EXPECT_EQ(d.guest().bank().total_supply("SOL"), 1'000'000u);
  EXPECT_EQ(d.cp().bank().total_supply("PICA"), 1'000'000u);

  // Invariant 3: every finalised guest block carries a stake quorum of
  // valid signatures.
  for (ibc::Height h = 1; h < d.guest().block_count(); ++h) {
    const auto& blk = d.guest().block_at(h);
    if (!blk.finalised) continue;
    EXPECT_GE(blk.signed_stake(), blk.signing_set->quorum_stake()) << h;
    const Hash32 digest = blk.hash();
    for (const auto& [key, sig] : blk.signers)
      EXPECT_TRUE(crypto::verify(key, digest.view(), sig)) << h;
  }

  // Invariant 4: guest live state stays bounded (sealing works).
  EXPECT_LT(d.guest().store().stats().node_count(), 400u);

  // Invariant 5: no transaction sequence was lost mid-flight forever.
  EXPECT_EQ(d.host().dropped_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(81, 82, 83));

}  // namespace
}  // namespace bmg::relayer
