// Permissionless relayers (paper §III-C): several independent relayers
// racing on the same channel must not double-deliver — the sealable
// trie's receipts and the light client's monotonicity make duplicates
// harmless no-ops paid for by the losing relayer.
#include <gtest/gtest.h>

#include "relayer/deployment.hpp"

namespace bmg::relayer {
namespace {

DeploymentConfig mr_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "mr-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  return cfg;
}

TEST(MultiRelayer, CompetingRelayersDeliverExactlyOnce) {
  Deployment d(mr_config(31));
  d.open_ibc();

  // A second, independent relayer racing the deployment's built-in one.
  const auto payer2 = crypto::PrivateKey::from_label("relayer-2").public_key();
  d.host().airdrop(payer2, 10'000 * host::kLamportsPerSol);
  RelayerConfig rcfg;
  rcfg.poll_latency_s = 0.45;  // slightly slower poller
  RelayerAgent second(d.sim(), d.host(), d.guest(), d.cp(), d.guest_client_on_cp(),
                      payer2, rcfg);
  second.start();

  // Traffic in both directions.
  for (int i = 0; i < 5; ++i) {
    (void)d.send_transfer_from_guest(100, host::FeePolicy::priority(5'000'000));
    (void)d.send_transfer_from_cp(10);
    d.run_for(45.0);
  }
  d.run_for(900.0);

  // Exactly-once delivery on both chains despite the race.
  const std::string voucher_cp = "transfer/" + d.cp_channel() + "/SOL";
  const std::string voucher_guest = "transfer/" + d.guest_channel() + "/PICA";
  EXPECT_EQ(d.cp().bank().balance("bob", voucher_cp), 500u);
  EXPECT_EQ(d.guest().bank().balance("alice", voucher_guest), 50u);

  // Both relayers did real work between them.
  EXPECT_EQ(d.relayer().packets_relayed_to_cp() + second.packets_relayed_to_cp(), 5u);
  EXPECT_GE(d.relayer().update_tx_counts().count() + second.update_tx_counts().count(),
            1u);
}

TEST(MultiRelayer, SecondRelayerAloneKeepsBridgeAlive) {
  // The built-in relayer never starts; an external one carries all
  // traffic (liveness does not depend on any specific relayer).
  DeploymentConfig cfg = mr_config(32);
  Deployment d(std::move(cfg));
  // NOTE: open_ibc starts the built-in relayer; emulate failure by
  // letting it run the handshake, then adding the backup relayer for
  // the packet phase (the race in the other test covers overlap).
  d.open_ibc();

  const auto payer2 = crypto::PrivateKey::from_label("relayer-3").public_key();
  d.host().airdrop(payer2, 10'000 * host::kLamportsPerSol);
  RelayerAgent backup(d.sim(), d.host(), d.guest(), d.cp(), d.guest_client_on_cp(),
                      payer2, RelayerConfig{});
  backup.start();

  (void)d.send_transfer_from_cp(77);
  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", voucher) == 77; }, 1200.0));
}

}  // namespace
}  // namespace bmg::relayer
