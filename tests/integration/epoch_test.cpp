// End-to-end epoch machinery: validator-set rotation on the guest
// chain propagating through relayed headers into the counterparty's
// light client, including a mid-run validator join via staking.
#include <gtest/gtest.h>

#include "relayer/deployment.hpp"

namespace bmg::relayer {
namespace {

DeploymentConfig epoch_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 30.0;
  // Epochs every ~2 simulated minutes (300 host slots of 0.4 s).
  cfg.guest.epoch_length_host_slots = 300;
  cfg.guest.max_validators = 8;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "ep-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  return cfg;
}

TEST(EpochRotation, RotationBlocksFlowThroughLightClient) {
  Deployment d(epoch_config(21));
  d.open_ibc();

  // Run through several epochs.
  const auto start_blocks = d.guest().block_count();
  d.run_for(600.0);
  int rotations = 0;
  for (ibc::Height h = 1; h < d.guest().block_count(); ++h)
    if (d.guest().block_at(h).last_in_epoch()) ++rotations;
  EXPECT_GE(rotations, 2) << "blocks " << start_blocks << " -> "
                          << d.guest().block_count();

  // The counterparty's guest client kept up across rotations: a fresh
  // transfer must still complete end to end.
  (void)d.send_transfer_from_guest(111, host::FeePolicy::priority(5'000'000));
  const std::string voucher = "transfer/" + d.cp_channel() + "/SOL";
  EXPECT_TRUE(d.run_until(
      [&] { return d.cp().bank().balance("bob", voucher) == 111; }, 600.0));
}

TEST(EpochRotation, MidRunValidatorJoinEntersSetAndSigns) {
  Deployment d(epoch_config(22));
  d.start();
  d.run_for(5.0);

  // A new validator stakes more than anyone else.
  const crypto::PrivateKey whale = crypto::PrivateKey::from_label("ep-whale");
  d.host().airdrop(whale.public_key(), 100 * host::kLamportsPerSol);
  host::Transaction tx;
  tx.payer = whale.public_key();
  tx.instructions.push_back(guest::ix::stake(5'000));
  bool staked = false;
  d.host().submit(std::move(tx), [&](const host::TxResult& r) { staked = r.success; });
  ASSERT_TRUE(d.run_until([&] { return staked; }, 60.0));

  // After the next epoch boundary the whale is in the validator set.
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().epoch_validators().contains(whale.public_key()); },
      900.0));
  // Quorum now includes the whale's dominant stake, so blocks need its
  // signature; run a whale agent to keep the chain alive.
  ValidatorProfile profile;
  profile.name = "whale";
  profile.stake = 5'000;
  profile.latency = sim::LatencyProfile::from_quantiles(1.0, 2.0, 0.3);
  profile.fee = host::FeePolicy::priority(1'000'000);
  ValidatorAgent agent(d.sim(), d.host(), d.guest(), whale, profile, Rng(5));
  agent.start();

  const auto height_before = d.guest().head().header.height;
  d.run_for(300.0);
  EXPECT_GT(d.guest().head().header.height, height_before);
  EXPECT_GT(agent.signatures_submitted(), 0u);
}

TEST(EpochRotation, StakeExitShrinksNextEpoch) {
  Deployment d(epoch_config(23));
  d.start();
  d.run_for(5.0);
  ASSERT_EQ(d.guest().epoch_validators().size(), 4u);

  // Validator 3 unstakes fully; after rotation the set has 3 members.
  const crypto::PrivateKey& leaver = d.validators()[3]->key();
  host::Transaction tx;
  tx.payer = leaver.public_key();
  tx.instructions.push_back(guest::ix::unstake(100));
  bool done = false;
  d.host().submit(std::move(tx), [&](const host::TxResult& r) { done = r.success; });
  ASSERT_TRUE(d.run_until([&] { return done; }, 60.0));

  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().epoch_validators().size() == 3; }, 900.0));
  EXPECT_FALSE(d.guest().epoch_validators().contains(leaver.public_key()));
}

}  // namespace
}  // namespace bmg::relayer
