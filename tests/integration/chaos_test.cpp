// Chaos suite: the full deployment under scheduled host faults
// (congestion, outages, blackholes, duplicates, fee spikes).  The
// resilient relayer pipeline must achieve 100% eventual packet
// delivery with bounded retries and no stalled sequences, token supply
// must stay conserved (no duplicate mints), and the same seed must
// reproduce the identical event trace.
//
// CI runs this suite under several fixed seeds via BMG_CHAOS_SEED.
#include <gtest/gtest.h>

#include <cstdlib>

#include "audit/auditor.hpp"
#include "relayer/deployment.hpp"
#include "relayer/fisherman_agent.hpp"

namespace bmg::relayer {
namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("BMG_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 10);
  return 1001;
}

DeploymentConfig chaos_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "chaos-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(2.0, 3.0, 0.4);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  cfg.counterparty.block_interval_s = 6.0;
  return cfg;
}

/// Installs the composed fault schedule relative to `t0` (handshake is
/// done by then; the faults hit steady-state relaying).  Congestion is
/// global but moderate so validators keep producing blocks; blackholes
/// target the relayer's own labels to force timeout-driven retries.
void install_chaos_plan(host::Chain& host, double t0) {
  host.fault_plan()
      .congestion(t0 + 5, t0 + 60, 0.3)
      .fee_spike(t0 + 5, t0 + 60, 3.0)
      .blackhole(t0 + 10, t0 + 50, 0.7, "recv-packet")
      .blackhole(t0 + 10, t0 + 50, 0.5, "lc-update")
      .duplicate(t0 + 5, t0 + 90, 0.3, "recv-packet")
      .outage(t0 + 65, t0 + 75);
}

std::uint64_t total_faults(const host::FaultCounters& c) {
  return c.congestion_delayed + c.outage_deferred + c.outage_expired + c.blackholed +
         c.duplicated + c.fee_spiked;
}

TEST(Chaos, EventualDeliveryUnderComposedFaults) {
  Deployment d(chaos_config(chaos_seed()));
  // The invariant auditor re-checks conservation / sequences / commit
  // roots / client heights after every block while the faults fire.
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});
  install_chaos_plan(d.host(), d.sim().now());

  // Three counterparty->guest transfers (the direction that crosses
  // the faulty host) staggered into the fault windows, plus one
  // guest->counterparty transfer whose ack must cross back.
  const ibc::Packet p1 = d.send_transfer_from_cp(10);
  d.run_for(15.0);
  const ibc::Packet p2 = d.send_transfer_from_cp(20);
  d.run_for(15.0);
  const ibc::Packet p3 = d.send_transfer_from_cp(30);
  const auto rec = d.send_transfer_from_guest(500, host::FeePolicy::priority(5'000'000));

  const std::string in_voucher = "transfer/" + d.guest_channel() + "/PICA";
  const std::string out_voucher = "transfer/" + d.cp_channel() + "/SOL";

  // 100% eventual delivery, both directions.
  ASSERT_TRUE(d.run_until(
      [&] {
        return d.guest().bank().balance("alice", in_voucher) == 60 &&
               d.cp().bank().balance("bob", out_voucher) == 500;
      },
      4000.0));

  // All acks resolve: no packet left pending on either side.
  ASSERT_TRUE(d.run_until(
      [&] {
        return !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p1.sequence) &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p2.sequence) &&
               !d.cp().ibc().packet_pending("transfer", d.cp_channel(), p3.sequence) &&
               !d.guest().ibc().packet_pending("transfer", d.guest_channel(),
                                               rec->sequence);
      },
      4000.0));

  // No duplicate mints despite ghost replays: supply is exactly the
  // delivered amounts, and escrow backs the outstanding vouchers.
  EXPECT_EQ(d.guest().bank().total_supply(in_voucher), 60u);
  EXPECT_EQ(d.cp().bank().total_supply(out_voucher), 500u);
  EXPECT_EQ(d.guest().bank().total_supply("SOL"), 1'000'000u);
  EXPECT_EQ(d.cp().bank().total_supply("PICA"), 1'000'000u);

  // The faults actually fired...
  EXPECT_GT(total_faults(d.host().fault_counters()), 0u);
  // ...and the pipeline absorbed them within budget: nothing stalled.
  const TxPipeline& pipe = d.relayer().pipeline();
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_LT(pipe.retries_total(), 300u);  // bounded, not runaway
  EXPECT_EQ(d.relayer().failed_sequences(), pipe.sequences_failed());

  // Every invariant held at every block throughout the fault schedule.
  auditor.check_now("final");
  EXPECT_GT(auditor.checks_run(), 0u);
  EXPECT_TRUE(auditor.clean()) << auditor.report();
}

TEST(Chaos, SameSeedReproducesIdenticalTrace) {
  const auto run_once = [] {
    Deployment d(chaos_config(chaos_seed()));
    d.open_ibc();
    install_chaos_plan(d.host(), d.sim().now());
    (void)d.send_transfer_from_cp(42);
    d.run_for(600.0);
    return std::make_tuple(d.sim().events_processed(),
                           d.guest().bank().balance(
                               "alice", "transfer/" + d.guest_channel() + "/PICA"),
                           d.relayer().pipeline().retries_total(),
                           d.host().fault_counters().blackholed);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Chaos, EmptyPlanMeansZeroFaultsAndZeroRetries) {
  Deployment d(chaos_config(chaos_seed()));
  d.open_ibc();
  ASSERT_TRUE(d.host().fault_plan().empty());

  (void)d.send_transfer_from_cp(99);
  const std::string voucher = "transfer/" + d.guest_channel() + "/PICA";
  ASSERT_TRUE(d.run_until(
      [&] { return d.guest().bank().balance("alice", voucher) == 99; }, 1200.0));

  // The resilient pipeline on a clean host behaves exactly like the
  // naive submitter: no retries, no timeouts, no escalations, and the
  // fault layer never fired.
  EXPECT_EQ(total_faults(d.host().fault_counters()), 0u);
  const TxPipeline& pipe = d.relayer().pipeline();
  EXPECT_EQ(pipe.retries_total(), 0u);
  EXPECT_EQ(pipe.timeouts_total(), 0u);
  EXPECT_EQ(pipe.escalations_total(), 0u);
  EXPECT_TRUE(pipe.dead_letters().empty());
  EXPECT_EQ(pipe.sequences_failed(), 0u);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

// Regression for the silent-evidence bug: the fisherman used to walk
// its transaction chain with bare Chain::submit and simply stop on the
// first lost transaction, so a blackholed upload meant the offender
// kept its stake forever.  Through the pipeline, evidence survives.
TEST(Chaos, FishermanEvidenceSurvivesBlackhole) {
  DeploymentConfig cfg = chaos_config(chaos_seed() + 7);
  cfg.guest.delta_seconds = 30.0;
  Deployment d(std::move(cfg));

  GossipBus bus;
  const crypto::PublicKey fisher_payer =
      crypto::PrivateKey::from_label("chaos-fisher").public_key();
  d.host().airdrop(fisher_payer, 100 * host::kLamportsPerSol);
  FishermanAgent fisherman(d.sim(), d.host(), d.guest(), bus, fisher_payer);
  fisherman.start();
  ByzantineValidatorAgent byzantine(d.sim(), d.host(), d.guest(),
                                    d.validators()[0]->key(), bus);
  byzantine.start();

  // Every fisherman transaction submitted in the first 120 s vanishes.
  d.host().fault_plan().blackhole(0.0, 120.0, 1.0, "fisherman");

  d.start();
  const crypto::PublicKey offender = d.validators()[0]->pubkey();

  // The first equivocation lands around Δ = 30 s, squarely inside the
  // blackhole window; only deadline-driven retries can get it through.
  ASSERT_TRUE(d.run_until([&] { return d.guest().is_banned(offender); }, 1200.0));
  EXPECT_EQ(d.guest().stake_of(offender), 0u);
  EXPECT_GE(fisherman.evidence_submitted(), 1u);
  EXPECT_GE(fisherman.evidence_accepted(), 1u);
  EXPECT_GE(fisherman.pipeline().timeouts_total(), 1u);
  EXPECT_GE(d.host().fault_counters().blackholed, 1u);
  EXPECT_EQ(fisherman.pipeline().in_flight(), 0u);
}

}  // namespace
}  // namespace bmg::relayer
