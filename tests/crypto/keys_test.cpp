#include "crypto/keys.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/bytes.hpp"

namespace bmg::crypto {
namespace {

TEST(Keys, LabelDerivationIsDeterministic) {
  const PrivateKey a = PrivateKey::from_label("validator-1");
  const PrivateKey b = PrivateKey::from_label("validator-1");
  EXPECT_EQ(a.public_key(), b.public_key());
}

TEST(Keys, DistinctLabelsDistinctKeys) {
  std::unordered_set<PublicKey, PublicKeyHasher> seen;
  for (int i = 0; i < 50; ++i) {
    const PrivateKey k = PrivateKey::from_label("validator-" + std::to_string(i));
    EXPECT_TRUE(seen.insert(k.public_key()).second) << i;
  }
}

TEST(Keys, SignVerifyRoundTrip) {
  const PrivateKey k = PrivateKey::from_label("signer");
  const Bytes msg = bytes_of("guest block 42");
  const Signature sig = k.sign(msg);
  EXPECT_TRUE(verify(k.public_key(), msg, sig));
  EXPECT_FALSE(verify(PrivateKey::from_label("other").public_key(), msg, sig));
}

TEST(Keys, ShortIdIsPrefixOfHex) {
  const PrivateKey k = PrivateKey::from_label("x");
  EXPECT_EQ(k.public_key().short_id(), k.public_key().hex().substr(0, 8));
  EXPECT_EQ(k.public_key().hex().size(), 64u);
}

TEST(Keys, OrderingIsTotal) {
  const PublicKey a = PrivateKey::from_label("a").public_key();
  const PublicKey b = PrivateKey::from_label("b").public_key();
  EXPECT_NE(a, b);
  EXPECT_TRUE((a < b) != (b < a));
}

}  // namespace
}  // namespace bmg::crypto
