// RFC 8032 §7.1 test vectors plus negative tests (tampered message,
// tampered signature, non-canonical S, wrong key).
#include "crypto/ed25519.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace bmg::crypto::ed25519 {
namespace {

Seed seed_from_hex(std::string_view hex) {
  const Bytes b = from_hex(hex);
  Seed s;
  std::copy(b.begin(), b.end(), s.begin());
  return s;
}

struct Rfc8032Vector {
  const char* name;
  const char* seed_hex;
  const char* pub_hex;
  const char* msg_hex;
  const char* sig_hex;
};

const Rfc8032Vector kVectors[] = {
    {"TEST1_empty",
     "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"TEST2_one_byte",
     "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"TEST3_two_bytes",
     "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025", "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
    {"TEST1024_long",
     "f5e5767cf153319517630f226876b86c8160cc583bc013744c6bf255f5cc0ee5",
     "278117fc144c72340f67d0f2316e8386ceffbf2b2428c9c51fef7c597f1d426e",
     "08b8b2b733424243760fe426a4b54908632110a66c2f6591eabd3345e3e4eb98"
     "fa6e264bf09efe12ee50f8f54e9f77b1e355f6c50544e23fb1433ddf73be84d8"
     "79de7c0046dc4996d9e773f4bc9efe5738829adb26c81b37c93a1b270b20329d"
     "658675fc6ea534e0810a4432826bf58c941efb65d57a338bbd2e26640f89ffbc"
     "1a858efcb8550ee3a5e1998bd177e93a7363c344fe6b199ee5d02e82d522c4fe"
     "ba15452f80288a821a579116ec6dad2b3b310da903401aa62100ab5d1a36553e"
     "06203b33890cc9b832f79ef80560ccb9a39ce767967ed628c6ad573cb116dbef"
     "efd75499da96bd68a8a97b928a8bbc103b6621fcde2beca1231d206be6cd9ec7"
     "aff6f6c94fcd7204ed3455c68c83f4a41da4af2b74ef5c53f1d8ac70bdcb7ed1"
     "85ce81bd84359d44254d95629e9855a94a7c1958d1f8ada5d0532ed8a5aa3fb2"
     "d17ba70eb6248e594e1a2297acbbb39d502f1a8c6eb6f1ce22b3de1a1f40cc24"
     "554119a831a9aad6079cad88425de6bde1a9187ebb6092cf67bf2b13fd65f270"
     "88d78b7e883c8759d2c4f5c65adb7553878ad575f9fad878e80a0c9ba63bcbcc"
     "2732e69485bbc9c90bfbd62481d9089beccf80cfe2df16a2cf65bd92dd597b07"
     "07e0917af48bbb75fed413d238f5555a7a569d80c3414a8d0859dc65a46128ba"
     "b27af87a71314f318c782b23ebfe808b82b0ce26401d2e22f04d83d1255dc51a"
     "ddd3b75a2b1ae0784504df543af8969be3ea7082ff7fc9888c144da2af58429e"
     "c96031dbcad3dad9af0dcbaaaf268cb8fcffead94f3c7ca495e056a9b47acdb7"
     "51fb73e666c6c655ade8297297d07ad1ba5e43f1bca32301651339e22904cc8c"
     "42f58c30c04aafdb038dda0847dd988dcda6f3bfd15c4b4c4525004aa06eeff8"
     "ca61783aacec57fb3d1f92b0fe2fd1a85f6724517b65e614ad6808d6f6ee34df"
     "f7310fdc82aebfd904b01e1dc54b2927094b2db68d6f903b68401adebf5a7e08"
     "d78ff4ef5d63653a65040cf9bfd4aca7984a74d37145986780fc0b16ac451649"
     "de6188a7dbdf191f64b5fc5e2ab47b57f7f7276cd419c17a3ca8e1b939ae49e4"
     "88acba6b965610b5480109c8b17b80e1b7b750dfc7598d5d5011fd2dcc5600a3"
     "2ef5b52a1ecc820e308aa342721aac0943bf6686b64b2579376504ccc493d97e"
     "6aed3fb0f9cd71a43dd497f01f17c0e2cb3797aa2a2f256656168e6c496afc5f"
     "b93246f6b1116398a346f1a641f3b041e989f7914f90cc2c7fff357876e506b5"
     "0d334ba77c225bc307ba537152f3f1610e4eafe595f6d9d90d11faa933a15ef1"
     "369546868a7f3a45a96768d40fd9d03412c091c6315cf4fde7cb68606937380d"
     "b2eaaa707b4c4185c32eddcdd306705e4dc1ffc872eeee475a64dfac86aba41c"
     "0618983f8741c5ef68d3a101e8a3b8cac60c905c15fc910840b94c00a0b9d0",
     "0aab4c900501b3e24d7cdf4663326a3a87df5e4843b2cbdb67cbf6e460fec350"
     "aa5371b1508f9f4528ecea23c436d94b5e8fcd4f681e30a6ac00a9704a188a03"},
    {"TEST_SHA_abc",
     "833fe62409237b9d62ec77587520911e9a759cec1d19755b7da901b96dca3d42",
     "ec172b93ad5e563bf4932c70e1245034c35467ef2efd4d64ebf819683467e2bf",
     "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
     "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
     "dc2a4459e7369633a52b1bf277839a00201009a3efbf3ecb69bea2186c26b589"
     "09351fc9ac90b3ecfdfbc7c66431e0303dca179c138ac17ad9bef1177331a704"},
};

TEST(Ed25519, Rfc8032KeyDerivation) {
  for (const auto& v : kVectors) {
    const Seed seed = seed_from_hex(v.seed_hex);
    const PublicKeyBytes pub = derive_public(seed);
    EXPECT_EQ(to_hex(ByteView{pub}), v.pub_hex) << v.name;
  }
}

TEST(Ed25519, Rfc8032Sign) {
  for (const auto& v : kVectors) {
    const Seed seed = seed_from_hex(v.seed_hex);
    const Bytes msg = from_hex(v.msg_hex);
    const SignatureBytes sig = sign(seed, msg);
    EXPECT_EQ(to_hex(ByteView{sig}), v.sig_hex) << v.name;
  }
}

TEST(Ed25519, Rfc8032Verify) {
  for (const auto& v : kVectors) {
    const Bytes pub_b = from_hex(v.pub_hex);
    PublicKeyBytes pub;
    std::copy(pub_b.begin(), pub_b.end(), pub.begin());
    const Bytes sig_b = from_hex(v.sig_hex);
    SignatureBytes sig;
    std::copy(sig_b.begin(), sig_b.end(), sig.begin());
    EXPECT_TRUE(verify(pub, from_hex(v.msg_hex), sig)) << v.name;
  }
}

TEST(Ed25519, RejectsTamperedMessage) {
  const Seed seed = seed_from_hex(kVectors[2].seed_hex);
  const PublicKeyBytes pub = derive_public(seed);
  const Bytes msg = from_hex("af82");
  const SignatureBytes sig = sign(seed, msg);
  Bytes bad = msg;
  bad[0] ^= 0x01;
  EXPECT_FALSE(verify(pub, bad, sig));
}

TEST(Ed25519, RejectsTamperedSignature) {
  const Seed seed = seed_from_hex(kVectors[2].seed_hex);
  const PublicKeyBytes pub = derive_public(seed);
  const Bytes msg = from_hex("af82");
  SignatureBytes sig = sign(seed, msg);
  for (std::size_t i : {0u, 31u, 32u, 63u}) {
    SignatureBytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(verify(pub, msg, bad)) << "byte " << i;
  }
}

TEST(Ed25519, RejectsWrongKey) {
  const Seed s1 = seed_from_hex(kVectors[0].seed_hex);
  const Seed s2 = seed_from_hex(kVectors[1].seed_hex);
  const Bytes msg = bytes_of("hello");
  const SignatureBytes sig = sign(s1, msg);
  EXPECT_TRUE(verify(derive_public(s1), msg, sig));
  EXPECT_FALSE(verify(derive_public(s2), msg, sig));
}

TEST(Ed25519, RejectsNonCanonicalS) {
  // S' = S + L is a valid equation solution but must be rejected.
  const Seed seed = seed_from_hex(kVectors[1].seed_hex);
  const PublicKeyBytes pub = derive_public(seed);
  const Bytes msg = from_hex("72");
  SignatureBytes sig = sign(seed, msg);

  // L little-endian.
  const Bytes ell = from_hex(
      "edd3f55c1a631258d69cf7a2def9de14000000000000000000000000000000"
      "10");
  // Add L to the S half of the signature (little-endian addition).
  unsigned carry = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    const unsigned sum = sig[32 + i] + ell[i] + carry;
    sig[32 + i] = static_cast<std::uint8_t>(sum);
    carry = sum >> 8;
  }
  EXPECT_FALSE(verify(pub, msg, sig));
}

TEST(Ed25519, SignIsDeterministic) {
  const Seed seed = seed_from_hex(kVectors[0].seed_hex);
  const Bytes msg = bytes_of("determinism");
  EXPECT_EQ(to_hex(ByteView{sign(seed, msg)}), to_hex(ByteView{sign(seed, msg)}));
}

TEST(Ed25519, RejectsAllZeroSignature) {
  const Seed seed = seed_from_hex(kVectors[0].seed_hex);
  const PublicKeyBytes pub = derive_public(seed);
  const SignatureBytes zero{};
  EXPECT_FALSE(verify(pub, bytes_of("any message"), zero));
  // And an all-zero public key against a real signature.
  const Bytes msg = bytes_of("any message");
  const SignatureBytes sig = sign(seed, msg);
  const PublicKeyBytes zero_pub{};
  EXPECT_FALSE(verify(zero_pub, msg, sig));
}

TEST(Ed25519, BatchAcceptsAllValid) {
  std::vector<Bytes> msgs;
  std::vector<VerifyItem> items;
  msgs.reserve(16);  // ByteViews into elements must survive push_back
  for (int i = 0; i < 16; ++i) {
    Seed seed{};
    seed[0] = static_cast<std::uint8_t>(i + 1);
    msgs.push_back(bytes_of("batch-msg-" + std::to_string(i)));
    items.push_back({derive_public(seed), ByteView{msgs.back()}, sign(seed, msgs.back())});
  }
  const std::vector<bool> ok = verify_batch(items);
  ASSERT_EQ(ok.size(), items.size());
  for (std::size_t i = 0; i < ok.size(); ++i) EXPECT_TRUE(ok[i]) << i;
}

TEST(Ed25519, BatchEmptyAndSingle) {
  EXPECT_TRUE(verify_batch({}).empty());
  Seed seed{};
  seed[0] = 9;
  const Bytes msg = bytes_of("solo");
  const VerifyItem good{derive_public(seed), ByteView{msg}, sign(seed, msg)};
  EXPECT_EQ(verify_batch({&good, 1}), std::vector<bool>{true});
  VerifyItem bad = good;
  bad.sig[10] ^= 1;
  EXPECT_EQ(verify_batch({&bad, 1}), std::vector<bool>{false});
}

// The load-bearing equivalence: verify_batch must accept exactly the
// items that per-item verify accepts, on batches that mix valid
// signatures with every corruption the single-signature tests cover
// (tampered sig halves, tampered message, wrong key, non-canonical S,
// all-zero signature).
TEST(Ed25519, BatchMatchesSingleVerifyProperty) {
  std::uint64_t rng = 0x2b992ddfa23249d6ULL;  // fixed seed: deterministic test
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  const Bytes ell = from_hex(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");

  int cases = 0;
  for (int round = 0; cases < 1000; ++round) {
    const std::size_t n = 1 + next() % 12;
    std::vector<Bytes> msgs(n);
    std::vector<VerifyItem> items(n);
    std::vector<bool> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
      Seed seed{};
      for (int b = 0; b < 4; ++b) {
        const std::uint64_t w = next();
        for (int j = 0; j < 8; ++j)
          seed[static_cast<std::size_t>(b * 8 + j)] =
              static_cast<std::uint8_t>(w >> (8 * j));
      }
      msgs[i] = bytes_of("prop-" + std::to_string(round) + "-" + std::to_string(i));
      items[i] = {derive_public(seed), ByteView{msgs[i]}, sign(seed, msgs[i])};

      switch (next() % 8) {
        case 0:  // tampered R half
          items[i].sig[next() % 32] ^= static_cast<std::uint8_t>(1 + next() % 255);
          break;
        case 1:  // tampered S half
          items[i].sig[32 + next() % 32] ^= static_cast<std::uint8_t>(1 + next() % 255);
          break;
        case 2:  // wrong message
          msgs[i].back() ^= 0x01;
          break;
        case 3: {  // wrong key
          Seed other{};
          other[0] = static_cast<std::uint8_t>(next());
          other[1] = 0xEE;
          items[i].pub = derive_public(other);
          break;
        }
        case 4: {  // non-canonical S' = S + L
          unsigned carry = 0;
          for (std::size_t b = 0; b < 32; ++b) {
            const unsigned sum = items[i].sig[32 + b] + ell[b] + carry;
            items[i].sig[32 + b] = static_cast<std::uint8_t>(sum);
            carry = sum >> 8;
          }
          break;
        }
        case 5:  // all-zero signature
          items[i].sig = SignatureBytes{};
          break;
        default:  // leave valid (two of eight arms)
          break;
      }
      expected[i] = verify(items[i].pub, items[i].msg, items[i].sig);
      ++cases;
    }
    const std::vector<bool> got = verify_batch(items);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(got[i], expected[i]) << "round " << round << " item " << i;
  }
}

TEST(Ed25519, ManyRandomRoundTrips) {
  for (int i = 0; i < 16; ++i) {
    Seed seed{};
    seed[0] = static_cast<std::uint8_t>(i * 17 + 1);
    seed[31] = static_cast<std::uint8_t>(i);
    const PublicKeyBytes pub = derive_public(seed);
    Bytes msg = bytes_of("msg-" + std::to_string(i));
    const SignatureBytes sig = sign(seed, msg);
    EXPECT_TRUE(verify(pub, msg, sig)) << i;
    msg.push_back(0x00);
    EXPECT_FALSE(verify(pub, msg, sig)) << i;
  }
}

}  // namespace
}  // namespace bmg::crypto::ed25519
