#include "crypto/sha512.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"

namespace bmg::crypto {
namespace {

std::string digest_hex(std::string_view msg) {
  const Digest512 d = Sha512::digest(bytes_of(msg));
  return to_hex(ByteView{d});
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(digest_hex(""),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(digest_hex("abc"),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(digest_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                       "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionAs) {
  Sha512 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(bytes_of(chunk));
  const Digest512 d = h.finish();
  EXPECT_EQ(to_hex(ByteView{d}),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, PaddingBoundaries) {
  for (std::size_t len : {111u, 112u, 113u, 127u, 128u, 129u, 255u, 256u}) {
    const std::string msg(len, 'y');
    Sha512 whole;
    whole.update(bytes_of(msg));
    Sha512 split;
    const auto data = bytes_of(msg);
    split.update(ByteView{data.data(), len / 3});
    split.update(ByteView{data.data() + len / 3, len - len / 3});
    EXPECT_EQ(whole.finish(), split.finish()) << "len=" << len;
  }
}

}  // namespace
}  // namespace bmg::crypto
