#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/bytes.hpp"

namespace bmg::crypto {
namespace {

std::string digest_hex(std::string_view msg) {
  return Sha256::digest(bytes_of(msg)).hex();
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongerNistVector) {
  EXPECT_EQ(digest_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                       "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(bytes_of(chunk));
  EXPECT_EQ(h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog etc etc");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(ByteView{msg.data(), split});
    h.update(ByteView{msg.data() + split, msg.size() - split});
    EXPECT_EQ(h.finish(), Sha256::digest(msg)) << "split=" << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Exercise message lengths around the 55/56/64-byte padding edges.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(bytes_of(msg));
    // Byte-at-a-time must agree.
    Sha256 b;
    for (char ch : msg) {
      const auto byte = static_cast<std::uint8_t>(ch);
      b.update(ByteView{&byte, 1});
    }
    EXPECT_EQ(a.finish(), b.finish()) << "len=" << len;
  }
}

TEST(Sha256, PairHelper) {
  const Hash32 a = Sha256::digest(bytes_of("a"));
  const Hash32 b = Sha256::digest(bytes_of("b"));
  const Bytes combined = concat({a.view(), b.view()});
  EXPECT_EQ(sha256_pair(a, b), Sha256::digest(combined));
  EXPECT_NE(sha256_pair(a, b), sha256_pair(b, a));
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(bytes_of("abc"));
  (void)h.finish();
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(h.finish().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace bmg::crypto
