#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace bmg::crypto {
namespace {

std::string digest_hex(std::string_view msg) {
  return Sha256::digest(bytes_of(msg)).hex();
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongerNistVector) {
  EXPECT_EQ(digest_hex("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                       "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(bytes_of(chunk));
  EXPECT_EQ(h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog etc etc");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(ByteView{msg.data(), split});
    h.update(ByteView{msg.data() + split, msg.size() - split});
    EXPECT_EQ(h.finish(), Sha256::digest(msg)) << "split=" << split;
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Exercise message lengths around the 55/56/64-byte padding edges.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 a;
    a.update(bytes_of(msg));
    // Byte-at-a-time must agree.
    Sha256 b;
    for (char ch : msg) {
      const auto byte = static_cast<std::uint8_t>(ch);
      b.update(ByteView{&byte, 1});
    }
    EXPECT_EQ(a.finish(), b.finish()) << "len=" << len;
  }
}

TEST(Sha256, IncrementalAcrossPaddingBoundaries) {
  // Incremental update() split exactly at the 55/56/63/64-byte padding
  // edges (and one byte around them) must match the one-shot digest:
  // these are the lengths where the final block layout changes shape.
  const std::string msg(130, 'y');
  for (std::size_t first : {54u, 55u, 56u, 57u, 62u, 63u, 64u, 65u}) {
    for (std::size_t second : {0u, 1u, 55u, 56u, 63u, 64u}) {
      if (first + second > msg.size()) continue;
      const ByteView whole{reinterpret_cast<const std::uint8_t*>(msg.data()),
                           first + second};
      Sha256 h;
      h.update(whole.subspan(0, first));
      h.update(whole.subspan(first, second));
      EXPECT_EQ(h.finish(), Sha256::digest(whole))
          << "first=" << first << " second=" << second;
    }
  }
}

TEST(Sha256, MultiMegabyteMatchesOneShot) {
  // Large streaming input in awkward chunk sizes vs a single digest()
  // over the same bytes.
  Bytes msg(3 * 1024 * 1024 + 17);
  std::uint32_t x = 0x12345678;
  for (auto& b : msg) {
    x = x * 1664525 + 1013904223;
    b = static_cast<std::uint8_t>(x >> 24);
  }
  Sha256 h;
  std::size_t off = 0, chunk = 1;
  while (off < msg.size()) {
    const std::size_t n = std::min(chunk, msg.size() - off);
    h.update(ByteView{msg.data() + off, n});
    off += n;
    chunk = chunk * 3 + 1;  // 1, 4, 13, 40, ... irregular boundaries
  }
  EXPECT_EQ(h.finish(), Sha256::digest(msg));
}

// --- fast-path vs scalar property tests ------------------------------------
//
// Whatever SIMD backends this CPU offers must agree byte-for-byte with
// the portable scalar implementation on random inputs of every length
// class: sub-block, padding edges, multi-block, and large.

std::vector<Sha256Impl> available_accelerated() {
  std::vector<Sha256Impl> impls;
  for (Sha256Impl impl : {Sha256Impl::kShaNi, Sha256Impl::kAvx2})
    if (sha256_impl_available(impl)) impls.push_back(impl);
  return impls;
}

TEST(Sha256FastPath, AcceleratedMatchesScalarOnRandomInputs) {
  Rng rng(0xfeedface);
  const auto impls = available_accelerated();
  if (impls.empty()) GTEST_SKIP() << "no SIMD backend on this CPU";
  for (int round = 0; round < 200; ++round) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(700));
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
    const Hash32 want = sha256_digest_with(Sha256Impl::kScalar, msg);
    EXPECT_EQ(Sha256::digest(msg), want) << "len=" << len;
    for (Sha256Impl impl : impls)
      EXPECT_EQ(sha256_digest_with(impl, msg), want)
          << "impl=" << static_cast<int>(impl) << " len=" << len;
  }
}

TEST(Sha256FastPath, AcceleratedMatchesScalarAtPaddingEdges) {
  const auto impls = available_accelerated();
  if (impls.empty()) GTEST_SKIP() << "no SIMD backend on this CPU";
  for (std::size_t len : {0u,  1u,  31u, 32u,  55u,  56u,  57u,  63u, 64u,
                          65u, 96u, 119u, 120u, 127u, 128u, 129u, 515u}) {
    Bytes msg(len, 0xa5);
    const Hash32 want = sha256_digest_with(Sha256Impl::kScalar, msg);
    for (Sha256Impl impl : impls)
      EXPECT_EQ(sha256_digest_with(impl, msg), want)
          << "impl=" << static_cast<int>(impl) << " len=" << len;
  }
}

TEST(Sha256FastPath, BatchMatchesSerialDigests) {
  // The multi-way batch API (used by the trie's deferred commit) must
  // produce exactly the per-message digests, for any batch size and a
  // mix of message lengths — including the lane-grouping edge cases
  // around multiples of 8.
  Rng rng(0xb47c4);
  for (const std::size_t n : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 23u, 64u}) {
    std::vector<Bytes> msgs(n);
    std::vector<ByteView> views(n);
    for (std::size_t i = 0; i < n; ++i) {
      msgs[i].resize(static_cast<std::size_t>(rng.uniform_int(300)));
      for (auto& b : msgs[i]) b = static_cast<std::uint8_t>(rng.next());
      views[i] = msgs[i];
    }
    std::vector<Hash32> out(n);
    sha256_batch(views.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(out[i], Sha256::digest(msgs[i])) << "n=" << n << " i=" << i;
  }
}

TEST(Sha256FastPath, ForcedBatchBackendsMatchScalar) {
  Rng rng(0x5eed);
  const std::size_t n = 24;
  std::vector<Bytes> msgs(n);
  std::vector<ByteView> views(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Repeat lengths so the AVX2 grouping gets full 8-wide lanes.
    msgs[i].resize(40 + 30 * (i % 3));
    for (auto& b : msgs[i]) b = static_cast<std::uint8_t>(rng.next());
    views[i] = msgs[i];
  }
  for (Sha256Impl impl :
       {Sha256Impl::kScalar, Sha256Impl::kShaNi, Sha256Impl::kAvx2}) {
    if (!sha256_impl_available(impl)) continue;
    std::vector<Hash32> out(n);
    sha256_batch_with(impl, views.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(out[i], Sha256::digest(msgs[i]))
          << "impl=" << static_cast<int>(impl) << " i=" << i;
  }
}

TEST(Sha256FastPath, UnavailableBackendThrows) {
  // The testing hooks must refuse rather than silently fall back.
  for (Sha256Impl impl : {Sha256Impl::kShaNi, Sha256Impl::kAvx2}) {
    if (sha256_impl_available(impl)) continue;
    EXPECT_THROW((void)sha256_digest_with(impl, {}), std::runtime_error);
  }
  EXPECT_TRUE(sha256_impl_available(Sha256Impl::kScalar));
}

TEST(Sha256, PairHelper) {
  const Hash32 a = Sha256::digest(bytes_of("a"));
  const Hash32 b = Sha256::digest(bytes_of("b"));
  const Bytes combined = concat({a.view(), b.view()});
  EXPECT_EQ(sha256_pair(a, b), Sha256::digest(combined));
  EXPECT_NE(sha256_pair(a, b), sha256_pair(b, a));
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(bytes_of("abc"));
  (void)h.finish();
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(h.finish().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace bmg::crypto
