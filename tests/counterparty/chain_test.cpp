// Counterparty (Tendermint-like) chain tests: block production,
// commits, historical proofs and validator-set properties.
#include "counterparty/chain.hpp"

#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

namespace bmg::counterparty {
namespace {

Config small_config() {
  Config cfg;
  cfg.num_validators = 8;
  cfg.block_interval_s = 6.0;
  cfg.background_state_keys = 64;
  return cfg;
}

TEST(Counterparty, ProducesBlocksOnSchedule) {
  sim::Simulation sim;
  CounterpartyChain chain(sim, Rng(1), small_config());
  chain.start();
  sim.run_until(60.0);
  EXPECT_EQ(chain.height(), 10u);  // 60 / 6
}

TEST(Counterparty, BlockCallbacksFire) {
  sim::Simulation sim;
  CounterpartyChain chain(sim, Rng(1), small_config());
  std::vector<ibc::Height> seen;
  chain.on_new_block([&](ibc::Height h) { seen.push_back(h); });
  chain.start();
  sim.run_until(30.0);
  EXPECT_EQ(seen, (std::vector<ibc::Height>{1, 2, 3, 4, 5}));
}

TEST(Counterparty, HeadersCarryQuorumCommits) {
  sim::Simulation sim;
  CounterpartyChain chain(sim, Rng(1), small_config());
  chain.start();
  sim.run_until(30.0);
  for (ibc::Height h = 1; h <= 5; ++h) {
    const ibc::SignedQuorumHeader& sh = chain.header_at(h);
    EXPECT_EQ(sh.header.height, h);
    EXPECT_EQ(sh.header.chain_id, "picasso-1");
    // Commit always reaches quorum and all signatures verify.
    EXPECT_GE(ibc::QuorumLightClient::verify_signatures(sh, chain.validators()),
              chain.validators().quorum_stake());
  }
}

TEST(Counterparty, HeadersFeedQuorumLightClient) {
  sim::Simulation sim;
  CounterpartyChain chain(sim, Rng(1), small_config());
  chain.start();
  sim.run_until(30.0);
  ibc::QuorumLightClient client(chain.chain_id(), chain.validators());
  for (ibc::Height h = 1; h <= 5; ++h) client.update(chain.header_at(h).encode());
  EXPECT_EQ(client.latest_height(), 5u);
}

TEST(Counterparty, HeaderAtUnknownHeightThrows) {
  sim::Simulation sim;
  CounterpartyChain chain(sim, Rng(1), small_config());
  chain.start();
  sim.run_until(12.0);
  EXPECT_THROW((void)chain.header_at(99), ibc::IbcError);
}

TEST(Counterparty, HistoricalProofsMatchBlockRoots) {
  sim::Simulation sim;
  CounterpartyChain chain(sim, Rng(1), small_config());
  chain.start();
  sim.run_until(12.0);

  // Mutate the store after block 2; a proof at height 2 must verify
  // against block 2's root, not the live root.
  const ibc::Height h = chain.height();
  const Hash32 root_then = chain.header_at(h).header.state_root;
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "c", 1);
  chain.store().set(key, crypto::Sha256::digest(bytes_of("later")));
  ASSERT_NE(chain.store().root_hash(), root_then);

  const trie::Proof proof = chain.prove_at(h, key);
  EXPECT_EQ(trie::verify_proof(root_then, key, proof).kind,
            trie::VerifyOutcome::Kind::kAbsent);
}

TEST(Counterparty, BackgroundStateDeepensProofs) {
  sim::Simulation sim;
  Config no_bg = small_config();
  no_bg.background_state_keys = 0;
  Config big_bg = small_config();
  big_bg.background_state_keys = 4096;
  CounterpartyChain empty_chain(sim, Rng(1), no_bg);
  CounterpartyChain full_chain(sim, Rng(1), big_bg);

  const auto key = ibc::packet_key(ibc::KeyKind::kPacketCommitment, "transfer", "c", 1);
  empty_chain.store().set(key, crypto::Sha256::digest(bytes_of("v")));
  full_chain.store().set(key, crypto::Sha256::digest(bytes_of("v")));
  EXPECT_GT(full_chain.store().prove(key).byte_size(),
            empty_chain.store().prove(key).byte_size());
  // Realistic app state pushes IBC proofs to ~2 KB (drives the 4-5 tx
  // ReceivePacket splits of §V-A).
  EXPECT_GT(full_chain.store().prove(key).byte_size(), 1200u);
}

TEST(Counterparty, CommitSizesVary) {
  sim::Simulation sim;
  Config cfg = small_config();
  cfg.num_validators = 40;
  cfg.participation_min = 0.7;
  cfg.participation_max = 1.0;
  CounterpartyChain chain(sim, Rng(7), cfg);
  chain.start();
  sim.run_until(400.0);
  std::size_t min_sigs = 1000, max_sigs = 0;
  for (ibc::Height h = 1; h <= chain.height(); ++h) {
    const auto n = chain.header_at(h).signatures.size();
    min_sigs = std::min(min_sigs, n);
    max_sigs = std::max(max_sigs, n);
  }
  EXPECT_LT(min_sigs, max_sigs);  // the spread behind Figs. 4-5
}

}  // namespace
}  // namespace bmg::counterparty
