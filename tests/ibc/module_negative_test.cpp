// Negative-path coverage of the IBC module: wrong states, wrong
// routes, missing clients/connections/channels.
#include <gtest/gtest.h>

#include "ibc/module.hpp"

namespace bmg::ibc {
namespace {

class NegativeTest : public ::testing::Test {
 protected:
  NegativeTest() : module(store) {
    auto c = std::make_unique<TrustingLightClient>();
    client = c.get();
    client_id = module.add_client(std::move(c));
    client->seed(1, ConsensusState{Hash32{}, 1.0});
  }

  trie::SealableTrie store;
  IbcModule module;
  TrustingLightClient* client;
  ClientId client_id;
};

TEST_F(NegativeTest, UnknownClientThrows) {
  EXPECT_THROW((void)module.client("nope"), IbcError);
  EXPECT_THROW((void)module.conn_open_init("nope", "remote"), IbcError);
}

TEST_F(NegativeTest, UnknownConnectionThrows) {
  EXPECT_THROW((void)module.connection("connection-9"), IbcError);
  EXPECT_THROW((void)module.chan_open_init("transfer", "connection-9", "transfer"),
               IbcError);
  EXPECT_THROW(module.conn_open_ack("connection-9", "c", ConnectionEnd{}, 1, {}),
               IbcError);
}

TEST_F(NegativeTest, UnknownChannelThrows) {
  EXPECT_THROW((void)module.channel("transfer", "channel-9"), IbcError);
  EXPECT_THROW((void)module.next_send_sequence("transfer", "channel-9"), IbcError);
  EXPECT_THROW(module.chan_close_init("transfer", "channel-9"), IbcError);
}

TEST_F(NegativeTest, ChannelOnUnopenedConnectionRejected) {
  const ConnectionId conn = module.conn_open_init(client_id, "remote");  // INIT only
  EXPECT_THROW((void)module.chan_open_init("transfer", conn, "transfer"), IbcError);
}

TEST_F(NegativeTest, ConnAckFromWrongStateRejected) {
  const ConnectionId conn = module.conn_open_init(client_id, "remote");
  ConnectionEnd fake;
  fake.state = ConnectionState::kTryOpen;
  fake.counterparty_connection = conn;
  // Proof verification happens after state checks; a nonsense proof
  // makes the call throw either way, but the *double* ack must fail on
  // state, not proof.
  EXPECT_THROW(module.conn_open_ack(conn, "connection-x", fake, 99, {}), IbcError);
}

TEST_F(NegativeTest, ConnConfirmRequiresTryOpen) {
  const ConnectionId conn = module.conn_open_init(client_id, "remote");
  ConnectionEnd fake;
  fake.state = ConnectionState::kOpen;
  EXPECT_THROW(module.conn_open_confirm(conn, fake, 1, {}), IbcError);
}

TEST_F(NegativeTest, SendOnInitChannelRejected) {
  // Build an OPEN connection directly through the handshake with a
  // fake remote whose commitments we seed into the trusting client.
  const ConnectionId conn = module.conn_open_init(client_id, "remote");
  // Force-open for the test by replaying ack with a seeded consensus:
  // simpler: open a channel is impossible pre-open; assert init channel
  // cannot send even if we reach INIT via a hacked connection.
  (void)conn;
  EXPECT_THROW((void)module.send_packet("transfer", "channel-0", bytes_of("x"), 1, 0),
               IbcError);
}

TEST_F(NegativeTest, BindPortRejectsNull) {
  EXPECT_THROW(module.bind_port("p", nullptr), IbcError);
}

TEST_F(NegativeTest, RecvOnUnknownChannelRejected) {
  Packet p;
  p.sequence = 1;
  p.source_port = p.dest_port = "transfer";
  p.source_channel = "channel-0";
  p.dest_channel = "channel-1";
  EXPECT_THROW((void)module.recv_packet(p, 1, {}, 1, 1.0), IbcError);
}

TEST_F(NegativeTest, UpdateClientRoutesToClient) {
  // TrustingLightClient rejects updates by design.
  EXPECT_THROW(module.update_client(client_id, bytes_of("hdr")), IbcError);
}

}  // namespace
}  // namespace bmg::ibc
