#include "ibc/seq_tracker.hpp"

#include <gtest/gtest.h>

namespace bmg::ibc {
namespace {

TEST(SeqTracker, InOrderMarksAdvanceWatermark) {
  SeqTracker t;
  for (std::uint64_t s = 1; s <= 5; ++s) EXPECT_TRUE(t.mark(s));
  EXPECT_EQ(t.watermark(), 5u);
}

TEST(SeqTracker, OutOfOrderMarksBuffered) {
  SeqTracker t;
  EXPECT_TRUE(t.mark(3));
  EXPECT_EQ(t.watermark(), 0u);
  EXPECT_TRUE(t.mark(1));
  EXPECT_EQ(t.watermark(), 1u);
  EXPECT_TRUE(t.mark(2));
  EXPECT_EQ(t.watermark(), 3u);  // absorbs the pending 3
}

TEST(SeqTracker, DuplicatesRejected) {
  SeqTracker t;
  EXPECT_TRUE(t.mark(1));
  EXPECT_FALSE(t.mark(1));
  EXPECT_TRUE(t.mark(5));
  EXPECT_FALSE(t.mark(5));
}

TEST(SeqTracker, ZeroRejected) {
  SeqTracker t;
  EXPECT_FALSE(t.mark(0));
  EXPECT_FALSE(t.is_marked(0));
}

TEST(SeqTracker, IsMarkedCoversBothRegions) {
  SeqTracker t;
  (void)t.mark(1);
  (void)t.mark(2);
  (void)t.mark(7);
  EXPECT_TRUE(t.is_marked(1));
  EXPECT_TRUE(t.is_marked(2));
  EXPECT_TRUE(t.is_marked(7));
  EXPECT_FALSE(t.is_marked(3));
  EXPECT_FALSE(t.is_marked(8));
}

TEST(SeqTracker, SealableStaysBehindWatermark) {
  // Invariant: only sequences < watermark may be sealed (s+1 must be
  // present), so the newest contiguous entry is never handed out.
  SeqTracker t;
  (void)t.mark(1);
  EXPECT_TRUE(t.drain_sealable().empty());  // 1 == watermark, keep it
  (void)t.mark(2);
  EXPECT_EQ(t.drain_sealable(), (std::vector<std::uint64_t>{1}));
  (void)t.mark(3);
  EXPECT_EQ(t.drain_sealable(), (std::vector<std::uint64_t>{2}));
}

TEST(SeqTracker, DrainReturnsEachSequenceOnce) {
  SeqTracker t;
  for (std::uint64_t s = 1; s <= 10; ++s) (void)t.mark(s);
  const auto first = t.drain_sealable();
  EXPECT_EQ(first.size(), 9u);
  EXPECT_TRUE(t.drain_sealable().empty());
}

TEST(SeqTracker, GapsBlockSealing) {
  SeqTracker t;
  (void)t.mark(1);
  (void)t.mark(3);  // 2 missing
  (void)t.mark(4);
  EXPECT_TRUE(t.drain_sealable().empty());  // watermark stuck at 1
  (void)t.mark(2);
  EXPECT_EQ(t.watermark(), 4u);
  EXPECT_EQ(t.drain_sealable(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(SeqTracker, LagHoldsBackRecentSequences) {
  SeqTracker t(/*lag=*/3);
  for (std::uint64_t s = 1; s <= 10; ++s) (void)t.mark(s);
  // watermark 10, margin 1+3 => sealable up to 6.
  EXPECT_EQ(t.drain_sealable(), (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(SeqTracker, LiveCountTracksWindow) {
  SeqTracker t;
  for (std::uint64_t s = 1; s <= 100; ++s) {
    (void)t.mark(s);
    (void)t.drain_sealable();
  }
  // Everything except the newest has been sealed.
  EXPECT_EQ(t.live_count(), 1u);
}

}  // namespace
}  // namespace bmg::ibc
