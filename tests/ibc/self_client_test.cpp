// validate_self_client (ICS-3): the counterparty must prove that its
// light client really tracks *this* chain — the check the paper's
// footnote 2 points out is left blank in NEAR-IBC.  Two modules with
// real quorum clients and declared self identities.
#include <gtest/gtest.h>

#include "ibc/module.hpp"
#include "ibc/quorum.hpp"

namespace bmg::ibc {
namespace {

using crypto::PrivateKey;

ValidatorSet make_set(const std::string& prefix, int n) {
  ValidatorSet set;
  for (int i = 0; i < n; ++i)
    set.add(PrivateKey::from_label(prefix + std::to_string(i)).public_key(), 100);
  return set;
}

class SelfClientTest : public ::testing::Test {
 protected:
  SelfClientTest()
      : set_a(make_set("sc-a-", 4)),
        set_b(make_set("sc-b-", 4)),
        module_a(store_a),
        module_b(store_b) {
    module_a.set_self_identity("chain-a", [this] { return set_a.hash(); });
    module_b.set_self_identity("chain-b", [this] { return set_b.hash(); });
    // Real quorum clients: A tracks B, B tracks A.
    client_ab = module_a.add_client(
        std::make_unique<QuorumLightClient>("chain-b", set_b));
    client_ba = module_b.add_client(
        std::make_unique<QuorumLightClient>("chain-a", set_a));
    publish();
  }

  /// Publishes both stores' roots at a fresh height via quorum-signed
  /// headers (validator keys are deterministic labels).
  Height publish() {
    const Height h = next_height_++;
    update(module_a, client_ab, "chain-b", set_b, "sc-b-", store_b.root_hash(), h);
    update(module_b, client_ba, "chain-a", set_a, "sc-a-", store_a.root_hash(), h);
    return h;
  }

  static void update(IbcModule& m, const ClientId& id, const std::string& chain,
                     const ValidatorSet& set, const std::string& prefix,
                     const Hash32& root, Height h) {
    QuorumHeader header;
    header.chain_id = chain;
    header.height = h;
    header.timestamp = static_cast<double>(h);
    header.state_root = root;
    header.validator_set_hash = set.hash();
    SignedQuorumHeader sh;
    sh.header = header;
    const Hash32 digest = header.signing_digest();
    for (int i = 0; i < 3; ++i) {
      const PrivateKey k = PrivateKey::from_label(prefix + std::to_string(i));
      sh.signatures.emplace_back(k.public_key(), k.sign(digest.view()));
    }
    m.update_client(id, sh.encode());
  }

  [[nodiscard]] ClientStateCommitment state_of(IbcModule& m, const ClientId& id) const {
    const auto& c = m.client(id);
    return {c.tracked_chain_id(), c.tracked_validator_set_hash()};
  }

  ValidatorSet set_a, set_b;
  trie::SealableTrie store_a, store_b;
  IbcModule module_a, module_b;
  ClientId client_ab, client_ba;
  Height next_height_ = 1;
};

TEST_F(SelfClientTest, HandshakeSucceedsWithValidClientState) {
  const ConnectionId conn_a = module_a.conn_open_init(client_ab, client_ba);
  const Height h = publish();
  const ConnectionId conn_b = module_b.conn_open_try(
      client_ba, client_ab, conn_a, module_a.connection(conn_a), h,
      store_a.prove(connection_key(conn_a)), state_of(module_a, client_ab),
      store_a.prove(client_key(client_ab)));
  const Height h2 = publish();
  module_a.conn_open_ack(conn_a, conn_b, module_b.connection(conn_b), h2,
                         store_b.prove(connection_key(conn_b)),
                         state_of(module_b, client_ba),
                         store_b.prove(client_key(client_ba)));
  EXPECT_EQ(module_a.connection(conn_a).state, ConnectionState::kOpen);
}

TEST_F(SelfClientTest, MissingClientStateRejected) {
  // The NEAR-IBC hole: skipping validation entirely must not pass.
  const ConnectionId conn_a = module_a.conn_open_init(client_ab, client_ba);
  const Height h = publish();
  EXPECT_THROW((void)module_b.conn_open_try(client_ba, client_ab, conn_a,
                                            module_a.connection(conn_a), h,
                                            store_a.prove(connection_key(conn_a))),
               IbcError);
}

TEST_F(SelfClientTest, WrongChainIdRejected) {
  // Chain A's client actually tracks some *other* chain — B must
  // refuse to connect even though the commitment proof is genuine.
  const ClientId rogue = module_a.add_client(
      std::make_unique<QuorumLightClient>("not-chain-b", set_b));
  const ConnectionId conn_a = module_a.conn_open_init(rogue, client_ba);
  const Height h = publish();
  EXPECT_THROW(
      (void)module_b.conn_open_try(client_ba, rogue, conn_a,
                                   module_a.connection(conn_a), h,
                                   store_a.prove(connection_key(conn_a)),
                                   state_of(module_a, rogue),
                                   store_a.prove(client_key(rogue))),
      IbcError);
}

TEST_F(SelfClientTest, ForeignValidatorSetRejected) {
  // Right chain id, wrong validator set: an attacker-controlled
  // "client of B" that trusts keys B never had.
  const ClientId rogue = module_a.add_client(std::make_unique<QuorumLightClient>(
      "chain-b", make_set("attacker-", 4)));
  const ConnectionId conn_a = module_a.conn_open_init(rogue, client_ba);
  const Height h = publish();
  EXPECT_THROW(
      (void)module_b.conn_open_try(client_ba, rogue, conn_a,
                                   module_a.connection(conn_a), h,
                                   store_a.prove(connection_key(conn_a)),
                                   state_of(module_a, rogue),
                                   store_a.prove(client_key(rogue))),
      IbcError);
}

TEST_F(SelfClientTest, ForgedClientStateWithoutCommitmentRejected) {
  // Claiming the right contents but proving a different key fails the
  // membership check.
  const ClientId rogue = module_a.add_client(std::make_unique<QuorumLightClient>(
      "chain-b", make_set("attacker-", 4)));
  const ConnectionId conn_a = module_a.conn_open_init(rogue, client_ba);
  const Height h = publish();
  const ClientStateCommitment forged{"chain-b", set_b.hash()};  // looks right...
  EXPECT_THROW(
      (void)module_b.conn_open_try(client_ba, rogue, conn_a,
                                   module_a.connection(conn_a), h,
                                   store_a.prove(connection_key(conn_a)), forged,
                                   store_a.prove(client_key(rogue))),  // ...but unproven
      IbcError);
}

TEST_F(SelfClientTest, ClientStateCommitmentRoundTrip) {
  const ClientStateCommitment c{"chain-x", set_a.hash()};
  EXPECT_EQ(ClientStateCommitment::decode(c.encode()), c);
  ClientStateCommitment d = c;
  d.chain_id = "chain-y";
  EXPECT_NE(c.commitment(), d.commitment());
}

}  // namespace
}  // namespace bmg::ibc
