// Ordered channels and channel closing (ICS-4 extensions beyond the
// paper's deployed unordered transfer channel).
#include <gtest/gtest.h>

#include "ibc/module.hpp"

namespace bmg::ibc {
namespace {

class RecordingApp final : public IbcApp {
 public:
  Acknowledgement on_recv_packet(const Packet& packet) override {
    received.push_back(packet.sequence);
    return Acknowledgement::ok();
  }
  void on_acknowledge(const Packet&, const Acknowledgement&) override { ++acks; }
  void on_timeout(const Packet& packet) override { timed_out.push_back(packet.sequence); }

  std::vector<std::uint64_t> received;
  std::vector<std::uint64_t> timed_out;
  int acks = 0;
};

class OrderedChannelPair : public ::testing::Test {
 protected:
  OrderedChannelPair() : module_a(store_a), module_b(store_b) {
    auto ca = std::make_unique<TrustingLightClient>();
    auto cb = std::make_unique<TrustingLightClient>();
    client_of_b = ca.get();
    client_of_a = cb.get();
    client_ab = module_a.add_client(std::move(ca));
    client_ba = module_b.add_client(std::move(cb));
    module_a.bind_port("oapp", &app_a);
    module_b.bind_port("oapp", &app_b);
    sync();
    open(ChannelOrder::kOrdered);
  }

  Height sync(Timestamp ts = 0.0) {
    const Height h = next_height_++;
    if (ts == 0.0) ts = static_cast<Timestamp>(h);
    client_of_b->seed(h, ConsensusState{store_b.root_hash(), ts});
    client_of_a->seed(h, ConsensusState{store_a.root_hash(), ts});
    return h;
  }

  void open(ChannelOrder order) {
    conn_a = module_a.conn_open_init(client_ab, client_ba);
    Height h = sync();
    conn_b = module_b.conn_open_try(client_ba, client_ab, conn_a,
                                    module_a.connection(conn_a), h,
                                    store_a.prove(connection_key(conn_a)));
    h = sync();
    module_a.conn_open_ack(conn_a, conn_b, module_b.connection(conn_b), h,
                           store_b.prove(connection_key(conn_b)));
    h = sync();
    module_b.conn_open_confirm(conn_b, module_a.connection(conn_a), h,
                               store_a.prove(connection_key(conn_a)));

    chan_a = module_a.chan_open_init("oapp", conn_a, "oapp", order);
    h = sync();
    chan_b = module_b.chan_open_try("oapp", conn_b, "oapp", chan_a,
                                    module_a.channel("oapp", chan_a), h,
                                    store_a.prove(channel_key("oapp", chan_a)), order);
    h = sync();
    module_a.chan_open_ack("oapp", chan_a, chan_b, module_b.channel("oapp", chan_b), h,
                           store_b.prove(channel_key("oapp", chan_b)));
    h = sync();
    module_b.chan_open_confirm("oapp", chan_b, module_a.channel("oapp", chan_a), h,
                               store_a.prove(channel_key("oapp", chan_a)));
    sync();
  }

  Acknowledgement deliver(const Packet& p) {
    const Height h = sync();
    return module_b.recv_packet(
        p, h,
        store_a.prove(packet_key(KeyKind::kPacketCommitment, p.source_port,
                                 p.source_channel, p.sequence)),
        1, 1.0);
  }

  trie::SealableTrie store_a, store_b;
  IbcModule module_a, module_b;
  TrustingLightClient *client_of_b = nullptr, *client_of_a = nullptr;
  ClientId client_ab, client_ba;
  ConnectionId conn_a, conn_b;
  ChannelId chan_a, chan_b;
  RecordingApp app_a, app_b;
  Height next_height_ = 1;
};

TEST_F(OrderedChannelPair, HandshakeNegotiatesOrdering) {
  EXPECT_EQ(module_a.channel("oapp", chan_a).order, ChannelOrder::kOrdered);
  EXPECT_EQ(module_b.channel("oapp", chan_b).order, ChannelOrder::kOrdered);
}

TEST_F(OrderedChannelPair, OrderingMismatchRejectedAtTry) {
  const ChannelId init =
      module_a.chan_open_init("oapp", conn_a, "oapp", ChannelOrder::kOrdered);
  const Height h = sync();
  EXPECT_THROW((void)module_b.chan_open_try(
                   "oapp", conn_b, "oapp", init, module_a.channel("oapp", init), h,
                   store_a.prove(channel_key("oapp", init)), ChannelOrder::kUnordered),
               IbcError);
}

TEST_F(OrderedChannelPair, InOrderDeliveryWorks) {
  for (int i = 0; i < 3; ++i) {
    const Packet p = module_a.send_packet("oapp", chan_a, bytes_of("m"), 1000, 0);
    EXPECT_TRUE(deliver(p).success);
  }
  EXPECT_EQ(app_b.received, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(module_b.next_recv_sequence("oapp", chan_b), 4u);
}

TEST_F(OrderedChannelPair, OutOfOrderDeliveryRejected) {
  (void)module_a.send_packet("oapp", chan_a, bytes_of("1"), 1000, 0);
  const Packet p2 = module_a.send_packet("oapp", chan_a, bytes_of("2"), 1000, 0);
  EXPECT_THROW((void)deliver(p2), IbcError);
  EXPECT_TRUE(app_b.received.empty());
}

TEST_F(OrderedChannelPair, ReplayRejectedBySequence) {
  const Packet p = module_a.send_packet("oapp", chan_a, bytes_of("1"), 1000, 0);
  EXPECT_TRUE(deliver(p).success);
  EXPECT_THROW((void)deliver(p), IbcError);
  EXPECT_EQ(app_b.received.size(), 1u);
}

TEST_F(OrderedChannelPair, OrderedTimeoutClosesChannel) {
  const Packet p = module_a.send_packet("oapp", chan_a, bytes_of("late"), 0, 25.0);
  // Never delivered; B committed next_recv = 1 when its end opened.
  const Height h = sync(/*ts=*/30.0);
  module_a.timeout_packet_ordered(
      p, 1, h,
      store_b.prove(packet_key(KeyKind::kNextSequenceRecv, "oapp", chan_b, 0)));
  EXPECT_EQ(app_a.timed_out, (std::vector<std::uint64_t>{1}));
  // ICS-4: the ordered channel is now closed.
  EXPECT_EQ(module_a.channel("oapp", chan_a).state, ChannelState::kClosed);
  EXPECT_THROW((void)module_a.send_packet("oapp", chan_a, bytes_of("x"), 1000, 0),
               IbcError);
}

TEST_F(OrderedChannelPair, OrderedTimeoutRejectsDeliveredPacket) {
  const Packet p = module_a.send_packet("oapp", chan_a, bytes_of("x"), 0, 25.0);
  (void)deliver(p);  // delivered; next_recv now 2
  const Height h = sync(/*ts=*/30.0);
  EXPECT_THROW(module_a.timeout_packet_ordered(
                   p, 2, h,
                   store_b.prove(packet_key(KeyKind::kNextSequenceRecv, "oapp",
                                            chan_b, 0))),
               IbcError);
}

TEST_F(OrderedChannelPair, UnorderedTimeoutApiRejectedOnOrderedChannel) {
  const Packet p = module_a.send_packet("oapp", chan_a, bytes_of("x"), 0, 25.0);
  const Height h = sync(/*ts=*/30.0);
  EXPECT_THROW(module_a.timeout_packet(
                   p, h,
                   store_b.prove(packet_key(KeyKind::kPacketReceipt, p.dest_port,
                                            p.dest_channel, p.sequence))),
               IbcError);
}

TEST_F(OrderedChannelPair, CloseHandshake) {
  module_a.chan_close_init("oapp", chan_a);
  EXPECT_EQ(module_a.channel("oapp", chan_a).state, ChannelState::kClosed);
  const Height h = sync();
  module_b.chan_close_confirm("oapp", chan_b, module_a.channel("oapp", chan_a), h,
                              store_a.prove(channel_key("oapp", chan_a)));
  EXPECT_EQ(module_b.channel("oapp", chan_b).state, ChannelState::kClosed);
  // Neither side can send any more.
  EXPECT_THROW((void)module_a.send_packet("oapp", chan_a, bytes_of("x"), 1000, 0),
               IbcError);
  EXPECT_THROW((void)module_b.send_packet("oapp", chan_b, bytes_of("x"), 1000, 0),
               IbcError);
}

TEST_F(OrderedChannelPair, CloseConfirmNeedsClosedCounterparty) {
  // B tries to confirm-close while A is still open.
  const Height h = sync();
  EXPECT_THROW(module_b.chan_close_confirm("oapp", chan_b,
                                           module_a.channel("oapp", chan_a), h,
                                           store_a.prove(channel_key("oapp", chan_a))),
               IbcError);
}

TEST_F(OrderedChannelPair, CloseInitRequiresOpenChannel) {
  module_a.chan_close_init("oapp", chan_a);
  EXPECT_THROW(module_a.chan_close_init("oapp", chan_a), IbcError);
}

}  // namespace
}  // namespace bmg::ibc
