#include "ibc/packet.hpp"

#include <gtest/gtest.h>

#include "ibc/commitment.hpp"
#include "ibc/handshake.hpp"

namespace bmg::ibc {
namespace {

Packet sample_packet() {
  Packet p;
  p.sequence = 42;
  p.source_port = "transfer";
  p.source_channel = "channel-0";
  p.dest_port = "transfer";
  p.dest_channel = "channel-7";
  p.data = bytes_of("payload");
  p.timeout_height = 100;
  p.timeout_timestamp = 123.5;
  return p;
}

TEST(Packet, EncodeDecodeRoundTrip) {
  const Packet p = sample_packet();
  EXPECT_EQ(Packet::decode(p.encode()), p);
}

TEST(Packet, CommitmentCoversTimeoutsAndData) {
  const Packet p = sample_packet();
  Packet q = p;
  q.data = bytes_of("other");
  EXPECT_NE(p.commitment(), q.commitment());
  q = p;
  q.timeout_height = 101;
  EXPECT_NE(p.commitment(), q.commitment());
  q = p;
  q.timeout_timestamp = 124.0;
  EXPECT_NE(p.commitment(), q.commitment());
}

TEST(Packet, CommitmentIgnoresRouting) {
  // ICS-4: the commitment covers data + timeouts; routing is bound via
  // the commitment *key* (port/channel/sequence).
  const Packet p = sample_packet();
  Packet q = p;
  q.dest_channel = "channel-9";
  EXPECT_EQ(p.commitment(), q.commitment());
}

TEST(Ack, RoundTripSuccess) {
  const Acknowledgement a = Acknowledgement::ok(bytes_of("result"));
  const Acknowledgement b = Acknowledgement::decode(a.encode());
  EXPECT_TRUE(b.success);
  EXPECT_EQ(b.result, bytes_of("result"));
}

TEST(Ack, RoundTripFailure) {
  const Acknowledgement a = Acknowledgement::fail("bad things");
  const Acknowledgement b = Acknowledgement::decode(a.encode());
  EXPECT_FALSE(b.success);
  EXPECT_EQ(b.error, "bad things");
}

TEST(Ack, CommitmentsDiffer) {
  EXPECT_NE(Acknowledgement::ok().commitment(),
            Acknowledgement::fail("x").commitment());
}

TEST(CommitmentKeys, FixedWidth) {
  const auto a = packet_key(KeyKind::kPacketCommitment, "transfer", "channel-0", 1);
  const auto b = packet_key(KeyKind::kPacketReceipt, "p", "c", 99999);
  EXPECT_EQ(a.size(), 17u);
  EXPECT_EQ(b.size(), 17u);
  EXPECT_EQ(channel_key("transfer", "channel-0").size(), 17u);
  EXPECT_EQ(connection_key("connection-0").size(), 17u);
}

TEST(CommitmentKeys, DistinctAcrossDimensions) {
  const auto k = [](KeyKind kind, const char* p, const char* c, std::uint64_t s) {
    return packet_key(kind, p, c, s);
  };
  const auto base = k(KeyKind::kPacketCommitment, "transfer", "channel-0", 5);
  EXPECT_NE(base, k(KeyKind::kPacketReceipt, "transfer", "channel-0", 5));
  EXPECT_NE(base, k(KeyKind::kPacketCommitment, "other", "channel-0", 5));
  EXPECT_NE(base, k(KeyKind::kPacketCommitment, "transfer", "channel-1", 5));
  EXPECT_NE(base, k(KeyKind::kPacketCommitment, "transfer", "channel-0", 6));
}

TEST(CommitmentKeys, MonotonicInSequence) {
  // Big-endian sequence encoding => lexicographic order matches
  // numeric order, which the safe-sealing argument relies on.
  Bytes prev = packet_key(KeyKind::kPacketReceipt, "transfer", "channel-0", 0).to_bytes();
  for (std::uint64_t s = 1; s < 1000; s += 7) {
    const Bytes cur =
        packet_key(KeyKind::kPacketReceipt, "transfer", "channel-0", s).to_bytes();
    EXPECT_LT(prev, cur);
    prev = cur;
  }
}

TEST(HandshakeEnds, ConnectionRoundTrip) {
  ConnectionEnd c;
  c.state = ConnectionState::kTryOpen;
  c.client_id = "guest-0";
  c.counterparty_connection = "connection-3";
  c.counterparty_client_id = "tendermint-1";
  EXPECT_EQ(ConnectionEnd::decode(c.encode()), c);
}

TEST(HandshakeEnds, ChannelRoundTrip) {
  ChannelEnd c;
  c.state = ChannelState::kOpen;
  c.connection = "connection-0";
  c.counterparty_port = "transfer";
  c.counterparty_channel = "channel-2";
  EXPECT_EQ(ChannelEnd::decode(c.encode()), c);
}

TEST(HandshakeEnds, CommitmentTracksState) {
  ConnectionEnd c;
  c.client_id = "guest-0";
  const Hash32 init = c.commitment();
  c.state = ConnectionState::kOpen;
  EXPECT_NE(c.commitment(), init);
}

}  // namespace
}  // namespace bmg::ibc
