// End-to-end tests of the IBC core: two modules, full connection and
// channel handshakes, packet flow with real trie proofs, double
// delivery guards, timeouts and bounded storage.
#include "ibc/module.hpp"

#include <gtest/gtest.h>

#include "ibc/transfer.hpp"

namespace bmg::ibc {
namespace {

/// Records app callbacks and returns configurable acks.
class MockApp final : public IbcApp {
 public:
  Acknowledgement on_recv_packet(const Packet& packet) override {
    received.push_back(packet);
    if (fail_next_recv) {
      fail_next_recv = false;
      throw IbcError("app rejected packet");
    }
    return Acknowledgement::ok(bytes_of("ok"));
  }
  void on_acknowledge(const Packet& packet, const Acknowledgement& ack) override {
    acked.emplace_back(packet, ack);
  }
  void on_timeout(const Packet& packet) override { timed_out.push_back(packet); }

  std::vector<Packet> received;
  std::vector<std::pair<Packet, Acknowledgement>> acked;
  std::vector<Packet> timed_out;
  bool fail_next_recv = false;
};

/// Two IBC modules connected through trusting light clients that are
/// manually synchronized — the pure-protocol harness (chains and
/// relayers come in later test layers).
class ModulePair : public ::testing::Test {
 protected:
  ModulePair() : module_a(store_a), module_b(store_b) {
    auto ca = std::make_unique<TrustingLightClient>();
    auto cb = std::make_unique<TrustingLightClient>();
    client_of_b = ca.get();  // lives in A, tracks B
    client_of_a = cb.get();  // lives in B, tracks A
    client_ab = module_a.add_client(std::move(ca));
    client_ba = module_b.add_client(std::move(cb));
    module_a.bind_port("transfer", &app_a);
    module_b.bind_port("transfer", &app_b);
    sync();
  }

  /// Publishes both chains' current roots at a fresh height.
  Height sync(Timestamp timestamp = 0.0) {
    const Height h = next_height_++;
    if (timestamp == 0.0) timestamp = static_cast<Timestamp>(h);
    client_of_b->seed(h, ConsensusState{store_b.root_hash(), timestamp});
    client_of_a->seed(h, ConsensusState{store_a.root_hash(), timestamp});
    last_sync_ = h;
    return h;
  }

  void open_connection() {
    conn_a = module_a.conn_open_init(client_ab, client_ba);
    Height h = sync();
    conn_b = module_b.conn_open_try(client_ba, client_ab, conn_a,
                                    module_a.connection(conn_a), h,
                                    store_a.prove(connection_key(conn_a)));
    h = sync();
    module_a.conn_open_ack(conn_a, conn_b, module_b.connection(conn_b), h,
                           store_b.prove(connection_key(conn_b)));
    h = sync();
    module_b.conn_open_confirm(conn_b, module_a.connection(conn_a), h,
                               store_a.prove(connection_key(conn_a)));
    sync();
  }

  void open_channel(const PortId& port = "transfer") {
    chan_a = module_a.chan_open_init(port, conn_a, port);
    Height h = sync();
    chan_b = module_b.chan_open_try(port, conn_b, port, chan_a,
                                    module_a.channel(port, chan_a), h,
                                    store_a.prove(channel_key(port, chan_a)));
    h = sync();
    module_a.chan_open_ack(port, chan_a, chan_b, module_b.channel(port, chan_b), h,
                           store_b.prove(channel_key(port, chan_b)));
    h = sync();
    module_b.chan_open_confirm(port, chan_b, module_a.channel(port, chan_a), h,
                               store_a.prove(channel_key(port, chan_a)));
    sync();
  }

  /// Relays one packet from A to B, returning B's ack.
  Acknowledgement relay_to_b(const Packet& p, Height self_height = 1,
                             Timestamp self_time = 1.0) {
    const Height h = sync();
    const auto proof = store_a.prove(packet_key(
        KeyKind::kPacketCommitment, p.source_port, p.source_channel, p.sequence));
    return module_b.recv_packet(p, h, proof, self_height, self_time);
  }

  /// Relays an ack from B back to A.
  void relay_ack_to_a(const Packet& p, const Acknowledgement& ack) {
    const Height h = sync();
    const auto proof = store_b.prove(
        packet_key(KeyKind::kPacketAck, p.dest_port, p.dest_channel, p.sequence));
    module_a.acknowledge_packet(p, ack, h, proof);
  }

  trie::SealableTrie store_a, store_b;
  IbcModule module_a, module_b;
  TrustingLightClient* client_of_b = nullptr;
  TrustingLightClient* client_of_a = nullptr;
  ClientId client_ab, client_ba;
  ConnectionId conn_a, conn_b;
  ChannelId chan_a, chan_b;
  MockApp app_a, app_b;
  Height next_height_ = 1;
  Height last_sync_ = 0;
};

TEST_F(ModulePair, ConnectionHandshakeCompletes) {
  open_connection();
  EXPECT_EQ(module_a.connection(conn_a).state, ConnectionState::kOpen);
  EXPECT_EQ(module_b.connection(conn_b).state, ConnectionState::kOpen);
  EXPECT_EQ(module_a.connection(conn_a).counterparty_connection, conn_b);
  EXPECT_EQ(module_b.connection(conn_b).counterparty_connection, conn_a);
}

TEST_F(ModulePair, ConnTryRejectsWrongProof) {
  conn_a = module_a.conn_open_init(client_ab, client_ba);
  const Height h = sync();
  // Tamper with the claimed end: state OPEN instead of INIT.
  ConnectionEnd tampered = module_a.connection(conn_a);
  tampered.state = ConnectionState::kOpen;
  EXPECT_THROW((void)module_b.conn_open_try(client_ba, client_ab, conn_a, tampered, h,
                                            store_a.prove(connection_key(conn_a))),
               IbcError);
}

TEST_F(ModulePair, ConnTryRejectsStaleHeight) {
  conn_a = module_a.conn_open_init(client_ab, client_ba);
  // No sync: client has no consensus at this height.
  EXPECT_THROW((void)module_b.conn_open_try(client_ba, client_ab, conn_a,
                                            module_a.connection(conn_a), 999,
                                            store_a.prove(connection_key(conn_a))),
               IbcError);
}

TEST_F(ModulePair, ConnAckValidatesCounterpartyBinding) {
  open_connection();
  // A second handshake attempt whose TRY end names a different
  // connection must be rejected.
  const ConnectionId conn_a2 = module_a.conn_open_init(client_ab, client_ba);
  const Height h = sync();
  ConnectionEnd b_end = module_b.connection(conn_b);  // names conn_a, not conn_a2
  EXPECT_THROW(module_a.conn_open_ack(conn_a2, conn_b, b_end, h,
                                      store_b.prove(connection_key(conn_b))),
               IbcError);
}

TEST_F(ModulePair, ChannelHandshakeCompletes) {
  open_connection();
  open_channel();
  EXPECT_EQ(module_a.channel("transfer", chan_a).state, ChannelState::kOpen);
  EXPECT_EQ(module_b.channel("transfer", chan_b).state, ChannelState::kOpen);
  EXPECT_EQ(module_a.channel("transfer", chan_a).counterparty_channel, chan_b);
  EXPECT_EQ(module_b.channel("transfer", chan_b).counterparty_channel, chan_a);
}

TEST_F(ModulePair, SendPacketAssignsSequentialSequences) {
  open_connection();
  open_channel();
  const Packet p1 = module_a.send_packet("transfer", chan_a, bytes_of("one"), 100, 0);
  const Packet p2 = module_a.send_packet("transfer", chan_a, bytes_of("two"), 100, 0);
  EXPECT_EQ(p1.sequence, 1u);
  EXPECT_EQ(p2.sequence, 2u);
  EXPECT_EQ(p1.dest_port, "transfer");
  EXPECT_EQ(p1.dest_channel, chan_b);
  EXPECT_TRUE(module_a.packet_pending("transfer", chan_a, 1));
}

TEST_F(ModulePair, SendRequiresTimeout) {
  open_connection();
  open_channel();
  EXPECT_THROW((void)module_a.send_packet("transfer", chan_a, bytes_of("x"), 0, 0),
               IbcError);
}

TEST_F(ModulePair, SendOnClosedChannelFails) {
  open_connection();
  EXPECT_THROW((void)module_a.send_packet("transfer", "channel-99", bytes_of("x"), 1, 0),
               IbcError);
}

TEST_F(ModulePair, FullPacketRoundTrip) {
  open_connection();
  open_channel();
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("hello"), 1000, 0);
  const Acknowledgement ack = relay_to_b(p);
  EXPECT_TRUE(ack.success);
  ASSERT_EQ(app_b.received.size(), 1u);
  EXPECT_EQ(app_b.received[0].data, bytes_of("hello"));
  EXPECT_TRUE(module_b.packet_received("transfer", chan_b, 1));

  relay_ack_to_a(p, ack);
  ASSERT_EQ(app_a.acked.size(), 1u);
  EXPECT_TRUE(app_a.acked[0].second.success);
  EXPECT_FALSE(module_a.packet_pending("transfer", chan_a, 1));
}

TEST_F(ModulePair, DoubleDeliveryBlocked) {
  open_connection();
  open_channel();
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 1000, 0);
  (void)relay_to_b(p);
  EXPECT_THROW((void)relay_to_b(p), IbcError);
  EXPECT_EQ(app_b.received.size(), 1u);
}

TEST_F(ModulePair, TamperedPacketRejected) {
  open_connection();
  open_channel();
  Packet p = module_a.send_packet("transfer", chan_a, bytes_of("real"), 1000, 0);
  p.data = bytes_of("fake");
  EXPECT_THROW((void)relay_to_b(p), IbcError);
  EXPECT_TRUE(app_b.received.empty());
}

TEST_F(ModulePair, UnknownSequenceRejected) {
  open_connection();
  open_channel();
  Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 1000, 0);
  p.sequence = 5;  // never sent
  EXPECT_THROW((void)relay_to_b(p), IbcError);
}

TEST_F(ModulePair, AppFailureBecomesErrorAck) {
  open_connection();
  open_channel();
  app_b.fail_next_recv = true;
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 1000, 0);
  const Acknowledgement ack = relay_to_b(p);
  EXPECT_FALSE(ack.success);
  EXPECT_EQ(ack.error, "app rejected packet");
  // The packet still counts as delivered (receipt written).
  EXPECT_TRUE(module_b.packet_received("transfer", chan_b, 1));
  // And the error ack flows back.
  relay_ack_to_a(p, ack);
  ASSERT_EQ(app_a.acked.size(), 1u);
  EXPECT_FALSE(app_a.acked[0].second.success);
}

TEST_F(ModulePair, OutOfOrderDeliveryOnUnorderedChannel) {
  open_connection();
  open_channel();
  std::vector<Packet> packets;
  for (int i = 0; i < 4; ++i)
    packets.push_back(
        module_a.send_packet("transfer", chan_a, bytes_of("p" + std::to_string(i)), 1000, 0));
  // Deliver 3, 1, 4, 2.
  (void)relay_to_b(packets[2]);
  (void)relay_to_b(packets[0]);
  (void)relay_to_b(packets[3]);
  (void)relay_to_b(packets[1]);
  EXPECT_EQ(app_b.received.size(), 4u);
  for (std::uint64_t s = 1; s <= 4; ++s)
    EXPECT_TRUE(module_b.packet_received("transfer", chan_b, s));
}

TEST_F(ModulePair, RecvRejectsTimedOutPacket) {
  open_connection();
  open_channel();
  const Packet ph = module_a.send_packet("transfer", chan_a, bytes_of("x"), 10, 0);
  EXPECT_THROW((void)relay_to_b(ph, /*self_height=*/10, /*self_time=*/1.0), IbcError);

  const Packet pt = module_a.send_packet("transfer", chan_a, bytes_of("y"), 0, 50.0);
  EXPECT_THROW((void)relay_to_b(pt, /*self_height=*/1, /*self_time=*/50.0), IbcError);
}

TEST_F(ModulePair, TimeoutReleasesPacket) {
  open_connection();
  open_channel();
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 0, 25.0);
  // Never delivered to B.  Publish B's root with a late timestamp.
  const Height h = sync(/*timestamp=*/30.0);
  const auto absence = store_b.prove(
      packet_key(KeyKind::kPacketReceipt, p.dest_port, p.dest_channel, p.sequence));
  module_a.timeout_packet(p, h, absence);
  ASSERT_EQ(app_a.timed_out.size(), 1u);
  EXPECT_FALSE(module_a.packet_pending("transfer", chan_a, 1));
}

TEST_F(ModulePair, TimeoutRejectedBeforeDeadline) {
  open_connection();
  open_channel();
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 0, 25.0);
  const Height h = sync(/*timestamp=*/10.0);  // too early
  const auto absence = store_b.prove(
      packet_key(KeyKind::kPacketReceipt, p.dest_port, p.dest_channel, p.sequence));
  EXPECT_THROW(module_a.timeout_packet(p, h, absence), IbcError);
}

TEST_F(ModulePair, TimeoutRejectedWhenDelivered) {
  open_connection();
  open_channel();
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 0, 25.0);
  (void)relay_to_b(p, 1, 1.0);  // delivered in time
  const Height h = sync(/*timestamp=*/30.0);
  const auto receipt_key =
      packet_key(KeyKind::kPacketReceipt, p.dest_port, p.dest_channel, p.sequence);
  const auto proof = store_b.prove(receipt_key);
  // Receipt exists => non-membership verification fails.
  EXPECT_THROW(module_a.timeout_packet(p, h, proof), IbcError);
}

TEST_F(ModulePair, DuplicateAckRejected) {
  open_connection();
  open_channel();
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 1000, 0);
  const Acknowledgement ack = relay_to_b(p);
  relay_ack_to_a(p, ack);
  EXPECT_THROW(relay_ack_to_a(p, ack), IbcError);
  EXPECT_EQ(app_a.acked.size(), 1u);
}

TEST_F(ModulePair, WrongAckValueRejected) {
  open_connection();
  open_channel();
  const Packet p = module_a.send_packet("transfer", chan_a, bytes_of("x"), 1000, 0);
  (void)relay_to_b(p);
  const Height h = sync();
  const auto proof = store_b.prove(
      packet_key(KeyKind::kPacketAck, p.dest_port, p.dest_channel, p.sequence));
  // Claim a different ack than what B wrote.
  EXPECT_THROW(
      module_a.acknowledge_packet(p, Acknowledgement::fail("forged"), h, proof),
      IbcError);
}

TEST_F(ModulePair, StorageStaysBoundedUnderSustainedTraffic) {
  open_connection();
  open_channel();
  std::size_t peak_a = 0, peak_b = 0;
  for (int i = 0; i < 300; ++i) {
    const Packet p =
        module_a.send_packet("transfer", chan_a, bytes_of("pkt" + std::to_string(i)), 1'000'000, 0);
    const Acknowledgement ack = relay_to_b(p);
    relay_ack_to_a(p, ack);
    peak_a = std::max(peak_a, store_a.stats().node_count());
    peak_b = std::max(peak_b, store_b.stats().node_count());
  }
  // The sealable trie keeps live state near the in-flight window
  // (paper §III-A), far below the 300 processed packets.  B's window
  // includes the lagged ack entries.
  EXPECT_LT(peak_a, 60u);
  EXPECT_LT(peak_b, 250u);
  // Sealed commitments cannot be acked again.
  EXPECT_FALSE(module_a.packet_pending("transfer", chan_a, 1));
}

TEST_F(ModulePair, BidirectionalTraffic) {
  open_connection();
  open_channel();
  const Packet pa = module_a.send_packet("transfer", chan_a, bytes_of("a->b"), 1000, 0);
  const Packet pb = module_b.send_packet("transfer", chan_b, bytes_of("b->a"), 1000, 0);

  const Acknowledgement ack_b = relay_to_b(pa);
  // Relay B's packet to A.
  const Height h = sync();
  const auto proof = store_b.prove(packet_key(KeyKind::kPacketCommitment, "transfer",
                                              chan_b, pb.sequence));
  const Acknowledgement ack_a = module_a.recv_packet(pb, h, proof, 1, 1.0);

  EXPECT_TRUE(ack_b.success);
  EXPECT_TRUE(ack_a.success);
  EXPECT_EQ(app_b.received.size(), 1u);
  EXPECT_EQ(app_a.received.size(), 1u);
}

}  // namespace
}  // namespace bmg::ibc
