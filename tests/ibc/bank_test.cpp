#include "ibc/bank.hpp"

#include <gtest/gtest.h>

namespace bmg::ibc {
namespace {

TEST(Bank, MintAndBalance) {
  Bank b;
  b.mint("alice", "SOL", 100);
  EXPECT_EQ(b.balance("alice", "SOL"), 100u);
  EXPECT_EQ(b.total_supply("SOL"), 100u);
  EXPECT_EQ(b.balance("alice", "PICA"), 0u);
  EXPECT_EQ(b.balance("bob", "SOL"), 0u);
}

TEST(Bank, TransferMovesFunds) {
  Bank b;
  b.mint("alice", "SOL", 100);
  b.transfer("alice", "bob", "SOL", 40);
  EXPECT_EQ(b.balance("alice", "SOL"), 60u);
  EXPECT_EQ(b.balance("bob", "SOL"), 40u);
  EXPECT_EQ(b.total_supply("SOL"), 100u);  // conserved
}

TEST(Bank, TransferInsufficientThrows) {
  Bank b;
  b.mint("alice", "SOL", 10);
  EXPECT_THROW(b.transfer("alice", "bob", "SOL", 11), IbcError);
  EXPECT_EQ(b.balance("alice", "SOL"), 10u);
}

TEST(Bank, BurnReducesSupply) {
  Bank b;
  b.mint("alice", "SOL", 100);
  b.burn("alice", "SOL", 30);
  EXPECT_EQ(b.balance("alice", "SOL"), 70u);
  EXPECT_EQ(b.total_supply("SOL"), 70u);
}

TEST(Bank, BurnInsufficientThrows) {
  Bank b;
  EXPECT_THROW(b.burn("alice", "SOL", 1), IbcError);
}

TEST(Bank, DenomsAreIndependent) {
  Bank b;
  b.mint("alice", "SOL", 5);
  b.mint("alice", "transfer/channel-0/SOL", 7);
  EXPECT_EQ(b.balance("alice", "SOL"), 5u);
  EXPECT_EQ(b.balance("alice", "transfer/channel-0/SOL"), 7u);
  EXPECT_EQ(b.total_supply("SOL"), 5u);
}

TEST(Bank, SelfTransferIsIdempotent) {
  Bank b;
  b.mint("alice", "SOL", 10);
  b.transfer("alice", "alice", "SOL", 10);
  EXPECT_EQ(b.balance("alice", "SOL"), 10u);
}

}  // namespace
}  // namespace bmg::ibc
