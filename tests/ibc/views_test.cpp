// Zero-copy view tests: every view must agree byte-for-byte with the
// owning decode on well-formed input, and throw CodecError (never UB)
// on every possible truncation of the wire bytes.
#include "ibc/views.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/codec.hpp"
#include "crypto/keys.hpp"

namespace bmg::ibc {
namespace {

Packet sample_packet() {
  Packet p;
  p.sequence = 42;
  p.source_port = "transfer";
  p.source_channel = "channel-0";
  p.dest_port = "transfer";
  p.dest_channel = "channel-7";
  p.data = Bytes{0xde, 0xad, 0xbe, 0xef, 0x00, 0x11};
  p.timeout_height = 9001;
  p.timeout_timestamp = 1234.5;
  return p;
}

ValidatorSet sample_validators(int n) {
  ValidatorSet vs;
  for (int i = 0; i < n; ++i)
    vs.add(crypto::PrivateKey::from_label("view-val-" + std::to_string(i)).public_key(),
           100 + static_cast<std::uint64_t>(i));
  return vs;
}

SignedQuorumHeader sample_signed_header(bool with_next) {
  SignedQuorumHeader sh;
  sh.header.chain_id = "viewchain";
  sh.header.height = 77;
  sh.header.timestamp = 55.25;
  sh.header.state_root.bytes[0] = 0xaa;
  sh.header.validator_set_hash.bytes[31] = 0xbb;
  sh.header.extra = Bytes{1, 2, 3};
  for (int i = 0; i < 4; ++i) {
    const auto key = crypto::PrivateKey::from_label("view-sig-" + std::to_string(i));
    sh.signatures.emplace_back(key.public_key(),
                               key.sign(sh.header.signing_digest().view()));
  }
  if (with_next) sh.next_validators = sample_validators(3);
  return sh;
}

/// Parses every strict prefix of `wire` and requires CodecError from
/// each; a single missing byte anywhere must be caught at parse().
template <typename View>
void expect_all_truncations_throw(const Bytes& wire) {
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_THROW((void)View::parse(ByteView{wire.data(), cut}), CodecError)
        << "prefix length " << cut << " of " << wire.size();
  }
}

// --- PacketView ----------------------------------------------------------

TEST(PacketView, AgreesWithOwningDecode) {
  const Packet p = sample_packet();
  const Bytes wire = p.encode();
  const PacketView v = PacketView::parse(wire);

  EXPECT_EQ(v.sequence, p.sequence);
  EXPECT_EQ(v.source_port, p.source_port);
  EXPECT_EQ(v.source_channel, p.source_channel);
  EXPECT_EQ(v.dest_port, p.dest_port);
  EXPECT_EQ(v.dest_channel, p.dest_channel);
  EXPECT_EQ(Bytes(v.data.begin(), v.data.end()), p.data);
  EXPECT_EQ(v.timeout_height, p.timeout_height);
  EXPECT_DOUBLE_EQ(v.timeout_timestamp(), p.timeout_timestamp);
  EXPECT_EQ(v.commitment(), p.commitment());
  EXPECT_EQ(v.to_owned(), p);
  EXPECT_EQ(v.to_owned().encode(), wire);
}

TEST(PacketView, BorrowsRatherThanCopies) {
  const Bytes wire = sample_packet().encode();
  const PacketView v = PacketView::parse(wire);
  // The views must point into the original buffer.
  EXPECT_GE(v.data.data(), wire.data());
  EXPECT_LE(v.data.data() + v.data.size(), wire.data() + wire.size());
  EXPECT_EQ(v.wire.data(), wire.data());
  EXPECT_EQ(v.wire.size(), wire.size());
}

TEST(PacketView, EveryTruncationThrows) {
  expect_all_truncations_throw<PacketView>(sample_packet().encode());
}

TEST(PacketView, TrailingBytesThrow) {
  Bytes wire = sample_packet().encode();
  wire.push_back(0x00);
  EXPECT_THROW((void)PacketView::parse(wire), CodecError);
}

// --- AckView -------------------------------------------------------------

TEST(AckView, AgreesWithOwningDecode) {
  for (const Acknowledgement& a :
       {Acknowledgement::ok(Bytes{9, 9, 9}), Acknowledgement::fail("bad things"),
        Acknowledgement::ok()}) {
    const Bytes wire = a.encode();
    const AckView v = AckView::parse(wire);
    EXPECT_EQ(v.success, a.success);
    EXPECT_EQ(Bytes(v.result.begin(), v.result.end()), a.result);
    EXPECT_EQ(v.error, a.error);
    EXPECT_EQ(v.commitment(), a.commitment());
    EXPECT_EQ(v.to_owned(), a);
  }
}

TEST(AckView, EveryTruncationThrows) {
  expect_all_truncations_throw<AckView>(Acknowledgement::fail("reason").encode());
  expect_all_truncations_throw<AckView>(Acknowledgement::ok(Bytes{1, 2}).encode());
}

TEST(AckView, BadBooleanThrows) {
  Bytes wire = Acknowledgement::ok().encode();
  wire[0] = 0x02;  // boolean must be 0 or 1
  EXPECT_THROW((void)AckView::parse(wire), CodecError);
}

// --- QuorumHeaderView ----------------------------------------------------

TEST(QuorumHeaderView, AgreesWithOwningDecode) {
  const QuorumHeader h = sample_signed_header(false).header;
  const Bytes wire = h.encode();
  const QuorumHeaderView v = QuorumHeaderView::parse(wire);

  EXPECT_EQ(v.chain_id, h.chain_id);
  EXPECT_EQ(v.height, h.height);
  EXPECT_DOUBLE_EQ(v.timestamp(), h.timestamp);
  EXPECT_EQ(v.state_root, h.state_root);
  EXPECT_EQ(v.validator_set_hash, h.validator_set_hash);
  EXPECT_EQ(Bytes(v.extra.begin(), v.extra.end()), h.extra);
  // Canonical codec: hashing the borrowed wire equals the owning
  // struct's signing digest.
  EXPECT_EQ(v.signing_digest(), h.signing_digest());
  EXPECT_EQ(v.to_owned(), h);
}

TEST(QuorumHeaderView, EveryTruncationThrows) {
  expect_all_truncations_throw<QuorumHeaderView>(
      sample_signed_header(false).header.encode());
}

// --- ValidatorSetView ----------------------------------------------------

TEST(ValidatorSetView, AgreesWithOwningDecode) {
  const ValidatorSet vs = sample_validators(5);
  const Bytes wire = vs.encode();
  const ValidatorSetView v = ValidatorSetView::parse(wire);

  ASSERT_EQ(v.count, vs.size());
  for (std::uint32_t i = 0; i < v.count; ++i) {
    const auto& entry = vs.entries()[i];
    EXPECT_EQ(std::memcmp(v.key_at(i).data(), entry.key.raw().data(), 32), 0);
    EXPECT_EQ(v.stake_at(i), entry.stake);
  }
  EXPECT_EQ(v.hash(), vs.hash());
  EXPECT_EQ(v.to_owned(), vs);
}

TEST(ValidatorSetView, EmptySet) {
  const ValidatorSet vs;
  const Bytes wire = vs.encode();  // views borrow: the buffer must outlive them
  const ValidatorSetView v = ValidatorSetView::parse(wire);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.hash(), vs.hash());
}

TEST(ValidatorSetView, EveryTruncationThrows) {
  expect_all_truncations_throw<ValidatorSetView>(sample_validators(3).encode());
}

TEST(ValidatorSetView, ImplausibleCountThrows) {
  Encoder e;
  e.u32(0xffffffffu);  // claims 4B validators with no records
  EXPECT_THROW((void)ValidatorSetView::parse(e.out()), CodecError);
}

// --- SignedQuorumHeaderView ----------------------------------------------

TEST(SignedQuorumHeaderView, AgreesWithOwningDecode) {
  for (const bool with_next : {false, true}) {
    const SignedQuorumHeader sh = sample_signed_header(with_next);
    const Bytes wire = sh.encode();
    const SignedQuorumHeaderView v = SignedQuorumHeaderView::parse(wire);

    EXPECT_EQ(v.header.chain_id, sh.header.chain_id);
    EXPECT_EQ(v.header.height, sh.header.height);
    EXPECT_EQ(v.signing_digest(), sh.signing_digest());
    ASSERT_EQ(v.signature_count, sh.signatures.size());
    for (std::uint32_t i = 0; i < v.signature_count; ++i) {
      EXPECT_EQ(v.signer_at(i), sh.signatures[i].first);
      EXPECT_EQ(std::memcmp(v.signature_at(i).data(),
                            sh.signatures[i].second.raw().data(), 64),
                0);
    }
    EXPECT_EQ(v.next_validators.has_value(), with_next);
    if (with_next) EXPECT_EQ(v.next_validators->to_owned(), *sh.next_validators);

    const SignedQuorumHeader owned = v.to_owned();
    EXPECT_EQ(owned.encode(), wire);
  }
}

TEST(SignedQuorumHeaderView, EveryTruncationThrows) {
  expect_all_truncations_throw<SignedQuorumHeaderView>(
      sample_signed_header(false).encode());
  expect_all_truncations_throw<SignedQuorumHeaderView>(
      sample_signed_header(true).encode());
}

TEST(SignedQuorumHeaderView, CorruptedNestedLengthThrows) {
  const SignedQuorumHeader sh = sample_signed_header(false);
  Bytes wire = sh.encode();
  // The leading u32 is the embedded header blob length; inflating it
  // past the buffer must throw, not read out of bounds.
  wire[0] = 0xff;
  EXPECT_THROW((void)SignedQuorumHeaderView::parse(wire), CodecError);
}

TEST(SignedQuorumHeaderView, FlippedWireBitsNeverCrash) {
  // Byte-level fuzz: flipping any single byte either still parses
  // (value change only) or throws CodecError — never UB.  The mutated
  // length/count fields exercise the bounds checks.
  const Bytes base = sample_signed_header(true).encode();
  for (std::size_t i = 0; i < base.size(); ++i) {
    Bytes mutated = base;
    mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ 0xff);
    try {
      const auto v = SignedQuorumHeaderView::parse(mutated);
      (void)v.signing_digest();  // any successfully parsed view is usable
    } catch (const CodecError&) {
      // acceptable
    }
  }
}

}  // namespace
}  // namespace bmg::ibc
