#include "ibc/quorum.hpp"

#include "ibc/packet.hpp"

#include <gtest/gtest.h>

namespace bmg::ibc {
namespace {

using crypto::PrivateKey;

ValidatorSet make_set(int n, std::uint64_t stake_each = 100) {
  ValidatorSet set;
  for (int i = 0; i < n; ++i)
    set.add(PrivateKey::from_label("qv-" + std::to_string(i)).public_key(), stake_each);
  return set;
}

QuorumHeader make_header(Height h, const ValidatorSet& set) {
  QuorumHeader hd;
  hd.chain_id = "testchain";
  hd.height = h;
  hd.timestamp = 10.0 * static_cast<double>(h);
  hd.state_root.bytes[0] = static_cast<std::uint8_t>(h);
  hd.validator_set_hash = set.hash();
  return hd;
}

SignedQuorumHeader sign_header(const QuorumHeader& hd, int n_signers) {
  SignedQuorumHeader sh;
  sh.header = hd;
  const Hash32 digest = hd.signing_digest();
  for (int i = 0; i < n_signers; ++i) {
    const PrivateKey k = PrivateKey::from_label("qv-" + std::to_string(i));
    sh.signatures.emplace_back(k.public_key(), k.sign(digest.view()));
  }
  return sh;
}

TEST(ValidatorSetTest, StakeArithmetic) {
  const ValidatorSet set = make_set(4, 100);
  EXPECT_EQ(set.total_stake(), 400u);
  EXPECT_EQ(set.quorum_stake(), 267u);  // > 2/3
  EXPECT_TRUE(set.contains(set.entries()[0].key));
  EXPECT_EQ(set.stake_of(set.entries()[2].key), 100u);
  EXPECT_FALSE(set.stake_of(PrivateKey::from_label("outsider").public_key()));
}

TEST(ValidatorSetTest, EncodeDecodeAndHash) {
  const ValidatorSet set = make_set(5, 77);
  EXPECT_EQ(ValidatorSet::decode(set.encode()), set);
  std::vector<ValidatorInfo> tweaked = set.entries();
  tweaked[0].stake = 78;
  const ValidatorSet other(std::move(tweaked));
  EXPECT_NE(set.hash(), other.hash());
}

TEST(QuorumHeaderTest, RoundTripAndDigest) {
  const ValidatorSet set = make_set(3);
  QuorumHeader h = make_header(7, set);
  h.extra = bytes_of("extra-data");
  EXPECT_EQ(QuorumHeader::decode(h.encode()), h);
  QuorumHeader h2 = h;
  h2.extra = bytes_of("tampered");
  EXPECT_NE(h.signing_digest(), h2.signing_digest());
}

TEST(SignedHeaderTest, RoundTripWithNextValidators) {
  const ValidatorSet set = make_set(3);
  SignedQuorumHeader sh = sign_header(make_header(1, set), 3);
  sh.next_validators = make_set(4);
  const SignedQuorumHeader back = SignedQuorumHeader::decode(sh.encode());
  EXPECT_EQ(back.header, sh.header);
  EXPECT_EQ(back.signatures.size(), 3u);
  ASSERT_TRUE(back.next_validators.has_value());
  EXPECT_EQ(*back.next_validators, *sh.next_validators);
  EXPECT_EQ(sh.byte_size(), sh.encode().size());
}

TEST(QuorumClient, AcceptsQuorumSignedHeader) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  client.update(sign_header(make_header(1, set), 3).encode());  // 300 >= 267
  EXPECT_EQ(client.latest_height(), 1u);
  const auto cs = client.consensus_at(1);
  ASSERT_TRUE(cs.has_value());
  EXPECT_EQ(cs->state_root.bytes[0], 1);
  EXPECT_DOUBLE_EQ(cs->timestamp, 10.0);
}

TEST(QuorumClient, RejectsInsufficientStake) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  EXPECT_THROW(client.update(sign_header(make_header(1, set), 2).encode()), IbcError);
}

TEST(QuorumClient, RejectsBadSignature) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  SignedQuorumHeader sh = sign_header(make_header(1, set), 3);
  auto raw = sh.signatures[0].second.raw();
  raw[5] ^= 1;
  sh.signatures[0].second = crypto::Signature(raw);
  EXPECT_THROW(client.update(sh.encode()), IbcError);
}

TEST(QuorumClient, RejectsOutsideSigner) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  SignedQuorumHeader sh = sign_header(make_header(1, set), 2);
  const PrivateKey outsider = PrivateKey::from_label("outsider");
  sh.signatures.emplace_back(outsider.public_key(),
                             outsider.sign(sh.header.signing_digest().view()));
  EXPECT_THROW(client.update(sh.encode()), IbcError);
}

TEST(QuorumClient, RejectsDuplicateSigner) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  SignedQuorumHeader sh = sign_header(make_header(1, set), 2);
  sh.signatures.push_back(sh.signatures[0]);  // double-count stake
  EXPECT_THROW(client.update(sh.encode()), IbcError);
}

TEST(QuorumClient, RejectsWrongChainId) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("otherchain", set);
  EXPECT_THROW(client.update(sign_header(make_header(1, set), 3).encode()), IbcError);
}

TEST(QuorumClient, RejectsNonMonotonicHeight) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  client.update(sign_header(make_header(5, set), 3).encode());
  EXPECT_THROW(client.update(sign_header(make_header(5, set), 3).encode()), IbcError);
  EXPECT_THROW(client.update(sign_header(make_header(4, set), 3).encode()), IbcError);
}

TEST(QuorumClient, RejectsUnknownValidatorSetHash) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  QuorumHeader h = make_header(1, make_set(9));  // wrong set hash
  EXPECT_THROW(client.update(sign_header(h, 3).encode()), IbcError);
}

TEST(QuorumClient, ValidatorSetRotation) {
  const ValidatorSet genesis = make_set(4);
  QuorumLightClient client("testchain", genesis);

  // Header 1 rotates to a new set of signers "rot-*".
  ValidatorSet next;
  for (int i = 0; i < 3; ++i)
    next.add(PrivateKey::from_label("rot-" + std::to_string(i)).public_key(), 50);
  SignedQuorumHeader sh1 = sign_header(make_header(1, genesis), 3);
  sh1.next_validators = next;
  client.update(sh1.encode());
  EXPECT_EQ(client.validators(), next);

  // Header 2 must now be signed by the *new* set.
  QuorumHeader h2 = make_header(2, next);
  SignedQuorumHeader sh2;
  sh2.header = h2;
  for (int i = 0; i < 3; ++i) {
    const PrivateKey k = PrivateKey::from_label("rot-" + std::to_string(i));
    sh2.signatures.emplace_back(k.public_key(), k.sign(h2.signing_digest().view()));
  }
  client.update(sh2.encode());
  EXPECT_EQ(client.latest_height(), 2u);

  // Old-set signatures no longer validate.
  SignedQuorumHeader stale = sign_header(make_header(3, genesis), 3);
  EXPECT_THROW(client.update(stale.encode()), IbcError);
}

TEST(QuorumClient, AcceptVerifiedSkipsSignatureCheck) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  SignedQuorumHeader sh;
  sh.header = make_header(1, set);  // no signatures at all
  client.accept_verified(sh);
  EXPECT_EQ(client.latest_height(), 1u);
}

TEST(QuorumHeaderTest, DigestStableAcrossCodecRoundTrip) {
  // Regression: timestamps that are not exactly representable in
  // binary (e.g. 40.14 s) must survive encode/decode without changing
  // the signing digest, or relayed headers would invalidate every
  // validator signature.
  const ValidatorSet set = make_set(3);
  for (double ts : {40.14, 0.1, 1234.000001, 86399.999999, 3.3333333}) {
    QuorumHeader h = make_header(1, set);
    h.timestamp = ts;
    const QuorumHeader back = QuorumHeader::decode(h.encode());
    EXPECT_EQ(back.signing_digest(), h.signing_digest()) << ts;
  }
}

TEST(QuorumHeaderTest, PacketCommitmentStableAcrossCodecRoundTrip) {
  Packet p;
  p.sequence = 1;
  p.source_port = p.dest_port = "transfer";
  p.source_channel = p.dest_channel = "channel-0";
  p.data = bytes_of("x");
  p.timeout_timestamp = 123.456789;
  const Packet back = Packet::decode(p.encode());
  EXPECT_EQ(back.commitment(), p.commitment());
  EXPECT_EQ(back.encode(), p.encode());
}

TEST(QuorumClient, MisbehaviourFreezesAndBlocksProofs) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  client.update(sign_header(make_header(1, set), 3).encode());
  ASSERT_TRUE(client.consensus_at(1).has_value());

  QuorumHeader fork = make_header(5, set);
  fork.state_root.bytes[5] = 0x77;
  client.submit_misbehaviour(sign_header(make_header(5, set), 3),
                             sign_header(fork, 3));
  EXPECT_TRUE(client.frozen());
  // Updates rejected, existing consensus withheld.
  EXPECT_THROW(client.update(sign_header(make_header(6, set), 3).encode()), IbcError);
  EXPECT_FALSE(client.consensus_at(1).has_value());
}

TEST(QuorumClient, MisbehaviourRequiresQuorumOnBothHeaders) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  QuorumHeader fork = make_header(5, set);
  fork.state_root.bytes[5] = 0x77;
  EXPECT_THROW(client.submit_misbehaviour(sign_header(make_header(5, set), 1),
                                          sign_header(fork, 3)),
               IbcError);
  EXPECT_FALSE(client.frozen());
}

TEST(QuorumClient, MisbehaviourRequiresSameHeightDistinctDigest) {
  const ValidatorSet set = make_set(4);
  QuorumLightClient client("testchain", set);
  EXPECT_THROW(client.submit_misbehaviour(sign_header(make_header(5, set), 3),
                                          sign_header(make_header(6, set), 3)),
               IbcError);
  const auto same = sign_header(make_header(5, set), 3);
  EXPECT_THROW(client.submit_misbehaviour(same, same), IbcError);
  EXPECT_FALSE(client.frozen());
}

TEST(QuorumClient, VerifySignaturesReturnsPower) {
  const ValidatorSet set = make_set(5, 10);
  const SignedQuorumHeader sh = sign_header(make_header(1, set), 4);
  EXPECT_EQ(QuorumLightClient::verify_signatures(sh, set), 40u);
}

TEST(QuorumClient, ExactQuorumBoundaryStake) {
  // Uneven stakes chosen so a signer subset can land exactly on the
  // quorum threshold and exactly one unit below it.
  ValidatorSet set;
  const std::uint64_t stakes[] = {266, 1, 133};  // total 400, quorum 267
  for (int i = 0; i < 3; ++i)
    set.add(PrivateKey::from_label("qv-" + std::to_string(i)).public_key(), stakes[i]);
  ASSERT_EQ(set.quorum_stake(), 267u);

  // 266 + 1 == 267: exactly at threshold, must be accepted.
  {
    QuorumLightClient client("testchain", set);
    client.update(sign_header(make_header(1, set), 2).encode());
    EXPECT_EQ(client.latest_height(), 1u);
  }
  // 266 alone: one below threshold, must be rejected.
  {
    QuorumLightClient client("testchain", set);
    EXPECT_THROW(client.update(sign_header(make_header(1, set), 1).encode()), IbcError);
  }
}

TEST(ValidatorSetTest, CachesInvalidateOnMutation) {
  ValidatorSet set = make_set(3, 100);
  const Hash32 h0 = set.hash();
  EXPECT_EQ(set.total_stake(), 300u);
  const crypto::PublicKey newcomer = PrivateKey::from_label("late").public_key();
  EXPECT_FALSE(set.contains(newcomer));  // builds the index

  set.add(newcomer, 50);
  EXPECT_NE(set.hash(), h0);
  EXPECT_EQ(set.total_stake(), 350u);
  EXPECT_EQ(set.stake_of(newcomer), 50u);

  set.assign({});
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_stake(), 0u);
  EXPECT_FALSE(set.contains(newcomer));
  EXPECT_NE(set.hash(), h0);
}

TEST(ValidatorSetTest, ByteSizeMatchesEncoding) {
  for (int n : {0, 1, 7}) {
    const ValidatorSet set = make_set(n);
    EXPECT_EQ(set.byte_size(), set.encode().size()) << n;
  }
}

TEST(SignedHeaderTest, ByteSizeMatchesEncodingWithoutNextValidators) {
  const ValidatorSet set = make_set(3);
  QuorumHeader hd = make_header(2, set);
  hd.extra = bytes_of("epoch-extra");
  const SignedQuorumHeader sh = sign_header(hd, 3);
  EXPECT_EQ(sh.byte_size(), sh.encode().size());
  EXPECT_EQ(hd.byte_size(), hd.encode().size());
}

}  // namespace
}  // namespace bmg::ibc
