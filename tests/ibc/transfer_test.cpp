// ICS-20 token transfer tests over the two-module harness.
#include "ibc/transfer.hpp"

#include <gtest/gtest.h>

namespace bmg::ibc {
namespace {

class TransferPair : public ::testing::Test {
 protected:
  TransferPair()
      : module_a(store_a),
        module_b(store_b),
        app_a(module_a, bank_a, "transfer"),
        app_b(module_b, bank_b, "transfer") {
    auto ca = std::make_unique<TrustingLightClient>();
    auto cb = std::make_unique<TrustingLightClient>();
    client_of_b = ca.get();
    client_of_a = cb.get();
    client_ab = module_a.add_client(std::move(ca));
    client_ba = module_b.add_client(std::move(cb));
    sync();
    open_all();
    bank_a.mint("alice", "SOL", 1000);
  }

  Height sync(Timestamp ts = 0.0) {
    const Height h = next_height_++;
    if (ts == 0.0) ts = static_cast<Timestamp>(h);
    client_of_b->seed(h, ConsensusState{store_b.root_hash(), ts});
    client_of_a->seed(h, ConsensusState{store_a.root_hash(), ts});
    return h;
  }

  void open_all() {
    conn_a = module_a.conn_open_init(client_ab, client_ba);
    Height h = sync();
    conn_b = module_b.conn_open_try(client_ba, client_ab, conn_a,
                                    module_a.connection(conn_a), h,
                                    store_a.prove(connection_key(conn_a)));
    h = sync();
    module_a.conn_open_ack(conn_a, conn_b, module_b.connection(conn_b), h,
                           store_b.prove(connection_key(conn_b)));
    h = sync();
    module_b.conn_open_confirm(conn_b, module_a.connection(conn_a), h,
                               store_a.prove(connection_key(conn_a)));
    chan_a = module_a.chan_open_init("transfer", conn_a, "transfer");
    h = sync();
    chan_b = module_b.chan_open_try("transfer", conn_b, "transfer", chan_a,
                                    module_a.channel("transfer", chan_a), h,
                                    store_a.prove(channel_key("transfer", chan_a)));
    h = sync();
    module_a.chan_open_ack("transfer", chan_a, chan_b,
                           module_b.channel("transfer", chan_b), h,
                           store_b.prove(channel_key("transfer", chan_b)));
    h = sync();
    module_b.chan_open_confirm("transfer", chan_b, module_a.channel("transfer", chan_a),
                               h, store_a.prove(channel_key("transfer", chan_a)));
    sync();
  }

  Acknowledgement deliver_to_b(const Packet& p) {
    const Height h = sync();
    return module_b.recv_packet(
        p, h,
        store_a.prove(packet_key(KeyKind::kPacketCommitment, p.source_port,
                                 p.source_channel, p.sequence)),
        1, 1.0);
  }

  Acknowledgement deliver_to_a(const Packet& p) {
    const Height h = sync();
    return module_a.recv_packet(
        p, h,
        store_b.prove(packet_key(KeyKind::kPacketCommitment, p.source_port,
                                 p.source_channel, p.sequence)),
        1, 1.0);
  }

  void ack_on_a(const Packet& p, const Acknowledgement& ack) {
    const Height h = sync();
    module_a.acknowledge_packet(
        p, ack, h,
        store_b.prove(
            packet_key(KeyKind::kPacketAck, p.dest_port, p.dest_channel, p.sequence)));
  }

  trie::SealableTrie store_a, store_b;
  IbcModule module_a, module_b;
  Bank bank_a, bank_b;
  TokenTransferApp app_a, app_b;
  TrustingLightClient *client_of_b = nullptr, *client_of_a = nullptr;
  ClientId client_ab, client_ba;
  ConnectionId conn_a, conn_b;
  ChannelId chan_a, chan_b;
  Height next_height_ = 1;
};

TEST_F(TransferPair, TransferMintsVoucherOnDestination) {
  const Packet p = app_a.send_transfer(chan_a, "SOL", 100, "alice", "bob", 1000, 0);
  EXPECT_EQ(bank_a.balance("alice", "SOL"), 900u);
  EXPECT_EQ(bank_a.balance(TokenTransferApp::escrow_account(chan_a), "SOL"), 100u);

  const Acknowledgement ack = deliver_to_b(p);
  EXPECT_TRUE(ack.success);
  const std::string voucher = "transfer/" + chan_b + "/SOL";
  EXPECT_EQ(bank_b.balance("bob", voucher), 100u);
  EXPECT_EQ(bank_b.total_supply(voucher), 100u);

  ack_on_a(p, ack);
  // Escrow still holds the backing tokens.
  EXPECT_EQ(bank_a.balance(TokenTransferApp::escrow_account(chan_a), "SOL"), 100u);
}

TEST_F(TransferPair, RoundTripReturnsTokensHome) {
  const Packet p1 = app_a.send_transfer(chan_a, "SOL", 100, "alice", "bob", 1000, 0);
  const Acknowledgement a1 = deliver_to_b(p1);
  ack_on_a(p1, a1);

  const std::string voucher = "transfer/" + chan_b + "/SOL";
  const Packet p2 = app_b.send_transfer(chan_b, voucher, 40, "bob", "alice", 1000, 0);
  // Voucher burned on B.
  EXPECT_EQ(bank_b.balance("bob", voucher), 60u);
  EXPECT_EQ(bank_b.total_supply(voucher), 60u);

  const Acknowledgement a2 = deliver_to_a(p2);
  EXPECT_TRUE(a2.success);
  // Escrow released at home.
  EXPECT_EQ(bank_a.balance("alice", "SOL"), 940u);
  EXPECT_EQ(bank_a.balance(TokenTransferApp::escrow_account(chan_a), "SOL"), 60u);
}

TEST_F(TransferPair, SupplyConservedAcrossChains) {
  const Packet p = app_a.send_transfer(chan_a, "SOL", 250, "alice", "bob", 1000, 0);
  const Acknowledgement ack = deliver_to_b(p);
  ack_on_a(p, ack);
  const std::string voucher = "transfer/" + chan_b + "/SOL";
  // Total SOL on A unchanged; vouchers on B exactly match escrowed SOL.
  EXPECT_EQ(bank_a.total_supply("SOL"), 1000u);
  EXPECT_EQ(bank_b.total_supply(voucher),
            bank_a.balance(TokenTransferApp::escrow_account(chan_a), "SOL"));
}

TEST_F(TransferPair, TimeoutRefundsSender) {
  const Packet p = app_a.send_transfer(chan_a, "SOL", 100, "alice", "bob", 0, 25.0);
  EXPECT_EQ(bank_a.balance("alice", "SOL"), 900u);
  // Never delivered; prove absence after the deadline.
  const Height h = sync(/*ts=*/30.0);
  module_a.timeout_packet(p, h,
                          store_b.prove(packet_key(KeyKind::kPacketReceipt, p.dest_port,
                                                   p.dest_channel, p.sequence)));
  EXPECT_EQ(bank_a.balance("alice", "SOL"), 1000u);
  EXPECT_EQ(bank_a.balance(TokenTransferApp::escrow_account(chan_a), "SOL"), 0u);
}

TEST_F(TransferPair, FailedAckRefundsSender) {
  // Craft a transfer that fails on B: bob returns a voucher that was
  // never minted — B's app throws, producing an error ack.
  bank_b.mint("bob", "transfer/" + chan_b + "/SOL", 10);
  const Packet p =
      app_b.send_transfer(chan_b, "transfer/" + chan_b + "/SOL", 10, "bob", "alice", 1000, 0);
  // Bob's voucher is burned on send.
  EXPECT_EQ(bank_b.balance("bob", "transfer/" + chan_b + "/SOL"), 0u);

  // Deliver to A: unescrow fails (escrow empty) => error ack.
  const Acknowledgement ack = deliver_to_a(p);
  EXPECT_FALSE(ack.success);

  // Relay the error ack back to B: bob is refunded.
  const Height h = sync();
  module_b.acknowledge_packet(
      p, ack, h,
      store_a.prove(
          packet_key(KeyKind::kPacketAck, p.dest_port, p.dest_channel, p.sequence)));
  EXPECT_EQ(bank_b.balance("bob", "transfer/" + chan_b + "/SOL"), 10u);
}

TEST_F(TransferPair, ZeroAmountRejectedAtSend) {
  EXPECT_THROW(
      (void)app_a.send_transfer(chan_a, "SOL", 0, "alice", "bob", 1000, 0),
      IbcError);
}

TEST_F(TransferPair, InsufficientBalanceRejectedAtSend) {
  EXPECT_THROW(
      (void)app_a.send_transfer(chan_a, "SOL", 5000, "alice", "bob", 1000, 0),
      IbcError);
}

TEST_F(TransferPair, MultiHopDenomTrace) {
  // A -> B gives "transfer/chan_b/SOL"; sending that voucher onward
  // from B over a *different* channel would stack another hop.  Here
  // we check the trace format after one hop and that round-tripping
  // strips exactly one prefix.
  const Packet p = app_a.send_transfer(chan_a, "SOL", 10, "alice", "bob", 1000, 0);
  (void)deliver_to_b(p);
  const std::string voucher = "transfer/" + chan_b + "/SOL";
  EXPECT_EQ(bank_b.balance("bob", voucher), 10u);

  const Packet back = app_b.send_transfer(chan_b, voucher, 10, "bob", "carol", 1000, 0);
  const TokenPacketData data = TokenPacketData::decode(back.data);
  EXPECT_EQ(data.denom, voucher);  // full trace travels in the packet
  (void)deliver_to_a(back);
  EXPECT_EQ(bank_a.balance("carol", "SOL"), 10u);  // prefix stripped at home
}

TEST_F(TransferPair, PacketDataRoundTrip) {
  const TokenPacketData d{"transfer/channel-3/uatom", 77, "alice", "bob"};
  EXPECT_EQ(TokenPacketData::decode(d.encode()), d);
}

}  // namespace
}  // namespace bmg::ibc
