#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/latency.hpp"

namespace bmg::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.at(3.0, [&] { order.push_back(3); });
  s.at(1.0, [&] { order.push_back(1); });
  s.at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Simulation, TiesFireInScheduleOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.at(5.0, [&, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, AfterIsRelative) {
  Simulation s;
  double fired_at = -1;
  s.at(2.0, [&] { s.after(1.5, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation s;
  double fired_at = -1;
  s.at(5.0, [&] { s.at(1.0, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulation, NegativeDelayClampsToZero) {
  Simulation s;
  double fired_at = -1;
  s.at(4.0, [&] { s.after(-10.0, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.at(i, [&] { ++count; });
  s.run_until(5.0);
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  s.run_until(20.0);
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(Simulation, StepReturnsFalseWhenEmpty) {
  Simulation s;
  EXPECT_FALSE(s.step());
  s.at(1.0, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(Simulation, SelfReschedulingChain) {
  Simulation s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 100) s.after(0.4, tick);
  };
  s.after(0.4, tick);
  s.run();
  EXPECT_EQ(ticks, 100);
  EXPECT_NEAR(s.now(), 40.0, 1e-9);
}

TEST(Simulation, CancellableTimerFiresWhenNotCancelled) {
  Simulation s;
  double fired_at = -1;
  const Simulation::TimerId id = s.after_cancellable(2.5, [&] { fired_at = s.now(); });
  EXPECT_NE(id, 0u);
  EXPECT_TRUE(s.timer_pending(id));
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
  EXPECT_FALSE(s.timer_pending(id));
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  const Simulation::TimerId id = s.after_cancellable(2.0, [&] { fired = true; });
  s.at(1.0, [&] { EXPECT_TRUE(s.cancel(id)); });
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(s.timer_pending(id));
  // The cancelled slot drains from the queue but is not "processed":
  // only the at(1.0) event counts.
  EXPECT_EQ(s.events_processed(), 1u);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);  // time still advances past the slot
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation s;
  const Simulation::TimerId id = s.after_cancellable(1.0, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulation, CancelIsIdempotentAndZeroIsNoop) {
  Simulation s;
  const Simulation::TimerId id = s.at_cancellable(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel: already gone
  EXPECT_FALSE(s.cancel(0));   // the null timer id
  s.run();
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(Simulation, CancelledAndLiveTimersInterleave) {
  Simulation s;
  std::vector<int> order;
  const Simulation::TimerId a = s.at_cancellable(1.0, [&] { order.push_back(1); });
  s.at_cancellable(2.0, [&] { order.push_back(2); });
  const Simulation::TimerId c = s.at_cancellable(3.0, [&] { order.push_back(3); });
  s.cancel(a);
  s.cancel(c);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(Simulation, TimerIdsAreUnique) {
  Simulation s;
  const Simulation::TimerId a = s.after_cancellable(1.0, [] {});
  const Simulation::TimerId b = s.after_cancellable(1.0, [] {});
  EXPECT_NE(a, b);
  s.run();
}

// --- per-agent timer ownership (crash-restart support) -----------------------

TEST(Simulation, CancelAgentKillsOnlyOwnedTimers) {
  Simulation s;
  const Simulation::AgentId alice = s.register_agent();
  const Simulation::AgentId bob = s.register_agent();
  EXPECT_NE(alice, 0u);
  EXPECT_NE(alice, bob);

  std::vector<int> fired;
  s.after_cancellable(1.0, [&] { fired.push_back(1); }, alice);
  s.after_cancellable(2.0, [&] { fired.push_back(2); }, bob);
  s.after_cancellable(3.0, [&] { fired.push_back(3); }, alice);
  s.after_cancellable(4.0, [&] { fired.push_back(4); });  // unowned

  EXPECT_EQ(s.cancel_agent(alice), 2u);
  s.run();
  EXPECT_EQ(fired, (std::vector<int>{2, 4}));
  // Cancelled slots drain without counting as processed.
  EXPECT_EQ(s.events_processed(), 2u);
}

TEST(Simulation, CancelAgentIsIdempotentAndSkipsFiredTimers) {
  Simulation s;
  const Simulation::AgentId agent = s.register_agent();
  int fired = 0;
  s.after_cancellable(1.0, [&] { ++fired; }, agent);
  s.after_cancellable(5.0, [&] { ++fired; }, agent);
  s.run_until(2.0);
  EXPECT_EQ(fired, 1);
  // Only the still-pending timer counts; the fired one is pruned.
  EXPECT_EQ(s.cancel_agent(agent), 1u);
  EXPECT_EQ(s.cancel_agent(agent), 0u);
  EXPECT_EQ(s.cancel_agent(0), 0u);  // the unowned pseudo-agent
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, OwnedTimerStillCancellableIndividually) {
  Simulation s;
  const Simulation::AgentId agent = s.register_agent();
  bool fired = false;
  const Simulation::TimerId id = s.at_cancellable(1.0, [&] { fired = true; }, agent);
  EXPECT_TRUE(s.cancel(id));
  // Individually-cancelled timers no longer count against the agent.
  EXPECT_EQ(s.cancel_agent(agent), 0u);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, AgentCanRearmTimersAfterCancelAgent) {
  Simulation s;
  const Simulation::AgentId agent = s.register_agent();
  std::vector<int> fired;
  s.after_cancellable(1.0, [&] { fired.push_back(1); }, agent);
  s.cancel_agent(agent);
  // A "restarted" agent reuses its id; new timers must be live.
  s.after_cancellable(2.0, [&] { fired.push_back(2); }, agent);
  s.run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_EQ(s.cancel_agent(agent), 0u);
}

TEST(LatencyProfile, QuantileFitRecoversMedianAndQ3) {
  const LatencyProfile p = LatencyProfile::from_quantiles(4.0, 6.0, 1.0);
  Rng rng(77);
  std::vector<double> samples(200001);
  for (auto& v : samples) v = p.sample(rng);
  std::sort(samples.begin(), samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 4.0, 0.1);
  EXPECT_NEAR(samples[samples.size() * 3 / 4], 6.0, 0.15);
  EXPECT_GE(samples.front(), 1.0);  // floor respected
}

TEST(LatencyProfile, OutagesProduceHeavyTail) {
  const LatencyProfile base = LatencyProfile::from_quantiles(4.0, 6.0);
  const LatencyProfile heavy = base.with_outages(0.01, 1000.0);
  Rng r1(5), r2(5);
  double max_base = 0, max_heavy = 0;
  for (int i = 0; i < 20000; ++i) {
    max_base = std::max(max_base, base.sample(r1));
    max_heavy = std::max(max_heavy, heavy.sample(r2));
  }
  EXPECT_LT(max_base, 100.0);
  EXPECT_GT(max_heavy, 300.0);
}

}  // namespace
}  // namespace bmg::sim
