// Unit-level tests of relayer building blocks: sequential transaction
// submission, chunked staging-buffer calls, light-client update
// batching/dedup and the crank agent.
#include <gtest/gtest.h>

#include "relayer/deployment.hpp"

namespace bmg::relayer {
namespace {

DeploymentConfig unit_config(std::uint64_t seed) {
  DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 60.0;
  for (int i = 0; i < 4; ++i) {
    ValidatorProfile p;
    p.name = "ru-val-" + std::to_string(i);
    p.stake = 100;
    p.latency = sim::LatencyProfile::from_quantiles(1.5, 2.5, 0.3);
    p.fee = host::FeePolicy::priority(1'000'000);
    cfg.validators.push_back(std::move(p));
  }
  cfg.counterparty.num_validators = 10;
  return cfg;
}

class RelayerUnit : public ::testing::Test {
 protected:
  RelayerUnit() : d_(unit_config(41)) { d_.start(); }

  host::Transaction noop_tx() {
    host::Transaction tx;
    tx.payer = d_.relayer().payer();
    tx.instructions.push_back(guest::ix::chunk_upload(999, 0, bytes_of("x")));
    return tx;
  }

  Deployment d_;
};

TEST_F(RelayerUnit, SubmitSequenceRunsInOrderAndAggregates) {
  std::vector<host::Transaction> txs;
  for (int i = 0; i < 5; ++i) txs.push_back(noop_tx());
  RelayerAgent::SequenceOutcome outcome;
  bool done = false;
  d_.relayer().submit_sequence(std::move(txs), [&](const auto& out) {
    outcome = out;
    done = true;
  });
  ASSERT_TRUE(d_.run_until([&] { return done; }, 120.0));
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.txs, 5);
  ASSERT_TRUE(outcome.started_at.has_value());
  EXPECT_GT(outcome.finished_at, *outcome.started_at);
  // 5 base-fee transactions at 0.1 cents each.
  EXPECT_NEAR(outcome.cost_usd, 0.005, 1e-9);
}

TEST_F(RelayerUnit, SubmitSequenceAbortsOnFailure) {
  std::vector<host::Transaction> txs;
  txs.push_back(noop_tx());
  // Second tx fails in the program (missing buffer).
  host::Transaction bad;
  bad.payer = d_.relayer().payer();
  bad.instructions.push_back(guest::ix::receive_packet(123456));
  txs.push_back(std::move(bad));
  txs.push_back(noop_tx());  // must never run

  const std::uint64_t executed_before = d_.host().executed_count();
  RelayerAgent::SequenceOutcome outcome;
  bool done = false;
  d_.relayer().submit_sequence(std::move(txs), [&](const auto& out) {
    outcome = out;
    done = true;
  });
  ASSERT_TRUE(d_.run_until([&] { return done; }, 120.0));
  EXPECT_FALSE(outcome.ok);
  // Exactly one successful execution (the first); the third never ran.
  EXPECT_EQ(d_.host().executed_count(), executed_before + 1);
  EXPECT_EQ(d_.relayer().failed_sequences(), 1u);
}

TEST_F(RelayerUnit, ChunkedCallSplitsLargePayloads) {
  const Bytes payload(3000, 0xAB);
  std::uint64_t buffer_id = 0;
  auto txs = d_.relayer().chunked_call(payload, guest::ix::receive_packet(0),
                                       &buffer_id, "test");
  EXPECT_GT(buffer_id, 0u);
  const std::size_t chunks =
      (payload.size() + guest::ix::max_chunk_bytes() - 1) / guest::ix::max_chunk_bytes();
  EXPECT_GT(chunks, 1u);
  EXPECT_EQ(txs.size(), chunks + 1);  // chunk uploads + final call
  for (const auto& tx : txs) EXPECT_LE(tx.wire_size(), host::kMaxTransactionSize);
}

TEST_F(RelayerUnit, BuildUpdateSequenceBatchesSignatures) {
  d_.run_for(10.0);  // a couple of cp blocks
  const auto& sh = d_.cp().header_at(1);
  const auto txs = d_.relayer().build_update_sequence(sh);
  // chunks(header) + begin + ceil(sigs/4) + finish
  const std::size_t expected_sig_txs = (sh.signatures.size() + 3) / 4;
  EXPECT_EQ(txs.size(), 1 + 1 + expected_sig_txs + 1);
  for (const auto& tx : txs) {
    EXPECT_LE(tx.wire_size(), host::kMaxTransactionSize);
    EXPECT_LE(tx.sig_verifies.size(), 4u);
  }
}

TEST_F(RelayerUnit, UpdateGuestClientIsIdempotent) {
  d_.run_for(10.0);
  const ibc::Height target = d_.cp().height();
  int called = 0;
  d_.relayer().update_guest_client(target, [&] { ++called; });
  ASSERT_TRUE(d_.run_until([&] { return called == 1; }, 300.0));
  EXPECT_EQ(d_.guest().counterparty_client().latest_height(), target);
  const std::size_t updates_before = d_.relayer().update_tx_counts().count();
  // Asking again for the same height completes immediately, no txs.
  d_.relayer().update_guest_client(target, [&] { ++called; });
  d_.run_for(5.0);
  EXPECT_EQ(called, 2);
  EXPECT_EQ(d_.relayer().update_tx_counts().count(), updates_before);
}

TEST_F(RelayerUnit, ConcurrentUpdateRequestsSerialize) {
  d_.run_for(20.0);
  const ibc::Height h1 = d_.cp().height() - 1;
  const ibc::Height h2 = d_.cp().height();
  int done1 = 0, done2 = 0;
  d_.relayer().update_guest_client(h1, [&] { ++done1; });
  d_.relayer().update_guest_client(h2, [&] { ++done2; });  // queued behind
  ASSERT_TRUE(d_.run_until([&] { return done1 == 1 && done2 == 1; }, 600.0));
  EXPECT_GE(d_.guest().counterparty_client().latest_height(), h2);
}

TEST_F(RelayerUnit, CrankProducesEmptyBlocksAtDelta) {
  // No traffic: only Δ-driven empty blocks appear (Δ = 60 s).
  d_.run_for(200.0);
  EXPECT_GE(d_.guest().block_count(), 3u);
  EXPECT_GE(d_.crank().blocks_triggered(), 2u);
  for (ibc::Height h = 1; h < d_.guest().block_count(); ++h)
    EXPECT_TRUE(d_.guest().block_at(h).packets.empty());
}

TEST_F(RelayerUnit, ValidatorsSignOnlyWhenActive) {
  d_.run_for(200.0);
  for (const auto& v : d_.validators()) {
    EXPECT_GT(v->signatures_submitted(), 0u) << v->profile().name;
    EXPECT_GT(v->signing_latency().count(), 0u);
    // Latency includes the sampled delay floor.
    EXPECT_GE(v->signing_latency().min(), 0.3);
  }
}

}  // namespace
}  // namespace bmg::relayer
