#include "relayer/tx_pipeline.hpp"

#include <gtest/gtest.h>

#include "host/chain.hpp"
#include "host/constants.hpp"

namespace bmg::relayer {
namespace {

using crypto::PrivateKey;
using crypto::PublicKey;

// --- backoff policy (pure) ---------------------------------------------------

TEST(BackoffDelay, GrowsExponentiallyAndCaps) {
  PipelineConfig cfg;
  cfg.backoff_base_s = 1.0;
  cfg.backoff_max_s = 8.0;
  cfg.backoff_jitter = 0.0;
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 2, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 3, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 4, 0.5), 8.0);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 10, 0.5), 8.0);  // capped
}

TEST(BackoffDelay, JitterIsBoundedAndDeterministic) {
  PipelineConfig cfg;
  cfg.backoff_base_s = 2.0;
  cfg.backoff_jitter = 0.2;
  // u = 0 -> -20%, u = 1 -> +20%, same u -> same delay.
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 1, 0.0), 1.6);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 1, 1.0), 2.4);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 1, 0.37), backoff_delay(cfg, 1, 0.37));
  for (double u = 0.0; u <= 1.0; u += 0.1) {
    const double d = backoff_delay(cfg, 3, u);
    EXPECT_GE(d, 8.0 * 0.8);
    EXPECT_LE(d, 8.0 * 1.2);
  }
}

TEST(BackoffDelay, SameSeedSameSchedule) {
  PipelineConfig cfg;
  Rng a(42), b(42);
  for (int attempt = 1; attempt <= 6; ++attempt)
    EXPECT_DOUBLE_EQ(backoff_delay(cfg, attempt, a.uniform()),
                     backoff_delay(cfg, attempt, b.uniform()));
}

// --- fee escalation (pure) ---------------------------------------------------

TEST(EscalateFee, ClimbsTheLadderFromBase) {
  const auto original = host::FeePolicy::base();
  EXPECT_EQ(escalate_fee(original, 0).kind, host::FeePolicy::Kind::kBase);
  const auto a1 = escalate_fee(original, 1);
  EXPECT_EQ(a1.kind, host::FeePolicy::Kind::kPriority);
  const auto a2 = escalate_fee(original, 2);
  EXPECT_EQ(a2.kind, host::FeePolicy::Kind::kBundle);
  const auto a3 = escalate_fee(original, 3);
  EXPECT_EQ(a3.kind, host::FeePolicy::Kind::kBundle);
  EXPECT_EQ(a3.tip_lamports, 2 * a2.tip_lamports);  // doubling bids
}

TEST(EscalateFee, PriorityQuadruplesThenBundles) {
  const auto original = host::FeePolicy::priority(100'000);
  const auto a1 = escalate_fee(original, 1);
  EXPECT_EQ(a1.kind, host::FeePolicy::Kind::kPriority);
  EXPECT_GE(a1.cu_price_microlamports, 4 * original.cu_price_microlamports);
  EXPECT_EQ(escalate_fee(original, 2).kind, host::FeePolicy::Kind::kBundle);
}

TEST(EscalateFee, BundleDoublingIsOverflowSafe) {
  const auto original = host::FeePolicy::bundle(1'000);
  std::uint64_t prev = 0;
  for (int attempt = 1; attempt < 40; ++attempt) {
    const auto f = escalate_fee(original, attempt);
    EXPECT_EQ(f.kind, host::FeePolicy::Kind::kBundle);
    EXPECT_GE(f.tip_lamports, prev);  // monotone, capped shift never wraps
    prev = f.tip_lamports;
  }
}

// --- ErrorLog ----------------------------------------------------------------

TEST(ErrorLog, RingIsBoundedButTotalsKeepCounting) {
  ErrorLog log(4);
  for (int i = 0; i < 10; ++i)
    log.push(RelayError{RelayErrorKind::kDropped, "tx#" + std::to_string(i), "", 0, 0});
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.total_of(RelayErrorKind::kDropped), 10u);
  EXPECT_EQ(log.total_of(RelayErrorKind::kTimeout), 0u);
  // Oldest retained entry is #6 (0..5 were overwritten).
  EXPECT_EQ(log.at(0).label, "tx#6");
  EXPECT_EQ(log.at(3).label, "tx#9");
  const auto snap = log.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().label, "tx#6");
  EXPECT_EQ(snap.back().label, "tx#9");
}

// --- TxPipeline against a faulty chain ---------------------------------------

class FlakyProgram : public host::Program {
 public:
  void execute(host::TxContext&, ByteView data) override {
    if (!data.empty() && data[0] == 1) throw host::TxError("deterministic failure");
    ++count;
  }
  int count = 0;
};

class PipelineTest : public ::testing::Test {
 protected:
  void make_chain(host::FaultPlan plan) {
    host::ChainConfig cfg;
    cfg.fault = std::move(plan);
    chain_ = std::make_unique<host::Chain>(sim_, Rng(77), cfg);
    chain_->register_program("flaky", std::make_unique<FlakyProgram>());
    chain_->airdrop(payer_, 100 * host::kLamportsPerSol);
    chain_->start();
  }

  host::Transaction make_tx(std::string label, bool fail = false) {
    host::Transaction tx;
    tx.payer = payer_;
    tx.label = std::move(label);
    tx.instructions.push_back(
        host::Instruction{"flaky", fail ? Bytes{1} : Bytes{}});
    return tx;
  }

  sim::Simulation sim_;
  std::unique_ptr<host::Chain> chain_;
  PublicKey payer_ = PrivateKey::from_label("payer").public_key();
};

TEST_F(PipelineTest, DroppedTxIsRetriedWithEscalatedFeeUntilSuccess) {
  host::FaultPlan plan;
  plan.congestion(0.0, 100.0, 0.0);  // nothing lands before t = 100
  make_chain(std::move(plan));
  TxPipeline pipe(sim_, *chain_, Rng(1));

  SequenceOutcome out;
  bool done = false;
  pipe.submit_sequence({make_tx("stubborn")}, [&](const SequenceOutcome& o) {
    out = o;
    done = true;
  });
  sim_.run_until(400.0);
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.ok);
  EXPECT_GE(out.retries, 1);  // the base-fee attempt expired at ~60 s
  EXPECT_GE(pipe.retries_total(), 1u);
  EXPECT_GE(pipe.escalations_total(), 1u);
  EXPECT_GE(pipe.errors().total_of(RelayErrorKind::kDropped), 1u);
  EXPECT_EQ(pipe.in_flight(), 0u);
  ASSERT_TRUE(out.started_at.has_value());
  EXPECT_GE(*out.started_at, 100.0);
}

TEST_F(PipelineTest, BlackholeFiresDeadlineAndRetries) {
  host::FaultPlan plan;
  plan.blackhole(0.0, 10.0, 1.0);
  make_chain(std::move(plan));
  PipelineConfig cfg;
  cfg.tx_deadline_s = 5.0;
  cfg.backoff_base_s = 1.0;
  TxPipeline pipe(sim_, *chain_, Rng(2), cfg);

  SequenceOutcome out;
  bool done = false;
  pipe.submit_sequence({make_tx("ghosted")}, [&](const SequenceOutcome& o) {
    out = o;
    done = true;
  });
  sim_.run_until(200.0);
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.ok);
  EXPECT_GE(pipe.timeouts_total(), 1u);
  EXPECT_GE(pipe.errors().total_of(RelayErrorKind::kTimeout), 1u);
  EXPECT_GE(chain_->fault_counters().blackholed, 1u);
}

TEST_F(PipelineTest, BudgetExhaustionDeadLetters) {
  host::FaultPlan plan;
  plan.blackhole(0.0, 10'000.0, 1.0);  // swallows everything, forever
  make_chain(std::move(plan));
  PipelineConfig cfg;
  cfg.tx_deadline_s = 5.0;
  cfg.backoff_base_s = 1.0;
  cfg.max_attempts_per_tx = 3;
  TxPipeline pipe(sim_, *chain_, Rng(3), cfg);

  SequenceOutcome out;
  bool done = false;
  pipe.submit_sequence({make_tx("doomed")},
                       [&](const SequenceOutcome& o) {
                         out = o;
                         done = true;
                       },
                       "doomed-seq");
  sim_.run_until(200.0);
  ASSERT_TRUE(done);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(out.started_at.has_value());  // nothing ever executed
  ASSERT_EQ(pipe.dead_letters().size(), 1u);
  EXPECT_EQ(pipe.dead_letters()[0].label, "doomed-seq");
  EXPECT_EQ(pipe.dead_letters()[0].failed_index, 0u);
  EXPECT_GE(pipe.errors().total_of(RelayErrorKind::kBudgetExhausted), 1u);
  EXPECT_EQ(pipe.sequences_failed(), 1u);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST_F(PipelineTest, DeterministicExecFailureStopsAfterFewAttempts) {
  make_chain(host::FaultPlan{}.congestion(0.0, 0.1, 1.0));  // non-empty, neutral
  TxPipeline pipe(sim_, *chain_, Rng(4));

  SequenceOutcome out;
  bool done = false;
  pipe.submit_sequence({make_tx("ok"), make_tx("bad", /*fail=*/true)},
                       [&](const SequenceOutcome& o) {
                         out = o;
                         done = true;
                       });
  sim_.run_until(200.0);
  ASSERT_TRUE(done);
  EXPECT_FALSE(out.ok);
  // Deterministic failures are capped well below the drop budget.
  EXPECT_EQ(pipe.errors().total_of(RelayErrorKind::kExecFailed),
            static_cast<std::uint64_t>(pipe.config().max_exec_failures));
  ASSERT_EQ(pipe.dead_letters().size(), 1u);
  EXPECT_EQ(pipe.dead_letters()[0].failed_index, 1u);  // tx #0 landed
}

TEST_F(PipelineTest, MidSequenceResumptionRetriesOnlyTheFailedTx) {
  host::FaultPlan plan;
  plan.blackhole(0.0, 30.0, 1.0, "mid");  // only the middle tx vanishes
  make_chain(std::move(plan));
  PipelineConfig cfg;
  cfg.tx_deadline_s = 5.0;
  cfg.backoff_base_s = 1.0;
  TxPipeline pipe(sim_, *chain_, Rng(5), cfg);

  SequenceOutcome out;
  bool done = false;
  pipe.submit_sequence({make_tx("head"), make_tx("mid"), make_tx("tail")},
                       [&](const SequenceOutcome& o) {
                         out = o;
                         done = true;
                       });
  sim_.run_until(400.0);
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.ok);
  EXPECT_GE(out.retries, 1);
  // Each of the three transactions executed exactly once: the retries
  // resubmitted only the blackholed one, never the whole sequence.
  EXPECT_EQ(chain_->program_as<FlakyProgram>("flaky").count, 3);
  EXPECT_EQ(chain_->executed_count(), 3u);
}

TEST_F(PipelineTest, EmptySequenceCompletesImmediately) {
  make_chain(host::FaultPlan{});
  TxPipeline pipe(sim_, *chain_, Rng(6));
  SequenceOutcome out;
  bool done = false;
  pipe.submit_sequence({}, [&](const SequenceOutcome& o) {
    out = o;
    done = true;
  });
  EXPECT_TRUE(done);  // synchronous: no txs, nothing to wait for
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.txs, 0);
  EXPECT_FALSE(out.started_at.has_value());
  EXPECT_EQ(pipe.in_flight(), 0u);
}

// --- crash-restart surface: redrive() / reset() ------------------------------

TEST_F(PipelineTest, RedriveResumesDeadLetterWhereItFailed) {
  host::FaultPlan plan;
  plan.blackhole(0.0, 60.0, 1.0, "mid");  // the middle tx vanishes until t = 60
  make_chain(std::move(plan));
  PipelineConfig cfg;
  cfg.tx_deadline_s = 5.0;
  cfg.backoff_base_s = 1.0;
  cfg.max_attempts_per_tx = 3;  // exhausts well inside the blackhole window
  TxPipeline pipe(sim_, *chain_, Rng(7), cfg);

  bool first_done = false;
  pipe.submit_sequence({make_tx("head"), make_tx("mid"), make_tx("tail")},
                       [&](const SequenceOutcome&) { first_done = true; },
                       "update");
  sim_.run_until(50.0);
  ASSERT_TRUE(first_done);
  ASSERT_EQ(pipe.dead_letters().size(), 1u);
  const DeadLetter& dl = pipe.dead_letters()[0];
  EXPECT_EQ(dl.label, "update");
  EXPECT_EQ(dl.failed_index, 1u);  // "head" landed, "mid" did not
  ASSERT_EQ(dl.remaining.size(), 2u);
  EXPECT_EQ(dl.remaining[0].label, "mid");
  const int spent = dl.retries_spent;
  EXPECT_GE(spent, 1);

  SequenceOutcome out;
  bool done = false;
  EXPECT_EQ(pipe.redrive([&](const SequenceOutcome& o) {
              out = o;
              done = true;
            }),
            1u);
  EXPECT_TRUE(pipe.dead_letters().empty());
  sim_.run_until(400.0);  // blackhole lifts at t = 60; redrive succeeds
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.ok);
  // The redriven outcome accounts for the sequence's whole life, not
  // just its second one.
  EXPECT_GE(out.retries, spent);
  EXPECT_EQ(pipe.redriven_total(), 1u);
  // Each of the three txs executed exactly once: redrive resumed from
  // the failed index instead of replaying the delivered head.
  EXPECT_EQ(chain_->program_as<FlakyProgram>("flaky").count, 3);
}

TEST_F(PipelineTest, ResetDropsInFlightWorkWithoutCallbacks) {
  host::FaultPlan plan;
  plan.blackhole(0.0, 1000.0, 1.0);  // nothing lands for a long while
  make_chain(std::move(plan));
  PipelineConfig cfg;
  cfg.tx_deadline_s = 5.0;
  cfg.backoff_base_s = 1.0;
  TxPipeline pipe(sim_, *chain_, Rng(8), cfg);

  bool done = false;
  pipe.submit_sequence({make_tx("orphaned")},
                       [&](const SequenceOutcome&) { done = true; }, "orphaned");
  sim_.run_until(7.0);
  EXPECT_EQ(pipe.in_flight(), 1u);

  pipe.reset();  // the "process" died mid-flight
  EXPECT_EQ(pipe.in_flight(), 0u);
  EXPECT_EQ(pipe.sequences_reset(), 1u);

  sim_.run_until(2000.0);
  // The dead incarnation's continuation must never fire, even after
  // the blackhole lifts and any straggler results come back.
  EXPECT_FALSE(done);
  EXPECT_EQ(pipe.sequences_ok() + pipe.sequences_failed(), 0u);

  // The pipeline is immediately reusable by the next incarnation.
  SequenceOutcome out;
  bool done2 = false;
  pipe.submit_sequence({make_tx("reborn")}, [&](const SequenceOutcome& o) {
    out = o;
    done2 = true;
  });
  sim_.run_until(2400.0);
  ASSERT_TRUE(done2);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(pipe.in_flight(), 0u);
}

TEST_F(PipelineTest, ResetClearsDeadLetters) {
  host::FaultPlan plan;
  plan.blackhole(0.0, 10'000.0, 1.0);
  make_chain(std::move(plan));
  PipelineConfig cfg;
  cfg.tx_deadline_s = 5.0;
  cfg.backoff_base_s = 1.0;
  cfg.max_attempts_per_tx = 2;
  TxPipeline pipe(sim_, *chain_, Rng(9), cfg);

  pipe.submit_sequence({make_tx("doomed")}, [](const SequenceOutcome&) {});
  sim_.run_until(100.0);
  ASSERT_EQ(pipe.dead_letters().size(), 1u);
  pipe.reset();
  // A restarted agent rebuilds its work queue from on-chain state; the
  // old incarnation's dead letters are not replayable.
  EXPECT_TRUE(pipe.dead_letters().empty());
  EXPECT_EQ(pipe.redrive(), 0u);
}

TEST(RelayErrorKindNames, CrashRestartHasAStableLabel) {
  EXPECT_STREQ(to_string(RelayErrorKind::kCrashRestart), "crash-restart");
}

}  // namespace
}  // namespace bmg::relayer
