// Table I — Validator signing statistics: per-validator signature
// counts, per-signature cost, and block-signing latency quantiles
// (time between block generation and the validator's Sign landing).
//
// Paper highlights reproduced here: 7 of 24 validators submit no
// signatures; costs and latency are essentially uncorrelated
// (coefficient 0.007), i.e. validators paying high priority fees were
// overpaying.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/14.0);
  bench::print_header("Table I: validator signing statistics", args);

  relayer::Deployment d(bench::paper_config(args.seed));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  bench::GuestSendWorkload workload(d, /*mean_interarrival_s=*/2700.0, horizon);
  d.sim().run_until(horizon);
  (void)workload;

  std::printf("guest blocks generated: %zu\n\n", d.guest().block_count());
  std::printf("        #sigs  cost(c)      min       Q1      med       Q3        max"
              "     mean    stddev\n");

  std::vector<double> costs, mean_latencies;
  int silent = 0;
  int index = 0;
  for (const auto& v : d.validators()) {
    ++index;
    const auto sigs = v->signatures_submitted();
    if (sigs == 0) {
      ++silent;
      continue;
    }
    const double cost_cents =
        100.0 * host::lamports_to_usd(v->fees_paid_lamports()) /
        static_cast<double>(sigs);
    const Series& lat = v->signing_latency();
    std::printf("#%-4d %7llu %8.2f %s\n", index,
                static_cast<unsigned long long>(sigs), cost_cents,
                render_quantile_row(lat).c_str());
    costs.push_back(cost_cents);
    mean_latencies.push_back(lat.mean());
  }

  std::printf("\nsilent validators (staked, never signed): %d of %zu  (paper: 7 of"
              " 24)\n",
              silent, d.validators().size());
  if (costs.size() >= 2) {
    std::printf("correlation(cost, mean latency) = %.3f  (paper: 0.007 — higher fees"
                " buy no latency)\n",
                pearson(costs, mean_latencies));
  }
  return 0;
}
