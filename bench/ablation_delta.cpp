// Ablation — sweep of the Δ parameter (§III-A): Δ bounds how stale
// the guest chain's committed timestamp may get (IBC timeouts need
// the counterparty to observe fresh guest time), but smaller Δ means
// more empty blocks, each costing a full round of validator
// signatures.
//
// Each Δ point is one shard-pool cell (its own deployment); rows print
// in sweep order, byte-identical at any --shard-workers.
#include "bench_common.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

bench::CellOutput run_delta(double delta, const bench::Args& args) {
  relayer::DeploymentConfig cfg = bench::paper_config(args.seed);
  cfg.guest.delta_seconds = delta;
  relayer::Deployment d(std::move(cfg));
  d.open_ibc();

  const double start = d.sim().now();
  const double horizon = start + args.days * 86400.0;
  bench::GuestSendWorkload workload(d, /*mean_interarrival_s=*/2700.0, horizon);
  d.sim().run_until(horizon);
  (void)workload;

  std::size_t empty = 0;
  for (ibc::Height h = 1; h < d.guest().block_count(); ++h)
    if (d.guest().block_at(h).packets.empty()) ++empty;

  std::uint64_t sign_txs = 0;
  for (const auto& v : d.validators()) sign_txs += v->signatures_submitted();

  const double days = (d.sim().now() - start) / 86400.0;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%8.0f s %8zu %13.1f%% %14.1f %18.1f\n", delta,
                d.guest().block_count(),
                100.0 * static_cast<double>(empty) /
                    static_cast<double>(d.guest().block_count() - 1),
                static_cast<double>(d.guest().block_count()) / days,
                static_cast<double>(sign_txs) / days);
  return bench::CellOutput{buf, {}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/2.0);
  bench::print_header("Ablation: Delta sweep (empty-block rate vs timestamp freshness)",
                      args);

  const double deltas[] = {600.0, 1800.0, 3600.0, 7200.0, 14400.0};
  std::printf("%10s %8s %14s %14s %18s\n", "Delta", "blocks", "empty-blocks",
              "blocks/day", "validator txs/day");

  const bench::GridResult g = bench::run_grid(
      std::size(deltas), [&](std::size_t i) { return run_delta(deltas[i], args); });
  bench::print_cells(g);
  bench::write_timing(g, args.timing_csv, "ablation_delta");

  std::printf("\nsmaller Delta keeps guest timestamps fresh for IBC timeouts but\n"
              "multiplies empty blocks and validator signing costs (paper §III-A).\n");
  return 0;
}
