// Trie-page determinism check (PR 9, wired into CI).
//
// Runs one deterministic workload — inserts, overwrites, seals,
// block-cadence commits, snapshot publishes and batched proofs — on
// every combination of page-store backend (in-RAM, file-backed with a
// tiny resident set) and worker thread count (1, 2, 8), and digests
// each run: every checkpoint root and every serialized proof byte
// feeds one SHA-256.  All combinations must produce the same digest;
// any divergence means page layout, eviction order or parallel shard
// boundaries leaked into commitments, and the driver exits 1.
//
// Flags (strictly validated):
//   --steps N   workload steps (default 4000)
//   --seed N    workload RNG seed (default 42)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "parse.hpp"
#include "trie/snapshot.hpp"
#include "trie/trie.hpp"

namespace {

using namespace bmg;

Bytes seq_key(std::uint64_t space, std::uint64_t seq) {
  Encoder e;
  e.u64(space).u64(seq);
  return e.take();
}

Hash32 val(std::uint64_t v) {
  Encoder e;
  e.u64(v);
  return crypto::Sha256::digest(e.out());
}

struct Combo {
  const char* name;
  trie::PageStoreConfig cfg;
  std::size_t threads;
};

/// One full workload run; returns the digest over every checkpoint
/// root and proof byte.
Hash32 run_combo(const Combo& combo, std::size_t steps, std::uint64_t seed) {
  parallel::set_thread_count(combo.threads);
  trie::SealableTrie t{combo.cfg};
  Rng rng(seed);
  std::vector<std::uint64_t> live;
  std::uint64_t next = 0;
  crypto::Sha256 digest;

  for (std::size_t step = 0; step < steps; ++step) {
    if (live.size() < 4 || rng.chance(0.65)) {
      t.set(seq_key(7, next), val(next * 31 + 1));
      live.push_back(next++);
    } else if (rng.chance(0.5)) {
      // Overwrite a random live entry.
      const std::size_t pick = rng.uniform_int(live.size());
      t.set(seq_key(7, live[pick]), val(rng.next()));
    } else {
      // Seal a random non-maximum live entry.
      const std::size_t pick = rng.uniform_int(live.size() - 1);
      t.seal(seq_key(7, live[pick]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if ((step + 1) % 128 == 0) t.commit();
    if ((step + 1) % 500 != 0) continue;

    // Checkpoint: root + a batched proof sweep over the live window,
    // proved against a published snapshot (the concurrent-path bytes).
    const Hash32 root = t.root_hash();
    digest.update(root.view());
    const trie::TrieSnapshot snap = t.snapshot();
    std::vector<Bytes> keys;
    const std::size_t limit = std::min<std::size_t>(live.size(), 96);
    for (std::size_t i = 0; i < limit; ++i) keys.push_back(seq_key(7, live[i]));
    const std::vector<trie::Proof> proofs = trie::ProofService::prove_batch(snap, keys);
    for (const trie::Proof& p : proofs) {
      const Bytes wire = p.serialize();
      digest.update(wire);
    }
  }
  const Hash32 root = t.root_hash();
  digest.update(root.view());
  return digest.finish();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const char* prog = argv[0];
  std::size_t steps = 4000;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", prog, argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--steps") == 0)
      steps =
          static_cast<std::size_t>(bmg::bench::parse_positive_long(prog, "--steps", next()));
    else if (std::strcmp(argv[i], "--seed") == 0)
      seed =
          static_cast<std::uint64_t>(bmg::bench::parse_positive_long(prog, "--seed", next()));
    else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, argv[i]);
      return 2;
    }
  }

  trie::PageStoreConfig mem;
  trie::PageStoreConfig file;
  file.backend = trie::PageStoreConfig::Backend::kFile;
  file.page_bytes = 2048;
  file.max_resident_pages = 8;  // constant eviction churn

  const Combo combos[] = {
      {"mem/t1", mem, 1},  {"mem/t2", mem, 2},  {"mem/t8", mem, 8},
      {"file/t1", file, 1}, {"file/t2", file, 2}, {"file/t8", file, 8},
  };

  const std::size_t saved = bmg::parallel::thread_count();
  bool ok = true;
  Hash32 reference;
  std::printf("trie page determinism: steps=%zu seed=%llu\n", steps,
              static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < std::size(combos); ++i) {
    const Hash32 d = run_combo(combos[i], steps, seed);
    std::printf("  %-8s %s\n", combos[i].name, d.hex().c_str());
    if (i == 0) {
      reference = d;
    } else if (!(d == reference)) {
      std::printf("  ^ MISMATCH vs %s\n", combos[0].name);
      ok = false;
    }
  }
  bmg::parallel::set_thread_count(saved);
  std::printf(ok ? "OK: all backends and thread counts agree byte-for-byte\n"
                 : "FAIL: commitments depend on backend or thread count\n");
  return ok ? 0 : 1;
}
