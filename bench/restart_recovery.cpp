// Crash-restart recovery latency (PR 5).
//
// How long does a relayer restarted from nothing but on-chain state
// take to finish delivering a counterparty->guest transfer, as a
// function of *where* in the chunked light-client-update protocol the
// crash lands?  state.range(0) picks the crash phase:
//
//     0 — before any staging chunk was uploaded (resync restarts the
//         update from scratch);
//    50 — mid chunk-upload (staged buffer abandoned, update rebuilt);
//    90 — after BeginClientUpdate, during signature verification (the
//         resync resumes the contract's pending update in place).
//
// The interesting output is the *simulated* recovery time (counter
// `recovery_s`), not the wall-clock time of the event loop.  An
// invariant auditor runs throughout; any violation aborts the bench.
#include <benchmark/benchmark.h>

#include <stdexcept>

#include "audit/auditor.hpp"
#include "bench_common.hpp"

namespace {

using namespace bmg;

struct RunResult {
  double recovery_s = 0;   ///< restart -> packet delivered on the guest
  double downtime_s = 0;   ///< crash -> restart
  bool delivered = false;
  std::uint64_t redriven = 0;
};

RunResult run_once(int phase_pct, std::uint64_t seed) {
  relayer::DeploymentConfig cfg = bench::paper_config(seed);
  cfg.guest.delta_seconds = 600.0;
  relayer::Deployment d(cfg);

  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const ibc::Packet packet = d.send_transfer_from_cp(50);
  const auto delivered = [&] {
    return d.guest().ibc().packet_received("transfer", d.guest_channel(),
                                           packet.sequence);
  };

  // Advance to the requested crash phase.
  relayer::RelayerAgent& r = d.relayer();
  switch (phase_pct) {
    case 0:
      break;  // crash before the relayer stages anything
    case 50:
      (void)d.run_until(
          [&] { return !d.guest().staging_buffers_of(r.payer()).empty(); }, 600.0);
      break;
    default:  // 90: pending update exists on-chain, signatures partly verified
      (void)d.run_until(
          [&] { return d.guest().pending_update_info().has_value(); }, 600.0);
      break;
  }

  RunResult out;
  if (delivered()) {
    // The phase passed before we could crash (shouldn't happen at the
    // paper's update sizes); report zero recovery.
    out.delivered = true;
    return out;
  }

  const double crashed_at = d.sim().now();
  r.crash();
  d.run_for(30.0);
  out.downtime_s = d.sim().now() - crashed_at;
  r.restart();
  const double restarted_at = d.sim().now();
  out.delivered = d.run_until(delivered, 3600.0);
  out.recovery_s = d.sim().now() - restarted_at;
  out.redriven = r.pipeline().redriven_total();

  if (!auditor.clean())
    throw std::runtime_error("restart_recovery: " + auditor.report());
  return out;
}

// state.range(0) = crash phase (percent through the update protocol).
void BM_RestartRecovery(benchmark::State& state) {
  const int phase = static_cast<int>(state.range(0));
  double recovery_sum = 0, downtime_sum = 0;
  std::uint64_t runs = 0, delivered = 0, redriven = 0;
  std::uint64_t seed = 42;
  for (auto _ : state) {
    const RunResult r = run_once(phase, seed++);
    benchmark::DoNotOptimize(r.recovery_s);
    recovery_sum += r.recovery_s;
    downtime_sum += r.downtime_s;
    delivered += r.delivered ? 1 : 0;
    redriven += r.redriven;
    ++runs;
  }
  const double n = static_cast<double>(runs);
  state.counters["recovery_s"] = recovery_sum / n;
  state.counters["downtime_s"] = downtime_sum / n;
  state.counters["delivery_rate"] = static_cast<double>(delivered) / n;
  state.counters["redriven"] = static_cast<double>(redriven) / n;
}
BENCHMARK(BM_RestartRecovery)->Arg(0)->Arg(50)->Arg(90)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
