// Fig. 6 — Interval between generation times of two consecutive guest
// blocks.
//
// Paper result: the distribution roughly follows the packet arrival
// rate up to Δ = 1 h, where the empty-block rule cuts it off; about a
// quarter of blocks were generated at the cutoff (i.e. empty), and
// five intervals were far beyond an hour due to validator signing
// stalls.
//
// Grid mode (--grid-seeds N): N independent replications on the shard
// pool, each seeded from stream_seed(seed, cell), printed as one CSV
// row per cell — byte-identical at any --shard-workers.
#include "bench_common.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

bench::CellOutput run_cell(std::size_t cell, const bench::Args& args) {
  relayer::DeploymentConfig cfg = bench::paper_config(args.seed);
  cfg.rng_stream = cell;
  relayer::Deployment d(cfg);
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  bench::GuestSendWorkload workload(d, /*mean_interarrival_s=*/2700.0, horizon);
  d.sim().run_until(horizon);

  Series intervals;
  const auto n = static_cast<ibc::Height>(d.guest().block_count());
  for (ibc::Height h = 2; h < n; ++h)
    intervals.add(d.guest().block_at(h).header.timestamp -
                  d.guest().block_at(h - 1).header.timestamp);

  std::size_t at_cutoff = 0, way_over = 0;
  for (double v : intervals.samples()) {
    if (v >= 3600.0 && v < 3700.0) ++at_cutoff;
    if (v >= 2.0 * 3600.0) ++way_over;
  }

  char buf[192];
  std::snprintf(buf, sizeof(buf), "%zu,%zu,%zu,%.1f,%.1f,%zu\n", cell,
                d.guest().block_count(), workload.records().size(),
                intervals.count() > 0 ? intervals.mean() : 0.0,
                intervals.count() > 0
                    ? 100.0 * static_cast<double>(at_cutoff) /
                          static_cast<double>(intervals.count())
                    : 0.0,
                way_over);
  return bench::CellOutput{buf, {}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/14.0);

  if (args.grid_seeds > 0) {
    const auto n = static_cast<std::size_t>(args.grid_seeds);
    std::fprintf(stderr, "fig6_block_interval: %zu replications, %zu shard workers\n",
                 n, shard::worker_count());
    const bench::GridResult g =
        bench::run_grid(n, [&](std::size_t i) { return run_cell(i, args); });
    std::printf("cell,blocks,sends,mean_interval_s,at_cutoff_pct,way_over\n");
    bench::print_cells(g);
    std::fprintf(stderr, "fig6_block_interval: wall=%.3fs\n", g.wall_s);
    bench::write_timing(g, args.timing_csv, "fig6_block_interval");
    return 0;
  }

  bench::print_header("Fig. 6: interval between consecutive guest blocks", args);

  relayer::Deployment d(bench::paper_config(args.seed));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  // Poisson sends with a ~45 min mean; P(no packet within Delta=1h)
  // = e^(-60/45) ~ 26%, matching the paper's quarter-empty blocks.
  bench::GuestSendWorkload workload(d, /*mean_interarrival_s=*/2700.0, horizon);
  d.sim().run_until(horizon);

  Series intervals;
  const auto n = static_cast<ibc::Height>(d.guest().block_count());
  for (ibc::Height h = 2; h < n; ++h) {
    intervals.add(d.guest().block_at(h).header.timestamp -
                  d.guest().block_at(h - 1).header.timestamp);
  }

  std::printf("guest blocks: %zu over %.1f days (%zu packets sent)\n\n",
              d.guest().block_count(), args.days, workload.records().size());
  std::printf("%s\n",
              render_histogram(intervals, 24, "block interval (s)").c_str());

  std::size_t at_cutoff = 0, way_over = 0;
  for (double v : intervals.samples()) {
    if (v >= 3600.0 && v < 3700.0) ++at_cutoff;
    if (v >= 2.0 * 3600.0) ++way_over;
  }
  std::printf("blocks at the Delta=1 h cutoff (empty blocks): %.1f%%  (paper: ~25%%)\n",
              100.0 * static_cast<double>(at_cutoff) /
                  static_cast<double>(intervals.count()));
  std::printf("intervals vastly over an hour (signing stalls): %zu  (paper: 5)\n",
              way_over);
  return 0;
}
