// Ablation — validator-set size and silent validators (§V-C): block
// finalisation latency is the *maximum* over the signatures needed to
// reach quorum, so silent validators squeeze the margin.  The paper's
// incident — 7 silent validators out of 24, so when validator #1
// stalled the quorum could not form — is reproduced at the end.
//
// Each roster case (and the incident replay) is one shard-pool cell;
// output prints in case order, byte-identical at any --shard-workers.
#include "bench_common.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

relayer::DeploymentConfig roster_config(std::uint64_t seed, int active, int silent) {
  relayer::DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 120.0;  // fast empty blocks for measurement
  cfg.counterparty.num_validators = 24;
  for (int i = 0; i < active + silent; ++i) {
    relayer::ValidatorProfile p;
    p.name = "v" + std::to_string(i);
    p.stake = 1000;
    p.latency = sim::LatencyProfile::from_quantiles(4.0, 6.0, 0.4);
    p.fee = host::FeePolicy::priority(2'000'000);
    p.active = i < active;
    cfg.validators.push_back(std::move(p));
  }
  return cfg;
}

struct Case {
  int active, silent;
};
constexpr Case kCases[] = {{4, 0}, {10, 0}, {17, 0}, {17, 7}, {20, 4}, {24, 0}};

bench::CellOutput run_case(const Case& c, const bench::Args& args) {
  relayer::Deployment d(roster_config(args.seed, c.active, c.silent));
  // Measure NewBlock -> FinalisedBlock directly from events.
  std::map<ibc::Height, double> created;
  Series fin;
  d.host().subscribe(guest::kProgramName, [&](const host::Event& ev) {
    Decoder dec(ev.data);
    if (ev.name == guest::GuestContract::kEvNewBlock) {
      created[dec.u64()] = ev.time;
    } else if (ev.name == guest::GuestContract::kEvFinalisedBlock) {
      const ibc::Height h = dec.u64();
      const auto it = created.find(h);
      if (it != created.end()) fin.add(ev.time - it->second);
    }
  });
  d.start();
  const double horizon = d.sim().now() + args.days * 86400.0;
  d.sim().run_until(horizon);

  std::size_t stalled = 0;
  for (ibc::Height h = 1; h < d.guest().block_count(); ++h)
    if (!d.guest().block_at(h).finalised) ++stalled;
  const int total = c.active + c.silent;
  const int quorum_validators = total * 2 / 3 + 1;
  char buf[192];
  if (fin.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "%8d %8d %7d/%-3d %10s %10s %10s  <- quorum unreachable\n", c.active,
                  c.silent, quorum_validators, total, "-", "-", "-");
  } else {
    std::snprintf(buf, sizeof(buf), "%8d %8d %7d/%-3d %10.1f %10.1f %10.1f%s\n",
                  c.active, c.silent, quorum_validators, total, fin.quantile(0.5),
                  fin.quantile(0.9), fin.max(),
                  stalled > 0 ? "  (stalls observed)" : "");
  }
  return bench::CellOutput{buf, {}};
}

// The paper's incident: 24 validators, 7 silent — quorum needs 17,
// so all 17 active validators are load-bearing; knock one out and
// the chain halts.
bench::CellOutput run_incident(const bench::Args& args) {
  relayer::DeploymentConfig cfg = roster_config(args.seed, 16, 8);
  relayer::Deployment d(std::move(cfg));
  d.start();
  d.sim().run_until(d.sim().now() + 7200.0);
  std::size_t finalised = 0;
  for (ibc::Height h = 1; h < d.guest().block_count(); ++h)
    finalised += d.guest().block_at(h).finalised ? 1 : 0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\nincident replay (16 active of 24 — validator #1 down):\n"
                "  blocks generated: %zu, finalised: %zu  -> chain %s\n",
                d.guest().block_count() - 1, finalised,
                finalised == 0 ? "HALTED (as in the paper)" : "alive");
  return bench::CellOutput{buf, {}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/0.5);
  bench::print_header(
      "Ablation: quorum margin — finalisation latency vs roster composition", args);

  std::printf("%8s %8s %10s | finalisation latency (s)\n", "active", "silent",
              "quorum");
  std::printf("%8s %8s %10s %10s %10s %10s\n", "", "", "", "median", "p90", "max");

  // Cells 0..5 are the roster cases; the last cell is the incident.
  const std::size_t n = std::size(kCases) + 1;
  const bench::GridResult g = bench::run_grid(n, [&](std::size_t i) {
    return i < std::size(kCases) ? run_case(kCases[i], args) : run_incident(args);
  });
  bench::print_cells(g);
  bench::write_timing(g, args.timing_csv, "ablation_quorum");
  return 0;
}
