// Ablation — sealable trie vs. a plain (never-sealed) Merkle trie:
// live storage as a function of processed packets.  This is the
// design choice of §III-A; without sealing the Guest Contract's state
// grows without bound and the 10 MiB account eventually fills.
//
// Flags (strictly validated; bad input exits 2):
//   --packets N   packets to process (default 100000)
//   --window N    in-flight window kept unsealed (default 32)
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "ibc/commitment.hpp"
#include "parse.hpp"
#include "trie/trie.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const char* prog = argv[0];
  std::size_t packets = 100'000;
  std::size_t window = 32;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", prog, argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--packets") == 0)
      packets = static_cast<std::size_t>(
          bench::parse_positive_long(prog, "--packets", next()));
    else if (std::strcmp(argv[i], "--window") == 0)
      window =
          static_cast<std::size_t>(bench::parse_positive_long(prog, "--window", next()));
  }
  const bench::Args args =
      bench::Args::parse(argc, argv, 0.0, {"--packets", "--window"});
  bench::print_header("Ablation: sealable trie vs plain trie growth", args);

  trie::SealableTrie sealed, plain;
  Hash32 value;
  value.bytes[0] = 7;

  std::printf("%10s %18s %18s %12s\n", "packets", "plain bytes", "sealed bytes",
              "ratio");
  for (std::size_t i = 1; i <= packets; ++i) {
    const auto key =
        ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0", i);
    sealed.set(key, value);
    plain.set(key, value);
    if (i > window)
      sealed.seal(
          ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                          i - window));
    if (i == 100 || i == 1'000 || i == 10'000 || i == 100'000 || i == packets) {
      const auto p = plain.stats().byte_size;
      const auto s = sealed.stats().byte_size;
      std::printf("%10zu %18zu %18zu %11.1fx\n", i, p, s,
                  static_cast<double>(p) / static_cast<double>(s));
    }
  }

  const double plain_pairs_to_full = 10.0 * 1024 * 1024 /
      (static_cast<double>(plain.stats().byte_size) / static_cast<double>(packets));
  std::printf("\nwithout sealing the 10 MiB account fills after ~%.0f packets;\n",
              plain_pairs_to_full);
  std::printf("with sealing, live state is flat at the in-flight window (paper"
              " §III-A).\n");
  return 0;
}
