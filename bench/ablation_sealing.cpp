// Ablation — sealable trie vs. a plain (never-sealed) Merkle trie:
// live storage as a function of processed packets.  This is the
// design choice of §III-A; without sealing the Guest Contract's state
// grows without bound and the 10 MiB account eventually fills.
#include <cstdio>

#include "bench_common.hpp"
#include "ibc/commitment.hpp"
#include "trie/trie.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, 0.0);
  bench::print_header("Ablation: sealable trie vs plain trie growth", args);

  trie::SealableTrie sealed, plain;
  Hash32 value;
  value.bytes[0] = 7;
  const std::size_t window = 32;

  std::printf("%10s %18s %18s %12s\n", "packets", "plain bytes", "sealed bytes",
              "ratio");
  for (std::size_t i = 1; i <= 100'000; ++i) {
    const auto key =
        ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0", i);
    sealed.set(key, value);
    plain.set(key, value);
    if (i > window)
      sealed.seal(
          ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                          i - window));
    if (i == 100 || i == 1'000 || i == 10'000 || i == 100'000) {
      const auto p = plain.stats().byte_size;
      const auto s = sealed.stats().byte_size;
      std::printf("%10zu %18zu %18zu %11.1fx\n", i, p, s,
                  static_cast<double>(p) / static_cast<double>(s));
    }
  }

  const double plain_pairs_to_full = 10.0 * 1024 * 1024 /
      (static_cast<double>(plain.stats().byte_size) / 100'000.0);
  std::printf("\nwithout sealing the 10 MiB account fills after ~%.0f packets;\n",
              plain_pairs_to_full);
  std::printf("with sealing, live state is flat at the in-flight window (paper"
              " §III-A).\n");
  return 0;
}
