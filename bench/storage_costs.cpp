// §V-D — Storage costs: the 10 MiB guest account, its rent-exempt
// deposit (~14.6 k$), how many key-value pairs fit (paper: >72k), and
// how the sealable trie keeps long-term usage bounded.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "ibc/commitment.hpp"
#include "trie/trie.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, 0.0);
  bench::print_header("Section V-D: storage costs", args);

  // Rent for the largest possible account.
  const std::uint64_t deposit = host::kRentLamportsPerByte * host::kMaxAccountSize;
  std::printf("10 MiB account rent-exempt deposit: %.0f USD  (paper: ~14.6 k$)\n\n",
              host::lamports_to_usd(deposit));

  // How many key-value pairs fit into 10 MiB of trie storage.
  trie::SealableTrie trie;
  Hash32 value;
  value.bytes[0] = 1;
  std::size_t pairs = 0;
  while (true) {
    const auto key =
        ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0", pairs);
    trie.set(key, value);
    ++pairs;
    if (pairs % 4096 == 0 && trie.stats().byte_size > host::kMaxAccountSize) break;
  }
  std::printf("key-value pairs fitting in 10 MiB: %zu  (paper: >72k)\n", pairs);
  std::printf("  bytes per pair: %.1f   (leaves + amortized interior nodes)\n\n",
              static_cast<double>(trie.stats().byte_size) / static_cast<double>(pairs));

  // Long-term behaviour: with sealing, state tracks the in-flight
  // window instead of history.
  trie::SealableTrie churn;
  std::size_t peak = 0;
  const std::size_t window = 64;
  for (std::size_t i = 0; i < 200'000; ++i) {
    churn.set(ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                              i + 1),
              value);
    if (i + 1 > window)
      churn.seal(ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                                 i + 1 - window));
    peak = std::max(peak, churn.stats().byte_size);
  }
  std::printf("sealable trie under 200k-packet churn (64 in flight):\n");
  std::printf("  peak live storage: %zu bytes (%.4f%% of the 10 MiB account)\n", peak,
              100.0 * static_cast<double>(peak) /
                  static_cast<double>(host::kMaxAccountSize));
  std::printf("  => the account never grows with history; deposit is recoverable\n\n");

  // Commit cadence: Alg. 1 computes the state root once per guest
  // block, so trie writes between blocks can defer their hashing and
  // be batched.  Compare root-after-every-write (the eager model)
  // against root-once-per-block at a realistic packets-per-block rate.
  const std::size_t kWrites = 50'000;
  const std::size_t kPerBlock = 128;
  const auto timed = [&](std::size_t cadence) {
    trie::SealableTrie t;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kWrites; ++i) {
      t.set(ibc::packet_key(ibc::KeyKind::kPacketCommitment, "transfer", "channel-0",
                            i + 1),
            value);
      if ((i + 1) % cadence == 0) t.commit();
    }
    (void)t.root_hash();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
  const double eager_s = timed(1);
  const double deferred_s = timed(kPerBlock);
  std::printf("state-root commit cadence over %zu packet writes:\n", kWrites);
  std::printf("  root after every write:      %.1f k writes/s\n",
              static_cast<double>(kWrites) / eager_s / 1e3);
  std::printf("  root once per %zu-write block: %.1f k writes/s  (%.1fx)\n", kPerBlock,
              static_cast<double>(kWrites) / deferred_s / 1e3, eager_s / deferred_s);
  return 0;
}
