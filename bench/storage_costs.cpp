// §V-D — Storage costs: the 10 MiB guest account, its rent-exempt
// deposit (~14.6 k$), how many key-value pairs fit (paper: >72k), and
// how the sealable trie keeps long-term usage bounded.
//
// PR 9 extension — the paged out-of-core tier: a storage-growth vs
// seal-rate sweep over the file-backed PageStore, reporting pages
// allocated/freed, spill high-water and residency so sealing shows up
// as *reclaimed pages*, not just smaller byte counters.  Scale with
// --page-entries (EXPERIMENTS.md documents the 10^8-entry recipe).
//
// Flags (all strictly validated; bad input exits 2):
//   --churn-packets N   packets in the sealing-churn section (default 200000)
//   --window N          in-flight window for the churn section (default 64)
//   --cadence-writes N  writes in the commit-cadence section (default 50000)
//   --per-block N       writes per block for the deferred cadence (default 128)
//   --page-entries N    entries per cell of the page-tier sweep (default 1000000)
//   --page-bytes N      page size for the sweep (default 16384)
//   --resident-pages N  resident LRU frames for the sweep (default 4096)
//   --page-backend S    mem | file (default file)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "ibc/commitment.hpp"
#include "parse.hpp"
#include "trie/trie.hpp"

namespace {

using namespace bmg;

Bytes page_key(std::uint64_t i) {
  Encoder e;
  e.u64(0xB3B3).u64(i);
  return e.take();
}

/// One cell of the sweep: N monotonic inserts (committed once per
/// 4096 writes, a block cadence), then a bulk seal of the oldest
/// fraction `seal_rate` — the window-pruning pattern, where history
/// behind the in-flight window is retired wholesale.  Contiguously
/// allocated leaf/branch pages of the sealed region drain completely
/// and are freed (hole-punched on the file tier).  Returns wall
/// seconds; page counters are read off the trie afterwards.
double run_seal_rate_cell(trie::SealableTrie& t, std::size_t entries,
                          double seal_rate) {
  Hash32 v;
  v.bytes[0] = 9;
  const auto sealed = static_cast<std::uint64_t>(
      static_cast<double>(entries) * seal_rate);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < entries; ++i) {
    t.set(page_key(i), v);
    if ((i + 1) % 4096 == 0) t.commit();
  }
  t.commit();
  for (std::uint64_t i = 0; i < sealed; ++i) {
    t.seal(page_key(i));
    if ((i + 1) % 4096 == 0) t.commit();
  }
  t.commit();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const char* prog = argv[0];
  std::size_t churn_packets = 200'000;
  std::size_t window = 64;
  std::size_t cadence_writes = 50'000;
  std::size_t per_block = 128;
  std::size_t page_entries = 1'000'000;
  trie::PageStoreConfig page_cfg;
  page_cfg.backend = trie::PageStoreConfig::Backend::kFile;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", prog, argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--churn-packets") == 0)
      churn_packets = static_cast<std::size_t>(
          bench::parse_positive_long(prog, "--churn-packets", next()));
    else if (std::strcmp(argv[i], "--window") == 0)
      window =
          static_cast<std::size_t>(bench::parse_positive_long(prog, "--window", next()));
    else if (std::strcmp(argv[i], "--cadence-writes") == 0)
      cadence_writes = static_cast<std::size_t>(
          bench::parse_positive_long(prog, "--cadence-writes", next()));
    else if (std::strcmp(argv[i], "--per-block") == 0)
      per_block = static_cast<std::size_t>(
          bench::parse_positive_long(prog, "--per-block", next()));
    else if (std::strcmp(argv[i], "--page-entries") == 0)
      page_entries = static_cast<std::size_t>(
          bench::parse_positive_long(prog, "--page-entries", next()));
    else if (std::strcmp(argv[i], "--page-bytes") == 0)
      page_cfg.page_bytes = static_cast<std::size_t>(
          bench::parse_positive_long(prog, "--page-bytes", next()));
    else if (std::strcmp(argv[i], "--resident-pages") == 0)
      page_cfg.max_resident_pages = static_cast<std::size_t>(
          bench::parse_positive_long(prog, "--resident-pages", next()));
    else if (std::strcmp(argv[i], "--page-backend") == 0) {
      const char* b = next();
      if (std::strcmp(b, "mem") == 0)
        page_cfg.backend = trie::PageStoreConfig::Backend::kMemory;
      else if (std::strcmp(b, "file") == 0)
        page_cfg.backend = trie::PageStoreConfig::Backend::kFile;
      else {
        std::fprintf(stderr, "%s: --page-backend expects mem|file, got '%s'\n", prog,
                     b);
        return 2;
      }
    }
    // Remaining flags (--seed, --days, ...) belong to bench::Args below.
  }

  const bench::Args args = bench::Args::parse(
      argc, argv, 0.0,
      {"--churn-packets", "--window", "--cadence-writes", "--per-block",
       "--page-entries", "--page-bytes", "--resident-pages", "--page-backend"});
  bench::print_header("Section V-D: storage costs", args);

  // Rent for the largest possible account.
  const std::uint64_t deposit = host::kRentLamportsPerByte * host::kMaxAccountSize;
  std::printf("10 MiB account rent-exempt deposit: %.0f USD  (paper: ~14.6 k$)\n\n",
              host::lamports_to_usd(deposit));

  // How many key-value pairs fit into 10 MiB of trie storage.
  trie::SealableTrie trie;
  Hash32 value;
  value.bytes[0] = 1;
  std::size_t pairs = 0;
  while (true) {
    const auto key =
        ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0", pairs);
    trie.set(key, value);
    ++pairs;
    if (pairs % 4096 == 0 && trie.stats().byte_size > host::kMaxAccountSize) break;
  }
  std::printf("key-value pairs fitting in 10 MiB: %zu  (paper: >72k)\n", pairs);
  std::printf("  bytes per pair: %.1f   (leaves + amortized interior nodes)\n\n",
              static_cast<double>(trie.stats().byte_size) / static_cast<double>(pairs));

  // Long-term behaviour: with sealing, state tracks the in-flight
  // window instead of history.
  trie::SealableTrie churn;
  std::size_t peak = 0;
  for (std::size_t i = 0; i < churn_packets; ++i) {
    churn.set(ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                              i + 1),
              value);
    if (i + 1 > window)
      churn.seal(ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                                 i + 1 - window));
    peak = std::max(peak, churn.stats().byte_size);
  }
  std::printf("sealable trie under %zuk-packet churn (%zu in flight):\n",
              churn_packets / 1000, window);
  std::printf("  peak live storage: %zu bytes (%.4f%% of the 10 MiB account)\n", peak,
              100.0 * static_cast<double>(peak) /
                  static_cast<double>(host::kMaxAccountSize));
  std::printf("  => the account never grows with history; deposit is recoverable\n\n");

  // Commit cadence: Alg. 1 computes the state root once per guest
  // block, so trie writes between blocks can defer their hashing and
  // be batched.  Compare root-after-every-write (the eager model)
  // against root-once-per-block at a realistic packets-per-block rate.
  const auto timed = [&](std::size_t cadence) {
    trie::SealableTrie t;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < cadence_writes; ++i) {
      t.set(ibc::packet_key(ibc::KeyKind::kPacketCommitment, "transfer", "channel-0",
                            i + 1),
            value);
      if ((i + 1) % cadence == 0) t.commit();
    }
    (void)t.root_hash();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };
  const double eager_s = timed(1);
  const double deferred_s = timed(per_block);
  std::printf("state-root commit cadence over %zu packet writes:\n", cadence_writes);
  std::printf("  root after every write:      %.1f k writes/s\n",
              static_cast<double>(cadence_writes) / eager_s / 1e3);
  std::printf("  root once per %zu-write block: %.1f k writes/s  (%.1fx)\n", per_block,
              static_cast<double>(cadence_writes) / deferred_s / 1e3,
              eager_s / deferred_s);

  // --- PR 9: paged tier — storage growth vs seal rate ------------------
  //
  // Same insert stream at four seal rates on the paged store.  The
  // column to watch is pages_freed: with the old slab design a sealed
  // subtree shrank byte counters but the arena never returned memory;
  // here fully-sealed pages are freed (and hole-punched out of the
  // spill file), so reclamation scales with the seal rate while the
  // allocation count stays flat.
  const char* backend_name =
      page_cfg.backend == trie::PageStoreConfig::Backend::kFile ? "file" : "mem";
  std::printf("\npaged storage tier: growth vs seal rate  (backend=%s  page=%zuB  "
              "resident=%zu  entries=%zu)\n",
              backend_name, page_cfg.page_bytes, page_cfg.max_resident_pages,
              page_entries);
  std::printf("%10s %12s %12s %12s %14s %14s %12s %10s\n", "seal rate", "pages alloc",
              "pages freed", "pages live", "resident MiB", "spill MiB", "ops/s",
              "freed/Mop");
  const double rates[] = {0.0, 0.50, 0.90, 0.99};
  for (const double r : rates) {
    trie::SealableTrie t{page_cfg};
    const double secs = run_seal_rate_cell(t, page_entries, r);
    const trie::PageStoreStats ps = t.page_stats();
    const double ops = static_cast<double>(page_entries) * (1.0 + r);
    std::printf("%10.2f %12zu %12zu %12zu %14.2f %14.2f %12.0f %10.1f\n", r,
                ps.pages_allocated, ps.pages_freed, ps.pages_live,
                static_cast<double>(ps.resident_bytes()) / (1024.0 * 1024.0),
                static_cast<double>(ps.spill_bytes) / (1024.0 * 1024.0), ops / secs,
                1e6 * static_cast<double>(ps.pages_freed) / ops);
  }
  std::printf("  => pages freed scales with the seal rate; live pages (and hence\n"
              "     residency + spill) track the unsealed window, not history.\n");
  return 0;
}
