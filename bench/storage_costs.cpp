// §V-D — Storage costs: the 10 MiB guest account, its rent-exempt
// deposit (~14.6 k$), how many key-value pairs fit (paper: >72k), and
// how the sealable trie keeps long-term usage bounded.
#include <cstdio>

#include "bench_common.hpp"
#include "ibc/commitment.hpp"
#include "trie/trie.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, 0.0);
  bench::print_header("Section V-D: storage costs", args);

  // Rent for the largest possible account.
  const std::uint64_t deposit = host::kRentLamportsPerByte * host::kMaxAccountSize;
  std::printf("10 MiB account rent-exempt deposit: %.0f USD  (paper: ~14.6 k$)\n\n",
              host::lamports_to_usd(deposit));

  // How many key-value pairs fit into 10 MiB of trie storage.
  trie::SealableTrie trie;
  Hash32 value;
  value.bytes[0] = 1;
  std::size_t pairs = 0;
  while (true) {
    const Bytes key =
        ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0", pairs);
    trie.set(key, value);
    ++pairs;
    if (pairs % 4096 == 0 && trie.stats().byte_size > host::kMaxAccountSize) break;
  }
  std::printf("key-value pairs fitting in 10 MiB: %zu  (paper: >72k)\n", pairs);
  std::printf("  bytes per pair: %.1f   (leaves + amortized interior nodes)\n\n",
              static_cast<double>(trie.stats().byte_size) / static_cast<double>(pairs));

  // Long-term behaviour: with sealing, state tracks the in-flight
  // window instead of history.
  trie::SealableTrie churn;
  std::size_t peak = 0;
  const std::size_t window = 64;
  for (std::size_t i = 0; i < 200'000; ++i) {
    churn.set(ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                              i + 1),
              value);
    if (i + 1 > window)
      churn.seal(ibc::packet_key(ibc::KeyKind::kPacketReceipt, "transfer", "channel-0",
                                 i + 1 - window));
    peak = std::max(peak, churn.stats().byte_size);
  }
  std::printf("sealable trie under 200k-packet churn (64 in flight):\n");
  std::printf("  peak live storage: %zu bytes (%.4f%% of the 10 MiB account)\n", peak,
              100.0 * static_cast<double>(peak) /
                  static_cast<double>(host::kMaxAccountSize));
  std::printf("  => the account never grows with history; deposit is recoverable\n");
  return 0;
}
