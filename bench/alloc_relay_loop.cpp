// Allocation-accounting harness (PR 6): runs the full-stack relay
// loop in steady state and reports heap allocations and bytes copied
// per delivered packet, using the global counters behind
// BMG_ALLOC_STATS.
//
// With --budget FILE, compares allocations/packet against the
// checked-in budget and exits non-zero on regression — the CI leg that
// keeps the zero-copy hot path from silently re-growing heap traffic.
// In a default build (BMG_ALLOC_STATS=OFF) the counters read zero; the
// harness says so and exits 0 so it is safe to run anywhere.
//
//   alloc_relay_loop [--days D] [--seed N] [--budget FILE]
//
// Budget file format: lines of `key value`, `#` comments.  Keys:
//   allocs_per_packet_max   (required) ceiling on allocations/packet
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "common/alloc_stats.hpp"

namespace {

using namespace bmg;

struct Budget {
  double allocs_per_packet_max = 0;
  bool loaded = false;
};

Budget load_budget(const char* path) {
  Budget b;
  std::FILE* f = std::fopen(path, "r");
  if (!f) {
    std::fprintf(stderr, "alloc_relay_loop: cannot open budget file '%s'\n", path);
    std::exit(2);
  }
  char line[256];
  while (std::fgets(line, sizeof(line), f)) {
    if (line[0] == '#' || line[0] == '\n') continue;
    char key[128];
    double value = 0;
    if (std::sscanf(line, "%127s %lf", key, &value) == 2 &&
        std::strcmp(key, "allocs_per_packet_max") == 0) {
      b.allocs_per_packet_max = value;
      b.loaded = true;
    }
  }
  std::fclose(f);
  if (!b.loaded) {
    std::fprintf(stderr,
                 "alloc_relay_loop: budget file '%s' missing allocs_per_packet_max\n",
                 path);
    std::exit(2);
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  double days = 0.10;
  std::uint64_t seed = 42;
  const char* budget_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      char* end = nullptr;
      errno = 0;
      days = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || errno == ERANGE || !(days > 0)) {
        std::fprintf(stderr, "alloc_relay_loop: --days expects a positive number\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: alloc_relay_loop [--days D] [--seed N] [--budget FILE]\n");
      return 2;
    }
  }

  relayer::DeploymentConfig cfg = bench::paper_config(seed);
  cfg.guest.delta_seconds = 60.0;  // tight Δ so packets finalise quickly
  relayer::Deployment d(cfg);
  d.open_ibc();

  // Warm-up: one day of traffic so arenas, tries and caches reach
  // steady state before the measured window opens.
  {
    const double warm_until = d.sim().now() + 0.02 * 86400.0;
    bench::GuestSendWorkload warm_guest(d, 120.0, warm_until);
    bench::CpSendWorkload warm_cp(d, 300.0, warm_until);
    d.run_for(0.02 * 86400.0 + 2.0 * cfg.guest.delta_seconds);
  }

  const std::uint64_t packets_before =
      d.relayer().packets_relayed_to_cp() + d.relayer().packets_relayed_to_guest();
  const alloc_stats::Snapshot before = alloc_stats::snapshot();

  const double until = d.sim().now() + days * 86400.0;
  bench::GuestSendWorkload guest_load(d, 120.0, until);
  bench::CpSendWorkload cp_load(d, 300.0, until);
  d.run_for(days * 86400.0 + 2.0 * cfg.guest.delta_seconds);

  const alloc_stats::Snapshot delta = alloc_stats::snapshot() - before;
  const std::uint64_t packets =
      d.relayer().packets_relayed_to_cp() + d.relayer().packets_relayed_to_guest() -
      packets_before;

  std::printf("alloc_relay_loop: seed=%llu days=%.3f\n",
              static_cast<unsigned long long>(seed), days);
  std::printf("packets_delivered      %llu\n",
              static_cast<unsigned long long>(packets));
  if (!alloc_stats::enabled()) {
    std::printf("alloc stats DISABLED (configure with -DBMG_ALLOC_STATS=ON)\n");
    return 0;
  }
  if (packets == 0) {
    std::fprintf(stderr, "alloc_relay_loop: no packets delivered; run longer\n");
    return 2;
  }

  const double allocs_per_packet =
      static_cast<double>(delta.allocs) / static_cast<double>(packets);
  const double alloc_bytes_per_packet =
      static_cast<double>(delta.alloc_bytes) / static_cast<double>(packets);
  const double copied_per_packet =
      static_cast<double>(delta.bytes_copied) / static_cast<double>(packets);
  std::printf("allocs_total           %llu\n",
              static_cast<unsigned long long>(delta.allocs));
  std::printf("allocs_per_packet      %.1f\n", allocs_per_packet);
  std::printf("alloc_bytes_per_packet %.1f\n", alloc_bytes_per_packet);
  std::printf("bytes_copied_per_packet %.1f\n", copied_per_packet);

  if (budget_path != nullptr) {
    const Budget budget = load_budget(budget_path);
    if (allocs_per_packet > budget.allocs_per_packet_max) {
      std::fprintf(stderr,
                   "alloc_relay_loop: REGRESSION — %.1f allocs/packet exceeds "
                   "budget %.1f (%s)\n",
                   allocs_per_packet, budget.allocs_per_packet_max, budget_path);
      return 1;
    }
    std::printf("budget_ok              %.1f <= %.1f\n", allocs_per_packet,
                budget.allocs_per_packet_max);
  }
  return 0;
}
