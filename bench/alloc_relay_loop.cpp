// Allocation-accounting harness (PR 6): runs the full-stack relay
// loop in steady state and reports heap allocations and bytes copied
// per delivered packet, using the global counters behind
// BMG_ALLOC_STATS.
//
// With --budget FILE, compares allocations/packet against the
// checked-in budget and exits non-zero on regression — the CI leg that
// keeps the zero-copy hot path from silently re-growing heap traffic.
// In a default build (BMG_ALLOC_STATS=OFF) the counters read zero; the
// harness says so and exits 0 so it is safe to run anywhere.
//
//   alloc_relay_loop [--days D] [--seed N] [--budget FILE]
//                    [--shards N] [--shard-workers W]
//
// With --shards N (PR 7), N independent relay loops run as shard-pool
// cells, each seeded from stream_seed(seed, cell).  Per-cell counts
// come from alloc_stats::thread_snapshot() — a cell runs wholly on one
// worker thread with its intra-cell fork-join serialized, so the
// thread-local delta attributes the cell's allocations exactly no
// matter which worker ran it or what ran on that worker before.  The
// per-cell rows and the aggregated budget check are therefore
// byte-identical at any --shard-workers.
//
// Budget file format: lines of `key value`, `#` comments.  Keys:
//   allocs_per_packet_max   (required) ceiling on allocations/packet
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "common/alloc_stats.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

struct Budget {
  double allocs_per_packet_max = 0;
  bool loaded = false;
};

Budget load_budget(const char* path) {
  Budget b;
  std::FILE* f = std::fopen(path, "r");
  if (!f) {
    std::fprintf(stderr, "alloc_relay_loop: cannot open budget file '%s'\n", path);
    std::exit(2);
  }
  char line[256];
  while (std::fgets(line, sizeof(line), f)) {
    if (line[0] == '#' || line[0] == '\n') continue;
    char key[128];
    double value = 0;
    if (std::sscanf(line, "%127s %lf", key, &value) == 2 &&
        std::strcmp(key, "allocs_per_packet_max") == 0) {
      b.allocs_per_packet_max = value;
      b.loaded = true;
    }
  }
  std::fclose(f);
  if (!b.loaded) {
    std::fprintf(stderr,
                 "alloc_relay_loop: budget file '%s' missing allocs_per_packet_max\n",
                 path);
    std::exit(2);
  }
  return b;
}

/// One relay-loop measurement: warm-up, then a measured window of
/// traffic.  Counts come from the calling thread's own counters so the
/// result is per-cell exact under the shard pool.
struct CellMeasure {
  std::uint64_t packets = 0;
  alloc_stats::Snapshot delta;
};

CellMeasure run_loop(std::uint64_t seed, std::optional<std::uint64_t> stream,
                     double days) {
  relayer::DeploymentConfig cfg = bench::paper_config(seed);
  cfg.rng_stream = stream;
  cfg.guest.delta_seconds = 60.0;  // tight Δ so packets finalise quickly
  relayer::Deployment d(cfg);
  d.open_ibc();

  // Warm-up: traffic so arenas, tries and caches reach steady state
  // before the measured window opens.
  {
    const double warm_until = d.sim().now() + 0.02 * 86400.0;
    bench::GuestSendWorkload warm_guest(d, 120.0, warm_until);
    bench::CpSendWorkload warm_cp(d, 300.0, warm_until);
    d.run_for(0.02 * 86400.0 + 2.0 * cfg.guest.delta_seconds);
  }

  const std::uint64_t packets_before =
      d.relayer().packets_relayed_to_cp() + d.relayer().packets_relayed_to_guest();
  const alloc_stats::Snapshot before = alloc_stats::thread_snapshot();

  const double until = d.sim().now() + days * 86400.0;
  bench::GuestSendWorkload guest_load(d, 120.0, until);
  bench::CpSendWorkload cp_load(d, 300.0, until);
  d.run_for(days * 86400.0 + 2.0 * cfg.guest.delta_seconds);

  CellMeasure m;
  m.delta = alloc_stats::thread_snapshot() - before;
  m.packets = d.relayer().packets_relayed_to_cp() +
              d.relayer().packets_relayed_to_guest() - packets_before;
  return m;
}

int run_sharded(long shards, std::uint64_t seed, double days,
                const char* budget_path, const char* timing_csv) {
  const auto n = static_cast<std::size_t>(shards);
  std::fprintf(stderr, "alloc_relay_loop: %zu shards, %zu shard workers\n", n,
               shard::worker_count());
  std::vector<CellMeasure> cells(n);
  const bench::GridResult g = bench::run_grid(n, [&](std::size_t i) {
    cells[i] = run_loop(seed, i, days);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%zu,%llu,%llu,%.1f\n", i,
                  static_cast<unsigned long long>(cells[i].packets),
                  static_cast<unsigned long long>(cells[i].delta.allocs),
                  cells[i].packets > 0
                      ? static_cast<double>(cells[i].delta.allocs) /
                            static_cast<double>(cells[i].packets)
                      : 0.0);
    return bench::CellOutput{buf, {}};
  });

  std::printf("alloc_relay_loop: seed=%llu days=%.3f shards=%zu\n",
              static_cast<unsigned long long>(seed), days, n);
  std::printf("cell,packets,allocs,allocs_per_packet\n");
  bench::print_cells(g);
  bench::write_timing(g, timing_csv, "alloc_relay_loop");

  if (!alloc_stats::enabled()) {
    std::printf("alloc stats DISABLED (configure with -DBMG_ALLOC_STATS=ON)\n");
    return 0;
  }
  std::uint64_t packets = 0, allocs = 0;
  for (const CellMeasure& m : cells) {
    packets += m.packets;
    allocs += m.delta.allocs;
  }
  if (packets == 0) {
    std::fprintf(stderr, "alloc_relay_loop: no packets delivered; run longer\n");
    return 2;
  }
  const double allocs_per_packet =
      static_cast<double>(allocs) / static_cast<double>(packets);
  std::printf("packets_delivered      %llu\n",
              static_cast<unsigned long long>(packets));
  std::printf("allocs_total           %llu\n",
              static_cast<unsigned long long>(allocs));
  std::printf("allocs_per_packet      %.1f\n", allocs_per_packet);

  if (budget_path != nullptr) {
    const Budget budget = load_budget(budget_path);
    if (allocs_per_packet > budget.allocs_per_packet_max) {
      std::fprintf(stderr,
                   "alloc_relay_loop: REGRESSION — %.1f allocs/packet exceeds "
                   "budget %.1f (%s)\n",
                   allocs_per_packet, budget.allocs_per_packet_max, budget_path);
      return 1;
    }
    std::printf("budget_ok              %.1f <= %.1f\n", allocs_per_packet,
                budget.allocs_per_packet_max);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double days = 0.10;
  std::uint64_t seed = 42;
  long shards = 0;
  const char* budget_path = nullptr;
  const char* timing_csv = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      char* end = nullptr;
      errno = 0;
      days = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || errno == ERANGE || !(days > 0)) {
        std::fprintf(stderr, "alloc_relay_loop: --days expects a positive number\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget_path = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = bench::parse_positive_long("alloc_relay_loop", "--shards", argv[++i]);
    } else if (std::strcmp(argv[i], "--shard-workers") == 0 && i + 1 < argc) {
      shard::set_worker_count(static_cast<std::size_t>(bench::parse_positive_long(
          "alloc_relay_loop", "--shard-workers", argv[++i])));
    } else if (std::strcmp(argv[i], "--timing-csv") == 0 && i + 1 < argc) {
      timing_csv = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: alloc_relay_loop [--days D] [--seed N] [--budget FILE] "
                   "[--shards N] [--shard-workers W] [--timing-csv PATH]\n");
      return 2;
    }
  }

  if (shards > 0) return run_sharded(shards, seed, days, budget_path, timing_csv);

  relayer::DeploymentConfig cfg = bench::paper_config(seed);
  cfg.guest.delta_seconds = 60.0;  // tight Δ so packets finalise quickly
  relayer::Deployment d(cfg);
  d.open_ibc();

  // Warm-up: one day of traffic so arenas, tries and caches reach
  // steady state before the measured window opens.
  {
    const double warm_until = d.sim().now() + 0.02 * 86400.0;
    bench::GuestSendWorkload warm_guest(d, 120.0, warm_until);
    bench::CpSendWorkload warm_cp(d, 300.0, warm_until);
    d.run_for(0.02 * 86400.0 + 2.0 * cfg.guest.delta_seconds);
  }

  const std::uint64_t packets_before =
      d.relayer().packets_relayed_to_cp() + d.relayer().packets_relayed_to_guest();
  const alloc_stats::Snapshot before = alloc_stats::snapshot();

  const double until = d.sim().now() + days * 86400.0;
  bench::GuestSendWorkload guest_load(d, 120.0, until);
  bench::CpSendWorkload cp_load(d, 300.0, until);
  d.run_for(days * 86400.0 + 2.0 * cfg.guest.delta_seconds);

  const alloc_stats::Snapshot delta = alloc_stats::snapshot() - before;
  const std::uint64_t packets =
      d.relayer().packets_relayed_to_cp() + d.relayer().packets_relayed_to_guest() -
      packets_before;

  std::printf("alloc_relay_loop: seed=%llu days=%.3f\n",
              static_cast<unsigned long long>(seed), days);
  std::printf("packets_delivered      %llu\n",
              static_cast<unsigned long long>(packets));
  if (!alloc_stats::enabled()) {
    std::printf("alloc stats DISABLED (configure with -DBMG_ALLOC_STATS=ON)\n");
    return 0;
  }
  if (packets == 0) {
    std::fprintf(stderr, "alloc_relay_loop: no packets delivered; run longer\n");
    return 2;
  }

  const double allocs_per_packet =
      static_cast<double>(delta.allocs) / static_cast<double>(packets);
  const double alloc_bytes_per_packet =
      static_cast<double>(delta.alloc_bytes) / static_cast<double>(packets);
  const double copied_per_packet =
      static_cast<double>(delta.bytes_copied) / static_cast<double>(packets);
  std::printf("allocs_total           %llu\n",
              static_cast<unsigned long long>(delta.allocs));
  std::printf("allocs_per_packet      %.1f\n", allocs_per_packet);
  std::printf("alloc_bytes_per_packet %.1f\n", alloc_bytes_per_packet);
  std::printf("bytes_copied_per_packet %.1f\n", copied_per_packet);

  if (budget_path != nullptr) {
    const Budget budget = load_budget(budget_path);
    if (allocs_per_packet > budget.allocs_per_packet_max) {
      std::fprintf(stderr,
                   "alloc_relay_loop: REGRESSION — %.1f allocs/packet exceeds "
                   "budget %.1f (%s)\n",
                   allocs_per_packet, budget.allocs_per_packet_max, budget_path);
      return 1;
    }
    std::printf("budget_ok              %.1f <= %.1f\n", allocs_per_packet,
                budget.allocs_per_packet_max);
  }
  return 0;
}
