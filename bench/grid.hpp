// Shared grid execution for the evaluation harnesses (PR 7).
//
// Every grid-capable driver — scenario_runner, the fig2/fig6 grid
// modes, the parameter-sweep ablations — has the same shape: a static
// list of independent cells, each a complete deterministic simulation,
// whose formatted output must appear on stdout in grid order and be
// byte-identical at every worker count.  This header hoists the one
// implementation of that contract onto the shard pool
// (common/shard_pool.hpp) so each driver is only its cell body:
//
//   * cells run on the shard workers (--shard-workers /
//     BMG_SHARD_WORKERS), at most worker_count() in flight;
//   * each cell returns its artifact text and (optionally) an
//     InvariantAuditor verdict *by value*; both land in slots indexed
//     by grid position, so the merge is the concatenation in grid
//     order no matter which worker finished when;
//   * wall/CPU timing per cell is collected on the side and written
//     only to the timing sink (--timing-csv) or stderr — never into
//     the stdout artifact, which is what the determinism CI diffs.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "audit/auditor.hpp"
#include "bench_common.hpp"
#include "common/shard_pool.hpp"
#include "parse.hpp"

namespace bmg::bench {

/// What one grid cell hands back across the pool boundary.  `table` is
/// the cell's slice of the stdout artifact (CSV rows or table lines,
/// newline-terminated); `verdict` defaults to clean for drivers that
/// do not audit.
struct CellOutput {
  std::string table;
  audit::Verdict verdict;
};

struct GridResult {
  std::vector<CellOutput> cells;        ///< grid order
  std::vector<shard::CellStats> stats;  ///< grid order
  audit::Verdict verdict;               ///< merged in grid order
  double wall_s = 0;                    ///< whole-grid wall clock
};

/// Runs `cell(0) .. cell(n-1)` on the shard pool and merges results in
/// grid order.  Cells must be pure functions of their index (build the
/// whole simulation inside the body; write nothing shared).
inline GridResult run_grid(std::size_t n,
                           const std::function<CellOutput(std::size_t)>& cell) {
  GridResult g;
  g.cells.resize(n);
  const auto t0 = std::chrono::steady_clock::now();
  g.stats = shard::run_cells(n, [&](std::size_t i) { g.cells[i] = cell(i); });
  g.wall_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
  std::vector<audit::Verdict> verdicts;
  verdicts.reserve(n);
  for (const CellOutput& c : g.cells) verdicts.push_back(c.verdict);
  g.verdict = audit::merge_verdicts(verdicts);
  return g;
}

/// Prints every cell's artifact slice in grid order (the deterministic
/// stdout artifact).
inline void print_cells(const GridResult& g, std::FILE* out = stdout) {
  for (const CellOutput& c : g.cells) std::fputs(c.table.c_str(), out);
}

/// Timing CSV schema (one row per cell, grid order):
///   cell,worker,shard_workers,cell_wall_s,cell_cpu_s
/// `cell_cpu_s` is the executing thread's CPU clock — on a 1-CPU host
/// wall-clock cannot scale, but per-cell CPU attributed to distinct
/// workers still demonstrates the work distribution.
inline void write_timing_csv(std::FILE* f, const GridResult& g) {
  std::fprintf(f, "cell,worker,shard_workers,cell_wall_s,cell_cpu_s\n");
  for (const shard::CellStats& s : g.stats)
    std::fprintf(f, "%zu,%zu,%zu,%.6f,%.6f\n", s.cell, s.worker,
                 shard::worker_count(), s.wall_s, s.cpu_s);
}

/// Writes the timing CSV to `path` if non-null; exits with a
/// diagnostic when the file cannot be opened (a silently missing
/// timing sink would fake a clean scaling record).
inline void write_timing(const GridResult& g, const char* path, const char* prog) {
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open timing csv '%s'\n", prog, path);
    std::exit(2);
  }
  write_timing_csv(f, g);
  std::fclose(f);
}

// Strict CLI parsing (parse_positive_long / parse_positive_double)
// lives in parse.hpp so bmg_trie-only drivers can use it too.

}  // namespace bmg::bench
