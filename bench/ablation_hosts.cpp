// Ablation — the same Guest Contract on differently-constrained hosts
// (paper §VI-D: "the guest blockchain has been designed with minimal
// assumptions in order to make it broadly applicable").
//
// Three host profiles:
//   solana-like : 0.4 s slots, 1232-byte txs, 1.4M CU  (the paper's)
//   tron-like   : 3 s blocks, 64 KiB txs, large energy budget
//   near-like   : 1 s blocks, 4 MiB txs (receipts), large gas budget
//
// The guest layer is identical in all three; only the transaction
// splitting and pacing adapt.  Light client updates collapse from ~36
// transactions to 1 when the host admits bigger transactions — but
// block cadence then dominates latency.
//
// Each host profile is one shard-pool cell; rows print in profile
// order, byte-identical at any --shard-workers.
#include "bench_common.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

struct HostProfile {
  const char* name;
  host::ChainConfig chain;
  int sigs_per_update_tx;
};

bench::CellOutput run_profile(const HostProfile& hp, const bench::Args& args) {
  relayer::DeploymentConfig cfg = bench::paper_config(args.seed);
  cfg.host = hp.chain;
  cfg.relayer.sigs_per_update_tx = hp.sigs_per_update_tx;
  relayer::Deployment d(std::move(cfg));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  bench::CpSendWorkload cp_traffic(d, /*mean_interarrival_s=*/1800.0, horizon);
  bench::GuestSendWorkload guest_traffic(d, /*mean_interarrival_s=*/1800.0, horizon);
  d.sim().run_until(horizon + 3600.0);
  (void)cp_traffic;

  Series send_latency;
  for (const auto& r : guest_traffic.records())
    if (r->executed && r->finalised) send_latency.add(r->finalised_at - r->executed_at);

  const Series& txs = d.relayer().update_tx_counts();
  const Series& dur = d.relayer().update_durations();
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-14s %12.1f %14zu %14.1f %16.1f %16.1f\n", hp.name,
                hp.chain.slot_seconds, hp.chain.max_tx_size,
                txs.empty() ? 0.0 : txs.mean(), dur.empty() ? 0.0 : dur.quantile(0.5),
                send_latency.empty() ? 0.0 : send_latency.quantile(0.5));
  return bench::CellOutput{buf, {}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/0.3);
  bench::print_header("Ablation: guest blockchain across host profiles (§VI-D)", args);

  host::ChainConfig solana;  // defaults

  host::ChainConfig tron;
  tron.slot_seconds = 3.0;
  tron.max_tx_size = 64 * 1024;
  tron.max_compute_units = 40'000'000;  // "energy"
  tron.block_compute_units = 400'000'000;

  host::ChainConfig near;
  near.slot_seconds = 1.0;
  near.max_tx_size = 4 * 1024 * 1024;
  near.max_compute_units = 300'000'000;  // gas per receipt
  near.block_compute_units = 1'000'000'000;

  const HostProfile profiles[] = {
      {"solana-like", solana, 4},
      {"tron-like", tron, 420},   // whole commit fits one tx
      {"near-like", near, 420},
  };

  std::printf("%-14s %12s %14s %14s %16s %16s\n", "host", "slot (s)", "tx limit (B)",
              "txs/update", "update p50 (s)", "send p50 (s)");

  const bench::GridResult g = bench::run_grid(
      std::size(profiles), [&](std::size_t i) { return run_profile(profiles[i], args); });
  bench::print_cells(g);
  bench::write_timing(g, args.timing_csv, "ablation_hosts");

  std::printf("\nthe guest layer is byte-identical across rows; hosts with roomier\n"
              "transactions collapse the ~36-tx light client update to the 4-tx\n"
              "protocol floor (upload, begin, verify, finish), while slower block\n"
              "cadence shifts latency from tx-count-bound to block-time-bound —\n"
              "the trade-off §VI-D anticipates for TRON and NEAR.\n");
  return 0;
}
