// Adversary campaign grid (PR 8): every shipped AdversaryPlan scenario
// × seeds, one full deployment + Campaign per shard-pool cell, scoring
// three axes per cell:
//
//   safety    — the InvariantAuditor must never trip at sub-quorum
//               stake (violations merge into the grid verdict and flip
//               the exit code);
//   liveness  — cp->guest transfers sent *into* the attack windows
//               must all be received and acknowledged within the
//               drain budget (delivery rate, recv latency mean/p99);
//   slashing  — detection->prosecution economics: offenders banned,
//               time-to-detection, stake slashed / reporter reward /
//               burned, attacker vs. defender fee spend.
//
// Cells are pure functions of (scenario, seed): adversary RNG streams
// derive from the deployment seed, the workload cadence is fixed, and
// rows land in grid-order slots — so the stdout CSV is byte-identical
// at any --shard-workers count (the CI determinism leg diffs 1/2/8).
//
//   adversary_campaign [--seeds N] [--scenario NAME] [--shard-workers W]
//                      [--timing-csv PATH]
//
//   --seeds N          seeds 42..42+N-1 per scenario (default 2)
//   --scenario NAME    run a single shipped scenario (default: all)
//   --shard-workers W  shard workers (default: BMG_SHARD_WORKERS or
//                      hardware)
//   --timing-csv PATH  per-cell wall/CPU timing rows (see grid.hpp)
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adversary/campaign.hpp"
#include "adversary/scenarios.hpp"
#include "audit/auditor.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

// Campaign phase layout, relative to handshake completion: a short
// settle, the attack, then a drain long enough for withheld acks
// (<= 240 s windows), pipeline retries and prosecutions to land.
constexpr double kSettleS = 30.0;
constexpr double kAttackS = 1200.0;
constexpr double kDrainS = 1800.0;
constexpr double kDeltaS = 300.0;     // guest Δ override: enough blocks
                                      // inside the window to equivocate on
constexpr double kSendEveryS = 90.0;  // cp->guest workload cadence

struct CampaignCell {
  std::string scenario;
  std::uint64_t seed = 0;
};

struct SendRec {
  ibc::Packet packet;
  double sent_at = 0;
  double recv_at = -1;  ///< first seen received on the guest
};

bench::CellOutput run_cell(std::size_t cell, const CampaignCell& cc) {
  relayer::DeploymentConfig cfg = bench::paper_config(cc.seed);
  cfg.guest.delta_seconds = kDeltaS;
  relayer::Deployment d(cfg);
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double t0 = d.sim().now();
  const double attack_start = t0 + kSettleS;
  const double attack_end = attack_start + kAttackS;

  const auto all = adversary::campaign_scenarios(attack_start, attack_end);
  const adversary::ScenarioSpec* spec = adversary::find_scenario(all, cc.scenario);
  if (spec == nullptr) {
    std::fprintf(stderr, "adversary_campaign: unknown scenario '%s'\n",
                 cc.scenario.c_str());
    std::exit(2);
  }
  // Crash composition: kill the fisherman for five minutes in the
  // middle of the attack — detection must survive via the on-chain
  // evidence re-derivation path.
  if (spec->crash_fisherman)
    d.host().fault_plan().crash(attack_start + 120.0, attack_start + 420.0,
                                "fisherman");

  adversary::Campaign campaign(d, spec->plan);
  campaign.start();

  // Fixed-cadence cp->guest workload aimed into the attack windows
  // (the direction every griefing/fee attack fires on).
  auto recs = std::make_shared<std::vector<SendRec>>();
  for (int i = 0;; ++i) {
    const double at = attack_start + kSendEveryS * static_cast<double>(i);
    if (at >= attack_end) break;
    const std::uint64_t amount = 10 + static_cast<std::uint64_t>(i);
    d.sim().after(at - t0, [&d, recs, amount] {
      SendRec r;
      r.packet = d.send_transfer_from_cp(amount);
      r.sent_at = d.sim().now();
      recs->push_back(std::move(r));
    });
  }
  // Receipt poller: marks each packet's first-received time (2 s
  // granularity is plenty for latency quantiles in seconds).
  std::function<void()> poll = [&d, recs, &poll, attack_end] {
    for (SendRec& r : *recs) {
      if (r.recv_at >= 0) continue;
      if (d.guest().ibc().packet_received("transfer", d.guest_channel(),
                                          r.packet.sequence))
        r.recv_at = d.sim().now();
    }
    if (d.sim().now() < attack_end + kDrainS) d.sim().after(2.0, poll);
  };
  d.sim().after(2.0, poll);

  // Run the attack window to completion first (every send must fire
  // before the clear-check can mean anything), then drain.
  d.run_for(attack_end - t0);

  // Liveness bar: everything sent into the attack is received AND
  // acknowledged before the drain budget runs out.
  const auto all_clear = [&] {
    for (const SendRec& r : *recs) {
      if (r.recv_at < 0) return false;
      if (d.cp().ibc().packet_pending("transfer", d.cp_channel(), r.packet.sequence))
        return false;
    }
    return !recs->empty();
  };
  const bool live = d.run_until(all_clear, kDrainS);
  auditor.check_now("final");

  Series recv_latency;
  std::size_t delivered = 0, acked = 0;
  for (const SendRec& r : *recs) {
    if (r.recv_at >= 0) {
      ++delivered;
      recv_latency.add(r.recv_at - r.sent_at);
    }
    if (!d.cp().ibc().packet_pending("transfer", d.cp_channel(), r.packet.sequence))
      ++acked;
  }

  const adversary::AdversaryCounters& ctr = campaign.counters();
  const adversary::Campaign::Economics& eco = campaign.economics();
  const Series& det = campaign.detection_latency();

  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "%zu,%s,%llu,%zu,%zu,%zu,%.3f,%.3f,%s,%zu,%zu,%llu,%llu,%llu,%llu,%zu,%.3f,%.3f,"
      "%.4f,%.4f,%s\n",
      cell, cc.scenario.c_str(), static_cast<unsigned long long>(cc.seed),
      recs->size(), delivered, acked,
      recv_latency.count() > 0 ? recv_latency.mean() : 0.0,
      recv_latency.count() > 0 ? recv_latency.quantile(0.99) : 0.0,
      ctr.csv_row().c_str(), campaign.offenders().size(), campaign.offenders_banned(),
      static_cast<unsigned long long>(eco.slashed_count),
      static_cast<unsigned long long>(eco.stake_slashed),
      static_cast<unsigned long long>(eco.reporter_reward),
      static_cast<unsigned long long>(eco.stake_burned), det.count(),
      det.count() > 0 ? det.mean() : 0.0, det.count() > 0 ? det.max() : 0.0,
      campaign.attacker_fees_usd(), campaign.fisherman_fees_usd(),
      d.guest().store().root_hash().hex().c_str());

  audit::Verdict verdict =
      auditor.verdict(cc.scenario + " seed " + std::to_string(cc.seed));
  if (!live) {
    // A liveness miss is a finding, not a formatting concern: report it
    // through the same verdict channel that gates the exit code.
    verdict.violations += 1;
    verdict.report += "LIVENESS " + cc.scenario + " seed " +
                      std::to_string(cc.seed) + ": " + std::to_string(delivered) +
                      "/" + std::to_string(recs->size()) + " received, " +
                      std::to_string(acked) + " acked within budget\n";
  }
  return bench::CellOutput{buf, std::move(verdict)};
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 2;
  const char* only = nullptr;
  const char* timing_csv = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = static_cast<int>(
          bench::parse_positive_long("adversary_campaign", "--seeds", argv[++i]));
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--shard-workers") == 0 && i + 1 < argc) {
      shard::set_worker_count(static_cast<std::size_t>(bench::parse_positive_long(
          "adversary_campaign", "--shard-workers", argv[++i])));
    } else if (std::strcmp(argv[i], "--timing-csv") == 0 && i + 1 < argc) {
      timing_csv = argv[++i];
    } else {
      std::fprintf(stderr,
                   "adversary_campaign: unknown or incomplete option '%s'\n"
                   "usage: adversary_campaign [--seeds N] [--scenario NAME] "
                   "[--shard-workers W] [--timing-csv PATH]\n",
                   argv[i]);
      return 2;
    }
  }

  // Static grid: shipped scenarios × seeds, fixed order.  Window times
  // passed here are placeholders — each cell rebuilds the table against
  // its own deployment's post-handshake clock; only the names matter.
  const auto shipped = adversary::campaign_scenarios(0.0, 1.0);
  std::vector<CampaignCell> grid;
  for (const auto& spec : shipped) {
    if (only != nullptr && spec.name != only) continue;
    for (int s = 0; s < seeds; ++s)
      grid.push_back(CampaignCell{spec.name, 42 + static_cast<std::uint64_t>(s)});
  }
  if (grid.empty()) {
    std::fprintf(stderr, "adversary_campaign: no scenario named '%s'\n", only);
    return 2;
  }

  std::fprintf(stderr, "adversary_campaign: %zu cells, %zu shard workers\n",
               grid.size(), shard::worker_count());

  const bench::GridResult g = bench::run_grid(
      grid.size(), [&](std::size_t i) { return run_cell(i, grid[i]); });

  std::printf("cell,scenario,seed,sends,delivered,acked,recv_mean_s,recv_p99_s,%s,"
              "offenders,banned,slashed,stake_slashed,reporter_reward,stake_burned,"
              "detect_n,detect_mean_s,detect_max_s,attacker_usd,fisherman_usd,"
              "state_root\n",
              adversary::AdversaryCounters::csv_header());
  bench::print_cells(g);

  std::fprintf(stderr, "adversary_campaign: wall=%.3fs\n", g.wall_s);
  bench::write_timing(g, timing_csv, "adversary_campaign");

  if (!g.verdict.clean())
    std::fprintf(stderr, "adversary_campaign: FAIL %s\n", g.verdict.report.c_str());
  return g.verdict.clean() ? 0 : 1;
}
