// Micro-benchmarks of the quorum light-client hot path: what one
// header update costs at realistic validator-set sizes.  This is the
// per-update work behind the paper's Fig. 4/5 latency and cost curves.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "ibc/quorum.hpp"

namespace {

using namespace bmg;

struct Fixture {
  ibc::ValidatorSet set;
  ibc::SignedQuorumHeader sh;
};

// A set of `n` equal-stake validators and a header signed by all of
// them — the common fully-participating commit.
Fixture make_fixture(int n) {
  Fixture f;
  std::vector<crypto::PrivateKey> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back(crypto::PrivateKey::from_label("bench-qv-" + std::to_string(i)));
    f.set.add(keys.back().public_key(), 100);
  }
  ibc::QuorumHeader hd;
  hd.chain_id = "benchchain";
  hd.height = 1;
  hd.timestamp = 1.0;
  hd.validator_set_hash = f.set.hash();
  f.sh.header = hd;
  const Hash32 digest = hd.signing_digest();
  for (const auto& k : keys)
    f.sh.signatures.emplace_back(k.public_key(), k.sign(digest.view()));
  return f;
}

// Full `verify_signatures`: duplicate/membership checks plus one
// batched Ed25519 verification over every commit signature.
void BM_QuorumVerifySignatures(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibc::QuorumLightClient::verify_signatures(f.sh, f.set));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_QuorumVerifySignatures)->Arg(25)->Arg(50)->Arg(100);

// One complete light-client update, decode included — the on-chain
// cost unit a relayer pays per header.
void BM_QuorumClientUpdate(benchmark::State& state) {
  const Fixture f = make_fixture(static_cast<int>(state.range(0)));
  const Bytes wire = f.sh.encode();
  for (auto _ : state) {
    ibc::QuorumLightClient client("benchchain", f.set);
    client.update(wire);
    benchmark::DoNotOptimize(client.latest_height());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_QuorumClientUpdate)->Arg(25)->Arg(50)->Arg(100);

// The cached cheap path: set hash + header byte_size, the quantities
// every update re-derived before caching landed.
void BM_QuorumHeaderOverheads(benchmark::State& state) {
  const Fixture f = make_fixture(50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.set.hash());
    benchmark::DoNotOptimize(f.set.total_stake());
    benchmark::DoNotOptimize(f.sh.byte_size());
    benchmark::DoNotOptimize(f.sh.signing_digest());
  }
}
BENCHMARK(BM_QuorumHeaderOverheads);

}  // namespace

BENCHMARK_MAIN();
