// Micro-benchmarks of the sealable trie: insert/lookup/seal and proof
// generation/verification costs, plus proof sizes (what a relayer pays
// to ship in transaction bytes).
#include <benchmark/benchmark.h>

#include "crypto/sha256.hpp"
#include "trie/trie.hpp"

namespace {

using namespace bmg;

Bytes key_of(std::uint64_t i) {
  Encoder e;
  e.u64(0x1234).u64(i);
  return e.take();
}

trie::SealableTrie prefilled(std::uint64_t n) {
  trie::SealableTrie t;
  Hash32 v;
  v.bytes[0] = 1;
  for (std::uint64_t i = 0; i < n; ++i) t.set(key_of(i), v);
  return t;
}

void BM_TrieInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Hash32 v;
  v.bytes[0] = 1;
  for (auto _ : state) {
    trie::SealableTrie t;
    for (std::uint64_t i = 0; i < n; ++i) t.set(key_of(i), v);
    benchmark::DoNotOptimize(t.root_hash());
  }
  // Report per-insert cost.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TrieInsert)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TrieBatchCommit(benchmark::State& state) {
  // The deferred-commit path in isolation: n sets accumulate dirty
  // refs, then one commit() hashes the whole batch (Alg. 1's per-block
  // root computation).
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Hash32 v;
  v.bytes[0] = 1;
  for (auto _ : state) {
    trie::SealableTrie t;
    for (std::uint64_t i = 0; i < n; ++i) t.set(key_of(i), v);
    t.commit();
    benchmark::DoNotOptimize(t.root_hash());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TrieBatchCommit)->Arg(1000)->Arg(10000);

void BM_TrieSingleSetRoot(benchmark::State& state) {
  // The latency floor: one set() followed immediately by root_hash()
  // on an already-committed trie — the workload where deferral buys
  // nothing and must cost nothing.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  trie::SealableTrie t = prefilled(n);
  benchmark::DoNotOptimize(t.root_hash());
  Hash32 v;
  std::uint64_t i = n;
  for (auto _ : state) {
    v.bytes[0] = static_cast<std::uint8_t>(i);
    t.set(key_of(i++), v);
    benchmark::DoNotOptimize(t.root_hash());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieSingleSetRoot)->Arg(1000);

void BM_TrieLookup(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.get(key_of(i++ % n)));
  }
}
BENCHMARK(BM_TrieLookup)->Arg(1000)->Arg(100000);

void BM_TrieSeal(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Hash32 v;
  v.bytes[0] = 1;
  for (auto _ : state) {
    state.PauseTiming();
    trie::SealableTrie t = prefilled(n);
    state.ResumeTiming();
    // Seal the oldest half (contiguous prefix, newest kept live).
    for (std::uint64_t i = 0; i < n / 2; ++i) t.seal(key_of(i));
    benchmark::DoNotOptimize(t.stats());
  }
}
BENCHMARK(BM_TrieSeal)->Arg(1000);

void BM_TrieProve(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.prove(key_of(i++ % n)));
  }
}
BENCHMARK(BM_TrieProve)->Arg(1000)->Arg(100000);

void BM_TrieVerifyProof(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  const Bytes key = key_of(n / 2);
  const trie::Proof proof = t.prove(key);
  const Hash32 root = t.root_hash();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie::verify_proof(root, key, proof));
  }
}
BENCHMARK(BM_TrieVerifyProof)->Arg(1000)->Arg(100000);

void BM_ProofByteSize(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  std::size_t total = 0, count = 0;
  for (auto _ : state) {
    const trie::Proof p = t.prove(key_of(count % n));
    total += p.byte_size();
    ++count;
    benchmark::DoNotOptimize(p);
  }
  state.counters["proof_bytes"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(count));
}
BENCHMARK(BM_ProofByteSize)->Arg(64)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
