// Micro-benchmarks of the sealable trie: insert/lookup/seal and proof
// generation/verification costs, plus proof sizes (what a relayer pays
// to ship in transaction bytes).
//
// PR 9 additions: the paged-store tiers (in-RAM vs file-backed LRU)
// and the concurrent proof service — proofs generated against a
// published snapshot while the next block's writes commit.
//
// Flags (strictly validated; anything else is handed to
// google-benchmark):
//   --page-bytes N      page size for the paged benches (default 16384)
//   --resident-pages N  resident LRU frames for the file tier (default 256)
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "crypto/sha256.hpp"
#include "parse.hpp"
#include "trie/snapshot.hpp"
#include "trie/trie.hpp"

namespace {

using namespace bmg;

std::size_t g_page_bytes = 16 * 1024;
std::size_t g_resident_pages = 256;

trie::PageStoreConfig page_cfg(trie::PageStoreConfig::Backend backend) {
  trie::PageStoreConfig cfg;
  cfg.backend = backend;
  cfg.page_bytes = g_page_bytes;
  cfg.max_resident_pages = g_resident_pages;
  return cfg;
}

Bytes key_of(std::uint64_t i) {
  Encoder e;
  e.u64(0x1234).u64(i);
  return e.take();
}

trie::SealableTrie prefilled(std::uint64_t n) {
  trie::SealableTrie t;
  Hash32 v;
  v.bytes[0] = 1;
  for (std::uint64_t i = 0; i < n; ++i) t.set(key_of(i), v);
  return t;
}

void BM_TrieInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Hash32 v;
  v.bytes[0] = 1;
  for (auto _ : state) {
    trie::SealableTrie t;
    for (std::uint64_t i = 0; i < n; ++i) t.set(key_of(i), v);
    benchmark::DoNotOptimize(t.root_hash());
  }
  // Report per-insert cost.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TrieInsert)->Arg(100)->Arg(1000)->Arg(10000);

void BM_TrieBatchCommit(benchmark::State& state) {
  // The deferred-commit path in isolation: n sets accumulate dirty
  // refs, then one commit() hashes the whole batch (Alg. 1's per-block
  // root computation).
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Hash32 v;
  v.bytes[0] = 1;
  for (auto _ : state) {
    trie::SealableTrie t;
    for (std::uint64_t i = 0; i < n; ++i) t.set(key_of(i), v);
    t.commit();
    benchmark::DoNotOptimize(t.root_hash());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TrieBatchCommit)->Arg(1000)->Arg(10000);

void BM_TrieSingleSetRoot(benchmark::State& state) {
  // The latency floor: one set() followed immediately by root_hash()
  // on an already-committed trie — the workload where deferral buys
  // nothing and must cost nothing.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  trie::SealableTrie t = prefilled(n);
  benchmark::DoNotOptimize(t.root_hash());
  Hash32 v;
  std::uint64_t i = n;
  for (auto _ : state) {
    v.bytes[0] = static_cast<std::uint8_t>(i);
    t.set(key_of(i++), v);
    benchmark::DoNotOptimize(t.root_hash());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieSingleSetRoot)->Arg(1000);

void BM_TrieLookup(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.get(key_of(i++ % n)));
  }
}
BENCHMARK(BM_TrieLookup)->Arg(1000)->Arg(100000);

void BM_TrieSeal(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Hash32 v;
  v.bytes[0] = 1;
  for (auto _ : state) {
    state.PauseTiming();
    trie::SealableTrie t = prefilled(n);
    state.ResumeTiming();
    // Seal the oldest half (contiguous prefix, newest kept live).
    for (std::uint64_t i = 0; i < n / 2; ++i) t.seal(key_of(i));
    benchmark::DoNotOptimize(t.stats());
  }
}
BENCHMARK(BM_TrieSeal)->Arg(1000);

void BM_TrieProve(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.prove(key_of(i++ % n)));
  }
}
BENCHMARK(BM_TrieProve)->Arg(1000)->Arg(100000);

void BM_TrieVerifyProof(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  const Bytes key = key_of(n / 2);
  const trie::Proof proof = t.prove(key);
  const Hash32 root = t.root_hash();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie::verify_proof(root, key, proof));
  }
}
BENCHMARK(BM_TrieVerifyProof)->Arg(1000)->Arg(100000);

void BM_ProofByteSize(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const trie::SealableTrie t = prefilled(n);
  std::size_t total = 0, count = 0;
  for (auto _ : state) {
    const trie::Proof p = t.prove(key_of(count % n));
    total += p.byte_size();
    ++count;
    benchmark::DoNotOptimize(p);
  }
  state.counters["proof_bytes"] =
      benchmark::Counter(static_cast<double>(total) / static_cast<double>(count));
}
BENCHMARK(BM_ProofByteSize)->Arg(64)->Arg(1000)->Arg(100000);

// --- PR 9: paged tiers and the concurrent proof service ----------------

void paged_insert_commit(benchmark::State& state,
                         trie::PageStoreConfig::Backend backend) {
  // n inserts with a 128-write block cadence on the paged store.  The
  // file tier pays eviction + re-fault on top; the delta between the
  // two tiers is the out-of-core cost at this resident-set size.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Hash32 v;
  v.bytes[0] = 1;
  for (auto _ : state) {
    trie::SealableTrie t{page_cfg(backend)};
    for (std::uint64_t i = 0; i < n; ++i) {
      t.set(key_of(i), v);
      if ((i + 1) % 128 == 0) t.commit();
    }
    benchmark::DoNotOptimize(t.root_hash());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_TriePagedInsertMem(benchmark::State& state) {
  paged_insert_commit(state, trie::PageStoreConfig::Backend::kMemory);
}
BENCHMARK(BM_TriePagedInsertMem)->Arg(10000)->Arg(100000);

void BM_TriePagedInsertFile(benchmark::State& state) {
  paged_insert_commit(state, trie::PageStoreConfig::Backend::kFile);
}
BENCHMARK(BM_TriePagedInsertFile)->Arg(10000)->Arg(100000);

void BM_TrieSnapshotPublish(benchmark::State& state) {
  // The per-block snapshot handoff: one write, one commit, one
  // publish.  This is the whole cost the guest/counterparty chains add
  // per block to let the proof service read the frozen state.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  trie::SealableTrie t = prefilled(n);
  t.commit();
  Hash32 v;
  std::uint64_t i = n;
  for (auto _ : state) {
    v.bytes[0] = static_cast<std::uint8_t>(i);
    t.set(key_of(i++), v);
    t.commit();
    benchmark::DoNotOptimize(t.snapshot());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TrieSnapshotPublish)->Arg(10000);

void BM_TrieProveBatch(benchmark::State& state) {
  // Sharded batch proving against one snapshot (index-ordered, so the
  // output is thread-count invariant).
  const auto n = static_cast<std::uint64_t>(state.range(0));
  trie::SealableTrie t = prefilled(n);
  const trie::TrieSnapshot snap = t.snapshot();
  std::vector<Bytes> keys;
  keys.reserve(256);
  for (std::uint64_t i = 0; i < 256; ++i) keys.push_back(key_of(i % n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie::ProofService::prove_batch(snap, keys));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_TrieProveBatch)->Arg(10000)->Arg(100000);

void BM_TrieProofConcurrent(benchmark::State& state) {
  // The tentpole overlap: a proof batch runs on the service worker
  // against block h's snapshot while the main thread writes and
  // commits block h+1.  Real time is the honest clock here — the whole
  // point is that the two overlap.
  const auto n = static_cast<std::uint64_t>(state.range(0));
  trie::SealableTrie t = prefilled(n);
  t.commit();
  trie::ProofService service;
  std::vector<Bytes> keys;
  keys.reserve(256);
  for (std::uint64_t i = 0; i < 256; ++i) keys.push_back(key_of((i * 37) % n));
  Hash32 v;
  std::uint64_t block = 0;
  for (auto _ : state) {
    auto fut = service.submit(t.snapshot(), keys);
    // Next block commits while the worker proves.
    v.bytes[0] = static_cast<std::uint8_t>(++block);
    for (std::uint64_t i = 0; i < n; i += 16) t.set(key_of(i), v);
    t.commit();
    benchmark::DoNotOptimize(fut.get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_TrieProofConcurrent)->Arg(10000)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Strictly-validated local flags first; the rest goes to
  // google-benchmark (which rejects what *it* doesn't know).
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--page-bytes") == 0)
      g_page_bytes = static_cast<std::size_t>(
          bmg::bench::parse_positive_long(argv[0], "--page-bytes", next()));
    else if (std::strcmp(argv[i], "--resident-pages") == 0)
      g_resident_pages = static_cast<std::size_t>(
          bmg::bench::parse_positive_long(argv[0], "--resident-pages", next()));
    else
      rest.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&bench_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
