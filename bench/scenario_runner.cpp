// Multi-seed scenario runner: executes a (seed × Δ) grid of full-stack
// deployment simulations, one complete simulation per shard-pool cell,
// and emits one CSV row per scenario.
//
// Each scenario is an independent deterministic simulation — its own
// Deployment, Rng, chains and agents — so scenarios parallelise
// perfectly across the shard workers (PR 7).  Rows land in slots
// indexed by the scenario's static grid position and print in grid
// order after the join, so the CSV on stdout is byte-identical for any
// worker count (timing goes to stderr / --timing-csv, which are not
// part of the artifact).
//
//   scenario_runner [--seeds N] [--days D] [--shard-workers W]
//                   [--timing-csv PATH] [--threads T] [--adversary NAME]
//                   [--reorg NAME] [--commitment processed|rooted]
//
//   --seeds N          seeds 42..42+N-1 per Δ point (default 4)
//   --days D           simulated days per scenario (default 0.05)
//   --shard-workers W  shard workers (default: BMG_SHARD_WORKERS or
//                      hardware); cells serialize their intra-cell
//                      fork-join regions inline
//   --timing-csv PATH  per-cell wall/CPU timing rows (see grid.hpp)
//   --threads T        fork-join threads — only reaches kernels when
//                      the run is serial (kept for compatibility)
//   --adversary NAME   attach the named shipped AdversaryPlan scenario
//                      (adversary/scenarios.hpp) to every cell and
//                      append the per-action counter columns.  Without
//                      the flag no adversary code runs and the CSV is
//                      byte-identical to earlier releases.
//   --reorg NAME       run every cell on a fork-aware host with the
//                      named reorg storm (storm|deep|lossy) active over
//                      the measured span, and append the fork columns.
//   --commitment L     relayer commitment level: processed (default,
//                      optimistic) or rooted (hold every pipeline tx
//                      until its slot roots).  Arms fork-aware mode and
//                      appends the fork columns even without --reorg,
//                      so the rooted-lag latency penalty is measurable
//                      in isolation.  Without both flags the host stays
//                      linear and the CSV is byte-identical to earlier
//                      releases.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "adversary/campaign.hpp"
#include "adversary/scenarios.hpp"
#include "audit/auditor.hpp"
#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

struct Scenario {
  std::uint64_t seed = 0;
  double delta_seconds = 0;
};

/// Shipped reorg storms for --reorg (mirrors the --adversary pattern).
/// Depths stay below the default rooted lag (32 slots) so every storm
/// is resolvable.
struct ReorgSpec {
  const char* name;
  std::uint64_t max_depth;  ///< per-reorg depth drawn uniformly in [1, max]
  double probability;       ///< per-slot trigger probability
  double survival;          ///< per-tx survival onto the winning fork
};
constexpr ReorgSpec kReorgScenarios[] = {
    {"storm", 4, 0.08, 1.0},   // frequent shallow forks, no tx loss
    {"deep", 12, 0.01, 1.0},   // rare deep reorgs, no tx loss
    {"lossy", 4, 0.05, 0.85},  // shallow forks dropping ~15% of retracted txs
};

const ReorgSpec* find_reorg(const char* name) {
  for (const ReorgSpec& r : kReorgScenarios)
    if (std::strcmp(r.name, name) == 0) return &r;
  return nullptr;
}

bench::CellOutput run_scenario(std::size_t cell, const Scenario& sc, double days,
                               const char* adversary, const ReorgSpec* reorg,
                               bool rooted_commitment) {
  relayer::DeploymentConfig cfg = bench::paper_config(sc.seed);
  cfg.guest.delta_seconds = sc.delta_seconds;
  const bool fork_overlay = reorg != nullptr || rooted_commitment;
  if (fork_overlay) cfg.host.fork_aware = true;
  if (rooted_commitment)
    cfg.relayer.pipeline.commitment = host::Commitment::kRooted;
  relayer::Deployment d(cfg);
  // The auditor re-checks conservation / sequence / commit-root /
  // client-height invariants after every block.  It runs inline inside
  // existing event handlers, so the CSV (including the state root) is
  // byte-identical with or without it; violations go to stderr and
  // flip the exit code.
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  // Opt-in adversary overlay: the Campaign attaches the named shipped
  // attack across the whole measured span.  Constructed only when the
  // flag is present — the no-flag artifact must not change by a byte.
  std::optional<adversary::Campaign> campaign;
  if (adversary != nullptr) {
    const double t0 = d.sim().now();
    const auto table =
        adversary::campaign_scenarios(t0 + 30.0, t0 + days * 86400.0);
    const adversary::ScenarioSpec* spec = adversary::find_scenario(table, adversary);
    if (spec->crash_fisherman)
      d.host().fault_plan().crash(t0 + 150.0, t0 + 450.0, "fisherman");
    campaign.emplace(d, spec->plan);
    campaign->start();
  }

  const double until = d.sim().now() + days * 86400.0;
  // Reorg windows cover the measured span, skipping the settling
  // period right after the handshake (mirrors the adversary overlay).
  if (reorg != nullptr)
    d.host().fault_plan().reorg(d.sim().now() + 30.0, until, reorg->max_depth,
                                reorg->probability, reorg->survival);
  bench::GuestSendWorkload guest_load(d, 120.0, until);
  bench::CpSendWorkload cp_load(d, 300.0, until);
  d.run_for(days * 86400.0 + 2.0 * cfg.guest.delta_seconds);
  auditor.check_now("final");

  Series latency;
  Series rooted_latency;
  int finalised = 0;
  for (const auto& r : guest_load.records()) {
    if (!r->executed || !r->finalised) continue;
    ++finalised;
    latency.add(r->finalised_at - r->executed_at);
    if (r->rooted) rooted_latency.add(r->rooted_at - r->executed_at);
  }

  char buf[512];
  std::snprintf(buf, sizeof(buf), "%zu,%llu,%.0f,%zu,%zu,%d,%d,%.3f,%s", cell,
                static_cast<unsigned long long>(sc.seed), sc.delta_seconds,
                d.guest().block_count(), guest_load.records().size(), finalised,
                cp_load.sent(), latency.count() > 0 ? latency.mean() : 0.0,
                d.guest().store().root_hash().hex().c_str());
  std::string row = buf;
  if (campaign.has_value()) {
    row += ",";
    row += campaign->counters().csv_row();
    row += ",";
    row += std::to_string(campaign->offenders_banned());
  }
  if (fork_overlay) {
    const host::FaultCounters& fc = d.host().fault_counters();
    std::snprintf(buf, sizeof(buf), ",%.3f,%llu,%llu,%llu,%llu,%llu",
                  rooted_latency.count() > 0 ? rooted_latency.mean() : 0.0,
                  static_cast<unsigned long long>(fc.reorgs_triggered),
                  static_cast<unsigned long long>(fc.slots_rolled_back),
                  static_cast<unsigned long long>(fc.txs_replayed),
                  static_cast<unsigned long long>(fc.txs_reorged_out),
                  static_cast<unsigned long long>(
                      d.relayer().pipeline().reorged_out_total()));
    row += buf;
  }
  row += "\n";
  return bench::CellOutput{
      row, auditor.verdict("seed " + std::to_string(sc.seed) + " delta " +
                           std::to_string(static_cast<long>(sc.delta_seconds)))};
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 4;
  double days = 0.05;
  const char* timing_csv = nullptr;
  const char* adversary = nullptr;
  const char* reorg_name = nullptr;
  bool rooted_commitment = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = static_cast<int>(
          bench::parse_positive_long("scenario_runner", "--seeds", argv[++i]));
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = bench::parse_positive_double("scenario_runner", "--days", argv[++i]);
    } else if (std::strcmp(argv[i], "--shard-workers") == 0 && i + 1 < argc) {
      shard::set_worker_count(static_cast<std::size_t>(
          bench::parse_positive_long("scenario_runner", "--shard-workers", argv[++i])));
    } else if (std::strcmp(argv[i], "--timing-csv") == 0 && i + 1 < argc) {
      timing_csv = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      parallel::set_thread_count(static_cast<std::size_t>(
          bench::parse_positive_long("scenario_runner", "--threads", argv[++i])));
    } else if (std::strcmp(argv[i], "--adversary") == 0 && i + 1 < argc) {
      adversary = argv[++i];
    } else if (std::strcmp(argv[i], "--reorg") == 0 && i + 1 < argc) {
      reorg_name = argv[++i];
    } else if (std::strcmp(argv[i], "--commitment") == 0 && i + 1 < argc) {
      const char* level = argv[++i];
      if (std::strcmp(level, "rooted") == 0) {
        rooted_commitment = true;
      } else if (std::strcmp(level, "processed") != 0) {
        std::fprintf(stderr,
                     "scenario_runner: --commitment expects processed|rooted, "
                     "got '%s'\n",
                     level);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "scenario_runner: unknown or incomplete option '%s'\n"
                   "usage: scenario_runner [--seeds N] [--days D] [--shard-workers W] "
                   "[--timing-csv PATH] [--threads T] [--adversary NAME] "
                   "[--reorg NAME] [--commitment processed|rooted]\n",
                   argv[i]);
      return 2;
    }
  }
  const ReorgSpec* reorg = nullptr;
  if (reorg_name != nullptr) {
    reorg = find_reorg(reorg_name);
    if (reorg == nullptr) {
      std::fprintf(stderr, "scenario_runner: unknown reorg scenario '%s'\n",
                   reorg_name);
      return 2;
    }
  }
  if (adversary != nullptr) {
    // Validate the name once up front (window times are placeholders;
    // only the name is checked here).
    const auto table = bmg::adversary::campaign_scenarios(0.0, 1.0);
    if (bmg::adversary::find_scenario(table, adversary) == nullptr) {
      std::fprintf(stderr, "scenario_runner: unknown adversary scenario '%s'\n",
                   adversary);
      return 2;
    }
  }

  // Static grid: Δ points × seeds, in a fixed order that does not
  // depend on scheduling.
  const double deltas[] = {600.0, 3600.0};
  std::vector<Scenario> grid;
  for (const double delta : deltas)
    for (int s = 0; s < seeds; ++s)
      grid.push_back(Scenario{42 + static_cast<std::uint64_t>(s), delta});

  std::fprintf(stderr,
               "scenario_runner: %zu scenarios, %.3f days each, %zu shard workers\n",
               grid.size(), days, shard::worker_count());

  const bench::GridResult g = bench::run_grid(grid.size(), [&](std::size_t i) {
    return run_scenario(i, grid[i], days, adversary, reorg, rooted_commitment);
  });

  std::string header =
      "cell,seed,delta_s,blocks,sends,finalised,cp_sends,mean_latency_s,state_root";
  if (adversary != nullptr) {
    header += ",";
    header += bmg::adversary::AdversaryCounters::csv_header();
    header += ",banned";
  }
  if (reorg != nullptr || rooted_commitment)
    header +=
        ",mean_rooted_latency_s,reorgs,slots_rolled_back,txs_replayed,"
        "txs_reorged_out,pipeline_reorged_out";
  std::printf("%s\n", header.c_str());
  bench::print_cells(g);

  std::fprintf(stderr, "scenario_runner: wall=%.3fs\n", g.wall_s);
  bench::write_timing(g, timing_csv, "scenario_runner");

  // Invariant violations are not part of the CSV artifact: report on
  // stderr and fail the run.
  if (!g.verdict.clean())
    std::fprintf(stderr, "scenario_runner: AUDIT %s\n", g.verdict.report.c_str());
  return g.verdict.clean() ? 0 : 1;
}
