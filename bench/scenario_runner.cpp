// Multi-seed scenario runner: executes a (seed × Δ) grid of full-stack
// deployment simulations on the deterministic fork-join executor and
// emits one CSV row per scenario.
//
// Each scenario is an independent deterministic simulation — its own
// Deployment, Rng, chains and agents — so scenarios parallelise
// perfectly.  Rows are written into a slot indexed by the scenario's
// static grid position and printed in grid order after the join, so
// the CSV on stdout is byte-identical for any thread count (wall-clock
// timing goes to stderr, which is not part of the artifact).
//
//   scenario_runner [--seeds N] [--days D] [--threads T]
//
//   --seeds N    seeds 42..42+N-1 per Δ point (default 4)
//   --days D     simulated days per scenario (default 0.05)
//   --threads T  worker threads (default: BMG_THREADS or hardware)
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "bench_common.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"

namespace {

using namespace bmg;

struct Scenario {
  std::uint64_t seed = 0;
  double delta_seconds = 0;
};

struct Row {
  std::string csv;
  std::string audit;  ///< empty when every invariant held
};

Row run_scenario(const Scenario& sc, double days) {
  relayer::DeploymentConfig cfg = bench::paper_config(sc.seed);
  cfg.guest.delta_seconds = sc.delta_seconds;
  relayer::Deployment d(cfg);
  // The auditor re-checks conservation / sequence / commit-root /
  // client-height invariants after every block.  It runs inline inside
  // existing event handlers, so the CSV (including the state root) is
  // byte-identical with or without it; violations go to stderr and
  // flip the exit code.
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double until = d.sim().now() + days * 86400.0;
  bench::GuestSendWorkload guest_load(d, 120.0, until);
  bench::CpSendWorkload cp_load(d, 300.0, until);
  d.run_for(days * 86400.0 + 2.0 * cfg.guest.delta_seconds);
  auditor.check_now("final");

  Series latency;
  int finalised = 0;
  for (const auto& r : guest_load.records()) {
    if (!r->executed || !r->finalised) continue;
    ++finalised;
    latency.add(r->finalised_at - r->executed_at);
  }

  char buf[256];
  std::snprintf(buf, sizeof(buf), "%llu,%.0f,%zu,%zu,%d,%d,%.3f,%s\n",
                static_cast<unsigned long long>(sc.seed), sc.delta_seconds,
                d.guest().block_count(), guest_load.records().size(), finalised,
                cp_load.sent(), latency.count() > 0 ? latency.mean() : 0.0,
                d.guest().store().root_hash().hex().c_str());
  Row row{buf, {}};
  if (!auditor.clean()) {
    row.audit = "seed " + std::to_string(sc.seed) + ": " + auditor.report();
  }
  return row;
}

/// Parses a strictly positive integer option value; exits with a
/// diagnostic on garbage, trailing junk, overflow or non-positive
/// input (std::atoi would silently return 0 and corrupt the grid).
long parse_positive_long(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v <= 0) {
    std::fprintf(stderr, "scenario_runner: %s expects a positive integer, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return v;
}

/// Parses a strictly positive decimal option value with the same
/// rejection rules as parse_positive_long.
double parse_positive_double(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v > 0)) {
    std::fprintf(stderr, "scenario_runner: %s expects a positive number, got '%s'\n",
                 flag, text);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 4;
  double days = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = static_cast<int>(parse_positive_long("--seeds", argv[++i]));
    } else if (std::strcmp(argv[i], "--days") == 0 && i + 1 < argc) {
      days = parse_positive_double("--days", argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      parallel::set_thread_count(
          static_cast<std::size_t>(parse_positive_long("--threads", argv[++i])));
    } else {
      std::fprintf(stderr,
                   "scenario_runner: unknown or incomplete option '%s'\n"
                   "usage: scenario_runner [--seeds N] [--days D] [--threads T]\n",
                   argv[i]);
      return 2;
    }
  }

  // Static grid: Δ points × seeds, in a fixed order that does not
  // depend on scheduling.
  const double deltas[] = {600.0, 3600.0};
  std::vector<Scenario> grid;
  for (const double delta : deltas)
    for (int s = 0; s < seeds; ++s)
      grid.push_back(Scenario{42 + static_cast<std::uint64_t>(s), delta});

  std::fprintf(stderr, "scenario_runner: %zu scenarios, %.3f days each, %zu threads\n",
               grid.size(), days, parallel::thread_count());

  std::vector<Row> rows(grid.size());
  const auto t0 = std::chrono::steady_clock::now();
  parallel::parallel_for(grid.size(), 1, [&](std::size_t begin, std::size_t end,
                                             std::size_t) {
    for (std::size_t i = begin; i < end; ++i) rows[i] = run_scenario(grid[i], days);
  });
  const auto t1 = std::chrono::steady_clock::now();

  std::printf("seed,delta_s,blocks,sends,finalised,cp_sends,mean_latency_s,state_root\n");
  for (const Row& r : rows) std::fputs(r.csv.c_str(), stdout);

  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  std::fprintf(stderr, "scenario_runner: wall=%.3fs\n", wall);

  // Invariant violations are not part of the CSV artifact: report on
  // stderr and fail the run.
  bool clean = true;
  for (const Row& r : rows) {
    if (r.audit.empty()) continue;
    clean = false;
    std::fprintf(stderr, "scenario_runner: AUDIT %s\n", r.audit.c_str());
  }
  return clean ? 0 : 1;
}
