// Reorg-storm scoreboard: the optimistic-vs-rooted commitment tradeoff
// under host forks.
//
// Runs a (seed × mode) grid of full-stack deployments.  Modes:
//
//   baseline    linear host (no fork machinery) — the control row;
//   optimistic  fork-aware host under a reorg storm, agents consume at
//               processed commitment (inclusion is trusted instantly,
//               reorged-out work is repaired after the fact);
//   rooted      same storm, pipeline holds every transaction until its
//               slot roots before advancing.
//
// Per row: client send latency to finalisation and to rooting, sends
// lost to retracted forks, fee spend, and the host's reorg counters —
// the safety/latency tradeoff curve of ISSUE 10.  Each cell is one
// deterministic simulation; rows print in grid order, so stdout is
// byte-identical at every --shard-workers count.  The invariant
// auditor runs in every cell and a violation fails the binary.
//
//   reorg_storm [--seeds N] [--days D] [--seed S] [--shard-workers W]
//               [--timing-csv PATH]
#include <cstdio>
#include <string>

#include "audit/auditor.hpp"
#include "bench_common.hpp"
#include "common/stats.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

enum class Mode { kBaseline = 0, kOptimistic, kRooted };
constexpr const char* kModeNames[] = {"baseline", "optimistic", "rooted"};

// The storm every non-baseline cell runs under: shallow frequent forks
// with 10% of retracted transactions dying on the winning fork.
constexpr std::uint64_t kStormDepth = 4;
constexpr double kStormProbability = 0.08;
constexpr double kStormSurvival = 0.90;

struct Cell {
  std::uint64_t seed = 0;
  Mode mode = Mode::kBaseline;
};

bench::CellOutput run_cell(std::size_t index, const Cell& c, double days) {
  relayer::DeploymentConfig cfg = bench::paper_config(c.seed);
  cfg.guest.delta_seconds = 600.0;
  if (c.mode != Mode::kBaseline) cfg.host.fork_aware = true;
  if (c.mode == Mode::kRooted)
    cfg.relayer.pipeline.commitment = host::Commitment::kRooted;
  relayer::Deployment d(cfg);
  audit::InvariantAuditor auditor(d.sim(), d.host(), d.guest(), d.cp());
  auditor.start();
  d.open_ibc();
  auditor.watch_client(d.guest_client_on_cp());
  auditor.watch_transfer_lane(
      audit::TransferLane{d.guest_channel(), d.cp_channel(), "SOL", "PICA"});

  const double until = d.sim().now() + days * 86400.0;
  if (c.mode != Mode::kBaseline)
    d.host().fault_plan().reorg(d.sim().now() + 30.0, until, kStormDepth,
                                kStormProbability, kStormSurvival);

  bench::GuestSendWorkload load(d, 120.0, until);
  d.run_for(days * 86400.0 + 2.0 * cfg.guest.delta_seconds);
  auditor.check_now("final");

  Series fin_latency, rooted_latency, fees;
  int executed = 0, finalised = 0, rooted = 0, lost = 0;
  for (const auto& r : load.records()) {
    if (r->failed) {
      ++lost;
      continue;
    }
    if (!r->executed) continue;
    ++executed;
    fees.add(r->fee_usd);
    if (r->finalised) {
      ++finalised;
      fin_latency.add(r->finalised_at - r->executed_at);
    }
    if (r->rooted) {
      ++rooted;
      rooted_latency.add(r->rooted_at - r->executed_at);
    }
  }

  const host::FaultCounters& fc = d.host().fault_counters();
  const relayer::TxPipeline& pipe = d.relayer().pipeline();
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%zu,%llu,%s,%zu,%zu,%d,%d,%d,%d,%.3f,%.3f,%.4f,%llu,%llu,%llu,%llu,%llu,"
      "%llu,%s\n",
      index, static_cast<unsigned long long>(c.seed),
      kModeNames[static_cast<int>(c.mode)], d.guest().block_count(),
      load.records().size(), executed, finalised, rooted, lost,
      fin_latency.count() > 0 ? fin_latency.mean() : 0.0,
      rooted_latency.count() > 0 ? rooted_latency.mean() : 0.0,
      fees.count() > 0 ? fees.mean() : 0.0,
      static_cast<unsigned long long>(fc.reorgs_triggered),
      static_cast<unsigned long long>(fc.slots_rolled_back),
      static_cast<unsigned long long>(fc.txs_replayed),
      static_cast<unsigned long long>(fc.txs_reorged_out),
      static_cast<unsigned long long>(pipe.reorged_out_total()),
      static_cast<unsigned long long>(pipe.reorg_repairs()),
      d.guest().store().root_hash().hex().c_str());
  return bench::CellOutput{
      buf, auditor.verdict("seed " + std::to_string(c.seed) + " mode " +
                           kModeNames[static_cast<int>(c.mode)])};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/0.02);
  long seeds = args.grid_seeds > 0 ? args.grid_seeds : 2;

  std::vector<Cell> grid;
  for (long s = 0; s < seeds; ++s)
    for (const Mode mode : {Mode::kBaseline, Mode::kOptimistic, Mode::kRooted})
      grid.push_back(Cell{args.seed + static_cast<std::uint64_t>(s), mode});

  std::fprintf(stderr, "reorg_storm: %zu cells, %.3f days each, %zu shard workers\n",
               grid.size(), args.days, shard::worker_count());

  const bench::GridResult g = bench::run_grid(grid.size(), [&](std::size_t i) {
    return run_cell(i, grid[i], args.days);
  });

  std::printf(
      "cell,seed,mode,blocks,sends,executed,finalised,rooted,lost,"
      "mean_finalised_latency_s,mean_rooted_latency_s,mean_fee_usd,reorgs,"
      "slots_rolled_back,txs_replayed,txs_reorged_out,pipeline_reorged_out,"
      "reorg_repairs,state_root\n");
  bench::print_cells(g);

  std::fprintf(stderr, "reorg_storm: wall=%.3fs\n", g.wall_s);
  bench::write_timing(g, args.timing_csv, "reorg_storm");

  if (!g.verdict.clean())
    std::fprintf(stderr, "reorg_storm: AUDIT %s\n", g.verdict.report.c_str());
  return g.verdict.clean() ? 0 : 1;
}
