// Micro-benchmark of the resilient submission pipeline under host
// congestion: how much simulated latency, fee cost and retry traffic a
// fixed 10-transaction sequence incurs as the congestion multiplier
// collapses from 1.0 (clean host) toward 0.0 (nothing lands until the
// window passes).  The interesting output is the *simulated* metrics
// (reported as counters), not the wall-clock time of the event loop.
#include <benchmark/benchmark.h>

#include <memory>

#include "host/chain.hpp"
#include "host/constants.hpp"
#include "relayer/tx_pipeline.hpp"

namespace {

using namespace bmg;

class NoopProgram : public host::Program {
 public:
  void execute(host::TxContext&, ByteView) override {}
};

struct RunResult {
  relayer::SequenceOutcome outcome;
  std::uint64_t retries = 0;
  std::uint64_t escalations = 0;
  std::uint64_t events = 0;
};

// One full simulated run: a 10-tx base-fee sequence against a host
// whose inclusion probabilities are multiplied by `severity` for the
// first 120 s.  Deterministic per (severity, seed).
RunResult run_sequence(double severity, std::uint64_t seed,
                       const relayer::PipelineConfig& pcfg) {
  sim::Simulation sim;
  host::ChainConfig cfg;
  cfg.fault.congestion(0.0, 120.0, severity);
  host::Chain chain(sim, Rng(seed), cfg);
  chain.register_program("noop", std::make_unique<NoopProgram>());
  const crypto::PublicKey payer = crypto::PrivateKey::from_label("bench-payer").public_key();
  chain.airdrop(payer, 1000 * host::kLamportsPerSol);
  chain.start();

  relayer::TxPipeline pipe(sim, chain, Rng(seed ^ 0x9E3779B97F4A7C15ull), pcfg);
  std::vector<host::Transaction> txs;
  for (int i = 0; i < 10; ++i) {
    host::Transaction tx;
    tx.payer = payer;
    tx.label = "bench";
    tx.instructions.push_back(host::Instruction{"noop", Bytes{}});
    txs.push_back(std::move(tx));
  }

  RunResult r;
  bool done = false;
  pipe.submit_sequence(std::move(txs), [&](const relayer::SequenceOutcome& out) {
    r.outcome = out;
    done = true;
  });
  sim.run_until(3600.0);
  if (!done) r.outcome.ok = false;
  r.retries = pipe.retries_total();
  r.escalations = pipe.escalations_total();
  r.events = sim.events_processed();
  return r;
}

// state.range(0) = congestion multiplier in percent (100 = clean).
void run_congestion_bench(benchmark::State& state, const relayer::PipelineConfig& pcfg) {
  const double severity = static_cast<double>(state.range(0)) / 100.0;
  double latency_sum = 0, cost_sum = 0;
  std::uint64_t retries_sum = 0, escalations_sum = 0, runs = 0, delivered = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const RunResult r = run_sequence(severity, seed++, pcfg);
    benchmark::DoNotOptimize(r.events);
    latency_sum += r.outcome.finished_at;
    cost_sum += r.outcome.cost_usd;
    retries_sum += static_cast<std::uint64_t>(r.outcome.retries);
    escalations_sum += r.escalations;
    delivered += r.outcome.ok ? 1 : 0;
    ++runs;
  }
  const double n = static_cast<double>(runs);
  state.counters["sim_latency_s"] = latency_sum / n;
  state.counters["cost_usd"] = cost_sum / n;
  state.counters["retries"] = static_cast<double>(retries_sum) / n;
  state.counters["fee_escalations"] = static_cast<double>(escalations_sum) / n;
  state.counters["delivery_rate"] = static_cast<double>(delivered) / n;
}

void BM_PipelineUnderCongestion(benchmark::State& state) {
  run_congestion_bench(state, relayer::PipelineConfig{});
}
BENCHMARK(BM_PipelineUnderCongestion)->Arg(100)->Arg(50)->Arg(30)->Arg(10)->Arg(0);

// The pre-pipeline submitter, expressed as a pipeline with all budgets
// set to one attempt: no deadline, no retry, no fee escalation — the
// sequence aborts on the first lost transaction.
void BM_NaiveSubmitterUnderCongestion(benchmark::State& state) {
  relayer::PipelineConfig naive;
  naive.tx_deadline_s = 0;
  naive.max_attempts_per_tx = 1;
  naive.max_exec_failures = 1;
  naive.escalate_fees = false;
  run_congestion_bench(state, naive);
}
BENCHMARK(BM_NaiveSubmitterUnderCongestion)->Arg(100)->Arg(50)->Arg(30)->Arg(10)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
