// Ablation — fee policy comparison (§VI-B): the deployed system used
// fixed fee models (priority fees or Jito bundles); the paper notes
// this is inflexible — cheap during low congestion, yet unable to
// prevent tail latency during high congestion.  We sweep congestion
// levels and compare base / priority / bundle inclusion latency and
// cost, plus a simple dynamic policy (escalate fee after a timeout).
//
// Each (congestion, policy) pair is one shard-pool cell; rows print in
// sweep order (congestion-major), byte-identical at any
// --shard-workers.
#include "bench_common.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

/// Trivial program so the transactions execute.
class NoopProgram final : public host::Program {
 public:
  void execute(host::TxContext& ctx, ByteView) override { ctx.consume_cu(61'000); }
};

struct Outcome {
  Series latency;
  Series cost;
  int dropped = 0;
};

Outcome run_policy(double p_base, int policy, std::uint64_t seed) {
  sim::Simulation sim;
  host::ChainConfig cfg;
  cfg.p_include_base = p_base;
  host::Chain chain(sim, Rng(seed), cfg);
  chain.register_program("noop", std::make_unique<NoopProgram>());
  const auto payer = crypto::PrivateKey::from_label("fee-payer").public_key();
  chain.airdrop(payer, 100'000 * host::kLamportsPerSol);
  chain.start();

  Outcome out;
  Rng rng(seed ^ 0x99);
  for (int i = 0; i < 400; ++i) {
    const double submit_time = sim.now();
    host::Transaction tx;
    tx.payer = payer;
    tx.instructions.push_back(host::Instruction{"noop", {}});
    switch (policy) {
      case 0:
        tx.fee = host::FeePolicy::base();
        break;
      case 1:
        tx.fee = relayer::priority_fee_for_usd(1.40, 61'000);
        break;
      case 2:
        tx.fee = host::FeePolicy::bundle(host::usd_to_lamports(3.019));
        break;
      case 3:
        // dynamic: start base; escalation handled below on drop
        tx.fee = host::FeePolicy::base();
        break;
    }
    bool resolved = false;
    chain.submit(std::move(tx), [&, submit_time](const host::TxResult& res) {
      resolved = true;
      if (!res.executed) {
        if (policy == 3) {
          // Escalate: resubmit with a priority fee.
          host::Transaction retry;
          retry.payer = payer;
          retry.instructions.push_back(host::Instruction{"noop", {}});
          retry.fee = relayer::priority_fee_for_usd(1.40, 61'000);
          chain.submit(std::move(retry), [&, submit_time](const host::TxResult& r2) {
            if (r2.executed) {
              out.latency.add(r2.time - submit_time);
              out.cost.add(r2.fee.usd() + host::lamports_to_usd(
                                              host::kLamportsPerSignature));
            } else {
              ++out.dropped;
            }
          });
        } else {
          ++out.dropped;
        }
        return;
      }
      out.latency.add(res.time - submit_time);
      out.cost.add(res.fee.usd());
    });
    sim.run_until(sim.now() + rng.exponential(5.0));
    (void)resolved;
  }
  sim.run_until(sim.now() + 600.0);
  return out;
}

const char* kNames[] = {"base", "priority(1.40$)", "bundle(3.02$)", "dynamic"};
const double kCongestion[] = {0.8, 0.4, 0.1, 0.02};

bench::CellOutput run_cell(std::size_t cell, std::uint64_t seed) {
  const double p_base = kCongestion[cell / 4];
  const int policy = static_cast<int>(cell % 4);
  const Outcome out = run_policy(p_base, policy, seed);
  char buf[192];
  if (out.latency.empty()) {
    std::snprintf(buf, sizeof(buf), "p_base=%.2f  %-18s %10s %10s %10s %8d %10s\n",
                  p_base, kNames[policy], "-", "-", "-", out.dropped, "-");
  } else {
    std::snprintf(buf, sizeof(buf),
                  "p_base=%.2f  %-18s %9.1fs %9.1fs %9.1fs %8d %9.3f$\n", p_base,
                  kNames[policy], out.latency.quantile(0.5),
                  out.latency.quantile(0.95), out.latency.max(), out.dropped,
                  out.cost.mean());
  }
  std::string row = buf;
  if (policy == 3) row += "\n";  // blank line closes each congestion group
  return bench::CellOutput{std::move(row), {}};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv, 0.0);
  bench::print_header("Ablation: fee policies across congestion levels (§VI-B)", args);

  std::printf("%-12s %-18s %10s %10s %10s %8s %10s\n", "congestion", "policy",
              "lat p50", "lat p95", "lat max", "dropped", "mean cost");
  const std::size_t n = std::size(kCongestion) * 4;
  const bench::GridResult g =
      bench::run_grid(n, [&](std::size_t i) { return run_cell(i, args.seed); });
  bench::print_cells(g);
  bench::write_timing(g, args.timing_csv, "ablation_fees");

  std::printf("fixed policies overpay at low congestion and still drop txs at high\n"
              "congestion; escalation recovers drops for ~priority cost only when\n"
              "needed — the future-work direction of §VI-B.\n");
  return 0;
}
