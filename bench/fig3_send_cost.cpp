// Fig. 3 — Cost of sending a packet (SendPacket invocation).
//
// Paper result: two clear clusters by fee policy — 17% of sends used
// Solana priority fees (~1.40 USD) and 83% used Jito block bundles
// (~3.02 USD).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/3.0);
  bench::print_header("Fig. 3: cost of sending a packet", args);

  relayer::Deployment d(bench::paper_config(args.seed));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  bench::GuestSendWorkload workload(d, /*mean_interarrival_s=*/900.0, horizon);
  d.sim().run_until(horizon + 3600.0);

  Series cost, priority_cost, bundle_cost;
  for (const auto& r : workload.records()) {
    if (!r->executed) continue;
    cost.add(r->fee_usd);
    if (r->fee_usd < 2.0) {
      priority_cost.add(r->fee_usd);
    } else {
      bundle_cost.add(r->fee_usd);
    }
  }

  std::printf("%s\n", render_histogram(cost, 24, "cost (USD)").c_str());
  const double pr_frac =
      static_cast<double>(priority_cost.count()) / static_cast<double>(cost.count());
  std::printf("clusters:\n");
  std::printf("  priority-fee sends: %5.1f%% of sends, mean %.2f USD  (paper: 17%% at"
              " 1.40 USD)\n",
              100.0 * pr_frac, priority_cost.mean());
  std::printf("  bundle sends      : %5.1f%% of sends, mean %.2f USD  (paper: 83%% at"
              " 3.02 USD)\n",
              100.0 * (1.0 - pr_frac), bundle_cost.mean());
  return 0;
}
