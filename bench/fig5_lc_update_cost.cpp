// Fig. 5 — Cost of a light client update by the relayer (total cost
// of all the host transactions in the update), plus the ReceivePacket
// cost breakdown of §V-B.
//
// Paper: relayers pay the default fee model — 0.1 cents per
// transaction plus 0.1 cents per verified signature; cost variance
// comes from the amount of data and the number of signatures checked.
// ReceivePacket calls took 4-5 transactions costing 0.4 cents in
// 98.2% of cases and 0.5 cents otherwise.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/2.0);
  bench::print_header("Fig. 5: light client update cost (relayer)", args);

  relayer::Deployment d(bench::paper_config(args.seed));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  bench::CpSendWorkload workload(d, /*mean_interarrival_s=*/1200.0, horizon);
  d.sim().run_until(horizon + 3600.0);

  const Series& cost = d.relayer().update_costs_usd();
  std::printf("cp->guest packets: %d, light client updates: %zu\n\n", workload.sent(),
              cost.count());
  std::printf("%s\n", render_histogram(cost, 16, "update cost (USD)").c_str());
  std::printf("update cost: mean %.3f USD  min %.3f  max %.3f\n", cost.mean(),
              cost.min(), cost.max());
  std::printf("(~0.1 cents per tx + 0.1 cents per verified signature)\n\n");

  const Series& rtx = d.relayer().recv_tx_counts();
  const Series& rcost = d.relayer().recv_costs_usd();
  if (!rtx.empty()) {
    std::printf("ReceivePacket deliveries: %zu\n", rtx.count());
    std::printf("  transactions per delivery: min %.0f  median %.0f  max %.0f"
                "  (paper: 4-5)\n",
                rtx.min(), rtx.quantile(0.5), rtx.max());
    std::printf("  cost per delivery: median %.4f USD  p99 %.4f USD"
                "  (paper: 0.004 USD in 98.2%% of cases, else 0.005)\n",
                rcost.quantile(0.5), rcost.quantile(0.99));
  }
  return 0;
}
