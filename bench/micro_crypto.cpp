// Micro-benchmarks of the cryptographic substrate (google-benchmark):
// these costs are what the host chain's compute-unit model abstracts.
#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace {

using namespace bmg;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(256)->Arg(1232)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha512::digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1232);

void BM_Ed25519Sign(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_label("bench");
  const Bytes msg = bytes_of("a guest block digest: 32 bytes..");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_label("bench");
  const Bytes msg = bytes_of("a guest block digest: 32 bytes..");
  const crypto::Signature sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(key.public_key(), msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_Ed25519DerivePublic(benchmark::State& state) {
  crypto::ed25519::Seed seed{};
  seed[0] = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519::derive_public(seed));
  }
}
BENCHMARK(BM_Ed25519DerivePublic);

}  // namespace

BENCHMARK_MAIN();
