// Micro-benchmarks of the cryptographic substrate (google-benchmark):
// these costs are what the host chain's compute-unit model abstracts.
#include <benchmark/benchmark.h>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace {

using namespace bmg;

void BM_Sha256(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(256)->Arg(1232)->Arg(65536);

// Each backend the runtime dispatcher can pick, measured on the same
// input sizes as BM_Sha256 (which reports whatever the dispatcher
// chose on this CPU).
void BM_Sha256Backend(benchmark::State& state) {
  const auto impl = static_cast<crypto::Sha256Impl>(state.range(0));
  if (!crypto::sha256_impl_available(impl)) {
    state.SkipWithError("backend not available on this CPU");
    return;
  }
  const Bytes data(static_cast<std::size_t>(state.range(1)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256_digest_with(impl, data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(1));
}
BENCHMARK(BM_Sha256Backend)
    ->ArgsProduct({{static_cast<long>(crypto::Sha256Impl::kScalar),
                    static_cast<long>(crypto::Sha256Impl::kShaNi),
                    static_cast<long>(crypto::Sha256Impl::kAvx2)},
                   {256, 65536}});

// The multi-way batch API the trie's deferred commit() drives: many
// short fixed-shape preimages hashed in one call.
void BM_Sha256Batch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> msgs(n, Bytes(107, 0xAB));  // ~ext/leaf preimage size
  std::vector<ByteView> views(n);
  for (std::size_t i = 0; i < n; ++i) views[i] = msgs[i];
  std::vector<Hash32> out(n);
  for (auto _ : state) {
    crypto::sha256_batch(views.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Sha256Batch)->Arg(8)->Arg(64)->Arg(512);

void BM_Sha512(benchmark::State& state) {
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha512::digest(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1232);

void BM_Ed25519Sign(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_label("bench");
  const Bytes msg = bytes_of("a guest block digest: 32 bytes..");
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  const crypto::PrivateKey key = crypto::PrivateKey::from_label("bench");
  const Bytes msg = bytes_of("a guest block digest: 32 bytes..");
  const crypto::Signature sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(key.public_key(), msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

// Batched verification at several batch sizes.  Per-signature time is
// the headline number: `time / batch` here vs. BM_Ed25519Verify shows
// the amortization from the shared Straus doubling chain.
void BM_Ed25519VerifyBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> msgs;
  std::vector<crypto::ed25519::VerifyItem> items;
  msgs.reserve(n);
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const crypto::PrivateKey key =
        crypto::PrivateKey::from_label("batch-" + std::to_string(i));
    msgs.push_back(bytes_of("a guest block digest: 32 bytes.."));
    const crypto::Signature sig = key.sign(msgs.back());
    items.push_back({key.public_key().raw(), ByteView{msgs.back()}, sig.raw()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519::verify_batch(items));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Ed25519VerifyBatch)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// The same work done one verify at a time — the baseline the batch
// amortization is measured against.
void BM_Ed25519VerifySequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> msgs;
  std::vector<crypto::ed25519::VerifyItem> items;
  msgs.reserve(n);
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const crypto::PrivateKey key =
        crypto::PrivateKey::from_label("batch-" + std::to_string(i));
    msgs.push_back(bytes_of("a guest block digest: 32 bytes.."));
    const crypto::Signature sig = key.sign(msgs.back());
    items.push_back({key.public_key().raw(), ByteView{msgs.back()}, sig.raw()});
  }
  for (auto _ : state) {
    bool all = true;
    for (const auto& it : items)
      all = all && crypto::ed25519::verify(it.pub, it.msg, it.sig);
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Ed25519VerifySequential)->Arg(32);

void BM_Ed25519DerivePublic(benchmark::State& state) {
  crypto::ed25519::Seed seed{};
  seed[0] = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519::derive_public(seed));
  }
}
BENCHMARK(BM_Ed25519DerivePublic);

}  // namespace

BENCHMARK_MAIN();
