// Ablation — the transaction-capacity constraint (§IV): how the number
// of Ed25519 pre-compile verifications that fit in one host
// transaction drives light-client-update size, latency and cost.
//
// The deployed system fits ~4 Tendermint vote verifications in a
// 1232-byte transaction, hence ~36 transactions per update.  A host
// with larger transactions (or signature aggregation) would compress
// the update dramatically — quantified here by sweeping
// sigs_per_update_tx.
//
// Each sweep point is one shard-pool cell; rows print in sweep order
// (a skipped point contributes an empty slice), byte-identical at any
// --shard-workers.
#include "bench_common.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

// The 1232-byte limit itself caps what fits: each pre-compile entry
// is ~144 bytes, so at most 7 verifications share one transaction.
constexpr int kSigsPerTx[] = {1, 2, 4, 7};

bench::CellOutput run_point(int sigs_per_tx, const bench::Args& args) {
  relayer::DeploymentConfig cfg = bench::paper_config(args.seed);
  cfg.relayer.sigs_per_update_tx = sigs_per_tx;
  relayer::Deployment d(std::move(cfg));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  bench::CpSendWorkload workload(d, /*mean_interarrival_s=*/1200.0, horizon);
  d.sim().run_until(horizon + 3600.0);
  (void)workload;

  const Series& txs = d.relayer().update_tx_counts();
  const Series& dur = d.relayer().update_durations();
  const Series& cost = d.relayer().update_costs_usd();
  if (txs.empty()) return bench::CellOutput{{}, {}};
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%14d %14.1f %16.1f %16.1f %14.3f\n", sigs_per_tx,
                txs.mean(), dur.quantile(0.5), dur.quantile(0.95), cost.mean());
  return bench::CellOutput{buf, {}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/0.5);
  bench::print_header(
      "Ablation: pre-compile capacity per tx vs light client update shape", args);

  std::printf("%14s %14s %16s %16s %14s\n", "sigs per tx", "txs/update",
              "update p50 (s)", "update p95 (s)", "cost (USD)");

  const bench::GridResult g = bench::run_grid(
      std::size(kSigsPerTx), [&](std::size_t i) { return run_point(kSigsPerTx[i], args); });
  bench::print_cells(g);
  bench::write_timing(g, args.timing_csv, "ablation_txsize");

  std::printf("\nper-signature fees dominate cost (constant across rows); latency\n"
              "scales with transaction count.  7 verifications per tx is the\n"
              "ceiling the 1232-byte limit allows for 144-byte entries; the\n"
              "deployed system's larger Tendermint vote payloads cap it at ~4.\n"
              "Signature aggregation or larger host transactions would compress\n"
              "updates from ~36 txs to a handful.\n");
  return 0;
}
