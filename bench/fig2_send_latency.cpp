// Fig. 2 — Delay between sending a packet (SendPacket invocation) and
// the packet being stored in a finalised guest block (FinalisedBlock).
//
// Paper result: all but three transfers completed within 21 seconds;
// the stragglers came from validator signing delays (validator #1's
// heavy tail).  We reproduce the same pipeline: the send transaction
// lands on the host, the crank generates a guest block, and the block
// finalises once 17 of 24 validators (Table I latency profiles) have
// signed.
//
// Grid mode (--grid-seeds N): instead of the single classic run, N
// independent replications execute on the shard pool, each a complete
// deployment seeded from the deterministic stream split
// stream_seed(seed, cell), and the latency quantiles print as one CSV
// row per cell — byte-identical at any --shard-workers.
#include "bench_common.hpp"
#include "grid.hpp"

namespace {

using namespace bmg;

bench::CellOutput run_cell(std::size_t cell, const bench::Args& args) {
  relayer::DeploymentConfig cfg = bench::paper_config(args.seed);
  cfg.rng_stream = cell;  // replication = stream split of the base seed
  relayer::Deployment d(cfg);
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  bench::GuestSendWorkload workload(d, /*mean_interarrival_s=*/1500.0, horizon);
  d.sim().run_until(horizon + 2 * 3600.0);

  Series latency;
  int finalised = 0;
  for (const auto& r : workload.records()) {
    if (!r->executed || !r->finalised) continue;
    ++finalised;
    latency.add(r->finalised_at - r->executed_at);
  }
  const int over21 = static_cast<int>(
      static_cast<double>(latency.count()) * (1.0 - latency.cdf_at(21.0)));

  char buf[192];
  std::snprintf(buf, sizeof(buf), "%zu,%zu,%d,%.1f,%.1f,%.1f,%.1f,%d\n", cell,
                workload.records().size(), finalised, latency.quantile(0.5),
                latency.quantile(0.9), latency.quantile(0.99), latency.max(), over21);
  return bench::CellOutput{buf, {}};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/7.0);

  if (args.grid_seeds > 0) {
    const auto n = static_cast<std::size_t>(args.grid_seeds);
    std::fprintf(stderr, "fig2_send_latency: %zu replications, %zu shard workers\n", n,
                 shard::worker_count());
    const bench::GridResult g =
        bench::run_grid(n, [&](std::size_t i) { return run_cell(i, args); });
    std::printf("cell,sent,finalised,median_s,p90_s,p99_s,max_s,over_21s\n");
    bench::print_cells(g);
    std::fprintf(stderr, "fig2_send_latency: wall=%.3fs\n", g.wall_s);
    bench::write_timing(g, args.timing_csv, "fig2_send_latency");
    return 0;
  }

  bench::print_header("Fig. 2: send-packet latency (SendPacket -> FinalisedBlock)", args);

  relayer::Deployment d(bench::paper_config(args.seed));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  // Paper-like traffic: a packet roughly every 25 minutes.
  bench::GuestSendWorkload workload(d, /*mean_interarrival_s=*/1500.0, horizon);
  d.sim().run_until(horizon + 2 * 3600.0);  // drain the tail

  Series latency;
  int finalised = 0, unfinalised = 0;
  for (const auto& r : workload.records()) {
    if (!r->executed) continue;
    if (!r->finalised) {
      ++unfinalised;
      continue;
    }
    ++finalised;
    latency.add(r->finalised_at - r->executed_at);
  }

  std::printf("packets sent: %zu, finalised: %d, still pending at horizon: %d\n\n",
              workload.records().size(), finalised, unfinalised);
  std::printf("%s\n", render_cdf(latency, 20, "latency (s)").c_str());
  std::printf("quantiles:  median=%.1f s   p90=%.1f s   p99=%.1f s   max=%.1f s\n",
              latency.quantile(0.5), latency.quantile(0.9), latency.quantile(0.99),
              latency.max());

  const int over21 = static_cast<int>(
      static_cast<double>(latency.count()) * (1.0 - latency.cdf_at(21.0)));
  std::printf("\npaper: all but 3 transfers within 21 s; stragglers from validator"
              " signing delays\n");
  std::printf("here : %d of %zu transfers exceeded 21 s\n", over21, latency.count());
  return 0;
}
