// Shared setup for the evaluation harnesses: the paper-configured
// deployment (Table I validator roster, Δ = 1 h, mixed client fee
// policies) and Poisson workload drivers.
//
// Every binary prints its seed and is exactly reproducible.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>

#include "common/shard_pool.hpp"
#include "parse.hpp"
#include "relayer/deployment.hpp"

namespace bmg::bench {

/// Command-line knobs shared by the harnesses:
///   --days N           simulated days (default varies per bench)
///   --seed N           RNG seed (default 42)
///   --shard-workers W  shard-pool workers for grid-capable drivers
///                      (default: BMG_SHARD_WORKERS or hardware)
///   --grid-seeds N     figure drivers: run an N-seed grid instead of
///                      the single classic run (0 = classic mode)
///   --timing-csv PATH  write per-cell wall/CPU timing rows to PATH
///                      (timing is never part of the stdout artifact)
struct Args {
  double days = 0;
  std::uint64_t seed = 42;
  long grid_seeds = 0;
  const char* timing_csv = nullptr;

  /// Strict parsing: malformed values and unknown flags exit 2 instead
  /// of silently running a corrupted configuration.  Drivers with their
  /// own flag loops list those flags in `extra_value_flags` (each takes
  /// exactly one value, which is skipped here).
  static Args parse(int argc, char** argv, double default_days,
                    std::initializer_list<const char*> extra_value_flags = {}) {
    Args a;
    a.days = default_days;
    const char* prog = argc > 0 ? argv[0] : "bench";
    for (int i = 1; i < argc; ++i) {
      const auto value = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: %s needs a value\n", prog, argv[i]);
          std::exit(2);
        }
        return argv[++i];
      };
      if (std::strcmp(argv[i], "--days") == 0)
        a.days = parse_positive_double(prog, "--days", value());
      else if (std::strcmp(argv[i], "--seed") == 0)
        a.seed = static_cast<std::uint64_t>(parse_uint64(prog, "--seed", value()));
      else if (std::strcmp(argv[i], "--shard-workers") == 0)
        shard::set_worker_count(static_cast<std::size_t>(
            parse_positive_long(prog, "--shard-workers", value())));
      else if (std::strcmp(argv[i], "--grid-seeds") == 0)
        a.grid_seeds =
            static_cast<long>(parse_uint64(prog, "--grid-seeds", value()));
      else if (std::strcmp(argv[i], "--timing-csv") == 0)
        a.timing_csv = value();
      else {
        bool extra = false;
        for (const char* f : extra_value_flags)
          if (std::strcmp(argv[i], f) == 0) {
            extra = true;
            break;
          }
        if (extra) {
          (void)value();  // the driver's own loop validated it
          continue;
        }
        std::fprintf(stderr, "%s: unknown flag '%s'\n", prog, argv[i]);
        std::exit(2);
      }
    }
    return a;
  }
};

/// The paper's deployment configuration (§IV-§V): 24 validators with
/// Table I profiles, Δ = 1 h, 12-hour epochs (disabled by default for
/// run-length control), and a counterparty whose commits force ~36-tx
/// light client updates.
inline relayer::DeploymentConfig paper_config(std::uint64_t seed) {
  relayer::DeploymentConfig cfg;
  cfg.seed = seed;
  cfg.guest.delta_seconds = 3600.0;           // Δ = 1 h
  cfg.guest.epoch_length_host_slots = 1'000'000'000;  // no rotation unless asked
  cfg.validators = relayer::paper_validators();
  cfg.counterparty.num_validators = 160;
  cfg.counterparty.participation_min = 0.70;
  cfg.counterparty.participation_max = 1.00;
  cfg.counterparty.block_interval_s = 6.0;
  cfg.relayer.sigs_per_update_tx = 4;
  return cfg;
}

/// Client fee policies of §V-A: 17% priority fees (~1.40 USD), 83%
/// Jito-style bundles (~3.02 USD).
inline host::FeePolicy sample_client_fee(Rng& rng) {
  if (rng.chance(0.17)) {
    // Send transaction uses ~61k CU.
    return relayer::priority_fee_for_usd(1.40, 61'000);
  }
  return host::FeePolicy::bundle(host::usd_to_lamports(3.02 - 0.001));
}

/// Schedules Poisson guest->counterparty transfers with the given mean
/// inter-arrival time, recording each SendRecord.
class GuestSendWorkload {
 public:
  GuestSendWorkload(relayer::Deployment& d, double mean_interarrival_s, double until)
      : d_(d), mean_(mean_interarrival_s), until_(until), rng_(d.rng().fork()) {
    schedule_next();
  }

  [[nodiscard]] const std::vector<std::shared_ptr<relayer::Deployment::SendRecord>>&
  records() const {
    return records_;
  }

 private:
  void schedule_next() {
    const double at = d_.sim().now() + rng_.exponential(mean_);
    if (at > until_) return;
    d_.sim().at(at, [this] {
      records_.push_back(d_.send_transfer_from_guest(100, sample_client_fee(rng_)));
      schedule_next();
    });
  }

  relayer::Deployment& d_;
  double mean_;
  double until_;
  Rng rng_;
  std::vector<std::shared_ptr<relayer::Deployment::SendRecord>> records_;
};

/// Schedules Poisson counterparty->guest transfers.
class CpSendWorkload {
 public:
  CpSendWorkload(relayer::Deployment& d, double mean_interarrival_s, double until)
      : d_(d), mean_(mean_interarrival_s), until_(until), rng_(d.rng().fork()) {
    schedule_next();
  }

  [[nodiscard]] int sent() const { return sent_; }

 private:
  void schedule_next() {
    const double at = d_.sim().now() + rng_.exponential(mean_);
    if (at > until_) return;
    d_.sim().at(at, [this] {
      (void)d_.send_transfer_from_cp(10);
      ++sent_;
      schedule_next();
    });
  }

  relayer::Deployment& d_;
  double mean_;
  double until_;
  Rng rng_;
  int sent_ = 0;
};

inline void print_header(const char* title, const Args& args) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("seed=%llu  simulated_days=%.2f\n",
              static_cast<unsigned long long>(args.seed), args.days);
  std::printf("==============================================================\n");
}

}  // namespace bmg::bench
