// Fig. 4 — Latency of light client updates sent by the relayer to the
// guest (time between execution of the first and last host
// transaction comprising the update).
//
// Paper result: updates averaged 36.5 host transactions (σ = 5.8);
// 50% of updates took < 25 s and 96% < 60 s.  The update size is
// driven by the counterparty's commit: ~100+ signatures that must be
// pre-compile-verified a few at a time within the 1232-byte and
// 1.4M-CU transaction limits.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace bmg;
  const bench::Args args = bench::Args::parse(argc, argv, /*default_days=*/2.0);
  bench::print_header("Fig. 4: light client update latency (relayer -> guest)", args);

  relayer::Deployment d(bench::paper_config(args.seed));
  d.open_ibc();

  const double horizon = d.sim().now() + args.days * 86400.0;
  // Counterparty->guest traffic forces regular light client updates.
  bench::CpSendWorkload workload(d, /*mean_interarrival_s=*/1200.0, horizon);
  d.sim().run_until(horizon + 3600.0);

  const Series& txs = d.relayer().update_tx_counts();
  const Series& dur = d.relayer().update_durations();

  std::printf("cp->guest packets sent: %d, light client updates: %zu\n\n",
              workload.sent(), dur.count());
  std::printf("transactions per update: mean %.1f  stddev %.1f  (paper: 36.5, 5.8)\n\n",
              txs.mean(), txs.stddev());
  std::printf("%s\n", render_cdf(dur, 20, "update latency (s)").c_str());
  std::printf("shares:  <25 s: %4.1f%%   <60 s: %4.1f%%   (paper: 50%% and 96%%)\n",
              100.0 * dur.cdf_at(25.0), 100.0 * dur.cdf_at(60.0));
  return 0;
}
