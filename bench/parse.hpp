// Strict CLI parsing shared by every bench driver (PR 6 gave this to
// scenario_runner; PR 9 hoists it so the trie drivers reject bad input
// too).  std::atoi would silently return 0 and corrupt a run.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace bmg::bench {

inline long parse_positive_long(const char* prog, const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v <= 0) {
    std::fprintf(stderr, "%s: %s expects a positive integer, got '%s'\n", prog, flag,
                 text);
    std::exit(2);
  }
  return v;
}

/// Strictly positive decimal with the same rejection rules.
inline double parse_positive_double(const char* prog, const char* flag,
                                    const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v > 0)) {
    std::fprintf(stderr, "%s: %s expects a positive number, got '%s'\n", prog, flag,
                 text);
    std::exit(2);
  }
  return v;
}

/// Non-negative integer (seeds and counts where zero is meaningful).
inline unsigned long long parse_uint64(const char* prog, const char* flag,
                                       const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n", prog,
                 flag, text);
    std::exit(2);
  }
  return v;
}

/// Non-negative decimal in [0, 1] (seal rates, fractions).
inline double parse_fraction(const char* prog, const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE || !(v >= 0.0) || v > 1.0) {
    std::fprintf(stderr, "%s: %s expects a fraction in [0,1], got '%s'\n", prog, flag,
                 text);
    std::exit(2);
  }
  return v;
}

}  // namespace bmg::bench
