// Campaign: attaches an AdversaryPlan to a relayer::Deployment.
//
// The Campaign is the adversary layer's Deployment-facing seam.  It
// owns everything the plan calls for — the gossip bus, a fisherman (the
// defence), Byzantine validator agents, a collusion clique, a griefing
// relayer and a fee attacker — selects which roster validators turn
// Byzantine (silent tail first, so sub-quorum attacks don't starve
// guest finalisation of signing power), compiles the plan's market
// effects into the host FaultPlan, and registers every adversarial
// agent with the deployment's CrashController so PR 5 crash windows
// compose with attacks.
//
// It also *measures* the prosecution pipeline: a subscription on the
// guest program's Slashed events joins slashing economics (stake
// slashed / reporter reward / burn) with the fisherman's
// first-detection timestamps into a time-to-detection series, and
// attacker spend is read back from Chain::payer_stats.
//
// Determinism: `Campaign(d, {})` — an empty plan — constructs nothing,
// draws nothing and subscribes to nothing; the deployment's transcript
// is byte-identical to one without a Campaign at all.  Non-empty plans
// seed every adversary Rng from `deployment seed ^ fixed stream
// constants`, never from Deployment::rng().
#pragma once

#include <memory>
#include <vector>

#include "adversary/byzantine.hpp"
#include "adversary/fee_attacker.hpp"
#include "adversary/griefing_relayer.hpp"
#include "adversary/plan.hpp"
#include "common/stats.hpp"
#include "relayer/deployment.hpp"
#include "relayer/fisherman_agent.hpp"

namespace bmg::adversary {

class Campaign {
 public:
  /// Slashing economics accumulated from guest Slashed events.
  struct Economics {
    std::uint64_t slashed_count = 0;
    std::uint64_t stake_slashed = 0;    ///< lamports removed from offenders
    std::uint64_t reporter_reward = 0;  ///< lamports paid to the fisherman
    std::uint64_t stake_burned = 0;     ///< lamports destroyed
  };

  Campaign(relayer::Deployment& deployment, AdversaryPlan plan);

  /// Starts the deployment (idempotent) and, when the plan is
  /// non-empty, constructs and starts every agent the plan calls for.
  void start();

  [[nodiscard]] bool active() const noexcept { return !plan_.empty(); }
  [[nodiscard]] const AdversaryPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const AdversaryCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const Economics& economics() const noexcept { return economics_; }
  /// Seconds from first fisherman detection to the slash landing.
  [[nodiscard]] const Series& detection_latency() const noexcept {
    return detection_latency_;
  }

  /// The fisherman (null for an empty plan).
  [[nodiscard]] relayer::FishermanAgent* fisherman() noexcept {
    return fisherman_.get();
  }
  /// Validators the campaign turned Byzantine (equivocators + clique).
  [[nodiscard]] const std::vector<crypto::PublicKey>& offenders() const noexcept {
    return offenders_;
  }
  [[nodiscard]] std::size_t offenders_banned() const;

  /// Host fees paid by the attack side (griefer + fee attacker).
  [[nodiscard]] double attacker_fees_usd() const;
  /// Host fees paid by the defence (the fisherman's evidence txs).
  [[nodiscard]] double fisherman_fees_usd() const;

  [[nodiscard]] CollusionClique* clique() noexcept { return clique_.get(); }
  [[nodiscard]] GriefingRelayerAgent* griefer() noexcept { return griefer_.get(); }

 private:
  std::vector<crypto::PrivateKey> pick_validator_keys(std::size_t n) const;
  void subscribe_slash_events();

  relayer::Deployment& d_;
  AdversaryPlan plan_;
  AdversaryCounters counters_;
  Economics economics_;
  Series detection_latency_;
  bool started_ = false;

  std::unique_ptr<relayer::GossipBus> bus_;
  std::unique_ptr<relayer::FishermanAgent> fisherman_;
  std::vector<std::unique_ptr<ByzantineValidatorAgent>> byzantine_;
  std::unique_ptr<CollusionClique> clique_;
  std::unique_ptr<GriefingRelayerAgent> griefer_;
  std::unique_ptr<FeeAttackerAgent> fee_attacker_;
  std::vector<crypto::PublicKey> offenders_;
  crypto::PublicKey fisher_payer_;
  crypto::PublicKey griefer_payer_;
  crypto::PublicKey fee_payer_;
};

}  // namespace bmg::adversary
