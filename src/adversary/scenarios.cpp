#include "adversary/scenarios.hpp"

namespace bmg::adversary {

std::vector<ScenarioSpec> campaign_scenarios(double attack_start, double attack_end) {
  const double t0 = attack_start;
  const double t1 = attack_end;
  const double mid = t0 + 0.5 * (t1 - t0);
  std::vector<ScenarioSpec> all;

  // Baseline: the damage denominator every attacked cell is compared
  // against (same seed, no adversary).
  all.push_back(ScenarioSpec{"none", AdversaryPlan{}, false});

  {
    ScenarioSpec s{"equivocate", {}, false};
    s.plan.equivocate(t0, t1, 2, 0.8);
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"fork-sign", {}, false};
    s.plan.fork_sign(t0, t1, 2, 0.6);
    all.push_back(std::move(s));
  }
  {
    // 7 colluders out of the paper roster's 24×1000 stake: 7000 stake
    // against a quorum of 16001 — the just-below-quorum regime where
    // the light client must reject every forged push.
    ScenarioSpec s{"collude-subquorum", {}, false};
    s.plan.collude(t0, t1, 7, 0.35);
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"grief-clobber", {}, false};
    s.plan.update_clobber(t0, t1);
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"grief-ack-withhold", {}, false};
    s.plan.ack_withhold(t0, t1, 240.0);
    all.push_back(std::move(s));
  }
  {
    // Stale replay needs delivered packets to replay, so it rides a
    // short-delay withhold window that makes the griefer a delivering
    // relayer.
    ScenarioSpec s{"stale-replay", {}, false};
    s.plan.ack_withhold(t0, t1, 30.0).stale_replay(t0, t1, 0.2);
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"fee-attack", {}, false};
    s.plan.fee_spam(t0, t1, 6.0, 0.6, 25.0);
    all.push_back(std::move(s));
  }
  {
    ScenarioSpec s{"combined", {}, false};
    s.plan.equivocate(t0, t1, 1, 0.5)
        .ack_withhold(t0, t1, 180.0)
        .fee_spam(t0, mid, 4.0, 0.75, 40.0);
    all.push_back(std::move(s));
  }
  {
    // Crash composition: equivocation happens in the first half of the
    // window while a FaultPlan crash window (added by the driver) kills
    // the fisherman mid-prosecution; detection must survive restart via
    // the on-chain evidence re-derivation path.
    ScenarioSpec s{"equivocate-fisherman-crash", {}, true};
    s.plan.equivocate(t0, mid, 2, 1.0);
    all.push_back(std::move(s));
  }
  return all;
}

const ScenarioSpec* find_scenario(const std::vector<ScenarioSpec>& all,
                                  const std::string& name) {
  for (const auto& s : all)
    if (s.name == name) return &s;
  return nullptr;
}

}  // namespace bmg::adversary
