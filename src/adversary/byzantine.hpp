// Byzantine validator agents driven by an AdversaryPlan.
//
// Two shapes of validator misbehaviour from §III-C of the paper:
//
//  * `ByzantineValidatorAgent` — an individual validator that, while an
//    equivocation window is open, signs both the canonical block and a
//    forged fork of it (misbehaviour class 1), and while a fork-sign
//    window is open, signs fabricated future-height headers
//    (class 2).  Everything is gossiped on the fisherman bus; nothing
//    touches the chains directly, which is exactly the paper's threat
//    model — a lone Byzantine validator can lie but cannot finalise.
//
//  * `CollusionClique` — a coordinated group holding up to
//    just-below-quorum stake that co-signs forged headers carrying an
//    attacker-built state trie and *pushes them at the counterparty
//    light client*.  Below quorum the client rejects the update
//    ("insufficient signing stake") and the only effect is evidence for
//    the fisherman; at quorum and above the client accepts and the
//    clique can prove fabricated packet commitments — the documented
//    safety-loss signature (the InvariantAuditor trips on the unbacked
//    mint).
//
// Both are sim::CrashableAgents, so FaultPlan crash windows compose:
// an adversary process can itself be killed and restarted mid-attack.
#pragma once

#include <string>
#include <vector>

#include "adversary/plan.hpp"
#include "common/rng.hpp"
#include "counterparty/chain.hpp"
#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "relayer/fisherman_agent.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler.hpp"

namespace bmg::adversary {

class ByzantineValidatorAgent final : public sim::CrashableAgent {
 public:
  ByzantineValidatorAgent(sim::Simulation& sim, host::Chain& host,
                          guest::GuestContract& contract, relayer::GossipBus& bus,
                          crypto::PrivateKey key, const AdversaryPlan& plan,
                          AdversaryCounters& counters, std::size_t index,
                          std::uint64_t seed);

  void start();

  // --- sim::CrashableAgent ----------------------------------------------
  [[nodiscard]] const std::string& agent_name() const override { return name_; }
  [[nodiscard]] bool running() const override { return running_; }
  void crash() override;
  void restart() override;

  [[nodiscard]] const crypto::PublicKey& pubkey() const noexcept { return pubkey_; }

 private:
  void act(ibc::Height height);

  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  relayer::GossipBus& bus_;
  crypto::PrivateKey key_;
  crypto::PublicKey pubkey_;
  const AdversaryPlan& plan_;
  AdversaryCounters& counters_;
  std::size_t index_;
  Rng rng_;
  sim::Simulation::AgentId timer_owner_;
  std::string name_;
  bool running_ = true;
};

class CollusionClique final : public sim::CrashableAgent {
 public:
  CollusionClique(sim::Simulation& sim, counterparty::CounterpartyChain& cp,
                  guest::GuestContract& contract, relayer::GossipBus& bus,
                  std::vector<crypto::PrivateKey> keys, ibc::ClientId guest_client_on_cp,
                  ibc::ChannelId guest_channel, ibc::ChannelId cp_channel,
                  const AdversaryPlan& plan, AdversaryCounters& counters,
                  std::uint64_t seed);

  void start();

  // --- sim::CrashableAgent ----------------------------------------------
  [[nodiscard]] const std::string& agent_name() const override { return name_; }
  [[nodiscard]] bool running() const override { return running_; }
  void crash() override;
  void restart() override;

  /// Sum of the clique members' on-chain stake right now.
  [[nodiscard]] std::uint64_t clique_stake() const;

 private:
  void attack();

  sim::Simulation& sim_;
  counterparty::CounterpartyChain& cp_;
  guest::GuestContract& contract_;
  relayer::GossipBus& bus_;
  std::vector<crypto::PrivateKey> keys_;
  ibc::ClientId client_;
  ibc::ChannelId guest_channel_;
  ibc::ChannelId cp_channel_;
  const AdversaryPlan& plan_;
  AdversaryCounters& counters_;
  Rng rng_;
  sim::Simulation::AgentId timer_owner_;
  std::string name_ = "collusion-clique";
  bool running_ = true;
  std::uint64_t pushes_ = 0;
  std::uint64_t forged_seq_ = 1'000'000'000;  ///< never collides with real sequences
};

}  // namespace bmg::adversary
