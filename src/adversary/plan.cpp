#include "adversary/plan.hpp"

#include <algorithm>
#include <cstdio>

namespace bmg::adversary {

namespace {
bool window_open(const AdversaryWindow& w, double t) noexcept {
  return t >= w.start && t < w.end;
}
}  // namespace

const char* adversary_kind_name(AdversaryKind kind) noexcept {
  switch (kind) {
    case AdversaryKind::kEquivocate: return "equivocate";
    case AdversaryKind::kForkSign: return "fork-sign";
    case AdversaryKind::kCollude: return "collude";
    case AdversaryKind::kUpdateClobber: return "update-clobber";
    case AdversaryKind::kAckWithhold: return "ack-withhold";
    case AdversaryKind::kStaleReplay: return "stale-replay";
    case AdversaryKind::kFeeSpam: return "fee-spam";
  }
  return "unknown";
}

const char* AdversaryCounters::csv_header() noexcept {
  return "equivocations,fork_signs,collusion_headers,fork_pushes_rejected,"
         "fork_pushes_accepted,forged_packet_mints,updates_clobbered,front_runs,"
         "acks_withheld,acks_released,stale_replays,spam_txs";
}

std::string AdversaryCounters::csv_row() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu",
                static_cast<unsigned long long>(equivocations),
                static_cast<unsigned long long>(fork_signs),
                static_cast<unsigned long long>(collusion_headers),
                static_cast<unsigned long long>(fork_pushes_rejected),
                static_cast<unsigned long long>(fork_pushes_accepted),
                static_cast<unsigned long long>(forged_packet_mints),
                static_cast<unsigned long long>(updates_clobbered),
                static_cast<unsigned long long>(front_runs),
                static_cast<unsigned long long>(acks_withheld),
                static_cast<unsigned long long>(acks_released),
                static_cast<unsigned long long>(stale_replays),
                static_cast<unsigned long long>(spam_txs));
  return buf;
}

std::uint64_t AdversaryCounters::total() const noexcept {
  return equivocations + fork_signs + collusion_headers + fork_pushes_rejected +
         fork_pushes_accepted + forged_packet_mints + updates_clobbered + front_runs +
         acks_withheld + acks_released + stale_replays + spam_txs;
}

AdversaryPlan& AdversaryPlan::equivocate(double start, double end, int validators,
                                         double rate) {
  AdversaryWindow w;
  w.kind = AdversaryKind::kEquivocate;
  w.start = start;
  w.end = end;
  w.agents = validators;
  w.rate = rate;
  windows_.push_back(w);
  return *this;
}

AdversaryPlan& AdversaryPlan::fork_sign(double start, double end, int validators,
                                        double rate) {
  AdversaryWindow w;
  w.kind = AdversaryKind::kForkSign;
  w.start = start;
  w.end = end;
  w.agents = validators;
  w.rate = rate;
  windows_.push_back(w);
  return *this;
}

AdversaryPlan& AdversaryPlan::collude(double start, double end, int members,
                                      double rate) {
  AdversaryWindow w;
  w.kind = AdversaryKind::kCollude;
  w.start = start;
  w.end = end;
  w.agents = members;
  w.rate = rate;
  windows_.push_back(w);
  return *this;
}

AdversaryPlan& AdversaryPlan::update_clobber(double start, double end) {
  AdversaryWindow w;
  w.kind = AdversaryKind::kUpdateClobber;
  w.start = start;
  w.end = end;
  windows_.push_back(w);
  return *this;
}

AdversaryPlan& AdversaryPlan::ack_withhold(double start, double end, double delay_s) {
  AdversaryWindow w;
  w.kind = AdversaryKind::kAckWithhold;
  w.start = start;
  w.end = end;
  w.delay_s = delay_s;
  windows_.push_back(w);
  return *this;
}

AdversaryPlan& AdversaryPlan::stale_replay(double start, double end, double rate) {
  AdversaryWindow w;
  w.kind = AdversaryKind::kStaleReplay;
  w.start = start;
  w.end = end;
  w.rate = rate;
  windows_.push_back(w);
  return *this;
}

AdversaryPlan& AdversaryPlan::fee_spam(double start, double end, double fee_multiplier,
                                       double inclusion_factor, double interval_s) {
  AdversaryWindow w;
  w.kind = AdversaryKind::kFeeSpam;
  w.start = start;
  w.end = end;
  w.fee_multiplier = fee_multiplier;
  w.inclusion_factor = inclusion_factor;
  w.interval_s = interval_s;
  windows_.push_back(w);
  return *this;
}

AdversaryPlan& AdversaryPlan::clear() {
  windows_.clear();
  return *this;
}

int AdversaryPlan::byzantine_validators() const noexcept {
  int n = 0;
  for (const auto& w : windows_)
    if (w.kind == AdversaryKind::kEquivocate || w.kind == AdversaryKind::kForkSign)
      n = std::max(n, w.agents);
  return n;
}

int AdversaryPlan::clique_size() const noexcept {
  int n = 0;
  for (const auto& w : windows_)
    if (w.kind == AdversaryKind::kCollude) n = std::max(n, w.agents);
  return n;
}

bool AdversaryPlan::has_byzantine() const noexcept { return byzantine_validators() > 0; }

bool AdversaryPlan::has_collusion() const noexcept { return clique_size() > 0; }

bool AdversaryPlan::has_griefing() const noexcept {
  return std::any_of(windows_.begin(), windows_.end(), [](const AdversaryWindow& w) {
    return w.kind == AdversaryKind::kUpdateClobber ||
           w.kind == AdversaryKind::kAckWithhold ||
           w.kind == AdversaryKind::kStaleReplay;
  });
}

bool AdversaryPlan::has_fee_attack() const noexcept {
  return std::any_of(windows_.begin(), windows_.end(), [](const AdversaryWindow& w) {
    return w.kind == AdversaryKind::kFeeSpam;
  });
}

double AdversaryPlan::rate_at(AdversaryKind kind, double t) const noexcept {
  double rate = 0.0;
  for (const auto& w : windows_)
    if (w.kind == kind && window_open(w, t)) rate = std::max(rate, w.rate);
  return rate;
}

bool AdversaryPlan::clobber_active(double t) const noexcept {
  return std::any_of(windows_.begin(), windows_.end(), [t](const AdversaryWindow& w) {
    return w.kind == AdversaryKind::kUpdateClobber && window_open(w, t);
  });
}

std::optional<double> AdversaryPlan::ack_withhold_delay(double t) const noexcept {
  for (const auto& w : windows_)
    if (w.kind == AdversaryKind::kAckWithhold && window_open(w, t)) return w.delay_s;
  return std::nullopt;
}

const AdversaryWindow* AdversaryPlan::fee_spam_window(double t) const noexcept {
  for (const auto& w : windows_)
    if (w.kind == AdversaryKind::kFeeSpam && window_open(w, t)) return &w;
  return nullptr;
}

std::optional<double> AdversaryPlan::next_window_start(AdversaryKind kind,
                                                       double t) const noexcept {
  std::optional<double> next;
  for (const auto& w : windows_) {
    if (w.kind != kind || w.start <= t) continue;
    if (!next || w.start < *next) next = w.start;
  }
  return next;
}

void AdversaryPlan::compile_host_faults(host::FaultPlan& plan) const {
  for (const auto& w : windows_) {
    if (w.kind != AdversaryKind::kFeeSpam) continue;
    // The market-wide effects of sustained fee pressure are chain
    // properties, so they ride on the PR 3 fault machinery: every
    // submitter pays the spiked fee floor and sees squeezed inclusion,
    // which is what forces the TxPipeline into bundle escalation.
    plan.fee_spike(w.start, w.end, w.fee_multiplier);
    if (w.inclusion_factor < 1.0) plan.congestion(w.start, w.end, w.inclusion_factor);
  }
}

}  // namespace bmg::adversary
