#include "adversary/campaign.hpp"

#include <algorithm>

#include "host/constants.hpp"

namespace bmg::adversary {

Campaign::Campaign(relayer::Deployment& deployment, AdversaryPlan plan)
    : d_(deployment), plan_(std::move(plan)) {}

void Campaign::start() {
  if (started_) return;
  started_ = true;
  // Empty plan: attach nothing at all.  No agents, no airdrops, no
  // subscriptions, no RNG draws — the byte-identity contract.
  if (plan_.empty()) {
    d_.start();
    return;
  }
  d_.start();

  bus_ = std::make_unique<relayer::GossipBus>();
  fisher_payer_ = crypto::PrivateKey::from_label("fisherman-payer").public_key();
  d_.host().airdrop(fisher_payer_, 10'000 * host::kLamportsPerSol);
  fisherman_ = std::make_unique<relayer::FishermanAgent>(d_.sim(), d_.host(),
                                                         d_.guest(), *bus_,
                                                         fisher_payer_);
  fisherman_->start();

  const std::uint64_t seed = d_.seed();

  if (const int nbyz = plan_.byzantine_validators(); nbyz > 0) {
    auto keys = pick_validator_keys(static_cast<std::size_t>(nbyz));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      offenders_.push_back(keys[i].public_key());
      byzantine_.push_back(std::make_unique<ByzantineValidatorAgent>(
          d_.sim(), d_.host(), d_.guest(), *bus_, std::move(keys[i]), plan_,
          counters_, i, seed));
      byzantine_.back()->start();
    }
  }

  if (const int nclique = plan_.clique_size(); nclique > 0) {
    auto keys = pick_validator_keys(static_cast<std::size_t>(nclique));
    for (const auto& k : keys) offenders_.push_back(k.public_key());
    clique_ = std::make_unique<CollusionClique>(
        d_.sim(), d_.cp(), d_.guest(), *bus_, std::move(keys),
        d_.guest_client_on_cp(), d_.guest_channel(), d_.cp_channel(), plan_,
        counters_, seed);
    clique_->start();
  }

  if (plan_.has_griefing()) {
    griefer_payer_ = crypto::PrivateKey::from_label("griefer-relayer").public_key();
    d_.host().airdrop(griefer_payer_, 50'000 * host::kLamportsPerSol);
    griefer_ = std::make_unique<GriefingRelayerAgent>(
        d_.sim(), d_.host(), d_.guest(), d_.cp(), d_.guest_client_on_cp(),
        griefer_payer_, plan_, counters_, seed);
    griefer_->start();
  }

  if (plan_.has_fee_attack()) {
    fee_payer_ = crypto::PrivateKey::from_label("fee-attacker").public_key();
    d_.host().airdrop(fee_payer_, 100'000 * host::kLamportsPerSol);
    fee_attacker_ = std::make_unique<FeeAttackerAgent>(d_.sim(), d_.host(), fee_payer_,
                                                       plan_, counters_);
    fee_attacker_->start();
  }

  plan_.compile_host_faults(d_.host().fault_plan());

  // Adversaries are processes too: crash windows naming them (or the
  // fisherman) now resolve, and any windows the plan compiled in are
  // armed.
  relayer::CrashController& ctl = d_.crash_controller();
  ctl.add(*fisherman_);
  for (auto& b : byzantine_) ctl.add(*b);
  if (clique_) ctl.add(*clique_);
  if (griefer_) ctl.add(*griefer_);
  if (fee_attacker_) ctl.add(*fee_attacker_);
  d_.schedule_crashes();

  subscribe_slash_events();
}

std::vector<crypto::PrivateKey> Campaign::pick_validator_keys(std::size_t n) const {
  // Corrupt the roster tail, silent (non-signing) validators first:
  // banning them costs the chain no finalisation power, which keeps
  // sub-quorum scenarios honest about *safety* without conflating the
  // result with a self-inflicted liveness stall.  Only when the plan
  // asks for more Byzantine stake than the silent tail holds do active
  // validators turn.
  const auto& vals = d_.validators();
  std::vector<std::size_t> order;
  for (std::size_t i = vals.size(); i-- > 0;)
    if (!vals[i]->profile().active) order.push_back(i);
  for (std::size_t i = vals.size(); i-- > 0;)
    if (vals[i]->profile().active) order.push_back(i);

  std::vector<crypto::PrivateKey> keys;
  for (const std::size_t idx : order) {
    if (keys.size() >= n) break;
    keys.push_back(vals[idx]->key());
  }
  return keys;
}

void Campaign::subscribe_slash_events() {
  d_.host().subscribe(guest::kProgramName, [this](const host::Event& ev) {
    if (ev.name != guest::GuestContract::kEvSlashed) return;
    Decoder dec(ev.data);
    crypto::ed25519::PublicKeyBytes raw{};
    const Bytes view = dec.raw(raw.size());
    std::copy(view.begin(), view.end(), raw.begin());
    const crypto::PublicKey offender(raw);
    ++economics_.slashed_count;
    if (dec.remaining() >= 24) {
      economics_.stake_slashed += dec.u64();
      economics_.reporter_reward += dec.u64();
      economics_.stake_burned += dec.u64();
    }
    if (fisherman_) {
      if (const auto t0 = fisherman_->first_detected(offender))
        detection_latency_.add(ev.time - *t0);
    }
  });
}

std::size_t Campaign::offenders_banned() const {
  std::size_t n = 0;
  for (const auto& pk : offenders_)
    if (d_.guest().is_banned(pk)) ++n;
  return n;
}

double Campaign::attacker_fees_usd() const {
  std::uint64_t lamports = 0;
  if (griefer_) lamports += d_.host().payer_stats(griefer_payer_).fees_lamports;
  if (fee_attacker_) lamports += d_.host().payer_stats(fee_payer_).fees_lamports;
  return host::lamports_to_usd(lamports);
}

double Campaign::fisherman_fees_usd() const {
  if (!fisherman_) return 0.0;
  return host::lamports_to_usd(d_.host().payer_stats(fisher_payer_).fees_lamports);
}

}  // namespace bmg::adversary
