// Scriptable adversary campaigns, symmetric to host::FaultPlan (PR 3).
//
// A FaultPlan perturbs the *infrastructure* (congestion, outages,
// crashes); an AdversaryPlan perturbs the *participants*: Byzantine
// validators that equivocate or collude, griefing relayers that
// front-run client updates and sit on acknowledgements, and fee-market
// attackers that force the TxPipeline into bundle escalation.  Windows
// follow the FaultPlan conventions — [start, end) in simulated
// seconds, builder methods chain, and the plan itself is inert data:
// agents constructed by adversary::Campaign query it at event time.
//
// Determinism contract (same bar as FaultPlan): an *empty* plan
// constructs no agents, draws no random numbers and subscribes to no
// events, so a deployment with an empty AdversaryPlan is byte-identical
// to one without any adversary code at all.  Non-empty plans draw from
// dedicated Rng streams seeded from the deployment seed xor fixed
// constants — never from Deployment::rng(), whose fork order is part of
// the recorded transcript.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "host/fault.hpp"

namespace bmg::adversary {

enum class AdversaryKind : std::uint8_t {
  kEquivocate = 0,     ///< validators double-sign canonical heights
  kForkSign = 1,       ///< validators sign fabricated future-height forks
  kCollude = 2,        ///< clique co-signs forged headers and pushes them
  kUpdateClobber = 3,  ///< relayer resets in-flight light-client updates
  kAckWithhold = 4,    ///< relayer front-runs delivery, withholds the ack
  kStaleReplay = 5,    ///< relayer replays already-delivered packets
  kFeeSpam = 6,        ///< sustained priority-fee pressure on the host
};

[[nodiscard]] const char* adversary_kind_name(AdversaryKind kind) noexcept;

/// One scripted attack window.  Field meaning depends on `kind`; unused
/// fields keep their defaults.
struct AdversaryWindow {
  AdversaryKind kind = AdversaryKind::kEquivocate;
  double start = 0;  ///< window opens (inclusive, simulated seconds)
  double end = 0;    ///< window closes (exclusive)
  /// Per-trigger probability (equivocate/fork-sign: per canonical
  /// block per validator; collude: per counterparty block; stale
  /// replay: per poll tick).
  double rate = 1.0;
  /// kEquivocate/kForkSign: Byzantine validator count.
  /// kCollude: clique size (stake is the member sum).
  int agents = 1;
  /// kAckWithhold: seconds a captured ack is withheld before release.
  double delay_s = 0.0;
  /// kFeeSpam: host fee-market multiplier during the window.
  double fee_multiplier = 1.0;
  /// kFeeSpam: inclusion-probability factor (host congestion severity).
  double inclusion_factor = 1.0;
  /// kFeeSpam: spam-transaction cadence in seconds.
  double interval_s = 30.0;
};

/// Cumulative per-action accounting, FaultCounters-style.  One struct
/// per campaign, incremented by the adversary agents as actions land.
struct AdversaryCounters {
  std::uint64_t equivocations = 0;        ///< double-sign pairs gossiped
  std::uint64_t fork_signs = 0;           ///< future-height signatures gossiped
  std::uint64_t collusion_headers = 0;    ///< forged headers co-signed by the clique
  std::uint64_t fork_pushes_rejected = 0; ///< forged headers the light client refused
  std::uint64_t fork_pushes_accepted = 0; ///< forged headers the light client accepted
  std::uint64_t forged_packet_mints = 0;  ///< unbacked vouchers minted off forged proofs
  std::uint64_t updates_clobbered = 0;    ///< in-flight client updates reset
  std::uint64_t front_runs = 0;           ///< packet deliveries stolen from the relayer
  std::uint64_t acks_withheld = 0;        ///< acks captured and sat on
  std::uint64_t acks_released = 0;        ///< withheld acks eventually released
  std::uint64_t stale_replays = 0;        ///< duplicate packet deliveries attempted
  std::uint64_t spam_txs = 0;             ///< fee-pressure transactions submitted

  /// Comma-separated column names matching `csv_row()`, for CSV headers.
  [[nodiscard]] static const char* csv_header() noexcept;
  [[nodiscard]] std::string csv_row() const;
  [[nodiscard]] std::uint64_t total() const noexcept;
};

class AdversaryPlan {
 public:
  AdversaryPlan() = default;

  // -- Builders (chainable) ------------------------------------------

  /// `validators` Byzantine validators double-sign each canonical block
  /// with probability `rate` while [start, end) is open.
  AdversaryPlan& equivocate(double start, double end, int validators,
                            double rate = 1.0);

  /// `validators` Byzantine validators gossip signatures over
  /// fabricated future-height headers with probability `rate`.
  AdversaryPlan& fork_sign(double start, double end, int validators,
                           double rate = 1.0);

  /// A clique of `members` validators co-signs forged headers and
  /// pushes them at the counterparty light client, once per
  /// counterparty block with probability `rate`.
  AdversaryPlan& collude(double start, double end, int members, double rate = 1.0);

  /// A griefing relayer restarts any in-flight light-client update it
  /// observes (resets accumulated signature verification).
  AdversaryPlan& update_clobber(double start, double end);

  /// A griefing relayer front-runs packet delivery to the guest and
  /// withholds the acknowledgement for `delay_s` seconds.
  AdversaryPlan& ack_withhold(double start, double end, double delay_s);

  /// A griefing relayer replays already-delivered packets with
  /// probability `rate` per poll tick (burning fees, testing replay
  /// protection).
  AdversaryPlan& stale_replay(double start, double end, double rate);

  /// Sustained host fee-market pressure: fee multiplier + inclusion
  /// squeeze (compiled into the host FaultPlan) and spam transactions
  /// every `interval_s` seconds.
  AdversaryPlan& fee_spam(double start, double end, double fee_multiplier,
                          double inclusion_factor, double interval_s = 30.0);

  AdversaryPlan& clear();

  // -- Introspection -------------------------------------------------

  [[nodiscard]] bool empty() const noexcept { return windows_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return windows_.size(); }
  [[nodiscard]] const std::vector<AdversaryWindow>& windows() const noexcept {
    return windows_;
  }

  /// Max Byzantine validator count over equivocate/fork-sign windows.
  [[nodiscard]] int byzantine_validators() const noexcept;
  /// Max clique size over collusion windows.
  [[nodiscard]] int clique_size() const noexcept;

  [[nodiscard]] bool has_byzantine() const noexcept;
  [[nodiscard]] bool has_collusion() const noexcept;
  [[nodiscard]] bool has_griefing() const noexcept;
  [[nodiscard]] bool has_fee_attack() const noexcept;

  // -- Event-time queries (agents call these, like Chain asks FaultPlan)

  /// Max rate over active windows of `kind` at time `t` (0 if none).
  [[nodiscard]] double rate_at(AdversaryKind kind, double t) const noexcept;
  [[nodiscard]] double equivocation_rate(double t) const noexcept {
    return rate_at(AdversaryKind::kEquivocate, t);
  }
  [[nodiscard]] double fork_sign_rate(double t) const noexcept {
    return rate_at(AdversaryKind::kForkSign, t);
  }
  [[nodiscard]] double collusion_rate(double t) const noexcept {
    return rate_at(AdversaryKind::kCollude, t);
  }
  [[nodiscard]] double stale_replay_rate(double t) const noexcept {
    return rate_at(AdversaryKind::kStaleReplay, t);
  }
  [[nodiscard]] bool clobber_active(double t) const noexcept;
  /// Withhold delay if an ack-withhold window is open at `t`.
  [[nodiscard]] std::optional<double> ack_withhold_delay(double t) const noexcept;
  /// The open fee-spam window at `t`, if any (first match wins).
  [[nodiscard]] const AdversaryWindow* fee_spam_window(double t) const noexcept;
  /// Earliest window start strictly after `t` for `kind` (idle agents
  /// sleep until then instead of polling).
  [[nodiscard]] std::optional<double> next_window_start(AdversaryKind kind,
                                                        double t) const noexcept;

  /// Compiles the host-side market effects of fee-spam windows into a
  /// FaultPlan (fee-spike + congestion windows).  The adversary layer
  /// reuses the PR 3 fault machinery for everything that is a property
  /// of the chain rather than of an agent.
  void compile_host_faults(host::FaultPlan& plan) const;

 private:
  std::vector<AdversaryWindow> windows_;
};

}  // namespace bmg::adversary
