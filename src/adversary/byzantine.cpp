#include "adversary/byzantine.hpp"

#include "guest/block.hpp"
#include "ibc/commitment.hpp"
#include "ibc/transfer.hpp"
#include "trie/trie.hpp"

namespace bmg::adversary {

namespace {
constexpr std::uint64_t kByzantineStream = 0xB12A'917E'5A17ull;
constexpr std::uint64_t kCliqueStream = 0xC011'0DE5'7A4Eull;
}  // namespace

// --- ByzantineValidatorAgent ----------------------------------------------

ByzantineValidatorAgent::ByzantineValidatorAgent(
    sim::Simulation& sim, host::Chain& host, guest::GuestContract& contract,
    relayer::GossipBus& bus, crypto::PrivateKey key, const AdversaryPlan& plan,
    AdversaryCounters& counters, std::size_t index, std::uint64_t seed)
    : sim_(sim),
      host_(host),
      contract_(contract),
      bus_(bus),
      key_(std::move(key)),
      pubkey_(key_.public_key()),
      plan_(plan),
      counters_(counters),
      index_(index),
      rng_(seed ^ kByzantineStream ^ (0x9E37'79B9'7F4A'7C15ull * (index + 1))),
      timer_owner_(sim.register_agent()),
      name_("byzantine-validator-" + std::to_string(index)) {}

void ByzantineValidatorAgent::start() {
  host_.subscribe(guest::kProgramName, [this](const host::Event& ev) {
    if (!running_) return;
    if (ev.name != guest::GuestContract::kEvNewBlock) return;
    Decoder d(ev.data);
    const ibc::Height height = d.u64();
    // Slight per-agent skew so gossip from different Byzantine
    // validators interleaves deterministically but not simultaneously.
    sim_.after_cancellable(
        0.9 + 0.05 * static_cast<double>(index_),
        [this, height] {
          if (running_) act(height);
        },
        timer_owner_);
  });
}

void ByzantineValidatorAgent::crash() {
  if (!running_) return;
  running_ = false;
  sim_.cancel_agent(timer_owner_);
}

void ByzantineValidatorAgent::restart() { running_ = true; }

void ByzantineValidatorAgent::act(ibc::Height height) {
  if (height >= contract_.block_count()) return;
  const double t = sim_.now();
  const guest::GuestBlock& canonical = contract_.block_at(height);

  const double eq_rate = plan_.equivocation_rate(t);
  if (eq_rate > 0.0 && rng_.chance(eq_rate)) {
    // Class 1: the honest signature over the canonical block plus a
    // signature over a forged sibling at the same height.
    bus_.publish(relayer::SignatureGossip{pubkey_, canonical.header,
                                          key_.sign(canonical.hash().view())});
    ibc::QuorumHeader forged = canonical.header;
    forged.state_root.bytes[31] ^= 0xFF;
    bus_.publish(relayer::SignatureGossip{pubkey_, forged,
                                          key_.sign(forged.signing_digest().view())});
    ++counters_.equivocations;
  }

  const double fork_rate = plan_.fork_sign_rate(t);
  if (fork_rate > 0.0 && rng_.chance(fork_rate)) {
    // Class 2: a fabricated header far past the head — the shape a
    // validator-set-change fork takes from a light client's viewpoint.
    Hash32 fake_root = canonical.header.state_root;
    fake_root.bytes[0] ^= 0xA5;
    const guest::GuestBlock fork = guest::GuestBlock::make(
        canonical.header.chain_id, contract_.block_count() + 64, t, fake_root,
        canonical.hash(), canonical.host_height, contract_.epoch_validators());
    bus_.publish(relayer::SignatureGossip{
        pubkey_, fork.header, key_.sign(fork.header.signing_digest().view())});
    ++counters_.fork_signs;
  }
}

// --- CollusionClique ------------------------------------------------------

CollusionClique::CollusionClique(sim::Simulation& sim,
                                 counterparty::CounterpartyChain& cp,
                                 guest::GuestContract& contract,
                                 relayer::GossipBus& bus,
                                 std::vector<crypto::PrivateKey> keys,
                                 ibc::ClientId guest_client_on_cp,
                                 ibc::ChannelId guest_channel, ibc::ChannelId cp_channel,
                                 const AdversaryPlan& plan, AdversaryCounters& counters,
                                 std::uint64_t seed)
    : sim_(sim),
      cp_(cp),
      contract_(contract),
      bus_(bus),
      keys_(std::move(keys)),
      client_(std::move(guest_client_on_cp)),
      guest_channel_(std::move(guest_channel)),
      cp_channel_(std::move(cp_channel)),
      plan_(plan),
      counters_(counters),
      rng_(seed ^ kCliqueStream),
      timer_owner_(sim.register_agent()) {}

void CollusionClique::start() {
  cp_.on_new_block([this](ibc::Height) {
    if (!running_) return;
    const double rate = plan_.collusion_rate(sim_.now());
    if (rate <= 0.0 || !rng_.chance(rate)) return;
    sim_.after_cancellable(
        0.4,
        [this] {
          if (running_) attack();
        },
        timer_owner_);
  });
}

void CollusionClique::crash() {
  if (!running_) return;
  running_ = false;
  sim_.cancel_agent(timer_owner_);
}

void CollusionClique::restart() { running_ = true; }

std::uint64_t CollusionClique::clique_stake() const {
  std::uint64_t stake = 0;
  for (const auto& k : keys_) stake += contract_.stake_of(k.public_key());
  return stake;
}

void CollusionClique::attack() {
  // The clique fabricates a guest block at a far-future height (the
  // light client only demands strict height monotonicity) whose state
  // root commits an attacker-built trie containing a forged packet
  // commitment: a "transfer" the guest chain never escrowed.
  const guest::GuestBlock& head = contract_.head();
  const ibc::Height target = head.header.height + 1000 + pushes_;
  ++pushes_;

  const std::uint64_t seq = forged_seq_++;
  ibc::Packet forged;
  forged.sequence = seq;
  forged.source_port = "transfer";
  forged.source_channel = guest_channel_;
  forged.dest_port = "transfer";
  forged.dest_channel = cp_channel_;
  forged.data = ibc::TokenPacketData{"SOL", 1'000'000, "clique", "mallory"}.encode();
  forged.timeout_height = 0;
  forged.timeout_timestamp = cp_.now() + 7200.0;

  trie::SealableTrie forged_state;
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketCommitment, forged.source_port,
                                   forged.source_channel, seq);
  forged_state.set(key, forged.commitment());

  // The forged header claims the *current* epoch set (the hash the
  // client checks) — the attack is about stake weight, not set forgery.
  const guest::GuestBlock fork = guest::GuestBlock::make(
      head.header.chain_id, target, sim_.now(), forged_state.root_hash(), head.hash(),
      head.host_height, contract_.epoch_validators());

  ibc::SignedQuorumHeader sh;
  sh.header = fork.header;
  const Hash32 digest = sh.header.signing_digest();
  for (const auto& k : keys_) {
    const crypto::Signature sig = k.sign(digest.view());
    sh.signatures.emplace_back(k.public_key(), sig);
    // Every co-signature is gossiped misbehaviour (class 2: height far
    // beyond the canonical head) — the fisherman prosecutes each
    // member independently.
    bus_.publish(relayer::SignatureGossip{k.public_key(), sh.header, sig});
  }
  ++counters_.collusion_headers;

  try {
    cp_.ibc().update_client(client_, sh.encode());
  } catch (const std::exception&) {
    // Below quorum this is the guaranteed outcome: "insufficient
    // signing stake".  The push costs the clique its stake (evidence
    // is already on the gossip bus) and gains nothing.
    ++counters_.fork_pushes_rejected;
    return;
  }
  ++counters_.fork_pushes_accepted;

  // Quorum reached: the client now trusts the forged root, so a proof
  // from the attacker trie mints an unbacked voucher on the
  // counterparty.  The InvariantAuditor's conservation check is the
  // component that must catch this.
  try {
    cp_.ibc().recv_packet(forged, target, forged_state.prove(key), cp_.height(),
                          cp_.now());
    ++counters_.forged_packet_mints;
  } catch (const std::exception&) {
    // Channel not open (no handshake yet) or double delivery — the
    // safety breach is the accepted header either way.
  }
}

}  // namespace bmg::adversary
