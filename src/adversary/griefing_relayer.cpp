#include "adversary/griefing_relayer.hpp"

#include <algorithm>

#include "guest/instructions.hpp"
#include "ibc/commitment.hpp"
#include "trie/node.hpp"
#include "trie/trie.hpp"

namespace bmg::adversary {

namespace {
constexpr std::uint64_t kGrieferStream = 0x6121'EF3A'11B2ull;
constexpr std::size_t kReplayAmmo = 8;

std::uint64_t mix_payer(std::uint64_t seed, const crypto::PublicKey& key) {
  std::uint64_t h = seed ^ kGrieferStream;
  for (unsigned char b : key.raw()) h = (h ^ b) * 0x1000'0000'01B3ull;
  return h;
}
}  // namespace

GriefingRelayerAgent::GriefingRelayerAgent(
    sim::Simulation& sim, host::Chain& host, guest::GuestContract& contract,
    counterparty::CounterpartyChain& cp, ibc::ClientId guest_client_on_cp,
    crypto::PublicKey payer, const AdversaryPlan& plan, AdversaryCounters& counters,
    std::uint64_t seed, GrieferConfig cfg)
    : sim_(sim),
      host_(host),
      contract_(contract),
      cp_(cp),
      client_(std::move(guest_client_on_cp)),
      payer_(std::move(payer)),
      plan_(plan),
      counters_(counters),
      cfg_(std::move(cfg)),
      rng_(mix_payer(seed, payer_)),
      pipeline_(sim, host, Rng(mix_payer(seed, payer_) ^ 0xA1B2ull), cfg_.pipeline),
      timer_owner_(sim.register_agent()) {}

void GriefingRelayerAgent::start() { schedule_poll(); }

void GriefingRelayerAgent::schedule_poll() {
  sim_.after_cancellable(
      cfg_.poll_s,
      [this] {
        if (!running_) return;
        poll();
        schedule_poll();
      },
      timer_owner_);
}

void GriefingRelayerAgent::crash() {
  if (!running_) return;
  running_ = false;
  sim_.cancel_agent(timer_owner_);
  pipeline_.reset();
  clobber_in_flight_ = false;
  handled_.clear();
  in_flight_.clear();
  withheld_.clear();
  withheld_pending_requeue_.clear();
  delivered_.clear();
  next_buffer_ = 1;
}

void GriefingRelayerAgent::restart() {
  if (running_) return;
  running_ = true;
  // Durable state is on-chain.  Staged buffers fix the next usable
  // buffer id; a packet received on the guest whose commitment is
  // still pending on the counterparty is a withheld ack we (or a
  // crashed honest relayer) owe — re-derive and release promptly.
  for (const std::uint64_t id : contract_.staging_buffers_of(payer_))
    next_buffer_ = std::max(next_buffer_, id + 1);
  for (const auto& [port, chan] : cp_.ibc().channels()) {
    for (const std::uint64_t seq : cp_.ibc().pending_send_sequences(port, chan)) {
      const ibc::Packet* p = cp_.ibc().sent_packet(port, chan, seq);
      if (p == nullptr) continue;
      if (!contract_.ibc().packet_received(p->dest_port, p->dest_channel, seq))
        continue;
      handled_.insert(seq);
      withheld_.push_back(Withheld{*p, sim_.now()});
    }
  }
  schedule_poll();
}

void GriefingRelayerAgent::poll() {
  const double t = sim_.now();
  try_clobber(t);
  if (const auto delay = plan_.ack_withhold_delay(t)) scan_front_run_targets(t, *delay);
  release_due_acks(t);
  try_stale_replay(t);
}

void GriefingRelayerAgent::try_clobber(double t) {
  if (!plan_.clobber_active(t)) return;
  if (clobber_in_flight_) return;
  const auto pending = contract_.pending_update_info();
  if (!pending || pending->verified_power == 0) return;
  if (pending->height == last_clobbered_) return;
  const ibc::Height target = pending->height;

  // Rebuild the honest relayer's begin payload for the same header and
  // submit a fresh begin_client_update: the contract's single pending
  // slot is overwritten and every already-verified signature is
  // discarded.  One shot per height — the point is griefing, not a
  // permanent wedge (the honest rebuild budget must win in the end).
  const ibc::SignedQuorumHeader& sh = cp_.header_at(target);
  Encoder payload(4 + sh.header.byte_size() + 1 +
                  (sh.next_validators ? 4 + sh.next_validators->byte_size() : 0));
  payload.u32(static_cast<std::uint32_t>(sh.header.byte_size()));
  sh.header.encode_into(payload);
  payload.boolean(sh.next_validators.has_value());
  if (sh.next_validators) {
    payload.u32(static_cast<std::uint32_t>(sh.next_validators->byte_size()));
    sh.next_validators->encode_into(payload);
  }

  const std::uint64_t buffer_id = next_buffer_++;
  std::vector<host::Transaction> txs;
  std::uint32_t offset = 0;
  for (const Bytes& chunk : guest::ix::chunk_payload(payload.out(), cfg_.host_max_tx_size)) {
    host::Transaction tx;
    tx.payer = payer_;
    tx.fee = cfg_.fee;
    tx.label = "griefer:clobber:chunk";
    tx.instructions.push_back(guest::ix::chunk_upload(buffer_id, offset, chunk));
    offset += static_cast<std::uint32_t>(chunk.size());
    txs.push_back(std::move(tx));
  }
  host::Transaction fin;
  fin.payer = payer_;
  fin.fee = cfg_.fee;
  fin.label = "griefer:clobber";
  fin.instructions.push_back(guest::ix::begin_client_update(buffer_id));
  txs.push_back(std::move(fin));

  clobber_in_flight_ = true;
  pipeline_.submit_sequence(
      std::move(txs),
      [this, target](const relayer::SequenceOutcome& out) {
        clobber_in_flight_ = false;
        if (out.ok) {
          ++counters_.updates_clobbered;
          last_clobbered_ = target;
        }
      },
      "griefer-clobber");
}

void GriefingRelayerAgent::scan_front_run_targets(double /*t*/, double delay_s) {
  const ibc::Height gh = contract_.counterparty_client().latest_height();
  if (gh == 0) return;
  for (const auto& [port, chan] : cp_.ibc().channels()) {
    if (port != "transfer") continue;
    for (const std::uint64_t seq : cp_.ibc().pending_send_sequences(port, chan)) {
      if (handled_.count(seq) > 0) continue;
      const ibc::Packet* p = cp_.ibc().sent_packet(port, chan, seq);
      if (p == nullptr) {
        handled_.insert(seq);
        continue;
      }
      if (contract_.ibc().packet_received(p->dest_port, p->dest_channel, seq)) {
        handled_.insert(seq);
        continue;
      }
      // Deliverable only once the guest's counterparty client has
      // caught up past the commitment.
      const auto key =
          ibc::packet_key(ibc::KeyKind::kPacketCommitment, port, chan, seq);
      bool provable = false;
      try {
        const trie::Proof proof = cp_.prove_at(gh, key);
        provable = trie::verify_proof(cp_.header_at(gh).header.state_root, key,
                                      proof).kind == trie::VerifyOutcome::Kind::kFound;
      } catch (const std::exception&) {
      }
      if (!provable) continue;
      handled_.insert(seq);
      front_run(*p, delay_s);
    }
  }
}

void GriefingRelayerAgent::front_run(const ibc::Packet& packet, double delay_s) {
  const ibc::Height gh = contract_.counterparty_client().latest_height();
  const std::uint64_t seq = packet.sequence;
  in_flight_.insert(seq);
  submit_recv_sequence(packet, gh, "griefer:recv", [this, packet, seq, delay_s](bool ok) {
    in_flight_.erase(seq);
    if (ok) {
      // We are the delivering relayer now.  The honest relayer sees
      // packet_received and drops its ack duty — so nobody relays the
      // ack until we decide to.
      ++counters_.front_runs;
      ++counters_.acks_withheld;
      withheld_.push_back(Withheld{packet, sim_.now() + delay_s});
      delivered_.push_back(packet);
      while (delivered_.size() > kReplayAmmo) delivered_.pop_front();
    } else if (contract_.ibc().packet_received(packet.dest_port, packet.dest_channel,
                                               seq)) {
      // Lost the race — the honest relayer delivered and owns the ack.
      delivered_.push_back(packet);
      while (delivered_.size() > kReplayAmmo) delivered_.pop_front();
    } else {
      handled_.erase(seq);  // neither of us landed it; retry next poll
    }
  });
}

void GriefingRelayerAgent::release_due_acks(double t) {
  std::deque<Withheld> keep;
  for (auto& w : withheld_) {
    if (w.release_at > t)
      keep.push_back(w);
    else
      release_ack(w);
  }
  // release_ack() may have re-queued entries; merge.
  for (auto& w : withheld_pending_requeue_) keep.push_back(w);
  withheld_pending_requeue_.clear();
  withheld_ = std::move(keep);
}

void GriefingRelayerAgent::release_ack(const Withheld& w) {
  const ibc::Packet& p = w.packet;
  if (!cp_.ibc().packet_pending(p.source_port, p.source_channel, p.sequence))
    return;  // acked or timed out through some other path
  const ibc::Height gh = contract_.last_finalised_height();
  if (gh == 0) {
    withheld_pending_requeue_.push_back(
        Withheld{p, sim_.now() + cfg_.poll_s});
    return;
  }
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketAck, p.dest_port,
                                   p.dest_channel, p.sequence);
  bool provable = false;
  trie::Proof proof;
  try {
    proof = contract_.prove_at(gh, key);
    provable = trie::verify_proof(contract_.block_at(gh).header.state_root, key,
                                  proof).kind == trie::VerifyOutcome::Kind::kFound;
  } catch (const std::exception&) {
  }
  const auto ack = contract_.ack_log(p.dest_port, p.dest_channel, p.sequence);
  if (!provable || !ack) {
    withheld_pending_requeue_.push_back(Withheld{p, sim_.now() + cfg_.poll_s});
    return;
  }
  // The counterparty's guest client may not know this height yet (the
  // honest relayer only pushes headers it has relay duty for).
  try {
    cp_.ibc().update_client(client_, contract_.block_at(gh).to_signed_header().encode());
  } catch (const std::exception&) {
    // Stale or duplicate update — fine as long as consensus exists.
  }
  try {
    cp_.ibc().acknowledge_packet(p, *ack, gh, proof);
    ++counters_.acks_released;
  } catch (const std::exception&) {
    withheld_pending_requeue_.push_back(Withheld{p, sim_.now() + 2.0 * cfg_.poll_s});
  }
}

void GriefingRelayerAgent::try_stale_replay(double t) {
  const double rate = plan_.stale_replay_rate(t);
  if (rate <= 0.0 || delivered_.empty()) return;
  if (!rng_.chance(rate)) return;
  const ibc::Packet p =
      delivered_[static_cast<std::size_t>(rng_.uniform_int(delivered_.size()))];
  const ibc::Height gh = contract_.counterparty_client().latest_height();
  if (gh == 0) return;
  // Replay protection rejects the final instruction on-chain; the
  // chunk uploads still land and burn blockspace + fees, which is the
  // entire point of the attack.
  ++counters_.stale_replays;
  submit_recv_sequence(p, gh, "griefer:replay", [](bool) {});
}

void GriefingRelayerAgent::submit_recv_sequence(const ibc::Packet& packet,
                                                ibc::Height proof_height,
                                                const std::string& label,
                                                std::function<void(bool)> done) {
  const auto key = ibc::packet_key(ibc::KeyKind::kPacketCommitment, packet.source_port,
                                   packet.source_channel, packet.sequence);
  trie::Proof proof;
  try {
    proof = cp_.prove_at(proof_height, key);
  } catch (const std::exception&) {
    if (done) done(false);
    return;
  }
  Encoder payload(4 + packet.wire_size() + 8 + 4 + proof.byte_size());
  payload.u32(static_cast<std::uint32_t>(packet.wire_size()));
  packet.encode_into(payload);
  payload.u64(proof_height);
  payload.u32(static_cast<std::uint32_t>(proof.byte_size()));
  proof.serialize_into(payload);

  const std::uint64_t buffer_id = next_buffer_++;
  std::vector<host::Transaction> txs;
  std::uint32_t offset = 0;
  for (const Bytes& chunk : guest::ix::chunk_payload(payload.out(), cfg_.host_max_tx_size)) {
    host::Transaction tx;
    tx.payer = payer_;
    tx.fee = cfg_.fee;
    tx.label = label + ":chunk";
    tx.instructions.push_back(guest::ix::chunk_upload(buffer_id, offset, chunk));
    offset += static_cast<std::uint32_t>(chunk.size());
    txs.push_back(std::move(tx));
  }
  host::Transaction fin;
  fin.payer = payer_;
  fin.fee = cfg_.fee;
  fin.label = label;
  fin.instructions.push_back(guest::ix::receive_packet(buffer_id));
  txs.push_back(std::move(fin));

  pipeline_.submit_sequence(
      std::move(txs),
      [done = std::move(done)](const relayer::SequenceOutcome& out) {
        if (done) done(out.ok);
      },
      label);
}

}  // namespace bmg::adversary
