// Host fee-market attacker.
//
// Sustains priority-fee pressure on the host chain so every honest
// submitter's TxPipeline is forced up its escalation ladder
// (base → priority → bundle).  The market-wide effects — spiked fee
// floor, squeezed base-fee inclusion — are chain properties and are
// compiled from the AdversaryPlan into the host FaultPlan
// (AdversaryPlan::compile_host_faults); this agent contributes the
// attacker's own side of the ledger: a stream of bundle-tipped spam
// transactions whose fees are measurable via Chain::payer_stats, so
// the campaign can report attack cost against damage done.
#pragma once

#include <string>

#include "adversary/plan.hpp"
#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler.hpp"

namespace bmg::adversary {

class FeeAttackerAgent final : public sim::CrashableAgent {
 public:
  FeeAttackerAgent(sim::Simulation& sim, host::Chain& host, crypto::PublicKey payer,
                   const AdversaryPlan& plan, AdversaryCounters& counters);

  void start();

  // --- sim::CrashableAgent ----------------------------------------------
  [[nodiscard]] const std::string& agent_name() const override { return name_; }
  [[nodiscard]] bool running() const override { return running_; }
  void crash() override;
  void restart() override;

  [[nodiscard]] const crypto::PublicKey& payer() const noexcept { return payer_; }

 private:
  void tick();
  void schedule_next();

  sim::Simulation& sim_;
  host::Chain& host_;
  crypto::PublicKey payer_;
  const AdversaryPlan& plan_;
  AdversaryCounters& counters_;
  sim::Simulation::AgentId timer_owner_;
  std::string name_ = "fee-attacker";
  bool running_ = true;
};

}  // namespace bmg::adversary
