#include "adversary/fee_attacker.hpp"

#include "guest/instructions.hpp"
#include "host/constants.hpp"

namespace bmg::adversary {

FeeAttackerAgent::FeeAttackerAgent(sim::Simulation& sim, host::Chain& host,
                                   crypto::PublicKey payer, const AdversaryPlan& plan,
                                   AdversaryCounters& counters)
    : sim_(sim),
      host_(host),
      payer_(std::move(payer)),
      plan_(plan),
      counters_(counters),
      timer_owner_(sim.register_agent()) {}

void FeeAttackerAgent::start() { schedule_next(); }

void FeeAttackerAgent::crash() {
  if (!running_) return;
  running_ = false;
  sim_.cancel_agent(timer_owner_);
}

void FeeAttackerAgent::restart() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void FeeAttackerAgent::schedule_next() {
  const double t = sim_.now();
  double delay;
  if (const AdversaryWindow* w = plan_.fee_spam_window(t)) {
    delay = w->interval_s;
  } else if (const auto next = plan_.next_window_start(AdversaryKind::kFeeSpam, t)) {
    delay = *next - t;
  } else {
    return;  // no further fee-spam windows: the agent goes quiet
  }
  sim_.after_cancellable(
      delay,
      [this] {
        if (!running_) return;
        tick();
        schedule_next();
      },
      timer_owner_);
}

void FeeAttackerAgent::tick() {
  const AdversaryWindow* w = plan_.fee_spam_window(sim_.now());
  if (w == nullptr) return;
  // A bundle-tipped no-op burns top-of-block priority the honest
  // pipelines would otherwise win cheaply.  The instruction fails on
  // execution (nothing staked to withdraw) — attacker spend with no
  // state effect, sized by the window's fee multiplier.
  host::Transaction tx;
  tx.payer = payer_;
  tx.label = "fee-attacker:spam";
  tx.fee = host::FeePolicy::bundle(
      host::usd_to_lamports(0.005 * w->fee_multiplier));
  tx.instructions.push_back(guest::ix::withdraw_stake());
  host_.submit(std::move(tx));
  ++counters_.spam_txs;
}

}  // namespace bmg::adversary
