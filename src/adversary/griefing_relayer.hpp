// A griefing relayer: permissionless like any relayer, funded like a
// serious one, and hostile.
//
// IBC's any-party-can-relay guarantee cuts both ways — a relayer needs
// no permission to deliver packets, so it needs none to interfere.
// The griefer mounts three attacks from the paper's relayer threat
// surface, each gated by an AdversaryPlan window:
//
//  * update clobber — the Guest Contract holds a single pending
//    light-client-update slot, and `begin_client_update` overwrites
//    it.  The griefer watches for a half-verified update and restarts
//    it at the same height, discarding the honest relayer's already
//    paid-for signature verifications (latency + fee griefing; the
//    honest pipeline's rebuild budget recovers).
//
//  * front-run + ack withhold — the griefer races the honest relayer's
//    base-fee delivery with bundle-fee transactions.  Winning makes it
//    the delivering relayer, and the honest relayer (seeing
//    packet_received) drops its own ack duty — so the griefer simply
//    sits on the acknowledgement until the window's delay elapses,
//    keeping the sender's commitment (and escrow) pinned near the
//    timeout.
//
//  * stale replay — re-delivers packets the guest already received;
//    replay protection rejects them, but the chunk uploads land and
//    burn fees/blockspace.
//
// All on-host actions ride a private TxPipeline with bundle fees (the
// griefer pays to win races).  The agent is a CrashableAgent whose
// restart() re-derives withheld acks from pure on-chain state:
// a packet received on the guest whose commitment is still pending on
// the counterparty is an ack someone is sitting on.
#pragma once

#include <deque>
#include <set>
#include <string>
#include <vector>

#include "adversary/plan.hpp"
#include "common/rng.hpp"
#include "counterparty/chain.hpp"
#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "relayer/tx_pipeline.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler.hpp"

namespace bmg::adversary {

struct GrieferConfig {
  double poll_s = 1.0;
  /// Bundle tip per transaction — the griefer buys inclusion priority.
  host::FeePolicy fee = host::FeePolicy::bundle(host::usd_to_lamports(0.01));
  std::size_t host_max_tx_size = host::kMaxTransactionSize;
  relayer::PipelineConfig pipeline;
};

class GriefingRelayerAgent final : public sim::CrashableAgent {
 public:
  GriefingRelayerAgent(sim::Simulation& sim, host::Chain& host,
                       guest::GuestContract& contract,
                       counterparty::CounterpartyChain& cp,
                       ibc::ClientId guest_client_on_cp, crypto::PublicKey payer,
                       const AdversaryPlan& plan, AdversaryCounters& counters,
                       std::uint64_t seed, GrieferConfig cfg = {});

  void start();

  // --- sim::CrashableAgent ----------------------------------------------
  [[nodiscard]] const std::string& agent_name() const override { return name_; }
  [[nodiscard]] bool running() const override { return running_; }
  void crash() override;
  void restart() override;

  [[nodiscard]] const relayer::TxPipeline& pipeline() const { return pipeline_; }
  [[nodiscard]] const crypto::PublicKey& payer() const noexcept { return payer_; }

 private:
  struct Withheld {
    ibc::Packet packet;
    double release_at = 0;
  };

  void schedule_poll();
  void poll();
  void try_clobber(double t);
  void scan_front_run_targets(double t, double delay_s);
  void front_run(const ibc::Packet& packet, double delay_s);
  void release_due_acks(double t);
  void release_ack(const Withheld& w);
  void try_stale_replay(double t);
  void submit_recv_sequence(const ibc::Packet& packet, ibc::Height proof_height,
                            const std::string& label,
                            std::function<void(bool)> done);

  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  counterparty::CounterpartyChain& cp_;
  ibc::ClientId client_;
  crypto::PublicKey payer_;
  const AdversaryPlan& plan_;
  AdversaryCounters& counters_;
  GrieferConfig cfg_;
  Rng rng_;
  relayer::TxPipeline pipeline_;
  sim::Simulation::AgentId timer_owner_;
  std::string name_ = "griefing-relayer";
  bool running_ = true;

  std::uint64_t next_buffer_ = 1;
  bool clobber_in_flight_ = false;
  /// Last height whose pending update we clobbered (one shot each).
  ibc::Height last_clobbered_ = 0;
  /// Sequences we already acted on (ephemeral; rebuilt on restart).
  std::set<std::uint64_t> handled_;
  /// Sequences with a recv race in flight.
  std::set<std::uint64_t> in_flight_;
  std::deque<Withheld> withheld_;
  /// Entries release_ack() pushed back for a later retry; merged into
  /// withheld_ at the end of each release sweep.
  std::deque<Withheld> withheld_pending_requeue_;
  /// Packets we know were delivered (replay ammunition), newest last.
  std::deque<ibc::Packet> delivered_;
};

}  // namespace bmg::adversary
