// The shipped adversary campaign scenarios.
//
// One spec per threat from the taxonomy (DESIGN §13): each scenario
// holds ONE kind of attacker at sub-quorum stake, plus a combined
// scenario and a crash-composition scenario (the fisherman is killed
// mid-prosecution — the PR 5 crash machinery composing with the
// adversary layer).  Every shipped scenario must satisfy the standing
// acceptance bar: the InvariantAuditor never trips, every offender is
// detected and slashed, and delivery reaches 100% within the liveness
// budget.  At-quorum collusion — where that bar provably CANNOT hold —
// lives only in tests (adversary_campaign_test.cpp), which document the
// safety-loss signature instead.
#pragma once

#include <string>
#include <vector>

#include "adversary/plan.hpp"

namespace bmg::adversary {

struct ScenarioSpec {
  std::string name;
  AdversaryPlan plan;
  /// Compose a fisherman crash window over the middle of the attack
  /// (drivers translate this into a host FaultPlan crash window before
  /// Campaign::start()).
  bool crash_fisherman = false;
};

/// The shipped campaign grid.  Attack windows span [attack_start,
/// attack_end); drivers leave room after attack_end for the system to
/// drain (detection, prosecution and delivery complete after the
/// attack stops).
[[nodiscard]] std::vector<ScenarioSpec> campaign_scenarios(double attack_start,
                                                           double attack_end);

/// Looks up a shipped scenario by name; null if unknown.
[[nodiscard]] const ScenarioSpec* find_scenario(const std::vector<ScenarioSpec>& all,
                                                const std::string& name);

}  // namespace bmg::adversary
