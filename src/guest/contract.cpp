#include "guest/contract.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace bmg::guest {

namespace {
/// Coarse compute-unit charges for in-contract work (trie updates are
/// sequences of metered sha256 syscalls on the real deployment).
constexpr std::uint64_t kCuBlockOps = 30'000;
constexpr std::uint64_t kCuSignOps = 25'000;
constexpr std::uint64_t kCuSendPacket = 60'000;
constexpr std::uint64_t kCuRecvBase = 90'000;
constexpr std::uint64_t kCuStakeOps = 15'000;
}  // namespace

GuestContract::GuestContract(GuestConfig cfg,
                             std::vector<ibc::ValidatorInfo> genesis_validators,
                             ibc::ValidatorSet counterparty_validators)
    : cfg_(std::move(cfg)),
      module_(store_, cfg_.ack_seal_lag),
      transfer_(module_, bank_, "transfer"),
      genesis_validators_(std::move(genesis_validators)),
      genesis_counterparty_validators_(std::move(counterparty_validators)),
      treasury_(crypto::PrivateKey::from_label(cfg_.chain_id + ":treasury").public_key()),
      vault_(crypto::PrivateKey::from_label(cfg_.chain_id + ":stake-vault").public_key()),
      burn_(crypto::PrivateKey::from_label(cfg_.chain_id + ":burn").public_key()) {
  init_genesis();
}

void GuestContract::init_genesis() {
  // Light client of the counterparty, embedded in the contract.  A
  // copy of the genesis validator set goes in so a later fork reset
  // can rebuild an identical client.
  auto client = std::make_unique<ibc::QuorumLightClient>(
      cfg_.counterparty_chain_id, genesis_counterparty_validators_);
  counterparty_client_ = client.get();
  counterparty_client_id_ = module_.add_client(std::move(client));
  module_.set_self_identity(cfg_.chain_id, [this] { return epoch_->hash(); });

  // Genesis validators are pre-staked candidates.
  for (const auto& v : genesis_validators_) candidates_[v.key] = Candidate{v.stake};
  epoch_ = std::make_shared<const ibc::ValidatorSet>(select_validators());
  if (epoch_->empty())
    throw std::invalid_argument("guest contract: empty genesis validator set");

  // Genesis block: height 0, finalised by construction.
  GuestBlock genesis = GuestBlock::make(cfg_.chain_id, 0, 0.0, store_.root_hash(),
                                        Hash32{}, 0, epoch_);
  genesis.finalised = true;
  blocks_.push_back(std::move(genesis));
  snapshots_[0] = store_.snapshot();
}

void GuestContract::fork_capture_baseline() {
  if (blocks_.size() != 1)
    throw std::logic_error(
        "guest: fork baseline must be captured before any block is produced");
  baseline_bank_ = bank_;
}

void GuestContract::fork_reset_to_baseline() {
  // Snapshots hold copy-on-write views into store_'s pages: drop them
  // before the trie they reference.
  snapshots_.clear();
  store_ = trie::SealableTrie();
  // module_ holds a reference to store_ and transfer_'s constructor
  // binds its port into module_, so both are reconstructed in place, in
  // that order.  Member addresses must not change — agents and the
  // deployment hold references into this contract.
  std::destroy_at(&module_);
  std::construct_at(&module_, store_, cfg_.ack_seal_lag);
  bank_ = baseline_bank_;
  std::destroy_at(&transfer_);
  std::construct_at(&transfer_, module_, bank_, ibc::PortId("transfer"));
  counterparty_client_ = nullptr;
  counterparty_client_id_ = {};
  blocks_.clear();
  pruned_below_ = 0;
  pending_packets_.clear();
  epoch_.reset();
  epoch_start_host_slot_ = 0;
  candidates_.clear();
  banned_.clear();
  withdrawals_.clear();
  pending_update_.reset();
  buffers_.clear();
  ack_log_.clear();
  fees_collected_ = 0;
  rewards_paid_ = 0;
  last_client_update_time_ = -1e18;
  terminated_ = false;
  init_genesis();
}

void GuestContract::execute(host::TxContext& ctx, ByteView instruction_data) {
  if (terminated_) throw host::TxError("guest: chain has self-destructed");
  Decoder d(instruction_data);
  const auto op = static_cast<Op>(d.u8());
  switch (op) {
    case Op::kGenerateBlock:
      return op_generate_block(ctx);
    case Op::kSign:
      return op_sign(ctx, d);
    case Op::kSendPacket:
      return op_send_packet(ctx, d);
    case Op::kSendTransfer:
      return op_send_transfer(ctx, d);
    case Op::kChunkUpload:
      return op_chunk_upload(ctx, d);
    case Op::kReceivePacket:
      return op_receive_packet(ctx, d);
    case Op::kAcknowledgePacket:
      return op_acknowledge_packet(ctx, d);
    case Op::kTimeoutPacket:
      return op_timeout_packet(ctx, d);
    case Op::kBeginClientUpdate:
      return op_begin_client_update(ctx, d);
    case Op::kVerifyUpdateSignatures:
      return op_verify_update_signatures(ctx);
    case Op::kFinishClientUpdate:
      return op_finish_client_update(ctx);
    case Op::kStake:
      return op_stake(ctx, d);
    case Op::kUnstake:
      return op_unstake(ctx, d);
    case Op::kWithdrawStake:
      return op_withdraw_stake(ctx);
    case Op::kSubmitEvidence:
      return op_submit_evidence(ctx, d);
    case Op::kHandshake:
      return op_handshake(ctx, d);
    case Op::kFreezeClient:
      return op_freeze_client(ctx, d);
    case Op::kSelfDestruct:
      return op_self_destruct(ctx);
  }
  throw host::TxError("guest: unknown instruction");
}

// --- block production ---------------------------------------------------------

ibc::ValidatorSet GuestContract::select_validators() const {
  std::vector<ibc::ValidatorInfo> sorted;
  for (const auto& [key, cand] : candidates_) {
    if (cand.stake >= cfg_.min_stake_lamports && banned_.count(key) == 0)
      sorted.push_back({key, cand.stake});
  }
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.stake != b.stake) return a.stake > b.stake;
    return a.key < b.key;
  });
  if (sorted.size() > cfg_.max_validators) sorted.resize(cfg_.max_validators);
  return ibc::ValidatorSet(std::move(sorted));
}

void GuestContract::op_generate_block(host::TxContext& ctx) {
  ctx.consume_cu(kCuBlockOps);
  GuestBlock& head_block = blocks_.back();
  if (!head_block.finalised)
    throw host::TxError("generate_block: head is not finalised");

  // Alg. 1 GenerateBlock: all trie writes since the previous block are
  // committed here, as one batched hash pass, before the state root is
  // compared and embedded in the new header.
  store_.commit();
  const bool root_changed = head_block.header.state_root != store_.root_hash();
  const bool aged = ctx.time() - head_block.header.timestamp >= cfg_.delta_seconds;
  const bool epoch_due =
      ctx.slot() - epoch_start_host_slot_ >= cfg_.epoch_length_host_slots;
  if (!root_changed && !aged && !epoch_due)
    throw host::TxError("generate_block: nothing to commit and head is fresh");

  GuestBlock block = GuestBlock::make(cfg_.chain_id, head_block.header.height + 1,
                                      ctx.time(), store_.root_hash(), head_block.hash(),
                                      ctx.slot(), epoch_);
  if (epoch_due) {
    ibc::ValidatorSet next = select_validators();
    if (!next.empty()) block.next_validators = std::move(next);
  }
  block.packets = std::move(pending_packets_);
  pending_packets_.clear();

  snapshots_[block.header.height] = store_.snapshot();
  while (snapshots_.size() > 256) snapshots_.erase(snapshots_.begin());

  // Prune old block records down to their headers: signer sets and
  // packet lists of long-finalised blocks are dead weight in the
  // contract account (§V-D).
  if (block.header.height > cfg_.block_history_window) {
    const ibc::Height limit = block.header.height - cfg_.block_history_window;
    while (pruned_below_ < limit) {
      GuestBlock& old = blocks_[pruned_below_];
      old.signers.clear();
      old.packets.clear();
      old.packets.shrink_to_fit();
      ++pruned_below_;
    }
  }

  Encoder ev(8);
  ev.u64(block.header.height);
  blocks_.push_back(std::move(block));
  ctx.emit_event(kEvNewBlock, ev.take());
}

void GuestContract::finalise_block(host::TxContext& ctx, GuestBlock& block) {
  block.finalised = true;
  if (block.next_validators) {
    epoch_ = std::make_shared<const ibc::ValidatorSet>(*block.next_validators);
    epoch_start_host_slot_ = block.host_height;
  }

  // Signing rewards (§V-C incentives): a slice of the treasury's
  // accumulated send fees goes to this block's signers, pro rata by
  // stake.  Late signatures (after quorum) earn nothing — rewarding
  // promptness, which is what block latency depends on.
  if (cfg_.signer_reward_fraction > 0) {
    const std::uint64_t pool = static_cast<std::uint64_t>(
        static_cast<double>(ctx.balance(treasury_)) * cfg_.signer_reward_fraction);
    const std::uint64_t signed_stake = block.signed_stake();
    if (pool > 0 && signed_stake > 0) {
      for (const auto& [key, sig] : block.signers) {
        const auto stake = block.signing_set->stake_of(key);
        if (!stake) continue;
        const std::uint64_t share = pool * *stake / signed_stake;
        if (share > 0) {
          ctx.transfer(treasury_, key, share);
          rewards_paid_ += share;
        }
      }
    }
  }

  Encoder ev(8);
  ev.u64(block.header.height);
  ctx.emit_event(kEvFinalisedBlock, ev.take());
}

void GuestContract::op_sign(host::TxContext& ctx, Decoder& d) {
  ctx.consume_cu(kCuSignOps);
  const std::uint64_t height = d.u64();
  const Bytes key_raw = d.raw(32);
  crypto::ed25519::PublicKeyBytes pk;
  std::copy(key_raw.begin(), key_raw.end(), pk.begin());
  const crypto::PublicKey pubkey(pk);

  if (height >= blocks_.size()) throw host::TxError("sign: invalid height");
  if (height < pruned_below_) throw host::TxError("sign: block record pruned");
  GuestBlock& block = blocks_[height];

  if (!block.signing_set->contains(pubkey))
    throw host::TxError("sign: not an active validator");
  if (banned_.count(pubkey) > 0) throw host::TxError("sign: validator banned");
  if (block.signers.count(pubkey) > 0) throw host::TxError("sign: already signed");

  // check_signature: the runtime's Ed25519 pre-compile verified the
  // transaction's signatures; find the one for this block's digest.
  const Hash32 digest = block.hash();
  const crypto::Signature* found = nullptr;
  for (const auto& sv : ctx.verified_signatures()) {
    if (sv.pubkey == pubkey && ct_equal(sv.message.view(), digest.view())) {
      found = &sv.signature;
      break;
    }
  }
  if (found == nullptr) throw host::TxError("sign: no verified signature for block");

  block.signers.emplace(pubkey, *found);
  if (!block.finalised && block.signed_stake() >= block.signing_set->quorum_stake())
    finalise_block(ctx, block);
}

// --- packet flow ----------------------------------------------------------------

void GuestContract::collect_send_fee(host::TxContext& ctx) {
  ctx.transfer_from_payer(treasury_, cfg_.send_fee_lamports);
  fees_collected_ += cfg_.send_fee_lamports;
}

void GuestContract::record_sent_packet(host::TxContext& ctx, const ibc::Packet& packet) {
  pending_packets_.push_back(packet);
  Encoder ev(8);
  ev.u64(packet.sequence);
  ctx.emit_event(kEvPacketSent, ev.take());
}

void GuestContract::op_send_packet(host::TxContext& ctx, Decoder& d) {
  ctx.consume_cu(kCuSendPacket);
  collect_send_fee(ctx);
  const ibc::PortId port = d.str();
  const ibc::ChannelId channel = d.str();
  Bytes data = d.bytes();
  const ibc::Height timeout_height = d.u64();
  const auto timeout_ts = static_cast<double>(d.u64()) / 1e6;
  try {
    const ibc::Packet packet =
        module_.send_packet(port, channel, std::move(data), timeout_height, timeout_ts);
    record_sent_packet(ctx, packet);
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  }
}

void GuestContract::op_send_transfer(host::TxContext& ctx, Decoder& d) {
  ctx.consume_cu(kCuSendPacket);
  collect_send_fee(ctx);
  const ibc::ChannelId channel = d.str();
  const std::string denom = d.str();
  const std::uint64_t amount = d.u64();
  const std::string sender = d.str();
  const std::string receiver = d.str();
  const ibc::Height timeout_height = d.u64();
  const auto timeout_ts = static_cast<double>(d.u64()) / 1e6;
  try {
    const ibc::Packet packet = transfer_.send_transfer(channel, denom, amount, sender,
                                                       receiver, timeout_height, timeout_ts);
    record_sent_packet(ctx, packet);
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  }
}

Bytes GuestContract::take_buffer(host::TxContext& ctx, std::uint64_t buffer_id) {
  const auto key = std::make_pair(ctx.payer().hex(), buffer_id);
  const auto it = buffers_.find(key);
  if (it == buffers_.end()) throw host::TxError("guest: no such staging buffer");
  Bytes data = std::move(it->second);
  buffers_.erase(it);
  return data;
}

void GuestContract::op_chunk_upload(host::TxContext& ctx, Decoder& d) {
  ctx.consume_cu(2'000);
  const std::uint64_t buffer_id = d.u64();
  const std::uint32_t offset = d.u32();
  const Bytes data = d.bytes();
  // A hostile offset must not balloon the staging buffer past what the
  // account could ever hold.
  if (offset + data.size() > host::kMaxAccountSize)
    throw host::TxError("chunk_upload: buffer exceeds account size");
  Bytes& buf = buffers_[{ctx.payer().hex(), buffer_id}];
  if (buf.size() < offset + data.size()) buf.resize(offset + data.size());
  std::copy(data.begin(), data.end(), buf.begin() + offset);
}

void GuestContract::op_receive_packet(host::TxContext& ctx, Decoder& d) {
  const Bytes blob = take_buffer(ctx, d.u64());
  Decoder b(blob);
  const ibc::Packet packet = ibc::Packet::decode(b.bytes());
  const ibc::Height proof_height = b.u64();
  const trie::Proof proof = trie::Proof::deserialize(b.bytes());
  b.expect_done();

  // Proof verification is a chain of sha256 syscalls on Solana.
  ctx.consume_cu(kCuRecvBase + 2 * static_cast<std::uint64_t>(proof.byte_size()));

  try {
    const ibc::Acknowledgement ack = module_.recv_packet(
        packet, proof_height, proof, head().header.height + 1, ctx.time());
    ack_log_[{packet.dest_port, packet.dest_channel, packet.sequence}] = ack.encode();
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  } catch (const trie::TrieError& e) {
    throw host::TxError(e.what());
  }
  Encoder ev(8);
  ev.u64(packet.sequence);
  ctx.emit_event(kEvPacketReceived, ev.take());
}

void GuestContract::op_acknowledge_packet(host::TxContext& ctx, Decoder& d) {
  const Bytes blob = take_buffer(ctx, d.u64());
  Decoder b(blob);
  const ibc::Packet packet = ibc::Packet::decode(b.bytes());
  const ibc::Acknowledgement ack = ibc::Acknowledgement::decode(b.bytes());
  const ibc::Height proof_height = b.u64();
  const trie::Proof proof = trie::Proof::deserialize(b.bytes());
  b.expect_done();
  ctx.consume_cu(kCuRecvBase + 2 * static_cast<std::uint64_t>(proof.byte_size()));
  try {
    module_.acknowledge_packet(packet, ack, proof_height, proof);
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  } catch (const trie::TrieError& e) {
    throw host::TxError(e.what());
  }
}

void GuestContract::op_timeout_packet(host::TxContext& ctx, Decoder& d) {
  const Bytes blob = take_buffer(ctx, d.u64());
  Decoder b(blob);
  const ibc::Packet packet = ibc::Packet::decode(b.bytes());
  const ibc::Height proof_height = b.u64();
  const trie::Proof proof = trie::Proof::deserialize(b.bytes());
  b.expect_done();
  ctx.consume_cu(kCuRecvBase + 2 * static_cast<std::uint64_t>(proof.byte_size()));
  try {
    module_.timeout_packet(packet, proof_height, proof);
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  } catch (const trie::TrieError& e) {
    throw host::TxError(e.what());
  }
}

// --- chunked light client updates -------------------------------------------------

void GuestContract::op_begin_client_update(host::TxContext& ctx, Decoder& d) {
  const Bytes blob = take_buffer(ctx, d.u64());
  ctx.consume_cu(10'000 + blob.size());
  Decoder b(blob);
  PendingUpdate upd;
  upd.header = ibc::QuorumHeader::decode(b.bytes());
  if (b.boolean()) upd.next_validators = ibc::ValidatorSet::decode(b.bytes());
  b.expect_done();

  if (upd.header.chain_id != cfg_.counterparty_chain_id)
    throw host::TxError("client_update: wrong chain id");
  if (upd.header.height <= counterparty_client_->latest_height())
    throw host::TxError("client_update: stale header");
  if (upd.header.validator_set_hash != counterparty_client_->validators().hash())
    throw host::TxError("client_update: unknown validator set");

  upd.digest = upd.header.signing_digest();
  pending_update_ = std::move(upd);
}

void GuestContract::op_verify_update_signatures(host::TxContext& ctx) {
  if (!pending_update_) throw host::TxError("client_update: no pending update");
  ctx.consume_cu(5'000);
  const ibc::ValidatorSet& set = counterparty_client_->validators();
  std::size_t matched = 0;
  for (const auto& sv : ctx.verified_signatures()) {
    if (!ct_equal(sv.message.view(), pending_update_->digest.view())) continue;
    const auto stake = set.stake_of(sv.pubkey);
    if (!stake) continue;
    const auto pos = std::lower_bound(pending_update_->seen.begin(),
                                      pending_update_->seen.end(), sv.pubkey);
    if (pos != pending_update_->seen.end() && *pos == sv.pubkey) continue;
    pending_update_->seen.insert(pos, sv.pubkey);
    pending_update_->verified_power += *stake;
    ++matched;
  }
  if (matched == 0)
    throw host::TxError("client_update: no applicable signatures in transaction");
}

void GuestContract::op_finish_client_update(host::TxContext& ctx) {
  if (!pending_update_) throw host::TxError("client_update: no pending update");
  ctx.consume_cu(10'000);
  // §VI-C: rate limit how fast the light client may advance, bounding
  // the damage window if the counterparty chain is compromised.
  if (cfg_.client_update_min_interval_s > 0 &&
      ctx.time() - last_client_update_time_ < cfg_.client_update_min_interval_s)
    throw host::TxError("client_update: rate limited");
  const ibc::ValidatorSet& set = counterparty_client_->validators();
  if (pending_update_->verified_power < set.quorum_stake())
    throw host::TxError("client_update: quorum not reached");
  ibc::SignedQuorumHeader sh;
  sh.header = pending_update_->header;
  sh.next_validators = pending_update_->next_validators;
  try {
    counterparty_client_->accept_verified(sh);
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  }
  module_.refresh_client_state(counterparty_client_id_);
  last_client_update_time_ = ctx.time();
  pending_update_.reset();
}

// --- staking / slashing -------------------------------------------------------------

void GuestContract::op_stake(host::TxContext& ctx, Decoder& d) {
  ctx.consume_cu(kCuStakeOps);
  const std::uint64_t lamports = d.u64();
  if (lamports == 0) throw host::TxError("stake: zero amount");
  if (banned_.count(ctx.payer()) > 0) throw host::TxError("stake: validator banned");
  ctx.transfer_from_payer(vault_, lamports);
  candidates_[ctx.payer()].stake += lamports;
}

void GuestContract::op_unstake(host::TxContext& ctx, Decoder& d) {
  ctx.consume_cu(kCuStakeOps);
  const std::uint64_t lamports = d.u64();
  auto it = candidates_.find(ctx.payer());
  if (it == candidates_.end() || it->second.stake < lamports)
    throw host::TxError("unstake: insufficient stake");
  it->second.stake -= lamports;
  if (it->second.stake == 0) candidates_.erase(it);
  withdrawals_.push_back(
      {ctx.payer(), lamports, ctx.time() + cfg_.unstake_hold_seconds});
}

void GuestContract::op_withdraw_stake(host::TxContext& ctx) {
  ctx.consume_cu(kCuStakeOps);
  std::uint64_t total = 0;
  for (auto it = withdrawals_.begin(); it != withdrawals_.end();) {
    if (it->who == ctx.payer() && it->available_at <= ctx.time()) {
      total += it->lamports;
      it = withdrawals_.erase(it);
    } else {
      ++it;
    }
  }
  if (total == 0) throw host::TxError("withdraw: nothing withdrawable yet");
  ctx.transfer(vault_, ctx.payer(), total);
}

void GuestContract::slash(host::TxContext& ctx, const crypto::PublicKey& offender) {
  const auto it = candidates_.find(offender);
  const std::uint64_t stake = it == candidates_.end() ? 0 : it->second.stake;
  if (it != candidates_.end()) candidates_.erase(it);
  banned_.insert(offender);
  // Genesis validators' stake may not be vault-backed in tests;
  // transfer what the vault actually holds.
  const std::uint64_t backed = std::min<std::uint64_t>(stake, ctx.balance(vault_));
  std::uint64_t reward = 0;
  if (backed > 0) {
    reward = static_cast<std::uint64_t>(static_cast<double>(backed) *
                                        cfg_.slash_reporter_fraction);
    if (reward > 0) ctx.transfer(vault_, ctx.payer(), reward);
    if (backed > reward) ctx.transfer(vault_, burn_, backed - reward);
  }
  // Payload: offender | slashed stake | reporter reward | burned.  The
  // trailing economics triple lets off-chain scoreboards price an
  // attack (stake destroyed vs. damage done) without replaying state.
  Encoder ev(32 + 24);
  ev.raw(offender.view());
  ev.u64(backed);
  ev.u64(reward);
  ev.u64(backed > reward ? backed - reward : 0);
  ctx.emit_event(kEvSlashed, ev.take());
}

void GuestContract::op_submit_evidence(host::TxContext& ctx, Decoder& d) {
  const Bytes blob = take_buffer(ctx, d.u64());
  ctx.consume_cu(20'000 + blob.size());
  Decoder b(blob);
  const Bytes key_raw = b.raw(32);
  crypto::ed25519::PublicKeyBytes pk;
  std::copy(key_raw.begin(), key_raw.end(), pk.begin());
  const crypto::PublicKey offender(pk);

  const std::uint8_t count = b.u8();
  if (count != 1 && count != 2) throw host::TxError("evidence: need 1 or 2 headers");
  std::vector<ibc::QuorumHeader> headers;
  for (std::uint8_t i = 0; i < count; ++i)
    headers.push_back(ibc::QuorumHeader::decode(b.bytes()));
  // Optional annex: the offender's raw signature per header.  The
  // contract itself only trusts pre-compile-verified signatures (below),
  // but the annex makes a staged evidence blob self-contained, so a
  // fisherman restarting after a crash can rebuild the sig-verify set
  // from chain state alone and finish the prosecution it already paid
  // to stage.
  if (!b.done())
    for (std::uint8_t i = 0; i < count; ++i) (void)b.raw(64);
  b.expect_done();

  // Each header must carry a pre-compile-verified signature by the
  // offender over its digest.
  for (const auto& header : headers) {
    if (header.chain_id != cfg_.chain_id)
      throw host::TxError("evidence: header from another chain");
    const Hash32 digest = header.signing_digest();
    bool found = false;
    for (const auto& sv : ctx.verified_signatures()) {
      if (sv.pubkey == offender && ct_equal(sv.message.view(), digest.view())) {
        found = true;
        break;
      }
    }
    if (!found) throw host::TxError("evidence: missing verified signature");
  }

  bool misbehaved = false;
  if (count == 2) {
    // Two different blocks signed at the same height (§III-C case 1).
    misbehaved = headers[0].height == headers[1].height &&
                 headers[0].signing_digest() != headers[1].signing_digest();
  } else {
    const ibc::QuorumHeader& h = headers[0];
    if (h.height >= blocks_.size()) {
      // Signed a block beyond the chain head (case 2).
      misbehaved = true;
    } else {
      // Signed a block that differs from the canonical one (case 3).
      misbehaved = h.signing_digest() != blocks_[h.height].hash();
    }
  }
  if (!misbehaved) throw host::TxError("evidence: no misbehaviour proven");
  slash(ctx, offender);
}

// --- handshake ------------------------------------------------------------------------

void GuestContract::op_handshake(host::TxContext& ctx, Decoder& d) {
  const Bytes blob = take_buffer(ctx, d.u64());
  ctx.consume_cu(40'000 + blob.size());
  Decoder b(blob);
  const auto op = static_cast<HandshakeOp>(b.u8());
  try {
    switch (op) {
      case HandshakeOp::kConnOpenInit: {
        const ibc::ClientId client = b.str();
        const ibc::ClientId counterparty_client = b.str();
        b.expect_done();
        const ibc::ConnectionId id = module_.conn_open_init(client, counterparty_client);
        ctx.emit_event("ConnOpenInit", bytes_of(id));
        return;
      }
      case HandshakeOp::kConnOpenTry: {
        const ibc::ClientId client = b.str();
        const ibc::ClientId counterparty_client = b.str();
        const ibc::ConnectionId counterparty_conn = b.str();
        const auto end = ibc::ConnectionEnd::decode(b.bytes());
        const ibc::Height h = b.u64();
        const auto proof = trie::Proof::deserialize(b.bytes());
        std::optional<ibc::ClientStateCommitment> client_state;
        trie::Proof client_proof;
        if (b.boolean()) {
          client_state = ibc::ClientStateCommitment::decode(b.bytes());
          client_proof = trie::Proof::deserialize(b.bytes());
        }
        b.expect_done();
        const ibc::ConnectionId id =
            module_.conn_open_try(client, counterparty_client, counterparty_conn, end,
                                  h, proof, client_state, client_proof);
        ctx.emit_event("ConnOpenTry", bytes_of(id));
        return;
      }
      case HandshakeOp::kConnOpenAck: {
        const ibc::ConnectionId conn = b.str();
        const ibc::ConnectionId counterparty_conn = b.str();
        const auto end = ibc::ConnectionEnd::decode(b.bytes());
        const ibc::Height h = b.u64();
        const auto proof = trie::Proof::deserialize(b.bytes());
        std::optional<ibc::ClientStateCommitment> client_state;
        trie::Proof client_proof;
        if (b.boolean()) {
          client_state = ibc::ClientStateCommitment::decode(b.bytes());
          client_proof = trie::Proof::deserialize(b.bytes());
        }
        b.expect_done();
        module_.conn_open_ack(conn, counterparty_conn, end, h, proof, client_state,
                              client_proof);
        return;
      }
      case HandshakeOp::kConnOpenConfirm: {
        const ibc::ConnectionId conn = b.str();
        const auto end = ibc::ConnectionEnd::decode(b.bytes());
        const ibc::Height h = b.u64();
        const auto proof = trie::Proof::deserialize(b.bytes());
        b.expect_done();
        module_.conn_open_confirm(conn, end, h, proof);
        return;
      }
      case HandshakeOp::kChanOpenInit: {
        const ibc::PortId port = b.str();
        const ibc::ConnectionId conn = b.str();
        const ibc::PortId cp_port = b.str();
        const auto order = static_cast<ibc::ChannelOrder>(b.u8());
        b.expect_done();
        const ibc::ChannelId id = module_.chan_open_init(port, conn, cp_port, order);
        ctx.emit_event("ChanOpenInit", bytes_of(id));
        return;
      }
      case HandshakeOp::kChanOpenTry: {
        const ibc::PortId port = b.str();
        const ibc::ConnectionId conn = b.str();
        const ibc::PortId cp_port = b.str();
        const ibc::ChannelId cp_chan = b.str();
        const auto end = ibc::ChannelEnd::decode(b.bytes());
        const ibc::Height h = b.u64();
        const auto proof = trie::Proof::deserialize(b.bytes());
        const auto order = static_cast<ibc::ChannelOrder>(b.u8());
        b.expect_done();
        const ibc::ChannelId id =
            module_.chan_open_try(port, conn, cp_port, cp_chan, end, h, proof, order);
        ctx.emit_event("ChanOpenTry", bytes_of(id));
        return;
      }
      case HandshakeOp::kChanOpenAck: {
        const ibc::PortId port = b.str();
        const ibc::ChannelId chan = b.str();
        const ibc::ChannelId cp_chan = b.str();
        const auto end = ibc::ChannelEnd::decode(b.bytes());
        const ibc::Height h = b.u64();
        const auto proof = trie::Proof::deserialize(b.bytes());
        b.expect_done();
        module_.chan_open_ack(port, chan, cp_chan, end, h, proof);
        return;
      }
      case HandshakeOp::kChanOpenConfirm: {
        const ibc::PortId port = b.str();
        const ibc::ChannelId chan = b.str();
        const auto end = ibc::ChannelEnd::decode(b.bytes());
        const ibc::Height h = b.u64();
        const auto proof = trie::Proof::deserialize(b.bytes());
        b.expect_done();
        module_.chan_open_confirm(port, chan, end, h, proof);
        return;
      }
    }
    throw host::TxError("handshake: unknown sub-operation");
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  }
}

void GuestContract::op_freeze_client(host::TxContext& ctx, Decoder& d) {
  // §VI-C: anyone presenting two quorum-signed counterparty headers at
  // the same height freezes the light client, halting the bridge until
  // operators react.
  const Bytes blob = take_buffer(ctx, d.u64());
  ctx.consume_cu(50'000 + blob.size());
  Decoder b(blob);
  const auto ha = ibc::SignedQuorumHeader::decode(b.bytes());
  const auto hb = ibc::SignedQuorumHeader::decode(b.bytes());
  b.expect_done();
  try {
    counterparty_client_->submit_misbehaviour(ha, hb);
  } catch (const ibc::IbcError& e) {
    throw host::TxError(e.what());
  }
  ctx.emit_event("ClientFrozen", {});
}

void GuestContract::op_self_destruct(host::TxContext& ctx) {
  // §VI-A: mitigation for the last-validator bank run — once the chain
  // has demonstrably stalled, all staked assets are released pro rata
  // so no one is trapped as "the last validator".
  ctx.consume_cu(30'000);
  if (cfg_.self_destruct_after_s <= 0)
    throw host::TxError("self_destruct: not enabled");
  const double stalled_for = ctx.time() - head().header.timestamp;
  if (stalled_for < cfg_.self_destruct_after_s)
    throw host::TxError("self_destruct: chain is not stalled long enough");

  // Release stakes (active candidates + queued withdrawals).
  std::uint64_t total = 0;
  for (const auto& [key, cand] : candidates_) total += cand.stake;
  for (const auto& w : withdrawals_) total += w.lamports;
  const std::uint64_t vault_funds = ctx.balance(vault_);
  for (const auto& [key, cand] : candidates_) {
    const std::uint64_t share = total == 0 ? 0 : vault_funds * cand.stake / total;
    if (share > 0) ctx.transfer(vault_, key, share);
  }
  for (const auto& w : withdrawals_) {
    const std::uint64_t share = total == 0 ? 0 : vault_funds * w.lamports / total;
    if (share > 0) ctx.transfer(vault_, w.who, share);
  }
  candidates_.clear();
  withdrawals_.clear();
  terminated_ = true;
  ctx.emit_event("SelfDestructed", {});
}

// --- introspection ----------------------------------------------------------------------

const GuestBlock& GuestContract::block_at(ibc::Height h) const {
  if (h >= blocks_.size())
    throw std::out_of_range("guest: no block at height " + std::to_string(h));
  return blocks_[h];
}

trie::Proof GuestContract::prove_at(ibc::Height h, ByteView key) const {
  const auto it = snapshots_.find(h);
  if (it == snapshots_.end())
    throw std::out_of_range("guest: no snapshot at height " + std::to_string(h));
  return it->second.prove(key);
}

trie::TrieSnapshot GuestContract::snapshot_at(ibc::Height h) const {
  const auto it = snapshots_.find(h);
  if (it == snapshots_.end()) return {};
  return it->second;
}

std::optional<ibc::Acknowledgement> GuestContract::ack_log(
    const ibc::PortId& port, const ibc::ChannelId& channel, std::uint64_t seq) const {
  const auto it = ack_log_.find({port, channel, seq});
  if (it == ack_log_.end()) return std::nullopt;
  return ibc::Acknowledgement::decode(it->second);
}

ibc::Height GuestContract::last_finalised_height() const {
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it)
    if (it->finalised) return it->header.height;
  return 0;
}

std::optional<GuestContract::PendingUpdateInfo> GuestContract::pending_update_info()
    const {
  if (!pending_update_) return std::nullopt;
  PendingUpdateInfo info;
  info.height = pending_update_->header.height;
  info.verified_power = pending_update_->verified_power;
  info.seen = pending_update_->seen;  // already sorted
  return info;
}

std::vector<std::uint64_t> GuestContract::staging_buffers_of(
    const crypto::PublicKey& payer) const {
  std::vector<std::uint64_t> out;
  const std::string hex = payer.hex();
  for (auto it = buffers_.lower_bound({hex, 0}); it != buffers_.end(); ++it) {
    if (it->first.first != hex) break;
    out.push_back(it->first.second);
  }
  return out;
}

std::optional<std::size_t> GuestContract::staging_buffer_size(
    const crypto::PublicKey& payer, std::uint64_t buffer_id) const {
  const auto it = buffers_.find({payer.hex(), buffer_id});
  if (it == buffers_.end()) return std::nullopt;
  return it->second.size();
}

std::optional<Bytes> GuestContract::staging_buffer_bytes(
    const crypto::PublicKey& payer, std::uint64_t buffer_id) const {
  const auto it = buffers_.find({payer.hex(), buffer_id});
  if (it == buffers_.end()) return std::nullopt;
  return it->second;
}

std::optional<Hash32> GuestContract::snapshot_root_at(ibc::Height h) const {
  const auto it = snapshots_.find(h);
  if (it == snapshots_.end()) return std::nullopt;
  return it->second.root_hash();
}

std::uint64_t GuestContract::stake_of(const crypto::PublicKey& validator) const {
  const auto it = candidates_.find(validator);
  return it == candidates_.end() ? 0 : it->second.stake;
}

bool GuestContract::is_banned(const crypto::PublicKey& validator) const {
  return banned_.count(validator) > 0;
}

std::size_t GuestContract::account_bytes() const {
  std::size_t n = store_.stats().byte_size;
  for (const auto& b : blocks_) n += b.byte_size();
  for (const auto& [key, buf] : buffers_) n += buf.size() + 48;
  n += candidates_.size() * 48 + withdrawals_.size() * 56;
  return n;
}

}  // namespace bmg::guest
