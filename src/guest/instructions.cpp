#include "guest/instructions.hpp"

#include "host/constants.hpp"

namespace bmg::guest::ix {

namespace {
host::Instruction make(Op op, Bytes payload) {
  Encoder e;
  e.u8(static_cast<std::uint8_t>(op));
  e.raw(payload);
  return host::Instruction{kProgramName, e.take()};
}

host::Instruction buffer_op(Op op, std::uint64_t buffer_id) {
  Encoder e;
  e.u64(buffer_id);
  return make(op, e.take());
}
}  // namespace

host::Instruction generate_block() { return make(Op::kGenerateBlock, {}); }

host::Instruction sign_block(ibc::Height height, const crypto::PublicKey& validator) {
  Encoder e;
  e.u64(height).raw(validator.view());
  return make(Op::kSign, e.take());
}

host::Instruction send_packet(const ibc::PortId& port, const ibc::ChannelId& channel,
                              ByteView data, ibc::Height timeout_height,
                              ibc::Timestamp timeout_timestamp) {
  Encoder e;
  e.str(port).str(channel).bytes(data).u64(timeout_height).u64(
      static_cast<std::uint64_t>(timeout_timestamp * 1e6 + 0.5));
  return make(Op::kSendPacket, e.take());
}

host::Instruction send_transfer(const ibc::ChannelId& channel, const std::string& denom,
                                std::uint64_t amount, const std::string& sender,
                                const std::string& receiver, ibc::Height timeout_height,
                                ibc::Timestamp timeout_timestamp) {
  Encoder e;
  e.str(channel).str(denom).u64(amount).str(sender).str(receiver).u64(timeout_height).u64(
      static_cast<std::uint64_t>(timeout_timestamp * 1e6 + 0.5));
  return make(Op::kSendTransfer, e.take());
}

host::Instruction chunk_upload(std::uint64_t buffer_id, std::uint32_t offset,
                               ByteView data) {
  Encoder e;
  e.u64(buffer_id).u32(offset).bytes(data);
  return make(Op::kChunkUpload, e.take());
}

host::Instruction receive_packet(std::uint64_t buffer_id) {
  return buffer_op(Op::kReceivePacket, buffer_id);
}
host::Instruction acknowledge_packet(std::uint64_t buffer_id) {
  return buffer_op(Op::kAcknowledgePacket, buffer_id);
}
host::Instruction timeout_packet(std::uint64_t buffer_id) {
  return buffer_op(Op::kTimeoutPacket, buffer_id);
}
host::Instruction begin_client_update(std::uint64_t buffer_id) {
  return buffer_op(Op::kBeginClientUpdate, buffer_id);
}
host::Instruction verify_update_signatures() {
  return make(Op::kVerifyUpdateSignatures, {});
}
host::Instruction finish_client_update() { return make(Op::kFinishClientUpdate, {}); }

host::Instruction stake(std::uint64_t lamports) {
  Encoder e;
  e.u64(lamports);
  return make(Op::kStake, e.take());
}

host::Instruction unstake(std::uint64_t lamports) {
  Encoder e;
  e.u64(lamports);
  return make(Op::kUnstake, e.take());
}

host::Instruction withdraw_stake() { return make(Op::kWithdrawStake, {}); }

host::Instruction submit_evidence(std::uint64_t buffer_id) {
  return buffer_op(Op::kSubmitEvidence, buffer_id);
}

host::Instruction handshake(std::uint64_t buffer_id) {
  return buffer_op(Op::kHandshake, buffer_id);
}

host::Instruction freeze_client(std::uint64_t buffer_id) {
  return buffer_op(Op::kFreezeClient, buffer_id);
}

host::Instruction self_destruct() { return make(Op::kSelfDestruct, {}); }

std::size_t max_chunk_bytes(std::size_t max_tx_size) {
  // Envelope + op tag + buffer id + offset + length prefix.
  return max_tx_size - host::kTxEnvelopeBytes - 8 - 1 - 8 - 4 - 4 - 16;
}

std::vector<Bytes> chunk_payload(ByteView blob, std::size_t max_tx_size) {
  const std::size_t chunk = max_chunk_bytes(max_tx_size);
  std::vector<Bytes> out;
  for (std::size_t off = 0; off < blob.size(); off += chunk) {
    const std::size_t len = std::min(chunk, blob.size() - off);
    out.emplace_back(blob.begin() + static_cast<std::ptrdiff_t>(off),
                     blob.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  if (out.empty()) out.emplace_back();
  return out;
}

}  // namespace bmg::guest::ix
