// Guest blockchain blocks (paper §III-A).
//
// A guest block commits the guest chain's provable state (the
// sealable trie root), chains to its predecessor, and records which
// host slot produced it.  Its light-client view is a QuorumHeader —
// prev-hash and host height travel in the header's `extra` field so
// they are covered by validator signatures.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "ibc/packet.hpp"
#include "ibc/quorum.hpp"

namespace bmg::guest {

struct GuestBlock {
  ibc::QuorumHeader header;
  Hash32 prev_hash{};
  std::uint64_t host_height = 0;

  /// Full next validator set when this block ends an epoch.
  std::optional<ibc::ValidatorSet> next_validators;

  /// The set whose quorum finalises this block (the epoch's set).
  /// Shared with the contract's epoch state — blocks of one epoch all
  /// point at the same immutable set instead of each holding a copy.
  std::shared_ptr<const ibc::ValidatorSet> signing_set;

  /// Collected validator signatures (Sign procedure of Alg. 1).
  std::map<crypto::PublicKey, crypto::Signature> signers;
  bool finalised = false;

  /// Packets sent since the previous block, included here for relayers.
  std::vector<ibc::Packet> packets;

  [[nodiscard]] Hash32 hash() const { return header.signing_digest(); }
  [[nodiscard]] bool last_in_epoch() const { return next_validators.has_value(); }

  [[nodiscard]] std::uint64_t signed_stake() const;

  /// Light-client update payload for this (finalised) block.
  [[nodiscard]] ibc::SignedQuorumHeader to_signed_header() const;

  /// Builds a block; packs prev/host_height into header.extra.  The
  /// shared_ptr overload is the hot path — the contract hands every
  /// block the epoch set without copying it.
  [[nodiscard]] static GuestBlock make(const std::string& chain_id, ibc::Height height,
                                       double timestamp, const Hash32& state_root,
                                       const Hash32& prev_hash,
                                       std::uint64_t host_height,
                                       std::shared_ptr<const ibc::ValidatorSet> signing_set);

  /// Convenience overload for callers holding a plain set (tests,
  /// examples); copies it once into a shared_ptr.
  [[nodiscard]] static GuestBlock make(const std::string& chain_id, ibc::Height height,
                                       double timestamp, const Hash32& state_root,
                                       const Hash32& prev_hash,
                                       std::uint64_t host_height,
                                       const ibc::ValidatorSet& signing_set);

  /// Approximate on-chain storage footprint of this block record.
  [[nodiscard]] std::size_t byte_size() const;
};

}  // namespace bmg::guest
