// The Guest Contract (paper §III-A, Alg. 1) — the smart contract on
// the host chain that *is* the guest blockchain.
//
// It maintains the guest chain's provable state in a sealable trie,
// produces guest blocks (GenerateBlock), collects validator
// signatures until a stake quorum finalises each block (Sign), and
// bridges IBC traffic between the host and the counterparty
// (SendPacket / ReceivePacket, plus the chunked light-client-update
// machinery that Solana's transaction-size and compute limits force).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "guest/block.hpp"
#include "guest/instructions.hpp"
#include "host/program.hpp"
#include "ibc/bank.hpp"
#include "ibc/module.hpp"
#include "ibc/quorum.hpp"
#include "ibc/transfer.hpp"
#include "trie/snapshot.hpp"
#include "trie/trie.hpp"

namespace bmg::guest {

struct GuestConfig {
  std::string chain_id = "guest-1";
  std::string counterparty_chain_id = "picasso-1";
  /// Δ — maximum age before an empty block is generated (paper: 1 h).
  double delta_seconds = 3600.0;
  /// Epoch length in host slots (paper: 100k slots ≈ 12 h).
  std::uint64_t epoch_length_host_slots = 100'000;
  /// Validator-set size cap (paper's deployment had 24).
  std::size_t max_validators = 24;
  std::uint64_t min_stake_lamports = 1;
  /// Stake held after exit (paper: one week).
  double unstake_hold_seconds = 7.0 * 24 * 3600;
  /// collect_fees() of Alg. 1 — flat guest-layer fee per sent packet.
  std::uint64_t send_fee_lamports = 50'000;
  /// Share of slashed stake awarded to the reporting fisherman.
  double slash_reporter_fraction = 0.5;
  /// Share of the treasury (accumulated send fees) paid out to a
  /// block's signers when it finalises, split pro rata by stake.  The
  /// paper's deployment lacked automatic rewards (§V-C) and attributes
  /// validator disengagement to it; this completes the incentive loop.
  double signer_reward_fraction = 0.0;
  std::uint64_t ack_seal_lag = 64;
  /// §VI-C: minimum host-time between accepted counterparty light
  /// client updates (0 disables).  Rate limiting gives honest actors
  /// time to react to a counterparty compromise.
  double client_update_min_interval_s = 0.0;
  /// Number of recent blocks whose full records (signer sets, packet
  /// lists) are retained; older records are pruned down to their
  /// headers so the contract account stays bounded.
  std::uint64_t block_history_window = 512;
  /// §VI-A: once the guest chain has been stalled this long, anyone
  /// may trigger self-destruction, releasing all staked assets to the
  /// remaining validators (0 disables).  Mitigates the
  /// last-validator-wishing-to-quit bank run.
  double self_destruct_after_s = 0.0;
};

class GuestContract final : public host::Program {
 public:
  GuestContract(GuestConfig cfg, std::vector<ibc::ValidatorInfo> genesis_validators,
                ibc::ValidatorSet counterparty_validators);

  // host::Program:
  void execute(host::TxContext& ctx, ByteView instruction_data) override;
  [[nodiscard]] std::size_t account_bytes() const override;
  [[nodiscard]] bool fork_supported() const override { return true; }
  void fork_capture_baseline() override;
  void fork_reset_to_baseline() override;

  // --- off-chain read API (account reads are free on the host) --------
  [[nodiscard]] const GuestBlock& head() const { return blocks_.back(); }
  [[nodiscard]] const GuestBlock& block_at(ibc::Height h) const;
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  [[nodiscard]] ibc::IbcModule& ibc() noexcept { return module_; }
  [[nodiscard]] const ibc::IbcModule& ibc() const noexcept { return module_; }
  [[nodiscard]] ibc::Bank& bank() noexcept { return bank_; }
  [[nodiscard]] ibc::TokenTransferApp& transfer() noexcept { return transfer_; }
  [[nodiscard]] const trie::SealableTrie& store() const noexcept { return store_; }

  [[nodiscard]] const ibc::ValidatorSet& epoch_validators() const noexcept {
    return *epoch_;
  }
  [[nodiscard]] const ibc::ClientId& counterparty_client_id() const noexcept {
    return counterparty_client_id_;
  }
  [[nodiscard]] const ibc::QuorumLightClient& counterparty_client() const noexcept {
    return *counterparty_client_;
  }

  /// Proof against the state root committed in the guest block at `h`
  /// (Alg. 2 line 9 — relayers generate these off-chain).
  [[nodiscard]] trie::Proof prove_at(ibc::Height h, ByteView key) const;

  /// The immutable state snapshot published with the block at `h`
  /// (what prove_at proves against); an invalid snapshot once pruned.
  /// Relayers hold these to batch proof generation off-thread while
  /// the contract commits the next block.
  [[nodiscard]] trie::TrieSnapshot snapshot_at(ibc::Height h) const;

  /// The acknowledgement this chain wrote for a delivered packet
  /// (off-chain read; relayers ship it back to the counterparty).
  [[nodiscard]] std::optional<ibc::Acknowledgement> ack_log(
      const ibc::PortId& port, const ibc::ChannelId& channel, std::uint64_t seq) const;

  /// §VI-A: true once the contract has self-destructed.
  [[nodiscard]] bool terminated() const noexcept { return terminated_; }

  // --- crash-restart resync surface -----------------------------------
  // Everything a relayer needs to rebuild its in-memory state after a
  // process crash is an account read away; these expose the contract
  // accounts a restarted process scans.

  /// Height of the newest *finalised* guest block (0 = genesis only).
  [[nodiscard]] ibc::Height last_finalised_height() const;

  /// The in-progress chunked light-client update, if any: which
  /// counterparty height it targets and which validator signatures
  /// have already been verified on-chain.  A restarted relayer resumes
  /// from here instead of re-uploading the whole update.
  struct PendingUpdateInfo {
    ibc::Height height = 0;
    std::uint64_t verified_power = 0;
    std::vector<crypto::PublicKey> seen;
  };
  [[nodiscard]] std::optional<PendingUpdateInfo> pending_update_info() const;

  /// Ids of staging buffers `payer` has uploaded chunks into but not
  /// yet consumed, in increasing id order.
  [[nodiscard]] std::vector<std::uint64_t> staging_buffers_of(
      const crypto::PublicKey& payer) const;
  /// Bytes uploaded so far into one staging buffer (chunks are strictly
  /// sequential, so size == next expected offset); nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> staging_buffer_size(
      const crypto::PublicKey& payer, std::uint64_t buffer_id) const;
  /// Contents uploaded so far into one staging buffer; nullopt if
  /// absent.  Lets a restarted uploader (e.g. a fisherman holding
  /// half-prosecuted evidence) recover what it already paid to stage
  /// instead of losing it with its process memory.
  [[nodiscard]] std::optional<Bytes> staging_buffer_bytes(
      const crypto::PublicKey& payer, std::uint64_t buffer_id) const;

  /// Root of the retained state snapshot for height `h` (what prove_at
  /// proves against); nullopt once pruned.  The auditor cross-checks
  /// this against the root committed in the block header.
  [[nodiscard]] std::optional<Hash32> snapshot_root_at(ibc::Height h) const;

  [[nodiscard]] std::uint64_t stake_of(const crypto::PublicKey& validator) const;
  [[nodiscard]] bool is_banned(const crypto::PublicKey& validator) const;
  [[nodiscard]] std::uint64_t fees_collected() const noexcept { return fees_collected_; }
  [[nodiscard]] std::uint64_t rewards_paid() const noexcept { return rewards_paid_; }

  /// Accounts the contract moves funds through.
  [[nodiscard]] const crypto::PublicKey& treasury() const noexcept { return treasury_; }
  [[nodiscard]] const crypto::PublicKey& stake_vault() const noexcept { return vault_; }

  // Event names emitted through the host runtime.
  static constexpr const char* kEvNewBlock = "NewBlock";
  static constexpr const char* kEvFinalisedBlock = "FinalisedBlock";
  static constexpr const char* kEvPacketSent = "PacketSent";
  static constexpr const char* kEvPacketReceived = "PacketReceived";
  static constexpr const char* kEvSlashed = "Slashed";

 private:
  struct Candidate {
    std::uint64_t stake = 0;
  };
  struct PendingWithdrawal {
    crypto::PublicKey who;
    std::uint64_t lamports = 0;
    double available_at = 0;
  };
  struct PendingUpdate {
    ibc::QuorumHeader header;
    std::optional<ibc::ValidatorSet> next_validators;
    Hash32 digest{};
    std::uint64_t verified_power = 0;
    /// Validators already counted, kept sorted; binary-search insert
    /// avoids the per-signer node allocation of a std::set on the
    /// client-update hot path.
    std::vector<crypto::PublicKey> seen;
  };

  // Instruction handlers.
  void op_generate_block(host::TxContext& ctx);
  void op_sign(host::TxContext& ctx, Decoder& d);
  void op_send_packet(host::TxContext& ctx, Decoder& d);
  void op_send_transfer(host::TxContext& ctx, Decoder& d);
  void op_chunk_upload(host::TxContext& ctx, Decoder& d);
  void op_receive_packet(host::TxContext& ctx, Decoder& d);
  void op_acknowledge_packet(host::TxContext& ctx, Decoder& d);
  void op_timeout_packet(host::TxContext& ctx, Decoder& d);
  void op_begin_client_update(host::TxContext& ctx, Decoder& d);
  void op_verify_update_signatures(host::TxContext& ctx);
  void op_finish_client_update(host::TxContext& ctx);
  void op_stake(host::TxContext& ctx, Decoder& d);
  void op_unstake(host::TxContext& ctx, Decoder& d);
  void op_withdraw_stake(host::TxContext& ctx);
  void op_submit_evidence(host::TxContext& ctx, Decoder& d);
  void op_handshake(host::TxContext& ctx, Decoder& d);
  void op_freeze_client(host::TxContext& ctx, Decoder& d);
  void op_self_destruct(host::TxContext& ctx);

  [[nodiscard]] Bytes take_buffer(host::TxContext& ctx, std::uint64_t buffer_id);
  [[nodiscard]] ibc::ValidatorSet select_validators() const;
  /// Shared between the constructor and fork_reset_to_baseline():
  /// installs the counterparty light client, genesis candidates, the
  /// first epoch and the genesis block into freshly-reset members.
  void init_genesis();
  void finalise_block(host::TxContext& ctx, GuestBlock& block);
  void collect_send_fee(host::TxContext& ctx);
  void record_sent_packet(host::TxContext& ctx, const ibc::Packet& packet);
  void slash(host::TxContext& ctx, const crypto::PublicKey& offender);

  GuestConfig cfg_;

  trie::SealableTrie store_;
  ibc::IbcModule module_;
  ibc::Bank bank_;
  ibc::TokenTransferApp transfer_;

  ibc::QuorumLightClient* counterparty_client_ = nullptr;
  ibc::ClientId counterparty_client_id_;

  std::vector<GuestBlock> blocks_;
  ibc::Height pruned_below_ = 0;  ///< heights below this hold headers only
  /// Copy-on-write snapshots per committed block — O(page-table) to
  /// publish, not a deep trie copy (the pre-paged design copied every
  /// node slab per block).
  std::map<ibc::Height, trie::TrieSnapshot> snapshots_;
  std::vector<ibc::Packet> pending_packets_;

  /// The active epoch's validator set, shared (not copied) into every
  /// block it finalises.  Immutable once published; epoch rotation
  /// swaps in a fresh shared_ptr.
  std::shared_ptr<const ibc::ValidatorSet> epoch_;
  std::uint64_t epoch_start_host_slot_ = 0;

  std::map<crypto::PublicKey, Candidate> candidates_;
  std::set<crypto::PublicKey> banned_;
  std::deque<PendingWithdrawal> withdrawals_;

  std::optional<PendingUpdate> pending_update_;
  std::map<std::pair<std::string, std::uint64_t>, Bytes> buffers_;
  std::map<std::tuple<ibc::PortId, ibc::ChannelId, std::uint64_t>, Bytes> ack_log_;

  /// Construction-time inputs, retained so a host fork rollback can
  /// rebuild genesis state from scratch (the constructor moves them
  /// into the live structures).
  std::vector<ibc::ValidatorInfo> genesis_validators_;
  ibc::ValidatorSet genesis_counterparty_validators_;
  /// Bank ledger as of Chain::start() (pre-start mints included);
  /// restored verbatim before the fork journal replays.
  ibc::Bank baseline_bank_;

  crypto::PublicKey treasury_;
  crypto::PublicKey vault_;
  crypto::PublicKey burn_;
  std::uint64_t fees_collected_ = 0;
  std::uint64_t rewards_paid_ = 0;
  double last_client_update_time_ = -1e18;  ///< §VI-C rate limiting
  bool terminated_ = false;                 ///< §VI-A self-destruction
};

}  // namespace bmg::guest
