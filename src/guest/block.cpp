#include "guest/block.hpp"

#include "common/codec.hpp"

namespace bmg::guest {

std::uint64_t GuestBlock::signed_stake() const {
  std::uint64_t sum = 0;
  for (const auto& [key, sig] : signers) {
    if (const auto stake = signing_set->stake_of(key)) sum += *stake;
  }
  return sum;
}

ibc::SignedQuorumHeader GuestBlock::to_signed_header() const {
  ibc::SignedQuorumHeader sh;
  sh.header = header;
  for (const auto& [key, sig] : signers) sh.signatures.emplace_back(key, sig);
  sh.next_validators = next_validators;
  return sh;
}

GuestBlock GuestBlock::make(const std::string& chain_id, ibc::Height height,
                            double timestamp, const Hash32& state_root,
                            const Hash32& prev_hash, std::uint64_t host_height,
                            std::shared_ptr<const ibc::ValidatorSet> signing_set) {
  GuestBlock b;
  b.header.chain_id = chain_id;
  b.header.height = height;
  b.header.timestamp = timestamp;
  b.header.state_root = state_root;
  b.header.validator_set_hash = signing_set->hash();
  Encoder extra(32 + 8);
  extra.hash(prev_hash).u64(host_height);
  b.header.extra = extra.take();
  b.prev_hash = prev_hash;
  b.host_height = host_height;
  b.signing_set = std::move(signing_set);
  return b;
}

GuestBlock GuestBlock::make(const std::string& chain_id, ibc::Height height,
                            double timestamp, const Hash32& state_root,
                            const Hash32& prev_hash, std::uint64_t host_height,
                            const ibc::ValidatorSet& signing_set) {
  return make(chain_id, height, timestamp, state_root, prev_hash, host_height,
              std::make_shared<const ibc::ValidatorSet>(signing_set));
}

std::size_t GuestBlock::byte_size() const {
  std::size_t n = header.byte_size() + 64;  // header + bookkeeping
  n += signers.size() * 96;
  if (next_validators) n += next_validators->byte_size();
  for (const auto& p : packets) n += p.wire_size();
  return n;
}

}  // namespace bmg::guest
