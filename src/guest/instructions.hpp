// Instruction encoding for the Guest Contract.
//
// Everything an off-chain actor (client, validator, relayer,
// fisherman) does goes through these host-chain instructions.  Large
// payloads (light client updates, packets with proofs, evidence) do
// not fit in one 1232-byte host transaction, so they are first
// uploaded in chunks into a per-payer staging buffer and then
// consumed by the operation that references the buffer — the
// mechanism the paper's implementation uses on Solana (§IV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.hpp"
#include "host/transaction.hpp"
#include "ibc/types.hpp"

namespace bmg::guest {

/// Program name under which the Guest Contract registers on the host.
inline constexpr const char* kProgramName = "guest";

enum class Op : std::uint8_t {
  kGenerateBlock = 1,
  kSign = 2,
  kSendPacket = 3,
  kChunkUpload = 4,
  kReceivePacket = 5,
  kBeginClientUpdate = 6,
  kVerifyUpdateSignatures = 7,
  kFinishClientUpdate = 8,
  kStake = 9,
  kUnstake = 10,
  kWithdrawStake = 11,
  kSubmitEvidence = 12,
  kHandshake = 13,
  kSendTransfer = 14,
  kAcknowledgePacket = 15,
  kTimeoutPacket = 16,
  /// §VI-C: freeze the counterparty light client with fork evidence.
  kFreezeClient = 17,
  /// §VI-A: wind the guest chain down after prolonged stall.
  kSelfDestruct = 18,
};

enum class HandshakeOp : std::uint8_t {
  kConnOpenInit = 1,
  kConnOpenTry = 2,
  kConnOpenAck = 3,
  kConnOpenConfirm = 4,
  kChanOpenInit = 5,
  kChanOpenTry = 6,
  kChanOpenAck = 7,
  kChanOpenConfirm = 8,
};

namespace ix {

[[nodiscard]] host::Instruction generate_block();
[[nodiscard]] host::Instruction sign_block(ibc::Height height,
                                           const crypto::PublicKey& validator);
[[nodiscard]] host::Instruction send_packet(const ibc::PortId& port,
                                            const ibc::ChannelId& channel, ByteView data,
                                            ibc::Height timeout_height,
                                            ibc::Timestamp timeout_timestamp);
[[nodiscard]] host::Instruction send_transfer(const ibc::ChannelId& channel,
                                              const std::string& denom,
                                              std::uint64_t amount,
                                              const std::string& sender,
                                              const std::string& receiver,
                                              ibc::Height timeout_height,
                                              ibc::Timestamp timeout_timestamp);
[[nodiscard]] host::Instruction chunk_upload(std::uint64_t buffer_id, std::uint32_t offset,
                                             ByteView data);
[[nodiscard]] host::Instruction receive_packet(std::uint64_t buffer_id);
[[nodiscard]] host::Instruction acknowledge_packet(std::uint64_t buffer_id);
[[nodiscard]] host::Instruction timeout_packet(std::uint64_t buffer_id);
[[nodiscard]] host::Instruction begin_client_update(std::uint64_t buffer_id);
[[nodiscard]] host::Instruction verify_update_signatures();
[[nodiscard]] host::Instruction finish_client_update();
[[nodiscard]] host::Instruction stake(std::uint64_t lamports);
[[nodiscard]] host::Instruction unstake(std::uint64_t lamports);
[[nodiscard]] host::Instruction withdraw_stake();
[[nodiscard]] host::Instruction submit_evidence(std::uint64_t buffer_id);
[[nodiscard]] host::Instruction handshake(std::uint64_t buffer_id);
[[nodiscard]] host::Instruction freeze_client(std::uint64_t buffer_id);
[[nodiscard]] host::Instruction self_destruct();

/// Splits `blob` into chunks that fit a host transaction alongside the
/// ChunkUpload framing.  `max_tx_size` defaults to Solana's limit.
[[nodiscard]] std::vector<Bytes> chunk_payload(
    ByteView blob, std::size_t max_tx_size = host::kMaxTransactionSize);

/// Bytes of buffer payload that fit in one chunk-upload transaction.
[[nodiscard]] std::size_t max_chunk_bytes(
    std::size_t max_tx_size = host::kMaxTransactionSize);

}  // namespace ix
}  // namespace bmg::guest
