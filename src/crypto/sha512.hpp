// SHA-512 (FIPS 180-4), required by Ed25519 (RFC 8032).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace bmg::crypto {

using Digest512 = std::array<std::uint8_t, 64>;

class Sha512 {
 public:
  Sha512() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteView data) noexcept;
  [[nodiscard]] Digest512 finish() noexcept;

  [[nodiscard]] static Digest512 digest(ByteView data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint64_t, 8> state_{};
  std::array<std::uint8_t, 128> buffer_{};
  std::uint64_t total_len_ = 0;  // bytes; fine below 2^61 bytes
  std::size_t buffer_len_ = 0;
};

}  // namespace bmg::crypto
