// x86 SHA-256 backends: SHA-NI single-stream compression and an AVX2
// 8-lane message-parallel kernel.  Both are compiled with per-function
// target attributes so the rest of the build needs no -m flags, and
// both are guarded by runtime CPUID checks — callers must consult
// cpu_has_sha_ni()/cpu_has_avx2() first.
//
// On non-x86 targets this file compiles to "feature absent" stubs and
// the portable scalar path in sha256.cpp is used everywhere.
#include "crypto/sha256_impl.hpp"

#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BMG_SHA_X86 1
#include <immintrin.h>
#else
#define BMG_SHA_X86 0
#endif

namespace bmg::crypto::detail {

#if BMG_SHA_X86

bool cpu_has_sha_ni() noexcept {
  static const bool ok = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") != 0;
  }();
  return ok;
}

bool cpu_has_avx2() noexcept {
  static const bool ok = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return ok;
}

__attribute__((target("sha,sse4.1"))) void compress_shani(
    std::uint32_t state[8], const std::uint8_t* data, std::size_t nblocks) noexcept {
  // Register layout required by sha256rnds2: STATE0 = {A,B,E,F},
  // STATE1 = {C,D,G,H} (high to low words).
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);
  const auto k = [](int i) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kSha256Round[i]));
  };

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);            // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);      // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (nblocks > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg;

    // Rounds 0-3
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0)), kByteSwap);
    msg = _mm_add_epi32(msg0, k(0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16)), kByteSwap);
    msg = _mm_add_epi32(msg1, k(4));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32)), kByteSwap);
    msg = _mm_add_epi32(msg2, k(8));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48)), kByteSwap);
    msg = _mm_add_epi32(msg3, k(12));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-47: the steady-state schedule/round pattern.
    for (int r = 16; r < 48; r += 16) {
      msg = _mm_add_epi32(msg0, k(r));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg0, msg3, 4);
      msg1 = _mm_add_epi32(msg1, tmp);
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg3 = _mm_sha256msg1_epu32(msg3, msg0);

      msg = _mm_add_epi32(msg1, k(r + 4));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg1, msg0, 4);
      msg2 = _mm_add_epi32(msg2, tmp);
      msg2 = _mm_sha256msg2_epu32(msg2, msg1);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);

      msg = _mm_add_epi32(msg2, k(r + 8));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg2, msg1, 4);
      msg3 = _mm_add_epi32(msg3, tmp);
      msg3 = _mm_sha256msg2_epu32(msg3, msg2);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg1 = _mm_sha256msg1_epu32(msg1, msg2);

      msg = _mm_add_epi32(msg3, k(r + 12));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg3, msg2, 4);
      msg0 = _mm_add_epi32(msg0, tmp);
      msg0 = _mm_sha256msg2_epu32(msg0, msg3);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg2 = _mm_sha256msg1_epu32(msg2, msg3);
    }

    // Rounds 48-51
    msg = _mm_add_epi32(msg0, k(48));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(msg1, k(52));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(msg2, k(56));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(msg3, k(60));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    data += 64;
    --nblocks;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);         // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);      // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);   // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);      // HGFE -> EFGH word order
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

namespace {

__attribute__((target("avx2"))) inline __m256i rotr8(__m256i x, int n) noexcept {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

__attribute__((target("avx2"))) inline __m256i load_words(
    const std::uint8_t* const msgs[8], std::size_t block, int t) noexcept {
  const auto be = [](const std::uint8_t* p) {
    std::uint32_t v;
    __builtin_memcpy(&v, p, 4);
    return static_cast<int>(__builtin_bswap32(v));
  };
  const std::size_t off = block * 64 + static_cast<std::size_t>(t) * 4;
  // Lane i of the vector holds message i's word t.
  return _mm256_set_epi32(be(msgs[7] + off), be(msgs[6] + off), be(msgs[5] + off),
                          be(msgs[4] + off), be(msgs[3] + off), be(msgs[2] + off),
                          be(msgs[1] + off), be(msgs[0] + off));
}

}  // namespace

__attribute__((target("avx2"))) void sha256_avx2_x8(
    const std::uint8_t* const msgs[8], std::size_t nblocks, Hash32 out[8]) noexcept {
  // One state word per vector, one message per 32-bit lane.
  __m256i s[8];
  for (int j = 0; j < 8; ++j) s[j] = _mm256_set1_epi32(static_cast<int>(kSha256Init[j]));

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    __m256i w[64];
    for (int t = 0; t < 16; ++t) w[t] = load_words(msgs, blk, t);
    for (int t = 16; t < 64; ++t) {
      const __m256i s0 = _mm256_xor_si256(
          _mm256_xor_si256(rotr8(w[t - 15], 7), rotr8(w[t - 15], 18)),
          _mm256_srli_epi32(w[t - 15], 3));
      const __m256i s1 = _mm256_xor_si256(
          _mm256_xor_si256(rotr8(w[t - 2], 17), rotr8(w[t - 2], 19)),
          _mm256_srli_epi32(w[t - 2], 10));
      w[t] = _mm256_add_epi32(_mm256_add_epi32(w[t - 16], s0),
                              _mm256_add_epi32(w[t - 7], s1));
    }

    __m256i a = s[0], b = s[1], c = s[2], d = s[3];
    __m256i e = s[4], f = s[5], g = s[6], h = s[7];

    for (int t = 0; t < 64; ++t) {
      const __m256i big_s1 =
          _mm256_xor_si256(_mm256_xor_si256(rotr8(e, 6), rotr8(e, 11)), rotr8(e, 25));
      const __m256i ch =
          _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
      const __m256i t1 = _mm256_add_epi32(
          _mm256_add_epi32(_mm256_add_epi32(h, big_s1), ch),
          _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(kSha256Round[t])), w[t]));
      const __m256i big_s0 =
          _mm256_xor_si256(_mm256_xor_si256(rotr8(a, 2), rotr8(a, 13)), rotr8(a, 22));
      const __m256i maj = _mm256_xor_si256(
          _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
          _mm256_and_si256(b, c));
      const __m256i t2 = _mm256_add_epi32(big_s0, maj);
      h = g;
      g = f;
      f = e;
      e = _mm256_add_epi32(d, t1);
      d = c;
      c = b;
      b = a;
      a = _mm256_add_epi32(t1, t2);
    }

    s[0] = _mm256_add_epi32(s[0], a);
    s[1] = _mm256_add_epi32(s[1], b);
    s[2] = _mm256_add_epi32(s[2], c);
    s[3] = _mm256_add_epi32(s[3], d);
    s[4] = _mm256_add_epi32(s[4], e);
    s[5] = _mm256_add_epi32(s[5], f);
    s[6] = _mm256_add_epi32(s[6], g);
    s[7] = _mm256_add_epi32(s[7], h);
  }

  // Transpose back: lane i's eight state words become digest i.
  alignas(32) std::uint32_t words[8][8];  // [state word][lane]
  for (int j = 0; j < 8; ++j)
    _mm256_store_si256(reinterpret_cast<__m256i*>(words[j]), s[j]);
  for (int lane = 0; lane < 8; ++lane) {
    for (int j = 0; j < 8; ++j) {
      const std::uint32_t v = words[j][lane];
      out[lane].bytes[static_cast<std::size_t>(j * 4)] = static_cast<std::uint8_t>(v >> 24);
      out[lane].bytes[static_cast<std::size_t>(j * 4 + 1)] = static_cast<std::uint8_t>(v >> 16);
      out[lane].bytes[static_cast<std::size_t>(j * 4 + 2)] = static_cast<std::uint8_t>(v >> 8);
      out[lane].bytes[static_cast<std::size_t>(j * 4 + 3)] = static_cast<std::uint8_t>(v);
    }
  }
}

#else  // !BMG_SHA_X86

bool cpu_has_sha_ni() noexcept { return false; }
bool cpu_has_avx2() noexcept { return false; }

void compress_shani(std::uint32_t state[8], const std::uint8_t* data,
                    std::size_t nblocks) noexcept {
  // Unreachable: callers gate on cpu_has_sha_ni().
  compress_scalar(state, data, nblocks);
}

void sha256_avx2_x8(const std::uint8_t* const[8], std::size_t, Hash32[8]) noexcept {
  std::abort();  // unreachable: callers gate on cpu_has_avx2()
}

#endif  // BMG_SHA_X86

}  // namespace bmg::crypto::detail
