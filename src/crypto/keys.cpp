#include "crypto/keys.hpp"

#include "crypto/sha256.hpp"

namespace bmg::crypto {

PrivateKey PrivateKey::from_label(std::string_view label) {
  const Hash32 h = Sha256::digest(ByteView{
      reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  ed25519::Seed seed;
  std::copy(h.bytes.begin(), h.bytes.end(), seed.begin());
  return from_seed(seed);
}

PrivateKey PrivateKey::from_seed(const ed25519::Seed& seed) {
  PrivateKey k;
  k.seed_ = seed;
  k.pub_ = PublicKey(ed25519::derive_public(seed));
  return k;
}

Signature PrivateKey::sign(ByteView msg) const {
  return Signature(ed25519::sign(seed_, msg));
}

bool verify(const PublicKey& pub, ByteView msg, const Signature& sig) {
  return ed25519::verify(pub.raw(), msg, sig.raw());
}

}  // namespace bmg::crypto
