// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for every commitment in the system: trie node hashes, guest
// block hashes, IBC packet commitments.  Tested against NIST vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace bmg::crypto {

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteView data) noexcept;
  /// Finalizes and returns the digest; the object must be reset() before reuse.
  [[nodiscard]] Hash32 finish() noexcept;

  /// One-shot convenience.
  [[nodiscard]] static Hash32 digest(ByteView data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// sha256(a || b) — common pattern for combining two hashes.
[[nodiscard]] Hash32 sha256_pair(const Hash32& a, const Hash32& b) noexcept;

}  // namespace bmg::crypto
