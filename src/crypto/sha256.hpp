// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for every commitment in the system: trie node hashes, guest
// block hashes, IBC packet commitments.  Tested against NIST vectors.
//
// The compression function is runtime-dispatched: SHA-NI (x86 SHA
// extensions) when the CPU has it, otherwise a portable scalar
// implementation.  An additional AVX2 8-lane mode hashes independent
// messages in parallel; `sha256_batch` uses it to amortize the trie's
// deferred-commit rehash over sibling subtrees.  All fast paths
// byte-match the scalar fallback (property-tested).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace bmg::crypto {

/// Which SHA-256 backend to run.  kScalar is always available.
enum class Sha256Impl : std::uint8_t {
  kScalar = 0,  ///< portable C++ (the reference implementation)
  kShaNi = 1,   ///< x86 SHA extensions, single stream
  kAvx2 = 2,    ///< AVX2, 8 interleaved lanes (batch API only)
};

/// True if `impl` can run on this CPU.
[[nodiscard]] bool sha256_impl_available(Sha256Impl impl) noexcept;
/// Backend the runtime dispatcher selected for single-stream hashing.
[[nodiscard]] Sha256Impl sha256_active_impl() noexcept;

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteView data) noexcept;
  /// Finalizes and returns the digest; the object must be reset() before reuse.
  [[nodiscard]] Hash32 finish() noexcept;

  /// One-shot fast path: pads on the stack and feeds whole blocks
  /// straight to the compression function, skipping the streaming
  /// buffer state machine.
  [[nodiscard]] static Hash32 digest(ByteView data) noexcept;

 private:
  void process_blocks(const std::uint8_t* blocks, std::size_t n) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t total_len_ = 0;
  std::size_t buffer_len_ = 0;
};

/// sha256(a || b) — common pattern for combining two hashes.
[[nodiscard]] Hash32 sha256_pair(const Hash32& a, const Hash32& b) noexcept;

/// Hashes `n` independent messages into `out[0..n)`.  Dispatches to
/// the AVX2 8-lane mode (grouping messages with equal padded block
/// counts) when that is the fastest available backend, otherwise
/// hashes each message with the best single-stream backend.
void sha256_batch(const ByteView* msgs, std::size_t n, Hash32* out);

/// Testing/benchmark hooks: force a specific backend.  Throws
/// std::runtime_error if `impl` is unavailable on this CPU.
[[nodiscard]] Hash32 sha256_digest_with(Sha256Impl impl, ByteView data);
void sha256_batch_with(Sha256Impl impl, const ByteView* msgs, std::size_t n,
                       Hash32* out);

}  // namespace bmg::crypto
