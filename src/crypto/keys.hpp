// Ergonomic key / signature wrappers over the raw Ed25519 primitives.
//
// Every on-chain actor in the reproduction — guest validators, the
// counterparty chain's validators, relayers and client accounts — is
// identified by an Ed25519 public key, exactly as on Solana.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "crypto/ed25519.hpp"

namespace bmg::crypto {

class PublicKey {
 public:
  PublicKey() = default;
  explicit PublicKey(const ed25519::PublicKeyBytes& raw) : raw_(raw) {}

  [[nodiscard]] const ed25519::PublicKeyBytes& raw() const noexcept { return raw_; }
  [[nodiscard]] ByteView view() const noexcept { return ByteView{raw_}; }
  [[nodiscard]] std::string hex() const { return to_hex(view()); }
  /// Short printable identifier (first 8 hex chars).
  [[nodiscard]] std::string short_id() const { return hex().substr(0, 8); }

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
  friend auto operator<=>(const PublicKey&, const PublicKey&) = default;

 private:
  ed25519::PublicKeyBytes raw_{};
};

struct PublicKeyHasher {
  [[nodiscard]] std::size_t operator()(const PublicKey& k) const noexcept {
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | k.raw()[static_cast<std::size_t>(i)];
    return v;
  }
};

class Signature {
 public:
  Signature() = default;
  explicit Signature(const ed25519::SignatureBytes& raw) : raw_(raw) {}

  [[nodiscard]] const ed25519::SignatureBytes& raw() const noexcept { return raw_; }
  [[nodiscard]] ByteView view() const noexcept { return ByteView{raw_}; }
  [[nodiscard]] std::string hex() const { return to_hex(view()); }

  friend bool operator==(const Signature&, const Signature&) = default;

 private:
  ed25519::SignatureBytes raw_{};
};

/// A signing key.  Holds the 32-byte seed; the public key is derived
/// once on construction.
class PrivateKey {
 public:
  /// Deterministic key for tests/simulations: seed = SHA-256(label).
  [[nodiscard]] static PrivateKey from_label(std::string_view label);
  [[nodiscard]] static PrivateKey from_seed(const ed25519::Seed& seed);

  [[nodiscard]] const PublicKey& public_key() const noexcept { return pub_; }
  [[nodiscard]] Signature sign(ByteView msg) const;

 private:
  PrivateKey() = default;

  ed25519::Seed seed_{};
  PublicKey pub_;
};

/// Verifies `sig` over `msg` under `pub`.
[[nodiscard]] bool verify(const PublicKey& pub, ByteView msg, const Signature& sig);

}  // namespace bmg::crypto
