#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/sha512.hpp"

namespace bmg::crypto::ed25519 {

namespace {

// ---------------------------------------------------------------------------
// Field arithmetic mod p = 2^255 - 19, radix-2^51 representation.
// ---------------------------------------------------------------------------

struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_from_u64(std::uint64_t x) { return Fe{{x & kMask51, x >> 51, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b with a 4p bias added limb-wise so limbs stay non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAULL * 2 - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEULL * 2 - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEULL * 2 - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEULL * 2 - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEULL * 2 - b.v[4];
  return r;
}

// Weak reduction: bring limbs below ~2^52.
Fe fe_carry(const Fe& a) {
  Fe r = a;
  std::uint64_t c;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  c = r.v[1] >> 51; r.v[1] &= kMask51; r.v[2] += c;
  c = r.v[2] >> 51; r.v[2] &= kMask51; r.v[3] += c;
  c = r.v[3] >> 51; r.v[3] &= kMask51; r.v[4] += c;
  c = r.v[4] >> 51; r.v[4] &= kMask51; r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 + (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 + (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 + (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 + (u128)a4 * b0;

  Fe r;
  std::uint64_t c;
  r.v[0] = (std::uint64_t)t0 & kMask51; c = (std::uint64_t)(t0 >> 51);
  t1 += c;
  r.v[1] = (std::uint64_t)t1 & kMask51; c = (std::uint64_t)(t1 >> 51);
  t2 += c;
  r.v[2] = (std::uint64_t)t2 & kMask51; c = (std::uint64_t)(t2 >> 51);
  t3 += c;
  r.v[3] = (std::uint64_t)t3 & kMask51; c = (std::uint64_t)(t3 >> 51);
  t4 += c;
  r.v[4] = (std::uint64_t)t4 & kMask51; c = (std::uint64_t)(t4 >> 51);
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_neg(const Fe& a) { return fe_carry(fe_sub(fe_zero(), a)); }

// Full (canonical) reduction to [0, p).
void fe_to_bytes(std::uint8_t out[32], const Fe& a) {
  // Repeated carries fully radix-normalize the limbs (each pass moves a
  // possible +1 excess one limb further; six passes guarantee all limbs
  // are <= 2^51 - 1, i.e. the value is in [0, 2^255)).
  Fe t = a;
  for (int i = 0; i < 6; ++i) t = fe_carry(t);
  // Canonicalize: value is in [0, 2^255) < 2p, so subtract p at most once.
  std::uint64_t l0 = t.v[0], l1 = t.v[1], l2 = t.v[2], l3 = t.v[3], l4 = t.v[4];
  // Canonicalize: add 19, see if >= 2^255, then subtract p accordingly.
  std::uint64_t q = (l0 + 19) >> 51;
  q = (l1 + q) >> 51;
  q = (l2 + q) >> 51;
  q = (l3 + q) >> 51;
  q = (l4 + q) >> 51;
  l0 += 19 * q;
  std::uint64_t c;
  c = l0 >> 51; l0 &= kMask51; l1 += c;
  c = l1 >> 51; l1 &= kMask51; l2 += c;
  c = l2 >> 51; l2 &= kMask51; l3 += c;
  c = l3 >> 51; l3 &= kMask51; l4 += c;
  l4 &= kMask51;

  const std::uint64_t w0 = l0 | (l1 << 51);
  const std::uint64_t w1 = (l1 >> 13) | (l2 << 38);
  const std::uint64_t w2 = (l2 >> 26) | (l3 << 25);
  const std::uint64_t w3 = (l3 >> 39) | (l4 << 12);
  for (int i = 0; i < 8; ++i) {
    out[i] = (std::uint8_t)(w0 >> (8 * i));
    out[8 + i] = (std::uint8_t)(w1 >> (8 * i));
    out[16 + i] = (std::uint8_t)(w2 >> (8 * i));
    out[24 + i] = (std::uint8_t)(w3 >> (8 * i));
  }
}

Fe fe_from_bytes(const std::uint8_t in[32]) {
  auto load64 = [&](int off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | in[off + i];
    return v;
  };
  const std::uint64_t w0 = load64(0), w1 = load64(8), w2 = load64(16), w3 = load64(24);
  Fe r;
  r.v[0] = w0 & kMask51;
  r.v[1] = ((w0 >> 51) | (w1 << 13)) & kMask51;
  r.v[2] = ((w1 >> 38) | (w2 << 26)) & kMask51;
  r.v[3] = ((w2 >> 25) | (w3 << 39)) & kMask51;
  r.v[4] = (w3 >> 12) & kMask51;  // top bit dropped (sign bit handled by caller)
  return r;
}

bool fe_is_zero(const Fe& a) {
  std::uint8_t b[32];
  fe_to_bytes(b, a);
  std::uint8_t acc = 0;
  for (int i = 0; i < 32; ++i) acc |= b[i];
  return acc == 0;
}

bool fe_eq(const Fe& a, const Fe& b) {
  std::uint8_t ba[32], bb[32];
  fe_to_bytes(ba, a);
  fe_to_bytes(bb, b);
  return std::memcmp(ba, bb, 32) == 0;
}

bool fe_is_negative(const Fe& a) {
  std::uint8_t b[32];
  fe_to_bytes(b, a);
  return (b[0] & 1) != 0;
}

// Generic exponentiation with a little-endian 255-bit exponent.
Fe fe_pow(const Fe& base, const std::uint8_t exp_le[32]) {
  Fe result = fe_one();
  Fe acc = base;
  for (int bit = 0; bit < 255; ++bit) {
    if ((exp_le[bit / 8] >> (bit % 8)) & 1) result = fe_mul(result, acc);
    acc = fe_sq(acc);
  }
  return result;
}

Fe fe_invert(const Fe& a) {
  // p - 2 = 2^255 - 21, little-endian.
  static const std::uint8_t kPm2[32] = {
      0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  return fe_pow(a, kPm2);
}

Fe fe_pow_p58(const Fe& a) {
  // (p - 5) / 8 = 2^252 - 3, little-endian.
  static const std::uint8_t kP58[32] = {
      0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f};
  return fe_pow(a, kP58);
}

const Fe& fe_d() {
  // d = -121665/121666 mod p, computed once.
  static const Fe d = [] {
    const Fe num = fe_from_u64(121665);
    const Fe den = fe_from_u64(121666);
    return fe_neg(fe_mul(num, fe_invert(den)));
  }();
  return d;
}

const Fe& fe_2d() {
  static const Fe d2 = fe_carry(fe_add(fe_d(), fe_d()));
  return d2;
}

const Fe& fe_sqrtm1() {
  // sqrt(-1) = 2^((p-1)/4); (p-1)/4 = 2^253 - 5.
  static const Fe s = [] {
    static const std::uint8_t kExp[32] = {
        0xfb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f};
    return fe_pow(fe_from_u64(2), kExp);
  }();
  return s;
}

// ---------------------------------------------------------------------------
// Group arithmetic: extended twisted-Edwards coordinates (X:Y:Z:T).
// ---------------------------------------------------------------------------

struct Ge {
  Fe x, y, z, t;
};

Ge ge_identity() { return Ge{fe_zero(), fe_one(), fe_one(), fe_zero()}; }

// add-2008-hwcd-3 for a = -1.
Ge ge_add(const Ge& p, const Ge& q) {
  const Fe a = fe_mul(fe_carry(fe_sub(p.y, p.x)), fe_carry(fe_sub(q.y, q.x)));
  const Fe b = fe_mul(fe_carry(fe_add(p.y, p.x)), fe_carry(fe_add(q.y, q.x)));
  const Fe c = fe_mul(fe_mul(p.t, fe_2d()), q.t);
  const Fe d = fe_mul(fe_carry(fe_add(p.z, p.z)), q.z);
  const Fe e = fe_carry(fe_sub(b, a));
  const Fe f = fe_carry(fe_sub(d, c));
  const Fe g = fe_carry(fe_add(d, c));
  const Fe h = fe_carry(fe_add(b, a));
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// dbl-2008-hwcd for a = -1.
Ge ge_double(const Ge& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe c = fe_carry(fe_add(fe_sq(p.z), fe_sq(p.z)));
  const Fe d = fe_neg(a);
  const Fe xy = fe_carry(fe_add(p.x, p.y));
  const Fe e = fe_carry(fe_sub(fe_carry(fe_sub(fe_sq(xy), a)), b));
  const Fe g = fe_carry(fe_add(d, b));
  const Fe f = fe_carry(fe_sub(g, c));
  const Fe h = fe_carry(fe_sub(d, b));
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_neg(const Ge& p) { return Ge{fe_neg(p.x), p.y, p.z, fe_neg(p.t)}; }

// Scalar is a 32-byte little-endian integer.
Ge ge_scalarmult(const Ge& p, const std::uint8_t scalar[32]) {
  Ge r = ge_identity();
  for (int bit = 255; bit >= 0; --bit) {
    r = ge_double(r);
    if ((scalar[bit / 8] >> (bit % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

void ge_compress(std::uint8_t out[32], const Ge& p) {
  const Fe zi = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zi);
  const Fe y = fe_mul(p.y, zi);
  fe_to_bytes(out, y);
  if (fe_is_negative(x)) out[31] |= 0x80;
}

bool ge_decompress(Ge& out, const std::uint8_t in[32]) {
  const bool x_sign = (in[31] & 0x80) != 0;
  const Fe y = fe_from_bytes(in);
  // Reject non-canonical y (>= p).  fe_from_bytes masks the sign bit, so
  // compare the canonical re-encoding with the masked input.
  std::uint8_t canon[32];
  fe_to_bytes(canon, y);
  std::uint8_t masked[32];
  std::memcpy(masked, in, 32);
  masked[31] &= 0x7f;
  if (std::memcmp(canon, masked, 32) != 0) return false;

  // x^2 = (y^2 - 1) / (d y^2 + 1)
  const Fe y2 = fe_sq(y);
  const Fe u = fe_carry(fe_sub(y2, fe_one()));
  const Fe v = fe_carry(fe_add(fe_mul(fe_d(), y2), fe_one()));
  // candidate x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow_p58(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_eq(vx2, u)) {
    if (fe_eq(vx2, fe_neg(u))) {
      x = fe_mul(x, fe_sqrtm1());
    } else {
      return false;
    }
  }
  if (fe_is_zero(x) && x_sign) return false;  // -0 is invalid
  if (fe_is_negative(x) != x_sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = fe_one();
  out.t = fe_mul(x, y);
  return true;
}

const Ge& ge_base() {
  static const Ge b = [] {
    // Compressed base point: y = 4/5, sign(x) = 0.
    static const std::uint8_t kB[32] = {
        0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
        0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
        0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66};
    Ge g;
    const bool ok = ge_decompress(g, kB);
    if (!ok) __builtin_trap();
    return g;
  }();
  return b;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// ---------------------------------------------------------------------------

struct U256 {
  std::uint64_t w[4];  // little-endian words
};

const U256 kL = {{0x5812631A5CF5D3EDULL, 0x14DEF9DEA2F79CD6ULL, 0x0000000000000000ULL,
                  0x1000000000000000ULL}};

int u256_cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] < b.w[i]) return -1;
    if (a.w[i] > b.w[i]) return 1;
  }
  return 0;
}

void u256_sub_inplace(U256& a, const U256& b) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 d =
        (unsigned __int128)a.w[i] - b.w[i] - (std::uint64_t)borrow;
    a.w[i] = (std::uint64_t)d;
    borrow = (d >> 64) & 1;
  }
}

// r = (r << 1) | bit, assuming r < L (so no overflow past 2^253).
void u256_shl1_or(U256& r, int bit) {
  std::uint64_t carry = (std::uint64_t)bit;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t next = r.w[i] >> 63;
    r.w[i] = (r.w[i] << 1) | carry;
    carry = next;
  }
}

// Reduce an arbitrary-size little-endian byte string mod L via binary
// long division.  Not fast, but simple, obviously correct, and plenty
// for simulation workloads.
U256 sc_reduce_bytes(const std::uint8_t* data, std::size_t len) {
  U256 r = {{0, 0, 0, 0}};
  for (std::size_t byte = len; byte-- > 0;) {
    for (int bit = 7; bit >= 0; --bit) {
      u256_shl1_or(r, (data[byte] >> bit) & 1);
      if (u256_cmp(r, kL) >= 0) u256_sub_inplace(r, kL);
    }
  }
  return r;
}

U256 sc_add(const U256& a, const U256& b) {
  U256 r;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 s = (unsigned __int128)a.w[i] + b.w[i] + (std::uint64_t)carry;
    r.w[i] = (std::uint64_t)s;
    carry = s >> 64;
  }
  if (u256_cmp(r, kL) >= 0) u256_sub_inplace(r, kL);
  return r;
}

U256 sc_mul(const U256& a, const U256& b) {
  // Schoolbook 256x256 -> 512, then binary reduce.
  std::uint64_t prod[8] = {};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 cur =
          (unsigned __int128)a.w[i] * b.w[j] + prod[i + j] + (std::uint64_t)carry;
      prod[i + j] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    prod[i + 4] = (std::uint64_t)carry;
  }
  std::uint8_t bytes[64];
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      bytes[i * 8 + j] = (std::uint8_t)(prod[i] >> (8 * j));
  return sc_reduce_bytes(bytes, 64);
}

void sc_to_bytes(std::uint8_t out[32], const U256& a) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      out[i * 8 + j] = (std::uint8_t)(a.w[i] >> (8 * j));
}

U256 sc_from_bytes(const std::uint8_t in[32]) {
  U256 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int j = 7; j >= 0; --j) v = (v << 8) | in[i * 8 + j];
    r.w[i] = v;
  }
  return r;
}

bool sc_is_canonical(const std::uint8_t in[32]) {
  const U256 s = sc_from_bytes(in);
  return u256_cmp(s, kL) < 0;
}

// ---------------------------------------------------------------------------

void clamp(std::uint8_t a[32]) {
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
}

Digest512 hash3(ByteView a, ByteView b, ByteView c) {
  Sha512 h;
  h.update(a);
  h.update(b);
  h.update(c);
  return h.finish();
}

}  // namespace

PublicKeyBytes derive_public(const Seed& seed) {
  Digest512 h = Sha512::digest(ByteView{seed.data(), seed.size()});
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);
  const Ge A = ge_scalarmult(ge_base(), a);
  PublicKeyBytes out;
  ge_compress(out.data(), A);
  return out;
}

SignatureBytes sign(const Seed& seed, ByteView msg) {
  Digest512 h = Sha512::digest(ByteView{seed.data(), seed.size()});
  std::uint8_t a_bytes[32];
  std::memcpy(a_bytes, h.data(), 32);
  clamp(a_bytes);
  const ByteView prefix{h.data() + 32, 32};

  const PublicKeyBytes pub = derive_public(seed);

  // r = SHA512(prefix || msg) mod L
  const Digest512 rh = hash3(prefix, msg, {});
  const U256 r = sc_reduce_bytes(rh.data(), rh.size());
  std::uint8_t r_bytes[32];
  sc_to_bytes(r_bytes, r);

  const Ge R = ge_scalarmult(ge_base(), r_bytes);
  SignatureBytes sig{};
  ge_compress(sig.data(), R);

  // k = SHA512(R || A || msg) mod L
  const Digest512 kh =
      hash3(ByteView{sig.data(), 32}, ByteView{pub.data(), pub.size()}, msg);
  const U256 k = sc_reduce_bytes(kh.data(), kh.size());

  // S = (r + k * a) mod L
  const U256 a = sc_reduce_bytes(a_bytes, 32);
  const U256 s = sc_add(r, sc_mul(k, a));
  sc_to_bytes(sig.data() + 32, s);
  return sig;
}

bool verify(const PublicKeyBytes& pub, ByteView msg, const SignatureBytes& sig) {
  if (!sc_is_canonical(sig.data() + 32)) return false;

  Ge A;
  if (!ge_decompress(A, pub.data())) return false;
  Ge R;
  if (!ge_decompress(R, sig.data())) return false;

  const Digest512 kh = hash3(ByteView{sig.data(), 32}, ByteView{pub.data(), pub.size()}, msg);
  const U256 k = sc_reduce_bytes(kh.data(), kh.size());
  std::uint8_t k_bytes[32];
  sc_to_bytes(k_bytes, k);

  // Check [S]B == R + [k]A  <=>  [S]B + [k](-A) == R.
  const Ge sB = ge_scalarmult(ge_base(), sig.data() + 32);
  const Ge kA = ge_scalarmult(ge_neg(A), k_bytes);
  const Ge lhs = ge_add(sB, kA);

  std::uint8_t lhs_bytes[32];
  ge_compress(lhs_bytes, lhs);
  return std::memcmp(lhs_bytes, sig.data(), 32) == 0;
}

}  // namespace bmg::crypto::ed25519
