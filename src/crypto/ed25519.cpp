#include "crypto/ed25519.hpp"

#include <cstring>

#include "common/parallel.hpp"
#include "crypto/sha512.hpp"

namespace bmg::crypto::ed25519 {

namespace {

// ---------------------------------------------------------------------------
// Field arithmetic mod p = 2^255 - 19, radix-2^51 representation.
// ---------------------------------------------------------------------------

struct Fe {
  std::uint64_t v[5];
};

constexpr std::uint64_t kMask51 = (1ULL << 51) - 1;

Fe fe_zero() { return Fe{{0, 0, 0, 0, 0}}; }
Fe fe_one() { return Fe{{1, 0, 0, 0, 0}}; }

Fe fe_from_u64(std::uint64_t x) { return Fe{{x & kMask51, x >> 51, 0, 0, 0}}; }

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

// a - b with a 4p bias added limb-wise so limbs stay non-negative.
Fe fe_sub(const Fe& a, const Fe& b) {
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAULL * 2 - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEULL * 2 - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEULL * 2 - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEULL * 2 - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEULL * 2 - b.v[4];
  return r;
}

// Weak reduction: bring limbs below ~2^52.
Fe fe_carry(const Fe& a) {
  Fe r = a;
  std::uint64_t c;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  c = r.v[1] >> 51; r.v[1] &= kMask51; r.v[2] += c;
  c = r.v[2] >> 51; r.v[2] &= kMask51; r.v[3] += c;
  c = r.v[3] >> 51; r.v[3] &= kMask51; r.v[4] += c;
  c = r.v[4] >> 51; r.v[4] &= kMask51; r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  using u128 = unsigned __int128;
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 + (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 + (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 + (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 + (u128)a4 * b0;

  Fe r;
  std::uint64_t c;
  r.v[0] = (std::uint64_t)t0 & kMask51; c = (std::uint64_t)(t0 >> 51);
  t1 += c;
  r.v[1] = (std::uint64_t)t1 & kMask51; c = (std::uint64_t)(t1 >> 51);
  t2 += c;
  r.v[2] = (std::uint64_t)t2 & kMask51; c = (std::uint64_t)(t2 >> 51);
  t3 += c;
  r.v[3] = (std::uint64_t)t3 & kMask51; c = (std::uint64_t)(t3 >> 51);
  t4 += c;
  r.v[4] = (std::uint64_t)t4 & kMask51; c = (std::uint64_t)(t4 >> 51);
  r.v[0] += c * 19;
  c = r.v[0] >> 51; r.v[0] &= kMask51; r.v[1] += c;
  return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

Fe fe_neg(const Fe& a) { return fe_carry(fe_sub(fe_zero(), a)); }

// Full (canonical) reduction to [0, p).
void fe_to_bytes(std::uint8_t out[32], const Fe& a) {
  // Repeated carries fully radix-normalize the limbs (each pass moves a
  // possible +1 excess one limb further; six passes guarantee all limbs
  // are <= 2^51 - 1, i.e. the value is in [0, 2^255)).
  Fe t = a;
  for (int i = 0; i < 6; ++i) t = fe_carry(t);
  // Canonicalize: value is in [0, 2^255) < 2p, so subtract p at most once.
  std::uint64_t l0 = t.v[0], l1 = t.v[1], l2 = t.v[2], l3 = t.v[3], l4 = t.v[4];
  // Canonicalize: add 19, see if >= 2^255, then subtract p accordingly.
  std::uint64_t q = (l0 + 19) >> 51;
  q = (l1 + q) >> 51;
  q = (l2 + q) >> 51;
  q = (l3 + q) >> 51;
  q = (l4 + q) >> 51;
  l0 += 19 * q;
  std::uint64_t c;
  c = l0 >> 51; l0 &= kMask51; l1 += c;
  c = l1 >> 51; l1 &= kMask51; l2 += c;
  c = l2 >> 51; l2 &= kMask51; l3 += c;
  c = l3 >> 51; l3 &= kMask51; l4 += c;
  l4 &= kMask51;

  const std::uint64_t w0 = l0 | (l1 << 51);
  const std::uint64_t w1 = (l1 >> 13) | (l2 << 38);
  const std::uint64_t w2 = (l2 >> 26) | (l3 << 25);
  const std::uint64_t w3 = (l3 >> 39) | (l4 << 12);
  for (int i = 0; i < 8; ++i) {
    out[i] = (std::uint8_t)(w0 >> (8 * i));
    out[8 + i] = (std::uint8_t)(w1 >> (8 * i));
    out[16 + i] = (std::uint8_t)(w2 >> (8 * i));
    out[24 + i] = (std::uint8_t)(w3 >> (8 * i));
  }
}

Fe fe_from_bytes(const std::uint8_t in[32]) {
  auto load64 = [&](int off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | in[off + i];
    return v;
  };
  const std::uint64_t w0 = load64(0), w1 = load64(8), w2 = load64(16), w3 = load64(24);
  Fe r;
  r.v[0] = w0 & kMask51;
  r.v[1] = ((w0 >> 51) | (w1 << 13)) & kMask51;
  r.v[2] = ((w1 >> 38) | (w2 << 26)) & kMask51;
  r.v[3] = ((w2 >> 25) | (w3 << 39)) & kMask51;
  r.v[4] = (w3 >> 12) & kMask51;  // top bit dropped (sign bit handled by caller)
  return r;
}

bool fe_is_zero(const Fe& a) {
  std::uint8_t b[32];
  fe_to_bytes(b, a);
  std::uint8_t acc = 0;
  for (int i = 0; i < 32; ++i) acc |= b[i];
  return acc == 0;
}

bool fe_eq(const Fe& a, const Fe& b) {
  std::uint8_t ba[32], bb[32];
  fe_to_bytes(ba, a);
  fe_to_bytes(bb, b);
  return std::memcmp(ba, bb, 32) == 0;
}

bool fe_is_negative(const Fe& a) {
  std::uint8_t b[32];
  fe_to_bytes(b, a);
  return (b[0] & 1) != 0;
}

// Generic exponentiation with a little-endian 255-bit exponent.
Fe fe_pow(const Fe& base, const std::uint8_t exp_le[32]) {
  Fe result = fe_one();
  Fe acc = base;
  for (int bit = 0; bit < 255; ++bit) {
    if ((exp_le[bit / 8] >> (bit % 8)) & 1) result = fe_mul(result, acc);
    acc = fe_sq(acc);
  }
  return result;
}

Fe fe_sqn(Fe a, int n) {
  for (int i = 0; i < n; ++i) a = fe_sq(a);
  return a;
}

// Shared prefix of the two exponentiation chains below (the classic
// curve25519 addition chain): computes a^(2^250 - 1) and a^11.
void fe_pow_ladder(const Fe& a, Fe& pow250m1, Fe& a11) {
  const Fe a2 = fe_sq(a);                                // a^2
  const Fe a9 = fe_mul(a, fe_sqn(a2, 2));                // a^9
  a11 = fe_mul(a9, a2);                                  // a^11
  const Fe p5 = fe_mul(fe_sq(a11), a9);                  // a^(2^5 - 1)
  const Fe p10 = fe_mul(fe_sqn(p5, 5), p5);              // a^(2^10 - 1)
  const Fe p20 = fe_mul(fe_sqn(p10, 10), p10);           // a^(2^20 - 1)
  const Fe p40 = fe_mul(fe_sqn(p20, 20), p20);           // a^(2^40 - 1)
  const Fe p50 = fe_mul(fe_sqn(p40, 10), p10);           // a^(2^50 - 1)
  const Fe p100 = fe_mul(fe_sqn(p50, 50), p50);          // a^(2^100 - 1)
  const Fe p200 = fe_mul(fe_sqn(p100, 100), p100);       // a^(2^200 - 1)
  pow250m1 = fe_mul(fe_sqn(p200, 50), p50);              // a^(2^250 - 1)
}

// a^(p - 2) = a^(2^255 - 21) — ~254 squarings + 12 multiplications,
// roughly half the cost of the generic square-and-multiply ladder.
Fe fe_invert(const Fe& a) {
  Fe p250, a11;
  fe_pow_ladder(a, p250, a11);
  return fe_mul(fe_sqn(p250, 5), a11);  // (2^250-1)*2^5 + 11 = 2^255 - 21
}

// a^((p - 5) / 8) = a^(2^252 - 3), used for the decompression sqrt.
Fe fe_pow_p58(const Fe& a) {
  Fe p250, a11;
  fe_pow_ladder(a, p250, a11);
  return fe_mul(fe_sqn(p250, 2), a);  // (2^250-1)*2^2 + 1 = 2^252 - 3
}

const Fe& fe_d() {
  // d = -121665/121666 mod p, computed once.
  static const Fe d = [] {
    const Fe num = fe_from_u64(121665);
    const Fe den = fe_from_u64(121666);
    return fe_neg(fe_mul(num, fe_invert(den)));
  }();
  return d;
}

const Fe& fe_2d() {
  static const Fe d2 = fe_carry(fe_add(fe_d(), fe_d()));
  return d2;
}

const Fe& fe_sqrtm1() {
  // sqrt(-1) = 2^((p-1)/4); (p-1)/4 = 2^253 - 5.
  static const Fe s = [] {
    static const std::uint8_t kExp[32] = {
        0xfb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f};
    return fe_pow(fe_from_u64(2), kExp);
  }();
  return s;
}

// ---------------------------------------------------------------------------
// Group arithmetic: extended twisted-Edwards coordinates (X:Y:Z:T).
// ---------------------------------------------------------------------------

struct Ge {
  Fe x, y, z, t;
};

Ge ge_identity() { return Ge{fe_zero(), fe_one(), fe_one(), fe_zero()}; }

// dbl-2008-hwcd for a = -1.
Ge ge_double(const Ge& p) {
  const Fe a = fe_sq(p.x);
  const Fe b = fe_sq(p.y);
  const Fe c = fe_carry(fe_add(fe_sq(p.z), fe_sq(p.z)));
  const Fe d = fe_neg(a);
  const Fe xy = fe_carry(fe_add(p.x, p.y));
  const Fe e = fe_carry(fe_sub(fe_carry(fe_sub(fe_sq(xy), a)), b));
  const Fe g = fe_carry(fe_add(d, b));
  const Fe f = fe_carry(fe_sub(g, c));
  const Fe h = fe_carry(fe_sub(d, b));
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_neg(const Ge& p) { return Ge{fe_neg(p.x), p.y, p.z, fe_neg(p.t)}; }

bool ge_is_identity(const Ge& p) { return fe_is_zero(p.x) && fe_eq(p.y, p.z); }

// A point prepared for repeated addition: (Y+X, Y-X, Z, 2dT).  Saves
// two field additions and the 2d multiplication on every ge_add.
struct GeCached {
  Fe y_plus_x, y_minus_x, z, t2d;
};

GeCached ge_cache(const Ge& p) {
  return GeCached{fe_carry(fe_add(p.y, p.x)), fe_carry(fe_sub(p.y, p.x)), p.z,
                  fe_mul(p.t, fe_2d())};
}

Ge ge_add_cached(const Ge& p, const GeCached& q) {
  const Fe a = fe_mul(fe_carry(fe_sub(p.y, p.x)), q.y_minus_x);
  const Fe b = fe_mul(fe_carry(fe_add(p.y, p.x)), q.y_plus_x);
  const Fe c = fe_mul(p.t, q.t2d);
  const Fe d = fe_mul(fe_carry(fe_add(p.z, p.z)), q.z);
  const Fe e = fe_carry(fe_sub(b, a));
  const Fe f = fe_carry(fe_sub(d, c));
  const Fe g = fe_carry(fe_add(d, c));
  const Fe h = fe_carry(fe_add(b, a));
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// p - q: addition with q negated, i.e. (Y+X, Y-X) swapped and 2dT sign
// flipped (which turns F = D - C, G = D + C into F = D + C, G = D - C).
Ge ge_sub_cached(const Ge& p, const GeCached& q) {
  const Fe a = fe_mul(fe_carry(fe_sub(p.y, p.x)), q.y_plus_x);
  const Fe b = fe_mul(fe_carry(fe_add(p.y, p.x)), q.y_minus_x);
  const Fe c = fe_mul(p.t, q.t2d);
  const Fe d = fe_mul(fe_carry(fe_add(p.z, p.z)), q.z);
  const Fe e = fe_carry(fe_sub(b, a));
  const Fe f = fe_carry(fe_add(d, c));
  const Fe g = fe_carry(fe_sub(d, c));
  const Fe h = fe_carry(fe_add(b, a));
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// An affine precomputed point (Z = 1 implicit): (y+x, y-x, 2dxy).
// Mixed addition against these drops one field multiplication (no Z2).
struct GePrecomp {
  Fe y_plus_x, y_minus_x, xy2d;
};

Ge ge_add_precomp(const Ge& p, const GePrecomp& q) {
  const Fe a = fe_mul(fe_carry(fe_sub(p.y, p.x)), q.y_minus_x);
  const Fe b = fe_mul(fe_carry(fe_add(p.y, p.x)), q.y_plus_x);
  const Fe c = fe_mul(p.t, q.xy2d);
  const Fe d = fe_carry(fe_add(p.z, p.z));
  const Fe e = fe_carry(fe_sub(b, a));
  const Fe f = fe_carry(fe_sub(d, c));
  const Fe g = fe_carry(fe_add(d, c));
  const Fe h = fe_carry(fe_add(b, a));
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

Ge ge_sub_precomp(const Ge& p, const GePrecomp& q) {
  const Fe a = fe_mul(fe_carry(fe_sub(p.y, p.x)), q.y_plus_x);
  const Fe b = fe_mul(fe_carry(fe_add(p.y, p.x)), q.y_minus_x);
  const Fe c = fe_mul(p.t, q.xy2d);
  const Fe d = fe_carry(fe_add(p.z, p.z));
  const Fe e = fe_carry(fe_sub(b, a));
  const Fe f = fe_carry(fe_add(d, c));
  const Fe g = fe_carry(fe_sub(d, c));
  const Fe h = fe_carry(fe_add(b, a));
  return Ge{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

void ge_compress(std::uint8_t out[32], const Ge& p) {
  const Fe zi = fe_invert(p.z);
  const Fe x = fe_mul(p.x, zi);
  const Fe y = fe_mul(p.y, zi);
  fe_to_bytes(out, y);
  if (fe_is_negative(x)) out[31] |= 0x80;
}

bool ge_decompress(Ge& out, const std::uint8_t in[32]) {
  const bool x_sign = (in[31] & 0x80) != 0;
  const Fe y = fe_from_bytes(in);
  // Reject non-canonical y (>= p).  fe_from_bytes masks the sign bit, so
  // compare the canonical re-encoding with the masked input.
  std::uint8_t canon[32];
  fe_to_bytes(canon, y);
  std::uint8_t masked[32];
  std::memcpy(masked, in, 32);
  masked[31] &= 0x7f;
  if (std::memcmp(canon, masked, 32) != 0) return false;

  // x^2 = (y^2 - 1) / (d y^2 + 1)
  const Fe y2 = fe_sq(y);
  const Fe u = fe_carry(fe_sub(y2, fe_one()));
  const Fe v = fe_carry(fe_add(fe_mul(fe_d(), y2), fe_one()));
  // candidate x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow_p58(fe_mul(u, v7)));

  const Fe vx2 = fe_mul(v, fe_sq(x));
  if (!fe_eq(vx2, u)) {
    if (fe_eq(vx2, fe_neg(u))) {
      x = fe_mul(x, fe_sqrtm1());
    } else {
      return false;
    }
  }
  if (fe_is_zero(x) && x_sign) return false;  // -0 is invalid
  if (fe_is_negative(x) != x_sign) x = fe_neg(x);

  out.x = x;
  out.y = y;
  out.z = fe_one();
  out.t = fe_mul(x, y);
  return true;
}

const Ge& ge_base() {
  static const Ge b = [] {
    // Compressed base point: y = 4/5, sign(x) = 0.
    static const std::uint8_t kB[32] = {
        0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
        0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
        0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66};
    Ge g;
    const bool ok = ge_decompress(g, kB);
    if (!ok) __builtin_trap();
    return g;
  }();
  return b;
}

// ---------------------------------------------------------------------------
// Windowed-NAF scalar recoding and precomputed tables.
//
// All scalar multiplications here are variable-time, as the seed's
// double-and-add ladder already was; the simulation's threat model has
// no timing side channel.
// ---------------------------------------------------------------------------

// Digits of the dynamic (per-point) window: odd, |digit| <= 15 (w = 5).
constexpr int kWindowDyn = 5;
// Digits of the static base-point window: odd, |digit| <= 63 (w = 7).
constexpr int kWindowBase = 7;
constexpr int kBaseTableSize = 1 << (kWindowBase - 2);  // odd multiples 1B..63B

// Signed sliding-window recoding of a little-endian scalar (< 2^253):
// r[0..256] with r[i] zero or odd, |r[i]| < 2^(w-1), and
// sum r[i] 2^i == scalar.
void slide(signed char* r, const std::uint8_t a[32], int w) {
  for (int i = 0; i < 256; ++i) r[i] = 1 & (a[i >> 3] >> (i & 7));
  r[256] = 0;
  const int bound = 1 << (w - 1);
  for (int i = 0; i < 256; ++i) {
    if (!r[i]) continue;
    for (int b = 1; b < w && i + b <= 256; ++b) {
      if (!r[i + b]) continue;
      if (r[i] + (r[i + b] << b) <= bound - 1) {
        r[i] += static_cast<signed char>(r[i + b] << b);
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -(bound - 1)) {
        r[i] -= static_cast<signed char>(r[i + b] << b);
        // Borrowed a subtraction: carry +1 upward.
        for (int k = i + b; k <= 256; ++k) {
          if (!r[k]) {
            r[k] = 1;
            break;
          }
          r[k] = 0;
        }
      } else {
        break;
      }
    }
  }
}

// Odd multiples {P, 3P, 5P, ..., 15P} in cached form, for w = 5 wNAF.
struct DynTable {
  GeCached mult[8];
};

DynTable ge_dyn_table(const Ge& p) {
  DynTable t;
  t.mult[0] = ge_cache(p);
  const Ge p2 = ge_double(p);
  for (int i = 1; i < 8; ++i) t.mult[i] = ge_cache(ge_add_cached(p2, t.mult[i - 1]));
  return t;
}

// Odd multiples {B, 3B, ..., 63B} of the base point in affine form,
// built once (Montgomery batch inversion turns 32 Z-inversions into 1).
struct BaseTable {
  GePrecomp mult[kBaseTableSize];
};

const BaseTable& base_table() {
  static const BaseTable table = [] {
    Ge pts[kBaseTableSize];
    pts[0] = ge_base();
    const Ge b2 = ge_double(ge_base());
    const GeCached b2c = ge_cache(b2);
    for (int i = 1; i < kBaseTableSize; ++i) pts[i] = ge_add_cached(pts[i - 1], b2c);

    Fe prefix[kBaseTableSize];  // prefix[i] = z_0 * ... * z_i
    prefix[0] = pts[0].z;
    for (int i = 1; i < kBaseTableSize; ++i) prefix[i] = fe_mul(prefix[i - 1], pts[i].z);
    Fe inv = fe_invert(prefix[kBaseTableSize - 1]);

    BaseTable t;
    for (int i = kBaseTableSize - 1; i >= 0; --i) {
      const Fe zi = i == 0 ? inv : fe_mul(inv, prefix[i - 1]);
      inv = fe_mul(inv, pts[i].z);
      const Fe x = fe_mul(pts[i].x, zi);
      const Fe y = fe_mul(pts[i].y, zi);
      t.mult[i] = GePrecomp{fe_carry(fe_add(y, x)), fe_carry(fe_sub(y, x)),
                            fe_mul(fe_mul(x, y), fe_2d())};
    }
    return t;
  }();
  return table;
}

// r = [scalar]B via the static base table (w = 7 wNAF: ~253 doublings
// plus ~36 mixed additions, versus 256 doublings + ~128 additions for
// the plain ladder this replaces).
Ge ge_scalarmult_base(const std::uint8_t scalar[32]) {
  signed char naf[257];
  slide(naf, scalar, kWindowBase);
  const BaseTable& bt = base_table();
  int i = 256;
  while (i >= 0 && !naf[i]) --i;
  Ge r = ge_identity();
  for (; i >= 0; --i) {
    r = ge_double(r);
    if (naf[i] > 0) r = ge_add_precomp(r, bt.mult[naf[i] >> 1]);
    else if (naf[i] < 0) r = ge_sub_precomp(r, bt.mult[(-naf[i]) >> 1]);
  }
  return r;
}

// r = [a]A + [b]B (Straus/Shamir: one shared doubling chain).
Ge ge_double_scalarmult(const std::uint8_t a[32], const Ge& A, const std::uint8_t b[32]) {
  signed char anaf[257], bnaf[257];
  slide(anaf, a, kWindowDyn);
  slide(bnaf, b, kWindowBase);
  const DynTable at = ge_dyn_table(A);
  const BaseTable& bt = base_table();
  int i = 256;
  while (i >= 0 && !anaf[i] && !bnaf[i]) --i;
  Ge r = ge_identity();
  for (; i >= 0; --i) {
    r = ge_double(r);
    if (anaf[i] > 0) r = ge_add_cached(r, at.mult[anaf[i] >> 1]);
    else if (anaf[i] < 0) r = ge_sub_cached(r, at.mult[(-anaf[i]) >> 1]);
    if (bnaf[i] > 0) r = ge_add_precomp(r, bt.mult[bnaf[i] >> 1]);
    else if (bnaf[i] < 0) r = ge_sub_precomp(r, bt.mult[(-bnaf[i]) >> 1]);
  }
  return r;
}

// r = [base_scalar]B + sum [scalars[j]]points[j] — generalized Straus
// for batch verification.  One doubling chain regardless of how many
// points are combined.
struct MsmEntry {
  Ge point;
  std::uint8_t scalar[32];
};

Ge ge_multi_scalarmult(const std::uint8_t base_scalar[32],
                       const std::vector<MsmEntry>& entries) {
  const std::size_t n = entries.size();
  // Reused per thread: one MSM runs per batch-verify shard, and the
  // working set (NAF digits + per-point tables) would otherwise be two
  // fresh heap blocks per call.
  thread_local std::vector<std::array<signed char, 257>> nafs;
  thread_local std::vector<DynTable> tables;
  nafs.assign(n, {});
  tables.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    slide(nafs[j].data(), entries[j].scalar, kWindowDyn);
    tables[j] = ge_dyn_table(entries[j].point);
  }
  signed char bnaf[257];
  slide(bnaf, base_scalar, kWindowBase);
  const BaseTable& bt = base_table();

  int i = 256;
  for (; i >= 0; --i) {
    if (bnaf[i]) break;
    bool any = false;
    for (std::size_t j = 0; j < n && !any; ++j) any = nafs[j][static_cast<std::size_t>(i)] != 0;
    if (any) break;
  }
  Ge r = ge_identity();
  for (; i >= 0; --i) {
    r = ge_double(r);
    for (std::size_t j = 0; j < n; ++j) {
      const signed char d = nafs[j][static_cast<std::size_t>(i)];
      if (d > 0) r = ge_add_cached(r, tables[j].mult[d >> 1]);
      else if (d < 0) r = ge_sub_cached(r, tables[j].mult[(-d) >> 1]);
    }
    if (bnaf[i] > 0) r = ge_add_precomp(r, bt.mult[bnaf[i] >> 1]);
    else if (bnaf[i] < 0) r = ge_sub_precomp(r, bt.mult[(-bnaf[i]) >> 1]);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod L = 2^252 + 27742317777372353535851937790883648493.
// ---------------------------------------------------------------------------

struct U256 {
  std::uint64_t w[4];  // little-endian words
};

const U256 kL = {{0x5812631A5CF5D3EDULL, 0x14DEF9DEA2F79CD6ULL, 0x0000000000000000ULL,
                  0x1000000000000000ULL}};

int u256_cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] < b.w[i]) return -1;
    if (a.w[i] > b.w[i]) return 1;
  }
  return 0;
}

void u256_sub_inplace(U256& a, const U256& b) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 d =
        (unsigned __int128)a.w[i] - b.w[i] - (std::uint64_t)borrow;
    a.w[i] = (std::uint64_t)d;
    borrow = (d >> 64) & 1;
  }
}

// r = (r << 1) | bit, assuming r < L (so no overflow past 2^253).
void u256_shl1_or(U256& r, int bit) {
  std::uint64_t carry = (std::uint64_t)bit;
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t next = r.w[i] >> 63;
    r.w[i] = (r.w[i] << 1) | carry;
    carry = next;
  }
}

// Reduce an arbitrary-size little-endian byte string mod L via binary
// long division.  Slow (one shift/compare/subtract per bit) — kept as
// the fallback for odd lengths and to bootstrap the Montgomery
// constants below.
U256 sc_reduce_bytes_slow(const std::uint8_t* data, std::size_t len) {
  U256 r = {{0, 0, 0, 0}};
  for (std::size_t byte = len; byte-- > 0;) {
    for (int bit = 7; bit >= 0; --bit) {
      u256_shl1_or(r, (data[byte] >> bit) & 1);
      if (u256_cmp(r, kL) >= 0) u256_sub_inplace(r, kL);
    }
  }
  return r;
}

U256 u256_load(const std::uint8_t* p) {
  U256 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t w = 0;
    for (int j = 7; j >= 0; --j)
      w = (w << 8) | p[static_cast<std::size_t>(i * 8 + j)];
    r.w[i] = w;
  }
  return r;
}

U256 sc_add(const U256& a, const U256& b);

// ---------------------------------------------------------------------------
// Montgomery arithmetic mod L with R = 2^256.  The hot scalar ops —
// the k = SHA512(...) reduction in every verify and the z_i products
// of batch verification — each needed a 512-iteration binary division
// before; one CIOS pass is ~32 word multiplies instead.
// ---------------------------------------------------------------------------

// -L^{-1} mod 2^64, by Newton iteration (doubles correct bits, and any
// odd x is its own inverse mod 8, so five rounds reach 64 bits).
std::uint64_t mont_n0() {
  static const std::uint64_t n0 = [] {
    std::uint64_t x = kL.w[0];
    for (int i = 0; i < 5; ++i) x *= 2 - kL.w[0] * x;
    return ~x + 1;
  }();
  return n0;
}

// R^2 mod L = 2^512 mod L, bootstrapped once through the slow reducer.
const U256& mont_r2() {
  static const U256 r2 = [] {
    std::uint8_t n[65] = {};
    n[64] = 1;
    return sc_reduce_bytes_slow(n, 65);
  }();
  return r2;
}

// CIOS Montgomery product: a * b * R^{-1} mod L.  Requires b < L and
// a < 2^256 (the intermediate then stays below 2L, so one conditional
// subtraction canonicalises).
U256 mont_mul(const U256& a, const U256& b) {
  std::uint64_t t[6] = {};
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 cur =
          (unsigned __int128)a.w[i] * b.w[j] + t[j] + (std::uint64_t)carry;
      t[j] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    unsigned __int128 top = (unsigned __int128)t[4] + (std::uint64_t)carry;
    t[4] = (std::uint64_t)top;
    t[5] = (std::uint64_t)(top >> 64);

    const std::uint64_t m = t[0] * mont_n0();
    carry = ((unsigned __int128)m * kL.w[0] + t[0]) >> 64;
    for (int j = 1; j < 4; ++j) {
      const unsigned __int128 cur =
          (unsigned __int128)m * kL.w[j] + t[j] + (std::uint64_t)carry;
      t[j - 1] = (std::uint64_t)cur;
      carry = cur >> 64;
    }
    top = (unsigned __int128)t[4] + (std::uint64_t)carry;
    t[3] = (std::uint64_t)top;
    t[4] = t[5] + (std::uint64_t)(top >> 64);
  }
  U256 r = {{t[0], t[1], t[2], t[3]}};
  if (t[4] != 0 || u256_cmp(r, kL) >= 0) u256_sub_inplace(r, kL);
  return r;
}

const U256 kOne = {{1, 0, 0, 0}};

U256 sc_reduce_bytes(const std::uint8_t* data, std::size_t len) {
  if (len == 32) {
    // Value < 2^256 < 16L: a handful of conditional subtractions.
    U256 r = u256_load(data);
    while (u256_cmp(r, kL) >= 0) u256_sub_inplace(r, kL);
    return r;
  }
  if (len == 64) {
    // N = hi*R + lo, so N*R^{-1} = hi + lo*R^{-1}; one more Montgomery
    // product by R^2 multiplies the R back in.
    const U256 lo = u256_load(data);
    U256 hi = u256_load(data + 32);
    while (u256_cmp(hi, kL) >= 0) u256_sub_inplace(hi, kL);
    const U256 u = sc_add(hi, mont_mul(lo, kOne));
    return mont_mul(u, mont_r2());
  }
  return sc_reduce_bytes_slow(data, len);
}

U256 sc_add(const U256& a, const U256& b) {
  U256 r;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 s = (unsigned __int128)a.w[i] + b.w[i] + (std::uint64_t)carry;
    r.w[i] = (std::uint64_t)s;
    carry = s >> 64;
  }
  if (u256_cmp(r, kL) >= 0) u256_sub_inplace(r, kL);
  return r;
}

U256 sc_mul(const U256& a, const U256& b) {
  // Two CIOS passes: abR^{-1}, then multiply the R back in via R^2.
  return mont_mul(mont_mul(a, b), mont_r2());
}

void sc_to_bytes(std::uint8_t out[32], const U256& a) {
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      out[i * 8 + j] = (std::uint8_t)(a.w[i] >> (8 * j));
}

U256 sc_from_bytes(const std::uint8_t in[32]) {
  U256 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int j = 7; j >= 0; --j) v = (v << 8) | in[i * 8 + j];
    r.w[i] = v;
  }
  return r;
}

bool sc_is_canonical(const std::uint8_t in[32]) {
  const U256 s = sc_from_bytes(in);
  return u256_cmp(s, kL) < 0;
}

// ---------------------------------------------------------------------------

void clamp(std::uint8_t a[32]) {
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
}

Digest512 hash3(ByteView a, ByteView b, ByteView c) {
  Sha512 h;
  h.update(a);
  h.update(b);
  h.update(c);
  return h.finish();
}

}  // namespace

PublicKeyBytes derive_public(const Seed& seed) {
  Digest512 h = Sha512::digest(ByteView{seed.data(), seed.size()});
  std::uint8_t a[32];
  std::memcpy(a, h.data(), 32);
  clamp(a);
  const Ge A = ge_scalarmult_base(a);
  PublicKeyBytes out;
  ge_compress(out.data(), A);
  return out;
}

SignatureBytes sign(const Seed& seed, ByteView msg) {
  Digest512 h = Sha512::digest(ByteView{seed.data(), seed.size()});
  std::uint8_t a_bytes[32];
  std::memcpy(a_bytes, h.data(), 32);
  clamp(a_bytes);
  const ByteView prefix{h.data() + 32, 32};

  const PublicKeyBytes pub = derive_public(seed);

  // r = SHA512(prefix || msg) mod L
  const Digest512 rh = hash3(prefix, msg, {});
  const U256 r = sc_reduce_bytes(rh.data(), rh.size());
  std::uint8_t r_bytes[32];
  sc_to_bytes(r_bytes, r);

  const Ge R = ge_scalarmult_base(r_bytes);
  SignatureBytes sig{};
  ge_compress(sig.data(), R);

  // k = SHA512(R || A || msg) mod L
  const Digest512 kh =
      hash3(ByteView{sig.data(), 32}, ByteView{pub.data(), pub.size()}, msg);
  const U256 k = sc_reduce_bytes(kh.data(), kh.size());

  // S = (r + k * a) mod L
  const U256 a = sc_reduce_bytes(a_bytes, 32);
  const U256 s = sc_add(r, sc_mul(k, a));
  sc_to_bytes(sig.data() + 32, s);
  return sig;
}

namespace {

// Everything `verify` rejects before touching the curve equation, plus
// the decoded values the equation needs.  Shared by the single and
// batched paths so both enforce identical rules.
struct DecodedSig {
  Ge A;       // the public key
  Ge R;       // the signature's commitment point
  U256 k;     // SHA512(R || A || msg) mod L
  U256 s;     // the signature scalar
};

bool decode_for_verify(const PublicKeyBytes& pub, ByteView msg, const SignatureBytes& sig,
                       DecodedSig& out) {
  if (!sc_is_canonical(sig.data() + 32)) return false;
  if (!ge_decompress(out.A, pub.data())) return false;
  if (!ge_decompress(out.R, sig.data())) return false;
  const Digest512 kh =
      hash3(ByteView{sig.data(), 32}, ByteView{pub.data(), pub.size()}, msg);
  out.k = sc_reduce_bytes(kh.data(), kh.size());
  out.s = sc_from_bytes(sig.data() + 32);
  return true;
}

// The cofactorless check [S]B == R + [k]A, given decoded inputs.
bool check_equation(const DecodedSig& d, const std::uint8_t* r_bytes) {
  std::uint8_t k_bytes[32], s_bytes[32];
  sc_to_bytes(k_bytes, d.k);
  sc_to_bytes(s_bytes, d.s);
  // [S]B + [k](-A) must compress back to the signature's R bytes.  R
  // decompressed canonically, so byte equality == point equality.
  const Ge lhs = ge_double_scalarmult(k_bytes, ge_neg(d.A), s_bytes);
  std::uint8_t lhs_bytes[32];
  ge_compress(lhs_bytes, lhs);
  return std::memcmp(lhs_bytes, r_bytes, 32) == 0;
}

}  // namespace

bool verify(const PublicKeyBytes& pub, ByteView msg, const SignatureBytes& sig) {
  DecodedSig d;
  if (!decode_for_verify(pub, msg, sig, d)) return false;
  return check_equation(d, sig.data());
}

namespace {

/// The random-linear-combination batch check over one contiguous run
/// of items, writing 0/1 verdicts into `ok[0..items.size())`.  This is
/// the whole pre-executor verify_batch body; the public entry point
/// shards large batches into independent runs of this.  A run's
/// verdicts equal per-item `verify` results whether the combined
/// equation passes (all candidates valid) or fails (per-item
/// fallback), so the bitmap does not depend on where run boundaries
/// fall.
void verify_batch_range(std::span<const VerifyItem> items, std::uint8_t* ok) {
  for (std::size_t i = 0; i < items.size(); ++i) ok[i] = 0;
  if (items.empty()) return;

  // Pre-checks: canonical S, canonical point encodings, k derivation.
  // Items failing here are definitively invalid and excluded from the
  // combined equation.
  struct Candidate {
    std::size_t idx;
    DecodedSig d;
  };
  thread_local std::vector<Candidate> cand;
  cand.clear();
  cand.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    DecodedSig d;
    if (decode_for_verify(items[i].pub, items[i].msg, items[i].sig, d))
      cand.push_back({i, d});
  }
  if (cand.empty()) return;
  if (cand.size() == 1) {
    ok[cand[0].idx] = check_equation(cand[0].d, items[cand[0].idx].sig.data()) ? 1 : 0;
    return;
  }

  // Fiat–Shamir coefficients: z_i = 128 bits of SHA512(transcript, i).
  // The transcript binds every key, signature and message (k already
  // hashes the message), so an adversary cannot pick signatures as a
  // function of the z they will be combined with.
  Sha512 transcript;
  static constexpr const char kDomain[] = "bmg/ed25519/batch/v1";
  transcript.update(
      ByteView{reinterpret_cast<const std::uint8_t*>(kDomain), sizeof(kDomain) - 1});
  for (const Candidate& c : cand) {
    transcript.update(ByteView{items[c.idx].pub.data(), 32});
    transcript.update(ByteView{items[c.idx].sig.data(), 64});
    std::uint8_t k_bytes[32];
    sc_to_bytes(k_bytes, c.d.k);
    transcript.update(ByteView{k_bytes, 32});
  }
  const Digest512 root = transcript.finish();

  // Combined equation: [sum z_i S_i]B + sum [z_i](-R_i) + sum [z_i k_i](-A_i)
  // must be the identity.
  U256 b_comb = {{0, 0, 0, 0}};
  thread_local std::vector<MsmEntry> entries;
  entries.clear();
  entries.reserve(cand.size() * 2);
  for (std::size_t j = 0; j < cand.size(); ++j) {
    Sha512 zh;
    zh.update(ByteView{root.data(), root.size()});
    std::uint8_t j_le[8];
    for (int b = 0; b < 8; ++b) j_le[b] = static_cast<std::uint8_t>(j >> (8 * b));
    zh.update(ByteView{j_le, 8});
    const Digest512 zd = zh.finish();
    std::uint8_t z_bytes[32] = {};
    std::memcpy(z_bytes, zd.data(), 16);  // 128-bit coefficients suffice
    bool all_zero = true;
    for (int b = 0; b < 16; ++b) all_zero = all_zero && z_bytes[b] == 0;
    if (all_zero) z_bytes[0] = 1;
    const U256 z = sc_from_bytes(z_bytes);

    const DecodedSig& d = cand[j].d;
    b_comb = sc_add(b_comb, sc_mul(z, d.s));
    MsmEntry er;
    er.point = ge_neg(d.R);
    sc_to_bytes(er.scalar, z);
    entries.push_back(er);
    MsmEntry ea;
    ea.point = ge_neg(d.A);
    sc_to_bytes(ea.scalar, sc_mul(z, d.k));
    entries.push_back(ea);
  }
  std::uint8_t b_bytes[32];
  sc_to_bytes(b_bytes, b_comb);
  if (ge_is_identity(ge_multi_scalarmult(b_bytes, entries))) {
    for (const Candidate& c : cand) ok[c.idx] = 1;
    return;
  }

  // At least one signature is bad: fall back to per-item verification
  // so the caller learns which.
  for (const Candidate& c : cand)
    ok[c.idx] = check_equation(c.d, items[c.idx].sig.data()) ? 1 : 0;
}

/// Below this, one combined equation on one core beats the fork-join
/// dispatch plus the per-shard doubling chains.
constexpr std::size_t kParallelVerifyMin = 16;

}  // namespace

std::vector<bool> verify_batch(std::span<const VerifyItem> items) {
  const std::size_t n = items.size();
  // Shards write disjoint byte ranges of `flags` (vector<bool> is
  // bit-packed and would race); the final conversion is index-ordered.
  std::vector<std::uint8_t> flags(n, 0);
  if (n < kParallelVerifyMin) {
    verify_batch_range(items, flags.data());
  } else {
    // Static contiguous shards, each running the full RLC batch check
    // with its per-shard fallback preserved.  With one thread the
    // executor runs a single shard inline — the exact serial path.
    parallel::parallel_for(n, kParallelVerifyMin,
                           [&](std::size_t begin, std::size_t end, std::size_t) {
                             verify_batch_range(items.subspan(begin, end - begin),
                                                flags.data() + begin);
                           });
  }
  std::vector<bool> ok(n);
  for (std::size_t i = 0; i < n; ++i) ok[i] = flags[i] != 0;
  return ok;
}

}  // namespace bmg::crypto::ed25519
