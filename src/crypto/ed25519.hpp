// Ed25519 (RFC 8032) implemented from scratch: curve25519 field and
// group arithmetic plus scalar arithmetic mod the group order L.
//
// Real signatures matter for this reproduction: the paper's costs and
// latencies hinge on *how many* signatures must be produced/verified
// and how expensive verification is inside the host runtime's compute
// budget.  Tested against the RFC 8032 test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"

namespace bmg::crypto::ed25519 {

using Seed = std::array<std::uint8_t, 32>;
using PublicKeyBytes = std::array<std::uint8_t, 32>;
using SignatureBytes = std::array<std::uint8_t, 64>;

/// Derives the public key for a 32-byte seed (RFC 8032 §5.1.5).
[[nodiscard]] PublicKeyBytes derive_public(const Seed& seed);

/// Signs `msg` with the given seed (RFC 8032 §5.1.6).
[[nodiscard]] SignatureBytes sign(const Seed& seed, ByteView msg);

/// Verifies a signature (RFC 8032 §5.1.7, cofactorless, strict S < L).
[[nodiscard]] bool verify(const PublicKeyBytes& pub, ByteView msg, const SignatureBytes& sig);

/// One signature of a batch; `msg` must stay alive for the call.
struct VerifyItem {
  PublicKeyBytes pub;
  ByteView msg;
  SignatureBytes sig;
};

/// Batch verification of many (pub, msg, sig) triples at once.
///
/// The fast path checks one random-linear-combination equation
///   [sum z_i S_i] B  ==  sum [z_i] R_i + sum [z_i k_i] A_i
/// with per-item 128-bit coefficients z_i derived Fiat–Shamir style
/// from the batch itself, sharing a single doubling chain across every
/// point (Straus).  If the combined check fails, each item is
/// re-verified individually so callers still learn *which* signature
/// is bad.  Accepts exactly the signatures `verify` accepts (same
/// canonical-S, canonical-encoding and cofactorless-equation rules).
[[nodiscard]] std::vector<bool> verify_batch(std::span<const VerifyItem> items);

}  // namespace bmg::crypto::ed25519
