// Ed25519 (RFC 8032) implemented from scratch: curve25519 field and
// group arithmetic plus scalar arithmetic mod the group order L.
//
// Real signatures matter for this reproduction: the paper's costs and
// latencies hinge on *how many* signatures must be produced/verified
// and how expensive verification is inside the host runtime's compute
// budget.  Tested against the RFC 8032 test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace bmg::crypto::ed25519 {

using Seed = std::array<std::uint8_t, 32>;
using PublicKeyBytes = std::array<std::uint8_t, 32>;
using SignatureBytes = std::array<std::uint8_t, 64>;

/// Derives the public key for a 32-byte seed (RFC 8032 §5.1.5).
[[nodiscard]] PublicKeyBytes derive_public(const Seed& seed);

/// Signs `msg` with the given seed (RFC 8032 §5.1.6).
[[nodiscard]] SignatureBytes sign(const Seed& seed, ByteView msg);

/// Verifies a signature (RFC 8032 §5.1.7, cofactorless, strict S < L).
[[nodiscard]] bool verify(const PublicKeyBytes& pub, ByteView msg, const SignatureBytes& sig);

}  // namespace bmg::crypto::ed25519
