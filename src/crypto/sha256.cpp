#include "crypto/sha256.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "crypto/sha256_impl.hpp"

namespace bmg::crypto {

namespace {

std::uint32_t rotr(std::uint32_t x, int n) noexcept { return (x >> n) | (x << (32 - n)); }

using CompressFn = void (*)(std::uint32_t*, const std::uint8_t*, std::size_t);

/// Resolved once per process: the fastest single-stream compression.
CompressFn resolve_compress() noexcept {
  if (detail::cpu_has_sha_ni()) return &detail::compress_shani;
  return &detail::compress_scalar;
}

CompressFn active_compress() noexcept {
  static const CompressFn fn = resolve_compress();
  return fn;
}

void store_be32(std::uint8_t* out, std::uint32_t v) noexcept {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

Hash32 state_to_hash(const std::uint32_t state[8]) noexcept {
  Hash32 out;
  for (std::size_t i = 0; i < 8; ++i) store_be32(&out.bytes[i * 4], state[i]);
  return out;
}

/// Padded length in 64-byte blocks of an n-byte message.
std::size_t padded_blocks(std::size_t n) noexcept { return (n + 1 + 8 + 63) / 64; }

/// One-shot digest through a specific compression function: whole
/// blocks go straight from the input, the tail is padded on the stack.
Hash32 oneshot(CompressFn compress, ByteView data) noexcept {
  std::uint32_t state[8];
  std::copy(std::begin(detail::kSha256Init), std::end(detail::kSha256Init), state);

  const std::size_t full = data.size() / 64;
  if (full > 0) compress(state, data.data(), full);

  std::uint8_t tail[128] = {};
  const std::size_t rem = data.size() - full * 64;
  if (rem > 0) std::memcpy(tail, data.data() + full * 64, rem);
  tail[rem] = 0x80;
  const std::size_t tail_blocks = (rem + 1 + 8 <= 64) ? 1 : 2;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i)
    tail[tail_blocks * 64 - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  compress(state, tail, tail_blocks);
  return state_to_hash(state);
}

/// Writes the fully padded form of `msg` into `out` (padded_blocks(msg)*64 bytes).
void pad_into(std::uint8_t* out, ByteView msg) noexcept {
  const std::size_t blocks = padded_blocks(msg.size());
  if (!msg.empty()) std::memcpy(out, msg.data(), msg.size());
  std::memset(out + msg.size(), 0, blocks * 64 - msg.size());
  out[msg.size()] = 0x80;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(msg.size()) * 8;
  for (int i = 0; i < 8; ++i)
    out[blocks * 64 - 8 + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
}

/// Hashes a group of messages that all pad to `nblocks` blocks using
/// the AVX2 8-lane kernel; `idx` holds their positions in the batch.
void batch_avx2_group(const ByteView* msgs, Hash32* out, const std::uint32_t* idx,
                      std::size_t count, std::size_t nblocks,
                      std::vector<std::uint8_t>& scratch) {
  scratch.resize(8 * nblocks * 64);
  std::size_t done = 0;
  while (count - done >= 8) {
    const std::uint8_t* lanes[8];
    for (std::size_t l = 0; l < 8; ++l) {
      std::uint8_t* slot = scratch.data() + l * nblocks * 64;
      pad_into(slot, msgs[idx[done + l]]);
      lanes[l] = slot;
    }
    Hash32 digests[8];
    detail::sha256_avx2_x8(lanes, nblocks, digests);
    for (std::size_t l = 0; l < 8; ++l) out[idx[done + l]] = digests[l];
    done += 8;
  }
  for (; done < count; ++done) out[idx[done]] = Sha256::digest(msgs[idx[done]]);
}

/// Batch via AVX2 lanes: group messages by padded block count so each
/// 8-lane dispatch runs equal-length lanes.
void batch_avx2(const ByteView* msgs, std::size_t n, Hash32* out) {
  // Sort indices by block count (counting via a small map of buckets).
  std::vector<std::uint32_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
  std::sort(idx.begin(), idx.end(), [&](std::uint32_t a, std::uint32_t b) {
    return padded_blocks(msgs[a].size()) < padded_blocks(msgs[b].size());
  });
  std::vector<std::uint8_t> scratch;
  std::size_t start = 0;
  while (start < n) {
    const std::size_t nblocks = padded_blocks(msgs[idx[start]].size());
    std::size_t end = start + 1;
    while (end < n && padded_blocks(msgs[idx[end]].size()) == nblocks) ++end;
    batch_avx2_group(msgs, out, idx.data() + start, end - start, nblocks, scratch);
    start = end;
  }
}

enum class BatchPolicy { kSerial, kAvx2 };

/// SHA-NI single-stream beats 8-lane AVX2 on cores that have it (≈2-4x
/// lower cycles/byte), so multi-lane batching only pays when the CPU
/// lacks the SHA extensions.
BatchPolicy resolve_batch_policy() noexcept {
  if (!detail::cpu_has_sha_ni() && detail::cpu_has_avx2()) return BatchPolicy::kAvx2;
  return BatchPolicy::kSerial;
}

BatchPolicy active_batch_policy() noexcept {
  static const BatchPolicy p = resolve_batch_policy();
  return p;
}

}  // namespace

bool sha256_impl_available(Sha256Impl impl) noexcept {
  switch (impl) {
    case Sha256Impl::kScalar:
      return true;
    case Sha256Impl::kShaNi:
      return detail::cpu_has_sha_ni();
    case Sha256Impl::kAvx2:
      return detail::cpu_has_avx2();
  }
  return false;
}

Sha256Impl sha256_active_impl() noexcept {
  return active_compress() == &detail::compress_shani ? Sha256Impl::kShaNi
                                                      : Sha256Impl::kScalar;
}

void Sha256::reset() noexcept {
  std::copy(std::begin(detail::kSha256Init), std::end(detail::kSha256Init),
            state_.begin());
  total_len_ = 0;
  buffer_len_ = 0;
}

void Sha256::process_blocks(const std::uint8_t* blocks, std::size_t n) noexcept {
  active_compress()(state_.data(), blocks, n);
}

void Sha256::update(ByteView data) noexcept {
  total_len_ += data.size();
  std::size_t pos = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::copy(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(take),
              buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_len_));
    buffer_len_ += take;
    pos = take;
    if (buffer_len_ == 64) {
      process_blocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  const std::size_t full = (data.size() - pos) / 64;
  if (full > 0) {
    process_blocks(data.data() + pos, full);
    pos += full * 64;
  }
  if (pos < data.size()) {
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(pos), data.end(), buffer_.begin());
    buffer_len_ = data.size() - pos;
  }
}

Hash32 Sha256::finish() noexcept {
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  update(ByteView{pad, pad_len});
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i)
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  // update() would re-count the length bytes; feed them directly.
  total_len_ -= pad_len;  // undo the pad length accounting (irrelevant now)
  std::copy(len_bytes, len_bytes + 8, buffer_.begin() + static_cast<std::ptrdiff_t>(buffer_len_));
  process_blocks(buffer_.data(), 1);
  return state_to_hash(state_.data());
}

Hash32 Sha256::digest(ByteView data) noexcept {
  return oneshot(active_compress(), data);
}

Hash32 sha256_pair(const Hash32& a, const Hash32& b) noexcept {
  std::uint8_t buf[64];
  std::memcpy(buf, a.bytes.data(), 32);
  std::memcpy(buf + 32, b.bytes.data(), 32);
  return Sha256::digest(ByteView{buf, 64});
}

namespace {

/// Hashes msgs[begin..end) into out[begin..end) with the dispatched
/// single-process policy — the pre-executor sha256_batch body.
void batch_range(const ByteView* msgs, std::size_t begin, std::size_t end,
                 Hash32* out) {
  const std::size_t n = end - begin;
  if (n >= 8 && active_batch_policy() == BatchPolicy::kAvx2) {
    batch_avx2(msgs + begin, n, out + begin);
    return;
  }
  for (std::size_t i = begin; i < end; ++i) out[i] = Sha256::digest(msgs[i]);
}

/// Below this the fork-join dispatch overhead dwarfs the hashing.
constexpr std::size_t kParallelBatchMin = 64;

}  // namespace

void sha256_batch(const ByteView* msgs, std::size_t n, Hash32* out) {
  // Each message's digest depends only on its own bytes, so sharding
  // the batch across workers is byte-identical to the serial loop for
  // any thread count.  Small batches, threads == 1, and calls from
  // inside a parallel region (e.g. the trie's sharded commit) take the
  // serial path inside parallel_for.
  if (n < kParallelBatchMin) {
    batch_range(msgs, 0, n, out);
    return;
  }
  parallel::parallel_for(n, kParallelBatchMin,
                         [&](std::size_t begin, std::size_t end, std::size_t) {
                           batch_range(msgs, begin, end, out);
                         });
}

Hash32 sha256_digest_with(Sha256Impl impl, ByteView data) {
  if (!sha256_impl_available(impl))
    throw std::runtime_error("sha256: backend unavailable on this CPU");
  switch (impl) {
    case Sha256Impl::kScalar:
      return oneshot(&detail::compress_scalar, data);
    case Sha256Impl::kShaNi:
      return oneshot(&detail::compress_shani, data);
    case Sha256Impl::kAvx2: {
      // Single-stream via the 8-lane kernel: replicate across lanes.
      const std::size_t nblocks = padded_blocks(data.size());
      std::vector<std::uint8_t> padded(nblocks * 64);
      pad_into(padded.data(), data);
      const std::uint8_t* lanes[8];
      for (auto& lane : lanes) lane = padded.data();
      Hash32 digests[8];
      detail::sha256_avx2_x8(lanes, nblocks, digests);
      return digests[0];
    }
  }
  throw std::runtime_error("sha256: unknown backend");
}

void sha256_batch_with(Sha256Impl impl, const ByteView* msgs, std::size_t n,
                       Hash32* out) {
  if (!sha256_impl_available(impl))
    throw std::runtime_error("sha256: backend unavailable on this CPU");
  if (impl == Sha256Impl::kAvx2) {
    batch_avx2(msgs, n, out);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = sha256_digest_with(impl, msgs[i]);
}

namespace detail {

void compress_scalar(std::uint32_t state[8], const std::uint8_t* blocks,
                     std::size_t n) noexcept {
  for (std::size_t blk = 0; blk < n; ++blk) {
    const std::uint8_t* block = blocks + blk * 64;
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = static_cast<std::uint32_t>(block[i * 4]) << 24 |
             static_cast<std::uint32_t>(block[i * 4 + 1]) << 16 |
             static_cast<std::uint32_t>(block[i * 4 + 2]) << 8 |
             static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kSha256Round[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

}  // namespace detail

}  // namespace bmg::crypto
