// Deterministic random number generation for simulations.
//
// We implement xoshiro256** plus our own variate transforms (Box-Muller
// normal, inverse-CDF exponential) instead of <random> distributions so
// that streams are bit-identical across standard libraries — every
// evaluation harness prints its seed and is exactly reproducible.
#pragma once

#include <cstdint>

namespace bmg {

/// Deterministically derives the state seed of independent stream
/// `stream` of base `seed` (two splitmix64 rounds over the pair).
/// This is how grid runners split one user-facing seed into per-cell
/// streams: a cell's stream is a pure function of (seed, grid index),
/// so its transcript is identical whether the cell runs serially,
/// sharded, or alone — and unrelated to every sibling cell's stream.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// The generator for stream `stream` of base `seed`; exactly
  /// Rng(stream_seed(seed, stream)).  Unlike fork(), splitting is
  /// stateless: it neither draws from nor perturbs any existing
  /// generator, so grid cells can derive their streams in any order
  /// (or concurrently) and always get the same sequences.
  [[nodiscard]] static Rng split(std::uint64_t seed, std::uint64_t stream) noexcept {
    return Rng(stream_seed(seed, stream));
  }

  /// Uniform 64-bit value.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (caches the second variate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with given mean / stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Exponential with the given mean (inverse CDF).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto with scale xm and shape alpha.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Bernoulli with probability p.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Derives an independent child stream (for per-agent RNGs).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bmg
