#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bmg::parallel {

namespace {

/// Workers beyond this are wasted on every path we shard (quorum
/// batches top out at a few hundred signatures).
constexpr std::size_t kMaxThreads = 64;

thread_local bool t_in_region = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("BMG_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0)
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, kMaxThreads);
}

/// One fork-join dispatch: a fixed shard partition plus completion
/// accounting.  Participants pull shard indices from `next`; which
/// thread runs which shard is the *only* scheduling freedom, and
/// shard bodies neither observe nor depend on it.
struct Job {
  const ShardFn* fn = nullptr;
  std::size_t n = 0;
  std::size_t shard_size = 0;
  std::size_t num_shards = 0;
  std::atomic<std::size_t> next{0};
  /// Pool threads that have drained the queue and will not touch this
  /// Job again.  run() returns only once every pool thread retired, so
  /// the stack-allocated Job cannot be used after free.
  std::size_t retired = 0;
  std::vector<std::exception_ptr> errors;  // indexed by shard

  void run_shard(std::size_t s) noexcept {
    const std::size_t begin = s * shard_size;
    const std::size_t end = std::min(begin + shard_size, n);
    try {
      (*fn)(begin, end, s);
    } catch (...) {
      errors[s] = std::current_exception();
    }
  }

  void drain() noexcept {
    t_in_region = true;
    for (std::size_t s = next.fetch_add(1); s < num_shards; s = next.fetch_add(1))
      run_shard(s);
    t_in_region = false;
  }
};

/// The process-wide pool.  Workers park on a condition variable and
/// wake per dispatch; the submitting thread participates in the job,
/// so `threads` counts it too (threads == 1 → zero pool threads).
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t threads() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    ensure_started_locked();
    return threads_;
  }

  void set_threads(std::size_t n) {
    std::lock_guard<std::mutex> submit(submit_mutex_);  // not during a dispatch
    std::lock_guard<std::mutex> lock(config_mutex_);
    stop_workers_locked();
    threads_ = n == 0 ? default_thread_count() : std::min(n, kMaxThreads);
    started_ = true;
    spawn_workers_locked();
  }

  void run(Job& job) {
    // One dispatch at a time: concurrent submitters (none of the wired
    // paths create any, but user code may) queue here rather than
    // corrupting the single job slot.
    std::lock_guard<std::mutex> submit(submit_mutex_);
    std::size_t helpers;
    {
      std::lock_guard<std::mutex> lock(config_mutex_);
      ensure_started_locked();
      helpers = workers_.size();
    }
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      job_ = &job;
      ++generation_;
    }
    job_cv_.notify_all();

    // The submitter works the same shard queue as the pool threads.
    job.drain();

    // Every pool thread must retire from this dispatch before the Job
    // leaves scope.  A retired thread has finished any shard it
    // claimed, so full retirement implies all shards completed; the
    // mutex handshake makes their writes visible here.
    std::unique_lock<std::mutex> lock(job_mutex_);
    done_cv_.wait(lock, [&] { return job.retired == helpers; });
    job_ = nullptr;
  }

 private:
  Pool() = default;
  ~Pool() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    stop_workers_locked();
  }

  void ensure_started_locked() {
    if (started_) return;
    threads_ = default_thread_count();
    started_ = true;
    spawn_workers_locked();
  }

  void spawn_workers_locked() {
    stopping_ = false;
    for (std::size_t i = 0; i + 1 < threads_; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers_locked() {
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      stopping_ = true;
      ++generation_;
    }
    job_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(job_mutex_);
        job_cv_.wait(lock, [&] { return generation_ != seen || stopping_; });
        if (stopping_) return;
        seen = generation_;
        job = job_;
      }
      // job_ is nullptr only for a generation this thread was not part
      // of (spawned after it was dispatched); nothing to do then.
      if (job != nullptr) job->drain();
      {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (job != nullptr) ++job->retired;
      }
      done_cv_.notify_all();
    }
  }

  std::mutex submit_mutex_;
  std::mutex config_mutex_;
  bool started_ = false;
  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace

std::size_t thread_count() { return Pool::instance().threads(); }

void set_thread_count(std::size_t n) { Pool::instance().set_threads(n); }

bool in_parallel_region() noexcept { return t_in_region; }

SerialRegion::SerialRegion() noexcept : prev_(t_in_region) { t_in_region = true; }

SerialRegion::~SerialRegion() { t_in_region = prev_; }

void parallel_for(std::size_t n, std::size_t min_per_shard, const ShardFn& fn) {
  if (n == 0) return;
  if (min_per_shard == 0) min_per_shard = 1;

  // Serial path: one thread, too little work to split, or a nested
  // call from inside a shard (which serializes by design).  Runs the
  // body inline — with threads == 1 this is the exact pre-executor
  // code path, no pool machinery involved.
  const std::size_t threads = t_in_region ? 1 : thread_count();
  const std::size_t max_shards =
      std::min(threads, (n + min_per_shard - 1) / min_per_shard);
  if (max_shards <= 1) {
    const bool prev = t_in_region;
    t_in_region = true;
    try {
      fn(0, n, 0);
    } catch (...) {
      t_in_region = prev;
      throw;
    }
    t_in_region = prev;
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.shard_size = (n + max_shards - 1) / max_shards;
  job.num_shards = (n + job.shard_size - 1) / job.shard_size;
  job.errors.resize(job.num_shards);
  Pool::instance().run(job);

  // Deterministic error propagation: lowest shard index wins.
  for (const std::exception_ptr& e : job.errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace bmg::parallel
