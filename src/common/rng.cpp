#include "common/rng.hpp"

#include <cmath>

namespace bmg {

namespace {
// splitmix64, used for seeding xoshiro state from a single 64-bit seed.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

constexpr double kPi = 3.14159265358979323846;
}  // namespace

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the seed, fold the stream index into the advanced state, mix
  // again, then a final avalanche round: adjacent (seed, stream)
  // pairs land in unrelated regions of the seeding space.  Stateless
  // and order-independent by construction.
  std::uint64_t x = seed;
  std::uint64_t h = splitmix64(x);
  x += stream;
  h ^= splitmix64(x);
  std::uint64_t y = h;
  return splitmix64(y);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - ~0ULL % n;
  std::uint64_t v;
  do {
    v = next();
  } while (v >= limit);
  return v % n;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(2.0 * kPi * u2);
  has_cached_normal_ = true;
  return r * std::cos(2.0 * kPi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::pareto(double xm, double alpha) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept { return Rng(next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace bmg
