#include "common/base58.hpp"

#include <algorithm>
#include <stdexcept>

namespace bmg {

namespace {
constexpr char kAlphabet[] = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

int digit_of(char c) {
  const char* pos = std::char_traits<char>::find(kAlphabet, 58, c);
  return pos == nullptr ? -1 : static_cast<int>(pos - kAlphabet);
}
}  // namespace

std::string base58_encode(ByteView data) {
  // Count leading zeros: each encodes as '1'.
  std::size_t zeros = 0;
  while (zeros < data.size() && data[zeros] == 0) ++zeros;

  // Big-number base conversion, 256 -> 58.
  std::vector<std::uint8_t> digits;  // base-58 digits, least significant first
  for (std::size_t i = zeros; i < data.size(); ++i) {
    std::uint32_t carry = data[i];
    for (auto& d : digits) {
      carry += static_cast<std::uint32_t>(d) << 8;
      d = static_cast<std::uint8_t>(carry % 58);
      carry /= 58;
    }
    while (carry > 0) {
      digits.push_back(static_cast<std::uint8_t>(carry % 58));
      carry /= 58;
    }
  }

  std::string out(zeros, '1');
  for (auto it = digits.rbegin(); it != digits.rend(); ++it)
    out.push_back(kAlphabet[*it]);
  return out;
}

Bytes base58_decode(std::string_view text) {
  std::size_t ones = 0;
  while (ones < text.size() && text[ones] == '1') ++ones;

  std::vector<std::uint8_t> bytes;  // base-256 digits, least significant first
  for (std::size_t i = ones; i < text.size(); ++i) {
    const int d = digit_of(text[i]);
    if (d < 0) throw std::invalid_argument("base58: invalid character");
    std::uint32_t carry = static_cast<std::uint32_t>(d);
    for (auto& b : bytes) {
      carry += static_cast<std::uint32_t>(b) * 58;
      b = static_cast<std::uint8_t>(carry);
      carry >>= 8;
    }
    while (carry > 0) {
      bytes.push_back(static_cast<std::uint8_t>(carry));
      carry >>= 8;
    }
  }

  Bytes out(ones, 0);
  out.insert(out.end(), bytes.rbegin(), bytes.rend());
  return out;
}

}  // namespace bmg
