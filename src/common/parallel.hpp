// Deterministic fork-join executor.
//
// The guest chain's two CPU-bound hot paths — stake-weighted Ed25519
// quorum verification and sealable-trie root recomputation — are both
// embarrassingly parallel *within* one call, but every public result
// (root hashes, verify bitmaps, bench CSVs) must stay byte-identical
// for any thread count: the chaos suite, the seed figures and the
// empty-FaultPlan identity check all diff raw output.
//
// The executor guarantees that by construction:
//
//   * static index-range sharding — [0, n) is split into contiguous
//     shards; which *worker* executes a shard never influences what
//     the shard computes or where it writes,
//   * index-ordered reduction — shard s writes only indices in
//     [begin_s, end_s), so the merged output is the concatenation in
//     index order regardless of completion order,
//   * `threads == 1` runs the loop inline on the calling thread with
//     no pool machinery at all — the exact serial code path.
//
// The worker pool is process-wide and fixed-size.  Its size comes
// from the BMG_THREADS environment variable (unset/0 → hardware
// concurrency); tests may reconfigure it with set_thread_count().
// Nested fork-join (parallel_for from inside a shard) is *supported
// by serialization*: the nested call runs its shards inline on the
// calling worker, so composed parallel code (e.g. the trie commit
// calling the batch SHA-256 API) stays deadlock-free and
// deterministic without a shard-count explosion.
#pragma once

#include <cstddef>
#include <functional>

namespace bmg::parallel {

/// A shard body: process indices [begin, end).  `shard` is the shard's
/// position in the static partition (0-based) — useful for indexing
/// per-shard scratch space.
using ShardFn = std::function<void(std::size_t begin, std::size_t end, std::size_t shard)>;

/// Number of threads the executor will use (>= 1).  First call reads
/// BMG_THREADS and builds the pool.
[[nodiscard]] std::size_t thread_count();

/// Reconfigures the pool to exactly `n` threads (0 → re-read the
/// BMG_THREADS/hardware default).  Joins existing workers first; must
/// not be called from inside a parallel region.  Intended for tests
/// and the scenario runner's CLI override.
void set_thread_count(std::size_t n);

/// True while the calling thread is executing a shard body (a nested
/// parallel_for would serialize).
[[nodiscard]] bool in_parallel_region() noexcept;

/// RAII: marks the calling thread as inside a parallel region, so any
/// parallel_for issued while the guard lives runs its body inline on
/// this thread (the exact serial path).  The shard pool wraps every
/// whole-simulation cell in one of these: cells are the scaling axis,
/// and W cells funnelling their intra-block kernels through the single
/// fork-join dispatch slot would serialize anyway — pinning a cell's
/// kernels to its own worker also keeps its working set on one core.
/// Guards may nest (restores the previous state on destruction).
class SerialRegion {
 public:
  SerialRegion() noexcept;
  ~SerialRegion();
  SerialRegion(const SerialRegion&) = delete;
  SerialRegion& operator=(const SerialRegion&) = delete;

 private:
  bool prev_;
};

/// Runs `fn` over [0, n) split into at most thread_count() contiguous
/// shards of at least `min_per_shard` indices each.  Blocks until all
/// shards finish.  If any shard throws, the exception from the
/// *lowest-indexed* failing shard is rethrown (deterministic error
/// propagation); remaining shards still run to completion.
///
/// The shard partition depends only on (n, min_per_shard,
/// thread_count()) — never on scheduling — and shards write disjoint
/// index ranges, so output is byte-identical across runs.  With one
/// thread, n == 0, or a single shard, `fn(0, n, 0)` runs inline.
void parallel_for(std::size_t n, std::size_t min_per_shard, const ShardFn& fn);

}  // namespace bmg::parallel
