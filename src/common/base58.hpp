// Base58 encoding (Bitcoin/Solana alphabet).
//
// Host-chain account keys are Ed25519 public keys; Solana tooling
// displays them base58-encoded.  Used for human-readable identifiers
// in examples and logs.
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace bmg {

/// Encodes `data` in base58 (leading zero bytes become '1's).
[[nodiscard]] std::string base58_encode(ByteView data);

/// Decodes base58; throws std::invalid_argument on bad characters.
[[nodiscard]] Bytes base58_decode(std::string_view text);

}  // namespace bmg
