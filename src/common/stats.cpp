#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bmg {

void Series::ensure_sorted() const {
  if (!sorted_valid_ || sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Series::min() const {
  if (empty()) throw std::logic_error("Series::min on empty series");
  ensure_sorted();
  return sorted_.front();
}

double Series::max() const {
  if (empty()) throw std::logic_error("Series::max on empty series");
  ensure_sorted();
  return sorted_.back();
}

double Series::mean() const {
  if (empty()) throw std::logic_error("Series::mean on empty series");
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Series::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Series::quantile(double q) const {
  if (empty()) throw std::logic_error("Series::quantile on empty series");
  ensure_sorted();
  if (q <= 0) return sorted_.front();
  if (q >= 1) return sorted_.back();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1 - frac) + sorted_[lo + 1] * frac;
}

double Series::cdf_at(double x) const {
  if (empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("pearson: need two equally-long series, n >= 2");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double num = 0, dx = 0, dy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  if (dx == 0 || dy == 0) return 0.0;
  return num / std::sqrt(dx * dy);
}

std::string render_cdf(const Series& s, int points, const std::string& x_label) {
  std::string out = "  " + x_label + "        CDF\n";
  char line[128];
  for (int i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / points;
    std::snprintf(line, sizeof line, "  %10.3f  %6.4f\n", s.quantile(q), q);
    out += line;
  }
  return out;
}

std::string render_histogram(const Series& s, int bins, const std::string& x_label) {
  if (s.empty()) return "  (no samples)\n";
  const double lo = s.min();
  const double hi = s.max();
  const double width = (hi - lo) / bins > 0 ? (hi - lo) / bins : 1.0;
  std::vector<std::size_t> counts(static_cast<std::size_t>(bins), 0);
  for (double v : s.samples()) {
    auto b = static_cast<std::size_t>((v - lo) / width);
    if (b >= counts.size()) b = counts.size() - 1;
    ++counts[b];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  std::string out = "  " + x_label + " histogram (" + std::to_string(s.count()) + " samples)\n";
  char line[192];
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double left = lo + width * static_cast<double>(b);
    const int bar = peak == 0 ? 0 : static_cast<int>(50.0 * static_cast<double>(counts[b]) /
                                                     static_cast<double>(peak));
    std::snprintf(line, sizeof line, "  [%10.3f, %10.3f) %7zu |%s\n", left, left + width,
                  counts[b], std::string(static_cast<std::size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

std::string render_quantile_row(const Series& s) {
  char line[256];
  std::snprintf(line, sizeof line, "%8.1f %8.1f %8.1f %8.1f %10.1f %8.1f %9.1f", s.min(),
                s.quantile(0.25), s.quantile(0.5), s.quantile(0.75), s.max(), s.mean(),
                s.stddev());
  return line;
}

}  // namespace bmg
