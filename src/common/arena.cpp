#include "common/arena.hpp"

#include <algorithm>
#include <cstring>

namespace bmg {

namespace {
// Aligns relative to the chunk's actual base address: operator new[]
// only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__, so for larger
// alignments the in-chunk offset alone is not enough.
[[nodiscard]] std::size_t aligned_offset(const std::uint8_t* base,
                                         std::size_t used,
                                         std::size_t align) noexcept {
  const auto addr = reinterpret_cast<std::uintptr_t>(base) + used;
  return used + static_cast<std::size_t>((-addr) & (align - 1));
}
}  // namespace

void Arena::ensure_room(std::size_t n, std::size_t align) {
  // Try the chunks we already own (reset() keeps them around).
  while (active_ < chunks_.size()) {
    const Chunk& c = chunks_[active_];
    if (aligned_offset(c.data.get(), chunk_used_, align) + n <= c.size) return;
    ++active_;
    chunk_used_ = 0;
  }
  // align - 1 slack covers the worst-case base misalignment of the
  // fresh chunk.
  std::size_t want = std::max(next_chunk_bytes_, n + align - 1);
  chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(want), want});
  // Geometric growth caps the number of chunks (and heap calls) at
  // O(log total) for any workload.
  next_chunk_bytes_ = next_chunk_bytes_ * 2;
  active_ = chunks_.size() - 1;
  chunk_used_ = 0;
}

void* Arena::allocate(std::size_t n, std::size_t align) {
  ensure_room(n, align);
  Chunk& c = chunks_[active_];
  const std::size_t at = aligned_offset(c.data.get(), chunk_used_, align);
  chunk_used_ = at + n;
  return c.data.get() + at;
}

std::uint8_t* Arena::grow(std::uint8_t* p, std::size_t old_size,
                          std::size_t new_size) {
  if (new_size <= old_size) return p;
  if (active_ < chunks_.size()) {
    Chunk& c = chunks_[active_];
    // In-place extension: p must be the latest allocation, i.e. end
    // exactly at the bump pointer of the active chunk.
    if (p + old_size == c.data.get() + chunk_used_ &&
        (static_cast<std::size_t>(p - c.data.get()) + new_size) <= c.size) {
      chunk_used_ += new_size - old_size;
      return p;
    }
  }
  auto* fresh = alloc_bytes(new_size);
  if (old_size != 0) std::memcpy(fresh, p, old_size);
  return fresh;
}

void Arena::reset() noexcept {
  active_ = 0;
  chunk_used_ = 0;
}

void Arena::rewind(Mark m) noexcept {
  active_ = m.chunk;
  chunk_used_ = m.used;
}

std::size_t Arena::bytes_used() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < active_ && i < chunks_.size(); ++i)
    n += chunks_[i].size;
  return n + chunk_used_;
}

std::size_t Arena::bytes_reserved() const noexcept {
  std::size_t n = 0;
  for (const Chunk& c : chunks_) n += c.size;
  return n;
}

Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace bmg
