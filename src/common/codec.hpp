// Canonical, deterministic binary serialization.
//
// Every hashed structure in the system (guest blocks, IBC packets,
// counterparty headers, trie nodes) is serialized through this codec so
// hashes are stable across runs.  Integers are big-endian; variable
// length data is length-prefixed with a u32.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace bmg {

/// Thrown by Decoder on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class Encoder {
 public:
  Encoder() = default;
  /// Pre-sizes the buffer for `size_hint` bytes of output.  The hot
  /// fixed-shape encoders (trie nodes, headers, packet commitments)
  /// know their exact size arithmetically; passing it here turns the
  /// repeated push_back reallocation into a single allocation.
  explicit Encoder(std::size_t size_hint) { buf_.reserve(size_hint); }

  /// Ensures `n` more bytes can be appended without reallocation.
  Encoder& reserve(std::size_t n) {
    buf_.reserve(buf_.size() + n);
    return *this;
  }

  Encoder& u8(std::uint8_t v);
  Encoder& u16(std::uint16_t v);
  Encoder& u32(std::uint32_t v);
  Encoder& u64(std::uint64_t v);
  /// Raw bytes, no length prefix (fixed-size fields).
  Encoder& raw(ByteView data);
  /// Length-prefixed bytes.
  Encoder& bytes(ByteView data);
  /// Length-prefixed UTF-8 string.
  Encoder& str(std::string_view s);
  Encoder& hash(const Hash32& h);
  Encoder& boolean(bool v);

  [[nodiscard]] const Bytes& out() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  Bytes buf_;
};

class Decoder {
 public:
  explicit Decoder(ByteView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Bytes raw(std::size_t n);
  [[nodiscard]] Bytes bytes();
  [[nodiscard]] std::string str();
  [[nodiscard]] Hash32 hash();
  [[nodiscard]] bool boolean();

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Throws CodecError unless all input was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace bmg
