// Canonical, deterministic binary serialization.
//
// Every hashed structure in the system (guest blocks, IBC packets,
// counterparty headers, trie nodes) is serialized through this codec so
// hashes are stable across runs.  Integers are big-endian; variable
// length data is length-prefixed with a u32.
//
// The encoding is *fully canonical*: there is exactly one byte string
// per value, so the digest of a wire blob equals the digest of its
// re-encoding.  The zero-copy views in ibc/views.hpp lean on this to
// hash borrowed wire bytes directly instead of re-encoding.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace bmg {

class Arena;

/// Thrown by Decoder on truncated or malformed input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder with three storage modes:
///  - owning (default): writes into an internal heap buffer; `take()`
///    moves it out as `Bytes`.
///  - arena-backed: writes into `Arena` memory; the output (`out()`)
///    lives until the arena scope resets.  One pointer bump per
///    growth, no heap traffic.
///  - caller buffer: writes into a caller-provided span (typically
///    stack storage); spills to an internal heap buffer only if the
///    output outgrows it.
/// The hot fixed-shape encoders (trie nodes, headers, packet
/// commitments) know their exact size arithmetically; passing it as
/// `size_hint` makes growth a non-event.
class Encoder {
 public:
  Encoder() = default;
  /// Owning mode, pre-sized for `size_hint` bytes of output.
  explicit Encoder(std::size_t size_hint) { ensure(size_hint); }
  /// Arena mode.  The encoder (and its `out()` view) must not outlive
  /// the arena scope it was created under.
  explicit Encoder(Arena& arena, std::size_t size_hint = 0);
  /// Caller-buffer mode over `scratch`.
  explicit Encoder(std::span<std::uint8_t> scratch)
      : data_(scratch.data()), cap_(scratch.size()), scratch_(scratch.data()) {}

  /// Ensures `n` more bytes can be appended without another growth.
  Encoder& reserve(std::size_t n) {
    ensure(n);
    return *this;
  }

  Encoder& u8(std::uint8_t v);
  Encoder& u16(std::uint16_t v);
  Encoder& u32(std::uint32_t v);
  Encoder& u64(std::uint64_t v);
  /// Raw bytes, no length prefix (fixed-size fields).
  Encoder& raw(ByteView data);
  /// Length-prefixed bytes.
  Encoder& bytes(ByteView data);
  /// Length-prefixed UTF-8 string.
  Encoder& str(std::string_view s);
  Encoder& hash(const Hash32& h);
  Encoder& boolean(bool v);

  /// The encoded output.  Valid until the next append (growth may move
  /// the buffer) and, in arena mode, until the arena scope resets.
  [[nodiscard]] ByteView out() const noexcept { return {data_, size_}; }
  /// Moves the output out as owning Bytes.  In owning mode this is the
  /// no-copy move of the internal buffer; in arena/caller-buffer mode
  /// it copies (prefer `out()` there).
  [[nodiscard]] Bytes take();
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  void ensure(std::size_t more);
  /// Reserves and claims `n` bytes; returns the write cursor.
  [[nodiscard]] std::uint8_t* grip(std::size_t n) {
    if (cap_ - size_ < n) ensure(n);
    std::uint8_t* p = data_ + size_;
    size_ += n;
    return p;
  }

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
  Arena* arena_ = nullptr;            ///< arena mode
  std::uint8_t* scratch_ = nullptr;   ///< caller-buffer mode
  Bytes own_;                         ///< owning-mode / spill storage
};

class Decoder {
 public:
  explicit Decoder(ByteView data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] Bytes raw(std::size_t n);
  [[nodiscard]] Bytes bytes();
  [[nodiscard]] std::string str();
  [[nodiscard]] Hash32 hash();
  [[nodiscard]] bool boolean();

  // Zero-copy variants: the returned views borrow the decoder's input
  // and are valid exactly as long as it is.  Bounds are checked the
  // same way as the owning variants (CodecError on truncation).
  [[nodiscard]] ByteView view(std::size_t n);
  [[nodiscard]] ByteView bytes_view();
  [[nodiscard]] std::string_view str_view();

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Throws CodecError unless all input was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace bmg
