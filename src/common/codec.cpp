#include "common/codec.hpp"

namespace bmg {

Encoder& Encoder::u8(std::uint8_t v) {
  buf_.push_back(v);
  return *this;
}

Encoder& Encoder::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
  return *this;
}

Encoder& Encoder::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  return *this;
}

Encoder& Encoder::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8)
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  return *this;
}

Encoder& Encoder::raw(ByteView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  return *this;
}

Encoder& Encoder::bytes(ByteView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  return raw(data);
}

Encoder& Encoder::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
  return *this;
}

Encoder& Encoder::hash(const Hash32& h) { return raw(h.view()); }

Encoder& Encoder::boolean(bool v) { return u8(v ? 1 : 0); }

void Decoder::need(std::size_t n) const {
  if (data_.size() - pos_ < n) throw CodecError("decoder: truncated input");
}

std::uint8_t Decoder::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Decoder::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

Bytes Decoder::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes Decoder::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string Decoder::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return out;
}

Hash32 Decoder::hash() {
  need(32);
  Hash32 h;
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + 32), h.bytes.begin());
  pos_ += 32;
  return h;
}

bool Decoder::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CodecError("decoder: bad boolean");
  return v == 1;
}

void Decoder::expect_done() const {
  if (!done()) throw CodecError("decoder: trailing bytes");
}

}  // namespace bmg
