#include "common/codec.hpp"

#include <cstring>

#include "common/alloc_stats.hpp"
#include "common/arena.hpp"

namespace bmg {

Encoder::Encoder(Arena& arena, std::size_t size_hint) : arena_(&arena) {
  if (size_hint != 0) {
    data_ = arena_->alloc_bytes(size_hint);
    cap_ = size_hint;
  }
}

void Encoder::ensure(std::size_t more) {
  if (cap_ - size_ >= more) return;
  std::size_t cap = cap_ < 16 ? 32 : cap_ * 2;
  if (cap < size_ + more) cap = size_ + more;
  if (arena_ != nullptr) {
    data_ = arena_->grow(data_, cap_, cap);
  } else {
    // Owning mode, or caller-buffer mode spilling to the heap.  resize
    // (not reserve) so data_ may legally point at [0, cap).
    own_.resize(cap);
    if (scratch_ != nullptr) {
      std::memcpy(own_.data(), scratch_, size_);
      scratch_ = nullptr;
    }
    data_ = own_.data();
  }
  cap_ = cap;
}

Bytes Encoder::take() {
  if (arena_ == nullptr && scratch_ == nullptr) {
    own_.resize(size_);
    Bytes result = std::move(own_);
    own_ = Bytes();
    data_ = nullptr;
    size_ = cap_ = 0;
    return result;
  }
  return Bytes(data_, data_ + size_);
}

Encoder& Encoder::u8(std::uint8_t v) {
  *grip(1) = v;
  return *this;
}

Encoder& Encoder::u16(std::uint16_t v) {
  std::uint8_t* p = grip(2);
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
  return *this;
}

Encoder& Encoder::u32(std::uint32_t v) {
  std::uint8_t* p = grip(4);
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
  return *this;
}

Encoder& Encoder::u64(std::uint64_t v) {
  std::uint8_t* p = grip(8);
  for (int i = 0; i < 8; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  return *this;
}

Encoder& Encoder::raw(ByteView data) {
  alloc_stats::count_copy(data.size());
  std::uint8_t* p = grip(data.size());
  if (!data.empty()) std::memcpy(p, data.data(), data.size());
  return *this;
}

Encoder& Encoder::bytes(ByteView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  return raw(data);
}

Encoder& Encoder::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  alloc_stats::count_copy(s.size());
  std::uint8_t* p = grip(s.size());
  if (!s.empty()) std::memcpy(p, s.data(), s.size());
  return *this;
}

Encoder& Encoder::hash(const Hash32& h) { return raw(h.view()); }

Encoder& Encoder::boolean(bool v) { return u8(v ? 1 : 0); }

void Decoder::need(std::size_t n) const {
  if (data_.size() - pos_ < n) throw CodecError("decoder: truncated input");
}

std::uint8_t Decoder::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Decoder::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

ByteView Decoder::view(std::size_t n) {
  need(n);
  const ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

ByteView Decoder::bytes_view() {
  const std::uint32_t n = u32();
  return view(n);
}

std::string_view Decoder::str_view() {
  const ByteView v = bytes_view();
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

Bytes Decoder::raw(std::size_t n) {
  alloc_stats::count_copy(n);
  const ByteView v = view(n);
  return Bytes(v.begin(), v.end());
}

Bytes Decoder::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string Decoder::str() {
  const std::string_view v = str_view();
  alloc_stats::count_copy(v.size());
  return std::string(v);
}

Hash32 Decoder::hash() {
  const ByteView v = view(32);
  Hash32 h;
  std::memcpy(h.bytes.data(), v.data(), 32);
  return h;
}

bool Decoder::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw CodecError("decoder: bad boolean");
  return v == 1;
}

void Decoder::expect_done() const {
  if (!done()) throw CodecError("decoder: trailing bytes");
}

}  // namespace bmg
