// Summary statistics and text renderings used by the evaluation
// harnesses: quantiles (Table I), CDFs (Figs. 2 and 4), histograms
// (Figs. 3, 5, 6) and Pearson correlation (Validator cost/latency).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace bmg {

/// Collects samples and answers order statistics about them.
class Series {
 public:
  void add(double v) { samples_.push_back(v); }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator, 0 for n<2).
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated quantile, q in [0,1].
  [[nodiscard]] double quantile(double q) const;

  /// Fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Pearson correlation coefficient of two equally-long sequences.
[[nodiscard]] double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Renders an ASCII CDF of the series: `points` rows of "x  F(x)".
[[nodiscard]] std::string render_cdf(const Series& s, int points, const std::string& x_label);

/// Renders an ASCII histogram with `bins` equal-width buckets.
[[nodiscard]] std::string render_histogram(const Series& s, int bins, const std::string& x_label);

/// One row of Table I style summary: min/Q1/median/Q3/max/mean/stddev.
[[nodiscard]] std::string render_quantile_row(const Series& s);

}  // namespace bmg
