#include "common/shard_pool.hpp"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/arena.hpp"
#include "common/parallel.hpp"

namespace bmg::shard {

namespace {

/// Grid cells are whole simulations; more workers than this would be
/// memory-bound long before it is CPU-bound.
constexpr std::size_t kMaxWorkers = 64;

thread_local bool t_in_cell = false;

std::size_t default_worker_count() {
  if (const char* env = std::getenv("BMG_SHARD_WORKERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v > 0)
      return std::min<std::size_t>(static_cast<std::size_t>(v), kMaxWorkers);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, kMaxWorkers);
}

[[nodiscard]] double thread_cpu_seconds() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
#endif
  return 0.0;
}

/// Cell-boundary guard over the thread_local surfaces.  A non-empty
/// scratch arena at a cell boundary means an ArenaScope (or a bare
/// alloc_bytes) leaked across the boundary — the next cell would bump
/// over live bytes of the previous owner, a silent cross-shard bleed.
/// That is a programming error, never data-dependent, so fail loudly.
void guard_scratch_arena(const char* when, std::size_t cell) {
  Arena& a = scratch_arena();
  if (a.bytes_used() != 0) {
    std::fprintf(stderr,
                 "shard_pool: scratch arena holds %zu bytes %s cell %zu — an "
                 "ArenaScope leaked across a shard boundary\n",
                 a.bytes_used(), when, cell);
    std::abort();
  }
  // Reclaim wholesale but keep chunk storage: successive cells on this
  // worker reuse the same slabs (no heap churn between grid cells).
  a.reset();
}

/// One grid dispatch: cells are dealt from `next`; results go to
/// caller-indexed slots, so scheduling freedom never reaches the
/// artifact.
struct GridJob {
  const CellFn* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::size_t retired = 0;  ///< pool workers done with this job
  std::vector<std::exception_ptr> errors;  // indexed by cell
  std::vector<CellStats> stats;            // indexed by cell

  void run_cell(std::size_t cell, std::size_t worker) noexcept {
    guard_scratch_arena("entering", cell);
    CellStats& st = stats[cell];
    st.cell = cell;
    st.worker = worker;
    const auto wall0 = std::chrono::steady_clock::now();
    const double cpu0 = thread_cpu_seconds();
    {
      // Intra-cell fork-join regions run inline: the cell is the unit
      // of parallelism and must compute the same bytes on any worker.
      parallel::SerialRegion serial;
      t_in_cell = true;
      try {
        (*fn)(cell);
      } catch (...) {
        errors[cell] = std::current_exception();
      }
      t_in_cell = false;
    }
    st.cpu_s = thread_cpu_seconds() - cpu0;
    st.wall_s = std::chrono::duration_cast<std::chrono::duration<double>>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();
    guard_scratch_arena("leaving", cell);
  }

  void drain(std::size_t worker) noexcept {
    for (std::size_t c = next.fetch_add(1); c < n; c = next.fetch_add(1))
      run_cell(c, worker);
  }
};

/// The persistent shard-worker pool — same lifecycle pattern as the
/// fork-join Pool (parallel.cpp), but the two never share threads:
/// shard workers host whole simulations, fork-join workers host
/// kernel shards.
class ShardPool {
 public:
  static ShardPool& instance() {
    static ShardPool pool;
    return pool;
  }

  std::size_t workers() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    ensure_started_locked();
    return workers_count_;
  }

  void set_workers(std::size_t n) {
    std::lock_guard<std::mutex> submit(submit_mutex_);
    std::lock_guard<std::mutex> lock(config_mutex_);
    stop_workers_locked();
    workers_count_ = n == 0 ? default_worker_count() : std::min(n, kMaxWorkers);
    started_ = true;
    spawn_workers_locked();
  }

  void run(GridJob& job) {
    std::lock_guard<std::mutex> submit(submit_mutex_);
    std::size_t helpers;
    {
      std::lock_guard<std::mutex> lock(config_mutex_);
      ensure_started_locked();
      helpers = threads_.size();
    }
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      job_ = &job;
      ++generation_;
    }
    job_cv_.notify_all();

    // The submitter deals itself cells as worker 0.
    job.drain(0);

    // Wait for every pool worker to retire from this dispatch before
    // the stack-allocated job leaves scope; the mutex handshake makes
    // their stats/error writes visible here.
    std::unique_lock<std::mutex> lock(job_mutex_);
    done_cv_.wait(lock, [&] { return job.retired == helpers; });
    job_ = nullptr;
  }

 private:
  ShardPool() = default;
  ~ShardPool() {
    std::lock_guard<std::mutex> lock(config_mutex_);
    stop_workers_locked();
  }

  void ensure_started_locked() {
    if (started_) return;
    workers_count_ = default_worker_count();
    started_ = true;
    spawn_workers_locked();
  }

  void spawn_workers_locked() {
    stopping_ = false;
    for (std::size_t i = 0; i + 1 < workers_count_; ++i)
      threads_.emplace_back([this, worker = i + 1] { worker_loop(worker); });
  }

  void stop_workers_locked() {
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      stopping_ = true;
      ++generation_;
    }
    job_cv_.notify_all();
    for (std::thread& w : threads_) w.join();
    threads_.clear();
  }

  void worker_loop(std::size_t worker) {
    std::uint64_t seen = 0;
    while (true) {
      GridJob* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(job_mutex_);
        job_cv_.wait(lock, [&] { return generation_ != seen || stopping_; });
        if (stopping_) return;
        seen = generation_;
        job = job_;
      }
      if (job != nullptr) job->drain(worker);
      {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (job != nullptr) ++job->retired;
      }
      done_cv_.notify_all();
    }
  }

  std::mutex submit_mutex_;
  std::mutex config_mutex_;
  bool started_ = false;
  std::size_t workers_count_ = 1;
  std::vector<std::thread> threads_;

  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  GridJob* job_ = nullptr;
  std::uint64_t generation_ = 0;
  bool stopping_ = false;
};

}  // namespace

std::size_t worker_count() { return ShardPool::instance().workers(); }

void set_worker_count(std::size_t n) { ShardPool::instance().set_workers(n); }

bool in_shard_cell() noexcept { return t_in_cell; }

std::vector<CellStats> run_cells(std::size_t n, const CellFn& fn) {
  if (n == 0) return {};

  GridJob job;
  job.fn = &fn;
  job.n = n;
  job.errors.resize(n);
  job.stats.resize(n);

  if (ShardPool::instance().workers() <= 1 || t_in_cell) {
    // Exact serial path: cells run inline on the calling thread in
    // grid order, with the same per-cell guards and accounting.  A
    // nested run_cells from inside a cell serializes the same way.
    for (std::size_t c = 0; c < n; ++c) job.run_cell(c, 0);
  } else {
    ShardPool::instance().run(job);
  }

  // Deterministic error propagation: lowest cell index wins.
  for (const std::exception_ptr& e : job.errors)
    if (e) std::rethrow_exception(e);
  return std::move(job.stats);
}

}  // namespace bmg::shard
