// Allocation accounting for the perf harness.
//
// Built with -DBMG_ALLOC_STATS (CMake option BMG_ALLOC_STATS=ON) this
// replaces global operator new/delete with counting versions, and the
// codec charges every buffer copy to a bytes-copied counter.  The
// bench binaries then report allocations/event and bytes-copied/event
// as first-class columns, and CI enforces a checked-in budget on the
// steady-state relay loop (bench/alloc_budget.txt).
//
// In the default build everything here compiles to nothing: snapshot()
// returns zeros and count_copy() is an empty inline.  Keeping the
// accounting out of the default build is what lets scenario_runner and
// the figure benches stay byte-identical to the seed outputs.
//
// Counters are process-global relaxed atomics: cheap enough for a
// measurement build, and exact as long as the measured region is
// single-threaded (the recording methodology pins BMG_THREADS=1).
#pragma once

#include <cstddef>
#include <cstdint>

namespace bmg::alloc_stats {

struct Snapshot {
  std::uint64_t allocs = 0;        ///< operator new calls
  std::uint64_t frees = 0;         ///< operator delete calls
  std::uint64_t alloc_bytes = 0;   ///< bytes requested from operator new
  std::uint64_t bytes_copied = 0;  ///< codec buffer bytes memcpy'd

  friend Snapshot operator-(const Snapshot& a, const Snapshot& b) {
    return {a.allocs - b.allocs, a.frees - b.frees,
            a.alloc_bytes - b.alloc_bytes, a.bytes_copied - b.bytes_copied};
  }
};

[[nodiscard]] constexpr bool enabled() noexcept {
#ifdef BMG_ALLOC_STATS
  return true;
#else
  return false;
#endif
}

#ifdef BMG_ALLOC_STATS
[[nodiscard]] Snapshot snapshot() noexcept;
void count_copy(std::size_t n) noexcept;
#else
[[nodiscard]] inline Snapshot snapshot() noexcept { return {}; }
inline void count_copy(std::size_t) noexcept {}
#endif

}  // namespace bmg::alloc_stats
