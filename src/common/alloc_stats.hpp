// Allocation accounting for the perf harness.
//
// Built with -DBMG_ALLOC_STATS (CMake option BMG_ALLOC_STATS=ON) this
// replaces global operator new/delete with counting versions, and the
// codec charges every buffer copy to a bytes-copied counter.  The
// bench binaries then report allocations/event and bytes-copied/event
// as first-class columns, and CI enforces a checked-in budget on the
// steady-state relay loop (bench/alloc_budget.txt).
//
// In the default build everything here compiles to nothing: snapshot()
// returns zeros and count_copy() is an empty inline.  Keeping the
// accounting out of the default build is what lets scenario_runner and
// the figure benches stay byte-identical to the seed outputs.
//
// Counters exist at two granularities.  The process-global relaxed
// atomics back snapshot(); they are exact as long as the measured
// region is single-threaded (the recording methodology pins
// BMG_THREADS=1).  For sharded runs — several whole simulations in
// flight on distinct shard workers — the global counters still sum
// correctly but cannot attribute traffic, so every counter is also
// kept in plain thread_local storage read by thread_snapshot(): a
// shard cell runs entirely on one worker thread (its fork-join
// regions serialize inline), so a before/after thread_snapshot()
// delta is exact per-cell accounting with zero cross-shard bleed, and
// per-cell deltas aggregate to the budget check (alloc_relay_loop
// --shard-workers).  Frees are charged to the thread that frees;
// per-cell *alloc* counts — what the budget enforces — are exact.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bmg::alloc_stats {

struct Snapshot {
  std::uint64_t allocs = 0;        ///< operator new calls
  std::uint64_t frees = 0;         ///< operator delete calls
  std::uint64_t alloc_bytes = 0;   ///< bytes requested from operator new
  std::uint64_t bytes_copied = 0;  ///< codec buffer bytes memcpy'd

  friend Snapshot operator-(const Snapshot& a, const Snapshot& b) {
    return {a.allocs - b.allocs, a.frees - b.frees,
            a.alloc_bytes - b.alloc_bytes, a.bytes_copied - b.bytes_copied};
  }
};

[[nodiscard]] constexpr bool enabled() noexcept {
#ifdef BMG_ALLOC_STATS
  return true;
#else
  return false;
#endif
}

#ifdef BMG_ALLOC_STATS
[[nodiscard]] Snapshot snapshot() noexcept;
/// Counters of the calling thread only — the per-shard view.
[[nodiscard]] Snapshot thread_snapshot() noexcept;
void count_copy(std::size_t n) noexcept;
#else
[[nodiscard]] inline Snapshot snapshot() noexcept { return {}; }
[[nodiscard]] inline Snapshot thread_snapshot() noexcept { return {}; }
inline void count_copy(std::size_t) noexcept {}
#endif

}  // namespace bmg::alloc_stats
