// Shard-per-deployment execution layer.
//
// The fork-join executor (common/parallel.hpp) parallelises *within*
// one deterministic event loop — but BENCH_pr4 showed that loop is
// inherently serial, so wall-clock stays flat however many threads the
// kernels borrow.  Independent deployments, on the other hand, are
// embarrassingly parallel: a scenario grid cell owns its complete
// simulation (scheduler, chains, agents, RNG streams) and shares no
// mutable state with any other cell.  The shard pool runs those cells
// on persistent worker threads, one whole simulation per cell.
//
// Distinct from the fork-join pool by design:
//
//   * the fork-join pool keeps serving intra-block kernels for
//     single-deployment drivers, tests and the figure benches;
//   * inside a shard cell, every parallel_for serializes inline
//     (parallel::SerialRegion) — the scaling axis is cells, and the
//     cell's working set stays on its worker's core;
//   * worker count comes from BMG_SHARD_WORKERS / --shard-workers,
//     independent of BMG_THREADS.
//
// Determinism.  Cells are dealt out of an atomic counter (which
// *worker* runs which cell is the only scheduling freedom), every cell
// computes a pure function of its grid index, and results land in
// caller-owned slots indexed by cell — so the merged artifact is the
// concatenation in grid order no matter the worker count or
// completion order.  One worker (or an inline run) is the exact
// serial path.
//
// Memory.  Admission is shard-count-limited: at most worker_count()
// cells are in flight, which bounds peak memory to W live simulations
// regardless of grid size.  Between cells a worker keeps its
// thread_local scratch-arena chunks (arena/slab reuse — a warm worker
// stops touching the heap for scratch), and the pool *guards* the
// thread_local surfaces at every cell boundary: a scratch-arena scope
// that leaks across a cell is a determinism hazard (one cell's
// rewound buffers aliasing the next cell's) and aborts the run with a
// diagnostic rather than silently bleeding state.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace bmg::shard {

/// Per-cell execution record, returned in grid order.  `worker` is
/// informational (which pool worker ran the cell; 0 is the submitting
/// thread) — artifacts must never depend on it.  `cpu_s` is the
/// executing thread's CPU clock, which is what demonstrates work
/// distribution on hosts where wall-clock cannot scale (1-CPU boxes).
struct CellStats {
  std::size_t cell = 0;
  std::size_t worker = 0;
  double wall_s = 0;
  double cpu_s = 0;
};

/// Number of shard workers (>= 1) the next run_cells() will use.
/// First call reads BMG_SHARD_WORKERS (unset/0 → hardware
/// concurrency).  The submitting thread participates as worker 0, so
/// `worker_count() == 1` means no pool threads at all.
[[nodiscard]] std::size_t worker_count();

/// Reconfigures the pool to exactly `n` workers (0 → re-read the
/// BMG_SHARD_WORKERS/hardware default).  Joins existing workers
/// first; must not be called from inside a cell.
void set_worker_count(std::size_t n);

/// True while the calling thread is executing a cell body.
[[nodiscard]] bool in_shard_cell() noexcept;

/// A cell body: run grid cell `cell` (a complete, isolated
/// simulation).  Results are returned by writing to caller-owned
/// storage indexed by `cell` — never to anything shared.
using CellFn = std::function<void(std::size_t cell)>;

/// Runs fn(0) .. fn(n-1) across the shard workers and blocks until
/// all cells finish.  Returns per-cell stats in grid order.  If any
/// cell throws, the exception from the *lowest-indexed* failing cell
/// is rethrown after the join (deterministic error propagation);
/// remaining cells still run.
///
/// The calling thread must not hold a live scratch-arena scope: the
/// pool asserts `scratch_arena().bytes_used() == 0` at every cell
/// boundary and resets the arena (keeping its chunks) so cells start
/// clean and reuse each other's storage.
std::vector<CellStats> run_cells(std::size_t n, const CellFn& fn);

}  // namespace bmg::shard
