// Basic byte-buffer utilities shared by every module.
//
// The whole code base moves data around as `Bytes` (owning) and
// `ByteView` (non-owning).  Canonical hex encoding is provided for
// logging, test vectors and human-readable identifiers.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bmg {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Lower-case hex encoding of `data`.
[[nodiscard]] std::string to_hex(ByteView data);

/// Parses lower- or upper-case hex.  Throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
[[nodiscard]] Bytes from_hex(std::string_view hex);

/// Builds a Bytes from a string literal / std::string contents.
[[nodiscard]] Bytes bytes_of(std::string_view s);

/// Concatenates any number of byte views.
[[nodiscard]] Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality for fixed-size digests/signatures; avoids
/// leaking the position of the first mismatch through timing.
[[nodiscard]] bool ct_equal(ByteView a, ByteView b) noexcept;

/// A fixed 32-byte value used for hashes, keys and trie commitments.
struct Hash32 {
  std::array<std::uint8_t, 32> bytes{};

  [[nodiscard]] static Hash32 from(ByteView data);
  [[nodiscard]] ByteView view() const noexcept { return ByteView{bytes}; }
  [[nodiscard]] std::string hex() const { return to_hex(view()); }
  [[nodiscard]] bool is_zero() const noexcept;

  friend bool operator==(const Hash32&, const Hash32&) = default;
  friend auto operator<=>(const Hash32&, const Hash32&) = default;
};

/// std::hash support so Hash32 can key unordered containers.
struct Hash32Hasher {
  [[nodiscard]] std::size_t operator()(const Hash32& h) const noexcept {
    std::size_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | h.bytes[static_cast<std::size_t>(i)];
    return v;
  }
};

}  // namespace bmg
