// Bump allocation for the per-event hot path.
//
// The per-event work (encode a packet, build a payload, hash a header)
// allocates many short-lived buffers whose lifetimes all end together
// when the event finishes.  A bump arena turns each of those heap
// round-trips into a pointer increment: memory is carved off large
// chunks, never freed individually, and reclaimed wholesale by
// `reset()` (event-scoped) or by an `ArenaScope` rewind (block-scoped
// regions nested inside an event).
//
// Rules (see DESIGN.md §11):
//  - Arena memory is only valid until the owning scope resets.  Never
//    store an arena pointer in a structure that outlives the event.
//  - ArenaScopes must nest strictly.  In particular, an arena-backed
//    Encoder must not grow across a nested scope's lifetime: the inner
//    scope's rewind would reclaim the grown buffer.
//  - Arenas are not thread-safe; `scratch_arena()` is thread_local so
//    fork-join workers each get their own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace bmg {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : next_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultChunkBytes
                                                 : first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` bytes aligned to `align` (a power of two).
  /// Never returns nullptr; n == 0 yields a valid one-past pointer.
  [[nodiscard]] void* allocate(std::size_t n,
                               std::size_t align = alignof(std::max_align_t));

  /// Byte-buffer allocation (align 1) — the encoder hot path.
  [[nodiscard]] std::uint8_t* alloc_bytes(std::size_t n) {
    return static_cast<std::uint8_t*>(allocate(n, 1));
  }

  /// Grows an allocation to `new_size` bytes.  If `p` is the most
  /// recent allocation and the chunk has room, this extends in place;
  /// otherwise it allocates fresh space and copies `old_size` bytes.
  /// Only valid for the latest allocation from this arena.
  [[nodiscard]] std::uint8_t* grow(std::uint8_t* p, std::size_t old_size,
                                   std::size_t new_size);

  /// Releases every allocation at once.  Chunk storage is kept for
  /// reuse, so a steady-state event loop stops touching the heap
  /// entirely after warm-up.
  void reset() noexcept;

  /// A rewind point for block-scoped regions; see ArenaScope.
  struct Mark {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };
  [[nodiscard]] Mark mark() const noexcept { return {active_, chunk_used_}; }
  void rewind(Mark m) noexcept;

  /// Bytes handed out since construction or the last reset().
  [[nodiscard]] std::size_t bytes_used() const noexcept;
  /// Total chunk storage owned (the high-water footprint).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept;

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  void ensure_room(std::size_t n, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;      ///< index of the chunk being bumped
  std::size_t chunk_used_ = 0;  ///< bytes used in the active chunk
  std::size_t next_chunk_bytes_;
};

/// RAII rewind-to-mark: everything allocated inside the scope is
/// reclaimed on destruction.  Scopes must nest strictly.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// The per-thread event-scoped scratch arena.  Hot functions that need
/// transient buffers take an ArenaScope on this and leave no trace.
/// thread_local keeps fork-join workers independent, so using it never
/// perturbs cross-thread determinism.
[[nodiscard]] Arena& scratch_arena();

}  // namespace bmg
