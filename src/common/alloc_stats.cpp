#include "common/alloc_stats.hpp"

#ifdef BMG_ALLOC_STATS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
// Relaxed is enough: counters are read only at quiescent points
// (snapshot before/after a measured region), never used to order other
// memory operations.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_bytes_copied{0};

// Per-thread mirrors (plain, not atomic — only the owning thread
// touches them).  Zero-initialised thread_local PODs need no dynamic
// construction, so counting from the very first operator new on a
// fresh thread is safe.
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_frees = 0;
thread_local std::uint64_t t_alloc_bytes = 0;
thread_local std::uint64_t t_bytes_copied = 0;

void* counted_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  ++t_allocs;
  t_alloc_bytes += n;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (n + align - 1) / align * align)
                : std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  ++t_frees;
  std::free(p);
}
}  // namespace

namespace bmg::alloc_stats {

Snapshot snapshot() noexcept {
  return {g_allocs.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed),
          g_alloc_bytes.load(std::memory_order_relaxed),
          g_bytes_copied.load(std::memory_order_relaxed)};
}

Snapshot thread_snapshot() noexcept {
  return {t_allocs, t_frees, t_alloc_bytes, t_bytes_copied};
}

void count_copy(std::size_t n) noexcept {
  g_bytes_copied.fetch_add(n, std::memory_order_relaxed);
  t_bytes_copied += n;
}

}  // namespace bmg::alloc_stats

// Global replacement set.  malloc/free underneath keeps the
// replacement interposable by sanitizers, though the alloc-stats CI
// leg uses a plain build.
void* operator new(std::size_t n) { return counted_alloc(n, 0); }
void* operator new[](std::size_t n) { return counted_alloc(n, 0); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }

#endif  // BMG_ALLOC_STATS
