// The counterparty blockchain: a Tendermint-like chain with native IBC
// support, standing in for Picasso Network (paper §IV).
//
// It produces a block every few seconds, finalised instantly by a
// stake-weighted commit: every block carries signatures from a quorum
// of its validators.  Those commits are exactly what the guest
// contract's light client must verify on the host — the size of a
// commit (dozens of 96-byte signature entries) is what forces light
// client updates to be split across ~36 host transactions (paper
// §V-A, Figs. 4-5).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ibc/bank.hpp"
#include "ibc/module.hpp"
#include "ibc/quorum.hpp"
#include "ibc/transfer.hpp"
#include "sim/scheduler.hpp"
#include "trie/snapshot.hpp"
#include "trie/trie.hpp"

namespace bmg::counterparty {

struct Config {
  std::string chain_id = "picasso-1";
  /// Cosmos-style block interval in seconds.
  double block_interval_s = 6.0;
  /// Validator-set size; drives commit size and therefore the cost and
  /// latency of light client updates on the host.
  int num_validators = 60;
  std::uint64_t stake_per_validator = 1'000;
  /// Number of non-IBC key-value pairs seeded into the provable store.
  /// A real Cosmos chain's state is dominated by application data, so
  /// IBC membership proofs are several levels deep (~2 KB) — which is
  /// why ReceivePacket needs 4-5 chunked host transactions (§V-A).
  std::size_t background_state_keys = 4096;
  /// Per-block commit participation is drawn uniformly from this
  /// range, then each validator joins the commit with that
  /// probability (the commit is always topped up to quorum).  The
  /// resulting variance in commit size drives the spread of light
  /// client update sizes/costs (paper Figs. 4-5).
  double participation_min = 0.85;
  double participation_max = 0.98;
};

class CounterpartyChain {
 public:
  CounterpartyChain(sim::Simulation& sim, Rng rng, Config cfg = {});

  /// Starts block production.
  void start();

  [[nodiscard]] const std::string& chain_id() const noexcept { return cfg_.chain_id; }
  [[nodiscard]] ibc::Height height() const noexcept { return height_; }
  [[nodiscard]] double now() const noexcept { return sim_.now(); }

  [[nodiscard]] trie::SealableTrie& store() noexcept { return store_; }
  [[nodiscard]] ibc::IbcModule& ibc() noexcept { return module_; }
  [[nodiscard]] ibc::Bank& bank() noexcept { return bank_; }
  [[nodiscard]] ibc::TokenTransferApp& transfer() noexcept { return transfer_; }

  [[nodiscard]] const ibc::ValidatorSet& validators() const noexcept {
    return validator_set_;
  }

  /// The signed header (with its quorum commit) for a finalised
  /// height; relayers ship these to the guest light client.  Commit
  /// signatures are materialized lazily on first request (a pure
  /// simulation optimization — the header contents are identical).
  [[nodiscard]] const ibc::SignedQuorumHeader& header_at(ibc::Height h) const;

  /// Registers a callback invoked after each new block.
  void on_new_block(std::function<void(ibc::Height)> cb);

  /// Builds a (non-)membership proof for `key` against the state root
  /// committed at height `h` (served from a per-block snapshot, like a
  /// full node answering historical ABCI queries).
  [[nodiscard]] trie::Proof prove_at(ibc::Height h, ByteView key) const;

  /// The immutable snapshot backing prove_at(h); invalid once pruned.
  [[nodiscard]] trie::TrieSnapshot snapshot_at(ibc::Height h) const;

 private:
  void produce_block();

  sim::Simulation& sim_;
  Rng rng_;
  Config cfg_;

  trie::SealableTrie store_;
  ibc::IbcModule module_;
  ibc::Bank bank_;
  ibc::TokenTransferApp transfer_;

  std::vector<crypto::PrivateKey> validator_keys_;
  ibc::ValidatorSet validator_set_;

  struct PendingCommit {
    ibc::QuorumHeader header;
    std::vector<std::size_t> signer_indices;
  };

  ibc::Height height_ = 0;
  mutable std::map<ibc::Height, PendingCommit> unsigned_headers_;
  mutable std::map<ibc::Height, ibc::SignedQuorumHeader> headers_;
  /// Recent per-block state snapshots for historical proofs.  Blocks
  /// whose root did not change share one snapshot (copying a snapshot
  /// is a shared_ptr copy; publishing one is copy-on-write, not a deep
  /// trie copy).
  std::map<ibc::Height, trie::TrieSnapshot> snapshots_;
  trie::TrieSnapshot last_snapshot_;
  std::vector<std::function<void(ibc::Height)>> block_callbacks_;
  /// Per-block participation bitmap, reused across produce_block calls.
  std::vector<bool> in_commit_scratch_;
  bool started_ = false;
};

}  // namespace bmg::counterparty
