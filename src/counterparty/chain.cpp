#include "counterparty/chain.hpp"

#include <array>
#include <span>

#include "crypto/sha256.hpp"

namespace bmg::counterparty {

CounterpartyChain::CounterpartyChain(sim::Simulation& sim, Rng rng, Config cfg)
    : sim_(sim),
      rng_(rng),
      cfg_(std::move(cfg)),
      module_(store_),
      transfer_(module_, bank_, "transfer") {
  for (int i = 0; i < cfg_.num_validators; ++i) {
    validator_keys_.push_back(
        crypto::PrivateKey::from_label(cfg_.chain_id + "-validator-" + std::to_string(i)));
    validator_set_.add(validator_keys_.back().public_key(), cfg_.stake_per_validator);
  }

  module_.set_self_identity(cfg_.chain_id, [this] { return validator_set_.hash(); });

  // Seed application state so IBC proofs have realistic depth.  The
  // per-key preimage is tiny, so encode it into one reused stack
  // buffer instead of a heap Encoder per key.
  std::array<std::uint8_t, 128> key_buf;
  for (std::size_t i = 0; i < cfg_.background_state_keys; ++i) {
    Encoder e{std::span<std::uint8_t>(key_buf)};
    e.str(cfg_.chain_id).u64(i);
    const Hash32 key = crypto::Sha256::digest(e.out());
    store_.set(key.view(), crypto::Sha256::digest(key.view()));
  }
}

void CounterpartyChain::start() {
  if (started_) return;
  started_ = true;
  sim_.after(cfg_.block_interval_s, [this] { produce_block(); });
}

void CounterpartyChain::produce_block() {
  ++height_;

  // Trie writes accumulated since the last block are hashed in one
  // batched commit, mirroring how a real chain commits app state once
  // per block.
  store_.commit();

  // Sample the commit: each validator participates with probability
  // `signature_participation`; top up deterministically if the sample
  // fell short of quorum (Tendermint commits always carry >2/3).
  PendingCommit commit;
  commit.header.chain_id = cfg_.chain_id;
  commit.header.height = height_;
  commit.header.timestamp = sim_.now();
  commit.header.state_root = store_.root_hash();
  commit.header.validator_set_hash = validator_set_.hash();
  std::uint64_t power = 0;
  const double participation =
      rng_.uniform(cfg_.participation_min, cfg_.participation_max);
  in_commit_scratch_.assign(validator_keys_.size(), false);
  std::vector<bool>& in_commit = in_commit_scratch_;
  for (std::size_t i = 0; i < validator_keys_.size(); ++i) {
    if (rng_.chance(participation)) {
      in_commit[i] = true;
      power += validator_set_.entries()[i].stake;
    }
  }
  for (std::size_t i = 0; i < validator_keys_.size() && power < validator_set_.quorum_stake();
       ++i) {
    if (!in_commit[i]) {
      in_commit[i] = true;
      power += validator_set_.entries()[i].stake;
    }
  }
  commit.signer_indices.reserve(validator_keys_.size());
  for (std::size_t i = 0; i < validator_keys_.size(); ++i)
    if (in_commit[i]) commit.signer_indices.push_back(i);

  unsigned_headers_[height_] = std::move(commit);
  while (unsigned_headers_.size() > 4096)
    unsigned_headers_.erase(unsigned_headers_.begin());
  while (headers_.size() > 4096) headers_.erase(headers_.begin());
  // Historical proof basis; reuse the previous snapshot when the state
  // did not change (the common case between IBC actions).
  if (!last_snapshot_.valid() || last_snapshot_.root_hash() != store_.root_hash())
    last_snapshot_ = store_.snapshot();
  snapshots_[height_] = last_snapshot_;
  while (snapshots_.size() > 256) snapshots_.erase(snapshots_.begin());

  for (const auto& cb : block_callbacks_) cb(height_);

  sim_.after(cfg_.block_interval_s, [this] { produce_block(); });
}

const ibc::SignedQuorumHeader& CounterpartyChain::header_at(ibc::Height h) const {
  const auto it = headers_.find(h);
  if (it != headers_.end()) return it->second;

  const auto pending = unsigned_headers_.find(h);
  if (pending == unsigned_headers_.end())
    throw ibc::IbcError("counterparty: no header at height " + std::to_string(h));

  ibc::SignedQuorumHeader sh;
  sh.header = pending->second.header;
  // Cached on the header we hand out, so verifiers reuse the digest.
  const Hash32 digest = sh.signing_digest();
  for (const std::size_t i : pending->second.signer_indices)
    sh.signatures.emplace_back(validator_keys_[i].public_key(),
                               validator_keys_[i].sign(digest.view()));
  unsigned_headers_.erase(pending);
  return headers_.emplace(h, std::move(sh)).first->second;
}

void CounterpartyChain::on_new_block(std::function<void(ibc::Height)> cb) {
  block_callbacks_.push_back(std::move(cb));
}

trie::Proof CounterpartyChain::prove_at(ibc::Height h, ByteView key) const {
  const auto it = snapshots_.find(h);
  if (it == snapshots_.end())
    throw ibc::IbcError("counterparty: no snapshot at height " + std::to_string(h));
  return it->second.prove(key);
}

trie::TrieSnapshot CounterpartyChain::snapshot_at(ibc::Height h) const {
  const auto it = snapshots_.find(h);
  if (it == snapshots_.end()) return {};
  return it->second;
}

}  // namespace bmg::counterparty
