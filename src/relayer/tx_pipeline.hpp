// Resilient host-transaction submission pipeline.
//
// IBC is explicitly designed around unreliable, incentive-driven
// relayers that retry until delivery; the paper's host is a fee market
// where base-fee inclusion is a coin flip (§V-B) and a light client
// update is ~36 sequential transactions (§V-A).  This pipeline turns
// "submit txs strictly one after another, abort on the first loss"
// into a state machine that survives all of it:
//
//   SUBMIT -> (result ok)      -> advance to next tx
//          -> (exec failed)    -> backoff, resubmit same tx
//          -> (dropped)        -> backoff, escalate fee, resubmit
//          -> (deadline fired) -> backoff, escalate fee, resubmit
//   budget exhausted           -> dead-letter queue, sequence fails
//
// Retries resubmit only the failed transaction — an interrupted
// chunk upload never re-uploads the whole staging buffer.  Fee
// escalation climbs the §V-B ladder (base -> priority -> bundle,
// then doubling bids).  Backoff is exponential with deterministic
// jitter from a dedicated RNG stream, so chaos runs replay exactly.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "host/chain.hpp"
#include "sim/scheduler.hpp"

namespace bmg::relayer {

/// Aggregate result of one transaction sequence.
struct SequenceOutcome {
  bool ok = false;
  int txs = 0;      ///< transactions in the sequence as planned
  int retries = 0;  ///< resubmissions beyond the first attempt of each tx
  /// Execution time of the first successful transaction; empty when
  /// nothing executed (a first tx at sim-time 0 is recorded correctly).
  std::optional<double> started_at;
  double finished_at = 0;
  double cost_usd = 0;
  /// Rooted-commitment mode only: time the last transaction's slot
  /// became rooted (the sequence's rooted-confirmation time).
  std::optional<double> rooted_at;
  /// Executions of this sequence's transactions retracted by host
  /// reorgs (each triggered an in-place retry or an off-band repair).
  int reorged_out = 0;

  [[nodiscard]] double start_time() const { return started_at.value_or(0.0); }
};
using SequenceDone = std::function<void(const SequenceOutcome&)>;

enum class RelayErrorKind : std::uint8_t {
  kDropped = 0,        ///< host reported expiry (blockhash too old)
  kExecFailed,         ///< executed but the program errored
  kTimeout,            ///< no result within the per-tx deadline
  kBudgetExhausted,    ///< retry budget spent; sequence dead-lettered
  kCounterpartyReject, ///< a direct counterparty call was refused
  kCrashRestart,       ///< agent process killed / restarted (chaos)
  kReorgedOut,         ///< executed on a fork the host later retracted
  kCount_,             // sentinel
};
[[nodiscard]] const char* to_string(RelayErrorKind kind);

/// One structured relay failure (replaces the unbounded error string).
struct RelayError {
  RelayErrorKind kind = RelayErrorKind::kDropped;
  std::string label;   ///< sequence label + tx index, e.g. "lc-update#7"
  std::string detail;
  double time = 0;
  int attempt = 0;     ///< which attempt of the tx failed (0-based)
};

/// Bounded ring buffer of RelayErrors; old entries are overwritten but
/// per-kind totals keep counting.
class ErrorLog {
 public:
  explicit ErrorLog(std::size_t capacity = 64);

  void push(RelayError e);
  void clear();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Errors ever pushed, including overwritten ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t total_of(RelayErrorKind kind) const;
  /// i = 0 is the oldest retained entry.
  [[nodiscard]] const RelayError& at(std::size_t i) const;
  [[nodiscard]] std::vector<RelayError> snapshot() const;

 private:
  std::vector<RelayError> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(RelayErrorKind::kCount_)>
      kind_totals_{};
};

/// A sequence that exhausted its retry budget.  Carries everything
/// redrive() needs to resume from the failed transaction: the
/// undelivered tail and the spend so far (so the redriven outcome's
/// `retries`/`cost_usd` account for the whole sequence, not just the
/// second life).
struct DeadLetter {
  std::string label;
  std::size_t failed_index = 0;  ///< tx index that could not be delivered
  std::size_t total_txs = 0;
  int attempts = 0;              ///< attempts spent on the failed tx
  RelayError last_error;
  std::vector<host::Transaction> remaining;  ///< txs[failed_index..]
  int retries_spent = 0;                     ///< sequence retries at death
  double cost_usd = 0;                       ///< fees burned before death
  std::optional<double> started_at;
};

struct PipelineConfig {
  /// Per-transaction deadline.  Must exceed the host's worst natural
  /// result latency (mempool latency + kTxExpirySlots slots ~ 61 s),
  /// so it only fires for blackholed transactions — anything slower
  /// reports drop/failure first and retries cleanly.  0 disables.
  double tx_deadline_s = 75.0;
  /// Attempts per transaction for drops/timeouts (including the first).
  int max_attempts_per_tx = 8;
  /// Attempts per transaction for deterministic program errors (these
  /// rarely heal; two attempts cover transient races with other actors).
  int max_exec_failures = 2;
  /// Total resubmissions allowed across a whole sequence.
  int max_retries_per_sequence = 48;
  double backoff_base_s = 1.5;
  double backoff_max_s = 45.0;
  /// Jitter as a +/- fraction of the backoff delay.
  double backoff_jitter = 0.2;
  /// Climb the fee ladder (base -> priority -> bundle) on retries.
  bool escalate_fees = true;
  std::size_t error_log_capacity = 64;
  /// When the host runs fork-aware, the commitment level at which a
  /// transaction counts as delivered.  kProcessed (optimistic) advances
  /// on execution and repairs reorged-out transactions off-band;
  /// kRooted holds each transaction until its slot roots before
  /// advancing, trading latency for never advancing past a
  /// retractable execution.  Ignored on a linear (non-fork-aware)
  /// host, where every inclusion is final.
  host::Commitment commitment = host::Commitment::kProcessed;
};

/// Backoff before attempt `attempt` (>= 1) with unit jitter draw `u` in
/// [0, 1).  Pure so tests can pin determinism.
[[nodiscard]] double backoff_delay(const PipelineConfig& cfg, int attempt, double u);

/// Fee for retry `attempt` (>= 1) of a tx quoted at `original`:
/// base -> priority -> bundle, then doubling bids.
[[nodiscard]] host::FeePolicy escalate_fee(const host::FeePolicy& original, int attempt);

class TxPipeline {
 public:
  TxPipeline(sim::Simulation& sim, host::Chain& host, Rng rng, PipelineConfig cfg = {});

  /// Submits transactions strictly one after another (each waits for
  /// the previous result), retrying per-transaction within the
  /// configured budgets.  On the all-success fast path this behaves —
  /// and costs — exactly like the naive sequential submitter.
  void submit_sequence(std::vector<host::Transaction> txs, SequenceDone done,
                       std::string label = {});

  // --- crash-restart ---------------------------------------------------
  /// Drops every in-flight sequence *without* invoking its completion
  /// callback (the process holding those continuations is dead),
  /// cancels their deadline timers and clears the dead-letter queue.
  /// The pipeline is immediately reusable — this models a process
  /// restart, not a graceful shutdown.
  void reset();

  /// Re-queues every dead-lettered sequence from its failed
  /// transaction onward with a fresh retry budget.  Redriven outcomes
  /// carry the retries/cost already spent before dead-lettering, so
  /// `SequenceOutcome::retries` reflects the sequence's whole life.
  /// Returns the number of sequences redriven.
  std::size_t redrive(SequenceDone done = {});

  // --- observability ---------------------------------------------------
  [[nodiscard]] const ErrorLog& errors() const noexcept { return errors_; }
  [[nodiscard]] ErrorLog& errors() noexcept { return errors_; }
  [[nodiscard]] const std::vector<DeadLetter>& dead_letters() const noexcept {
    return dead_letters_;
  }
  [[nodiscard]] std::uint64_t retries_total() const noexcept { return retries_total_; }
  [[nodiscard]] std::uint64_t timeouts_total() const noexcept { return timeouts_total_; }
  [[nodiscard]] std::uint64_t escalations_total() const noexcept {
    return escalations_total_;
  }
  [[nodiscard]] std::uint64_t sequences_ok() const noexcept { return sequences_ok_; }
  [[nodiscard]] std::uint64_t sequences_failed() const noexcept {
    return sequences_failed_;
  }
  /// Sequences submitted but not yet finished (0 == nothing stalled).
  [[nodiscard]] std::uint64_t in_flight() const noexcept { return in_flight_; }
  /// Sequences killed mid-flight by reset() (crash injection).
  [[nodiscard]] std::uint64_t sequences_reset() const noexcept {
    return sequences_reset_;
  }
  /// Dead-lettered sequences given a second life by redrive().
  [[nodiscard]] std::uint64_t redriven_total() const noexcept {
    return redriven_total_;
  }
  /// Executions retracted by host reorgs that did not survive onto the
  /// winning fork (successes only; retracted failures had no effects).
  [[nodiscard]] std::uint64_t reorged_out_total() const noexcept {
    return reorged_out_total_;
  }
  /// Off-band single-transaction repair sequences launched for
  /// reorged-out transactions the pipeline had already advanced past.
  [[nodiscard]] std::uint64_t reorg_repairs() const noexcept {
    return reorg_repairs_;
  }

  [[nodiscard]] const PipelineConfig& config() const noexcept { return cfg_; }

 private:
  struct Seq {
    std::string label;
    std::vector<host::Transaction> txs;
    std::size_t next = 0;           ///< index of the tx in flight
    int attempt = 0;                ///< attempts already spent on txs[next]
    std::uint64_t attempt_id = 0;   ///< generation counter; stale-result guard
    sim::Simulation::TimerId deadline = 0;
    SequenceOutcome outcome;
    SequenceDone done;
    bool finished = false;
    /// Rooted-commitment mode: txs[next] executed and is waiting for
    /// its slot to root before the sequence advances.
    bool holding = false;
    host::TxResult held;
    host::Chain::RootedWaitId rooted_wait = 0;
  };

  void submit_sequence_carrying(std::vector<host::Transaction> txs, SequenceDone done,
                                std::string label, int carried_retries,
                                double carried_cost,
                                std::optional<double> carried_start);
  void submit_current(const std::shared_ptr<Seq>& s);
  void on_result(const std::shared_ptr<Seq>& s, std::size_t idx, std::uint64_t id,
                 const host::TxResult& res);
  void on_reorged_out(const std::shared_ptr<Seq>& s, std::size_t idx,
                      std::uint64_t id, const host::TxResult& res);
  void on_rooted(const std::shared_ptr<Seq>& s, std::uint64_t id);
  void on_deadline(const std::shared_ptr<Seq>& s, std::uint64_t id);
  void retry(const std::shared_ptr<Seq>& s, RelayErrorKind kind, std::string detail);
  void finish(const std::shared_ptr<Seq>& s, bool ok);

  sim::Simulation& sim_;
  host::Chain& host_;
  Rng rng_;
  PipelineConfig cfg_;

  ErrorLog errors_;
  std::vector<DeadLetter> dead_letters_;
  /// In-flight sequences, so reset() can find and kill them.  Entries
  /// go stale when a sequence finishes and are pruned lazily.
  std::vector<std::weak_ptr<Seq>> live_;
  std::uint64_t retries_total_ = 0;
  std::uint64_t timeouts_total_ = 0;
  std::uint64_t escalations_total_ = 0;
  std::uint64_t sequences_ok_ = 0;
  std::uint64_t sequences_failed_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t sequences_reset_ = 0;
  std::uint64_t redriven_total_ = 0;
  std::uint64_t reorged_out_total_ = 0;
  std::uint64_t reorg_repairs_ = 0;
};

}  // namespace bmg::relayer
