// Executes FaultPlan crash windows against registered agents.
//
// The chain executes every other fault kind itself; kCrash windows
// target *processes*, so a separate controller owns them: at each
// window's start it kills every registered agent whose name matches
// the window's prefix, at its end it restarts them.  Kill and restart
// run as plain scheduler events, so a crash lands between — never
// inside — event handlers, exactly like a real SIGKILL between
// scheduler quanta of a single-threaded process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "host/fault.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler.hpp"

namespace bmg::relayer {

class CrashController {
 public:
  explicit CrashController(sim::Simulation& sim) : sim_(sim) {}

  /// Registers an agent as a crash target.  The agent must outlive the
  /// controller's scheduled events (in practice: the Deployment owns
  /// both and registers in start()).
  void add(sim::CrashableAgent& agent) { agents_.push_back(&agent); }

  /// Arms every kCrash window in `plan` not yet seen.  Cursor-based
  /// over the plan's window list, so tests can append windows after
  /// open_ibc() and call schedule() again without double-arming the
  /// earlier ones.  Windows whose start already passed are skipped
  /// (crashing retroactively is meaningless).  Returns windows armed.
  std::size_t schedule(const host::FaultPlan& plan);

  [[nodiscard]] std::size_t agent_count() const noexcept { return agents_.size(); }
  /// Total kill / restart actions actually applied to agents.
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }

 private:
  void arm(const host::FaultWindow& w);
  [[nodiscard]] static bool matches(const std::string& prefix,
                                    const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  }

  sim::Simulation& sim_;
  std::vector<sim::CrashableAgent*> agents_;
  std::size_t cursor_ = 0;  ///< plan windows already examined
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
};

}  // namespace bmg::relayer
