#include "relayer/crash_controller.hpp"

namespace bmg::relayer {

std::size_t CrashController::schedule(const host::FaultPlan& plan) {
  std::size_t armed = 0;
  const auto& windows = plan.windows();
  for (; cursor_ < windows.size(); ++cursor_) {
    const host::FaultWindow& w = windows[cursor_];
    if (w.kind != host::FaultKind::kCrash) continue;
    if (w.start < sim_.now()) continue;
    arm(w);
    ++armed;
  }
  return armed;
}

void CrashController::arm(const host::FaultWindow& w) {
  // Copy what the deferred events need; the plan may mutate later.
  const std::string prefix = w.label_prefix;
  sim_.at(w.start, [this, prefix] {
    for (sim::CrashableAgent* a : agents_) {
      if (!matches(prefix, a->agent_name()) || !a->running()) continue;
      a->crash();
      ++crashes_;
    }
  });
  sim_.at(w.end, [this, prefix] {
    for (sim::CrashableAgent* a : agents_) {
      if (!matches(prefix, a->agent_name()) || a->running()) continue;
      a->restart();
      ++restarts_;
    }
  });
}

}  // namespace bmg::relayer
