// Fishermen (paper §III-C) and the off-chain gossip they listen to.
//
// Validators gossip their block signatures off-chain (in reality:
// mempool observation, p2p gossip, or the host chain itself).  A
// fisherman records every (validator, height, header, signature)
// observation; the moment it sees conflicting headers signed by the
// same validator at one height — or a signature for a block that
// contradicts the canonical chain — it submits evidence to the Guest
// Contract and collects the slashing reward.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "relayer/tx_pipeline.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler.hpp"

namespace bmg::relayer {

/// One gossiped signature observation.
struct SignatureGossip {
  crypto::PublicKey validator;
  ibc::QuorumHeader header;
  crypto::Signature signature;
};

/// Trivial pub/sub bus for off-chain gossip between agents.
class GossipBus {
 public:
  using Handler = std::function<void(const SignatureGossip&)>;

  void subscribe(Handler handler) { handlers_.push_back(std::move(handler)); }

  void publish(const SignatureGossip& gossip) {
    for (const auto& h : handlers_) h(gossip);
  }

 private:
  std::vector<Handler> handlers_;
};

class FishermanAgent final : public sim::CrashableAgent {
 public:
  FishermanAgent(sim::Simulation& sim, host::Chain& host, guest::GuestContract& contract,
                 GossipBus& bus, crypto::PublicKey payer, PipelineConfig pipeline_cfg = {})
      : sim_(sim),
        host_(host),
        contract_(contract),
        bus_(bus),
        payer_(std::move(payer)),
        pipeline_(sim, host, Rng(fold_payer_seed(payer_)), pipeline_cfg) {}

  void start() {
    bus_.subscribe([this](const SignatureGossip& g) {
      if (running_) on_gossip(g);
    });
  }

  // --- crash-restart (sim::CrashableAgent) ------------------------------
  [[nodiscard]] const std::string& agent_name() const override { return name_; }
  [[nodiscard]] bool running() const override { return running_; }
  /// Observation memory is ephemeral by design: it dies with the
  /// process.  Equivocations gossiped while down are missed (a real
  /// fisherman has the same blind spot), but the on-chain ban set is
  /// durable, so successfully prosecuted offenders stay prosecuted.
  void crash() override {
    if (!running_) return;
    running_ = false;
    ++crash_count_;
    pipeline_.reset();
    observations_.clear();
    prosecuted_.clear();
  }
  /// Observation memory is gone, but anything this fisherman already
  /// *staged on chain* is not: scan our staging buffers for evidence
  /// blobs whose prosecution never completed and resubmit the finishing
  /// transaction.  Without this, a crash inside the prosecution window
  /// silently loses the evidence — the offender keeps its stake even
  /// though the proof is sitting on chain, already paid for.
  void restart() override {
    if (running_) return;
    running_ = true;
    rederive_pending_evidence();
  }
  [[nodiscard]] std::uint64_t crash_count() const noexcept { return crash_count_; }

  [[nodiscard]] std::uint64_t evidence_submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t evidence_accepted() const { return accepted_; }
  /// Evidence sequences recovered from on-chain staging buffers after a
  /// crash (each one would have been silently lost before PR 8).
  [[nodiscard]] std::uint64_t evidence_rederived() const { return rederived_; }
  /// Sim time this fisherman first decided to prosecute `offender`;
  /// survives crashes (it is measurement state, not process state).
  [[nodiscard]] std::optional<double> first_detected(
      const crypto::PublicKey& offender) const {
    const auto it = first_detect_.find(offender);
    if (it == first_detect_.end()) return std::nullopt;
    return it->second;
  }
  /// Pipeline state (retries, dead letters, structured errors).
  [[nodiscard]] const TxPipeline& pipeline() const { return pipeline_; }

 private:
  void on_gossip(const SignatureGossip& gossip) {
    const auto key = std::make_pair(gossip.validator, gossip.header.height);
    auto& seen = observations_[key];

    // Case 1 (§III-C): two different blocks signed at the same height.
    for (const auto& prior : seen) {
      if (prior.header.signing_digest() != gossip.header.signing_digest()) {
        submit_double_sign(prior, gossip);
        seen.push_back(gossip);
        return;
      }
    }

    // Cases 2/3: height beyond the head, or conflicting with the
    // canonical block at that height.
    bool bogus = false;
    if (gossip.header.height >= contract_.block_count()) {
      bogus = true;
    } else if (gossip.header.signing_digest() !=
               contract_.block_at(gossip.header.height).hash()) {
      bogus = true;
    }
    if (bogus && !contract_.is_banned(gossip.validator) &&
        prosecuted_.insert(gossip.validator).second) {
      submit_single_header(gossip);
    }
    seen.push_back(gossip);
  }

  void submit_double_sign(const SignatureGossip& a, const SignatureGossip& b) {
    // The in-memory prosecuted_ set dies on crash; the chain's ban set
    // is the durable record, so check it first to avoid re-submitting
    // evidence for an offender a previous incarnation already slashed.
    if (contract_.is_banned(a.validator)) return;
    if (!prosecuted_.insert(a.validator).second) return;
    note_detection(a.validator);
    Encoder ev;
    ev.raw(a.validator.view());
    ev.u8(2);
    ev.bytes(a.header.encode());
    ev.bytes(b.header.encode());
    // Annex: raw signatures per header, making the staged blob
    // self-contained for post-crash re-derivation.
    ev.raw(a.signature.view());
    ev.raw(b.signature.view());
    std::vector<host::SigVerify> sigs;
    const Hash32 da = a.header.signing_digest();
    const Hash32 db = b.header.signing_digest();
    sigs.push_back(host::SigVerify{a.validator, da, a.signature});
    sigs.push_back(host::SigVerify{b.validator, db, b.signature});
    submit_evidence(ev.take(), std::move(sigs));
  }

  void submit_single_header(const SignatureGossip& g) {
    note_detection(g.validator);
    Encoder ev;
    ev.raw(g.validator.view());
    ev.u8(1);
    ev.bytes(g.header.encode());
    ev.raw(g.signature.view());
    const Hash32 digest = g.header.signing_digest();
    std::vector<host::SigVerify> sigs{
        host::SigVerify{g.validator, digest, g.signature}};
    submit_evidence(ev.take(), std::move(sigs));
  }

  void note_detection(const crypto::PublicKey& offender) {
    first_detect_.emplace(offender, sim_.now());
  }

  void submit_evidence(Bytes blob, std::vector<host::SigVerify> sigs) {
    const std::uint64_t buffer_id = next_buffer_++;
    std::uint32_t offset = 0;
    std::vector<host::Transaction> txs;
    for (const Bytes& chunk : guest::ix::chunk_payload(blob)) {
      host::Transaction tx;
      tx.payer = payer_;
      tx.label = "fisherman:chunk";
      tx.instructions.push_back(guest::ix::chunk_upload(buffer_id, offset, chunk));
      offset += static_cast<std::uint32_t>(chunk.size());
      txs.push_back(std::move(tx));
    }
    host::Transaction fin;
    fin.payer = payer_;
    fin.label = "fisherman:evidence";
    fin.instructions.push_back(guest::ix::submit_evidence(buffer_id));
    fin.sig_verifies = std::move(sigs);
    txs.push_back(std::move(fin));

    ++submitted_;
    // Evidence must survive drops and blackholes: a fisherman that
    // gives up on the first lost transaction lets a double-signer keep
    // its stake.  The pipeline retries with backoff and fee escalation
    // until the sequence lands or the budget dead-letters it.
    pipeline_.submit_sequence(
        std::move(txs),
        [this](const SequenceOutcome& out) {
          if (out.ok) ++accepted_;
        },
        "fisherman");
  }

  /// Post-crash recovery: the chain remembers what this process forgot.
  /// Any staging buffer of ours still unconsumed is a prosecution that
  /// never finished — decode it (offender | count | headers | signature
  /// annex), rebuild the sig-verify set from the annex, and resubmit
  /// just the finishing submit_evidence transaction (the chunks are
  /// already on chain; re-uploading them would double-pay).
  void rederive_pending_evidence() {
    const std::vector<std::uint64_t> staged = contract_.staging_buffers_of(payer_);
    for (const std::uint64_t id : staged)
      next_buffer_ = std::max(next_buffer_, id + 1);
    for (const std::uint64_t id : staged) {
      const auto blob = contract_.staging_buffer_bytes(payer_, id);
      if (!blob) continue;
      try {
        Decoder b(*blob);
        const Bytes key_raw = b.raw(32);
        crypto::ed25519::PublicKeyBytes pk{};
        std::copy(key_raw.begin(), key_raw.end(), pk.begin());
        const crypto::PublicKey offender(pk);
        const std::uint8_t count = b.u8();
        if (count != 1 && count != 2) continue;
        std::vector<ibc::QuorumHeader> headers;
        for (std::uint8_t i = 0; i < count; ++i)
          headers.push_back(ibc::QuorumHeader::decode(b.bytes()));
        std::vector<crypto::Signature> annex;
        for (std::uint8_t i = 0; i < count; ++i) {
          const Bytes s = b.raw(64);
          crypto::ed25519::SignatureBytes sb{};
          std::copy(s.begin(), s.end(), sb.begin());
          annex.emplace_back(sb);
        }
        b.expect_done();
        if (contract_.is_banned(offender)) continue;
        if (!prosecuted_.insert(offender).second) continue;
        std::vector<host::SigVerify> sigs;
        for (std::uint8_t i = 0; i < count; ++i)
          sigs.push_back(
              host::SigVerify{offender, headers[i].signing_digest(), annex[i]});
        host::Transaction fin;
        fin.payer = payer_;
        fin.label = "fisherman:evidence";
        fin.instructions.push_back(guest::ix::submit_evidence(id));
        fin.sig_verifies = std::move(sigs);
        std::vector<host::Transaction> txs;
        txs.push_back(std::move(fin));
        ++rederived_;
        ++submitted_;
        pipeline_.submit_sequence(
            std::move(txs),
            [this](const SequenceOutcome& out) {
              if (out.ok) ++accepted_;
            },
            "fisherman");
      } catch (const std::exception&) {
        // Truncated blob: the crash hit mid-upload, before the evidence
        // was fully staged.  Nothing recoverable here.
        continue;
      }
    }
  }

  [[nodiscard]] static std::uint64_t fold_payer_seed(const crypto::PublicKey& key) {
    std::uint64_t h = 0xF15'4E12'3A5Eull;  // distinct stream from relayers
    for (unsigned char b : key.raw()) h = (h ^ b) * 0x1000'0000'01B3ull;
    return h;
  }

  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  GossipBus& bus_;
  crypto::PublicKey payer_;
  std::string name_ = "fisherman";
  bool running_ = true;
  std::uint64_t crash_count_ = 0;

  TxPipeline pipeline_;

  std::map<std::pair<crypto::PublicKey, ibc::Height>, std::vector<SignatureGossip>>
      observations_;
  std::set<crypto::PublicKey> prosecuted_;
  /// First-detection timestamps; deliberately NOT cleared on crash —
  /// this is the measurement layer's record, not process memory.
  std::map<crypto::PublicKey, double> first_detect_;
  std::uint64_t next_buffer_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rederived_ = 0;
};

/// A validator that behaves normally but, alongside each honest
/// signature, also signs a forged fork of the block and gossips both —
/// the misbehaviour class 1 of §III-C.
class ByzantineValidatorAgent {
 public:
  ByzantineValidatorAgent(sim::Simulation& sim, host::Chain& host,
                          guest::GuestContract& contract, crypto::PrivateKey key,
                          GossipBus& bus)
      : sim_(sim), host_(host), contract_(contract), key_(std::move(key)), bus_(bus) {}

  void start() {
    host_.subscribe(guest::kProgramName, [this](const host::Event& ev) {
      if (ev.name != guest::GuestContract::kEvNewBlock) return;
      Decoder d(ev.data);
      const ibc::Height height = d.u64();
      sim_.after(1.0, [this, height] { equivocate(height); });
    });
  }

 private:
  void equivocate(ibc::Height height) {
    if (height >= contract_.block_count()) return;
    const guest::GuestBlock& canonical = contract_.block_at(height);

    // Honest signature gossiped (and submittable on-chain)...
    bus_.publish(SignatureGossip{key_.public_key(), canonical.header,
                                 key_.sign(canonical.hash().view())});
    // ...and a signature over a forged variant of the same height.
    ibc::QuorumHeader forged = canonical.header;
    forged.state_root.bytes[31] ^= 0xFF;
    bus_.publish(SignatureGossip{key_.public_key(), forged,
                                 key_.sign(forged.signing_digest().view())});
  }

  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  crypto::PrivateKey key_;
  GossipBus& bus_;
};

}  // namespace bmg::relayer
