#include "relayer/validator_agent.hpp"

namespace bmg::relayer {

ValidatorAgent::ValidatorAgent(sim::Simulation& sim, host::Chain& host,
                               guest::GuestContract& contract, crypto::PrivateKey key,
                               ValidatorProfile profile, Rng rng)
    : sim_(sim),
      host_(host),
      contract_(contract),
      key_(std::move(key)),
      profile_(std::move(profile)),
      rng_(rng) {
  timer_owner_ = sim_.register_agent();
}

void ValidatorAgent::start() {
  host_.subscribe(guest::kProgramName, [this](const host::Event& ev) {
    if (!running_) return;
    if (ev.name != guest::GuestContract::kEvNewBlock) return;
    Decoder d(ev.data);
    const ibc::Height height = d.u64();
    on_new_block(height, ev.time);
  });
}

void ValidatorAgent::crash() {
  if (!running_) return;
  running_ = false;
  ++crash_count_;
  ++incarnation_;
  // Pending signing delays die with the process; a Sign tx already
  // submitted to the host still lands (the chain has it), but its
  // result handler is stale-guarded so a dead process records nothing.
  sim_.cancel_agent(timer_owner_);
}

void ValidatorAgent::restart() {
  if (running_) return;
  running_ = true;
  if (!profile_.active) return;
  if (!contract_.epoch_validators().contains(pubkey())) return;
  // Durable state is entirely on-chain: if the head block is still
  // collecting signatures and ours is not among them, sign it now —
  // NewBlock events fired while down are gone for good.
  const guest::GuestBlock& head = contract_.head();
  if (!head.finalised && head.signers.count(pubkey()) == 0)
    on_new_block(head.header.height, sim_.now());
}

void ValidatorAgent::on_new_block(ibc::Height height, double announced_at) {
  if (!profile_.active) return;
  if (!contract_.epoch_validators().contains(pubkey())) return;

  const double delay = profile_.latency.sample(rng_);
  sim_.after_cancellable(
      delay,
      [this, height, announced_at] {
        // A host reorg may have rolled the announced block away while
        // this signing delay was pending; if the winning fork re-mints
        // it, the re-fired NewBlock event schedules a fresh signing.
        if (height >= contract_.block_count()) return;
        // Read the block digest from the contract account and sign it.
        const Hash32 digest = contract_.block_at(height).hash();
        host::Transaction tx;
        tx.payer = pubkey();
        tx.label = "sign:" + profile_.name;
        tx.fee = profile_.fee;
        tx.instructions.push_back(guest::ix::sign_block(height, pubkey()));
        tx.sig_verifies.push_back(
            host::SigVerify{pubkey(), digest, key_.sign(digest.view())});
        const std::uint64_t inc = incarnation_;
        host_.submit(std::move(tx),
                     [this, announced_at, inc](const host::TxResult& res) {
                       if (inc != incarnation_) return;  // process died meanwhile
                       if (!res.executed || !res.success) return;
                       ++sigs_;
                       latency_.add(res.time - announced_at);
                     });
      },
      timer_owner_);
}

}  // namespace bmg::relayer
