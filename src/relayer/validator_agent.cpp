#include "relayer/validator_agent.hpp"

namespace bmg::relayer {

ValidatorAgent::ValidatorAgent(sim::Simulation& sim, host::Chain& host,
                               guest::GuestContract& contract, crypto::PrivateKey key,
                               ValidatorProfile profile, Rng rng)
    : sim_(sim),
      host_(host),
      contract_(contract),
      key_(std::move(key)),
      profile_(std::move(profile)),
      rng_(rng) {}

void ValidatorAgent::start() {
  host_.subscribe(guest::kProgramName, [this](const host::Event& ev) {
    if (ev.name != guest::GuestContract::kEvNewBlock) return;
    Decoder d(ev.data);
    const ibc::Height height = d.u64();
    on_new_block(height, ev.time);
  });
}

void ValidatorAgent::on_new_block(ibc::Height height, double announced_at) {
  if (!profile_.active) return;
  if (!contract_.epoch_validators().contains(pubkey())) return;

  const double delay = profile_.latency.sample(rng_);
  sim_.after(delay, [this, height, announced_at] {
    // Read the block digest from the contract account and sign it.
    const Hash32 digest = contract_.block_at(height).hash();
    host::Transaction tx;
    tx.payer = pubkey();
    tx.label = "sign:" + profile_.name;
    tx.fee = profile_.fee;
    tx.instructions.push_back(guest::ix::sign_block(height, pubkey()));
    tx.sig_verifies.push_back(host::SigVerify{
        pubkey(), Bytes(digest.bytes.begin(), digest.bytes.end()),
        key_.sign(digest.view())});
    host_.submit(std::move(tx), [this, announced_at](const host::TxResult& res) {
      if (!res.executed || !res.success) return;
      ++sigs_;
      latency_.add(res.time - announced_at);
    });
  });
}

}  // namespace bmg::relayer
