#include "relayer/tx_pipeline.hpp"

#include <algorithm>
#include <cmath>

namespace bmg::relayer {

const char* to_string(RelayErrorKind kind) {
  switch (kind) {
    case RelayErrorKind::kDropped:
      return "dropped";
    case RelayErrorKind::kExecFailed:
      return "exec-failed";
    case RelayErrorKind::kTimeout:
      return "timeout";
    case RelayErrorKind::kBudgetExhausted:
      return "budget-exhausted";
    case RelayErrorKind::kCounterpartyReject:
      return "counterparty-reject";
    case RelayErrorKind::kCrashRestart:
      return "crash-restart";
    case RelayErrorKind::kReorgedOut:
      return "reorged-out";
    default:
      return "unknown";
  }
}

// --- ErrorLog ---------------------------------------------------------------

ErrorLog::ErrorLog(std::size_t capacity) : ring_(std::max<std::size_t>(capacity, 1)) {}

void ErrorLog::push(RelayError e) {
  ++total_;
  ++kind_totals_[static_cast<std::size_t>(e.kind)];
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % ring_.size();
  size_ = std::min(size_ + 1, ring_.size());
}

void ErrorLog::clear() {
  head_ = 0;
  size_ = 0;
}

std::uint64_t ErrorLog::total_of(RelayErrorKind kind) const {
  return kind_totals_[static_cast<std::size_t>(kind)];
}

const RelayError& ErrorLog::at(std::size_t i) const {
  // Oldest retained entry sits `size_` slots behind the write head.
  const std::size_t idx = (head_ + ring_.size() - size_ + i) % ring_.size();
  return ring_[idx];
}

std::vector<RelayError> ErrorLog::snapshot() const {
  std::vector<RelayError> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

// --- retry policy -----------------------------------------------------------

double backoff_delay(const PipelineConfig& cfg, int attempt, double u) {
  const int exp = std::max(attempt - 1, 0);
  double d = cfg.backoff_base_s * std::pow(2.0, static_cast<double>(exp));
  d = std::min(d, cfg.backoff_max_s);
  return d * (1.0 + cfg.backoff_jitter * (2.0 * u - 1.0));
}

host::FeePolicy escalate_fee(const host::FeePolicy& original, int attempt) {
  using Kind = host::FeePolicy::Kind;
  if (attempt <= 0) return original;

  // Doubling cap keeps lamport arithmetic far from overflow.
  const auto doubled = [](std::uint64_t base, int times) {
    return base << static_cast<unsigned>(std::min(times, 12));
  };

  switch (original.kind) {
    case Kind::kBase:
      // base -> priority -> bundle, then double the tip.
      if (attempt == 1) return host::FeePolicy::priority(200'000);
      return host::FeePolicy::bundle(
          doubled(host::usd_to_lamports(0.002), attempt - 2));
    case Kind::kPriority: {
      if (attempt == 1)
        return host::FeePolicy::priority(
            std::max<std::uint64_t>(original.cu_price_microlamports * 4, 200'000));
      const std::uint64_t floor_tip = host::usd_to_lamports(0.002);
      return host::FeePolicy::bundle(doubled(floor_tip, attempt - 2));
    }
    case Kind::kBundle:
    default:
      return host::FeePolicy::bundle(
          doubled(std::max<std::uint64_t>(original.tip_lamports, 1), attempt));
  }
}

// --- TxPipeline -------------------------------------------------------------

TxPipeline::TxPipeline(sim::Simulation& sim, host::Chain& host, Rng rng,
                       PipelineConfig cfg)
    : sim_(sim), host_(host), rng_(rng), cfg_(cfg), errors_(cfg.error_log_capacity) {}

void TxPipeline::submit_sequence(std::vector<host::Transaction> txs, SequenceDone done,
                                 std::string label) {
  submit_sequence_carrying(std::move(txs), std::move(done), std::move(label), 0, 0.0,
                           std::nullopt);
}

void TxPipeline::submit_sequence_carrying(std::vector<host::Transaction> txs,
                                          SequenceDone done, std::string label,
                                          int carried_retries, double carried_cost,
                                          std::optional<double> carried_start) {
  auto s = std::make_shared<Seq>();
  if (label.empty() && !txs.empty()) label = txs.back().label;
  s->label = std::move(label);
  s->txs = std::move(txs);
  s->outcome.txs = static_cast<int>(s->txs.size());
  s->outcome.retries = carried_retries;
  s->outcome.cost_usd = carried_cost;
  s->outcome.started_at = carried_start;
  s->done = std::move(done);
  ++in_flight_;
  if (s->txs.empty()) {
    finish(s, true);
    return;
  }
  // Track for reset(); prune stale entries before they accumulate.
  if (live_.size() >= 64)
    std::erase_if(live_, [](const std::weak_ptr<Seq>& w) {
      const auto sp = w.lock();
      return !sp || sp->finished;
    });
  live_.push_back(s);
  submit_current(s);
}

void TxPipeline::reset() {
  for (const auto& w : live_) {
    const auto s = w.lock();
    if (!s || s->finished) continue;
    // Mark finished so pending host results, backoff timers and
    // deadlines for this sequence all no-op; the done callback is
    // deliberately *not* invoked — the process that owned it is gone.
    s->finished = true;
    sim_.cancel(s->deadline);
    s->deadline = 0;
    if (s->rooted_wait != 0) {
      host_.cancel_rooted(s->rooted_wait);
      s->rooted_wait = 0;
    }
    --in_flight_;
    ++sequences_reset_;
  }
  live_.clear();
  dead_letters_.clear();
}

std::size_t TxPipeline::redrive(SequenceDone done) {
  std::vector<DeadLetter> dead = std::move(dead_letters_);
  dead_letters_.clear();
  for (DeadLetter& dl : dead) {
    ++redriven_total_;
    submit_sequence_carrying(std::move(dl.remaining), done, dl.label + ":redrive",
                             dl.retries_spent, dl.cost_usd, dl.started_at);
  }
  return dead.size();
}

void TxPipeline::submit_current(const std::shared_ptr<Seq>& s) {
  host::Transaction tx = s->txs[s->next];  // copy: retries need the original
  if (s->attempt > 0 && cfg_.escalate_fees) {
    tx.fee = escalate_fee(tx.fee, s->attempt);
    ++escalations_total_;
  }
  const std::uint64_t id = ++s->attempt_id;
  const std::size_t idx = s->next;
  if (cfg_.tx_deadline_s > 0) {
    s->deadline = sim_.after_cancellable(cfg_.tx_deadline_s,
                                         [this, s, id] { on_deadline(s, id); });
  }
  host_.submit(std::move(tx), [this, s, idx, id](const host::TxResult& res) {
    on_result(s, idx, id, res);
  });
}

void TxPipeline::on_result(const std::shared_ptr<Seq>& s, std::size_t idx,
                           std::uint64_t id, const host::TxResult& res) {
  // Reorged-out notifications refer to a *past* execution the pipeline
  // has usually already advanced past — they must bypass the stale
  // guard below.
  if (res.reorged_out) {
    on_reorged_out(s, idx, id, res);
    return;
  }
  // Stale: a deadline or retry superseded this attempt, or the sequence
  // was already dead-lettered.  Winning-fork re-executions of already
  // delivered transactions land here too and are idempotently ignored.
  if (s->finished || id != s->attempt_id) return;
  if (s->holding) {
    // Rooted mode, tx re-executed while held (it survived a reorg onto
    // the winning fork): the fresh result replaces the held one; the
    // rooted wait, registered for the same slot, stays armed.  A
    // duplicate-inclusion failure while holding is noise.
    if (res.executed && res.success) s->held = res;
    return;
  }
  sim_.cancel(s->deadline);
  s->deadline = 0;

  if (res.executed && res.success) {
    if (cfg_.commitment == host::Commitment::kRooted && host_.fork_mode()) {
      // Hold until the executing slot roots; when_rooted fires inline
      // if it already has.
      s->holding = true;
      s->held = res;
      s->rooted_wait = host_.when_rooted(res.slot, [this, s, id] { on_rooted(s, id); });
      return;
    }
    if (!s->outcome.started_at) s->outcome.started_at = res.time;
    s->outcome.finished_at = res.time;
    s->outcome.cost_usd += res.fee.usd();
    s->attempt = 0;
    ++s->next;
    if (s->next >= s->txs.size()) {
      finish(s, true);
      return;
    }
    // Same-event-turn submission: on the all-success path this is
    // byte-identical to the naive sequential submitter.
    submit_current(s);
    return;
  }

  retry(s, res.executed ? RelayErrorKind::kExecFailed : RelayErrorKind::kDropped,
        res.error);
}

void TxPipeline::on_rooted(const std::shared_ptr<Seq>& s, std::uint64_t id) {
  if (s->finished || !s->holding || id != s->attempt_id) return;
  s->rooted_wait = 0;
  s->holding = false;
  const host::TxResult res = s->held;
  s->outcome.rooted_at = sim_.now();
  if (!s->outcome.started_at) s->outcome.started_at = res.time;
  s->outcome.finished_at = res.time;
  s->outcome.cost_usd += res.fee.usd();
  s->attempt = 0;
  ++s->next;
  if (s->next >= s->txs.size()) {
    finish(s, true);
    return;
  }
  submit_current(s);
}

void TxPipeline::on_reorged_out(const std::shared_ptr<Seq>& s, std::size_t idx,
                                std::uint64_t id, const host::TxResult& res) {
  // A retracted *failure* had no effects to restore, and its retry (if
  // any) was already scheduled when the failure first reported.
  if (!res.success) return;
  ++reorged_out_total_;
  ++s->outcome.reorged_out;
  errors_.push(RelayError{RelayErrorKind::kReorgedOut,
                          s->label + "#" + std::to_string(idx),
                          "execution retracted by host reorg", sim_.now(),
                          s->attempt});

  if (!s->finished && s->holding && id == s->attempt_id) {
    // Rooted mode: the held (not yet counted) tx died — retry in place,
    // carrying the sequence's retry/fee state across forks.
    host_.cancel_rooted(s->rooted_wait);
    s->rooted_wait = 0;
    s->holding = false;
    retry(s, RelayErrorKind::kReorgedOut, "retracted before rooting");
    return;
  }

  // Optimistic mode: the pipeline already advanced past (or finished
  // after) this tx on the strength of a now-retracted execution.
  // Rewinding `next` would double-submit everything in between, so the
  // lost tx is repaired off-band as a fresh single-tx sequence.
  ++reorg_repairs_;
  std::vector<host::Transaction> repair{s->txs[idx]};
  submit_sequence_carrying(std::move(repair), {},
                           s->label + "#" + std::to_string(idx) + ":reorg-repair", 0,
                           0.0, std::nullopt);
}

void TxPipeline::on_deadline(const std::shared_ptr<Seq>& s, std::uint64_t id) {
  if (s->finished || id != s->attempt_id) return;
  ++timeouts_total_;
  retry(s, RelayErrorKind::kTimeout, "no result within deadline");
}

void TxPipeline::retry(const std::shared_ptr<Seq>& s, RelayErrorKind kind,
                       std::string detail) {
  errors_.push(RelayError{kind, s->label + "#" + std::to_string(s->next),
                          std::move(detail), sim_.now(), s->attempt});

  ++s->attempt;
  s->outcome.retries += 1;
  ++retries_total_;

  const int limit = kind == RelayErrorKind::kExecFailed ? cfg_.max_exec_failures
                                                        : cfg_.max_attempts_per_tx;
  if (s->attempt >= limit || s->outcome.retries > cfg_.max_retries_per_sequence) {
    DeadLetter dl;
    dl.label = s->label;
    dl.failed_index = s->next;
    dl.total_txs = s->txs.size();
    dl.attempts = s->attempt;
    dl.last_error = RelayError{kind, s->label + "#" + std::to_string(s->next),
                               "retry budget exhausted", sim_.now(), s->attempt};
    dl.remaining.assign(s->txs.begin() + static_cast<std::ptrdiff_t>(s->next),
                        s->txs.end());
    dl.retries_spent = s->outcome.retries;
    dl.cost_usd = s->outcome.cost_usd;
    dl.started_at = s->outcome.started_at;
    dead_letters_.push_back(std::move(dl));
    errors_.push(RelayError{RelayErrorKind::kBudgetExhausted,
                            s->label + "#" + std::to_string(s->next),
                            "sequence dead-lettered", sim_.now(), s->attempt});
    finish(s, false);
    return;
  }

  // Bump the generation so a late result for the abandoned attempt
  // cannot race the resubmission.
  const std::uint64_t rid = ++s->attempt_id;
  const double delay = backoff_delay(cfg_, s->attempt, rng_.uniform());
  sim_.after(delay, [this, s, rid] {
    if (s->finished || s->attempt_id != rid) return;
    submit_current(s);
  });
}

void TxPipeline::finish(const std::shared_ptr<Seq>& s, bool ok) {
  s->finished = true;
  s->outcome.ok = ok;
  if (!ok || !s->outcome.started_at) s->outcome.finished_at = sim_.now();
  if (ok)
    ++sequences_ok_;
  else
    ++sequences_failed_;
  --in_flight_;
  if (s->done) s->done(s->outcome);
}

}  // namespace bmg::relayer
