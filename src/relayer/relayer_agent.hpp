// The relayer (paper §III-C, Alg. 2 lower half).
//
// Watches both chains and forwards packets, acknowledgements and light
// client updates.  The guest→counterparty direction is cheap (the
// counterparty is a normal IBC chain); the counterparty→guest
// direction is where the host's limits bite: every light client update
// must be chunk-uploaded and signature-verified across ~36 host
// transactions (paper §V-A), and every packet delivery takes 4-5 more.
// This agent records exactly the statistics behind Figs. 4 and 5.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "counterparty/chain.hpp"
#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "relayer/tx_pipeline.hpp"
#include "sim/agent.hpp"
#include "sim/scheduler.hpp"

namespace bmg::relayer {

struct RelayerConfig {
  /// Fee policy for host transactions (paper §V-B: default fee model).
  host::FeePolicy fee = host::FeePolicy::base();
  /// Ed25519 pre-compile verifications per host transaction.  Real
  /// Tendermint commits sign per-validator vote payloads (~200 bytes
  /// each), which caps this near 4 within the 1232-byte limit.
  int sigs_per_update_tx = 4;
  /// Event-polling latency before the relayer reacts.
  double poll_latency_s = 0.3;
  /// Host transaction size limit used for chunking (Solana default).
  std::size_t host_max_tx_size = host::kMaxTransactionSize;
  /// Network latency for calls into the counterparty chain.
  double counterparty_latency_s = 0.5;
  /// Retry/backoff/fee-escalation policy of the submission pipeline.
  PipelineConfig pipeline;
  /// Seed for the pipeline's backoff-jitter stream (mixed with the
  /// payer key so co-deployed relayers draw independent streams).
  std::uint64_t pipeline_seed = 0x5EED'0F'9E3779B9ull;
  /// How many times update_guest_client rebuilds a failed update
  /// sequence from scratch (fresh staging buffer) after the pipeline
  /// dead-letters it.
  int update_retry_budget = 8;
  /// Agent name matched (by prefix) against FaultPlan crash windows.
  std::string name = "relayer";
};

class RelayerAgent final : public sim::CrashableAgent {
 public:
  RelayerAgent(sim::Simulation& sim, host::Chain& host, guest::GuestContract& contract,
               counterparty::CounterpartyChain& cp, ibc::ClientId guest_client_on_cp,
               crypto::PublicKey payer, RelayerConfig cfg = {});

  /// Subscribes to both chains' events and starts steady-state
  /// relaying.  The IBC handshake (Deployment::open_ibc) must finish
  /// before packets flow, but start() can be called first.
  void start();

  // --- crash-restart (sim::CrashableAgent) -------------------------------
  [[nodiscard]] const std::string& agent_name() const override { return cfg_.name; }
  [[nodiscard]] bool running() const override { return running_; }
  /// Kills the process: every in-memory queue, in-flight pipeline
  /// sequence and timer is dropped on the floor.  Subscriptions stay
  /// registered but their handlers no-op while down (missed events).
  void crash() override;
  /// Boots a fresh process and resyncs from on-chain state alone.
  void restart() override;
  [[nodiscard]] std::uint64_t crash_count() const noexcept { return crash_count_; }

  /// Rebuilds the relay queues from authoritative chain state: pending
  /// packet commitments and missing receipts/acks on both chains (via
  /// each module's seq-tracker surface), the contract's staged buffers
  /// and half-verified pending update.  Public so tests can exercise
  /// resync without a crash.
  void resync();

  // --- metrics -----------------------------------------------------------
  /// Per light-client update pushed into the guest (Figs. 4 and 5).
  [[nodiscard]] const Series& update_tx_counts() const { return update_txs_; }
  [[nodiscard]] const Series& update_durations() const { return update_durations_; }
  [[nodiscard]] const Series& update_costs_usd() const { return update_costs_; }
  /// Per ReceivePacket delivery into the guest (§V-A, §V-B).
  [[nodiscard]] const Series& recv_tx_counts() const { return recv_txs_; }
  [[nodiscard]] const Series& recv_costs_usd() const { return recv_costs_; }
  [[nodiscard]] std::uint64_t failed_sequences() const { return failed_sequences_; }
  [[nodiscard]] std::uint64_t packets_relayed_to_cp() const { return to_cp_packets_; }
  [[nodiscard]] std::uint64_t packets_relayed_to_guest() const { return to_guest_packets_; }

  [[nodiscard]] const crypto::PublicKey& payer() const { return payer_; }

  /// Structured relay-error log (bounded ring; replaces the old
  /// unbounded error string) and full pipeline state.
  [[nodiscard]] const ErrorLog& relay_errors() const { return pipeline_.errors(); }
  [[nodiscard]] const TxPipeline& pipeline() const { return pipeline_; }
  [[nodiscard]] TxPipeline& pipeline() { return pipeline_; }

  // --- building blocks (also used by Deployment for the handshake) --------
  using SequenceOutcome = relayer::SequenceOutcome;
  using SequenceDone = relayer::SequenceDone;

  /// Submits transactions strictly one after another through the
  /// resilient pipeline (per-tx deadlines, backoff, fee escalation,
  /// mid-sequence resumption), reporting aggregate cost and timing.
  void submit_sequence(std::vector<host::Transaction> txs, SequenceDone done);

  /// Chunk-uploads `payload` into a fresh staging buffer and appends
  /// `final_ix` consuming it.  Returns the transaction list.
  [[nodiscard]] std::vector<host::Transaction> chunked_call(ByteView payload,
                                                            host::Instruction final_ix,
                                                            std::uint64_t* buffer_id_out,
                                                            const std::string& label);

  /// Builds the full light-client-update transaction sequence for a
  /// counterparty header (chunks + begin + N sig-verify txs + finish).
  [[nodiscard]] std::vector<host::Transaction> build_update_sequence(
      const ibc::SignedQuorumHeader& sh);

  /// Builds the tail of an update the contract already holds in its
  /// pending slot: sig-verify txs for the not-yet-seen signatures plus
  /// the finish — no chunk re-upload, no begin.  How a restarted
  /// relayer resumes a half-verified update instead of starting over.
  [[nodiscard]] std::vector<host::Transaction> build_update_resume_sequence(
      const ibc::SignedQuorumHeader& sh,
      const guest::GuestContract::PendingUpdateInfo& pending);

  /// Pushes a finalised guest header into the counterparty's guest
  /// light client (direct chain call after network latency).
  void push_guest_header_to_cp(ibc::Height guest_height,
                               std::function<void()> done = {});

  /// Brings the guest's counterparty client to `cp_height`, then calls
  /// `done`.  Deduplicates: if an update is already in flight, the
  /// request queues behind it.
  void update_guest_client(ibc::Height cp_height, std::function<void()> done);

  /// Delivers a counterparty-sent packet into the guest (assumes the
  /// guest's client already knows `proof_height`).
  void deliver_packet_to_guest(const ibc::Packet& packet, ibc::Height proof_height,
                               SequenceDone done = {});
  void deliver_ack_to_guest(const ibc::Packet& packet, const ibc::Acknowledgement& ack,
                            ibc::Height proof_height, SequenceDone done = {});
  void deliver_timeout_to_guest(const ibc::Packet& packet, ibc::Height proof_height,
                                SequenceDone done = {});

 private:
  void on_guest_block_finalised(ibc::Height height);
  void on_cp_block(ibc::Height height);
  void pump_cp_to_guest();
  void update_guest_client_attempt(ibc::Height cp_height, std::function<void()> done,
                                   int rebuilds_left);
  void note_cp_reject(const std::string& label, const std::string& what);
  /// First cp height whose snapshot proves `key`: the latest block if
  /// it already does, else the next one.
  [[nodiscard]] ibc::Height cp_ready_height(ByteView key) const;
  /// Proof for `key` from the cp snapshot at `h`; throws IbcError when
  /// the snapshot has been pruned (matching the chain's prove_at).
  [[nodiscard]] trie::Proof cp_proof(ibc::Height h, ByteView key) const;
  /// Re-delivers a guest-sent packet whose FinalisedBlock event was
  /// missed while down, proving against the latest finalised block.
  void redeliver_guest_packet_to_cp(const ibc::Packet& packet, ibc::Height gh);

  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  counterparty::CounterpartyChain& cp_;
  ibc::ClientId guest_client_on_cp_;
  crypto::PublicKey payer_;
  RelayerConfig cfg_;

  /// Process liveness.  Ephemeral state below dies with crash();
  /// everything else the agent needs is reconstructed by resync().
  bool running_ = true;
  std::uint64_t crash_count_ = 0;
  sim::Simulation::AgentId timer_owner_ = 0;

  std::uint64_t next_buffer_id_ = 1;

  // Counterparty-side packets waiting to be relayed into the guest:
  // (packet, first cp height whose snapshot has the commitment).
  std::deque<std::pair<ibc::Packet, ibc::Height>> cp_outgoing_;
  // Acks produced on the counterparty for guest-sent packets.
  std::deque<std::tuple<ibc::Packet, ibc::Acknowledgement, ibc::Height>> cp_acks_;
  // Packets we delivered into the counterparty; remembered so we can
  // prove their acks... (guest-sent packets acked on cp are in cp_acks_).
  // Packets delivered into the guest whose acks must flow back to cp.
  std::vector<ibc::Packet> guest_acks_pending_;

  bool guest_update_in_flight_ = false;
  std::deque<std::pair<ibc::Height, std::function<void()>>> queued_updates_;

  Series update_txs_, update_durations_, update_costs_;
  Series recv_txs_, recv_costs_;
  std::uint64_t failed_sequences_ = 0;

  TxPipeline pipeline_;

  std::uint64_t to_cp_packets_ = 0;
  std::uint64_t to_guest_packets_ = 0;
};

}  // namespace bmg::relayer
