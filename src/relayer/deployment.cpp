#include "relayer/deployment.hpp"

#include <algorithm>
#include <stdexcept>

namespace bmg::relayer {

host::FeePolicy priority_fee_for_usd(double usd, std::uint64_t expected_cu) {
  const double base_usd = host::lamports_to_usd(host::kLamportsPerSignature);
  const double target = usd > base_usd ? usd - base_usd : 0.0;
  const std::uint64_t lamports = host::usd_to_lamports(target);
  if (expected_cu == 0) expected_cu = 1;
  return host::FeePolicy::priority(lamports * 1'000'000 / expected_cu);
}

std::vector<ValidatorProfile> paper_validators() {
  // Table I: (cost cents, median, Q3) per active validator; #1 and #9
  // carry heavy tails (max 35957.6 s and 261.6 s respectively).
  struct Row {
    double cents, med, q3, outage_p, outage_mean;
  };
  // #1's heavy tail is fitted to Table I's mean/stddev (77.4 s / 1373.6
  // with a 35957.6 s max over 1535 signatures => roughly three
  // multi-hour stalls per 1500 blocks).
  const Row rows[17] = {
      {1.00, 5.6, 7.6, 0.004, 12000.0},  // #1
      {1.40, 3.2, 5.2, 0.0, 0.0},        // #2
      {0.25, 3.2, 5.6, 0.0, 0.0},        // #3
      {1.40, 4.0, 6.0, 0.0, 0.0},        // #4
      {0.23, 3.6, 5.2, 0.0, 0.0},        // #5
      {0.23, 3.6, 5.2, 0.0, 0.0},        // #6
      {1.40, 4.0, 6.0, 0.0, 0.0},        // #7
      {0.60, 4.8, 6.4, 0.0, 0.0},        // #8
      {0.23, 3.6, 4.8, 0.02, 240.0},     // #9
      {0.23, 3.2, 5.2, 0.0, 0.0},        // #10
      {1.40, 4.8, 6.4, 0.0, 0.0},        // #11
      {1.40, 3.6, 5.6, 0.0, 0.0},        // #12
      {1.40, 4.4, 6.4, 0.0, 0.0},        // #13
      {1.40, 4.4, 6.0, 0.0, 0.0},        // #14
      {1.40, 3.2, 3.6, 0.0, 0.0},        // #15
      {0.20, 3.2, 4.4, 0.0, 0.0},        // #16
      {0.20, 3.2, 4.8, 0.0, 0.0},        // #17
  };

  std::vector<ValidatorProfile> out;
  // A Sign transaction uses roughly 60k CU (dispatch + pre-compile +
  // contract bookkeeping); fee targets are per Table I.
  constexpr std::uint64_t kSignCu = 60'000;
  for (int i = 0; i < 17; ++i) {
    const Row& r = rows[i];
    ValidatorProfile p;
    p.name = "validator-" + std::to_string(i + 1);
    p.stake = 1'000;
    p.latency = sim::LatencyProfile::from_quantiles(r.med, r.q3, /*floor=*/0.4)
                    .with_outages(r.outage_p, r.outage_mean);
    // Table I's observed stddevs imply thinner tails (CV ~ 0.5) than a
    // pure quantile fit suggests; clamp so per-block finalisation —
    // the max over all 17 active validators — matches Fig. 2's "all
    // but three within 21 s" shape.
    p.latency.sigma = std::min(p.latency.sigma, 0.45);
    p.fee = priority_fee_for_usd(r.cents / 100.0, kSignCu);
    p.active = true;
    out.push_back(std::move(p));
  }
  // The 7 staked-but-silent validators (paper §V-C).
  for (int i = 17; i < 24; ++i) {
    ValidatorProfile p;
    p.name = "validator-" + std::to_string(i + 1);
    p.stake = 1'000;
    p.active = false;
    out.push_back(std::move(p));
  }
  return out;
}

Deployment::Deployment(DeploymentConfig cfg)
    : cfg_(std::move(cfg)),
      seed_(cfg_.rng_stream ? stream_seed(cfg_.seed, *cfg_.rng_stream) : cfg_.seed),
      rng_(seed_),
      host_(sim_, Rng(seed_ ^ 0x1111), cfg_.host),
      cp_(sim_, Rng(seed_ ^ 0x2222), cfg_.counterparty),
      client_payer_(crypto::PrivateKey::from_label("client-payer").public_key()),
      service_payer_(crypto::PrivateKey::from_label("service-payer").public_key()) {
  if (cfg_.validators.empty()) cfg_.validators = paper_validators();
  cfg_.relayer.host_max_tx_size = cfg_.host.max_tx_size;

  // Genesis validator set of the guest chain.
  std::vector<ibc::ValidatorInfo> genesis;
  std::vector<crypto::PrivateKey> keys;
  for (const auto& p : cfg_.validators) {
    keys.push_back(crypto::PrivateKey::from_label("guest-" + p.name));
    genesis.push_back({keys.back().public_key(), p.stake});
  }

  auto contract = std::make_unique<guest::GuestContract>(cfg_.guest, genesis,
                                                         cp_.validators());
  guest_ = contract.get();
  host_.register_program(guest::kProgramName, std::move(contract));

  // Guest light client hosted on the counterparty.
  auto guest_client = std::make_unique<ibc::QuorumLightClient>(
      cfg_.guest.chain_id, guest_->epoch_validators());
  guest_client_on_cp_ = cp_.ibc().add_client(std::move(guest_client));

  // Agents.
  for (std::size_t i = 0; i < cfg_.validators.size(); ++i) {
    validators_.push_back(std::make_unique<ValidatorAgent>(
        sim_, host_, *guest_, keys[i], cfg_.validators[i], rng_.fork()));
    host_.airdrop(keys[i].public_key(), 1'000 * host::kLamportsPerSol);
  }
  crank_ = std::make_unique<CrankAgent>(sim_, host_, *guest_, service_payer_);
  crank_->set_delta(cfg_.guest.delta_seconds);
  relayer_ = std::make_unique<RelayerAgent>(sim_, host_, *guest_, cp_,
                                            guest_client_on_cp_,
                                            crypto::PrivateKey::from_label("relayer")
                                                .public_key(),
                                            cfg_.relayer);

  // Back genesis stake with vault funds (slashing moves real lamports).
  std::uint64_t total_stake = 0;
  for (const auto& v : genesis) total_stake += v.stake;
  host_.airdrop(guest_->stake_vault(), total_stake);

  host_.airdrop(client_payer_, 10'000 * host::kLamportsPerSol);
  host_.airdrop(service_payer_, 10'000 * host::kLamportsPerSol);
  host_.airdrop(relayer_->payer(), 10'000 * host::kLamportsPerSol);

  // Funded client balances on both chains.
  guest_->bank().mint("alice", "SOL", 1'000'000);
  cp_.bank().mint("bob", "PICA", 1'000'000);

  wire_finalisation_tracker();
}

void Deployment::wire_finalisation_tracker() {
  host_.subscribe(guest::kProgramName, [this](const host::Event& ev) {
    if (ev.name == guest::GuestContract::kEvFinalisedBlock) {
      Decoder d(ev.data);
      const ibc::Height h = d.u64();
      for (const ibc::Packet& p : guest_->block_at(h).packets) {
        const auto it = sent_.find(p.sequence);
        if (it != sent_.end() && !it->second->finalised) {
          it->second->finalised = true;
          it->second->finalised_at = ev.time;
        }
      }
    } else if (ev.name == "ConnOpenInit" || ev.name == "ConnOpenTry" ||
               ev.name == "ChanOpenInit" || ev.name == "ChanOpenTry") {
      last_event_id_.assign(ev.data.begin(), ev.data.end());
    }
  });
  // Rooted-confirmation tracking: on a linear host this fires inline
  // with the processed subscription above (rooted_at == finalised_at);
  // on a fork-aware host it trails by the rooted lag and is never
  // retracted.
  host::SubscribeOptions rooted_opts;
  rooted_opts.level = host::Commitment::kRooted;
  host_.subscribe(
      guest::kProgramName,
      [this](const host::Event& ev) {
        if (ev.name != guest::GuestContract::kEvFinalisedBlock) return;
        Decoder d(ev.data);
        const ibc::Height h = d.u64();
        if (h >= guest_->block_count()) return;
        for (const ibc::Packet& p : guest_->block_at(h).packets) {
          const auto it = sent_.find(p.sequence);
          if (it != sent_.end() && !it->second->rooted) {
            it->second->rooted = true;
            it->second->rooted_at = sim_.now();
          }
        }
      },
      rooted_opts);
}

void Deployment::start() {
  if (started_) return;
  started_ = true;
  host_.start();
  cp_.start();
  for (auto& v : validators_) v->start();
  crank_->start();
  relayer_->start();
  for (auto& v : validators_) crash_ctl_.add(*v);
  crash_ctl_.add(*crank_);
  crash_ctl_.add(*relayer_);
  schedule_crashes();
}

void Deployment::run_for(double seconds) { sim_.run_until(sim_.now() + seconds); }

bool Deployment::run_until(const std::function<bool()>& pred, double timeout_s) {
  const double deadline = sim_.now() + timeout_s;
  while (sim_.now() < deadline) {
    if (pred()) return true;
    if (!sim_.step()) break;
  }
  return pred();
}

ibc::Height Deployment::wait_guest_commit() {
  const Hash32 target = guest_->store().root_hash();
  const bool ok = run_until(
      [&] {
        const auto& head = guest_->head();
        return head.finalised && head.header.state_root == target;
      },
      600.0);
  if (!ok) throw std::runtime_error("deployment: guest block did not finalise in time");
  // Find the first finalised block committing the target root.
  for (ibc::Height h = guest_->head().header.height;; --h) {
    const auto& b = guest_->block_at(h);
    if (b.header.state_root == target && b.finalised) {
      if (h == 0 || guest_->block_at(h - 1).header.state_root != target) return h;
    }
    if (h == 0) break;
  }
  return guest_->head().header.height;
}

ibc::Height Deployment::wait_cp_block() {
  const ibc::Height current = cp_.height();
  (void)run_until([&] { return cp_.height() > current; }, 60.0);
  return cp_.height();
}

void Deployment::guest_handshake_call(ByteView payload) {
  bool done = false, ok = false;
  std::uint64_t buffer_id = 0;
  auto txs = relayer_->chunked_call(payload, guest::ix::handshake(0), &buffer_id,
                                    "handshake");
  txs.back().instructions[0] = guest::ix::handshake(buffer_id);
  for (auto& tx : txs) tx.payer = service_payer_;
  relayer_->submit_sequence(std::move(txs),
                            [&](const RelayerAgent::SequenceOutcome& out) {
                              done = true;
                              ok = out.ok;
                            });
  if (!run_until([&] { return done; }, 300.0) || !ok)
    throw std::runtime_error("deployment: handshake transaction failed");
}

void Deployment::open_ibc() {
  start();
  run_for(2.0);

  // --- connection handshake -------------------------------------------
  // 1. ConnOpenInit on the guest.
  {
    Encoder e;
    e.u8(static_cast<std::uint8_t>(guest::HandshakeOp::kConnOpenInit));
    e.str(guest_->counterparty_client_id()).str(guest_client_on_cp_);
    guest_handshake_call(e.out());
    guest_conn_ = last_event_id_;
  }
  ibc::Height gh = wait_guest_commit();
  {
    bool pushed = false;
    relayer_->push_guest_header_to_cp(gh, [&] { pushed = true; });
    if (!run_until([&] { return pushed; }, 30.0))
      throw std::runtime_error("deployment: header push failed");
  }

  // 2. ConnOpenTry on the counterparty (direct chain call).  The
  // counterparty validates the guest's client of it — chain id and
  // validator set — against a proven client-state commitment
  // (validate_self_client).
  const ibc::ClientStateCommitment guest_client_state{
      guest_->counterparty_client().tracked_chain_id(),
      guest_->counterparty_client().tracked_validator_set_hash()};
  cp_conn_ = cp_.ibc().conn_open_try(
      guest_client_on_cp_, guest_->counterparty_client_id(), guest_conn_,
      guest_->ibc().connection(guest_conn_), gh,
      guest_->prove_at(gh, ibc::connection_key(guest_conn_)), guest_client_state,
      guest_->prove_at(gh, ibc::client_key(guest_->counterparty_client_id())));

  // 3. ConnOpenAck on the guest (needs the cp client updated first).
  ibc::Height ch = wait_cp_block();
  {
    bool updated = false;
    relayer_->update_guest_client(ch, [&] { updated = true; });
    if (!run_until([&] { return updated; }, 600.0))
      throw std::runtime_error("deployment: guest client update failed");
    Encoder e;
    e.u8(static_cast<std::uint8_t>(guest::HandshakeOp::kConnOpenAck));
    e.str(guest_conn_).str(cp_conn_);
    e.bytes(cp_.ibc().connection(cp_conn_).encode());
    e.u64(ch);
    e.bytes(cp_.prove_at(ch, ibc::connection_key(cp_conn_)).serialize());
    // The guest validates the counterparty's client of the guest chain.
    const auto& cp_guest_client = cp_.ibc().client(guest_client_on_cp_);
    const ibc::ClientStateCommitment cp_client_state{
        cp_guest_client.tracked_chain_id(),
        cp_guest_client.tracked_validator_set_hash()};
    e.boolean(true);
    e.bytes(cp_client_state.encode());
    e.bytes(cp_.prove_at(ch, ibc::client_key(guest_client_on_cp_)).serialize());
    guest_handshake_call(e.out());
  }

  // 4. ConnOpenConfirm on the counterparty.
  gh = wait_guest_commit();
  {
    bool pushed = false;
    relayer_->push_guest_header_to_cp(gh, [&] { pushed = true; });
    (void)run_until([&] { return pushed; }, 30.0);
  }
  cp_.ibc().conn_open_confirm(cp_conn_, guest_->ibc().connection(guest_conn_), gh,
                              guest_->prove_at(gh, ibc::connection_key(guest_conn_)));

  // --- channel handshake -------------------------------------------------
  // 5. ChanOpenInit on the guest.
  {
    Encoder e;
    e.u8(static_cast<std::uint8_t>(guest::HandshakeOp::kChanOpenInit));
    e.str("transfer").str(guest_conn_).str("transfer");
    e.u8(static_cast<std::uint8_t>(ibc::ChannelOrder::kUnordered));
    guest_handshake_call(e.out());
    guest_channel_ = last_event_id_;
  }
  gh = wait_guest_commit();
  {
    bool pushed = false;
    relayer_->push_guest_header_to_cp(gh, [&] { pushed = true; });
    (void)run_until([&] { return pushed; }, 30.0);
  }

  // 6. ChanOpenTry on the counterparty.
  cp_channel_ = cp_.ibc().chan_open_try(
      "transfer", cp_conn_, "transfer", guest_channel_,
      guest_->ibc().channel("transfer", guest_channel_), gh,
      guest_->prove_at(gh, ibc::channel_key("transfer", guest_channel_)));

  // 7. ChanOpenAck on the guest.
  ch = wait_cp_block();
  {
    bool updated = false;
    relayer_->update_guest_client(ch, [&] { updated = true; });
    if (!run_until([&] { return updated; }, 600.0))
      throw std::runtime_error("deployment: guest client update failed");
    Encoder e;
    e.u8(static_cast<std::uint8_t>(guest::HandshakeOp::kChanOpenAck));
    e.str("transfer").str(guest_channel_).str(cp_channel_);
    e.bytes(cp_.ibc().channel("transfer", cp_channel_).encode());
    e.u64(ch);
    e.bytes(cp_.prove_at(ch, ibc::channel_key("transfer", cp_channel_)).serialize());
    guest_handshake_call(e.out());
  }

  // 8. ChanOpenConfirm on the counterparty.
  gh = wait_guest_commit();
  {
    bool pushed = false;
    relayer_->push_guest_header_to_cp(gh, [&] { pushed = true; });
    (void)run_until([&] { return pushed; }, 30.0);
  }
  cp_.ibc().chan_open_confirm("transfer", cp_channel_,
                              guest_->ibc().channel("transfer", guest_channel_), gh,
                              guest_->prove_at(
                                  gh, ibc::channel_key("transfer", guest_channel_)));
}

std::shared_ptr<Deployment::SendRecord> Deployment::send_transfer_from_guest(
    std::uint64_t amount, host::FeePolicy fee, double timeout_after_s) {
  auto record = std::make_shared<SendRecord>();
  record->submitted_at = sim_.now();
  // Sequence the module will assign.
  const std::uint64_t seq =
      guest_->ibc().next_send_sequence("transfer", guest_channel_);
  record->sequence = seq;
  sent_[seq] = record;

  host::Transaction tx;
  tx.payer = client_payer_;
  tx.fee = fee;
  tx.label = "send-transfer";
  tx.instructions.push_back(guest::ix::send_transfer(
      guest_channel_, "SOL", amount, "alice", "bob", 0, sim_.now() + timeout_after_s));
  host_.submit(std::move(tx), [record](const host::TxResult& res) {
    if (res.reorged_out) {
      // The execution was retracted by a host reorg and did not
      // survive onto the winning fork.  Clients do not resubmit: the
      // transfer is gone (the optimistic-confirmation hazard the
      // rooted-latency columns quantify).
      record->executed = false;
      record->failed = true;
      return;
    }
    record->executed = res.executed && res.success;
    record->failed = !record->executed;
    record->executed_at = res.time;
    record->fee_usd = res.fee.usd();
  });
  return record;
}

ibc::Packet Deployment::send_transfer_from_cp(std::uint64_t amount) {
  return cp_.transfer().send_transfer(cp_channel_, "PICA", amount, "bob", "alice", 0,
                                      sim_.now() + 3600.0);
}

}  // namespace bmg::relayer
