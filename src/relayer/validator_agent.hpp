// Off-chain validator process (paper §III-B, Alg. 2 upper half).
//
// Listens for NewBlock events from the Guest Contract, signs the block
// digest after a sampled network/processing latency, and submits the
// Sign transaction (carrying the signature through the host's Ed25519
// pre-compile) under its configured fee policy.  Table I of the paper
// is the per-validator statistics this agent records.
#pragma once

#include <string>

#include "common/stats.hpp"
#include "guest/contract.hpp"
#include "host/chain.hpp"
#include "sim/agent.hpp"
#include "sim/latency.hpp"
#include "sim/scheduler.hpp"

namespace bmg::relayer {

struct ValidatorProfile {
  std::string name;
  std::uint64_t stake = 0;
  sim::LatencyProfile latency;
  host::FeePolicy fee;
  /// Silent validators stake but never sign (7 of the paper's 24).
  bool active = true;
};

class ValidatorAgent final : public sim::CrashableAgent {
 public:
  ValidatorAgent(sim::Simulation& sim, host::Chain& host, guest::GuestContract& contract,
                 crypto::PrivateKey key, ValidatorProfile profile, Rng rng);

  /// Subscribes to NewBlock events; call once after host setup.
  void start();

  // --- crash-restart (sim::CrashableAgent) ------------------------------
  [[nodiscard]] const std::string& agent_name() const override {
    return profile_.name;
  }
  [[nodiscard]] bool running() const override { return running_; }
  void crash() override;
  /// Resync: the only durable obligation is a signature on the current
  /// unfinalised head — sign it unless the contract already records
  /// ours (the pre-crash submission may have landed).
  void restart() override;
  [[nodiscard]] std::uint64_t crash_count() const noexcept { return crash_count_; }

  [[nodiscard]] const crypto::PublicKey& pubkey() const { return key_.public_key(); }
  [[nodiscard]] const ValidatorProfile& profile() const { return profile_; }
  [[nodiscard]] const crypto::PrivateKey& key() const { return key_; }

  // -- statistics (Table I) ---------------------------------------------
  [[nodiscard]] std::uint64_t signatures_submitted() const { return sigs_; }
  [[nodiscard]] const Series& signing_latency() const { return latency_; }
  [[nodiscard]] std::uint64_t fees_paid_lamports() const {
    return host_.payer_stats(pubkey()).fees_lamports;
  }

 private:
  void on_new_block(ibc::Height height, double announced_at);

  sim::Simulation& sim_;
  host::Chain& host_;
  guest::GuestContract& contract_;
  crypto::PrivateKey key_;
  ValidatorProfile profile_;
  Rng rng_;

  bool running_ = true;
  std::uint64_t crash_count_ = 0;
  std::uint64_t incarnation_ = 0;  ///< guards stale host result handlers
  sim::Simulation::AgentId timer_owner_ = 0;

  std::uint64_t sigs_ = 0;
  Series latency_;
};

}  // namespace bmg::relayer
